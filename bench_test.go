// Benchmarks regenerating every figure of the SQPR paper's evaluation
// (§V), plus ablations of the design choices documented in DESIGN.md.
//
// Each benchmark runs the figure's experiment at a compact scale and
// reports the headline quantity (satisfied queries, average planning time)
// via b.ReportMetric, so `go test -bench=. -benchmem` reproduces the
// paper's series alongside allocation profiles. EXPERIMENTS.md records a
// full-scale run of the same experiments via cmd/sqpr-sim and
// cmd/sqpr-cluster.
package sqpr_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/hier"
	"sqpr/internal/lp"
	"sqpr/internal/milp"
	"sqpr/internal/plan"
	"sqpr/internal/sim"
)

// benchScale is the compact experiment scale used by benchmarks.
func benchScale() sim.Scale {
	sc := sim.DefaultScale()
	sc.Hosts = 8
	sc.BaseStreams = 40
	sc.Queries = 30
	sc.Timeout = 60 * time.Millisecond
	sc.MaxCandHost = 6
	return sc
}

// --- Fig. 4: planning efficiency -------------------------------------------

func BenchmarkFig4aPlanningEfficiency(b *testing.B) {
	sc := benchScale()
	var last sim.Fig4aResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig4a(sc)
	}
	for _, c := range last.Curves {
		if len(c.Satisfied) > 0 {
			b.ReportMetric(float64(c.Satisfied[len(c.Satisfied)-1]), c.Label+"-satisfied")
		}
	}
}

func BenchmarkFig4bBatching(b *testing.B) {
	sc := benchScale()
	sc.Queries = 20
	var last sim.Fig4aResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig4b(sc, []int{2, 4})
	}
	for _, c := range last.Curves {
		if len(c.Satisfied) > 0 {
			b.ReportMetric(float64(c.Satisfied[len(c.Satisfied)-1]), c.Label+"-satisfied")
		}
	}
}

func BenchmarkFig4cOverlap(b *testing.B) {
	sc := benchScale()
	sc.Queries = 20
	var last sim.Fig4cResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig4c(sc, []float64{0, 1}, []int{20, 40})
	}
	for i, bc := range last.BaseStreams {
		for j, z := range last.Zipfs {
			b.ReportMetric(float64(last.Satisfied[i][j]),
				"satisfied-b"+itoa(bc)+"-z"+ftoa(z))
		}
	}
}

// --- Fig. 5: scalability ----------------------------------------------------

func BenchmarkFig5aHosts(b *testing.B) {
	sc := benchScale()
	sc.Queries = 20
	var last sim.ScalabilityResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig5a(sc, []int{4, 8})
	}
	reportScal(b, last)
}

func BenchmarkFig5bResources(b *testing.B) {
	sc := benchScale()
	sc.Queries = 20
	var last sim.ScalabilityResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig5b(sc, []int{1, 4})
	}
	reportScal(b, last)
}

func BenchmarkFig5cComplexity(b *testing.B) {
	sc := benchScale()
	sc.Queries = 16
	var last sim.ScalabilityResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig5c(sc, []int{2, 4})
	}
	reportScal(b, last)
}

func reportScal(b *testing.B, r sim.ScalabilityResult) {
	b.Helper()
	for i, x := range r.X {
		b.ReportMetric(float64(r.SQPR[i]), "sqpr-"+r.XLabel+"-"+itoa(x))
		b.ReportMetric(float64(r.Bound[i]), "bound-"+r.XLabel+"-"+itoa(x))
	}
}

// --- Fig. 6: planning-time overhead ----------------------------------------

func BenchmarkFig6aPlanTimeHosts(b *testing.B) {
	sc := benchScale()
	sc.Queries = 16
	var last sim.TimingResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig6a(sc, []int{4, 8})
	}
	for i, x := range last.X {
		b.ReportMetric(float64(last.AvgTime[i].Microseconds()), "us-per-plan-hosts-"+itoa(x))
	}
}

func BenchmarkFig6bPlanTimeArity(b *testing.B) {
	sc := benchScale()
	sc.Queries = 16
	var last sim.TimingResult
	for i := 0; i < b.N; i++ {
		last = sim.Fig6b(sc, []int{2, 4})
	}
	for i, x := range last.X {
		b.ReportMetric(float64(last.AvgTime[i].Microseconds()), "us-per-plan-arity-"+itoa(x))
	}
}

// --- Fig. 7: cluster deployment ---------------------------------------------

func fig7Scale() sim.DeployScale {
	ds := sim.DefaultDeployScale()
	ds.Hosts = 8
	ds.BaseStreams = 40
	ds.WaveSize = 10
	ds.Waves = 2
	ds.Timeout = 60 * time.Millisecond
	return ds
}

func BenchmarkFig7aDeployment(b *testing.B) {
	var last sim.Fig7Result
	for i := 0; i < b.N; i++ {
		last = sim.Fig7(context.Background(), fig7Scale())
	}
	for i, in := range last.Inputs {
		b.ReportMetric(float64(last.SQPR[i]), "sqpr-at-"+itoa(in))
		b.ReportMetric(float64(last.SODA[i]), "soda-at-"+itoa(in))
	}
}

func BenchmarkFig7bCPUCDF(b *testing.B) {
	var last sim.Fig7Result
	for i := 0; i < b.N; i++ {
		last = sim.Fig7(context.Background(), fig7Scale())
	}
	if last.CPULowSQPR != nil {
		b.ReportMetric(last.CPULowSQPR.Quantile(0.5), "sqpr-low-p50-cpu")
	}
	if last.CPULowSODA != nil {
		b.ReportMetric(last.CPULowSODA.Quantile(0.5), "soda-low-p50-cpu")
	}
}

func BenchmarkFig7cNetCDF(b *testing.B) {
	var last sim.Fig7Result
	for i := 0; i < b.N; i++ {
		last = sim.Fig7(context.Background(), fig7Scale())
	}
	if last.NetLowSQPR != nil {
		b.ReportMetric(last.NetLowSQPR.Quantile(0.5), "sqpr-low-p50-net")
	}
	if last.NetLowSODA != nil {
		b.ReportMetric(last.NetLowSODA.Quantile(0.5), "soda-low-p50-net")
	}
}

// --- Ablations ---------------------------------------------------------------

// runAblation executes the bench workload under a config mutation and
// returns (admitted, avg plan time, cumulative planner stats).
func runAblation(mutate func(*core.Config)) (int, time.Duration, core.Stats) {
	sc := benchScale()
	env := sim.BuildEnv(sc)
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = sc.Timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	mutate(&cfg)
	p := core.NewPlanner(env.Sys, cfg)
	var total time.Duration
	ctx := context.Background()
	for _, q := range env.Queries {
		res, err := p.Submit(ctx, q)
		if err != nil {
			break
		}
		total += res.PlanTime
	}
	if len(env.Queries) == 0 {
		return p.AdmittedCount(), 0, p.Stats()
	}
	return p.AdmittedCount(), total / time.Duration(len(env.Queries)), p.Stats()
}

func benchAblation(b *testing.B, mutate func(*core.Config)) {
	var admitted int
	var avg time.Duration
	var st core.Stats
	for i := 0; i < b.N; i++ {
		admitted, avg, st = runAblation(mutate)
	}
	b.ReportMetric(float64(admitted), "admitted")
	b.ReportMetric(float64(avg.Microseconds()), "us-per-plan")
	if st.Submissions > 0 {
		per := 1 / float64(st.Submissions)
		b.ReportMetric(float64(st.TotalNodes)*per, "nodes/solve")
		b.ReportMetric(float64(st.TotalCuts)*per, "cuts/solve")
		b.ReportMetric(float64(st.TotalFixings)*per, "fixings/solve")
		b.ReportMetric(float64(st.TotalLPIters)*per, "lp-iters/solve")
	}
}

// BenchmarkAblationBaseline is the reference point for the ablations.
func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, func(*core.Config) {})
}

// BenchmarkAblationRelay disables stream relaying (§II-C): senders may only
// ship streams they originate.
func BenchmarkAblationRelay(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableRelay = true })
}

// BenchmarkAblationReplan freezes all prior placements, removing the
// replanning freedom behind constraint (IV.9).
func BenchmarkAblationReplan(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableReplan = true })
}

// BenchmarkAblationWarmStart withholds the greedy incumbent from the MILP.
func BenchmarkAblationWarmStart(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableWarmStart = true })
}

// BenchmarkAblationLoadBalance drops the λ4 load-balancing objective.
func BenchmarkAblationLoadBalance(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Weights.L4 = 0 })
}

// BenchmarkAblationReduction plans over the full stream/operator space,
// which the paper proves strongly NP-hard and intractable at scale; run on
// a deliberately tiny instance.
func BenchmarkAblationReduction(b *testing.B) {
	var admitted int
	var avg time.Duration
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Hosts = 4
		sc.BaseStreams = 10
		sc.Queries = 6
		env := sim.BuildEnv(sc)
		cfg := core.DefaultConfig()
		cfg.SolveTimeout = sc.Timeout
		cfg.DisableReduction = true
		cfg.MaxFreeStreams = 1 << 20
		cfg.MaxCandidateHosts = sc.Hosts
		p := core.NewPlanner(env.Sys, cfg)
		var total time.Duration
		ctx := context.Background()
		for _, q := range env.Queries {
			res, err := p.Submit(ctx, q)
			if err != nil {
				break
			}
			total += res.PlanTime
		}
		admitted = p.AdmittedCount()
		avg = total / time.Duration(len(env.Queries))
	}
	b.ReportMetric(float64(admitted), "admitted")
	b.ReportMetric(float64(avg.Microseconds()), "us-per-plan")
}

// --- Extensions (§VII future work implemented here) --------------------------

// BenchmarkHierarchicalVsFlat compares the site-decomposed planner against
// flat SQPR on the same workload: admissions and per-plan time.
func BenchmarkHierarchicalVsFlat(b *testing.B) {
	var flatN, hierN int
	var flatT, hierT time.Duration
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Hosts = 12

		envF := sim.BuildEnv(sc)
		cfgF := core.DefaultConfig()
		cfgF.SolveTimeout = sc.Timeout
		cfgF.MaxCandidateHosts = sc.Hosts // flat: whole cluster in scope
		fp := core.NewPlanner(envF.Sys, cfgF)
		ctx := context.Background()
		start := time.Now()
		for _, q := range envF.Queries {
			if _, err := fp.Submit(ctx, q); err != nil {
				b.Fatalf("flat Submit(%d): %v", q, err)
			}
		}
		flatT = time.Since(start) / time.Duration(len(envF.Queries))
		flatN = fp.AdmittedCount()

		envH := sim.BuildEnv(sc)
		cfgH := core.DefaultConfig()
		cfgH.SolveTimeout = sc.Timeout
		cfgH.MaxCandidateHosts = sc.Hosts
		hp := hier.New(envH.Sys, cfgH, 3)
		start = time.Now()
		for _, q := range envH.Queries {
			if _, err := hp.Submit(ctx, q); err != nil {
				b.Fatalf("hier Submit(%d): %v", q, err)
			}
		}
		hierT = time.Since(start) / time.Duration(len(envH.Queries))
		hierN = hp.AdmittedCount()
	}
	b.ReportMetric(float64(flatN), "flat-admitted")
	b.ReportMetric(float64(hierN), "hier-admitted")
	b.ReportMetric(float64(flatT.Microseconds()), "flat-us-per-plan")
	b.ReportMetric(float64(hierT.Microseconds()), "hier-us-per-plan")
}

// BenchmarkChurnRepair measures the churn-repair path: after a failure of
// the busiest host, the delta-MILP Repair (pin survivors, re-solve only
// the affected closures from the warm incumbent) is timed against two
// baselines on identical workloads — remove-and-resubmit of the affected
// queries, and a cold full re-solve of the entire workload on the degraded
// system (what a planner without repair state would have to do).
func BenchmarkChurnRepair(b *testing.B) {
	sc := benchScale()
	ctx := context.Background()
	mkPlanner := func(sys *dsps.System) *core.Planner {
		cfg := core.DefaultConfig()
		cfg.SolveTimeout = sc.Timeout
		cfg.MaxCandidateHosts = sc.MaxCandHost
		return core.NewPlanner(sys, cfg)
	}
	busiest := func(a *dsps.Assignment) dsps.HostID {
		counts := map[dsps.HostID]int{}
		for pl, on := range a.Ops {
			if on {
				counts[pl.Host]++
			}
		}
		best, bestN := dsps.HostID(0), -1
		for h, n := range counts {
			if n > bestN || (n == bestN && h < best) {
				best, bestN = h, n
			}
		}
		return best
	}

	var repairT, resubmitT, coldT time.Duration
	var repairKept, coldKept, repairMig, resubmitMig int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		envA := sim.BuildEnv(sc)
		pA := mkPlanner(envA.Sys)
		for _, q := range envA.Queries {
			if _, err := pA.Submit(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		fail := busiest(pA.Assignment())
		events := []plan.Event{plan.FailHost(fail)}

		envB := sim.BuildEnv(sc)
		pB := mkPlanner(envB.Sys)
		for _, q := range envB.Queries {
			if _, err := pB.Submit(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		envC := sim.BuildEnv(sc)
		if err := plan.ApplyEvents(envC.Sys, events); err != nil {
			b.Fatal(err)
		}
		pC := mkPlanner(envC.Sys)
		b.StartTimer()

		start := time.Now()
		rrA, err := pA.Repair(ctx, events)
		if err != nil {
			b.Fatal(err)
		}
		repairT += time.Since(start)

		start = time.Now()
		rrB, err := plan.RepairByResubmit(ctx, envB.Sys, pB, events)
		if err != nil {
			b.Fatal(err)
		}
		resubmitT += time.Since(start)

		start = time.Now()
		for _, q := range envC.Queries {
			if _, err := pC.Submit(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		coldT += time.Since(start)

		repairKept = pA.AdmittedCount()
		coldKept = pC.AdmittedCount()
		repairMig = rrA.Migrated
		resubmitMig = rrB.Migrated
	}
	n := time.Duration(b.N)
	b.ReportMetric(float64((repairT / n).Microseconds()), "repair-us")
	b.ReportMetric(float64((resubmitT / n).Microseconds()), "resubmit-us")
	b.ReportMetric(float64((coldT / n).Microseconds()), "cold-resolve-us")
	b.ReportMetric(float64(repairKept), "repair-admitted")
	b.ReportMetric(float64(coldKept), "cold-admitted")
	b.ReportMetric(float64(repairMig), "repair-migrated")
	b.ReportMetric(float64(resubmitMig), "resubmit-migrated")
}

// BenchmarkAdaptiveReplanning measures the §IV-B surge-and-replan loop.
func BenchmarkAdaptiveReplanning(b *testing.B) {
	var last sim.AdaptiveResult
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Queries = 20
		res, err := sim.Adaptive(sc, 2.0, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.AdmittedBefore), "admitted-before")
	b.ReportMetric(float64(last.Drifted), "drifted")
	b.ReportMetric(float64(last.AdmittedAfter), "admitted-after")
}

// --- tiny fmt helpers (avoid fmt in hot bench labels) -----------------------

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-int64(v)) // two's-complement safe, including MinInt
	}
	var buf [21]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	whole := int(v)
	frac := int((v - float64(whole)) * 10)
	return itoa(whole) + "." + itoa(frac)
}

// --- Solver micro-benchmarks -------------------------------------------------

// lpResolveProblem builds a mid-size bounded LP representative of one SQPR
// node relaxation.
func lpResolveProblem(rng *rand.Rand, n, mrows int) *lp.Problem {
	p := &lp.Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = rng.Float64()*4 - 2
		p.Upper[j] = 1
	}
	for i := 0; i < mrows; i++ {
		terms := make([]lp.Term, 0, 6)
		for k := 0; k < 2+rng.Intn(5); k++ {
			terms = append(terms, lp.Term{Var: rng.Intn(n), Coef: rng.Float64()*2 - 0.5})
		}
		p.Cons = append(p.Cons, lp.Constraint{Terms: terms, Sense: lp.LE, RHS: 0.5 + rng.Float64()*3})
	}
	return p
}

// BenchmarkLPResolve measures the steady-state warm re-solve after a single
// bound tightening plus its undo — the branch-and-bound inner loop. The
// acceptance criterion is 0 allocs/op.
func BenchmarkLPResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := lpResolveProblem(rng, 120, 90)
	s := lp.NewSolver()
	s.SetLazy(true)
	if err := s.Load(p); err != nil {
		b.Fatal(err)
	}
	if sol := s.ReSolve(lp.Options{}); sol.Status != lp.Optimal {
		b.Fatalf("cold solve: %v", sol.Status)
	}
	s.SaveBasis()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % p.NumVars
		s.Fix(j, i%2 == 0)
		s.ReSolve(lp.Options{})
		s.Unfix(j)
		s.ReSolve(lp.Options{})
	}
}

// BenchmarkMILPNode measures whole branch-and-bound nodes on a knapsack
// with conflicts: allocations per node stay bounded by the node bookkeeping
// (the LP re-solves themselves are allocation-free).
func BenchmarkMILPNode(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	m := milp.NewModel()
	vars := make([]milp.Var, n)
	terms := make([]milp.Term, n)
	weights := make([]milp.Term, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary("x")
		terms[i] = milp.Term{Var: vars[i], Coef: 1 + rng.Float64()*14}
		weights[i] = milp.Term{Var: vars[i], Coef: 1 + rng.Float64()*9}
	}
	m.SetObjective(true, terms...)
	m.AddCons("cap", milp.LE, float64(2*n), weights...)
	for i := 0; i+1 < n; i += 3 {
		m.AddCons("pair", milp.LE, 1, milp.Term{Var: vars[i], Coef: 1}, milp.Term{Var: vars[i+1], Coef: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	totalNodes := 0
	for i := 0; i < b.N; i++ {
		res := m.Solve(milp.Options{MaxNodes: 100000})
		if res.Status != milp.OptimalMIP {
			b.Fatalf("status %v", res.Status)
		}
		totalNodes += res.Nodes
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(totalNodes)/float64(b.N), "nodes-per-solve")
	}
}

// --- Admission service: batched vs serialized concurrent submission --------

// serviceRun pushes the workload through a plan.Service with `submitters`
// concurrent client goroutines and returns submissions/sec, the admitted
// count, a per-query admitted lookup and the mean coalesced batch size.
func serviceRun(b *testing.B, sc sim.Scale, svcCfg plan.ServiceConfig, submitters int) (sps float64, admitted int, isAdmitted func(dsps.StreamID) bool, meanBatch float64) {
	b.Helper()
	ctx := context.Background()
	env := sim.BuildEnv(sc)
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = sc.Timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	cfg.MaxFreeStreams = 30
	svc := plan.NewService(core.NewPlanner(env.Sys, cfg), svcCfg)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < len(env.Queries); j += submitters {
				if _, err := svc.Submit(ctx, env.Queries[j]); err != nil {
					b.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	sps = float64(len(env.Queries)) / time.Since(start).Seconds()
	admitted = svc.AdmittedCount()
	ss := svc.ServiceStats()
	meanBatch = 1
	if ss.Solves > 0 {
		meanBatch = float64(ss.BatchedSubmits) / float64(ss.Solves)
	}
	svc.Close()
	adm := make(map[dsps.StreamID]bool, admitted)
	for _, q := range env.Queries {
		if svc.Admitted(q) {
			adm[q] = true
		}
	}
	return sps, admitted, func(q dsps.StreamID) bool { return adm[q] }, meanBatch
}

// serialRun submits the workload one query at a time in workload order — the
// serialized baseline a deployment without the coalescing service would run.
func serialRun(b *testing.B, sc sim.Scale) (sps float64, admitted int, isAdmitted func(dsps.StreamID) bool) {
	b.Helper()
	ctx := context.Background()
	env := sim.BuildEnv(sc)
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = sc.Timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	cfg.MaxFreeStreams = 30
	p := core.NewPlanner(env.Sys, cfg)
	start := time.Now()
	for _, q := range env.Queries {
		if _, err := p.Submit(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	sps = float64(len(env.Queries)) / time.Since(start).Seconds()
	return sps, p.AdmittedCount(), p.Admitted
}

// BenchmarkServiceThroughput measures the admission service's batch-
// coalescing win on the Fig-4 workload with 64 concurrent submitters, at two
// operating points:
//
//   - the pre-saturation prefix of the workload (every feasible query is
//     admitted under any submission order), where admission decisions are
//     order-independent — so the coalesced run (straggler retry on) must
//     admit EXACTLY the same query set as the serialized one-at-a-time
//     baseline without costing material throughput (set-equal,
//     svc-subs-per-sec vs serial-subs-per-sec). The sparse LP engine
//     finishes these solves before the next submitter arrives, so batches
//     rarely coalesce here and the two paths run at parity;
//   - the full saturated workload, where joint batch solves legitimately
//     admit a different (typically larger) query set than order-dependent
//     one-at-a-time admission — the paper's own Fig. 4(b) batching effect —
//     so only throughput and admitted counts are reported (sat-* metrics).
//
// The coalesced solves run under a flat BatchTimeout equal to the serial
// per-query budget: the batch amortises the solver's fixed costs and its
// deadline must not scale with the batch size, or the coalescing win is
// handed straight back to the solver.
//
// All metrics feed BENCH_4.json via scripts/bench.sh, which fails when the
// pre-saturation sets differ or the service is not measurably faster.
func BenchmarkServiceThroughput(b *testing.B) {
	const submitters = 64

	// Pre-saturation prefix: the first rejection of the Fig-4 workload is
	// around query 41 (seed 1), so 40 queries stay order-independent. Both
	// paths run under the same tightened 40ms per-solve budget (ample at
	// this scale: the serial baseline admits the identical set at 40ms and
	// 150ms), so the comparison isolates coalescing, not budget tuning.
	pre := sim.DefaultScale()
	pre.Queries = 40
	pre.Timeout = 40 * time.Millisecond
	// Full Fig-4 workload, saturated.
	sat := sim.DefaultScale()

	var preSvcSPS, preSerialSPS, preMeanBatch float64
	var preSvcAdm, preSerialAdm int
	setEqual := 1.0
	var satSvcSPS, satSerialSPS float64
	var satSvcAdm, satSerialAdm int

	for i := 0; i < b.N; i++ {
		var preSvcIs, preSerialIs func(dsps.StreamID) bool
		preSerialSPS, preSerialAdm, preSerialIs = serialRun(b, pre)
		// RetryRejected pins the equality bar: a member the joint solve
		// leaves out gets the solo submission it would have issued without
		// the service, so below saturation the admitted set matches the
		// serialized baseline exactly (stragglers are rare there, so the
		// retries cost almost nothing).
		preSvcSPS, preSvcAdm, preSvcIs, preMeanBatch = serviceRun(b, pre, plan.ServiceConfig{
			MaxBatch: 8, BatchTimeout: pre.Timeout, RetryRejected: true,
		}, submitters)
		// setEqual only ever drops: a mismatch in ANY iteration must stick,
		// or a nondeterministic divergence could be masked by a later
		// iteration and slip past the bench.sh gate.
		env := sim.BuildEnv(pre)
		for _, q := range env.Queries {
			if preSvcIs(q) != preSerialIs(q) {
				setEqual = 0
			}
		}

		satSerialSPS, satSerialAdm, _ = serialRun(b, sat)
		satSvcSPS, satSvcAdm, _, _ = serviceRun(b, sat, plan.ServiceConfig{
			MaxBatch: 8, BatchTimeout: sat.Timeout,
		}, submitters)
	}

	b.ReportMetric(preSvcSPS, "svc-subs-per-sec")
	b.ReportMetric(preSerialSPS, "serial-subs-per-sec")
	b.ReportMetric(float64(preSvcAdm), "svc-admitted")
	b.ReportMetric(float64(preSerialAdm), "serial-admitted")
	b.ReportMetric(setEqual, "set-equal")
	b.ReportMetric(preMeanBatch, "mean-batch")
	b.ReportMetric(satSvcSPS, "sat-svc-subs-per-sec")
	b.ReportMetric(satSerialSPS, "sat-serial-subs-per-sec")
	b.ReportMetric(float64(satSvcAdm), "sat-svc-admitted")
	b.ReportMetric(float64(satSerialAdm), "sat-serial-admitted")
}

// BenchmarkLPLargeModel solves a batch-union model in the size class that
// forced the dense engine into tractability splits: the whole workload is
// submitted as ONE WithBatch joint solve with the closure cap lifted, so the
// planner compiles a single MILP over the union of every query's sharing
// closure (~9k variables) instead of carving it into sub-batches. On the
// dense tableau this model was a multi-gigabyte allocation before the first
// pivot; the sparse revised simplex prices it at its nonzero count.
//
// The serialized one-at-a-time baseline (default closure cap) runs once
// outside the timer as the admitted-set reference: capacity is ample at this
// scale, so admission is order-independent and the joint solve must admit
// exactly the same query set (set-equal). Metrics feed BENCH_5.json via
// scripts/bench.sh, which fails when the sets differ, the model is smaller
// than the size class claims, or memory per solve grows back toward dense
// territory.
func BenchmarkLPLargeModel(b *testing.B) {
	sc := sim.DefaultScale()
	sc.Hosts = 12
	sc.CPUPerHost = 40 // ample: every query fits under any order
	sc.OutBW = 600
	sc.InBW = 600
	sc.LinkCap = 300
	sc.BaseStreams = 48
	sc.Queries = 10
	sc.Zipf = 0.8
	sc.MaxCandHost = 10
	sc.Timeout = 3 * time.Second

	ctx := context.Background()
	env := sim.BuildEnv(sc)

	// Serialized reference: default per-call closure cap, one query at a
	// time, workload order.
	serialCfg := core.DefaultConfig()
	serialCfg.SolveTimeout = sc.Timeout
	serialCfg.MaxCandidateHosts = sc.MaxCandHost
	serial := core.NewPlanner(env.Sys, serialCfg)
	for _, q := range env.Queries {
		if _, err := serial.Submit(ctx, q); err != nil {
			b.Fatal(err)
		}
	}

	jointCfg := core.DefaultConfig()
	jointCfg.SolveTimeout = sc.Timeout
	jointCfg.MaxCandidateHosts = sc.MaxCandHost
	jointCfg.MaxFreeStreams = 1 << 20 // no closure cap: the union stays whole

	var modelVars, jointAdm int
	setEqual := 1.0
	var joint *core.Planner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		joint = core.NewPlanner(env.Sys, jointCfg)
		res, err := joint.Submit(ctx, env.Queries[0], plan.WithBatch(env.Queries[1:]...))
		if err != nil {
			b.Fatal(err)
		}
		modelVars = res.ModelVars
	}
	b.StopTimer()
	jointAdm = joint.AdmittedCount()
	for _, q := range env.Queries {
		if joint.Admitted(q) != serial.Admitted(q) {
			setEqual = 0
		}
	}
	b.ReportMetric(float64(modelVars), "model-vars")
	b.ReportMetric(float64(jointAdm), "joint-admitted")
	b.ReportMetric(float64(serial.AdmittedCount()), "serial-admitted")
	b.ReportMetric(setEqual, "set-equal")
}
