// Package sqpr is the public facade of this repository: a Go implementation
// of SQPR — Stream Query Planning with Reuse (Kalyvianaki et al., ICDE
// 2011). SQPR plans continuous queries onto the hosts of a distributed
// stream processing system by solving a single mixed-integer optimisation
// problem that combines query admission, operator placement and cross-query
// reuse (including relaying streams between hosts), made tractable by
// restricting each planning call to the streams and operators related to
// the newly submitted query.
//
// The facade re-exports the pieces a downstream user needs:
//
//   - the system/query/resource model (hosts, streams, operators,
//     assignments) from internal/dsps;
//   - the unified, context-aware QueryPlanner interface with functional
//     submit options, implemented by every planner;
//   - the SQPR planner from internal/core;
//   - baseline planners (heuristic, SODA-like, optimistic bound) and the
//     hierarchical decomposition;
//   - the synthetic workload generator of the paper's evaluation;
//   - a miniature stream engine that executes produced plans.
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package sqpr

import (
	"context"
	"io"
	"time"

	"sqpr/internal/bound"
	"sqpr/internal/core"
	"sqpr/internal/costmodel"
	"sqpr/internal/dsps"
	"sqpr/internal/engine"
	"sqpr/internal/heuristic"
	"sqpr/internal/hier"
	"sqpr/internal/plan"
	"sqpr/internal/serve"
	"sqpr/internal/soda"
	"sqpr/internal/wal"
	"sqpr/internal/workload"
)

// QueryPlanner is the unified, context-aware planning interface implemented
// by all five planners: core SQPR, the heuristic baseline, the SODA-like
// baseline, the optimistic bound and the hierarchical decomposition.
// Submit accepts functional options (WithTimeout, WithCandidateHosts,
// WithBatch, WithValidation, WithParallelism); cancelling the context
// aborts a planning call promptly and leaves the planner state unchanged.
type QueryPlanner = plan.QueryPlanner

// Compile-time conformance of all five planners to the interface.
var (
	_ QueryPlanner = (*core.Planner)(nil)
	_ QueryPlanner = (*heuristic.Planner)(nil)
	_ QueryPlanner = (*soda.Planner)(nil)
	_ QueryPlanner = (*bound.Planner)(nil)
	_ QueryPlanner = (*hier.Planner)(nil)
)

// Compile-time conformance of all five planners to StatePorter: every
// planner can export/import its full durable state, so every planner works
// under the durable admission service (OpenService).
var (
	_ StatePorter = (*core.Planner)(nil)
	_ StatePorter = (*heuristic.Planner)(nil)
	_ StatePorter = (*soda.Planner)(nil)
	_ StatePorter = (*bound.Planner)(nil)
	_ StatePorter = (*hier.Planner)(nil)
)

// Core model types.
type (
	// System describes hosts, streams, operators and link capacities.
	System = dsps.System
	// Host is one processing host with CPU and bandwidth budgets.
	Host = dsps.Host
	// HostID identifies a host.
	HostID = dsps.HostID
	// StreamID identifies a base or composite stream.
	StreamID = dsps.StreamID
	// OperatorID identifies a query operator.
	OperatorID = dsps.OperatorID
	// Operator is a query operator (inputs, output, cost).
	Operator = dsps.Operator
	// Stream is one data stream.
	Stream = dsps.Stream
	// Assignment is a full allocation: providers, flows and placements.
	Assignment = dsps.Assignment
	// Flow is one inter-host stream transfer.
	Flow = dsps.Flow
	// Placement is one operator-on-host assignment.
	Placement = dsps.Placement
	// Usage is a resource-consumption snapshot of an assignment.
	Usage = dsps.Usage
)

// Planner types.
type (
	// Planner is the SQPR planner.
	Planner = core.Planner
	// PlannerConfig tunes the SQPR planner.
	PlannerConfig = core.Config
	// Result describes one planning call's outcome, for every planner,
	// including a machine-readable rejection Reason.
	Result = plan.Result
	// Reason is a machine-readable rejection reason on Result.
	Reason = plan.Reason
	// PlannerStats is the cumulative telemetry every planner exposes.
	PlannerStats = plan.Stats
	// SubmitOption customises one Submit call (see WithTimeout,
	// WithCandidateHosts, WithBatch, WithValidation).
	SubmitOption = plan.SubmitOption
	// Weights are the λ1–λ4 objective weights.
	Weights = core.Weights
	// HeuristicPlanner is the hand-crafted baseline of §V-A.
	HeuristicPlanner = heuristic.Planner
	// SODAPlanner is the SODA-like baseline of §V-B.
	SODAPlanner = soda.Planner
	// BoundPlanner computes the aggregate-host optimistic bound.
	BoundPlanner = bound.Planner
	// HierarchicalPlanner decomposes planning by host sites (§VII).
	HierarchicalPlanner = hier.Planner
	// CostModel estimates operator cost/memory and output rates (§II-B)
	// and detects drift for adaptive replanning (§IV-B).
	CostModel = costmodel.Model
	// Observation is one monitoring sample for cost calibration.
	Observation = costmodel.Observation
)

// Admission-service types: the goroutine-safe planner front-end.
type (
	// Service is a goroutine-safe admission front-end over any
	// QueryPlanner: requests from arbitrary goroutines are serialised by a
	// dispatcher that coalesces concurrent submits into joint batch solves.
	// It implements QueryPlanner itself.
	Service = plan.Service
	// ServiceConfig tunes a Service (queue depth, coalescing cap, trace
	// hook).
	ServiceConfig = plan.ServiceConfig
	// ServiceStats is the service-level telemetry: queueing, coalesced
	// batch sizes and per-request latency.
	ServiceStats = plan.ServiceStats
	// ServiceTrace describes one request group the dispatcher applied, in
	// order (the service's audit stream).
	ServiceTrace = plan.Trace
)

// Durability types: the write-ahead admission journal and recovery.
type (
	// PlannerState is a planner's exported durable state: assignment,
	// admitted set, host availability and planner-private aux data.
	PlannerState = plan.State
	// StatePorter is implemented by every planner in this repository:
	// export/import of the full durable state, the basis of journal replay.
	StatePorter = plan.StatePorter
	// RecoveredState reports what OpenService rebuilt from the journal.
	RecoveredState = plan.RecoveredState
	// WALOptions tunes the write-ahead log (segment size, fsync policy).
	WALOptions = wal.Options
	// WALStats is the journal telemetry exposed by Service.WALStats.
	WALStats = wal.Stats
	// WALFS is the filesystem abstraction the journal writes through
	// (DirFS for a real directory; test harnesses inject fault-laden ones).
	WALFS = wal.FS
)

// Journal fsync policies (WALOptions.Sync).
const (
	SyncAlways = wal.SyncAlways
	SyncEvery  = wal.SyncEvery
	SyncNever  = wal.SyncNever
)

// Engine types.
type (
	// Engine executes deployed assignments on simulated hosts.
	Engine = engine.Engine
	// EngineConfig tunes the engine.
	EngineConfig = engine.Config
	// Tuple is one stream data item.
	Tuple = engine.Tuple
	// Monitor is the per-host resource monitor.
	Monitor = engine.Monitor
)

// Workload types.
type (
	// WorkloadConfig describes a synthetic query workload.
	WorkloadConfig = workload.Config
	// SystemConfig describes a homogeneous host substrate.
	SystemConfig = workload.SystemConfig
	// Workload is a generated query sequence.
	Workload = workload.Workload
)

// NoOperator marks base streams (no producing operator).
const NoOperator = dsps.NoOperator

// Churn types: host availability states and the repair surface.
type (
	// HostState is a host's availability under churn (up/draining/down).
	HostState = dsps.HostState
	// Event is one churn event consumed by QueryPlanner.Repair.
	Event = plan.Event
	// EventKind classifies churn events.
	EventKind = plan.EventKind
	// RepairResult reports a Repair call's outcome: affected, kept and
	// dropped queries plus the operator migration count.
	RepairResult = plan.RepairResult
)

// Host availability states.
const (
	HostUp       = dsps.HostUp
	HostDraining = dsps.HostDraining
	HostDown     = dsps.HostDown
)

// Churn event kinds.
const (
	HostFailed    = plan.HostFailed
	HostRecovered = plan.HostRecovered
	HostDrained   = plan.HostDrained
	QueryDrifted  = plan.QueryDrifted
)

// Service trace kinds (the dispatcher's audit stream).
const (
	TraceSubmit = plan.TraceSubmit
	TraceRemove = plan.TraceRemove
	TraceRepair = plan.TraceRepair
)

// FailHost returns a host-failure event for Repair.
func FailHost(h HostID) Event { return plan.FailHost(h) }

// RecoverHost returns a host-recovery event for Repair.
func RecoverHost(h HostID) Event { return plan.RecoverHost(h) }

// DrainHost returns a graceful host-decommission event for Repair.
func DrainHost(h HostID) Event { return plan.DrainHost(h) }

// DriftQuery returns a query-drift event for Repair.
func DriftQuery(q StreamID) Event { return plan.DriftQuery(q) }

// Rejection reasons carried by Result.Reason.
const (
	ReasonNone              = plan.ReasonNone
	ReasonNoFeasiblePlan    = plan.ReasonNoFeasiblePlan
	ReasonResourceExhausted = plan.ReasonResourceExhausted
	ReasonNoTemplate        = plan.ReasonNoTemplate
	ReasonValidationFailed  = plan.ReasonValidationFailed
)

// Typed errors returned by planner methods; compare with errors.Is.
var (
	// ErrUnknownStream reports a StreamID outside the system's stream table.
	ErrUnknownStream = plan.ErrUnknownStream
	// ErrNotRequested reports a stream never marked as a query.
	ErrNotRequested = plan.ErrNotRequested
	// ErrNotAdmitted reports a Remove of a query that is not admitted.
	ErrNotAdmitted = plan.ErrNotAdmitted
	// ErrQueueFull reports backpressure from a Service's bounded queue.
	ErrQueueFull = plan.ErrQueueFull
	// ErrServiceClosed reports a request against a closed Service.
	ErrServiceClosed = plan.ErrServiceClosed
	// ErrAlreadyDeployed reports a Deploy on an engine already running a
	// plan; Stop it first.
	ErrAlreadyDeployed = engine.ErrAlreadyDeployed
	// ErrWALFailed reports that the admission journal could not be written;
	// the durable service wedges (state-changing requests fail fast) until
	// restarted, which recovers from the last good journal state.
	ErrWALFailed = plan.ErrWALFailed
	// ErrWALCorrupt reports journal corruption outside the final tail
	// record (which is truncated instead) — recovery refuses to guess.
	ErrWALCorrupt = wal.ErrCorrupt
)

// WithTimeout bounds one planning call by d instead of the planner default.
func WithTimeout(d time.Duration) SubmitOption { return plan.WithTimeout(d) }

// WithCandidateHosts restricts one call's candidate host universe (plus any
// hosts forced in for correctness).
func WithCandidateHosts(hosts ...HostID) SubmitOption { return plan.WithCandidateHosts(hosts...) }

// WithBatch plans the given queries jointly with the primary query in one
// optimisation; the solver deadline scales with the batch size (§V-A1).
func WithBatch(qs ...StreamID) SubmitOption { return plan.WithBatch(qs...) }

// WithValidation overrides post-solve feasibility validation for one call.
func WithValidation(on bool) SubmitOption { return plan.WithValidation(on) }

// WithParallelism sets how many goroutines explore the MILP branch-and-
// bound tree for one planning call; <= 1 is serial and deterministic, and
// parallel search returns the same admitted/rejected decision. It pays off
// on large solves (many free streams or candidate hosts).
func WithParallelism(n int) SubmitOption { return plan.WithParallelism(n) }

// NewSystem creates a system with the given hosts and uniform link capacity.
func NewSystem(hosts []Host, linkCap float64) *System { return dsps.NewSystem(hosts, linkCap) }

// BuildSystem creates a homogeneous system from a SystemConfig.
func BuildSystem(cfg SystemConfig) *System { return workload.BuildSystem(cfg) }

// NewAssignment returns an empty allocation.
func NewAssignment() *Assignment { return dsps.NewAssignment() }

// NewPlanner creates an SQPR planner.
func NewPlanner(sys *System, cfg PlannerConfig) *Planner { return core.NewPlanner(sys, cfg) }

// DefaultPlannerConfig returns the evaluation-harness defaults.
func DefaultPlannerConfig() PlannerConfig { return core.DefaultConfig() }

// PaperWeights returns the §IV-A objective weights.
func PaperWeights() Weights { return core.PaperWeights() }

// NewHeuristicPlanner creates the heuristic baseline.
func NewHeuristicPlanner(sys *System, w Weights) *HeuristicPlanner { return heuristic.New(sys, w) }

// NewSODAPlanner creates the SODA-like baseline.
func NewSODAPlanner(sys *System, w Weights) *SODAPlanner { return soda.New(sys, w) }

// NewBoundPlanner creates the optimistic-bound planner.
func NewBoundPlanner(sys *System) *BoundPlanner { return bound.New(sys) }

// NewHierarchicalPlanner creates a site-decomposed SQPR planner.
func NewHierarchicalPlanner(sys *System, cfg PlannerConfig, numSites int) *HierarchicalPlanner {
	return hier.New(sys, cfg, numSites)
}

// NewCostModel returns the linear cost model with evaluation defaults.
func NewCostModel() *CostModel { return costmodel.NewModel() }

// GenerateWorkload populates sys with base streams, queries and the full
// join-tree operator space, returning the submission sequence.
func GenerateWorkload(sys *System, cfg WorkloadConfig) *Workload { return workload.Generate(sys, cfg) }

// DefaultWorkloadConfig mirrors the paper's simulation workload at reduced
// scale.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// NewService wraps any planner in a goroutine-safe admission service and
// starts its dispatcher: clients Submit/Remove/Repair from arbitrary
// goroutines, and submits that arrive while a solve is running are coalesced
// into one joint batch solve. Call Close to stop it.
func NewService(p QueryPlanner, cfg ServiceConfig) *Service { return plan.NewService(p, cfg) }

// DirFS opens (creating if needed) a directory for the write-ahead journal.
func DirFS(dir string) (WALFS, error) { return wal.DirFS(dir) }

// OpenService opens (or creates) the write-ahead admission journal in fs,
// replays it into the freshly constructed planner p — rebuilding the exact
// pre-crash admitted set and placements with zero planning solves — and
// returns a running durable admission service that journals every
// state-changing outcome before acknowledging it. p must implement
// StatePorter (all planners in this repository do) and must be built over
// a system identical to the one the journal was written against.
func OpenService(p QueryPlanner, cfg ServiceConfig, fs WALFS, wopts WALOptions) (*Service, RecoveredState, error) {
	return plan.OpenService(p, cfg, fs, wopts)
}

// Control-plane serving types: the HTTP admission API and the unified
// metrics exporter that turn a Service into a long-running daemon.
type (
	// AdmissionServer is the HTTP control plane over one admission service:
	// POST /v1/submit, /v1/remove, /v1/repair; GET /v1/admitted,
	// /v1/assignment, /v1/queries; GET /metrics (Prometheus text format),
	// /healthz and /readyz (503 when the journal is wedged or a drain is
	// underway).
	AdmissionServer = serve.Server
	// ServerConfig wires an AdmissionServer to its service, system and
	// optional engine monitor.
	ServerConfig = serve.Config
	// MetricsData is one consistent snapshot of every telemetry surface the
	// /metrics exporter unifies (planner, LP factorization, service, WAL,
	// engine monitor).
	MetricsData = serve.MetricsData
	// EngineMetrics is the engine monitor's surface within MetricsData.
	EngineMetrics = serve.EngineMetrics
)

// NewAdmissionServer builds the HTTP control plane; mount Handler on an
// http.Server and call StartDrain when the shutdown signal arrives.
func NewAdmissionServer(cfg ServerConfig) (*AdmissionServer, error) { return serve.New(cfg) }

// WriteMetrics renders a telemetry snapshot in Prometheus text exposition
// format (what GET /metrics serves).
func WriteMetrics(w io.Writer, d MetricsData) { serve.WriteMetrics(w, d) }

// NewEngine creates a mini stream engine over the system.
func NewEngine(sys *System, cfg EngineConfig) *Engine { return engine.New(sys, cfg) }

// DefaultEngineConfig returns demo engine settings.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// QuickPlan is a convenience helper: it submits the queries in order with
// the given per-query timeout and returns the number admitted. The context
// bounds the whole run.
func QuickPlan(ctx context.Context, sys *System, queries []StreamID, timeout time.Duration) (int, error) {
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = timeout
	p := core.NewPlanner(sys, cfg)
	for _, q := range queries {
		if _, err := p.Submit(ctx, q); err != nil {
			return p.AdmittedCount(), err
		}
	}
	return p.AdmittedCount(), nil
}
