module sqpr

go 1.24
