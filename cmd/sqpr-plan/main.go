// Command sqpr-plan is an interactive demonstration of the SQPR planner: it
// builds a small data-centre substrate, generates a query workload, plans
// the queries one by one, and prints the resulting placement — which host
// runs which operator, which streams flow where (including relays), and
// the per-host resource picture.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"sqpr"
	"sqpr/internal/dsps"
	"sqpr/internal/stats"
)

func main() {
	hosts := flag.Int("hosts", 6, "number of hosts")
	queries := flag.Int("queries", 12, "number of queries")
	baseStreams := flag.Int("base-streams", 30, "number of base streams")
	timeout := flag.Duration("timeout", 250*time.Millisecond, "per-query solver timeout")
	seed := flag.Int64("seed", 42, "workload seed")
	jsonOut := flag.String("json", "", "write the final system+plan as JSON to this file ('-' for stdout)")
	showStats := flag.Bool("stats", false, "print solver effort per submit: nodes explored, cuts added, variables fixed")
	flag.Parse()

	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts:   *hosts,
		CPUPerHost: 8,
		OutBW:      80,
		InBW:       80,
		LinkCap:    40,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = *baseStreams
	wcfg.NumQueries = *queries
	wcfg.Seed = *seed
	w := sqpr.GenerateWorkload(sys, wcfg)

	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = *timeout
	p := sqpr.NewPlanner(sys, cfg)

	fmt.Printf("planning %d queries over %d hosts / %d base streams\n\n", *queries, *hosts, *baseStreams)
	ctx := context.Background()
	for i, q := range w.Queries {
		res, err := p.Submit(ctx, q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		verdict := "REJECTED"
		if res.Admitted {
			verdict = "admitted"
		}
		if res.AlreadyAdmitted {
			verdict = "duplicate (already admitted)"
		}
		fmt.Printf("query %2d (stream %3d, %s): %-28s plan-time=%-8v reduced-model: %d streams / %d ops / %d hosts\n",
			i, q, sys.Streams[q].Name, verdict, res.PlanTime.Round(time.Millisecond),
			res.FreeStreams, res.FreeOps, res.CandidateHosts)
		if *showStats {
			fmt.Printf("    solver: %d nodes, %d cuts, %d reduced-cost fixings, %d presolve-fixed vars, %d LP iters\n",
				res.Nodes, res.Cuts, res.Fixings, res.PresolveFixed, res.LPIters)
			fmt.Printf("    basis:  %d refactorizations (%d drift-forced), %d eta updates (peak file %d), fill-in %.2f\n",
				res.Factor.Refactors, res.Factor.DriftRebuilds,
				res.Factor.EtaAppends, res.Factor.PeakEtas, res.Factor.FillRatio)
		}
	}

	a := p.Assignment()
	fmt.Printf("\nadmitted %d/%d queries\n\n", p.AdmittedCount(), *queries)

	if *showStats {
		st := p.Stats()
		fmt.Printf("cumulative solver effort: %d nodes, %d cuts, %d fixings, %d presolve-fixed, %d LP iters over %d submissions (%d timeouts, %d stalls)\n",
			st.TotalNodes, st.TotalCuts, st.TotalFixings, st.TotalPresolveFixed,
			st.TotalLPIters, st.Submissions, st.Timeouts, st.Stalls)
		fmt.Printf("cumulative basis effort:  %d refactorizations (%d drift-forced), %d eta updates, peak eta file %d, peak fill-in %.2f\n\n",
			st.Factor.Refactors, st.Factor.DriftRebuilds, st.Factor.EtaAppends,
			st.Factor.PeakEtas, st.Factor.FillRatio)
	}

	fmt.Println("operator placements:")
	for _, pl := range a.SortedOps() {
		op := sys.Operators[pl.Op]
		fmt.Printf("  host %d runs op %d (%s -> stream %d, cost %.2f)\n",
			pl.Host, pl.Op, op.Name, op.Output, op.Cost)
	}
	fmt.Println("\nstream flows (including relays):")
	for _, f := range a.SortedFlows() {
		fmt.Printf("  stream %3d: host %d -> host %d (rate %.2f)\n",
			f.Stream, f.From, f.To, sys.Streams[f.Stream].Rate)
	}

	fmt.Println("\nper-host resources:")
	u := a.ComputeUsage(sys)
	header := []string{"host", "cpu-used", "cpu-cap", "out-bw", "in-bw"}
	var rows [][]string
	for h := 0; h < sys.NumHosts(); h++ {
		rows = append(rows, []string{
			strconv.Itoa(h),
			fmt.Sprintf("%.2f", u.CPU[h]),
			fmt.Sprintf("%.0f", sys.Hosts[h].CPU),
			fmt.Sprintf("%.1f", u.Out[h]),
			fmt.Sprintf("%.1f", u.In[h]),
		})
	}
	fmt.Print(stats.Table(header, rows))

	if err := a.Validate(sys); err != nil {
		fmt.Println("\nVALIDATION FAILED:", err)
	} else {
		fmt.Println("\nplan validated: all demand, availability, resource and acyclicity constraints hold")
	}

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "json output:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := dsps.WriteSystem(out, sys); err != nil {
			fmt.Fprintln(os.Stderr, "encoding system:", err)
			os.Exit(1)
		}
		if err := dsps.WriteAssignment(out, a); err != nil {
			fmt.Fprintln(os.Stderr, "encoding assignment:", err)
			os.Exit(1)
		}
	}
}
