// Command sqpr-cluster regenerates the deployment study of §V-B (Fig. 7):
// SQPR vs a SODA-like planner on a 15-host cluster substrate, with
// per-wave admission counts (7a) and host CPU / network utilisation CDFs
// (7b, 7c). It finishes by deploying both final plans on the mini stream
// engine and reporting delivered result tuples, closing the plan → deploy →
// measure loop of the paper's prototype.
//
// With -wal DIR the deployment check runs through a durable admission
// service journaling to a write-ahead log in DIR: killing the process and
// rerunning with the same DIR resumes from the journal — already-admitted
// queries are recovered without a single planning solve and skipped on
// resubmission. SIGINT/SIGTERM stops a run gracefully: in-flight work
// drains, the journal is flushed, and partial results are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/plan"
	"sqpr/internal/sim"
	"sqpr/internal/stats"
	"sqpr/internal/wal"
)

func main() {
	fig := flag.String("fig", "all", "part to print: 7a, 7b, 7c or all")
	waves := flag.Int("waves", 0, "override number of 50-query waves")
	deploy := flag.Bool("deploy", true, "run the final plans on the mini engine")
	walDir := flag.String("wal", "", "journal the deployment check's admissions to a WAL in this directory and resume from it on restart")
	flag.Parse()

	// Validate the figure selector before simulating: the Fig-7 run takes
	// minutes, and a typo like "-fig 7d" used to burn all of it and then
	// print nothing.
	switch *fig {
	case "all", "7a", "7b", "7c":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 7a, 7b, 7c or all)\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the run context;
	// scenarios drain at the next boundary and partial results still print.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	ds := sim.DefaultDeployScale()
	if *waves > 0 {
		ds.Waves = *waves
	}

	res := sim.Fig7(ctx, ds)
	if ctx.Err() != nil {
		fmt.Println("(interrupted: partial waves below)")
	}

	if *fig == "all" || *fig == "7a" {
		fmt.Println("=== Figure 7a: planning efficiency (deployment) ===")
		var rows [][]string
		for i, in := range res.Inputs {
			rows = append(rows, []string{
				strconv.Itoa(in), strconv.Itoa(res.SQPR[i]), strconv.Itoa(res.SODA[i]),
			})
		}
		fmt.Print(stats.Table([]string{"inputs", "sqpr", "soda"}, rows))
		if res.SQPRErrors > 0 || res.SODAErrors > 0 {
			fmt.Printf("submit-errors: sqpr=%d soda=%d (failed planning calls excluded from the admission columns)\n",
				res.SQPRErrors, res.SODAErrors)
		}
		fmt.Println()
	}

	printCDF := func(title string, cdfs map[string]*stats.CDF) {
		fmt.Printf("=== %s ===\n", title)
		header := []string{"series", "p25", "p50", "p75", "p90", "max"}
		var rows [][]string
		for _, name := range []string{"SQPR-50", "SODA-50", "SQPR-150", "SODA-150"} {
			c := cdfs[name]
			if c == nil || c.Len() == 0 {
				continue
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.1f", c.Quantile(0.25)),
				fmt.Sprintf("%.1f", c.Quantile(0.5)),
				fmt.Sprintf("%.1f", c.Quantile(0.75)),
				fmt.Sprintf("%.1f", c.Quantile(0.9)),
				fmt.Sprintf("%.1f", c.Quantile(1)),
			})
		}
		fmt.Print(stats.Table(header, rows))
		fmt.Println()
	}

	if *fig == "all" || *fig == "7b" {
		printCDF("Figure 7b: CPU utilisation per host (%)", map[string]*stats.CDF{
			"SQPR-50":  res.CPULowSQPR,
			"SODA-50":  res.CPULowSODA,
			"SQPR-150": res.CPUHighSQPR,
			"SODA-150": res.CPUHighSODA,
		})
	}
	if *fig == "all" || *fig == "7c" {
		printCDF("Figure 7c: network usage per host (rate units)", map[string]*stats.CDF{
			"SQPR-50":  res.NetLowSQPR,
			"SODA-50":  res.NetLowSODA,
			"SQPR-150": res.NetHighSQPR,
			"SODA-150": res.NetHighSODA,
		})
	}

	if *deploy {
		fmt.Println("=== Engine deployment check ===")
		ds2 := ds
		ds2.Waves = 1
		scale := sim.Scale{
			Hosts: ds2.Hosts, CPUPerHost: ds2.CPUPerHost, OutBW: ds2.OutBW,
			InBW: ds2.InBW, LinkCap: ds2.LinkCap, BaseStreams: ds2.BaseStreams,
			BaseRate: ds2.BaseRate, Queries: ds2.WaveSize, Zipf: 1,
			Arities: []int{2, 3}, Timeout: ds2.Timeout, MaxCandHost: 8, Seed: ds2.Seed,
		}
		env := sim.BuildEnv(scale)
		if *walDir != "" {
			runDurableDeploy(ctx, env, scale, *walDir)
			return
		}
		ad := env.NewSQPR(scale, scale.Timeout)
		for _, q := range env.Queries {
			if ctx.Err() != nil {
				fmt.Println("(interrupted before deployment)")
				return
			}
			ad.Submit(ctx, q)
		}
		snap, delivered, err := sim.DeployAndMeasure(env.Sys, ad.Assignment(), 1500*time.Millisecond)
		if err != nil {
			fmt.Println("deploy error:", err)
			return
		}
		var cpu float64
		for _, c := range snap.CPUWork {
			cpu += c
		}
		fmt.Printf("admitted=%d deployed-result-tuples=%d total-cpu-work=%.1f\n",
			ad.AdmittedCount(), delivered, cpu)
	}
}

// runDurableDeploy is the -wal mode of the deployment check: admissions go
// through a durable plan.Service journaling to dir, so a killed run can be
// restarted with the same -wal dir and resumes where it stopped — the
// recovered queries are rebuilt from the journal with zero planning solves
// and skipped on resubmission.
func runDurableDeploy(ctx context.Context, env *sim.Env, scale sim.Scale, dir string) {
	fs, err := wal.DirFS(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wal: %v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = scale.Timeout
	cfg.MaxCandidateHosts = scale.MaxCandHost
	cfg.MaxFreeStreams = 30
	p := core.NewPlanner(env.Sys, cfg)
	svc, rs, err := plan.OpenService(p, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wal: opening durable service: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()
	if rs.UsedSnapshot || rs.Records > 0 {
		fmt.Printf("resumed from journal: %d admitted recovered (snapshot=%v records=%d torn-tail-bytes=%d planning-solves=0)\n",
			rs.Admitted, rs.UsedSnapshot, rs.Records, rs.TailTruncated)
	}

	submitted, skipped := 0, 0
	for _, q := range env.Queries {
		if ctx.Err() != nil {
			break
		}
		if svc.Admitted(q) {
			skipped++ // recovered from the journal; nothing to plan
			continue
		}
		if _, err := svc.Submit(ctx, q); err != nil {
			fmt.Fprintf(os.Stderr, "submit %d: %v\n", q, err)
			return
		}
		submitted++
	}
	if err := svc.SyncWAL(); err != nil {
		fmt.Fprintf(os.Stderr, "wal: flushing journal: %v\n", err)
	}
	fmt.Printf("admitted=%d submitted=%d skipped-already-admitted=%d\n",
		svc.AdmittedCount(), submitted, skipped)
	if ctx.Err() != nil {
		fmt.Println("(interrupted: journal flushed; rerun with the same -wal dir to resume)")
		return
	}
	snap, delivered, err := sim.DeployAndMeasure(env.Sys, svc.Assignment(), 1500*time.Millisecond)
	if err != nil {
		fmt.Println("deploy error:", err)
		return
	}
	var cpu float64
	for _, c := range snap.CPUWork {
		cpu += c
	}
	fmt.Printf("deployed-result-tuples=%d total-cpu-work=%.1f\n", delivered, cpu)
}
