// Command sqpr-cluster regenerates the deployment study of §V-B (Fig. 7):
// SQPR vs a SODA-like planner on a 15-host cluster substrate, with
// per-wave admission counts (7a) and host CPU / network utilisation CDFs
// (7b, 7c). It finishes by deploying both final plans on the mini stream
// engine and reporting delivered result tuples, closing the plan → deploy →
// measure loop of the paper's prototype.
//
// With -wal DIR the deployment check runs through a durable admission
// service journaling to a write-ahead log in DIR: killing the process and
// rerunning with the same DIR resumes from the journal — already-admitted
// queries are recovered without a single planning solve and skipped on
// resubmission. SIGINT/SIGTERM stops a run gracefully: in-flight work
// drains, the journal is flushed, and partial results are printed.
//
// With -serve ADDR the binary skips the study entirely and runs as a
// long-lived admission daemon: the HTTP control plane of internal/serve
// (submit/remove/repair, /metrics, /healthz, /readyz) over the cluster
// substrate, durable when -wal is also given. SIGTERM drains gracefully:
// readiness flips off, in-flight requests finish, the journal is flushed,
// and the process exits 0.
//
// -fig drain runs the rolling-drain scenario instead of the Fig-7 study:
// hosts are drained one at a time through journaled Repair calls while the
// HTTP API keeps serving, asserting zero lost admissions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/engine"
	"sqpr/internal/plan"
	"sqpr/internal/serve"
	"sqpr/internal/sim"
	"sqpr/internal/stats"
	"sqpr/internal/wal"
)

func main() {
	fig := flag.String("fig", "all", "part to print: 7a, 7b, 7c, all, or drain (rolling-drain scenario)")
	waves := flag.Int("waves", 0, "override number of 50-query waves")
	deploy := flag.Bool("deploy", true, "run the final plans on the mini engine")
	walDir := flag.String("wal", "", "journal the deployment check's admissions to a WAL in this directory and resume from it on restart")
	serveAddr := flag.String("serve", "", "run as a long-lived admission daemon serving the HTTP control plane on this address (e.g. :8080) instead of the one-shot study")
	flag.Parse()

	// Validate the figure selector before simulating: the Fig-7 run takes
	// minutes, and a typo like "-fig 7d" used to burn all of it and then
	// print nothing.
	switch *fig {
	case "all", "7a", "7b", "7c", "drain":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 7a, 7b, 7c, all or drain)\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the run context;
	// scenarios drain at the next boundary and partial results still print.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	ds := sim.DefaultDeployScale()
	if *waves > 0 {
		ds.Waves = *waves
	}

	if *serveAddr != "" {
		runServe(ctx, ds, *serveAddr, *walDir)
		return
	}
	if *fig == "drain" {
		runRollingDrain(ctx)
		return
	}

	res := sim.Fig7(ctx, ds)
	if ctx.Err() != nil {
		fmt.Println("(interrupted: partial waves below)")
	}

	if *fig == "all" || *fig == "7a" {
		fmt.Println("=== Figure 7a: planning efficiency (deployment) ===")
		var rows [][]string
		for i, in := range res.Inputs {
			rows = append(rows, []string{
				strconv.Itoa(in), strconv.Itoa(res.SQPR[i]), strconv.Itoa(res.SODA[i]),
			})
		}
		fmt.Print(stats.Table([]string{"inputs", "sqpr", "soda"}, rows))
		if res.SQPRErrors > 0 || res.SODAErrors > 0 {
			fmt.Printf("submit-errors: sqpr=%d soda=%d (failed planning calls excluded from the admission columns)\n",
				res.SQPRErrors, res.SODAErrors)
		}
		fmt.Println()
	}

	printCDF := func(title string, cdfs map[string]*stats.CDF) {
		fmt.Printf("=== %s ===\n", title)
		header := []string{"series", "p25", "p50", "p75", "p90", "max"}
		var rows [][]string
		for _, name := range []string{"SQPR-50", "SODA-50", "SQPR-150", "SODA-150"} {
			c := cdfs[name]
			if c == nil || c.Len() == 0 {
				continue
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.1f", c.Quantile(0.25)),
				fmt.Sprintf("%.1f", c.Quantile(0.5)),
				fmt.Sprintf("%.1f", c.Quantile(0.75)),
				fmt.Sprintf("%.1f", c.Quantile(0.9)),
				fmt.Sprintf("%.1f", c.Quantile(1)),
			})
		}
		fmt.Print(stats.Table(header, rows))
		fmt.Println()
	}

	if *fig == "all" || *fig == "7b" {
		printCDF("Figure 7b: CPU utilisation per host (%)", map[string]*stats.CDF{
			"SQPR-50":  res.CPULowSQPR,
			"SODA-50":  res.CPULowSODA,
			"SQPR-150": res.CPUHighSQPR,
			"SODA-150": res.CPUHighSODA,
		})
	}
	if *fig == "all" || *fig == "7c" {
		printCDF("Figure 7c: network usage per host (rate units)", map[string]*stats.CDF{
			"SQPR-50":  res.NetLowSQPR,
			"SODA-50":  res.NetLowSODA,
			"SQPR-150": res.NetHighSQPR,
			"SODA-150": res.NetHighSODA,
		})
	}

	if *deploy {
		fmt.Println("=== Engine deployment check ===")
		scale := clusterScale(ds)
		env := sim.BuildEnv(scale)
		if *walDir != "" {
			runDurableDeploy(ctx, env, scale, *walDir)
			return
		}
		ad := env.NewSQPR(scale, scale.Timeout)
		for _, q := range env.Queries {
			if ctx.Err() != nil {
				fmt.Println("(interrupted before deployment)")
				return
			}
			ad.Submit(ctx, q)
		}
		snap, delivered, err := sim.DeployAndMeasure(env.Sys, ad.Assignment(), 1500*time.Millisecond)
		if err != nil {
			fmt.Println("deploy error:", err)
			return
		}
		var cpu float64
		for _, c := range snap.CPUWork {
			cpu += c
		}
		fmt.Printf("admitted=%d deployed-result-tuples=%d total-cpu-work=%.1f\n",
			ad.AdmittedCount(), delivered, cpu)
	}
}

// clusterScale is the single-wave cluster substrate shared by the
// deployment check and the -serve daemon.
func clusterScale(ds sim.DeployScale) sim.Scale {
	return sim.Scale{
		Hosts: ds.Hosts, CPUPerHost: ds.CPUPerHost, OutBW: ds.OutBW,
		InBW: ds.InBW, LinkCap: ds.LinkCap, BaseStreams: ds.BaseStreams,
		BaseRate: ds.BaseRate, Queries: ds.WaveSize, Zipf: 1,
		Arities: []int{2, 3}, Timeout: ds.Timeout, MaxCandHost: 8, Seed: ds.Seed,
	}
}

// runServe is the -serve daemon mode: the SQPR planner over the cluster
// substrate behind the internal/serve control plane, durable when -wal is
// given. SIGINT/SIGTERM starts a graceful drain — readiness flips off,
// in-flight requests finish, the journal is flushed — and the process
// exits 0.
func runServe(ctx context.Context, ds sim.DeployScale, addr, walDir string) {
	scale := clusterScale(ds)
	env := sim.BuildEnv(scale)
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = scale.Timeout
	cfg.MaxCandidateHosts = scale.MaxCandHost
	cfg.MaxFreeStreams = 30
	p := core.NewPlanner(env.Sys, cfg)

	var svc *plan.Service
	if walDir != "" {
		fs, err := wal.DirFS(walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wal: %v\n", err)
			os.Exit(1)
		}
		var rs plan.RecoveredState
		svc, rs, err = plan.OpenService(p, plan.ServiceConfig{}, fs, wal.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wal: opening durable service: %v\n", err)
			os.Exit(1)
		}
		if rs.UsedSnapshot || rs.Records > 0 {
			fmt.Printf("resumed from journal: %d admitted recovered (snapshot=%v records=%d)\n",
				rs.Admitted, rs.UsedSnapshot, rs.Records)
		}
	} else {
		svc = plan.NewService(p, plan.ServiceConfig{})
	}

	// An engine over the same substrate contributes per-host utilisation to
	// /metrics. Construction is cheap — no goroutines run until a Deploy.
	eng := engine.New(env.Sys, engine.Config{})
	srv, err := serve.New(serve.Config{Service: svc, System: env.Sys, Monitor: eng.Monitor()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		fmt.Println("shutdown signal: draining")
		srv.StartDrain()
		//sqpr:ctxroot graceful drain outlives the signal context
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	}()

	fmt.Printf("serving admission control plane on %s (hosts=%d queries=%d durable=%v)\n",
		addr, scale.Hosts, len(env.Queries), walDir != "")
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	// Exit path: every accepted request has been answered; flush the
	// journal and stop the dispatcher before reporting a clean exit.
	if err := svc.SyncWAL(); err != nil {
		fmt.Fprintf(os.Stderr, "wal: flushing journal on exit: %v\n", err)
		svc.Close()
		os.Exit(1)
	}
	svc.Close()
	fmt.Printf("drained: admitted=%d\n", p.AdmittedCount())
}

// runRollingDrain is the -fig drain scenario: roll hosts through journaled
// drain/recover repairs while the HTTP API keeps serving, asserting zero
// lost admissions.
func runRollingDrain(ctx context.Context) {
	res, err := sim.RollingDrain(ctx, sim.DefaultDrainScale())
	if err != nil {
		fmt.Fprintf(os.Stderr, "drain scenario: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("=== Rolling drain: API availability under journaled host maintenance ===")
	fmt.Printf("submitted=%d admitted=%d hosts-drained=%d dropped=%d lost-admissions=%d\n",
		res.Submitted, res.Admitted, res.HostsDrained, res.Dropped, res.LostAdmissions)
	fmt.Printf("api-probes=%d/%d ok  journal-recovered-admitted=%d durable=%v\n",
		res.ProbeOK, res.ProbeTotal, res.RecoveredAdmitted, res.Durable)
	if ctx.Err() != nil {
		fmt.Println("(interrupted: partial roll above)")
		return
	}
	if res.LostAdmissions > 0 || res.Dropped > 0 || !res.Durable {
		fmt.Fprintln(os.Stderr, "rolling drain lost admissions")
		os.Exit(1)
	}
}

// runDurableDeploy is the -wal mode of the deployment check: admissions go
// through a durable plan.Service journaling to dir, so a killed run can be
// restarted with the same -wal dir and resumes where it stopped — the
// recovered queries are rebuilt from the journal with zero planning solves
// and skipped on resubmission.
func runDurableDeploy(ctx context.Context, env *sim.Env, scale sim.Scale, dir string) {
	fs, err := wal.DirFS(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wal: %v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = scale.Timeout
	cfg.MaxCandidateHosts = scale.MaxCandHost
	cfg.MaxFreeStreams = 30
	p := core.NewPlanner(env.Sys, cfg)
	svc, rs, err := plan.OpenService(p, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wal: opening durable service: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()
	if rs.UsedSnapshot || rs.Records > 0 {
		fmt.Printf("resumed from journal: %d admitted recovered (snapshot=%v records=%d torn-tail-bytes=%d planning-solves=0)\n",
			rs.Admitted, rs.UsedSnapshot, rs.Records, rs.TailTruncated)
	}

	submitted, skipped := 0, 0
	for _, q := range env.Queries {
		if ctx.Err() != nil {
			break
		}
		if svc.Admitted(q) {
			skipped++ // recovered from the journal; nothing to plan
			continue
		}
		if _, err := svc.Submit(ctx, q); err != nil {
			fmt.Fprintf(os.Stderr, "submit %d: %v\n", q, err)
			return
		}
		submitted++
	}
	if err := svc.SyncWAL(); err != nil {
		fmt.Fprintf(os.Stderr, "wal: flushing journal: %v\n", err)
	}
	fmt.Printf("admitted=%d submitted=%d skipped-already-admitted=%d\n",
		svc.AdmittedCount(), submitted, skipped)
	if ctx.Err() != nil {
		fmt.Println("(interrupted: journal flushed; rerun with the same -wal dir to resume)")
		return
	}
	snap, delivered, err := sim.DeployAndMeasure(env.Sys, svc.Assignment(), 1500*time.Millisecond)
	if err != nil {
		fmt.Println("deploy error:", err)
		return
	}
	var cpu float64
	for _, c := range snap.CPUWork {
		cpu += c
	}
	fmt.Printf("deployed-result-tuples=%d total-cpu-work=%.1f\n", delivered, cpu)
}
