// Command sqpr-cluster regenerates the deployment study of §V-B (Fig. 7):
// SQPR vs a SODA-like planner on a 15-host cluster substrate, with
// per-wave admission counts (7a) and host CPU / network utilisation CDFs
// (7b, 7c). It finishes by deploying both final plans on the mini stream
// engine and reporting delivered result tuples, closing the plan → deploy →
// measure loop of the paper's prototype.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"sqpr/internal/sim"
	"sqpr/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "part to print: 7a, 7b, 7c or all")
	waves := flag.Int("waves", 0, "override number of 50-query waves")
	deploy := flag.Bool("deploy", true, "run the final plans on the mini engine")
	flag.Parse()

	// Validate the figure selector before simulating: the Fig-7 run takes
	// minutes, and a typo like "-fig 7d" used to burn all of it and then
	// print nothing.
	switch *fig {
	case "all", "7a", "7b", "7c":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 7a, 7b, 7c or all)\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	ds := sim.DefaultDeployScale()
	if *waves > 0 {
		ds.Waves = *waves
	}

	res := sim.Fig7(ds)

	if *fig == "all" || *fig == "7a" {
		fmt.Println("=== Figure 7a: planning efficiency (deployment) ===")
		var rows [][]string
		for i, in := range res.Inputs {
			rows = append(rows, []string{
				strconv.Itoa(in), strconv.Itoa(res.SQPR[i]), strconv.Itoa(res.SODA[i]),
			})
		}
		fmt.Print(stats.Table([]string{"inputs", "sqpr", "soda"}, rows))
		if res.SQPRErrors > 0 || res.SODAErrors > 0 {
			fmt.Printf("submit-errors: sqpr=%d soda=%d (failed planning calls excluded from the admission columns)\n",
				res.SQPRErrors, res.SODAErrors)
		}
		fmt.Println()
	}

	printCDF := func(title string, cdfs map[string]*stats.CDF) {
		fmt.Printf("=== %s ===\n", title)
		header := []string{"series", "p25", "p50", "p75", "p90", "max"}
		var rows [][]string
		for _, name := range []string{"SQPR-50", "SODA-50", "SQPR-150", "SODA-150"} {
			c := cdfs[name]
			if c == nil || c.Len() == 0 {
				continue
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.1f", c.Quantile(0.25)),
				fmt.Sprintf("%.1f", c.Quantile(0.5)),
				fmt.Sprintf("%.1f", c.Quantile(0.75)),
				fmt.Sprintf("%.1f", c.Quantile(0.9)),
				fmt.Sprintf("%.1f", c.Quantile(1)),
			})
		}
		fmt.Print(stats.Table(header, rows))
		fmt.Println()
	}

	if *fig == "all" || *fig == "7b" {
		printCDF("Figure 7b: CPU utilisation per host (%)", map[string]*stats.CDF{
			"SQPR-50":  res.CPULowSQPR,
			"SODA-50":  res.CPULowSODA,
			"SQPR-150": res.CPUHighSQPR,
			"SODA-150": res.CPUHighSODA,
		})
	}
	if *fig == "all" || *fig == "7c" {
		printCDF("Figure 7c: network usage per host (rate units)", map[string]*stats.CDF{
			"SQPR-50":  res.NetLowSQPR,
			"SODA-50":  res.NetLowSODA,
			"SQPR-150": res.NetHighSQPR,
			"SODA-150": res.NetHighSODA,
		})
	}

	if *deploy {
		fmt.Println("=== Engine deployment check ===")
		ds2 := ds
		ds2.Waves = 1
		scale := sim.Scale{
			Hosts: ds2.Hosts, CPUPerHost: ds2.CPUPerHost, OutBW: ds2.OutBW,
			InBW: ds2.InBW, LinkCap: ds2.LinkCap, BaseStreams: ds2.BaseStreams,
			BaseRate: ds2.BaseRate, Queries: ds2.WaveSize, Zipf: 1,
			Arities: []int{2, 3}, Timeout: ds2.Timeout, MaxCandHost: 8, Seed: ds2.Seed,
		}
		env := sim.BuildEnv(scale)
		ad := env.NewSQPR(scale, scale.Timeout)
		ctx := context.Background()
		for _, q := range env.Queries {
			ad.Submit(ctx, q)
		}
		snap, delivered, err := sim.DeployAndMeasure(env.Sys, ad.Assignment(), 1500*time.Millisecond)
		if err != nil {
			fmt.Println("deploy error:", err)
			return
		}
		var cpu float64
		for _, c := range snap.CPUWork {
			cpu += c
		}
		fmt.Printf("admitted=%d deployed-result-tuples=%d total-cpu-work=%.1f\n",
			ad.AdmittedCount(), delivered, cpu)
	}
}
