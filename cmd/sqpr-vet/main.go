// Command sqpr-vet runs the repository's custom static analyzers over the
// given package patterns (default ./...): the per-package passes —
// lockguard, ctxflow, hotalloc, errflow — and the interprocedural
// module passes — walorder, lockorder, atomicmix — built on the
// internal/analysis/flow call graph. It exits nonzero when any diagnostic
// fires, so CI can gate on it like `go vet`:
//
//	go run ./cmd/sqpr-vet ./...
//
// Flags select a subset of analyzers, e.g. -lockguard=false. With -json
// the findings are written to stdout as a versioned machine-readable
// report (schema in internal/analysis/anz/json.go) instead of plain
// lines; exit codes are unchanged, so CI can both archive the report and
// gate on it. See DESIGN.md §"Static contracts" and §"Interprocedural
// contracts" for the annotation vocabulary the analyzers enforce.
package main

import (
	"flag"
	"fmt"
	"os"

	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/atomicmix"
	"sqpr/internal/analysis/ctxflow"
	"sqpr/internal/analysis/errflow"
	"sqpr/internal/analysis/hotalloc"
	"sqpr/internal/analysis/lockguard"
	"sqpr/internal/analysis/lockorder"
	"sqpr/internal/analysis/walorder"
)

func main() {
	perPkg := []*anz.Analyzer{lockguard.Analyzer, ctxflow.Analyzer, hotalloc.Analyzer, errflow.Analyzer}
	module := []*anz.ModuleAnalyzer{walorder.Analyzer, lockorder.Analyzer, atomicmix.Analyzer}

	enabled := make(map[string]*bool, len(perPkg)+len(module))
	for _, a := range perPkg {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	for _, a := range module {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	jsonOut := flag.Bool("json", false, "write findings to stdout as a versioned JSON report")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sqpr-vet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var runPkg []*anz.Analyzer
	for _, a := range perPkg {
		if *enabled[a.Name] {
			runPkg = append(runPkg, a)
		}
	}
	var runMod []*anz.ModuleAnalyzer
	for _, a := range module {
		if *enabled[a.Name] {
			runMod = append(runMod, a)
		}
	}

	pkgs, err := anz.Load(".", patterns...)
	if err != nil {
		fail(err)
	}
	findings, err := anz.RunAnalyzers(pkgs, runPkg)
	if err != nil {
		fail(err)
	}
	modFindings, err := anz.RunModuleAnalyzers(pkgs, runMod)
	if err != nil {
		fail(err)
	}
	findings = append(findings, modFindings...)
	anz.SortFindings(findings)

	if *jsonOut {
		if err := anz.WriteJSON(os.Stdout, findings); err != nil {
			fail(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sqpr-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sqpr-vet:", err)
	os.Exit(2)
}
