// Command sqpr-vet runs the repository's custom static analyzers —
// lockguard, ctxflow, hotalloc and errflow — over the given package
// patterns (default ./...). It exits nonzero when any diagnostic fires,
// so CI can gate on it like `go vet`:
//
//	go run ./cmd/sqpr-vet ./...
//
// Flags select a subset of analyzers, e.g. -lockguard=false. See
// DESIGN.md §"Static contracts" for the annotation vocabulary the
// analyzers enforce.
package main

import (
	"flag"
	"fmt"
	"os"

	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/ctxflow"
	"sqpr/internal/analysis/errflow"
	"sqpr/internal/analysis/hotalloc"
	"sqpr/internal/analysis/lockguard"
)

func main() {
	all := []*anz.Analyzer{lockguard.Analyzer, ctxflow.Analyzer, hotalloc.Analyzer, errflow.Analyzer}
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sqpr-vet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var run []*anz.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}

	pkgs, err := anz.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqpr-vet:", err)
		os.Exit(2)
	}
	findings, err := anz.RunAnalyzers(pkgs, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqpr-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sqpr-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
