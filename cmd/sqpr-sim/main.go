// Command sqpr-sim regenerates the simulation figures of the SQPR paper
// (Fig. 4–6): planning efficiency, batching, overlap, scalability and
// planning-time overhead. Each figure prints the same series the paper
// plots, at the reduced scale documented in DESIGN.md. The extra "churn"
// scenario goes beyond the paper: Poisson host failures and recoveries
// over the planned workload, repaired with the migration-minimal delta
// solver (admissions kept, queries dropped, operators migrated, repair
// latency).
//
// Usage:
//
//	sqpr-sim -fig 4a            # one figure
//	sqpr-sim -fig churn         # the host-churn repair scenario
//	sqpr-sim -fig restart       # the crash/recovery scenario
//	sqpr-sim -fig all           # everything (takes several minutes)
//	sqpr-sim -fig 4a -queries 80 -hosts 10   # dial the scale down
//
// SIGINT/SIGTERM stops the run gracefully: the scenario in flight drains
// at the next boundary and prints the partial results collected so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"sqpr/internal/sim"
	"sqpr/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a,4b,4c,5a,5b,5c,6a,6b,churn,arrivals,restart or all")
	queries := flag.Int("queries", 0, "override query count")
	hosts := flag.Int("hosts", 0, "override host count")
	timeout := flag.Duration("timeout", 0, "override per-query solver timeout")
	seed := flag.Int64("seed", 0, "override workload seed")
	steps := flag.Int("churn-steps", 0, "override churn step count")
	failRate := flag.Float64("fail-rate", 0, "override expected host failures per churn step")
	recoverRate := flag.Float64("recover-rate", 0, "override expected host recoveries per churn step")
	flag.Parse()

	// Validate the figure selector before simulating anything: a typo must
	// cost a usage error, not minutes of solves followed by empty output.
	switch *fig {
	case "all", "4a", "4b", "4c", "5a", "5b", "5c", "6a", "6b", "churn", "arrivals", "restart":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 4a,4b,4c,5a,5b,5c,6a,6b,churn,arrivals,restart or all)\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the run context
	// and the scenarios drain to a valid partial result; a second signal
	// kills the process the usual way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	sc := sim.DefaultScale()
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *hosts > 0 {
		sc.Hosts = *hosts
	}
	if *timeout > 0 {
		sc.Timeout = *timeout
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	run := func(name string, f func()) {
		if *fig != "all" && *fig != name {
			return
		}
		if ctx.Err() != nil {
			return // interrupted: skip the remaining figures
		}
		start := time.Now()
		fmt.Printf("=== Figure %s ===\n", name)
		f()
		if ctx.Err() != nil {
			fmt.Println("(interrupted: partial results above)")
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	run("4a", func() { print4a(sim.Fig4a(sc)) })
	run("4b", func() { print4a(sim.Fig4b(sc, []int{2, 3, 4, 5})) })
	run("4c", func() { print4c(sim.Fig4c(sc, []float64{0, 0.5, 1, 1.5, 2}, []int{60, 120, 240})) })
	run("5a", func() { printScal(sim.Fig5a(sc, []int{8, 12, 16, 24})) })
	run("5b", func() { printScal(sim.Fig5b(sc, []int{1, 2, 4, 8})) })
	run("5c", func() { printScal(sim.Fig5c(sc, []int{2, 3, 4, 5})) })
	run("6a", func() { printTiming(sim.Fig6a(smaller(sc), []int{4, 6, 8, 10})) })
	run("6b", func() { printTiming(sim.Fig6b(sc, []int{2, 3, 4, 5})) })
	run("churn", func() {
		cs := sim.DefaultChurnScale()
		cs.Scale = sc
		if *steps > 0 {
			cs.Steps = *steps
		}
		if *failRate > 0 {
			cs.FailRate = *failRate
		}
		if *recoverRate > 0 {
			cs.RecoverRate = *recoverRate
		}
		res, err := sim.Churn(ctx, cs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			os.Exit(1)
		}
		printChurn(res)
	})
	run("arrivals", func() {
		ol := sim.DefaultOpenLoopScale()
		if *queries > 0 {
			ol.Queries = *queries
		}
		if *hosts > 0 {
			ol.Hosts = *hosts
		}
		if *timeout > 0 {
			ol.Timeout = *timeout
		}
		if *seed != 0 {
			ol.Seed = *seed
		}
		printArrivals(sim.OpenLoop(ctx, ol))
	})
	run("restart", func() {
		rs := sim.DefaultRestartScale()
		rs.Scale = sc
		rs.CrashAfter = sc.Queries / 2
		res, err := sim.Restart(ctx, rs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restart: %v\n", err)
			os.Exit(1)
		}
		printRestart(res)
	})
}

func printRestart(r sim.RestartResult) {
	rows := [][]string{
		{"submitted-before-crash", strconv.Itoa(r.Submitted)},
		{"admitted-at-crash", strconv.Itoa(r.AdmittedAtCrash)},
		{"recovered-from-snapshot", fmt.Sprintf("%v", r.UsedSnapshot)},
		{"journal-records-replayed", strconv.Itoa(r.ReplayedRecords)},
		{"recovered-admitted", strconv.Itoa(r.RecoveredAdmitted)},
		{"recovery-solves", strconv.Itoa(r.RecoverySolves)},
		{"state-match", fmt.Sprintf("%v", r.StateMatch)},
		{"resumed-submissions", strconv.Itoa(r.ResumeSubmitted)},
		{"final-admitted", strconv.Itoa(r.FinalAdmitted)},
	}
	fmt.Print(stats.Table([]string{"metric", "value"}, rows))
}

// errorSummary prints the harness-wide nonzero-error line: failed solver
// calls must be visible next to the figure they would otherwise skew.
func errorSummary(n int) {
	if n > 0 {
		fmt.Printf("submit-errors: %d (failed planning calls excluded from the admission columns)\n", n)
	}
}

func printArrivals(r sim.OpenLoopResult) {
	header := []string{"rate/s", "mode", "submitted", "admitted", "shed",
		"throughput/s", "p50", "p95", "p99", "max", "mean-batch", "max-batch"}
	errs := 0
	var rows [][]string
	for _, p := range r.Points {
		errs += p.Errors
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Rate),
			p.Mode,
			strconv.Itoa(p.Submitted),
			strconv.Itoa(p.Admitted),
			strconv.Itoa(p.Shed),
			fmt.Sprintf("%.1f", p.Throughput),
			p.P50.Round(time.Millisecond).String(),
			p.P95.Round(time.Millisecond).String(),
			p.P99.Round(time.Millisecond).String(),
			p.Max.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", p.MeanBatch),
			strconv.Itoa(p.MaxBatch),
		})
	}
	fmt.Print(stats.Table(header, rows))
	errorSummary(errs)
}

func printChurn(r sim.ChurnResult) {
	rows := [][]string{
		{"submitted", strconv.Itoa(r.Submitted)},
		{"admitted-initial", strconv.Itoa(r.AdmittedInitial)},
		{"host-failures", strconv.Itoa(r.Failures)},
		{"host-recoveries", strconv.Itoa(r.Recoveries)},
		{"repair-calls", strconv.Itoa(r.RepairCalls)},
		{"queries-affected", strconv.Itoa(r.Affected)},
		{"admissions-kept", strconv.Itoa(r.Kept)},
		{"queries-dropped", strconv.Itoa(r.Dropped)},
		{"resubmitted", strconv.Itoa(r.Resubmitted)},
		{"readmitted", strconv.Itoa(r.Readmitted)},
		{"operators-migrated", strconv.Itoa(r.Migrated)},
		{"repair-avg", r.RepairAvg.Round(time.Microsecond).String()},
		{"repair-max", r.RepairMax.Round(time.Microsecond).String()},
		{"final-admitted", strconv.Itoa(r.FinalAdmitted)},
		{"final-hosts-down", strconv.Itoa(r.FinalDown)},
	}
	fmt.Print(stats.Table([]string{"metric", "value"}, rows))
}

// smaller trims the scale for the host-sweep timing figure, whose cost
// grows steeply with the candidate-host count (that growth is the result).
func smaller(sc sim.Scale) sim.Scale {
	sc.Queries = sc.Queries / 2
	return sc
}

func print4a(r sim.Fig4aResult) {
	if len(r.Curves) == 0 {
		return
	}
	header := []string{"inputs"}
	for _, c := range r.Curves {
		header = append(header, c.Label)
	}
	var rows [][]string
	for i, in := range r.Curves[0].Inputs {
		row := []string{strconv.Itoa(in)}
		for _, c := range r.Curves {
			if i < len(c.Satisfied) {
				row = append(row, strconv.Itoa(c.Satisfied[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	fmt.Print(stats.Table(header, rows))
	errs := 0
	for _, c := range r.Curves {
		errs += c.Errors
	}
	errorSummary(errs)
}

func print4c(r sim.Fig4cResult) {
	header := []string{"zipf"}
	for _, bc := range r.BaseStreams {
		header = append(header, fmt.Sprintf("%d-base-streams", bc))
	}
	var rows [][]string
	for j, z := range r.Zipfs {
		row := []string{fmt.Sprintf("%.1f", z)}
		for i := range r.BaseStreams {
			row = append(row, strconv.Itoa(r.Satisfied[i][j]))
		}
		rows = append(rows, row)
	}
	fmt.Print(stats.Table(header, rows))
	errorSummary(r.Errors)
}

func printScal(r sim.ScalabilityResult) {
	header := []string{r.XLabel, "sqpr", "optimistic-bound"}
	var rows [][]string
	for i, x := range r.X {
		rows = append(rows, []string{strconv.Itoa(x), strconv.Itoa(r.SQPR[i]), strconv.Itoa(r.Bound[i])})
	}
	fmt.Print(stats.Table(header, rows))
	errorSummary(r.Errors)
}

func printTiming(r sim.TimingResult) {
	header := []string{r.XLabel, "avg-plan-time", "samples"}
	var rows [][]string
	for i, x := range r.X {
		rows = append(rows, []string{
			strconv.Itoa(x),
			r.AvgTime[i].Round(time.Millisecond).String(),
			strconv.Itoa(r.Samples[i]),
		})
	}
	fmt.Print(stats.Table(header, rows))
	errorSummary(r.Errors)
}
