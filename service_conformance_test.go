// Service-conformance suite: every planner in the repository can be wrapped
// in a plan.Service and driven by many goroutines at once. The service's
// trace is its serialisation certificate — after a concurrent run of
// Submit/Remove/Repair, replaying the recorded schedule serially on a fresh
// planner must reproduce exactly the same admitted set, proving that the
// dispatcher's locking and batch coalescing never corrupt planner state.
// CI runs this file under -race (the race-service step).
package sqpr_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"sqpr"
)

// serviceEnv builds the conformance system and workload at a slightly larger
// scale than conformanceEnv, so coalesced batches and rejections both occur.
func serviceEnv() (*sqpr.System, []sqpr.StreamID) {
	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts: 4, CPUPerHost: 8, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = 16
	wcfg.NumQueries = 12
	wcfg.Arities = []int{2, 3}
	wcfg.Seed = 23
	w := sqpr.GenerateWorkload(sys, wcfg)
	return sys, w.Queries
}

// serviceCases mirrors conformanceCases with a generous solver budget, so
// every solve terminates on its deterministic node/gap budget rather than a
// wall-clock deadline — the precondition for run-vs-replay equality.
func serviceCases() []conformanceCase {
	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 5 * time.Second
	return []conformanceCase{
		{"core", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewPlanner(sys, cfg) }},
		{"heuristic", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewHeuristicPlanner(sys, sqpr.PaperWeights()) }},
		{"soda", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewSODAPlanner(sys, sqpr.PaperWeights()) }},
		{"bound", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewBoundPlanner(sys) }},
		{"hier", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewHierarchicalPlanner(sys, cfg, 2) }},
	}
}

// TestServiceConformance drives every planner through a plan.Service from
// many goroutines — concurrent submits, removes and host-churn repairs —
// then replays the service's recorded schedule serially on a fresh planner
// and asserts the admitted sets match exactly.
func TestServiceConformance(t *testing.T) {
	for _, tc := range serviceCases() {
		t.Run(tc.name, func(t *testing.T) {
			sys, queries := serviceEnv()

			var mu sync.Mutex
			var trace []sqpr.ServiceTrace
			svc := sqpr.NewService(tc.make(sys), sqpr.ServiceConfig{
				MaxBatch: 4,
				OnTrace: func(tr sqpr.ServiceTrace) {
					mu.Lock()
					trace = append(trace, tr)
					mu.Unlock()
				},
			})

			ctx := context.Background()
			var wg sync.WaitGroup

			// Concurrent submitters: every query submitted once, spread
			// over the pool.
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(queries); i += 8 {
						if _, err := svc.Submit(ctx, queries[i]); err != nil {
							t.Errorf("Submit(%d): %v", queries[i], err)
						}
					}
				}(w)
			}
			// Concurrent removals: racing a Remove against the submits is
			// legal; ErrNotAdmitted simply means it lost the race.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, q := range queries[:4] {
					svc.Remove(q)
				}
			}()
			// Concurrent churn: fail and recover a host mid-traffic.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := svc.Repair(ctx, []sqpr.Event{sqpr.FailHost(1)}); err != nil {
					t.Errorf("Repair(fail): %v", err)
				}
				if _, err := svc.Repair(ctx, []sqpr.Event{sqpr.RecoverHost(1)}); err != nil {
					t.Errorf("Repair(recover): %v", err)
				}
			}()
			wg.Wait()
			svc.Close()

			// Replay the recorded schedule serially on a fresh planner over
			// a fresh (identically seeded) system.
			replaySys, _ := serviceEnv()
			replay := tc.make(replaySys)
			for i, tr := range trace {
				switch tr.Kind {
				case sqpr.TraceSubmit:
					if tr.Err != nil {
						continue // state unchanged on submit errors
					}
					var err error
					if len(tr.Queries) > 1 {
						_, err = replay.Submit(ctx, tr.Queries[0], sqpr.WithBatch(tr.Queries[1:]...))
					} else {
						_, err = replay.Submit(ctx, tr.Queries[0])
					}
					if err != nil {
						t.Fatalf("replay[%d] submit %v: %v", i, tr.Queries, err)
					}
				case sqpr.TraceRemove:
					if tr.Err != nil {
						continue // failed removes did not change state
					}
					if err := replay.Remove(tr.Queries[0]); err != nil {
						t.Fatalf("replay[%d] remove %d: %v", i, tr.Queries[0], err)
					}
				case sqpr.TraceRepair:
					// Repairs commit host-state transitions even on error,
					// so they always replay.
					if _, err := replay.Repair(ctx, tr.Events); err != nil && tr.Err == nil {
						t.Fatalf("replay[%d] repair: %v", i, err)
					}
				}
			}

			// The concurrent run and its serial replay must agree exactly.
			if got, want := svc.AdmittedCount(), replay.AdmittedCount(); got != want {
				t.Fatalf("admitted count: service %d, serial replay %d", got, want)
			}
			for _, q := range queries {
				if svc.Admitted(q) != replay.Admitted(q) {
					t.Fatalf("query %d: service admitted=%v, serial replay=%v",
						q, svc.Admitted(q), replay.Admitted(q))
				}
			}
			// And the service's final state must still be feasible.
			if err := svc.Assignment().Validate(sys); err != nil {
				t.Fatalf("service left infeasible state: %v", err)
			}
		})
	}
}

// TestServiceBatchMatchesSerialAdmissions pins the acceptance criterion at
// test scale: 64 concurrent submitters pushing the workload through a
// coalescing service admit exactly the query set a serialized one-at-a-time
// baseline admits.
func TestServiceBatchMatchesSerialAdmissions(t *testing.T) {
	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 5 * time.Second

	// Serial baseline.
	serialSys, queries := serviceEnv()
	serial := sqpr.NewPlanner(serialSys, cfg)
	ctx := context.Background()
	for _, q := range queries {
		if _, err := serial.Submit(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent service run.
	svcSys, _ := serviceEnv()
	svc := sqpr.NewService(sqpr.NewPlanner(svcSys, cfg), sqpr.ServiceConfig{MaxBatch: 8})
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 64 {
				if _, err := svc.Submit(ctx, queries[i]); err != nil {
					t.Errorf("Submit(%d): %v", queries[i], err)
				}
			}
		}(w)
	}
	wg.Wait()
	svc.Close()

	for _, q := range queries {
		if svc.Admitted(q) != serial.Admitted(q) {
			t.Fatalf("query %d: service admitted=%v, serial=%v", q, svc.Admitted(q), serial.Admitted(q))
		}
	}
}
