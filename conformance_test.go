// Interface-conformance suite: every planner in the repository implements
// sqpr.QueryPlanner, so one table-driven test drives all five over the same
// generated workload and asserts the shared behavioural invariants — no
// panic on unknown or duplicate IDs, Remove-then-resubmit round-trips, and
// prompt ctx cancellation that leaves planner state unchanged.
package sqpr_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sqpr"
)

// conformanceCase names one QueryPlanner implementation.
type conformanceCase struct {
	name string
	make func(sys *sqpr.System) sqpr.QueryPlanner
}

func conformanceCases() []conformanceCase {
	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 150 * time.Millisecond
	return []conformanceCase{
		{"core", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewPlanner(sys, cfg) }},
		{"heuristic", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewHeuristicPlanner(sys, sqpr.PaperWeights()) }},
		{"soda", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewSODAPlanner(sys, sqpr.PaperWeights()) }},
		{"bound", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewBoundPlanner(sys) }},
		{"hier", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewHierarchicalPlanner(sys, cfg, 2) }},
	}
}

// conformanceEnv builds a fresh system and workload; every planner gets an
// identical copy (the workload generator is deterministic under one seed).
func conformanceEnv() (*sqpr.System, []sqpr.StreamID) {
	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts: 4, CPUPerHost: 8, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = 16
	wcfg.NumQueries = 8
	wcfg.Arities = []int{2, 3}
	wcfg.Seed = 17
	w := sqpr.GenerateWorkload(sys, wcfg)
	return sys, w.Queries
}

// stateSnapshot captures the observable planner state for corruption checks.
type stateSnapshot struct {
	admitted, provides, ops, flows int
}

func snapshot(p sqpr.QueryPlanner) stateSnapshot {
	a := p.Assignment()
	return stateSnapshot{
		admitted: p.AdmittedCount(),
		provides: len(a.Provides),
		ops:      len(a.Ops),
		flows:    len(a.Flows),
	}
}

func TestQueryPlannerConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			sys, queries := conformanceEnv()
			p := tc.make(sys)

			// Workload: every submission must return without error.
			for _, q := range queries {
				res, err := p.Submit(ctx, q)
				if err != nil {
					t.Fatalf("Submit(%d): %v", q, err)
				}
				if res.Admitted && res.Reason != sqpr.ReasonNone {
					t.Fatalf("admitted result carries rejection reason %v", res.Reason)
				}
				if !res.Admitted && res.Reason == sqpr.ReasonNone {
					t.Fatalf("rejected result carries no reason: %+v", res)
				}
			}
			if p.AdmittedCount() == 0 {
				t.Fatal("planner admitted nothing on the conformance workload")
			}
			// Any planner that reports placements must report feasible ones.
			if len(p.Assignment().Provides) > 0 {
				if err := p.Assignment().Validate(sys); err != nil {
					t.Fatalf("assignment infeasible: %v", err)
				}
			}

			// Unknown stream IDs: typed error, no panic.
			for _, bogus := range []sqpr.StreamID{-1, sqpr.StreamID(len(sys.Streams) + 7)} {
				if _, err := p.Submit(ctx, bogus); !errors.Is(err, sqpr.ErrUnknownStream) {
					t.Fatalf("Submit(%d) err = %v, want ErrUnknownStream", bogus, err)
				}
				if err := p.Remove(bogus); !errors.Is(err, sqpr.ErrUnknownStream) {
					t.Fatalf("Remove(%d) err = %v, want ErrUnknownStream", bogus, err)
				}
			}

			// Duplicate submission: recognised, state unchanged.
			var admitted sqpr.StreamID = -1
			for _, q := range queries {
				if p.Admitted(q) {
					admitted = q
					break
				}
			}
			if admitted < 0 {
				t.Fatal("no admitted query to probe")
			}
			before := snapshot(p)
			res, err := p.Submit(ctx, admitted)
			if err != nil {
				t.Fatalf("duplicate Submit: %v", err)
			}
			if !res.AlreadyAdmitted || !res.Admitted {
				t.Fatalf("duplicate not recognised: %+v", res)
			}
			if got := snapshot(p); got != before {
				t.Fatalf("duplicate submission changed state: %+v -> %+v", before, got)
			}

			// Remove then resubmit round-trips.
			if err := p.Remove(admitted); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if p.Admitted(admitted) {
				t.Fatal("query still admitted after Remove")
			}
			if err := p.Remove(admitted); !errors.Is(err, sqpr.ErrNotAdmitted) {
				t.Fatalf("second Remove err = %v, want ErrNotAdmitted", err)
			}
			res, err = p.Submit(ctx, admitted)
			if err != nil {
				t.Fatalf("resubmit after Remove: %v", err)
			}
			if !res.Admitted {
				t.Fatalf("resubmit after Remove rejected: %+v", res)
			}
			if len(p.Assignment().Provides) > 0 {
				if err := p.Assignment().Validate(sys); err != nil {
					t.Fatalf("assignment infeasible after remove/resubmit: %v", err)
				}
			}

			// Batch with a bogus member: typed error, nothing admitted.
			before = snapshot(p)
			if _, err := p.Submit(ctx, admitted, sqpr.WithBatch(-5)); !errors.Is(err, sqpr.ErrUnknownStream) {
				t.Fatalf("batch with bogus member err = %v, want ErrUnknownStream", err)
			}
			if got := snapshot(p); got != before {
				t.Fatalf("failed batch changed state: %+v -> %+v", before, got)
			}

			// Cancelled ctx: prompt error, assignment uncorrupted.
			if err := p.Remove(admitted); err != nil {
				t.Fatalf("Remove before cancellation probe: %v", err)
			}
			before = snapshot(p)
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := p.Submit(cancelled, admitted); !errors.Is(err, context.Canceled) {
				t.Fatalf("Submit with cancelled ctx err = %v, want context.Canceled", err)
			}
			if got := snapshot(p); got != before {
				t.Fatalf("cancelled submission corrupted state: %+v -> %+v", before, got)
			}

			// Stats were accumulated across the calls above.
			if st := p.Stats(); st.Submissions == 0 {
				t.Fatal("no submissions recorded in Stats")
			}
		})
	}
}

// TestQueryPlannerConformanceParallel runs every implementation on its own
// goroutine-private system, catching data races through shared package
// state (run with -race in CI).
func TestQueryPlannerConformanceParallel(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, len(conformanceCases()))
	for _, tc := range conformanceCases() {
		wg.Add(1)
		go func(tc conformanceCase) {
			defer wg.Done()
			sys, queries := conformanceEnv()
			p := tc.make(sys)
			ctx := context.Background()
			for _, q := range queries {
				if _, err := p.Submit(ctx, q); err != nil {
					errs <- fmt.Errorf("%s: Submit(%d): %w", tc.name, q, err)
					return
				}
			}
			if p.AdmittedCount() == 0 {
				errs <- fmt.Errorf("%s: admitted nothing", tc.name)
			}
		}(tc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSubmitOptionsAcrossPlanners verifies that the functional options are
// accepted uniformly: a timeout option and a host restriction must not
// error on any implementation.
func TestSubmitOptionsAcrossPlanners(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			sys, queries := conformanceEnv()
			p := tc.make(sys)
			ctx := context.Background()
			if _, err := p.Submit(ctx, queries[0],
				sqpr.WithTimeout(100*time.Millisecond),
				sqpr.WithValidation(true)); err != nil {
				t.Fatalf("options submit: %v", err)
			}
			hosts := make([]sqpr.HostID, sys.NumHosts())
			for i := range hosts {
				hosts[i] = sqpr.HostID(i)
			}
			if _, err := p.Submit(ctx, queries[1],
				sqpr.WithCandidateHosts(hosts...)); err != nil {
				t.Fatalf("host-restricted submit: %v", err)
			}
			if _, err := p.Submit(ctx, queries[2],
				sqpr.WithBatch(queries[3])); err != nil {
				t.Fatalf("batch submit: %v", err)
			}
		})
	}
}

// TestParallelSubmitMatchesSerial checks the per-call guarantee of
// WithParallelism: on identical planner state, a parallel solve must reach
// the same admitted/rejected decision as the serial solve (workers share
// one best-first queue and one incumbent; λ1-dominance makes the admission
// count gap-safe). Equally-good *placements* may differ between the two
// searches, so the parallel decision for query i is probed on a fresh
// planner whose state was replayed serially up to i — comparing decisions
// on diverged states would test nothing. Run under -race in CI.
func TestParallelSubmitMatchesSerial(t *testing.T) {
	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 2 * time.Second // generous: solves terminate on the gap
	cfg.MaxNodes = 100000              // not on the node budget

	sysS, queries := conformanceEnv()
	serial := sqpr.NewPlanner(sysS, cfg)
	ctx := context.Background()
	for i, q := range queries {
		rs, err := serial.Submit(ctx, q)
		if err != nil {
			t.Fatalf("serial Submit(%d): %v", q, err)
		}

		// Replay the serial prefix on a fresh planner (serial planning is
		// deterministic), then take the i-th decision in parallel.
		sysP, _ := conformanceEnv()
		parallel := sqpr.NewPlanner(sysP, cfg)
		for _, prev := range queries[:i] {
			if _, err := parallel.Submit(ctx, prev); err != nil {
				t.Fatalf("replay Submit(%d): %v", prev, err)
			}
		}
		rp, err := parallel.Submit(ctx, q, sqpr.WithParallelism(4))
		if err != nil {
			t.Fatalf("parallel Submit(%d): %v", q, err)
		}
		if rs.Admitted != rp.Admitted {
			t.Fatalf("query %d (#%d): serial admitted=%v, parallel admitted=%v",
				q, i, rs.Admitted, rp.Admitted)
		}
	}
}
