//go:build !sqprdebug

package invariant

// Enabled is false in ordinary builds: every `if invariant.Enabled && …`
// block is deleted by the compiler, so assertions are free when off.
const Enabled = false
