//go:build sqprdebug

package invariant

// Enabled arms the invariant assertions: this file is selected by the
// sqprdebug build tag. See the package comment for the usage pattern.
const Enabled = true
