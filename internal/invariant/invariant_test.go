package invariant_test

import (
	"strings"
	"testing"

	"sqpr/internal/invariant"
)

// TestFailfPanics checks the panic carries the formatted message, whatever
// build the test runs under (Failf itself always panics; only the callers'
// Enabled gate differs between builds).
func TestFailfPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated: queue depth -1") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	invariant.Failf("queue depth %d", -1)
}

// TestEnabledMatchesBuildTag pins the wiring: the sqprdebug CI job greps
// its own output, so here we only assert Enabled is a usable constant.
func TestEnabledMatchesBuildTag(t *testing.T) {
	if invariant.Enabled {
		t.Log("checked build: assertions armed")
	} else {
		t.Log("release build: assertions compiled out")
	}
}
