// Package invariant provides checked-build assertions: guards that cost
// nothing in normal builds and panic loudly under the sqprdebug build tag.
//
// The pattern every caller follows is
//
//	if invariant.Enabled && !cond {
//		invariant.Failf("what broke: got %v", v)
//	}
//
// Enabled is an untyped constant, so in ordinary builds the whole guarded
// block is dead code the compiler deletes — the assertions cannot perturb
// allocation-free hot paths (the `lp.Solver` resolve path keeps its
// 0 allocs/op contract) or timing. Under `go test -tags sqprdebug ./...`
// the same blocks compile in and turn latent state corruption — an
// inconsistent simplex basis, a non-monotone branch-and-bound node, a
// service queue-accounting drift — into an immediate panic at the point
// of the bug instead of a wrong answer three layers later.
//
// Keep the condition inside the caller (rather than passing it to a
// helper) so that evaluating the condition itself is also free when the
// tag is off.
package invariant

import "fmt"

// Failf reports a violated invariant and halts the program. Callers gate
// every call behind `invariant.Enabled &&` so the call (and the cost of
// building its arguments) exists only in sqprdebug builds.
func Failf(format string, args ...any) {
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}
