package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/invariant"
	"sqpr/internal/wal"
)

// Typed errors of the admission service. Wrap-and-compare with errors.Is.
var (
	// ErrQueueFull reports that the service's bounded request queue was
	// full when the request arrived: backpressure, not failure. The caller
	// decides whether to retry, shed or block on its own.
	ErrQueueFull = errors.New("admission queue full")
	// ErrServiceClosed reports a request against a closed service.
	ErrServiceClosed = errors.New("admission service closed")
)

// ServiceConfig tunes an admission Service.
type ServiceConfig struct {
	// QueueDepth bounds the request queue; a request arriving while the
	// queue holds QueueDepth entries fails fast with ErrQueueFull. 0
	// selects 256.
	QueueDepth int
	// MaxBatch caps how many coalescible submits the dispatcher folds into
	// one WithBatch joint solve. 0 selects 8; 1 disables coalescing.
	MaxBatch int
	// BatchTimeout, when positive, bounds each coalesced joint solve by
	// this budget instead of the planner's default batch-scaled deadline
	// (which multiplies the per-query budget by the batch size, as in the
	// paper's "timeout of 30n secs"). A service optimising for admission
	// throughput wants this: the batch amortises the solver's fixed costs,
	// and letting its deadline grow linearly with the batch size would give
	// back exactly the wall-clock the coalescing won.
	BatchTimeout time.Duration
	// RetryRejected re-submits individually every coalesced member the
	// joint solve did not admit, so riding in a batch never costs a client
	// an admission it would have received submitting alone. Off by
	// default: below saturation stragglers are rare and the retry is
	// almost free, but on a saturated system most rejections are genuine
	// and each one would pay a full solo solve.
	RetryRejected bool
	// OnTrace, when non-nil, is invoked synchronously from the dispatcher
	// goroutine after every applied request group, in application order. It
	// is the service's audit stream: tests replay it to check serial
	// equivalence, harnesses log it. The callback must not call back into
	// the service.
	OnTrace func(Trace)
	// SnapshotEvery compacts the admission journal with a full state
	// snapshot after this many journaled records. Only meaningful for
	// services opened with OpenService; 0 selects 256 there.
	SnapshotEvery int
}

// TraceKind classifies one dispatcher application step.
type TraceKind int8

// Dispatcher step kinds.
const (
	// TraceSubmit is one planning call: Queries[0] is the primary query and
	// Queries[1:] are the batch companions coalesced into the joint solve.
	TraceSubmit TraceKind = iota
	// TraceRemove is one Remove; Queries holds the single removed query.
	TraceRemove
	// TraceRepair is one Repair; Events holds its churn events.
	TraceRepair
)

// String returns a readable name for the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSubmit:
		return "submit"
	case TraceRemove:
		return "remove"
	case TraceRepair:
		return "repair"
	}
	return fmt.Sprintf("TraceKind(%d)", int8(k))
}

// Trace describes one request group the dispatcher applied to the wrapped
// planner, in application order.
type Trace struct {
	Kind    TraceKind
	Queries []dsps.StreamID
	Events  []Event
	// Err is the error the planner call returned (nil on success; a
	// rejection is not an error).
	Err error
}

// LatencyBuckets lists the inclusive upper bounds of the per-request
// latency histogram kept in ServiceStats.LatencyHist; the histogram has one
// extra overflow bucket for latencies above the last bound. The ladder is
// chosen for an admission service whose solves run from sub-millisecond
// (warm-started repairs) to seconds (cold batch MILPs).
var LatencyBuckets = [...]time.Duration{
	100 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	5 * time.Second,
}

// latencyBucket maps a request latency to its LatencyHist index.
func latencyBucket(d time.Duration) int {
	for i, b := range LatencyBuckets {
		if d <= b {
			return i
		}
	}
	return len(LatencyBuckets)
}

// ServiceStats aggregates service-level telemetry, separate from the
// planner's own Stats: queueing, coalescing and per-request latency.
//
// Every client call lands in exactly one of Requests, Expired or QueueFull,
// and Replies == Requests + Expired (asserted in checked builds): shed
// calls never produce a reply, expired calls are answered without touching
// the planner, and everything else is applied.
type ServiceStats struct {
	// Requests counts requests the dispatcher applied: processed against
	// the wrapped planner, or answered with a service error at application
	// time (a planner error, the WAL wedge). Requests whose ctx expired
	// while queued are counted in Expired instead, never here.
	Requests int
	// Replies counts every reply delivered to a caller, applied or expired.
	Replies int
	// QueueFull counts requests shed with ErrQueueFull; they never enter
	// the queue and never get a dispatcher reply.
	QueueFull int
	// Expired counts requests whose ctx was done before the dispatcher
	// reached them; they are answered with the ctx error, unapplied.
	Expired int
	// Solves counts joint planning calls; BatchedSubmits counts the
	// submits they carried, so BatchedSubmits/Solves is the mean coalesced
	// batch size and MaxBatch the largest one.
	Solves         int
	BatchedSubmits int
	MaxBatch       int
	// TotalLatency and MaxLatency aggregate per-request latency from
	// arrival in the queue to reply; LatencyHist buckets the same samples
	// by LatencyBuckets (last entry = overflow), so sum(LatencyHist) ==
	// Replies.
	TotalLatency time.Duration
	MaxLatency   time.Duration
	LatencyHist  [len(LatencyBuckets) + 1]int
}

// request is one queued client call.
type request struct {
	ctx     context.Context
	arrived time.Time

	// kind discriminates the union below.
	kind TraceKind

	q    dsps.StreamID  // TraceSubmit, TraceRemove
	opts []SubmitOption // TraceSubmit, TraceRepair
	evs  []Event        // TraceRepair

	done chan struct{}
	res  Result
	rr   RepairResult
	err  error

	// finished backs the checked-build reply-exactly-once invariant; it is
	// only touched by the dispatcher goroutine.
	finished bool
}

// Service is a goroutine-safe admission front-end over any QueryPlanner.
// Clients call Submit, Remove and Repair from arbitrary goroutines; one
// dispatcher goroutine drains the bounded request queue in arrival order and
// applies the requests to the wrapped planner, coalescing runs of plain
// submits that queued up while the previous solve ran into a single
// WithBatch joint solve — amortising MILP compile and warm-start across the
// batch (§V-A1), so thread safety and throughput come from the same
// mechanism. Reads (Admitted, AdmittedCount, Assignment, Stats) synchronise
// with the dispatcher through a planner mutex and may run concurrently with
// queued work.
//
// Service itself implements QueryPlanner, so it drops into every harness
// that drives one.
type Service struct {
	p   QueryPlanner //sqpr:guarded-by pmu
	cfg ServiceConfig

	reqs chan *request
	done chan struct{} // closed when the dispatcher exits

	// mu guards closed and makes enqueue-vs-Close safe: Close flips closed
	// under the write lock and then closes reqs, which no sender can touch
	// any more.
	mu     sync.RWMutex
	closed bool //sqpr:guarded-by mu

	// pmu serialises planner access between the dispatcher and readers.
	pmu sync.Mutex

	// smu guards the service stats. The sanctioned acquisition hierarchy
	// (enforced module-wide by the lockorder analyzer): the enqueue path
	// holds mu while bumping stats, the dispatcher holds pmu across solves
	// and takes smu to record them, and nothing may nest the other way.
	//
	//sqpr:lock-order Service.mu < Service.pmu < Service.smu
	smu   sync.Mutex
	stats ServiceStats //sqpr:guarded-by smu

	// Durable-service state (nil/zero for plain NewService services; see
	// OpenService in durable.go). The dispatcher journals through walLog
	// before acknowledging; walErr wedges the service after the first
	// journal failure so memory never silently diverges from the log.
	walLog    *wal.Log    //sqpr:guarded-by pmu
	porter    StatePorter //sqpr:guarded-by pmu
	last      State       //sqpr:guarded-by pmu
	walErr    error       //sqpr:guarded-by pmu
	sinceSnap int         //sqpr:guarded-by pmu

	// wedge mirrors walErr for lock-free reads: the wedge is sticky (set
	// once, never cleared), so Wedged — and through it readiness probes —
	// must not queue behind pmu, which the dispatcher holds across whole
	// planner solves.
	wedge atomic.Pointer[error]

	closeOnce sync.Once
}

// Compile-time check: the service is itself a QueryPlanner.
var _ QueryPlanner = (*Service)(nil)

// NewService wraps planner p in an admission service and starts its
// dispatcher goroutine. The wrapped planner must not be driven directly
// while the service owns it. Call Close to stop the dispatcher.
func NewService(p QueryPlanner, cfg ServiceConfig) *Service {
	s := newService(p, cfg)
	go s.dispatch()
	return s
}

// newService builds the service without starting the dispatcher, so
// OpenService can finish recovery wiring first.
func newService(p QueryPlanner, cfg ServiceConfig) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	return &Service{
		p:    p,
		cfg:  cfg,
		reqs: make(chan *request, cfg.QueueDepth),
		done: make(chan struct{}),
	}
}

// Close stops accepting requests, lets the dispatcher drain and apply the
// requests already queued, and waits for it to exit. A durable service
// then flushes and closes its journal. Idempotent and safe to call
// concurrently with requests: late arrivals fail with ErrServiceClosed.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.reqs)
	})
	<-s.done
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.walLog != nil {
		// Sync-and-close; errors here mean the tail of the log may be lost
		// on a machine crash, which recovery handles, so they are not fatal
		// to the (already drained) service.
		_ = s.walLog.Close()
	}
}

// enqueue places r in the bounded queue, failing fast with ErrQueueFull on
// backpressure and ErrServiceClosed after Close.
func (s *Service) enqueue(r *request) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrServiceClosed
	}
	select {
	case s.reqs <- r:
		return nil
	default:
		s.smu.Lock()
		s.stats.QueueFull++
		s.smu.Unlock()
		return ErrQueueFull
	}
}

// Submit plans query q through the service. The call blocks until the
// dispatcher has applied the request (possibly coalesced with concurrent
// submits into one joint solve) or until ctx is done — but note a request
// whose ctx expires after the dispatcher picked it up is still planned under
// the solver deadline derived from that ctx. Returns ErrQueueFull
// immediately when the queue is full.
func (s *Service) Submit(ctx context.Context, q dsps.StreamID, opts ...SubmitOption) (Result, error) {
	ctx = OrBackground(ctx)
	r := &request{
		ctx: ctx, arrived: time.Now(), kind: TraceSubmit,
		q: q, opts: opts, done: make(chan struct{}),
	}
	if err := s.enqueue(r); err != nil {
		return Result{}, err
	}
	select {
	case <-r.done:
		return r.res, r.err
	case <-ctx.Done():
		// The dispatcher will notice the dead ctx and skip the request; the
		// caller gets the ctx error either way.
		return Result{}, ctx.Err()
	}
}

// Remove withdraws an admitted query through the service, in arrival order
// relative to concurrent submits and repairs.
func (s *Service) Remove(q dsps.StreamID) error {
	r := &request{
		ctx: OrBackground(nil), arrived: time.Now(), kind: TraceRemove,
		q: q, done: make(chan struct{}),
	}
	if err := s.enqueue(r); err != nil {
		return err
	}
	<-r.done
	return r.err
}

// Repair forwards churn events to the wrapped planner's Repair, serialised
// against concurrent submits and removes.
func (s *Service) Repair(ctx context.Context, events []Event, opts ...SubmitOption) (RepairResult, error) {
	ctx = OrBackground(ctx)
	r := &request{
		ctx: ctx, arrived: time.Now(), kind: TraceRepair,
		evs: events, opts: opts, done: make(chan struct{}),
	}
	if err := s.enqueue(r); err != nil {
		return RepairResult{}, err
	}
	select {
	case <-r.done:
		return r.rr, r.err
	case <-ctx.Done():
		return RepairResult{}, ctx.Err()
	}
}

// Admitted reports whether query stream q is currently served.
func (s *Service) Admitted(q dsps.StreamID) bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.p.Admitted(q)
}

// AdmittedCount returns the number of admitted queries.
func (s *Service) AdmittedCount() int {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.p.AdmittedCount()
}

// Assignment returns a deep copy of the wrapped planner's allocation state:
// unlike a bare planner, the service cannot hand out its live state, which
// the dispatcher mutates concurrently.
func (s *Service) Assignment() *dsps.Assignment {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.p.Assignment().Clone()
}

// AdmittedQueries returns the sorted list of currently admitted query
// streams when the wrapped planner implements StatePorter (every planner in
// this repository does); nil otherwise. The list is a copy.
func (s *Service) AdmittedQueries() []dsps.StreamID {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if p, ok := s.p.(StatePorter); ok {
		return p.ExportState().Admitted
	}
	return nil
}

// Stats returns the wrapped planner's cumulative telemetry.
func (s *Service) Stats() Stats {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.p.Stats()
}

// ServiceStats returns the service-level telemetry snapshot.
func (s *Service) ServiceStats() ServiceStats {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.stats
}

// dispatch is the single dispatcher goroutine: it drains the queue, skips
// requests whose ctx already expired, coalesces runs of plain submits and
// applies everything else in arrival order.
func (s *Service) dispatch() {
	defer close(s.done)
	for {
		r, ok := <-s.reqs
		if !ok {
			return
		}
		pending := s.drainAfter(r)
		for len(pending) > 0 {
			pending = s.applyNext(pending)
		}
	}
}

// drainAfter collects the requests already queued behind first without
// blocking, so one dispatcher pass sees everything that arrived while the
// previous planner call ran.
func (s *Service) drainAfter(first *request) []*request {
	pending := []*request{first}
	//sqpr:noctx non-blocking drain: the default case returns on the first empty poll
	for {
		select {
		case r, ok := <-s.reqs:
			if !ok {
				return pending
			}
			pending = append(pending, r)
		default:
			return pending
		}
	}
}

// applyNext applies the head of pending — a coalesced run of plain submits,
// or a single request — and returns the remaining tail.
func (s *Service) applyNext(pending []*request) []*request {
	head := pending[0]

	// A dead ctx answers without touching the planner.
	if err := head.ctx.Err(); err != nil {
		head.err = err
		s.finishExpired(head)
		return pending[1:]
	}

	if head.kind != TraceSubmit || !coalescible(head) {
		s.applySingle(head)
		return pending[1:]
	}

	// Coalesce the leading run of live, plain submits into one joint solve.
	group := []*request{head}
	rest := pending[1:]
	for len(rest) > 0 && len(group) < s.cfg.MaxBatch {
		r := rest[0]
		if r.kind != TraceSubmit || !coalescible(r) || r.ctx.Err() != nil {
			break
		}
		group = append(group, r)
		rest = rest[1:]
	}
	if invariant.Enabled && len(group) > s.cfg.MaxBatch {
		invariant.Failf("service: coalesced %d submits past the MaxBatch cap %d", len(group), s.cfg.MaxBatch)
	}
	s.applySubmitGroup(group)
	return rest
}

// coalescible reports whether a submit can join a coalesced batch: only
// option-free submits qualify, so per-call host restrictions, explicit
// batches, timeouts or validation overrides never leak across requests.
func coalescible(r *request) bool {
	if len(r.opts) == 0 {
		return true
	}
	c := Apply(r.opts)
	return c.Timeout == 0 && c.Hosts == nil && c.Batch == nil &&
		c.Validate == nil && c.Workers == 0
}

// applySingle applies one non-coalesced request to the planner. For a
// durable service the outcome is journaled before finish acknowledges the
// caller; a journal failure replaces the reply with the wedge error.
func (s *Service) applySingle(r *request) {
	s.pmu.Lock()
	if err := s.wedged(); err != nil {
		s.pmu.Unlock()
		r.err = err
		s.finish(r)
		return
	}
	switch r.kind {
	case TraceSubmit:
		r.res, r.err = s.p.Submit(r.ctx, r.q, r.opts...)
		s.recordSolve(1)
		s.trace(Trace{Kind: TraceSubmit, Queries: []dsps.StreamID{r.q}, Err: r.err})
	case TraceRemove:
		r.err = s.p.Remove(r.q)
		s.trace(Trace{Kind: TraceRemove, Queries: []dsps.StreamID{r.q}, Err: r.err})
	case TraceRepair:
		r.rr, r.err = s.p.Repair(r.ctx, r.evs, r.opts...)
		s.trace(Trace{Kind: TraceRepair, Events: r.evs, Err: r.err})
	}
	if jerr := s.journal(r.kind); jerr != nil {
		r.err = jerr
	}
	s.pmu.Unlock()
	s.finish(r)
}

// applySubmitGroup plans a coalesced run of submits as one WithBatch joint
// solve. The solve runs under the earliest ctx deadline of the group, so no
// member's deadline is overrun by riding in a batch. On a planner error the
// group falls back to individual submits in arrival order, so one poisoned
// member (unknown stream, cancelled ctx) cannot fail its neighbours.
func (s *Service) applySubmitGroup(group []*request) {
	if len(group) == 1 {
		s.applySingle(group[0])
		return
	}
	qs := make([]dsps.StreamID, len(group))
	for i, r := range group {
		qs[i] = r.q
	}

	ctx, cancel := groupContext(group)
	defer cancel()

	opts := []SubmitOption{WithBatch(qs[1:]...)}
	if s.cfg.BatchTimeout > 0 {
		opts = append(opts, WithTimeout(s.cfg.BatchTimeout))
	}

	s.pmu.Lock()
	if werr := s.wedged(); werr != nil {
		s.pmu.Unlock()
		for _, r := range group {
			r.err = werr
			s.finish(r)
		}
		return
	}
	res, err := s.p.Submit(ctx, qs[0], opts...)
	if err != nil {
		// Joint solve failed as a whole: re-run the members one by one so
		// each request gets its own verdict under its own ctx.
		for _, r := range group {
			if e := r.ctx.Err(); e != nil {
				r.err = e
				continue
			}
			r.res, r.err = s.p.Submit(r.ctx, r.q, r.opts...)
			s.recordSolve(1)
		}
		for _, r := range group {
			s.trace(Trace{Kind: TraceSubmit, Queries: []dsps.StreamID{r.q}, Err: r.err})
		}
		if jerr := s.journal(TraceSubmit); jerr != nil {
			for _, r := range group {
				r.err = jerr
			}
		}
		s.pmu.Unlock()
		for _, r := range group {
			s.finish(r)
		}
		return
	}

	// One joint result: fan the shared solver telemetry out to every
	// member, with per-member admission looked up on the planner.
	for _, r := range group {
		r.res = res
		r.res.Admitted = s.p.Admitted(r.q)
		if r.res.Admitted {
			r.res.Reason = ReasonNone
		} else if r.res.Reason == ReasonNone {
			r.res.Reason = ReasonNoFeasiblePlan
		}
	}
	s.recordSolve(len(group))
	s.trace(Trace{Kind: TraceSubmit, Queries: qs, Err: nil})
	if s.cfg.RetryRejected {
		// Straggler retry: members the joint solve left out get the solo
		// submission they would have issued without the service.
		for _, r := range group {
			if r.res.Admitted || r.ctx.Err() != nil {
				continue
			}
			r.res, r.err = s.p.Submit(r.ctx, r.q, r.opts...)
			s.recordSolve(1)
			s.trace(Trace{Kind: TraceSubmit, Queries: []dsps.StreamID{r.q}, Err: r.err})
		}
	}
	if jerr := s.journal(TraceSubmit); jerr != nil {
		for _, r := range group {
			r.err = jerr
		}
	}
	s.pmu.Unlock()
	for _, r := range group {
		s.finish(r)
	}
}

// groupContext derives the joint solve's context: no member's cancellation
// alone aborts the batch, but the earliest deadline bounds it.
func groupContext(group []*request) (context.Context, context.CancelFunc) {
	var earliest time.Time
	for _, r := range group {
		if d, ok := r.ctx.Deadline(); ok && (earliest.IsZero() || d.Before(earliest)) {
			earliest = d
		}
	}
	if earliest.IsZero() {
		//sqpr:ctxroot batch ctx is deliberately detached: no single member's cancellation may abort the joint solve
		return context.WithCancel(context.Background())
	}
	//sqpr:ctxroot batch ctx is deliberately detached: no single member's cancellation may abort the joint solve
	return context.WithDeadline(context.Background(), earliest)
}

// recordSolve folds one joint planning call over n submits into the batch
// stats. Callers hold pmu; the stats mutex still applies because readers
// don't.
func (s *Service) recordSolve(n int) {
	if invariant.Enabled && (n < 1 || n > s.cfg.MaxBatch) {
		invariant.Failf("service: solve batch size %d outside [1, %d]", n, s.cfg.MaxBatch)
	}
	s.smu.Lock()
	s.stats.Solves++
	s.stats.BatchedSubmits += n
	if n > s.stats.MaxBatch {
		s.stats.MaxBatch = n
	}
	if invariant.Enabled && (s.stats.BatchedSubmits < s.stats.Solves || s.stats.MaxBatch > s.cfg.MaxBatch) {
		invariant.Failf("service: stats accounting drifted: %d batched submits over %d solves, max batch %d (cap %d)",
			s.stats.BatchedSubmits, s.stats.Solves, s.stats.MaxBatch, s.cfg.MaxBatch)
	}
	s.smu.Unlock()
}

// finish replies to a caller whose request was applied (planned, removed,
// repaired, or answered with a service error at application time) and
// records the reply accounting and latency.
func (s *Service) finish(r *request) { s.reply(r, true) }

// finishExpired replies to a caller whose ctx died in the queue; the
// request never touched the planner and counts in Expired, not Requests.
func (s *Service) finishExpired(r *request) { s.reply(r, false) }

// reply releases the caller: closing r.done is the acknowledgement the
// submitter blocks on, so everything the outcome depends on must be
// durable by the time reply runs (the walorder analyzer enforces this
// module-wide).
//
//sqpr:ack-point
func (s *Service) reply(r *request, applied bool) {
	if invariant.Enabled && r.finished {
		invariant.Failf("service: request finished twice (kind %v, query %v)", r.kind, r.q)
	}
	r.finished = true
	lat := time.Since(r.arrived)
	s.smu.Lock()
	s.stats.Replies++
	if applied {
		s.stats.Requests++
	} else {
		s.stats.Expired++
	}
	s.stats.TotalLatency += lat
	if lat > s.stats.MaxLatency {
		s.stats.MaxLatency = lat
	}
	s.stats.LatencyHist[latencyBucket(lat)]++
	if invariant.Enabled && s.stats.Replies != s.stats.Requests+s.stats.Expired {
		invariant.Failf("service: reply accounting drifted: %d replies != %d applied + %d expired",
			s.stats.Replies, s.stats.Requests, s.stats.Expired)
	}
	s.smu.Unlock()
	close(r.done)
}

// trace invokes the configured audit callback. Callers hold pmu, so traces
// are delivered in exact application order.
func (s *Service) trace(t Trace) {
	if s.cfg.OnTrace != nil {
		s.cfg.OnTrace(t)
	}
}
