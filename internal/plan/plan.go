// Package plan defines the unified planning surface shared by every SQPR
// planner: the QueryPlanner interface, the Result/Stats structs, the
// functional submit options, and the typed errors of the public API. All
// five planners (core SQPR, heuristic, SODA-like, optimistic bound,
// hierarchical) implement QueryPlanner, so harnesses, tools and examples
// drive any of them through one call shape.
package plan

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/lp"
	"sqpr/internal/milp"
)

// QueryPlanner is the context-aware planning interface implemented by all
// planners in this repository. Implementations are not safe for concurrent
// use; drive each planner from a single goroutine.
type QueryPlanner interface {
	// Submit plans query stream q (plus any WithBatch companions) and
	// reports the outcome. A ctx cancellation or deadline aborts the
	// planning call promptly, returns ctx.Err() and leaves the planner
	// state unchanged.
	//
	//sqpr:mutates
	Submit(ctx context.Context, q dsps.StreamID, opts ...SubmitOption) (Result, error)
	// Remove withdraws an admitted query, releasing every resource no
	// remaining query depends on. Removing a query that is not admitted
	// returns an error wrapping ErrNotAdmitted.
	//
	//sqpr:mutates
	Remove(q dsps.StreamID) error
	// Repair reacts to churn events — host failures, recoveries, drains
	// and query drift — by applying the host-state transitions to the
	// system and re-planning exactly the queries the events invalidated.
	// Unlike Submit, Repair commits the event consequences even when the
	// re-planning step fails: a failed host's allocations are stripped no
	// matter what, so the planner state never references down hosts. The
	// core SQPR planner solves a migration-minimal delta MILP; the other
	// planners fall back to remove-and-resubmit of the affected queries
	// (see RepairByResubmit).
	//
	//sqpr:mutates
	Repair(ctx context.Context, events []Event, opts ...SubmitOption) (RepairResult, error)
	// Assignment exposes the current allocation state (do not mutate).
	// Planners without a physical placement (the optimistic bound) return
	// an assignment with no placements.
	Assignment() *dsps.Assignment
	// Admitted reports whether query stream q is currently served.
	Admitted(q dsps.StreamID) bool
	// AdmittedCount returns the number of admitted queries.
	AdmittedCount() int
	// Stats returns cumulative planner telemetry.
	Stats() Stats
}

// Typed errors shared by every planner. Wrap-and-compare with errors.Is.
var (
	// ErrUnknownStream reports a StreamID outside the system's stream table.
	ErrUnknownStream = errors.New("unknown stream")
	// ErrNotRequested reports a stream that was never marked as a query.
	ErrNotRequested = errors.New("stream not marked as requested")
	// ErrNotAdmitted reports a Remove of a query that is not admitted.
	ErrNotAdmitted = errors.New("query not admitted")
)

// OrBackground returns ctx, defaulting nil to context.Background(). It is
// the module's single nil-ctx normalisation point: every planner accepts a
// nil ctx for convenience, and no other library code may mint a root
// context (the ctxflow analyzer enforces this; deliberate detached roots
// are annotated //sqpr:ctxroot at the call site).
func OrBackground(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	//sqpr:ctxroot the API-wide nil-ctx default lives here and only here
	return context.Background()
}

// CheckStream validates that q indexes a stream of sys, returning an error
// wrapping ErrUnknownStream otherwise. Every planner calls this before
// touching sys.Streams[q], so caller-supplied IDs can never panic.
func CheckStream(sys *dsps.System, q dsps.StreamID) error {
	if int(q) < 0 || int(q) >= len(sys.Streams) {
		return fmt.Errorf("plan: stream %d: %w", q, ErrUnknownStream)
	}
	return nil
}

// Reason is a machine-readable explanation for a rejected submission.
type Reason int8

// Rejection reasons. ReasonNone accompanies admitted results.
const (
	// ReasonNone: the query was admitted (or was already admitted).
	ReasonNone Reason = iota
	// ReasonNoFeasiblePlan: no feasible placement was found within the
	// search budget (resources, deadline or node limit).
	ReasonNoFeasiblePlan
	// ReasonResourceExhausted: an aggregate admission check failed before
	// placement was attempted (SODA's macroQ, the optimistic bound).
	ReasonResourceExhausted
	// ReasonNoTemplate: the planner's fixed query template cannot express
	// this query (SODA's left-deep join chains).
	ReasonNoTemplate
	// ReasonValidationFailed: a candidate plan failed feasibility
	// validation and was discarded.
	ReasonValidationFailed
)

// String returns a readable name for the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonNoFeasiblePlan:
		return "no-feasible-plan"
	case ReasonResourceExhausted:
		return "resource-exhausted"
	case ReasonNoTemplate:
		return "no-template"
	case ReasonValidationFailed:
		return "validation-failed"
	}
	return fmt.Sprintf("Reason(%d)", int8(r))
}

// Result describes the outcome of one planning call, for every planner.
// Baseline planners leave the solver-effort fields zero.
type Result struct {
	// Admitted reports whether every query of the call — the primary one
	// and any WithBatch companions — is served after the call (true also
	// when all were already served before the call, so admission curves
	// count resubmissions as satisfied, matching §V-A). With a batch,
	// check Admitted(q) per query to tell which members were placed.
	Admitted bool
	// AlreadyAdmitted is set when the identical query was served before
	// the call (Algorithm 1, line 3).
	AlreadyAdmitted bool
	// Reason explains a rejection; ReasonNone when admitted.
	Reason Reason
	// SolveStatus is the MILP outcome (core SQPR and hierarchical only).
	SolveStatus milp.Status
	// PlanTime is the wall-clock duration of the planning call.
	PlanTime time.Duration
	// Nodes and LPIters report solver effort.
	Nodes   int
	LPIters int
	// Factor carries the sparse LP engine's factorization telemetry for
	// this call (core SQPR and hierarchical only): refactorization and
	// drift-rebuild counts, eta-file appends, peak eta-file length and LU
	// fill-in ratio. See lp.FactorStats.
	Factor lp.FactorStats
	// Stalled reports that the MILP search ended via its stagnation stop
	// (no incumbent progress) rather than a deadline or node budget.
	Stalled bool
	// Cuts counts root cutting planes pooled by the solve, Fixings counts
	// reduced-cost bound fixings applied during the search, and
	// PresolveFixed counts variables eliminated before the search (core
	// SQPR and hierarchical only; see internal/milp).
	Cuts          int
	Fixings       int
	PresolveFixed int
	// FreeStreams and FreeOps report the reduced problem size.
	FreeStreams, FreeOps, CandidateHosts int
	// ModelVars is the variable count of the compiled MILP model solved by
	// this call (core SQPR and hierarchical only; 0 when no solve ran).
	ModelVars int
}

// Stats aggregates planner telemetry across all planning calls.
type Stats struct {
	// Submissions counts planning calls (batch = one call).
	Submissions int
	// Rejections counts calls that failed to admit a fresh query.
	Rejections int
	// TotalPlanTime accumulates wall-clock planning time.
	TotalPlanTime time.Duration
	// TotalNodes and TotalLPIters accumulate solver effort.
	TotalNodes   int
	TotalLPIters int
	// Factor accumulates factorization telemetry across calls: counters
	// add, peak eta-file length and fill-in ratio stay high-water marks.
	Factor lp.FactorStats
	// TotalCuts, TotalFixings and TotalPresolveFixed accumulate the
	// tree-reduction counters of the MILP solver, making the effect of
	// presolve, root cuts and reduced-cost fixing observable end to end.
	TotalCuts          int
	TotalFixings       int
	TotalPresolveFixed int
	// Timeouts counts calls whose solver hit its deadline or node budget
	// before proving optimality (FeasibleMIP outcomes). Stagnation stops
	// are counted separately in Stalls: they are a deliberate early exit,
	// not a budget problem an operator should tune away.
	Timeouts int
	// Stalls counts calls ended by the solver's stagnation stop.
	Stalls int
}

// Record folds one call's outcome into the cumulative stats.
func (s *Stats) Record(res Result) {
	s.Submissions++
	if !res.Admitted {
		s.Rejections++
	}
	s.TotalPlanTime += res.PlanTime
	s.TotalNodes += res.Nodes
	s.TotalLPIters += res.LPIters
	s.Factor.Merge(res.Factor)
	s.TotalCuts += res.Cuts
	s.TotalFixings += res.Fixings
	s.TotalPresolveFixed += res.PresolveFixed
	if res.SolveStatus == milp.FeasibleMIP {
		if res.Stalled {
			s.Stalls++
		} else {
			s.Timeouts++
		}
	}
}

// SubmitConfig collects the per-call settings assembled from SubmitOptions.
type SubmitConfig struct {
	// Timeout overrides the planner's per-call solver budget. Zero keeps
	// the planner default (which batch submissions scale by batch size).
	Timeout time.Duration
	// Hosts, when non-nil, restricts the discretionary candidate hosts of
	// the call (hosts that correctness forces in are always kept).
	Hosts []dsps.HostID
	// Batch lists additional queries planned jointly with the primary one
	// in a single optimisation (§V-A1).
	Batch []dsps.StreamID
	// Validate, when non-nil, overrides the planner's feasibility
	// re-validation of produced assignments.
	Validate *bool
	// Workers, when positive, overrides how many goroutines the MILP
	// branch-and-bound uses for this call (see WithParallelism).
	Workers int
}

// SubmitOption customises one Submit call.
type SubmitOption func(*SubmitConfig)

// WithTimeout bounds the planning call by d instead of the planner's
// configured default. The context deadline, when earlier, still wins.
func WithTimeout(d time.Duration) SubmitOption {
	return func(c *SubmitConfig) { c.Timeout = d }
}

// WithCandidateHosts restricts the call's candidate host universe to the
// given set (plus hosts forced in for correctness: hosts already carrying
// related allocations and the query's base-stream locations). This is the
// building block of the hierarchical decomposition (internal/hier).
func WithCandidateHosts(hosts ...dsps.HostID) SubmitOption {
	return func(c *SubmitConfig) { c.Hosts = append([]dsps.HostID(nil), hosts...) }
}

// WithBatch plans the given queries jointly with the primary query in one
// optimisation; the solve deadline scales with the total batch size, as in
// the paper's "timeout of 30n secs" (Fig. 4(b)).
func WithBatch(qs ...dsps.StreamID) SubmitOption {
	return func(c *SubmitConfig) { c.Batch = append([]dsps.StreamID(nil), qs...) }
}

// WithValidation overrides whether the produced assignment is re-checked
// against the dsps feasibility validator before being accepted.
func WithValidation(on bool) SubmitOption {
	return func(c *SubmitConfig) { c.Validate = &on }
}

// WithParallelism sets how many goroutines explore the MILP
// branch-and-bound tree for this call. n <= 1 runs the identical search
// inline, fully deterministically; the parallel search returns the same
// admitted/rejected decision (workers share one best-first queue and one
// incumbent). Planners without a MILP solve ignore the option. Parallelism
// pays off when individual solves are large — many free streams or
// candidate hosts — and is overhead below roughly a millisecond per solve.
func WithParallelism(n int) SubmitOption {
	return func(c *SubmitConfig) { c.Workers = n }
}

// Apply folds the options into a SubmitConfig.
func Apply(opts []SubmitOption) SubmitConfig {
	var c SubmitConfig
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// Queries returns the full query list of a call: the primary query followed
// by any batch companions.
func (c *SubmitConfig) Queries(q dsps.StreamID) []dsps.StreamID {
	out := make([]dsps.StreamID, 0, 1+len(c.Batch))
	out = append(out, q)
	out = append(out, c.Batch...)
	return out
}

// HostSet returns the candidate-host restriction as a set, or nil when the
// call does not restrict hosts.
func (c *SubmitConfig) HostSet() map[dsps.HostID]bool {
	if c.Hosts == nil {
		return nil
	}
	set := make(map[dsps.HostID]bool, len(c.Hosts))
	for _, h := range c.Hosts {
		set[h] = true
	}
	return set
}

// CopyAdmitted shallow-copies an admission set; sequential batch planners
// snapshot it so an error mid-batch can roll back to the pre-call state.
func CopyAdmitted(m map[dsps.StreamID]bool) map[dsps.StreamID]bool {
	cp := make(map[dsps.StreamID]bool, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}
