package plan_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// fakePlanner is a deterministic, single-threaded QueryPlanner for service
// unit tests: it admits everything, records every call it receives, and can
// be slowed down to force requests to pile up behind the dispatcher.
type fakePlanner struct {
	mu       sync.Mutex
	delay    time.Duration
	calls    [][]dsps.StreamID // one entry per Submit, primary first
	removed  []dsps.StreamID
	repairs  int
	admitted map[dsps.StreamID]bool
	active   int // concurrent calls observed (must stay <= 1)
	maxAct   int
}

func newFakePlanner(delay time.Duration) *fakePlanner {
	return &fakePlanner{delay: delay, admitted: make(map[dsps.StreamID]bool)}
}

func (f *fakePlanner) enter() {
	f.mu.Lock()
	f.active++
	if f.active > f.maxAct {
		f.maxAct = f.active
	}
	f.mu.Unlock()
}

func (f *fakePlanner) exit() {
	f.mu.Lock()
	f.active--
	f.mu.Unlock()
}

func (f *fakePlanner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	f.enter()
	defer f.exit()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if err := ctx.Err(); err != nil {
		return plan.Result{}, err
	}
	cfg := plan.Apply(opts)
	qs := cfg.Queries(q)
	f.mu.Lock()
	f.calls = append(f.calls, qs)
	for _, s := range qs {
		f.admitted[s] = true
	}
	f.mu.Unlock()
	return plan.Result{Admitted: true}, nil
}

func (f *fakePlanner) Remove(q dsps.StreamID) error {
	f.enter()
	defer f.exit()
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.admitted[q] {
		return plan.ErrNotAdmitted
	}
	delete(f.admitted, q)
	f.removed = append(f.removed, q)
	return nil
}

func (f *fakePlanner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	f.enter()
	defer f.exit()
	f.mu.Lock()
	f.repairs++
	f.mu.Unlock()
	return plan.RepairResult{Result: plan.Result{Admitted: true}}, nil
}

func (f *fakePlanner) Assignment() *dsps.Assignment { return dsps.NewAssignment() }

func (f *fakePlanner) Admitted(q dsps.StreamID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitted[q]
}

func (f *fakePlanner) AdmittedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.admitted)
}

func (f *fakePlanner) Stats() plan.Stats { return plan.Stats{} }

// TestServiceCoalescesConcurrentSubmits checks the core throughput
// mechanism: submits that queue up while a solve runs are folded into one
// joint WithBatch call, and the planner is never entered concurrently.
func TestServiceCoalescesConcurrentSubmits(t *testing.T) {
	f := newFakePlanner(20 * time.Millisecond)
	s := plan.NewService(f, plan.ServiceConfig{MaxBatch: 8})
	defer s.Close()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(q dsps.StreamID) {
			defer wg.Done()
			res, err := s.Submit(context.Background(), q)
			if err != nil {
				t.Errorf("Submit(%d): %v", q, err)
			} else if !res.Admitted {
				t.Errorf("Submit(%d): not admitted", q)
			}
		}(dsps.StreamID(i))
	}
	wg.Wait()

	f.mu.Lock()
	calls, maxAct := len(f.calls), f.maxAct
	f.mu.Unlock()
	if maxAct > 1 {
		t.Fatalf("planner entered concurrently (%d at once)", maxAct)
	}
	if calls >= n {
		t.Fatalf("no coalescing: %d solves for %d submits", calls, n)
	}
	ss := s.ServiceStats()
	if ss.MaxBatch < 2 {
		t.Fatalf("stats recorded no batch > 1: %+v", ss)
	}
	if ss.Requests != n {
		t.Fatalf("requests = %d, want %d", ss.Requests, n)
	}
	if s.AdmittedCount() != n {
		t.Fatalf("admitted = %d, want %d", s.AdmittedCount(), n)
	}
}

// TestServiceQueueFull checks backpressure: with a tiny queue and a slow
// planner, excess submits fail fast with ErrQueueFull instead of blocking.
func TestServiceQueueFull(t *testing.T) {
	f := newFakePlanner(50 * time.Millisecond)
	s := plan.NewService(f, plan.ServiceConfig{QueueDepth: 2, MaxBatch: 1})
	defer s.Close()

	const n = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	full := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(q dsps.StreamID) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), q)
			if errors.Is(err, plan.ErrQueueFull) {
				mu.Lock()
				full++
				mu.Unlock()
			} else if err != nil {
				t.Errorf("Submit(%d): %v", q, err)
			}
		}(dsps.StreamID(i))
	}
	wg.Wait()
	if full == 0 {
		t.Fatal("32 submits against a depth-2 queue with a 50ms planner never saw ErrQueueFull")
	}
	if got := s.ServiceStats().QueueFull; got != full {
		t.Fatalf("stats.QueueFull = %d, want %d", got, full)
	}
}

// TestServiceCloseIdempotent checks shutdown: queued work drains, late
// requests fail with ErrServiceClosed, and double Close does not panic.
func TestServiceCloseIdempotent(t *testing.T) {
	f := newFakePlanner(0)
	s := plan.NewService(f, plan.ServiceConfig{})
	if _, err := s.Submit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // must not panic
	if _, err := s.Submit(context.Background(), 2); !errors.Is(err, plan.ErrServiceClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrServiceClosed", err)
	}
	if err := s.Remove(1); !errors.Is(err, plan.ErrServiceClosed) {
		t.Fatalf("Remove after Close: err = %v, want ErrServiceClosed", err)
	}
	if _, err := s.Repair(context.Background(), nil); !errors.Is(err, plan.ErrServiceClosed) {
		t.Fatalf("Repair after Close: err = %v, want ErrServiceClosed", err)
	}
}

// TestServiceExpiredContextSkipped checks per-request deadlines: a request
// whose ctx died while queued is answered with the ctx error and never
// reaches the planner.
func TestServiceExpiredContextSkipped(t *testing.T) {
	f := newFakePlanner(30 * time.Millisecond)
	s := plan.NewService(f, plan.ServiceConfig{MaxBatch: 1})
	defer s.Close()

	// Occupy the dispatcher, then enqueue a request that expires while
	// waiting behind it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit(context.Background(), 1)
	}()
	time.Sleep(5 * time.Millisecond) // let the first submit get picked up
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired submit: err = %v, want context.Canceled", err)
	}
	wg.Wait()
	// Give the dispatcher time to (wrongly) plan query 2 if it were going to.
	time.Sleep(50 * time.Millisecond)
	if f.Admitted(2) {
		t.Fatal("planner planned a request whose ctx was already cancelled")
	}
	if s.ServiceStats().Expired == 0 {
		t.Fatal("stats recorded no expired request")
	}
}

// TestServiceOrderAndTrace checks the ordering guarantee: requests are
// applied in arrival order, the trace reports them in application order, and
// a Remove between two submit runs splits the coalesced batches.
func TestServiceOrderAndTrace(t *testing.T) {
	f := newFakePlanner(0)
	var mu sync.Mutex
	var trace []plan.Trace
	s := plan.NewService(f, plan.ServiceConfig{
		MaxBatch: 8,
		OnTrace: func(tr plan.Trace) {
			mu.Lock()
			trace = append(trace, tr)
			mu.Unlock()
		},
	})
	// Sequential requests (each waits for its reply), so the order is fixed.
	ctx := context.Background()
	if _, err := s.Submit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Repair(ctx, []plan.Event{plan.FailHost(0)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	want := []plan.TraceKind{plan.TraceSubmit, plan.TraceSubmit, plan.TraceRemove, plan.TraceRepair}
	if len(trace) != len(want) {
		t.Fatalf("trace has %d entries, want %d: %+v", len(trace), len(want), trace)
	}
	for i, k := range want {
		if trace[i].Kind != k {
			t.Fatalf("trace[%d].Kind = %v, want %v", i, trace[i].Kind, k)
		}
	}
	if trace[2].Queries[0] != 1 {
		t.Fatalf("trace remove query = %d, want 1", trace[2].Queries[0])
	}
}

// TestServiceNonCoalescibleOptionsRunSolo checks that submits carrying
// per-call options are never folded into a shared batch.
func TestServiceNonCoalescibleOptionsRunSolo(t *testing.T) {
	f := newFakePlanner(20 * time.Millisecond)
	s := plan.NewService(f, plan.ServiceConfig{MaxBatch: 8})
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(q dsps.StreamID) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), q, plan.WithCandidateHosts(0)); err != nil {
				t.Errorf("Submit(%d): %v", q, err)
			}
		}(dsps.StreamID(i))
	}
	wg.Wait()

	f.mu.Lock()
	defer f.mu.Unlock()
	for _, call := range f.calls {
		if len(call) != 1 {
			t.Fatalf("host-restricted submit was coalesced into batch %v", call)
		}
	}
}

// TestServiceReplyAccounting pins the Requests/Replies/Expired split: an
// expired request is a reply but not an applied request, so the identity
// Replies == Requests + Expired holds and Requests counts only requests
// that reached the application step.
func TestServiceReplyAccounting(t *testing.T) {
	f := newFakePlanner(30 * time.Millisecond)
	s := plan.NewService(f, plan.ServiceConfig{MaxBatch: 1})
	defer s.Close()

	// Occupy the dispatcher, then enqueue a request that expires behind it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit(context.Background(), 1)
	}()
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired submit: err = %v, want context.Canceled", err)
	}
	wg.Wait()
	s.Close() // drain so the expired request's reply is recorded

	ss := s.ServiceStats()
	if ss.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", ss.Expired)
	}
	if ss.Requests != 1 {
		t.Fatalf("Requests = %d, want 1 (expired request must not count as applied)", ss.Requests)
	}
	if ss.Replies != ss.Requests+ss.Expired {
		t.Fatalf("Replies = %d, want Requests+Expired = %d", ss.Replies, ss.Requests+ss.Expired)
	}
}

// TestServiceLatencyHistogram checks that every reply lands in exactly one
// latency bucket: sum(LatencyHist) == Replies.
func TestServiceLatencyHistogram(t *testing.T) {
	f := newFakePlanner(time.Millisecond)
	s := plan.NewService(f, plan.ServiceConfig{})
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(context.Background(), dsps.StreamID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	ss := s.ServiceStats()
	total := 0
	for _, n := range ss.LatencyHist {
		total += n
	}
	if total != ss.Replies || ss.Replies != 10 {
		t.Fatalf("histogram holds %d samples, Replies = %d, want both 10", total, ss.Replies)
	}
	if ss.MaxLatency <= 0 || ss.TotalLatency < ss.MaxLatency {
		t.Fatalf("latency aggregates inconsistent: total=%v max=%v", ss.TotalLatency, ss.MaxLatency)
	}
}
