package plan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"sqpr/internal/dsps"
	"sqpr/internal/invariant"
	"sqpr/internal/wal"
)

// ErrWALFailed reports that the admission journal could not be written.
// The service wedges on the first journal failure: the in-memory planner
// may already hold the unjournaled outcome, so acknowledging it — or any
// later state change — would let memory silently diverge from the durable
// log. Reads keep working; every state-changing request fails fast with an
// error wrapping this sentinel until the operator restarts the service
// (which recovers from the log's last good state).
var ErrWALFailed = errors.New("admission journal failed")

// walRecord is the journal record envelope: one deterministic state delta
// per applied request group. Kind is informational (audit/debug); replay
// needs only the delta.
type walRecord struct {
	Kind  string `json:"kind"`
	Delta Delta  `json:"delta"`
}

// RecoveredState reports what OpenService rebuilt from the journal.
type RecoveredState struct {
	// UsedSnapshot is true when a snapshot seeded the replay (rather than
	// the fresh-planner baseline).
	UsedSnapshot bool
	// Records is the number of journal records replayed.
	Records int
	// Admitted is the admitted query count after recovery.
	Admitted int
	// TailTruncated is the number of torn tail bytes the log cut during
	// recovery (see wal.Recovered).
	TailTruncated int
}

// OpenService opens (or creates) the write-ahead log stored in fs,
// replays it into planner p, and returns a running admission service that
// journals every state-changing outcome before acknowledging it.
//
// p must be a freshly constructed planner over a system identical to the
// one the log was written against: recovery replays recorded deltas on top
// of the fresh planner's exported baseline (or the latest snapshot) and
// imports the result wholesale, so the restarted planner reaches the exact
// pre-crash state — admitted set, placements and host availability — with
// zero planning solves. p must implement StatePorter.
//
// The service owns the log: Close flushes and closes it.
func OpenService(p QueryPlanner, cfg ServiceConfig, fs wal.FS, wopts wal.Options) (*Service, RecoveredState, error) {
	var rs RecoveredState
	porter, ok := p.(StatePorter)
	if !ok {
		return nil, rs, fmt.Errorf("plan: %T does not implement StatePorter; a durable service cannot journal it", p)
	}
	log, recv, err := wal.Open(fs, wopts)
	if err != nil {
		return nil, rs, fmt.Errorf("plan: opening admission journal: %w", err)
	}
	rs.TailTruncated = recv.TailTruncated

	st := porter.ExportState()
	if recv.Snapshot != nil {
		if err := json.Unmarshal(recv.Snapshot, &st); err != nil {
			return nil, rs, fmt.Errorf("plan: decoding journal snapshot %d: %w", recv.SnapshotSeq, err)
		}
		rs.UsedSnapshot = true
	}
	for _, e := range recv.Entries {
		var r walRecord
		if err := json.Unmarshal(e.Data, &r); err != nil {
			return nil, rs, fmt.Errorf("plan: decoding journal record %d: %w", e.Seq, err)
		}
		st.Apply(r.Delta)
		rs.Records++
	}
	if rs.UsedSnapshot || rs.Records > 0 {
		if err := porter.ImportState(st); err != nil {
			return nil, rs, fmt.Errorf("plan: importing recovered state: %w", err)
		}
	}
	rs.Admitted = p.AdmittedCount()

	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	s := newService(p, cfg)
	s.pmu.Lock()
	s.walLog = log
	s.porter = porter
	s.last = porter.ExportState()
	s.pmu.Unlock()
	go s.dispatch()
	return s, rs, nil
}

// journal writes the state delta of the request group the dispatcher just
// applied, before any member is acknowledged. Diffing exported state makes
// the journal planner-agnostic and self-correcting: rejected submissions
// and failed calls produce an empty delta and cost nothing. Returns the
// error the group's members must be answered with (nil when clean).
// Callers hold pmu.
//
//sqpr:locked pmu
//sqpr:journal-point
func (s *Service) journal(kind TraceKind) error {
	if s.walLog == nil {
		return nil
	}
	if s.walErr != nil {
		return s.walErr
	}
	cur := s.porter.ExportState()
	d := Diff(s.last, cur)
	if d.IsEmpty() {
		return nil
	}
	data, err := json.Marshal(walRecord{Kind: kind.String(), Delta: d})
	if err != nil {
		return s.setWALErr(fmt.Errorf("plan: encoding journal record: %w: %w", err, ErrWALFailed))
	}
	if _, err := s.walLog.Append(data); err != nil {
		return s.setWALErr(fmt.Errorf("plan: appending journal record: %w: %w", err, ErrWALFailed))
	}
	s.last = cur
	s.sinceSnap++
	if s.sinceSnap >= s.cfg.SnapshotEvery {
		snap, err := json.Marshal(cur)
		if err != nil {
			return s.setWALErr(fmt.Errorf("plan: encoding journal snapshot: %w: %w", err, ErrWALFailed))
		}
		if err := s.walLog.WriteSnapshot(snap); err != nil {
			return s.setWALErr(fmt.Errorf("plan: writing journal snapshot: %w: %w", err, ErrWALFailed))
		}
		s.sinceSnap = 0
	}
	if invariant.Enabled && s.walLog.SnapshotSeq() > s.walLog.LastSeq() {
		invariant.Failf("service: journal snapshot seq %d ahead of log seq %d",
			s.walLog.SnapshotSeq(), s.walLog.LastSeq())
	}
	return nil
}

// setWALErr records the sticky journal error and publishes it to the
// lock-free mirror Wedged reads. Callers hold pmu.
//
//sqpr:locked pmu
func (s *Service) setWALErr(err error) error {
	s.walErr = err
	s.wedge.Store(&err)
	return err
}

// wedged reports the sticky journal error, if any. Callers hold pmu.
//
//sqpr:locked pmu
func (s *Service) wedged() error {
	return s.walErr
}

// Wedged reports whether the service is wedged on a journal failure: nil
// for a healthy (or non-durable) service, otherwise the sticky error
// wrapping ErrWALFailed that every state-changing request is answered
// with. Readiness probes use this: a wedged service still serves reads but
// cannot accept work until restarted. Wedged is lock-free — it never queues
// behind the dispatcher, so probes stay responsive through long solves.
func (s *Service) Wedged() error {
	if p := s.wedge.Load(); p != nil {
		return *p
	}
	return nil
}

// WALStats returns the journal's telemetry, or a zero Stats when the
// service is not durable.
func (s *Service) WALStats() wal.Stats {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.walLog == nil {
		return wal.Stats{}
	}
	return s.walLog.Stats()
}

// SyncWAL flushes any unsynced journal records to stable storage (used by
// graceful shutdown under relaxed fsync policies). A no-op for
// non-durable services.
func (s *Service) SyncWAL() error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.walLog == nil || s.walErr != nil {
		return s.walErr
	}
	return s.walLog.Sync()
}

// Reconcile diffs the planner's intended host availability against an
// observed view (typically engine.HostStates) and repairs any divergence:
// hosts observed down are failed, hosts observed back are recovered,
// hosts observed draining are drained — through the same serialised Repair
// path as explicit churn events, journaled like every other state change.
// It returns the events it emitted (nil when intent and observation agree)
// and the repair outcome. This is the operator-style reconciliation loop:
// instead of hand-feeding churn to planner and engine separately (the
// manual ApplyChurn flow), callers observe the world and let the service
// converge its intent to it.
//
// The wrapped planner must implement StatePorter (all planners in this
// repository do).
func (s *Service) Reconcile(ctx context.Context, observed []dsps.HostState, opts ...SubmitOption) (RepairResult, []Event, error) {
	s.pmu.Lock()
	porter, ok := s.p.(StatePorter)
	if !ok {
		p := s.p
		s.pmu.Unlock()
		return RepairResult{}, nil, fmt.Errorf("plan: %T does not implement StatePorter; Reconcile cannot read its intent", p)
	}
	intent := porter.ExportState().Hosts
	s.pmu.Unlock()

	var events []Event
	for h, obs := range observed {
		cur := dsps.HostUp
		if h < len(intent) {
			cur = intent[h]
		}
		if cur == obs {
			continue
		}
		switch obs {
		case dsps.HostDown:
			events = append(events, FailHost(dsps.HostID(h)))
		case dsps.HostUp:
			events = append(events, RecoverHost(dsps.HostID(h)))
		case dsps.HostDraining:
			events = append(events, DrainHost(dsps.HostID(h)))
		default:
			return RepairResult{}, nil, fmt.Errorf("plan: observed host %d in unknown state %d", h, int8(obs))
		}
	}
	if len(events) == 0 {
		return RepairResult{Result: Result{Admitted: true}}, nil, nil
	}
	rr, err := s.Repair(ctx, events, opts...)
	return rr, events, err
}
