package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"sqpr/internal/dsps"
)

// State is the complete durable state of a planner: the allocation, the
// admitted query set, the host availability states, and an optional
// planner-private extension. It is what the write-ahead log snapshots and
// what recovery rebuilds — re-importing an exported State must reproduce
// the planner exactly, without re-running any solve.
//
// Marshalling is deterministic (sorted slices throughout), so two planners
// in the same state produce byte-identical JSON; tests and the recovery
// acceptance check compare states that way.
type State struct {
	// Assignment is the full allocation (never nil after Export).
	Assignment *dsps.Assignment `json:"assignment"`
	// Admitted lists the admitted queries in ascending order.
	Admitted []dsps.StreamID `json:"admitted"`
	// Hosts is the availability state per host, indexed by HostID.
	Hosts []dsps.HostState `json:"hosts"`
	// Aux carries planner-private state (e.g. the optimistic bound's cost
	// ledger) as deterministic JSON; nil for planners without any.
	Aux json.RawMessage `json:"aux,omitempty"`
}

// StatePorter is implemented by planners whose state can be exported and
// re-imported. All five planners in this repository implement it; the
// durable service requires it.
type StatePorter interface {
	// ExportState returns a deep snapshot of the planner's current state.
	ExportState() State
	// ImportState replaces the planner's state with s, including the host
	// availability states of its system. Counters (Stats) are not part of
	// the durable state and are left untouched.
	ImportState(s State) error
}

// Clone deep-copies the state.
func (s State) Clone() State {
	c := State{
		Admitted: append([]dsps.StreamID(nil), s.Admitted...),
		Hosts:    append([]dsps.HostState(nil), s.Hosts...),
	}
	if s.Assignment != nil {
		c.Assignment = s.Assignment.Clone()
	} else {
		c.Assignment = dsps.NewAssignment()
	}
	if s.Aux != nil {
		c.Aux = append(json.RawMessage(nil), s.Aux...)
	}
	return c
}

// Equal reports whether two states are identical, by comparing their
// deterministic serialisations.
func (s State) Equal(o State) bool {
	a, err1 := json.Marshal(s)
	b, err2 := json.Marshal(o)
	return err1 == nil && err2 == nil && bytes.Equal(a, b)
}

// ExportedState assembles a State from the fields every planner keeps:
// its assignment, admitted set and system. Planner-private extras go in
// Aux afterwards.
func ExportedState(sys *dsps.System, a *dsps.Assignment, admitted map[dsps.StreamID]bool) State {
	s := State{
		Assignment: a.Clone(),
		Admitted:   make([]dsps.StreamID, 0, len(admitted)),
		Hosts:      make([]dsps.HostState, sys.NumHosts()),
	}
	for q, ok := range admitted {
		if ok {
			s.Admitted = append(s.Admitted, q)
		}
	}
	sort.Slice(s.Admitted, func(i, j int) bool { return s.Admitted[i] < s.Admitted[j] })
	for h := range sys.Hosts {
		s.Hosts[h] = sys.Hosts[h].State
	}
	return s
}

// CheckState validates a State against a system before import.
func CheckState(sys *dsps.System, s State) error {
	if len(s.Hosts) != sys.NumHosts() {
		return fmt.Errorf("plan: state has %d host states, system has %d hosts", len(s.Hosts), sys.NumHosts())
	}
	for _, q := range s.Admitted {
		if err := CheckStream(sys, q); err != nil {
			return err
		}
	}
	return nil
}

// ApplyHostStates transitions every host of sys to the recorded state.
func ApplyHostStates(sys *dsps.System, states []dsps.HostState) {
	for h, st := range states {
		sys.SetHostState(dsps.HostID(h), st)
	}
}

// AdmittedSet converts the sorted admitted list back to set form.
func (s State) AdmittedSet() map[dsps.StreamID]bool {
	m := make(map[dsps.StreamID]bool, len(s.Admitted))
	for _, q := range s.Admitted {
		m[q] = true
	}
	return m
}

// ProvideChange records one provider (re)binding in a Delta.
type ProvideChange struct {
	Stream dsps.StreamID `json:"stream"`
	Host   dsps.HostID   `json:"host"`
}

// HostChange records one host availability transition in a Delta.
type HostChange struct {
	Host  dsps.HostID    `json:"host"`
	State dsps.HostState `json:"state"`
}

// Delta is the difference between two States, in applyable form. The
// durable service journals one Delta per state-changing call; replaying
// them over the base state reproduces the final state without solving.
// All slices are sorted, so a Delta marshals deterministically.
type Delta struct {
	AdmitAdd   []dsps.StreamID  `json:"admit_add,omitempty"`
	AdmitDel   []dsps.StreamID  `json:"admit_del,omitempty"`
	ProvideSet []ProvideChange  `json:"provide_set,omitempty"`
	ProvideDel []dsps.StreamID  `json:"provide_del,omitempty"`
	FlowAdd    []dsps.Flow      `json:"flow_add,omitempty"`
	FlowDel    []dsps.Flow      `json:"flow_del,omitempty"`
	OpAdd      []dsps.Placement `json:"op_add,omitempty"`
	OpDel      []dsps.Placement `json:"op_del,omitempty"`
	Hosts      []HostChange     `json:"hosts,omitempty"`
	// Aux replaces the planner-private state wholesale when AuxSet is true
	// (private state has no generic sub-structure to diff).
	Aux    json.RawMessage `json:"aux,omitempty"`
	AuxSet bool            `json:"aux_set,omitempty"`
}

// IsEmpty reports whether the delta changes nothing.
func (d Delta) IsEmpty() bool {
	return len(d.AdmitAdd) == 0 && len(d.AdmitDel) == 0 &&
		len(d.ProvideSet) == 0 && len(d.ProvideDel) == 0 &&
		len(d.FlowAdd) == 0 && len(d.FlowDel) == 0 &&
		len(d.OpAdd) == 0 && len(d.OpDel) == 0 &&
		len(d.Hosts) == 0 && !d.AuxSet
}

func sortFlows(fs []dsps.Flow) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Stream != fs[j].Stream {
			return fs[i].Stream < fs[j].Stream
		}
		if fs[i].From != fs[j].From {
			return fs[i].From < fs[j].From
		}
		return fs[i].To < fs[j].To
	})
}

func sortOps(ps []dsps.Placement) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Op != ps[j].Op {
			return ps[i].Op < ps[j].Op
		}
		return ps[i].Host < ps[j].Host
	})
}

// Diff computes the delta that transforms before into after.
func Diff(before, after State) Delta {
	var d Delta

	beforeAdm := before.AdmittedSet()
	afterAdm := after.AdmittedSet()
	for _, q := range after.Admitted {
		if !beforeAdm[q] {
			d.AdmitAdd = append(d.AdmitAdd, q)
		}
	}
	for _, q := range before.Admitted {
		if !afterAdm[q] {
			d.AdmitDel = append(d.AdmitDel, q)
		}
	}

	ba, aa := before.Assignment, after.Assignment
	for s, h := range aa.Provides {
		if ph, ok := ba.Provides[s]; !ok || ph != h {
			d.ProvideSet = append(d.ProvideSet, ProvideChange{Stream: s, Host: h})
		}
	}
	for s := range ba.Provides {
		if _, ok := aa.Provides[s]; !ok {
			d.ProvideDel = append(d.ProvideDel, s)
		}
	}
	sort.Slice(d.ProvideSet, func(i, j int) bool { return d.ProvideSet[i].Stream < d.ProvideSet[j].Stream })
	sort.Slice(d.ProvideDel, func(i, j int) bool { return d.ProvideDel[i] < d.ProvideDel[j] })

	for f, on := range aa.Flows {
		if on && !ba.Flows[f] {
			d.FlowAdd = append(d.FlowAdd, f)
		}
	}
	for f, on := range ba.Flows {
		if on && !aa.Flows[f] {
			d.FlowDel = append(d.FlowDel, f)
		}
	}
	sortFlows(d.FlowAdd)
	sortFlows(d.FlowDel)

	for p, on := range aa.Ops {
		if on && !ba.Ops[p] {
			d.OpAdd = append(d.OpAdd, p)
		}
	}
	for p, on := range ba.Ops {
		if on && !aa.Ops[p] {
			d.OpDel = append(d.OpDel, p)
		}
	}
	sortOps(d.OpAdd)
	sortOps(d.OpDel)

	for h := range after.Hosts {
		if h >= len(before.Hosts) || before.Hosts[h] != after.Hosts[h] {
			d.Hosts = append(d.Hosts, HostChange{Host: dsps.HostID(h), State: after.Hosts[h]})
		}
	}

	if !bytes.Equal(before.Aux, after.Aux) {
		d.Aux = append(json.RawMessage(nil), after.Aux...)
		d.AuxSet = true
	}
	return d
}

// Apply applies the delta to s in place (s must be a mutable copy, e.g.
// from Clone). Sequence matters only between deletion and addition of the
// same key; deletions run first.
func (s *State) Apply(d Delta) {
	if s.Assignment == nil {
		s.Assignment = dsps.NewAssignment()
	}
	if len(d.AdmitDel) > 0 || len(d.AdmitAdd) > 0 {
		adm := s.AdmittedSet()
		for _, q := range d.AdmitDel {
			delete(adm, q)
		}
		for _, q := range d.AdmitAdd {
			adm[q] = true
		}
		s.Admitted = s.Admitted[:0]
		for q := range adm {
			s.Admitted = append(s.Admitted, q)
		}
		sort.Slice(s.Admitted, func(i, j int) bool { return s.Admitted[i] < s.Admitted[j] })
	}
	for _, q := range d.ProvideDel {
		delete(s.Assignment.Provides, q)
	}
	for _, pc := range d.ProvideSet {
		s.Assignment.Provides[pc.Stream] = pc.Host
	}
	for _, f := range d.FlowDel {
		delete(s.Assignment.Flows, f)
	}
	for _, f := range d.FlowAdd {
		s.Assignment.Flows[f] = true
	}
	for _, p := range d.OpDel {
		delete(s.Assignment.Ops, p)
	}
	for _, p := range d.OpAdd {
		s.Assignment.Ops[p] = true
	}
	for _, hc := range d.Hosts {
		for len(s.Hosts) <= int(hc.Host) {
			s.Hosts = append(s.Hosts, dsps.HostUp)
		}
		s.Hosts[hc.Host] = hc.State
	}
	if d.AuxSet {
		s.Aux = append(json.RawMessage(nil), d.Aux...)
	}
}
