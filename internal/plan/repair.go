package plan

import (
	"context"
	"fmt"
	"time"

	"sqpr/internal/dsps"
)

// EventKind classifies one churn event handled by Repair.
type EventKind int8

// Churn event kinds.
const (
	// HostFailed: the host went down. Its allocations are invalid; the
	// queries they supported must be re-planned or dropped.
	HostFailed EventKind = iota
	// HostRecovered: the host is back up and may receive new load again.
	// Recovery never invalidates placements; harnesses typically follow it
	// by resubmitting previously dropped queries.
	HostRecovered
	// HostDrained: the host is being decommissioned gracefully. Existing
	// allocations keep running, but repair migrates them off best-effort
	// and planners avoid new placements there.
	HostDrained
	// QueryDrifted: the query's observed resource consumption diverged from
	// the plan (§IV-B); its placement should be re-optimised.
	QueryDrifted
)

// String returns a readable name for the kind.
func (k EventKind) String() string {
	switch k {
	case HostFailed:
		return "host-failed"
	case HostRecovered:
		return "host-recovered"
	case HostDrained:
		return "host-drained"
	case QueryDrifted:
		return "query-drifted"
	}
	return fmt.Sprintf("EventKind(%d)", int8(k))
}

// Event is one churn event. Host events carry Host; QueryDrifted carries
// Query.
type Event struct {
	Kind  EventKind
	Host  dsps.HostID
	Query dsps.StreamID
}

// FailHost returns a host-failure event.
func FailHost(h dsps.HostID) Event { return Event{Kind: HostFailed, Host: h} }

// RecoverHost returns a host-recovery event.
func RecoverHost(h dsps.HostID) Event { return Event{Kind: HostRecovered, Host: h} }

// DrainHost returns a graceful host-decommission event.
func DrainHost(h dsps.HostID) Event { return Event{Kind: HostDrained, Host: h} }

// DriftQuery returns a query-drift event.
func DriftQuery(q dsps.StreamID) Event { return Event{Kind: QueryDrifted, Query: q} }

// RepairResult reports the outcome of one Repair call. The embedded Result
// carries the solver telemetry of the delta solve (or the cumulative effort
// of the fallback resubmissions); Admitted reports whether every affected
// query is still served.
type RepairResult struct {
	Result
	// Affected lists the admitted queries the events invalidated (sorted):
	// support touching a failed or draining host, plus drifted queries.
	Affected []dsps.StreamID
	// Kept is the subset of Affected still admitted after the repair.
	Kept []dsps.StreamID
	// Dropped is the subset of Affected that lost its admission.
	Dropped []dsps.StreamID
	// Migrated counts operators that survived the repair on a different
	// host (see dsps.CountMigrations).
	Migrated int
}

// ApplyEvents applies the host-state transitions of the event set to the
// system, validating IDs first so malformed events cannot corrupt state.
func ApplyEvents(sys *dsps.System, events []Event) error {
	for _, ev := range events {
		switch ev.Kind {
		case HostFailed, HostRecovered, HostDrained:
			if int(ev.Host) < 0 || int(ev.Host) >= sys.NumHosts() {
				return fmt.Errorf("plan: event %v: host %d out of range", ev.Kind, ev.Host)
			}
		case QueryDrifted:
			if err := CheckStream(sys, ev.Query); err != nil {
				return fmt.Errorf("plan: event %v: %w", ev.Kind, err)
			}
		default:
			return fmt.Errorf("plan: unknown event kind %d", int8(ev.Kind))
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case HostFailed:
			sys.SetHostState(ev.Host, dsps.HostDown)
		case HostRecovered:
			sys.SetHostState(ev.Host, dsps.HostUp)
		case HostDrained:
			sys.SetHostState(ev.Host, dsps.HostDraining)
		}
	}
	return nil
}

// DriftedEventQueries extracts the QueryDrifted targets that are currently
// admitted, deduplicated against the already-collected affected set.
func DriftedEventQueries(events []Event, affected []dsps.StreamID, admitted func(dsps.StreamID) bool) []dsps.StreamID {
	have := make(map[dsps.StreamID]bool, len(affected))
	for _, q := range affected {
		have[q] = true
	}
	var extra []dsps.StreamID
	for _, ev := range events {
		if ev.Kind == QueryDrifted && !have[ev.Query] && admitted(ev.Query) {
			have[ev.Query] = true
			extra = append(extra, ev.Query)
		}
	}
	return extra
}

// RepairByResubmit is the fallback Repair shared by planners without a
// delta solver: apply the events, remove every query invalidated by a host
// failure (or flagged as drifted), and resubmit each one through the
// planner's own Submit, which re-places it on the surviving hosts. It is
// correct — the resulting state never references down hosts and every
// affected query is either re-admitted or reported dropped — but migrates
// freely: resubmission forgets where the surviving operators ran. Draining
// hosts are left alone (their allocations are still valid; only the core
// delta solver evacuates them).
func RepairByResubmit(ctx context.Context, sys *dsps.System, p QueryPlanner, events []Event, opts ...SubmitOption) (RepairResult, error) {
	ctx = OrBackground(ctx)
	start := time.Now()
	var rr RepairResult
	if err := ApplyEvents(sys, events); err != nil {
		return rr, err
	}
	before := p.Assignment().Clone()

	rr.Affected = p.Assignment().AffectedQueries(sys, func(h dsps.HostID) bool {
		return !sys.HostUsable(h)
	})
	rr.Affected = append(rr.Affected, DriftedEventQueries(events, rr.Affected, p.Admitted)...)
	sortStreamIDs(rr.Affected)
	if len(rr.Affected) == 0 {
		rr.Admitted = true
		rr.PlanTime = time.Since(start)
		return rr, nil
	}

	for _, q := range rr.Affected {
		if p.Admitted(q) {
			if err := p.Remove(q); err != nil {
				rr.PlanTime = time.Since(start)
				return rr, fmt.Errorf("plan: repair removing query %d: %w", q, err)
			}
		}
	}
	// Removal garbage-collects all invalidated support; strip any stray
	// down-host pieces defensively so resubmission starts from a clean,
	// feasible state even if the planner left orphans behind.
	p.Assignment().StripFailed(sys)

	rr.Admitted = true
	for i, q := range rr.Affected {
		res, err := p.Submit(ctx, q, opts...)
		if err != nil {
			// This query and every remaining affected query stay
			// unadmitted; report them as dropped so the caller sees the
			// true degraded state.
			rr.Dropped = append(rr.Dropped, rr.Affected[i:]...)
			rr.Admitted = false
			rr.Migrated = dsps.CountMigrations(sys, before, p.Assignment())
			rr.PlanTime = time.Since(start)
			return rr, err
		}
		rr.Nodes += res.Nodes
		rr.LPIters += res.LPIters
		rr.Factor.Merge(res.Factor)
		if res.Admitted {
			rr.Kept = append(rr.Kept, q)
		} else {
			rr.Dropped = append(rr.Dropped, q)
			rr.Admitted = false
			rr.Reason = res.Reason
		}
	}
	rr.Migrated = dsps.CountMigrations(sys, before, p.Assignment())
	rr.PlanTime = time.Since(start)
	return rr, nil
}

func sortStreamIDs(s []dsps.StreamID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
