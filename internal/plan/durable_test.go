package plan_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

// durableFake is a minimal stateful QueryPlanner + StatePorter: it admits
// any requested stream onto the first usable host and reacts to churn by
// stripping failed placements. It lets the durable-service tests exercise
// journaling, wedging, recovery and reconciliation without MILP solves
// (real-planner replay equivalence is covered by the repo-level
// conformance tests).
type durableFake struct {
	mu       sync.Mutex
	sys      *dsps.System
	state    *dsps.Assignment
	admitted map[dsps.StreamID]bool
	stats    plan.Stats
}

func newDurableFake(nHosts, nStreams int) *durableFake {
	hosts := make([]dsps.Host, nHosts)
	for i := range hosts {
		hosts[i] = dsps.Host{ID: dsps.HostID(i), CPU: 100, OutBW: 100, InBW: 100}
	}
	sys := dsps.NewSystem(hosts, 100)
	for i := 0; i < nStreams; i++ {
		s := sys.AddStream(1, dsps.NoOperator, "")
		sys.SetRequested(s, true)
		sys.PlaceBase(dsps.HostID(i%nHosts), s)
	}
	return &durableFake{
		sys:      sys,
		state:    dsps.NewAssignment(),
		admitted: make(map[dsps.StreamID]bool),
	}
}

func (f *durableFake) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Submissions++
	cfg := plan.Apply(opts)
	res := plan.Result{Admitted: true}
	for _, s := range cfg.Queries(q) {
		if err := plan.CheckStream(f.sys, s); err != nil {
			return plan.Result{}, err
		}
		if f.admitted[s] {
			res.AlreadyAdmitted = true
			continue
		}
		placed := false
		for h := range f.sys.Hosts {
			if f.sys.HostPlaceable(dsps.HostID(h)) {
				f.state.Provides[s] = dsps.HostID(h)
				f.admitted[s] = true
				placed = true
				break
			}
		}
		if !placed {
			res.Admitted = false
			res.Reason = plan.ReasonResourceExhausted
		}
	}
	return res, nil
}

func (f *durableFake) Remove(q dsps.StreamID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.admitted[q] {
		return plan.ErrNotAdmitted
	}
	delete(f.admitted, q)
	delete(f.state.Provides, q)
	return nil
}

func (f *durableFake) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rr plan.RepairResult
	if err := plan.ApplyEvents(f.sys, events); err != nil {
		return rr, err
	}
	f.state.StripFailed(f.sys)
	for q := range f.admitted {
		if _, ok := f.state.Provides[q]; !ok {
			delete(f.admitted, q)
			rr.Dropped = append(rr.Dropped, q)
		}
	}
	rr.Admitted = true
	return rr, nil
}

func (f *durableFake) Assignment() *dsps.Assignment { return f.state }

func (f *durableFake) Admitted(q dsps.StreamID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitted[q]
}

func (f *durableFake) AdmittedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.admitted)
}

func (f *durableFake) Stats() plan.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *durableFake) ExportState() plan.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return plan.ExportedState(f.sys, f.state, f.admitted)
}

func (f *durableFake) ImportState(s plan.State) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := plan.CheckState(f.sys, s); err != nil {
		return err
	}
	plan.ApplyHostStates(f.sys, s.Hosts)
	f.state = s.Assignment.Clone()
	f.admitted = s.AdmittedSet()
	return nil
}

func TestDurableServiceJournalsAndRecovers(t *testing.T) {
	fs := walfault.New()
	f := newDurableFake(3, 6)
	s, rs, err := plan.OpenService(f, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	if rs.Records != 0 || rs.UsedSnapshot {
		t.Fatalf("fresh journal recovered %+v", rs)
	}
	ctx := context.Background()
	for q := 0; q < 4; q++ {
		if _, err := s.Submit(ctx, dsps.StreamID(q)); err != nil {
			t.Fatalf("Submit(%d): %v", q, err)
		}
	}
	if err := s.Remove(dsps.StreamID(1)); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := s.Repair(ctx, []plan.Event{plan.FailHost(2)}); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	s.Close()
	want := f.ExportState()

	// Restart: identical fresh planner, same journal directory.
	f2 := newDurableFake(3, 6)
	s2, rs2, err := plan.OpenService(f2, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rs2.Records == 0 {
		t.Fatal("reopen replayed no records")
	}
	if got := f2.ExportState(); !got.Equal(want) {
		t.Fatalf("recovered state diverged:\n got %+v\nwant %+v", got, want)
	}
	if f2.Stats().Submissions != 0 {
		t.Fatalf("recovery ran %d planner submissions, want 0", f2.Stats().Submissions)
	}
	if rs2.Admitted != f.AdmittedCount() {
		t.Fatalf("recovered %d admitted, want %d", rs2.Admitted, f.AdmittedCount())
	}
	// The recovered service keeps journaling: one more op survives another
	// restart.
	if _, err := s2.Submit(ctx, dsps.StreamID(5)); err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	s2.Close()
	f3 := newDurableFake(3, 6)
	s3, _, err := plan.OpenService(f3, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer s3.Close()
	if got := f3.ExportState(); !got.Equal(f2.ExportState()) {
		t.Fatal("state after second recovery diverged")
	}
}

func TestDurableServiceSnapshotCompaction(t *testing.T) {
	fs := walfault.New()
	f := newDurableFake(2, 8)
	s, _, err := plan.OpenService(f, plan.ServiceConfig{SnapshotEvery: 2}, fs,
		wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	ctx := context.Background()
	for q := 0; q < 8; q++ {
		if _, err := s.Submit(ctx, dsps.StreamID(q)); err != nil {
			t.Fatalf("Submit(%d): %v", q, err)
		}
	}
	ws := s.WALStats()
	if ws.Snapshots == 0 {
		t.Fatalf("no snapshots after 8 journaled submits with SnapshotEvery=2: %+v", ws)
	}
	s.Close()
	want := f.ExportState()

	f2 := newDurableFake(2, 8)
	s2, rs, err := plan.OpenService(f2, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !rs.UsedSnapshot {
		t.Fatal("recovery ignored the snapshot")
	}
	if got := f2.ExportState(); !got.Equal(want) {
		t.Fatal("snapshot recovery diverged from live state")
	}
}

func TestDurableServiceWedgesOnJournalFailure(t *testing.T) {
	fs := walfault.New()
	f := newDurableFake(2, 4)
	s, _, err := plan.OpenService(f, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Submit(ctx, dsps.StreamID(0)); err != nil {
		t.Fatalf("Submit(0): %v", err)
	}
	// The next journal append dies mid-write: the outcome must NOT be
	// acknowledged, and the service must wedge.
	fs.CrashAt(wal.CrashAppendMidFrame, 1)
	if _, err := s.Submit(ctx, dsps.StreamID(1)); !errors.Is(err, plan.ErrWALFailed) {
		t.Fatalf("submit across journal failure: %v, want ErrWALFailed", err)
	}
	if _, err := s.Submit(ctx, dsps.StreamID(2)); !errors.Is(err, plan.ErrWALFailed) {
		t.Fatalf("submit on wedged service: %v, want ErrWALFailed", err)
	}
	if err := s.Remove(dsps.StreamID(0)); !errors.Is(err, plan.ErrWALFailed) {
		t.Fatalf("remove on wedged service: %v, want ErrWALFailed", err)
	}
	// Reads still serve.
	if !s.Admitted(dsps.StreamID(0)) {
		t.Fatal("read path broken on wedged service")
	}

	// Restart from the crash image: only the acknowledged submit survives.
	f2 := newDurableFake(2, 4)
	s2, rs, err := plan.OpenService(f2, plan.ServiceConfig{}, fs.Reopen(), wal.Options{})
	if err != nil {
		t.Fatalf("reopen after wedge: %v", err)
	}
	defer s2.Close()
	if rs.Admitted != 1 || !f2.Admitted(dsps.StreamID(0)) || f2.Admitted(dsps.StreamID(1)) {
		t.Fatalf("recovered admitted set wrong: %+v", rs)
	}
}

func TestServiceReconcile(t *testing.T) {
	f := newDurableFake(3, 6)
	s := plan.NewService(f, plan.ServiceConfig{})
	defer s.Close()
	ctx := context.Background()
	for q := 0; q < 3; q++ {
		if _, err := s.Submit(ctx, dsps.StreamID(q)); err != nil {
			t.Fatalf("Submit(%d): %v", q, err)
		}
	}

	// Intent and observation agree: no events, no repair.
	observed := []dsps.HostState{dsps.HostUp, dsps.HostUp, dsps.HostUp}
	if _, evs, err := s.Reconcile(ctx, observed); err != nil || len(evs) != 0 {
		t.Fatalf("no-op reconcile: events %v, err %v", evs, err)
	}

	// Host 0 observed down: reconcile fails it and repairs.
	observed[0] = dsps.HostDown
	rr, evs, err := s.Reconcile(ctx, observed)
	if err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != plan.HostFailed || evs[0].Host != 0 {
		t.Fatalf("reconcile events %v, want one HostFailed(0)", evs)
	}
	_ = rr
	if st := f.ExportState(); st.Hosts[0] != dsps.HostDown {
		t.Fatalf("planner intent not converged: host 0 is %v", st.Hosts[0])
	}
	// Idempotent: a second pass over the same observation emits nothing.
	if _, evs, err := s.Reconcile(ctx, observed); err != nil || len(evs) != 0 {
		t.Fatalf("second reconcile not idempotent: events %v, err %v", evs, err)
	}
	// Recovery of the host converges back.
	observed[0] = dsps.HostUp
	if _, evs, err := s.Reconcile(ctx, observed); err != nil || len(evs) != 1 || evs[0].Kind != plan.HostRecovered {
		t.Fatalf("recovery reconcile: events %v, err %v", evs, err)
	}
}
