package wal_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

func mustOpen(t *testing.T, fs wal.FS, opts wal.Options) (*wal.Log, wal.Recovered) {
	t.Helper()
	l, rec, err := wal.Open(fs, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendN(t *testing.T, l *wal.Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := l.LastSeq() + 1
		got, err := l.Append([]byte(fmt.Sprintf("record-%d", seq)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if got != seq {
			t.Fatalf("Append returned seq %d, want %d", got, seq)
		}
	}
}

// checkRecovered validates internal consistency of a recovered image:
// snapshot payload matches its seq, entries are contiguous after it, and
// every payload matches its sequence number.
func checkRecovered(t *testing.T, rec wal.Recovered) {
	t.Helper()
	if rec.Snapshot != nil {
		want := fmt.Sprintf("state-%d", rec.SnapshotSeq)
		if string(rec.Snapshot) != want {
			t.Fatalf("snapshot payload %q, want %q", rec.Snapshot, want)
		}
	} else if rec.SnapshotSeq != 0 {
		t.Fatalf("nil snapshot with seq %d", rec.SnapshotSeq)
	}
	seq := rec.SnapshotSeq
	for _, e := range rec.Entries {
		if e.Seq != seq+1 {
			t.Fatalf("entry seq %d after %d", e.Seq, seq)
		}
		if want := fmt.Sprintf("record-%d", e.Seq); string(e.Data) != want {
			t.Fatalf("entry %d payload %q, want %q", e.Seq, e.Data, want)
		}
		seq = e.Seq
	}
}

func TestRoundTripDirFS(t *testing.T) {
	fs, err := wal.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, fs, wal.Options{})
	if rec.Snapshot != nil || len(rec.Entries) != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	appendN(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, rec = mustOpen(t, fs, wal.Options{})
	checkRecovered(t, rec)
	if len(rec.Entries) != 10 || l.LastSeq() != 10 {
		t.Fatalf("recovered %d entries, lastSeq %d", len(rec.Entries), l.LastSeq())
	}
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = mustOpen(t, fs, wal.Options{})
	checkRecovered(t, rec)
	if len(rec.Entries) != 15 {
		t.Fatalf("recovered %d entries after second run, want 15", len(rec.Entries))
	}
}

func TestRotationAndCompaction(t *testing.T) {
	fs := walfault.New()
	// Tiny segments force a rotation roughly every record.
	l, _ := mustOpen(t, fs, wal.Options{SegmentBytes: 24})
	appendN(t, l, 20)
	if l.Stats().Rotations < 5 {
		t.Fatalf("expected many rotations, got %d", l.Stats().Rotations)
	}
	if err := l.WriteSnapshot([]byte(fmt.Sprintf("state-%d", l.LastSeq()))); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if l.Stats().CompactedSegments == 0 {
		t.Fatal("snapshot compacted no segments")
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			segs++
		}
	}
	if segs > 2 {
		t.Fatalf("%d segments survive compaction: %v", segs, names)
	}
	appendN(t, l, 7)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, fs, wal.Options{SegmentBytes: 24})
	checkRecovered(t, rec)
	if rec.SnapshotSeq != 20 || len(rec.Entries) != 7 || l2.LastSeq() != 27 {
		t.Fatalf("recovered snap %d + %d entries, lastSeq %d; want 20 + 7, 27",
			rec.SnapshotSeq, len(rec.Entries), l2.LastSeq())
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{})
	appendN(t, l, 5)
	// Crash mid-append with a few unsynced bytes surviving: the reopened
	// image ends in a partial frame.
	fs.SetTear(7)
	fs.CrashAt(wal.CrashAppendAfterFrame, 1)
	if _, err := l.Append([]byte("record-6")); err == nil {
		t.Fatal("append across crash succeeded")
	}

	img := fs.Reopen()
	l2, rec := mustOpen(t, img, wal.Options{})
	checkRecovered(t, rec)
	if rec.TailTruncated == 0 {
		t.Fatal("no torn tail detected")
	}
	if len(rec.Entries) != 5 || l2.LastSeq() != 5 {
		t.Fatalf("recovered %d entries, lastSeq %d; want 5, 5", len(rec.Entries), l2.LastSeq())
	}
	// The torn tail must be physically gone so a second recovery is clean.
	appendN(t, l2, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = mustOpen(t, img, wal.Options{})
	if rec.TailTruncated != 0 {
		t.Fatalf("torn tail re-detected after truncation: %d bytes", rec.TailTruncated)
	}
}

func TestTailCorruptionTruncated(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{})
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) != 1 {
		t.Fatalf("want 1 segment, have %v", names)
	}
	size, _ := fs.Size(names[0])
	// Flip a bit inside the last record's payload.
	if err := fs.Corrupt(names[0], size-2); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, fs, wal.Options{})
	checkRecovered(t, rec)
	if len(rec.Entries) != 4 || rec.TailTruncated == 0 {
		t.Fatalf("recovered %d entries, truncated %d; want 4 entries, >0 truncated",
			len(rec.Entries), rec.TailTruncated)
	}
	if l2.LastSeq() != 4 {
		t.Fatalf("lastSeq %d, want 4", l2.LastSeq())
	}
}

func TestMidLogCorruptionRefusesOpen(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{SegmentBytes: 24})
	appendN(t, l, 10) // several segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	var first string
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			first = n
			break
		}
	}
	if err := fs.Corrupt(first, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(fs, wal.Options{SegmentBytes: 24}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestMissingSegmentRefusesOpen(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{SegmentBytes: 24})
	appendN(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	var segs []string
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, have %v", segs)
	}
	if err := fs.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(fs, wal.Options{SegmentBytes: 24}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open with missing segment: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotCrashFallsBackToPrevious(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{})
	appendN(t, l, 4)
	if err := l.WriteSnapshot([]byte("state-4")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	// Crash before the new snapshot is synced: its file content is lost,
	// and recovery must fall back to snapshot 4 plus the logged records.
	fs.CrashAt(wal.CrashSnapshotAfterWrite, 1)
	if err := l.WriteSnapshot([]byte("state-8")); err == nil {
		t.Fatal("snapshot across crash succeeded")
	}
	l2, rec := mustOpen(t, fs.Reopen(), wal.Options{})
	checkRecovered(t, rec)
	if rec.SnapshotSeq != 4 || len(rec.Entries) != 4 || l2.LastSeq() != 8 {
		t.Fatalf("recovered snap %d + %d entries, lastSeq %d; want 4 + 4, 8",
			rec.SnapshotSeq, len(rec.Entries), l2.LastSeq())
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("never-loses-unsynced", func(t *testing.T) {
		fs := walfault.New()
		l, _ := mustOpen(t, fs, wal.Options{Sync: wal.SyncNever})
		appendN(t, l, 5)
		// Kill without a sync: everything since segment creation is lost.
		_, rec := mustOpen(t, fs.Reopen(), wal.Options{Sync: wal.SyncNever})
		if len(rec.Entries) != 0 {
			t.Fatalf("unsynced records survived: %d", len(rec.Entries))
		}
	})
	t.Run("manual-sync-preserves", func(t *testing.T) {
		fs := walfault.New()
		l, _ := mustOpen(t, fs, wal.Options{Sync: wal.SyncNever})
		appendN(t, l, 5)
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 2)
		_, rec := mustOpen(t, fs.Reopen(), wal.Options{Sync: wal.SyncNever})
		checkRecovered(t, rec)
		if len(rec.Entries) != 5 {
			t.Fatalf("recovered %d entries, want the 5 synced ones", len(rec.Entries))
		}
	})
	t.Run("every-bounds-loss", func(t *testing.T) {
		fs := walfault.New()
		l, _ := mustOpen(t, fs, wal.Options{Sync: wal.SyncEvery, SyncRecords: 3})
		appendN(t, l, 8) // syncs after 3 and 6
		_, rec := mustOpen(t, fs.Reopen(), wal.Options{})
		checkRecovered(t, rec)
		if len(rec.Entries) != 6 {
			t.Fatalf("recovered %d entries, want 6 (two sync batches)", len(rec.Entries))
		}
	})
	t.Run("rotation-syncs-regardless", func(t *testing.T) {
		fs := walfault.New()
		l, _ := mustOpen(t, fs, wal.Options{Sync: wal.SyncNever, SegmentBytes: 24})
		appendN(t, l, 10) // every rotation syncs the outgoing segment
		_, rec := mustOpen(t, fs.Reopen(), wal.Options{SegmentBytes: 24})
		checkRecovered(t, rec)
		if len(rec.Entries) < 8 {
			t.Fatalf("recovered %d entries; rotation should have synced all but the active segment", len(rec.Entries))
		}
	})
}

func TestWedgedAfterWriteError(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{})
	appendN(t, l, 2)
	fs.CrashAt(wal.CrashAppendBeforeFrame, 1)
	if _, err := l.Append([]byte("x")); err == nil {
		t.Fatal("append across crash succeeded")
	}
	// Every later write must fail fast with the sticky error.
	if _, err := l.Append([]byte("y")); err == nil {
		t.Fatal("append on wedged log succeeded")
	}
	if err := l.WriteSnapshot([]byte("s")); err == nil {
		t.Fatal("snapshot on wedged log succeeded")
	}
}

func TestClosedLogRefusesWrites(t *testing.T) {
	fs := walfault.New()
	l, _ := mustOpen(t, fs, wal.Options{})
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
