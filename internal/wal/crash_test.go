package wal_test

import (
	"fmt"
	"testing"

	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

// TestCrashAtEveryPoint kills the log at every registered crash point (at
// the first and a later occurrence, with and without a torn tail) and
// proves recovery: the image opens cleanly, contains every acknowledged
// record (SyncAlways durability), at most one in-flight record beyond
// them, and a snapshot no older than the last acknowledged one.
func TestCrashAtEveryPoint(t *testing.T) {
	for _, point := range wal.CrashPoints() {
		for _, hit := range []int{1, 3} {
			for _, tear := range []int{0, 7} {
				name := fmt.Sprintf("%s/hit=%d/tear=%d", point, hit, tear)
				t.Run(name, func(t *testing.T) {
					runCrashScenario(t, point, hit, tear)
				})
			}
		}
	}
}

func runCrashScenario(t *testing.T, point string, hit, tear int) {
	opts := wal.Options{SegmentBytes: 64} // rotate every couple of records
	fs := walfault.New()
	fs.SetTear(tear)
	fs.CrashAt(point, hit)

	l, _, err := wal.Open(fs, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Drive appends with a snapshot every 5 ops until the crash fires.
	// Every successful call is "acknowledged": durable under SyncAlways.
	var acked uint64
	var ackedSnap uint64
	crashed := false
	for i := 1; i <= 400; i++ {
		if i%5 == 0 {
			err := l.WriteSnapshot([]byte(fmt.Sprintf("state-%d", l.LastSeq())))
			if err != nil {
				crashed = true
				break
			}
			ackedSnap = l.LastSeq()
			continue
		}
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d", acked+1))); err != nil {
			crashed = true
			break
		}
		acked++
	}
	if !crashed {
		t.Fatalf("crash point %s never fired", point)
	}
	if !fs.Crashed() {
		t.Fatalf("log failed before the injected crash point %s", point)
	}

	l2, rec, err := wal.Open(fs.Reopen(), opts)
	if err != nil {
		t.Fatalf("recovery open after crash at %s: %v", point, err)
	}
	checkRecovered(t, rec)
	last := l2.LastSeq()
	if last < acked {
		t.Fatalf("acknowledged record lost: recovered through %d, acked %d", last, acked)
	}
	if last > acked+1 {
		t.Fatalf("recovered through %d but only %d were even attempted", last, acked+1)
	}
	if rec.SnapshotSeq < ackedSnap {
		t.Fatalf("acknowledged snapshot lost: recovered snap %d, acked snap %d", rec.SnapshotSeq, ackedSnap)
	}
	if rec.SnapshotSeq > last {
		t.Fatalf("snapshot %d ahead of log %d", rec.SnapshotSeq, last)
	}

	// The recovered log must keep working: append, snapshot, recover again.
	for i := 0; i < 5; i++ {
		if _, err := l2.Append([]byte(fmt.Sprintf("record-%d", l2.LastSeq()+1))); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	}
	if err := l2.WriteSnapshot([]byte(fmt.Sprintf("state-%d", l2.LastSeq()))); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}
