package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem surface the log writes through. Abstracting
// it serves one purpose: crash fault injection. The production DirFS talks
// to the real filesystem; the walfault FS keeps everything in memory,
// tracks which bytes were fsynced, and can "kill the process" at any
// registered crash point — after which only the synced prefix (plus a
// configurable torn tail) survives into the reopened image, exactly the
// state a machine crash leaves on disk.
//
// The log's write pattern keeps the interface small: segment and snapshot
// files are created once, appended to, synced and closed — never reopened
// for writing. Recovery reads whole files (segments are bounded by
// Options.SegmentBytes) and may truncate the final segment's torn tail.
type FS interface {
	// Create opens a fresh file for appending, truncating any previous
	// file of that name.
	Create(name string) (File, error)
	// ReadFile returns the full current content of the named file.
	ReadFile(name string) ([]byte, error)
	// List returns the names of all files, in no particular order.
	List() ([]string, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes (recovery uses it to drop
	// a torn tail record).
	Truncate(name string, size int64) error
	// SyncDir flushes directory metadata, making creations and removals
	// durable.
	SyncDir() error
	// CrashPoint is the fault-injection hook: the log calls it at every
	// registered crash point (see CrashPoints). The production FS always
	// returns nil; a fault-injecting FS may "crash" here, after which every
	// operation fails.
	CrashPoint(point string) error
}

// File is a write-only log file.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// dirFS is the production FS over one real directory.
type dirFS struct {
	dir string
}

// DirFS returns an FS rooted at dir, creating the directory if needed.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	return &dirFS{dir: dir}, nil
}

func (d *dirFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (d *dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d *dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *dirFS) Remove(name string) error {
	return os.Remove(filepath.Join(d.dir, name))
}

func (d *dirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(d.dir, name), size)
}

func (d *dirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (d *dirFS) CrashPoint(string) error { return nil }
