// Package walfault is an in-memory wal.FS with crash fault injection.
//
// The FS tracks, for every file, which bytes have been fsynced and whether
// its directory entry has been synced. A test arms a crash at any
// registered wal crash point (wal.CrashPoints); when the log reaches it,
// the FS "kills the process": every subsequent operation fails with
// ErrCrashed. Reopen then yields the exact image a machine crash would
// have left on disk — synced bytes survive, unsynced bytes are torn down
// to a configurable surviving prefix, files whose directory entry was
// never synced vanish, and removals that were never synced come back.
// Opening a wal.Log over the reopened FS exercises the real recovery path
// against that interleaving.
package walfault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sqpr/internal/wal"
)

// ErrCrashed is returned by every operation after the injected crash has
// fired. Compare with errors.Is.
var ErrCrashed = errors.New("walfault: crashed")

type file struct {
	data      []byte
	synced    int  // prefix of data that is durable
	dirSynced bool // directory entry durable (survives crash at all)
}

// FS is the fault-injecting in-memory filesystem. The zero value is not
// usable; call New. All methods are safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	files   map[string]*file
	removed map[string]*file // removed but removal not yet dir-synced
	crashAt map[string]int   // crash point -> remaining hits before firing
	tear    int              // unsynced tail bytes that survive a crash, per file
	crashed bool
}

// New returns an empty fault-free FS.
func New() *FS {
	return &FS{
		files:   make(map[string]*file),
		removed: make(map[string]*file),
		crashAt: make(map[string]int),
	}
}

// CrashAt arms a crash at the hit-th future invocation of the named crash
// point (hit=1 fires on the next one). Multiple points can be armed; the
// first to fire crashes the FS.
func (f *FS) CrashAt(point string, hit int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt[point] = hit
}

// SetTear configures how many unsynced tail bytes per file survive a
// crash (default 0: only fsynced bytes survive). A nonzero tear leaves a
// partial frame on disk — the torn-tail case recovery must truncate.
func (f *FS) SetTear(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tear = n
}

// Crashed reports whether the injected crash has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reopen returns a fresh fault-free FS holding the post-crash durable
// image. If the crash has not fired yet it behaves as an immediate
// kill -9 at the current instant.
func (f *FS) Reopen() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := New()
	for name, fl := range f.files {
		if !fl.dirSynced {
			continue // name never made it to disk
		}
		keep := fl.synced + f.tear
		if keep > len(fl.data) {
			keep = len(fl.data)
		}
		n.files[name] = &file{
			data:      append([]byte(nil), fl.data[:keep]...),
			synced:    keep,
			dirSynced: true,
		}
	}
	// A removal whose directory update was never synced may be undone by
	// the crash: the old entry reappears with its durable content.
	for name, fl := range f.removed {
		if _, exists := n.files[name]; exists {
			continue
		}
		n.files[name] = &file{
			data:      append([]byte(nil), fl.data[:fl.synced]...),
			synced:    fl.synced,
			dirSynced: true,
		}
	}
	return n
}

// Corrupt flips one bit of the named file at byte offset off, modelling
// media corruption that CRC validation must catch.
func (f *FS) Corrupt(name string, off int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("walfault: corrupt %s: no such file", name)
	}
	if off < 0 || off >= len(fl.data) {
		return fmt.Errorf("walfault: corrupt %s: offset %d out of range [0,%d)", name, off, len(fl.data))
	}
	fl.data[off] ^= 0x40
	return nil
}

// Size returns the current byte size of the named file.
func (f *FS) Size(name string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[name]
	if !ok {
		return 0, fmt.Errorf("walfault: size %s: no such file", name)
	}
	return len(fl.data), nil
}

func (f *FS) check() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// CrashPoint fires the armed crash when its hit count reaches zero.
func (f *FS) CrashPoint(point string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	hits, ok := f.crashAt[point]
	if !ok {
		return nil
	}
	hits--
	if hits > 0 {
		f.crashAt[point] = hits
		return nil
	}
	delete(f.crashAt, point)
	f.crashed = true
	return ErrCrashed
}

// Create opens a fresh in-memory file. Its name is not durable until the
// next SyncDir.
func (f *FS) Create(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(); err != nil {
		return nil, err
	}
	fl := &file{}
	f.files[name] = fl
	delete(f.removed, name)
	return &handle{fs: f, f: fl}, nil
}

// ReadFile returns a copy of the file's current (in-memory, not
// necessarily durable) content.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(); err != nil {
		return nil, err
	}
	fl, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("walfault: read %s: no such file", name)
	}
	return append([]byte(nil), fl.data...), nil
}

// List returns all file names in sorted order.
func (f *FS) List() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(f.files))
	for name := range f.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes the named file. The deletion is not durable until the
// next SyncDir: a crash before that may resurrect the file.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("walfault: remove %s: no such file", name)
	}
	delete(f.files, name)
	if fl.dirSynced {
		f.removed[name] = fl
	}
	return nil
}

// Truncate cuts the file to size bytes.
func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("walfault: truncate %s: no such file", name)
	}
	if size < 0 || size > int64(len(fl.data)) {
		return fmt.Errorf("walfault: truncate %s: size %d out of range [0,%d]", name, size, len(fl.data))
	}
	fl.data = fl.data[:size]
	if fl.synced > int(size) {
		fl.synced = int(size)
	}
	return nil
}

// SyncDir makes all pending creations and removals durable.
func (f *FS) SyncDir() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	for _, fl := range f.files {
		fl.dirSynced = true
	}
	f.removed = make(map[string]*file)
	return nil
}

// handle is one open write handle.
type handle struct {
	fs *FS
	f  *file
}

func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.check(); err != nil {
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.check(); err != nil {
		return err
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.fs.check()
}
