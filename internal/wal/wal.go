// Package wal is a segmented, append-only write-ahead log with CRC-framed
// records and snapshot-based compaction. The admission service journals
// every state-changing outcome through it before acknowledging the caller,
// so a crashed planner rebuilds its exact state by replay instead of
// re-solving MILPs (see plan.OpenService).
//
// On-disk layout: records are appended to segment files named
// wal-<firstseq>.seg; when a segment exceeds Options.SegmentBytes it is
// synced and a new one started, so only the final segment can ever hold
// unsynced bytes. A snapshot file snap-<seq>.snap captures the full state
// after record <seq>; once durable, every segment whose records all fall at
// or below <seq> is deleted. Recovery picks the newest CRC-valid snapshot
// and replays the records after it; a torn or corrupted record at the tail
// of the final segment is detected by its CRC and truncated away, while the
// same damage anywhere else refuses to open (real corruption, not a crash).
//
// Every write-path step is instrumented with registered crash points
// (CrashPoints) through the FS hook, so the walfault FS can kill the
// process at each of them and tests can prove recovery from any
// interleaving.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"sqpr/internal/invariant"
)

// Typed errors. Wrap-and-compare with errors.Is.
var (
	// ErrCorrupt reports log damage that recovery cannot attribute to a
	// torn tail write: a bad record in the middle of the log, a sequence
	// gap, or a malformed segment name. Opening fails rather than silently
	// replaying a hole.
	ErrCorrupt = errors.New("wal corrupt")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal closed")
)

// Registered crash points, in write-path order. The walfault FS can kill
// the process at any of them; the recovery test matrix covers all.
const (
	// CrashRotateBeforeCreate: previous segment synced and closed, new
	// segment not yet created.
	CrashRotateBeforeCreate = "rotate.before-create"
	// CrashRotateAfterCreate: new segment created and its directory entry
	// synced, no record written yet.
	CrashRotateAfterCreate = "rotate.after-create"
	// CrashAppendBeforeFrame: record not yet written at all.
	CrashAppendBeforeFrame = "append.before-frame"
	// CrashAppendMidFrame: frame header written, payload not yet.
	CrashAppendMidFrame = "append.mid-frame"
	// CrashAppendAfterFrame: full frame written but not yet synced — the
	// torn-tail window.
	CrashAppendAfterFrame = "append.after-frame"
	// CrashAppendAfterSync: record durable but the caller never saw the
	// acknowledgement.
	CrashAppendAfterSync = "append.after-sync"
	// CrashSnapshotAfterWrite: snapshot file written but not yet synced.
	CrashSnapshotAfterWrite = "snapshot.after-write"
	// CrashSnapshotAfterSync: snapshot durable, compaction not started.
	CrashSnapshotAfterSync = "snapshot.after-sync"
	// CrashSnapshotMidCompact: snapshot durable, some obsolete files
	// already deleted, others not.
	CrashSnapshotMidCompact = "snapshot.mid-compact"
)

// CrashPoints returns every registered crash point in write-path order.
func CrashPoints() []string {
	return []string{
		CrashRotateBeforeCreate,
		CrashRotateAfterCreate,
		CrashAppendBeforeFrame,
		CrashAppendMidFrame,
		CrashAppendAfterFrame,
		CrashAppendAfterSync,
		CrashSnapshotAfterWrite,
		CrashSnapshotAfterSync,
		CrashSnapshotMidCompact,
	}
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int8

// Sync policies.
const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// always durable. The default.
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs once per Options.SyncRecords appends (and on
	// rotation, snapshot and Close). Crash may lose the unsynced suffix.
	SyncEvery
	// SyncNever leaves syncing to rotation, snapshot, Sync and Close.
	SyncNever
)

// String returns a readable name for the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "every"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int8(p))
}

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// 0 selects 1 MiB.
	SegmentBytes int
	// Sync is the fsync policy for appended records.
	Sync SyncPolicy
	// SyncRecords is the fsync period for SyncEvery. 0 selects 64.
	SyncRecords int
}

// Entry is one recovered record.
type Entry struct {
	Seq  uint64
	Data []byte
}

// Recovered reports what Open rebuilt from the directory.
type Recovered struct {
	// SnapshotSeq and Snapshot are the newest valid snapshot (nil Snapshot
	// when none exists; a snapshot at seq covers records 1..seq).
	SnapshotSeq uint64
	Snapshot    []byte
	// Entries holds the records after the snapshot, in sequence order.
	Entries []Entry
	// TailTruncated is the number of torn/corrupt tail bytes recovery cut
	// from the final segment (0 for a clean log).
	TailTruncated int
}

// Stats is cumulative log telemetry.
type Stats struct {
	Appends   int
	Syncs     int
	Rotations int
	Snapshots int
	// CompactedSegments counts segment files deleted by snapshots.
	CompactedSegments int
	// ActiveSegmentBytes is the byte size of the segment being appended.
	ActiveSegmentBytes int
	LastSeq            uint64
	SnapshotSeq        uint64
}

// frame layout: u32 payload length, u64 seq, u32 CRC32-IEEE over the seq
// bytes and the payload. A record is valid iff its CRC matches, so a torn
// write — truncated payload, garbage length, bit flips — is always caught.
const frameHeader = 16

// maxRecordBytes bounds a single record, so a garbage length field in a
// torn header cannot trigger a huge allocation during recovery.
const maxRecordBytes = 1 << 26

var crcTable = crc32.MakeTable(crc32.IEEE)

// segMeta describes one segment file on disk.
type segMeta struct {
	name  string
	first uint64 // sequence of its first record
}

// Log is a write handle over a recovered log directory. Not safe for
// concurrent use; the admission service drives it from its dispatcher
// goroutine only.
type Log struct {
	fs   FS
	opts Options

	lastSeq uint64
	snapSeq uint64

	active      File // nil until the first append after Open/rotation
	activeMeta  segMeta
	activeBytes int
	unsynced    int // appends since the last fsync (SyncEvery)

	segments []segMeta // all live segments in first-seq order, incl. active

	hdr [frameHeader]byte // reused append header; keeps Append allocation-free

	stats  Stats
	broken error // sticky first write error; the log refuses further writes
	closed bool
}

// Open recovers the log stored in fs and returns a handle positioned to
// append after the last valid record. Torn tail records on the final
// segment are truncated (reported in Recovered.TailTruncated); damage
// anywhere else fails with ErrCorrupt.
func Open(fs FS, opts Options) (*Log, Recovered, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.SyncRecords <= 0 {
		opts.SyncRecords = 64
	}
	l := &Log{fs: fs, opts: opts}
	rec, err := l.recover()
	if err != nil {
		return nil, Recovered{}, err
	}
	l.stats.LastSeq = l.lastSeq
	l.stats.SnapshotSeq = l.snapSeq
	return l, rec, nil
}

// recover scans the directory: newest valid snapshot, then every record
// after it, verifying CRCs and sequence contiguity.
func (l *Log) recover() (Recovered, error) {
	var rec Recovered
	names, err := l.fs.List()
	if err != nil {
		return rec, fmt.Errorf("wal: listing log directory: %w", err)
	}
	var segs []segMeta
	var snaps []segMeta // first = covered seq
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "wal-%020d.seg", &seq); err != nil {
				return rec, fmt.Errorf("wal: segment name %q: %w", name, ErrCorrupt)
			}
			segs = append(segs, segMeta{name: name, first: seq})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "snap-%020d.snap", &seq); err != nil {
				return rec, fmt.Errorf("wal: snapshot name %q: %w", name, ErrCorrupt)
			}
			snaps = append(snaps, segMeta{name: name, first: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].first < snaps[j].first })

	// Newest CRC-valid snapshot wins; an invalid one (crash between
	// snapshot write and sync) falls back to the one before it, whose
	// covered segments are still on disk because compaction only runs
	// after the new snapshot is durable.
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := l.fs.ReadFile(snaps[i].name)
		if err != nil {
			return rec, fmt.Errorf("wal: reading snapshot %s: %w", snaps[i].name, err)
		}
		if len(data) < 4 {
			continue
		}
		payload := data[4:]
		if binary.LittleEndian.Uint32(data[:4]) != crc32.Checksum(payload, crcTable) {
			continue
		}
		l.snapSeq = snaps[i].first
		rec.SnapshotSeq = snaps[i].first
		rec.Snapshot = payload
		break
	}

	l.lastSeq = l.snapSeq
	for i, sm := range segs {
		last := i == len(segs)-1
		if !last && segs[i+1].first-1 <= l.snapSeq {
			// Fully covered by the snapshot (a compaction that crashed
			// mid-delete leaves these behind); nothing to replay.
			l.segments = append(l.segments, sm)
			continue
		}
		entries, truncated, err := l.scanSegment(sm, last)
		if err != nil {
			return rec, err
		}
		rec.TailTruncated += truncated
		for _, e := range entries {
			if e.Seq <= l.snapSeq {
				continue // already folded into the snapshot
			}
			if e.Seq != l.lastSeq+1 {
				return rec, fmt.Errorf("wal: record %d follows %d in %s: sequence gap: %w",
					e.Seq, l.lastSeq, sm.name, ErrCorrupt)
			}
			l.lastSeq = e.Seq
			rec.Entries = append(rec.Entries, e)
		}
		if !last && len(entries) > 0 && entries[len(entries)-1].Seq+1 != segs[i+1].first {
			return rec, fmt.Errorf("wal: segment %s ends at %d but %s starts at %d: %w",
				sm.name, entries[len(entries)-1].Seq, segs[i+1].name, segs[i+1].first, ErrCorrupt)
		}
		if last && len(entries) == 0 && sm.first == l.lastSeq+1 {
			// Empty trailing segment: a crash between segment creation and
			// the first record (or a tail torn down to nothing). The next
			// rotation reuses its name (first seq is still lastSeq+1), so
			// tracking it here would double it up in the segment list.
			continue
		}
		l.segments = append(l.segments, sm)
	}
	if invariant.Enabled && l.lastSeq < l.snapSeq {
		invariant.Failf("wal: recovered lastSeq %d below snapshot seq %d", l.lastSeq, l.snapSeq)
	}
	return rec, nil
}

// scanSegment parses every frame of one segment. In the final segment an
// invalid frame marks a torn tail: the file is truncated at the last valid
// frame and the scan stops. Anywhere else the same damage is corruption.
func (l *Log) scanSegment(sm segMeta, finalSegment bool) (entries []Entry, truncated int, err error) {
	data, err := l.fs.ReadFile(sm.name)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: reading segment %s: %w", sm.name, err)
	}
	off := 0
	expect := sm.first
	for off < len(data) {
		n, e, ok := parseFrame(data[off:])
		if !ok {
			if !finalSegment {
				return nil, 0, fmt.Errorf("wal: invalid record at %s offset %d: %w", sm.name, off, ErrCorrupt)
			}
			truncated = len(data) - off
			if terr := l.fs.Truncate(sm.name, int64(off)); terr != nil {
				return nil, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", sm.name, terr)
			}
			break
		}
		if e.Seq != expect {
			// A valid CRC with the wrong sequence is never a torn write;
			// something rewrote the log.
			return nil, 0, fmt.Errorf("wal: record at %s offset %d has seq %d, want %d: %w",
				sm.name, off, e.Seq, expect, ErrCorrupt)
		}
		entries = append(entries, e)
		expect++
		off += n
	}
	return entries, truncated, nil
}

// parseFrame decodes one frame from the head of buf, reporting ok=false on
// any damage (short buffer, oversized length, CRC mismatch).
//
//sqpr:hotpath
func parseFrame(buf []byte) (n int, e Entry, ok bool) {
	if len(buf) < frameHeader {
		return 0, Entry{}, false
	}
	length := int(binary.LittleEndian.Uint32(buf[0:4]))
	if length < 0 || length > maxRecordBytes || frameHeader+length > len(buf) {
		return 0, Entry{}, false
	}
	seq := binary.LittleEndian.Uint64(buf[4:12])
	want := binary.LittleEndian.Uint32(buf[12:16])
	payload := buf[frameHeader : frameHeader+length]
	crc := crc32.Update(0, crcTable, buf[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != want {
		return 0, Entry{}, false
	}
	return frameHeader + length, Entry{Seq: seq, Data: payload}, true
}

// LastSeq returns the sequence of the last appended (or recovered) record.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// SnapshotSeq returns the sequence covered by the newest durable snapshot.
func (l *Log) SnapshotSeq() uint64 { return l.snapSeq }

// Stats returns cumulative log telemetry.
func (l *Log) Stats() Stats {
	s := l.stats
	s.LastSeq = l.lastSeq
	s.SnapshotSeq = l.snapSeq
	s.ActiveSegmentBytes = l.activeBytes
	return s
}

// writable guards every mutation: a closed log and a log whose previous
// write failed both refuse further writes, so the on-disk record sequence
// can never silently diverge from what callers were told.
func (l *Log) writable() error {
	if l.closed {
		return fmt.Errorf("wal: %w", ErrClosed)
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log wedged by earlier write error: %w", l.broken)
	}
	return nil
}

// fail marks the log broken and returns the wrapped error.
func (l *Log) fail(err error) error {
	l.broken = err
	return err
}

// Append writes one record and returns its sequence number. Depending on
// the sync policy the record is fsynced before Append returns; callers
// acknowledge their own clients only after Append succeeds.
//
//sqpr:journal-point
func (l *Log) Append(data []byte) (uint64, error) {
	if err := l.writable(); err != nil {
		return 0, err
	}
	if len(data) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte record bound", len(data), maxRecordBytes)
	}
	seq := l.lastSeq + 1
	if l.active == nil || l.activeBytes >= l.opts.SegmentBytes {
		if err := l.rotate(seq); err != nil {
			return 0, err
		}
	}
	if invariant.Enabled && (seq <= l.lastSeq || seq < l.activeMeta.first) {
		invariant.Failf("wal: append seq %d not monotone (last %d, segment first %d)",
			seq, l.lastSeq, l.activeMeta.first)
	}
	if err := l.fs.CrashPoint(CrashAppendBeforeFrame); err != nil {
		return 0, l.fail(err)
	}
	binary.LittleEndian.PutUint32(l.hdr[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint64(l.hdr[4:12], seq)
	crc := crc32.Update(0, crcTable, l.hdr[4:12])
	crc = crc32.Update(crc, crcTable, data)
	binary.LittleEndian.PutUint32(l.hdr[12:16], crc)
	if _, err := l.active.Write(l.hdr[:]); err != nil {
		return 0, l.fail(fmt.Errorf("wal: writing frame header: %w", err))
	}
	if err := l.fs.CrashPoint(CrashAppendMidFrame); err != nil {
		return 0, l.fail(err)
	}
	if _, err := l.active.Write(data); err != nil {
		return 0, l.fail(fmt.Errorf("wal: writing record: %w", err))
	}
	if err := l.fs.CrashPoint(CrashAppendAfterFrame); err != nil {
		return 0, l.fail(err)
	}
	l.activeBytes += frameHeader + len(data)
	l.unsynced++
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncActive(); err != nil {
			return 0, err
		}
	case SyncEvery:
		if l.unsynced >= l.opts.SyncRecords {
			if err := l.syncActive(); err != nil {
				return 0, err
			}
		}
	}
	if err := l.fs.CrashPoint(CrashAppendAfterSync); err != nil {
		return 0, l.fail(err)
	}
	l.lastSeq = seq
	l.stats.Appends++
	return seq, nil
}

// syncActive fsyncs the active segment.
func (l *Log) syncActive() error {
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.unsynced = 0
	l.stats.Syncs++
	return nil
}

// rotate syncs and closes the active segment (if any) and creates a new
// one whose name records firstSeq. Rotation always syncs the outgoing
// segment — whatever the append policy — so every non-final segment is
// fully durable and a crash can only ever tear the final one.
func (l *Log) rotate(firstSeq uint64) error {
	if l.active != nil {
		if err := l.syncActive(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return l.fail(fmt.Errorf("wal: closing segment: %w", err))
		}
		l.active = nil
	}
	if err := l.fs.CrashPoint(CrashRotateBeforeCreate); err != nil {
		return l.fail(err)
	}
	sm := segMeta{name: fmt.Sprintf("wal-%020d.seg", firstSeq), first: firstSeq}
	f, err := l.fs.Create(sm.name)
	if err != nil {
		return l.fail(fmt.Errorf("wal: creating segment: %w", err))
	}
	if err := l.fs.SyncDir(); err != nil {
		return l.fail(fmt.Errorf("wal: syncing directory: %w", err))
	}
	if err := l.fs.CrashPoint(CrashRotateAfterCreate); err != nil {
		return l.fail(err)
	}
	l.active = f
	l.activeMeta = sm
	l.activeBytes = 0
	l.segments = append(l.segments, sm)
	l.stats.Rotations++
	return nil
}

// WriteSnapshot makes data the authoritative state after the last appended
// record and compacts: once the snapshot is durable, older snapshots and
// every segment fully covered by it are deleted. Replay cost and disk use
// stay proportional to the activity since the last snapshot, not to the
// log's lifetime.
//
//sqpr:journal-point
func (l *Log) WriteSnapshot(data []byte) error {
	if err := l.writable(); err != nil {
		return err
	}
	// The snapshot covers everything up to lastSeq, so the records it
	// folds in must be durable first; otherwise a crash could keep the
	// snapshot but lose (already compacted) records behind it.
	if err := l.syncActive(); err != nil {
		return err
	}
	seq := l.lastSeq
	name := fmt.Sprintf("snap-%020d.snap", seq)
	f, err := l.fs.Create(name)
	if err != nil {
		return l.fail(fmt.Errorf("wal: creating snapshot: %w", err))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(data, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		return l.fail(fmt.Errorf("wal: writing snapshot header: %w", err))
	}
	if _, err := f.Write(data); err != nil {
		return l.fail(fmt.Errorf("wal: writing snapshot: %w", err))
	}
	if err := l.fs.CrashPoint(CrashSnapshotAfterWrite); err != nil {
		return l.fail(err)
	}
	if err := f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: syncing snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return l.fail(fmt.Errorf("wal: closing snapshot: %w", err))
	}
	if err := l.fs.SyncDir(); err != nil {
		return l.fail(fmt.Errorf("wal: syncing directory: %w", err))
	}
	if err := l.fs.CrashPoint(CrashSnapshotAfterSync); err != nil {
		return l.fail(err)
	}

	prevSnap := l.snapSeq
	hadPrev := l.stats.Snapshots > 0 || prevSnap > 0
	l.snapSeq = seq
	l.stats.Snapshots++

	// Compaction. Deletion order is crash-safe by construction: the new
	// snapshot is already durable, so losing any subset of the deletions
	// merely leaves garbage that the next Open skips and the next
	// snapshot retries.
	firstDeleted := false
	if hadPrev {
		old := fmt.Sprintf("snap-%020d.snap", prevSnap)
		if old != name {
			if err := l.fs.Remove(old); err != nil {
				return l.fail(fmt.Errorf("wal: removing old snapshot: %w", err))
			}
			firstDeleted = true
			if err := l.fs.CrashPoint(CrashSnapshotMidCompact); err != nil {
				return l.fail(err)
			}
		}
	}
	kept := l.segments[:0]
	for i, sm := range l.segments {
		// A segment is covered iff a later segment starts at or below
		// seq+1 (its records all fold into the snapshot). The active
		// segment is never removed.
		covered := i+1 < len(l.segments) && l.segments[i+1].first-1 <= seq && sm.name != l.activeMeta.name
		if !covered {
			kept = append(kept, sm)
			continue
		}
		if err := l.fs.Remove(sm.name); err != nil {
			return l.fail(fmt.Errorf("wal: removing compacted segment: %w", err))
		}
		l.stats.CompactedSegments++
		if !firstDeleted {
			firstDeleted = true
			if err := l.fs.CrashPoint(CrashSnapshotMidCompact); err != nil {
				return l.fail(err)
			}
		}
	}
	l.segments = kept
	if err := l.fs.SyncDir(); err != nil {
		return l.fail(fmt.Errorf("wal: syncing directory: %w", err))
	}
	if invariant.Enabled && l.snapSeq > l.lastSeq {
		invariant.Failf("wal: snapshot seq %d ahead of log seq %d", l.snapSeq, l.lastSeq)
	}
	return nil
}

// Sync flushes any unsynced appends to stable storage (graceful-shutdown
// flush; a no-op under SyncAlways).
func (l *Log) Sync() error {
	if err := l.writable(); err != nil {
		return err
	}
	return l.syncActive()
}

// Close syncs and closes the active segment. The log refuses further
// writes; reopen with Open.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.broken != nil || l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: closing sync: %w", err)
	}
	err := l.active.Close()
	l.active = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
