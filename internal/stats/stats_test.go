package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v", got)
	}
	if got := c.At(4); got != 1 {
		t.Fatalf("At(4) = %v", got)
	}
	if got := c.At(2.5); got != 0.5 {
		t.Fatalf("At(2.5) = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Len() != 0 {
		t.Fatal("empty CDF misbehaves")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("quantile of empty CDF should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := c.Quantile(0.25); got != 20 {
		t.Fatalf("q0.25 = %v", got)
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	xs, ps := c.Points(11)
	if len(xs) != 11 || len(ps) != 11 {
		t.Fatalf("points: %d/%d", len(xs), len(ps))
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("final probability %v", ps[len(ps)-1])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
	if Max([]float64{3, 9, 4}) != 9 {
		t.Fatal("max wrong")
	}
	if Max(nil) != 0 {
		t.Fatal("max of empty should be 0")
	}
}

func TestSummaryFormat(t *testing.T) {
	s := Summary([]float64{1, 2, 3, 4})
	if !strings.Contains(s, "n=4") || !strings.Contains(s, "mean=2.500") {
		t.Fatalf("summary: %s", s)
	}
	if Summary(nil) != "n=0" {
		t.Fatal("empty summary wrong")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "bbbb"}, [][]string{{"xxxxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %d", len(lines))
	}
	// The second column must start at the same offset in both lines.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[1], "y") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

// Property: CDF.At is monotone and Quantile inverts At on sample points.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := -1.0
		for _, v := range sorted {
			p := c.At(v)
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptySamples locks in the empty-input behaviour of the whole surface:
// no panics, NaN quantiles, zero probabilities, an explicit "n=0" summary.
// The open-loop arrival experiment feeds whatever latencies it collected
// straight in, so the zero-sample path is a real production path.
func TestEmptySamples(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 {
		t.Fatalf("empty CDF Len = %d", c.Len())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := c.Quantile(q); !math.IsNaN(v) {
			t.Fatalf("empty CDF Quantile(%v) = %v, want NaN", q, v)
		}
	}
	if p := c.At(42); p != 0 {
		t.Fatalf("empty CDF At = %v, want 0", p)
	}
	if xs, ps := c.Points(5); xs != nil || ps != nil {
		t.Fatalf("empty CDF Points = %v, %v, want nil, nil", xs, ps)
	}
	if v := Mean(nil); !math.IsNaN(v) {
		t.Fatalf("Mean(nil) = %v, want NaN", v)
	}
	if v := Max(nil); v != 0 {
		t.Fatalf("Max(nil) = %v, want 0", v)
	}
	if s := Summary(nil); s != "n=0" {
		t.Fatalf("Summary(nil) = %q, want \"n=0\"", s)
	}
	if s := Summary([]float64{}); s != "n=0" {
		t.Fatalf("Summary(empty) = %q, want \"n=0\"", s)
	}
}
