// Package stats provides tiny statistics helpers used by the evaluation
// harness: empirical CDFs and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs covering the
// sample range, suitable for plotting the CDF curve.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	if lo == hi {
		return []float64{lo}, []float64{1}
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs = append(xs, x)
		ps = append(ps, c.At(x))
	}
	return xs, ps
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Mean returns the arithmetic mean of the samples (NaN when empty).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Max returns the largest sample (0 when empty).
func Max(samples []float64) float64 {
	var m float64
	for i, v := range samples {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Summary formats mean/median/p90/max of samples for reports.
func Summary(samples []float64) string {
	if len(samples) == 0 {
		return "n=0"
	}
	c := NewCDF(samples)
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f max=%.3f",
		len(samples), Mean(samples), c.Quantile(0.5), c.Quantile(0.9), c.Quantile(1))
}

// Table renders rows of labelled values as an aligned text table; used by
// the experiment binaries to print the series the paper plots.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < width[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
