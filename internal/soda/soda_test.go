package soda

import (
	"context"
	"testing"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/workload"
)

// submitOK drives the unified Submit and reports admission.
func submitOK(p *Planner, q dsps.StreamID) bool {
	res, err := p.Submit(context.Background(), q)
	return err == nil && res.Admitted
}

func buildWorkload(t *testing.T, hosts, bases, queries int) (*dsps.System, []dsps.StreamID) {
	t.Helper()
	sys := workload.BuildSystem(workload.SystemConfig{
		NumHosts: hosts, CPUPerHost: 8, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = bases
	cfg.NumQueries = queries
	cfg.Arities = []int{2, 3}
	w := workload.Generate(sys, cfg)
	return sys, w.Queries
}

func TestAdmitsQueries(t *testing.T) {
	sys, queries := buildWorkload(t, 4, 20, 10)
	p := New(sys, core.PaperWeights())
	admitted := 0
	for _, q := range queries {
		if submitOK(p, q) {
			admitted++
		}
		if err := p.Assignment().Validate(sys); err != nil {
			t.Fatalf("infeasible after submit: %v", err)
		}
	}
	if admitted == 0 {
		t.Fatal("SODA admitted nothing")
	}
}

func TestTemplateIsLeftDeep(t *testing.T) {
	sys, queries := buildWorkload(t, 2, 6, 3)
	p := New(sys, core.PaperWeights())
	for _, q := range queries {
		tmpl, ok := p.template(q)
		if !ok {
			t.Fatalf("no template for query %d", q)
		}
		bases := p.baseSetOf(q)
		if len(tmpl) != len(bases)-1 {
			t.Fatalf("template has %d ops for %d bases", len(tmpl), len(bases))
		}
		// The final operator must output the query stream.
		if sys.Operators[tmpl[len(tmpl)-1]].Output != q {
			t.Fatal("template does not end at the query stream")
		}
	}
}

func TestReuseByGluingTemplates(t *testing.T) {
	// Two identical queries: the second must fully reuse the first's ops.
	sys, queries := buildWorkload(t, 3, 4, 8)
	p := New(sys, core.PaperWeights())
	for _, q := range queries {
		submitOK(p, q)
	}
	// Count operator placements vs distinct placed operators: each op may
	// run at most once (gluing means no duplicates).
	seen := map[dsps.OperatorID]int{}
	for pl, on := range p.Assignment().Ops {
		if on {
			seen[pl.Op]++
		}
	}
	for op, n := range seen {
		if n > 1 {
			t.Fatalf("operator %d placed %d times (no gluing)", op, n)
		}
	}
}

func TestMacroQRejectsWhenAggregateCPUExhausted(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 0.5, OutBW: 100, InBW: 100}}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)
	p := New(sys, core.PaperWeights())
	if submitOK(p, op.Output) {
		t.Fatal("macroQ failed to reject an unservable query")
	}
}

func TestDuplicateQueryFreeOfCharge(t *testing.T) {
	sys, queries := buildWorkload(t, 3, 4, 1)
	p := New(sys, core.PaperWeights())
	if !submitOK(p, queries[0]) {
		t.Fatal("first submit failed")
	}
	cpuBefore := p.Assignment().ComputeUsage(sys).TotalCPU()
	if !submitOK(p, queries[0]) {
		t.Fatal("duplicate rejected")
	}
	cpuAfter := p.Assignment().ComputeUsage(sys).TotalCPU()
	if cpuAfter != cpuBefore {
		t.Fatalf("duplicate consumed CPU: %v -> %v", cpuBefore, cpuAfter)
	}
}

func TestBaseSetOf(t *testing.T) {
	sys, queries := buildWorkload(t, 2, 8, 4)
	p := New(sys, core.PaperWeights())
	for _, q := range queries {
		bases := p.baseSetOf(q)
		if len(bases) < 2 {
			t.Fatalf("query %d has base set %v", q, bases)
		}
		for i := 1; i < len(bases); i++ {
			if bases[i-1] >= bases[i] {
				t.Fatal("base set not sorted")
			}
		}
		for _, b := range bases {
			if !sys.Streams[b].IsBase() {
				t.Fatalf("non-base stream %d in base set", b)
			}
		}
	}
}
