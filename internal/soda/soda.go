// Package soda implements the basic functionality of the SODA scheduler
// (Wolf et al., Middleware'08) as described and re-implemented in §V-B of
// the SQPR paper: macroQ-style query admission based on aggregate resource
// consumption, followed by per-operator greedy placement (miniW-style) that
// is bound to a *fixed query template* — the canonical left-deep join
// order — reuses streams only by gluing templates together, receives each
// input stream at most once per host, and never relays streams through
// intermediate hosts nor revisits earlier placement decisions.
package soda

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// Planner is the SODA-like baseline. It implements plan.QueryPlanner and
// is not safe for concurrent use.
type Planner struct {
	sys      *dsps.System
	state    *dsps.Assignment
	weights  core.Weights
	admitted map[dsps.StreamID]bool
	stats    plan.Stats

	// opHost records where each placed template operator runs, enabling
	// whole-sub-query reuse ("gluing templates").
	opHost map[dsps.OperatorID]dsps.HostID

	baseSets map[dsps.StreamID][]dsps.StreamID

	joinIdx   map[[2]dsps.StreamID]dsps.OperatorID
	joinIdxAt int // number of operators indexed so far
}

// New creates a SODA-like planner sharing SQPR's objective weights for the
// load-balancing placement score.
func New(sys *dsps.System, w core.Weights) *Planner {
	return &Planner{
		sys:      sys,
		state:    dsps.NewAssignment(),
		weights:  w,
		admitted: make(map[dsps.StreamID]bool),
		opHost:   make(map[dsps.OperatorID]dsps.HostID),
		baseSets: make(map[dsps.StreamID][]dsps.StreamID),
	}
}

// Assignment exposes the current allocation (do not mutate).
func (p *Planner) Assignment() *dsps.Assignment { return p.state }

// Admitted reports whether q is served.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Stats returns cumulative planner telemetry.
func (p *Planner) Stats() plan.Stats { return p.stats }

// Submit runs admission (macroQ) and placement (miniW) for query q (and
// any plan.WithBatch companions, sequentially). plan.WithCandidateHosts
// restricts the hosts tried by miniW placement and plan.WithValidation
// toggles the feasibility re-check. Cancelling ctx aborts the call and
// leaves the planner state unchanged.
func (p *Planner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	ctx = plan.OrBackground(ctx)
	start := time.Now()
	cfg := plan.Apply(opts)
	var res plan.Result

	qs := cfg.Queries(q)
	for _, query := range qs {
		if err := plan.CheckStream(p.sys, query); err != nil {
			return plan.Result{}, fmt.Errorf("soda: %w", err)
		}
	}

	// Snapshot for rollback: an error mid-batch (ctx cancellation) must
	// leave the planner state unchanged. A single-query call needs no
	// snapshot — submitOne only errors before it mutates — so the
	// O(admitted + opHost) copies are skipped on the hot path.
	var prevState *dsps.Assignment
	var prevAdmitted map[dsps.StreamID]bool
	var prevOpHost map[dsps.OperatorID]dsps.HostID
	if len(qs) > 1 {
		prevState = p.state
		prevAdmitted = plan.CopyAdmitted(p.admitted)
		prevOpHost = make(map[dsps.OperatorID]dsps.HostID, len(p.opHost))
		for op, h := range p.opHost {
			prevOpHost[op] = h
		}
	}

	allAdmitted := true
	anyFresh := false
	for _, query := range qs {
		if p.admitted[query] {
			res.AlreadyAdmitted = true
			continue
		}
		anyFresh = true
		ok, reason, err := p.submitOne(ctx, query, &cfg)
		if err != nil {
			if prevAdmitted != nil {
				p.state = prevState
				p.admitted = prevAdmitted
				p.opHost = prevOpHost
			}
			return plan.Result{}, err
		}
		if !ok {
			allAdmitted = false
			res.Reason = reason
		}
	}
	res.Admitted = allAdmitted
	if res.Admitted || !anyFresh {
		res.Reason = plan.ReasonNone
	}
	res.PlanTime = time.Since(start)
	p.stats.Record(res)
	return res, nil
}

// Remove withdraws an admitted query, garbage-collects unneeded operators
// and flows, and forgets template placements that no longer exist.
func (p *Planner) Remove(q dsps.StreamID) error {
	if err := plan.CheckStream(p.sys, q); err != nil {
		return fmt.Errorf("soda: %w", err)
	}
	if !p.admitted[q] {
		return fmt.Errorf("soda: query %d: %w", q, plan.ErrNotAdmitted)
	}
	delete(p.admitted, q)
	delete(p.state.Provides, q)
	p.state.GarbageCollect(p.sys)
	for op, h := range p.opHost {
		if !p.state.Ops[dsps.Placement{Host: h, Op: op}] {
			delete(p.opHost, op)
		}
	}
	return nil
}

// Repair handles churn events with the shared fallback: remove the queries
// the events invalidated and resubmit them through this planner's own
// Submit, which re-places their templates on the surviving hosts.
func (p *Planner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	return plan.RepairByResubmit(ctx, p.sys, p, events, opts...)
}

// submitOne plans one fresh query; reports admission and, on rejection,
// the machine-readable reason.
func (p *Planner) submitOne(ctx context.Context, q dsps.StreamID, cfg *plan.SubmitConfig) (bool, plan.Reason, error) {
	if err := ctx.Err(); err != nil {
		return false, plan.ReasonNone, err
	}
	tmpl, ok := p.template(q)
	if !ok {
		return false, plan.ReasonNoTemplate, nil
	}
	if !p.macroQ(tmpl) {
		return false, plan.ReasonResourceExhausted, nil
	}
	allowed := cfg.HostSet()
	cand := p.state.Clone()
	newHosts := make(map[dsps.OperatorID]dsps.HostID)
	last := dsps.HostID(-1)
	for _, opID := range tmpl {
		if err := ctx.Err(); err != nil {
			return false, plan.ReasonNone, err
		}
		if h, placed := p.opHost[opID]; placed {
			last = h // reuse the glued sub-query as-is
			continue
		}
		h, okPlace := p.placeOp(cand, opID, allowed)
		if !okPlace {
			return false, plan.ReasonNoFeasiblePlan, nil
		}
		newHosts[opID] = h
		last = h
	}
	if last < 0 {
		// Entire template reused; the provider is the host of the final op.
		last = p.opHost[tmpl[len(tmpl)-1]]
	}
	// Delivery bandwidth at the providing host.
	u := cand.ComputeUsage(p.sys)
	if u.Out[last]+p.sys.Streams[q].Rate > p.sys.Hosts[last].OutBW+1e-9 {
		return false, plan.ReasonNoFeasiblePlan, nil
	}
	cand.Provides[q] = last
	if cfg.Validate == nil || *cfg.Validate {
		if cand.Validate(p.sys) != nil {
			return false, plan.ReasonValidationFailed, nil
		}
	}
	p.state = cand
	for op, h := range newHosts {
		p.opHost[op] = h
	}
	p.admitted[q] = true
	return true, plan.ReasonNone, nil
}

// template derives the fixed left-deep join chain over the sorted base set
// of q: ((b0 ⋈ b1) ⋈ b2) ⋈ …, returned in execution order. SODA is bound
// to this user-given structure and cannot restructure it.
func (p *Planner) template(q dsps.StreamID) ([]dsps.OperatorID, bool) {
	bases := p.baseSetOf(q)
	if len(bases) < 2 {
		return nil, false
	}
	var chain []dsps.OperatorID
	cur := bases[0]
	for i := 1; i < len(bases); i++ {
		next, ok := p.joinOf(cur, bases[i])
		if !ok {
			return nil, false
		}
		chain = append(chain, next)
		cur = p.sys.Operators[next].Output
	}
	if cur != q {
		return nil, false
	}
	return chain, true
}

// joinOf finds the operator joining exactly streams a and b using a lazily
// maintained index over the operator table.
func (p *Planner) joinOf(a, b dsps.StreamID) (dsps.OperatorID, bool) {
	if p.joinIdx == nil {
		p.joinIdx = make(map[[2]dsps.StreamID]dsps.OperatorID)
	}
	for ; p.joinIdxAt < len(p.sys.Operators); p.joinIdxAt++ {
		op := &p.sys.Operators[p.joinIdxAt]
		if len(op.Inputs) != 2 {
			continue
		}
		k := joinKey(op.Inputs[0], op.Inputs[1])
		if _, dup := p.joinIdx[k]; !dup {
			p.joinIdx[k] = op.ID
		}
	}
	op, ok := p.joinIdx[joinKey(a, b)]
	return op, ok
}

func joinKey(a, b dsps.StreamID) [2]dsps.StreamID {
	if a > b {
		a, b = b, a
	}
	return [2]dsps.StreamID{a, b}
}

// baseSetOf expands a stream to its sorted base-stream set.
func (p *Planner) baseSetOf(s dsps.StreamID) []dsps.StreamID {
	if cached, ok := p.baseSets[s]; ok {
		return cached
	}
	seen := make(map[dsps.StreamID]bool)
	var walk func(dsps.StreamID)
	walk = func(cur dsps.StreamID) {
		if p.sys.Streams[cur].IsBase() {
			seen[cur] = true
			return
		}
		producers := p.sys.ProducersOf(cur)
		if len(producers) == 0 {
			return
		}
		for _, in := range p.sys.Operators[producers[0]].Inputs {
			walk(in)
		}
	}
	walk(s)
	out := make([]dsps.StreamID, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	p.baseSets[s] = out
	return out
}

// macroQ admits the query if the aggregate CPU demand of its not-yet-placed
// template operators fits the system's remaining aggregate CPU.
func (p *Planner) macroQ(tmpl []dsps.OperatorID) bool {
	var demand float64
	for _, opID := range tmpl {
		if _, placed := p.opHost[opID]; !placed {
			demand += p.sys.Operators[opID].Cost
		}
	}
	u := p.state.ComputeUsage(p.sys)
	spare := p.sys.UsableCPU() - u.TotalCPU()
	return demand <= spare+1e-9
}

// placeOp places one template operator on the allowed host that minimises
// the load-balancing score, fetching each input once from its producing or
// base host (direct transfer only — no relays).
func (p *Planner) placeOp(cand *dsps.Assignment, opID dsps.OperatorID, allowed map[dsps.HostID]bool) (dsps.HostID, bool) {
	op := &p.sys.Operators[opID]
	bestScore := math.Inf(1)
	var bestHost dsps.HostID
	var bestTrial *dsps.Assignment
	for h := 0; h < p.sys.NumHosts(); h++ {
		host := dsps.HostID(h)
		if allowed != nil && !allowed[host] {
			continue
		}
		if !p.sys.HostPlaceable(host) {
			continue // down or draining: no new operator placements
		}
		u := cand.ComputeUsage(p.sys)
		if u.CPU[host]+op.Cost > p.sys.Hosts[host].CPU+1e-9 {
			continue
		}
		trial := cand.Clone()
		ok := true
		for _, in := range op.Inputs {
			if !p.fetchDirect(trial, in, host) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		trial.Ops[dsps.Placement{Host: host, Op: opID}] = true
		tu := trial.ComputeUsage(p.sys)
		score := tu.MaxCPU() // SODA's placement objective here: balance load
		if score < bestScore {
			bestScore = score
			bestHost = host
			bestTrial = trial
		}
	}
	if bestTrial == nil {
		return 0, false
	}
	*cand = *bestTrial
	return bestHost, true
}

// fetchDirect brings stream s to host h with a single direct transfer from
// the host that originates it (local propagation means a stream already
// flowing into h is free).
func (p *Planner) fetchDirect(cand *dsps.Assignment, s dsps.StreamID, h dsps.HostID) bool {
	if cand.Available(p.sys, h, s) {
		return true
	}
	rate := p.sys.Streams[s].Rate
	try := func(m dsps.HostID) bool {
		if m == h || !p.sys.HostUsable(m) {
			return false
		}
		u := cand.ComputeUsage(p.sys)
		if u.Link[m][h]+rate > p.sys.LinkCap[m][h]+1e-9 ||
			u.Out[m]+rate > p.sys.Hosts[m].OutBW+1e-9 ||
			u.In[h]+rate > p.sys.Hosts[h].InBW+1e-9 {
			return false
		}
		cand.Flows[dsps.Flow{From: m, To: h, Stream: s}] = true
		return true
	}
	if p.sys.Streams[s].IsBase() {
		for _, m := range p.sys.BaseHosts(s) {
			if try(m) {
				return true
			}
		}
		return false
	}
	// Composite: only the host executing its producer may send it
	// (original host rule — no relaying).
	for _, opID := range p.sys.ProducersOf(s) {
		for m := 0; m < p.sys.NumHosts(); m++ {
			if cand.Ops[dsps.Placement{Host: dsps.HostID(m), Op: opID}] && try(dsps.HostID(m)) {
				return true
			}
		}
	}
	return false
}
