package soda

import (
	"fmt"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// ExportState snapshots the planner's durable state (see plan.StatePorter).
// The opHost index is derived from the assignment and carries no extra
// information, so no Aux payload is needed.
func (p *Planner) ExportState() plan.State {
	return plan.ExportedState(p.sys, p.state, p.admitted)
}

// ImportState replaces the planner state with s (see plan.StatePorter),
// rebuilding the template-operator location index from the placements
// (each template operator is placed on at most one host).
func (p *Planner) ImportState(s plan.State) error {
	if err := plan.CheckState(p.sys, s); err != nil {
		return fmt.Errorf("soda: %w", err)
	}
	plan.ApplyHostStates(p.sys, s.Hosts)
	p.state = s.Assignment.Clone()
	p.admitted = s.AdmittedSet()
	p.opHost = make(map[dsps.OperatorID]dsps.HostID, len(p.state.Ops))
	for pl, on := range p.state.Ops {
		if on {
			p.opHost[pl.Op] = pl.Host
		}
	}
	return nil
}
