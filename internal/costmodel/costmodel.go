// Package costmodel implements the cost estimation of §II-B and the
// monitoring feedback loop of §IV-B. The paper assumes "a simple cost model
// where the required processing resources for operators and the output
// stream network consumptions are linear functions of the rates of input
// streams"; this package provides that linear model, calibrates its
// coefficients from observations (least squares), and flags operators whose
// measured consumption has drifted from the estimates — the trigger for
// adaptive replanning.
package costmodel

import (
	"fmt"
	"math"
	"sort"

	"sqpr/internal/dsps"
)

// Model estimates operator CPU cost and output rate from input rates:
//
//	cost(o)   = CPUBase + CPUPerRate · Σ ̺_in
//	rate(s_o) = Selectivity(o) · Π ̺_in   (joins)
//	mem(o)    = MemPerRate · Σ ̺_in       (window state)
type Model struct {
	CPUBase    float64
	CPUPerRate float64
	MemPerRate float64
	// DefaultSelectivity is used when no per-operator selectivity is set.
	DefaultSelectivity float64
	// selectivities overrides per operator.
	selectivities map[dsps.OperatorID]float64
}

// NewModel returns a model with the evaluation defaults.
func NewModel() *Model {
	return &Model{
		CPUPerRate:         0.05,
		MemPerRate:         0.1,
		DefaultSelectivity: 0.003,
		selectivities:      make(map[dsps.OperatorID]float64),
	}
}

// SetSelectivity overrides an operator's selectivity.
func (m *Model) SetSelectivity(op dsps.OperatorID, sel float64) {
	m.selectivities[op] = sel
}

// Selectivity returns the operator's effective selectivity.
func (m *Model) Selectivity(op dsps.OperatorID) float64 {
	if s, ok := m.selectivities[op]; ok {
		return s
	}
	return m.DefaultSelectivity
}

// EstimateCost predicts the CPU cost of running op given current stream
// rates in sys.
func (m *Model) EstimateCost(sys *dsps.System, op dsps.OperatorID) float64 {
	var sum float64
	for _, in := range sys.Operators[op].Inputs {
		sum += sys.Streams[in].Rate
	}
	return m.CPUBase + m.CPUPerRate*sum
}

// EstimateMem predicts the state footprint of op.
func (m *Model) EstimateMem(sys *dsps.System, op dsps.OperatorID) float64 {
	var sum float64
	for _, in := range sys.Operators[op].Inputs {
		sum += sys.Streams[in].Rate
	}
	return m.MemPerRate * sum
}

// EstimateOutputRate predicts the output stream rate of a join operator.
func (m *Model) EstimateOutputRate(sys *dsps.System, op dsps.OperatorID) float64 {
	o := &sys.Operators[op]
	if len(o.Inputs) == 1 {
		// Unary operators (filter/project): selectivity scales the input.
		return m.Selectivity(op) * sys.Streams[o.Inputs[0]].Rate
	}
	rate := 1.0
	for _, in := range o.Inputs {
		rate *= sys.Streams[in].Rate
	}
	return m.Selectivity(op) * rate
}

// Apply writes the model's estimates into the system's operator table
// (costs, memory) and composite stream rates, in dependency order.
func (m *Model) Apply(sys *dsps.System) {
	// Topological sweep: operators whose inputs are all resolved first.
	resolved := make(map[dsps.StreamID]bool)
	for _, s := range sys.Streams {
		if s.IsBase() {
			resolved[s.ID] = true
		}
	}
	remaining := len(sys.Operators)
	for remaining > 0 {
		progressed := false
		for i := range sys.Operators {
			op := &sys.Operators[i]
			if resolved[op.Output] {
				continue
			}
			ready := true
			for _, in := range op.Inputs {
				if !resolved[in] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			op.Cost = m.EstimateCost(sys, op.ID)
			op.Mem = m.EstimateMem(sys, op.ID)
			sys.Streams[op.Output].Rate = m.EstimateOutputRate(sys, op.ID)
			resolved[op.Output] = true
			remaining--
			progressed = true
		}
		if !progressed {
			return // cyclic or alternative producers already resolved
		}
	}
}

// Observation is one monitoring sample for an operator: the total input
// rate it processed and the CPU cost it consumed.
type Observation struct {
	Op        dsps.OperatorID
	InputRate float64
	Cost      float64
}

// Calibrate fits CPUBase and CPUPerRate to observations by ordinary least
// squares (cost ≈ a + b·rate). It needs at least two observations with
// distinct input rates; otherwise it returns an error and leaves the model
// unchanged.
func (m *Model) Calibrate(obs []Observation) error {
	if len(obs) < 2 {
		return fmt.Errorf("costmodel: need >= 2 observations, have %d", len(obs))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(obs))
	for _, o := range obs {
		sx += o.InputRate
		sy += o.Cost
		sxx += o.InputRate * o.InputRate
		sxy += o.InputRate * o.Cost
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return fmt.Errorf("costmodel: observations have no rate variance")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	if b < 0 {
		b = 0 // costs cannot decrease with rate; clamp pathological fits
	}
	if a < 0 {
		a = 0
	}
	m.CPUPerRate = b
	m.CPUBase = a
	return nil
}

// Drift quantifies the relative deviation between an operator's modelled
// cost and an observed cost.
func Drift(modelled, observed float64) float64 {
	if modelled == 0 {
		if observed == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(observed-modelled) / modelled
}

// DriftReport lists operators whose observed cost deviates from the
// system's current cost table by more than threshold, ordered by severity.
type DriftReport struct {
	Op       dsps.OperatorID
	Modelled float64
	Observed float64
	Relative float64
}

// DetectDrift compares observations against the system's operator costs
// (§IV-B condition (a): "resource consumption differs from the initial
// estimates by a given threshold").
func DetectDrift(sys *dsps.System, obs []Observation, threshold float64) []DriftReport {
	var out []DriftReport
	for _, o := range obs {
		modelled := sys.Operators[o.Op].Cost
		rel := Drift(modelled, o.Cost)
		if rel > threshold {
			out = append(out, DriftReport{Op: o.Op, Modelled: modelled, Observed: o.Cost, Relative: rel})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relative != out[j].Relative {
			return out[i].Relative > out[j].Relative
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// ShortageHosts returns hosts whose measured CPU usage exceeds frac of
// their budget (§IV-B condition (b): "suffer from a shortage of resources
// on a host").
func ShortageHosts(sys *dsps.System, usage *dsps.Usage, frac float64) []dsps.HostID {
	var out []dsps.HostID
	for h := 0; h < sys.NumHosts(); h++ {
		if cap := sys.Hosts[h].CPU; cap > 0 && usage.CPU[h] > frac*cap {
			out = append(out, dsps.HostID(h))
		}
	}
	return out
}
