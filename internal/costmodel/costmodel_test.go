package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"sqpr/internal/dsps"
)

func buildSys() (*dsps.System, *dsps.Operator, *dsps.Operator) {
	hosts := []dsps.Host{{ID: 0, CPU: 100, OutBW: 100, InBW: 100}}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(10, dsps.NoOperator, "a")
	b := sys.AddStream(20, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	sys.PlaceBase(0, c)
	ab := sys.AddOperator([]dsps.StreamID{a, b}, 0, 0, "ab")
	abc := sys.AddOperator([]dsps.StreamID{ab.Output, c}, 0, 0, "abc")
	return sys, ab, abc
}

func TestEstimateCostLinearInRates(t *testing.T) {
	sys, ab, _ := buildSys()
	m := NewModel()
	m.CPUBase = 1
	m.CPUPerRate = 0.1
	got := m.EstimateCost(sys, ab.ID)
	want := 1 + 0.1*(10+20)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost %v want %v", got, want)
	}
}

func TestEstimateOutputRateJoin(t *testing.T) {
	sys, ab, _ := buildSys()
	m := NewModel()
	m.SetSelectivity(ab.ID, 0.01)
	got := m.EstimateOutputRate(sys, ab.ID)
	if math.Abs(got-0.01*10*20) > 1e-12 {
		t.Fatalf("rate %v", got)
	}
}

func TestEstimateOutputRateUnary(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 10, OutBW: 10, InBW: 10}}
	sys := dsps.NewSystem(hosts, 10)
	a := sys.AddStream(10, dsps.NoOperator, "a")
	sys.PlaceBase(0, a)
	f := sys.AddOperator([]dsps.StreamID{a}, 0, 0, "filter")
	m := NewModel()
	m.SetSelectivity(f.ID, 0.5)
	if got := m.EstimateOutputRate(sys, f.ID); got != 5 {
		t.Fatalf("unary rate %v", got)
	}
}

func TestApplyResolvesInDependencyOrder(t *testing.T) {
	sys, ab, abc := buildSys()
	m := NewModel()
	m.Apply(sys)
	if sys.Operators[ab.ID].Cost <= 0 || sys.Operators[abc.ID].Cost <= 0 {
		t.Fatal("costs not applied")
	}
	if sys.Streams[ab.Output].Rate <= 0 {
		t.Fatal("composite rate not applied")
	}
	// abc's cost must reflect ab's *estimated* output rate, proving the
	// dependency-ordered sweep.
	wantIn := sys.Streams[ab.Output].Rate + sys.Streams[2].Rate
	want := m.CPUBase + m.CPUPerRate*wantIn
	if math.Abs(sys.Operators[abc.ID].Cost-want) > 1e-9 {
		t.Fatalf("abc cost %v want %v", sys.Operators[abc.ID].Cost, want)
	}
	if sys.Operators[ab.ID].Mem <= 0 {
		t.Fatal("memory footprint not applied")
	}
}

func TestCalibrateRecoversLine(t *testing.T) {
	m := NewModel()
	// Synthesise observations on cost = 2 + 0.5·rate.
	var obs []Observation
	for _, r := range []float64{1, 2, 4, 8, 16} {
		obs = append(obs, Observation{Op: 0, InputRate: r, Cost: 2 + 0.5*r})
	}
	if err := m.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.CPUBase-2) > 1e-9 || math.Abs(m.CPUPerRate-0.5) > 1e-9 {
		t.Fatalf("fit a=%v b=%v", m.CPUBase, m.CPUPerRate)
	}
}

func TestCalibrateErrors(t *testing.T) {
	m := NewModel()
	if err := m.Calibrate(nil); err == nil {
		t.Fatal("expected error for no observations")
	}
	obs := []Observation{{InputRate: 3, Cost: 1}, {InputRate: 3, Cost: 2}}
	if err := m.Calibrate(obs); err == nil {
		t.Fatal("expected error for zero rate variance")
	}
}

func TestCalibrateClampsNegativeSlope(t *testing.T) {
	m := NewModel()
	obs := []Observation{{InputRate: 1, Cost: 10}, {InputRate: 10, Cost: 1}}
	if err := m.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	if m.CPUPerRate < 0 {
		t.Fatalf("negative slope survived: %v", m.CPUPerRate)
	}
}

func TestDrift(t *testing.T) {
	if Drift(10, 15) != 0.5 {
		t.Fatal("drift wrong")
	}
	if Drift(0, 0) != 0 {
		t.Fatal("zero drift wrong")
	}
	if !math.IsInf(Drift(0, 1), 1) {
		t.Fatal("infinite drift wrong")
	}
}

func TestDetectDriftOrdersBySeverity(t *testing.T) {
	sys, ab, abc := buildSys()
	sys.Operators[ab.ID].Cost = 10
	sys.Operators[abc.ID].Cost = 10
	obs := []Observation{
		{Op: ab.ID, Cost: 12},  // 20% drift
		{Op: abc.ID, Cost: 30}, // 200% drift
	}
	got := DetectDrift(sys, obs, 0.1)
	if len(got) != 2 || got[0].Op != abc.ID {
		t.Fatalf("drift report: %+v", got)
	}
	got = DetectDrift(sys, obs, 0.5)
	if len(got) != 1 || got[0].Op != abc.ID {
		t.Fatalf("threshold filter failed: %+v", got)
	}
}

func TestShortageHosts(t *testing.T) {
	sys, _, _ := buildSys()
	u := &dsps.Usage{CPU: []float64{95}}
	got := ShortageHosts(sys, u, 0.9)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("shortage: %v", got)
	}
	if len(ShortageHosts(sys, &dsps.Usage{CPU: []float64{10}}, 0.9)) != 0 {
		t.Fatal("false shortage")
	}
}

// Property: Calibrate on exact linear data recovers the line for any
// non-degenerate positive coefficients.
func TestQuickCalibrate(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%50) / 5
		b := float64(bRaw%50)/50 + 0.01
		var obs []Observation
		for _, r := range []float64{1, 3, 7, 11} {
			obs = append(obs, Observation{InputRate: r, Cost: a + b*r})
		}
		m := NewModel()
		if err := m.Calibrate(obs); err != nil {
			return false
		}
		return math.Abs(m.CPUBase-a) < 1e-6 && math.Abs(m.CPUPerRate-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
