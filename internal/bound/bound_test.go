package bound

import (
	"context"
	"testing"

	"sqpr/internal/dsps"
	"sqpr/internal/workload"
)

// submitOK drives the unified Submit and reports admission.
func submitOK(p *Planner, q dsps.StreamID) bool {
	res, err := p.Submit(context.Background(), q)
	return err == nil && res.Admitted
}

func TestAdmitWithinBudget(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 5, OutBW: 1, InBW: 1}} // network irrelevant
	sys := dsps.NewSystem(hosts, 0)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 3, "ab")
	sys.SetRequested(op.Output, true)

	p := New(sys)
	if !submitOK(p, op.Output) {
		t.Fatal("rejected within budget")
	}
	if p.Remaining() != 2 {
		t.Fatalf("remaining budget %v", p.Remaining())
	}
}

func TestRejectBeyondBudget(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 2, OutBW: 1, InBW: 1}}
	sys := dsps.NewSystem(hosts, 0)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 3, "ab")
	sys.SetRequested(op.Output, true)
	p := New(sys)
	if submitOK(p, op.Output) {
		t.Fatal("admitted beyond budget")
	}
}

func TestReuseIsFree(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 4, OutBW: 1, InBW: 1}}
	sys := dsps.NewSystem(hosts, 0)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	d := sys.AddStream(5, dsps.NoOperator, "d")
	for _, s := range []dsps.StreamID{a, b, c, d} {
		sys.PlaceBase(0, s)
	}
	shared := sys.AddOperator([]dsps.StreamID{a, b}, 2, 2, "ab")
	q1 := sys.AddOperator([]dsps.StreamID{shared.Output, c}, 1, 1, "abc")
	q2 := sys.AddOperator([]dsps.StreamID{shared.Output, d}, 1, 1, "abd")
	sys.SetRequested(q1.Output, true)
	sys.SetRequested(q2.Output, true)

	p := New(sys)
	if !submitOK(p, q1.Output) { // costs 2 + 1 = 3
		t.Fatal("q1 rejected")
	}
	if !submitOK(p, q2.Output) { // shared op free: costs only 1
		t.Fatal("q2 rejected despite reuse")
	}
	if p.Remaining() != 0 {
		t.Fatalf("remaining %v, want 0", p.Remaining())
	}
}

func TestCheapestPlanChosen(t *testing.T) {
	// Two alternative producers for the same stream with different costs:
	// the bound must pick the cheaper plan.
	hosts := []dsps.Host{{ID: 0, CPU: 1.5, OutBW: 1, InBW: 1}}
	sys := dsps.NewSystem(hosts, 0)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	expensive := sys.AddOperator([]dsps.StreamID{a, b}, 1, 5, "expensive")
	sys.AddProducerFor(expensive.Output, []dsps.StreamID{a, b}, 1, "cheap")
	sys.SetRequested(expensive.Output, true)
	p := New(sys)
	if !submitOK(p, expensive.Output) {
		t.Fatal("rejected although the cheap plan fits")
	}
	if p.Remaining() != 0.5 {
		t.Fatalf("remaining %v, want 0.5", p.Remaining())
	}
}

func TestDuplicateQueryFree(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 3, OutBW: 1, InBW: 1}}
	sys := dsps.NewSystem(hosts, 0)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 3, "ab")
	sys.SetRequested(op.Output, true)
	p := New(sys)
	if !submitOK(p, op.Output) || !submitOK(p, op.Output) {
		t.Fatal("duplicate rejected")
	}
	if p.AdmittedCount() != 1 {
		t.Fatalf("count %d", p.AdmittedCount())
	}
}

// TestBoundDominatesAnyPlanner checks the defining property of the bound:
// on a shared workload it admits at least as many queries as SQPR-style
// planners can (here verified against the heuristic-free greedy count from
// the workload's own CPU arithmetic).
func TestBoundDominatesResourceArithmetic(t *testing.T) {
	sys := workload.BuildSystem(workload.SystemConfig{NumHosts: 4, CPUPerHost: 2, OutBW: 100, InBW: 100, LinkCap: 50})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = 20
	cfg.NumQueries = 40
	w := workload.Generate(sys, cfg)
	p := New(sys)
	for _, q := range w.Queries {
		submitOK(p, q)
	}
	if p.Remaining() < -1e-9 {
		t.Fatalf("budget overdrawn: %v", p.Remaining())
	}
	if p.AdmittedCount() == 0 {
		t.Fatal("bound admitted nothing")
	}
}
