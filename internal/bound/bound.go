// Package bound computes the optimistic upper bound of §V-A: all hosts are
// aggregated into a single synthetic host holding every base stream, with
// CPU capacity Σ ζ_h and no network constraints. The number of queries this
// aggregate host can satisfy upper-bounds what any planner can achieve on
// the real network, even with globally optimal planning.
package bound

import (
	"math"

	"sqpr/internal/dsps"
)

// Planner is the aggregate-host bound calculator. Queries are admitted
// sequentially with full global reuse: operators already placed by earlier
// queries cost nothing for later ones.
type Planner struct {
	sys      *dsps.System
	budget   float64 // remaining aggregate CPU
	placed   map[dsps.OperatorID]bool
	haveCost map[dsps.StreamID]float64 // memo of marginal cost per stream
	admitted map[dsps.StreamID]bool
}

// New creates the bound planner for a system.
func New(sys *dsps.System) *Planner {
	return &Planner{
		sys:      sys,
		budget:   sys.TotalCPU(),
		placed:   make(map[dsps.OperatorID]bool),
		admitted: make(map[dsps.StreamID]bool),
	}
}

// Remaining returns the unused aggregate CPU budget.
func (p *Planner) Remaining() float64 { return p.budget }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Admitted reports whether q was admitted.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// Submit admits q if the marginal CPU cost of the cheapest plan (reusing
// all previously placed operators) fits the remaining aggregate budget.
//
// To stay a true *upper* bound on any real planner, the reuse accounting is
// deliberately optimistic: once q is admitted, the entire plan space of q —
// every operator of every alternative join order — is treated as available
// for reuse at zero cost by later queries. A real planner can only reuse
// operators it actually placed, which is a subset, so its marginal costs
// are never lower and its admission count never higher.
func (p *Planner) Submit(q dsps.StreamID) bool {
	if p.admitted[q] {
		return true
	}
	cost, _, ok := p.cheapest(q, make(map[dsps.StreamID]bool))
	if !ok || cost > p.budget+1e-9 {
		return false
	}
	p.budget -= cost
	p.markClosurePlaced(q)
	p.admitted[q] = true
	return true
}

// markClosurePlaced registers every operator in q's plan-space closure as
// placed (see Submit for why this optimism is required).
func (p *Planner) markClosurePlaced(q dsps.StreamID) {
	seen := make(map[dsps.StreamID]bool)
	stack := []dsps.StreamID{q}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, op := range p.sys.ProducersOf(s) {
			p.placed[op] = true
			stack = append(stack, p.sys.Operators[op].Inputs...)
		}
	}
}

// cheapest computes the minimum marginal CPU cost to materialise stream s
// on the aggregate host, together with the operators chosen. visiting
// guards against cycles through alternative producers.
func (p *Planner) cheapest(s dsps.StreamID, visiting map[dsps.StreamID]bool) (float64, []dsps.OperatorID, bool) {
	if p.sys.Streams[s].IsBase() {
		return 0, nil, true
	}
	if visiting[s] {
		return 0, nil, false
	}
	visiting[s] = true
	defer delete(visiting, s)

	best := math.Inf(1)
	var bestOps []dsps.OperatorID
	for _, opID := range p.sys.ProducersOf(s) {
		if p.placed[opID] {
			// Already running: its output is materialised at zero cost.
			return 0, nil, true
		}
	}
	for _, opID := range p.sys.ProducersOf(s) {
		op := &p.sys.Operators[opID]
		total := op.Cost
		ops := []dsps.OperatorID{opID}
		ok := true
		for _, in := range op.Inputs {
			c, sub, o := p.cheapest(in, visiting)
			if !o {
				ok = false
				break
			}
			total += c
			ops = append(ops, sub...)
		}
		if ok && total < best {
			best = total
			bestOps = ops
		}
	}
	if math.IsInf(best, 1) {
		return 0, nil, false
	}
	// Deduplicate operators shared between sub-trees so their cost is not
	// double-counted.
	seen := make(map[dsps.OperatorID]bool, len(bestOps))
	var uniq []dsps.OperatorID
	var cost float64
	for _, o := range bestOps {
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
			cost += p.sys.Operators[o].Cost
		}
	}
	return cost, uniq, true
}
