// Package bound computes the optimistic upper bound of §V-A: all hosts are
// aggregated into a single synthetic host holding every base stream, with
// CPU capacity Σ ζ_h and no network constraints. The number of queries this
// aggregate host can satisfy upper-bounds what any planner can achieve on
// the real network, even with globally optimal planning.
package bound

import (
	"context"
	"fmt"
	"math"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// Planner is the aggregate-host bound calculator. Queries are admitted
// sequentially with full global reuse: operators already placed by earlier
// queries cost nothing for later ones. It implements plan.QueryPlanner;
// because the aggregate host is synthetic, Assignment() carries no
// physical placements.
type Planner struct {
	sys      *dsps.System
	budget   float64 // remaining aggregate CPU
	capacity float64 // total usable aggregate CPU (tracks host churn)
	placed   map[dsps.OperatorID]bool
	haveCost map[dsps.StreamID]float64 // memo of marginal cost per stream
	admitted map[dsps.StreamID]bool
	// charged records the marginal CPU each admitted query was billed, so
	// Remove can refund it. Refunds and the persistently placed operator
	// closure are both optimistic, preserving the upper-bound property.
	charged map[dsps.StreamID]float64
	state   *dsps.Assignment
	stats   plan.Stats
}

// New creates the bound planner for a system. The aggregate budget counts
// usable (non-down) hosts only, so a bound built over a degraded system
// stays an upper bound for that system.
func New(sys *dsps.System) *Planner {
	return &Planner{
		sys:      sys,
		budget:   sys.UsableCPU(),
		capacity: sys.UsableCPU(),
		placed:   make(map[dsps.OperatorID]bool),
		admitted: make(map[dsps.StreamID]bool),
		charged:  make(map[dsps.StreamID]float64),
		state:    dsps.NewAssignment(),
	}
}

// Remaining returns the unused aggregate CPU budget.
func (p *Planner) Remaining() float64 { return p.budget }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Admitted reports whether q was admitted.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// Assignment returns an empty allocation: the bound planner is a pure
// admission calculator over a synthetic aggregate host and produces no
// physical placement.
func (p *Planner) Assignment() *dsps.Assignment { return p.state }

// Stats returns cumulative planner telemetry.
func (p *Planner) Stats() plan.Stats { return p.stats }

// Submit admits q (and any plan.WithBatch companions, sequentially) if the
// marginal CPU cost of the cheapest plan (reusing all previously placed
// operators) fits the remaining aggregate budget. The host-restriction and
// validation options are no-ops on the synthetic aggregate host.
//
// To stay a true *upper* bound on any real planner, the reuse accounting is
// deliberately optimistic: once q is admitted, the entire plan space of q —
// every operator of every alternative join order — is treated as available
// for reuse at zero cost by later queries. A real planner can only reuse
// operators it actually placed, which is a subset, so its marginal costs
// are never lower and its admission count never higher.
func (p *Planner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	ctx = plan.OrBackground(ctx)
	start := time.Now()
	cfg := plan.Apply(opts)
	var res plan.Result

	// All error checks happen before any admission, so a failed call never
	// leaves a partially-applied batch behind. Per-query work is pure CPU
	// arithmetic, so one upfront ctx poll suffices.
	qs := cfg.Queries(q)
	if err := ctx.Err(); err != nil {
		return plan.Result{}, err
	}
	for _, query := range qs {
		if err := plan.CheckStream(p.sys, query); err != nil {
			return plan.Result{}, fmt.Errorf("bound: %w", err)
		}
	}

	allAdmitted := true
	anyFresh := false
	for _, query := range qs {
		if p.admitted[query] {
			res.AlreadyAdmitted = true
			continue
		}
		anyFresh = true
		cost, _, ok := p.cheapest(query, make(map[dsps.StreamID]bool))
		if !ok || cost > p.budget+1e-9 {
			allAdmitted = false
			res.Reason = plan.ReasonResourceExhausted
			if !ok {
				res.Reason = plan.ReasonNoFeasiblePlan
			}
			continue
		}
		p.budget -= cost
		p.charged[query] = cost
		p.markClosurePlaced(query)
		p.admitted[query] = true
	}
	res.Admitted = allAdmitted
	if res.Admitted || !anyFresh {
		res.Reason = plan.ReasonNone
	}
	res.PlanTime = time.Since(start)
	p.stats.Record(res)
	return res, nil
}

// Remove withdraws an admitted query and refunds the marginal CPU it was
// charged. The operator closure stays marked as placed — deliberately
// optimistic, which keeps the bound an upper bound (refunded budget and
// free reuse can only increase later admissions).
func (p *Planner) Remove(q dsps.StreamID) error {
	if err := plan.CheckStream(p.sys, q); err != nil {
		return fmt.Errorf("bound: %w", err)
	}
	if !p.admitted[q] {
		return fmt.Errorf("bound: query %d: %w", q, plan.ErrNotAdmitted)
	}
	p.budget += p.charged[q]
	delete(p.charged, q)
	delete(p.admitted, q)
	return nil
}

// Repair adjusts the aggregate CPU budget to the post-event usable host
// set. On failures the lost capacity is subtracted; if the remaining
// admissions no longer fit, the fewest possible queries (largest charges
// first) are dropped, which keeps the count an upper bound on any real
// planner's surviving admissions. Recoveries restore capacity. The bound
// has no physical placements, so nothing migrates, and drift events are
// no-ops (the bound's reuse accounting is already maximally optimistic).
func (p *Planner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	ctx = plan.OrBackground(ctx)
	start := time.Now()
	var rr plan.RepairResult
	if err := plan.ApplyEvents(p.sys, events); err != nil {
		return rr, err
	}
	if err := ctx.Err(); err != nil {
		return rr, err
	}
	newCap := p.sys.UsableCPU()
	p.budget += newCap - p.capacity
	p.capacity = newCap
	for p.budget < -1e-9 {
		// Deficit: drop the query with the largest charge (fewest drops).
		worst := dsps.StreamID(-1)
		var worstCharge float64
		for q := range p.admitted {
			c := p.charged[q]
			if worst < 0 || c > worstCharge || (c == worstCharge && q < worst) {
				worst, worstCharge = q, c
			}
		}
		if worst < 0 {
			break // nothing left to drop; capacity is simply negative
		}
		p.budget += worstCharge
		delete(p.charged, worst)
		delete(p.admitted, worst)
		rr.Affected = append(rr.Affected, worst)
		rr.Dropped = append(rr.Dropped, worst)
	}
	rr.Admitted = len(rr.Dropped) == 0
	if !rr.Admitted {
		rr.Reason = plan.ReasonResourceExhausted
	}
	rr.PlanTime = time.Since(start)
	return rr, nil
}

// markClosurePlaced registers every operator in q's plan-space closure as
// placed (see Submit for why this optimism is required).
func (p *Planner) markClosurePlaced(q dsps.StreamID) {
	seen := make(map[dsps.StreamID]bool)
	stack := []dsps.StreamID{q}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, op := range p.sys.ProducersOf(s) {
			p.placed[op] = true
			stack = append(stack, p.sys.Operators[op].Inputs...)
		}
	}
}

// cheapest computes the minimum marginal CPU cost to materialise stream s
// on the aggregate host, together with the operators chosen. visiting
// guards against cycles through alternative producers.
func (p *Planner) cheapest(s dsps.StreamID, visiting map[dsps.StreamID]bool) (float64, []dsps.OperatorID, bool) {
	if p.sys.Streams[s].IsBase() {
		return 0, nil, true
	}
	if visiting[s] {
		return 0, nil, false
	}
	visiting[s] = true
	defer delete(visiting, s)

	best := math.Inf(1)
	var bestOps []dsps.OperatorID
	for _, opID := range p.sys.ProducersOf(s) {
		if p.placed[opID] {
			// Already running: its output is materialised at zero cost.
			return 0, nil, true
		}
	}
	for _, opID := range p.sys.ProducersOf(s) {
		op := &p.sys.Operators[opID]
		total := op.Cost
		ops := []dsps.OperatorID{opID}
		ok := true
		for _, in := range op.Inputs {
			c, sub, o := p.cheapest(in, visiting)
			if !o {
				ok = false
				break
			}
			total += c
			ops = append(ops, sub...)
		}
		if ok && total < best {
			best = total
			bestOps = ops
		}
	}
	if math.IsInf(best, 1) {
		return 0, nil, false
	}
	// Deduplicate operators shared between sub-trees so their cost is not
	// double-counted.
	seen := make(map[dsps.OperatorID]bool, len(bestOps))
	var uniq []dsps.OperatorID
	var cost float64
	for _, o := range bestOps {
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
			cost += p.sys.Operators[o].Cost
		}
	}
	return cost, uniq, true
}
