package bound

import (
	"encoding/json"
	"fmt"
	"sort"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// aux is the planner-private durable state of the bound calculator: the
// CPU ledger that the generic State fields cannot express (the synthetic
// aggregate host has no physical assignment).
type aux struct {
	Budget   float64           `json:"budget"`
	Capacity float64           `json:"capacity"`
	Placed   []dsps.OperatorID `json:"placed"`
	Charged  []charge          `json:"charged"`
}

type charge struct {
	Stream dsps.StreamID `json:"stream"`
	Cost   float64       `json:"cost"`
}

// ExportState snapshots the planner's durable state (see plan.StatePorter).
// The ledger travels in Aux, sorted for deterministic serialisation.
func (p *Planner) ExportState() plan.State {
	s := plan.ExportedState(p.sys, p.state, p.admitted)
	a := aux{Budget: p.budget, Capacity: p.capacity}
	for op, on := range p.placed {
		if on {
			a.Placed = append(a.Placed, op)
		}
	}
	sort.Slice(a.Placed, func(i, j int) bool { return a.Placed[i] < a.Placed[j] })
	for q, c := range p.charged {
		a.Charged = append(a.Charged, charge{Stream: q, Cost: c})
	}
	sort.Slice(a.Charged, func(i, j int) bool { return a.Charged[i].Stream < a.Charged[j].Stream })
	raw, err := json.Marshal(a)
	if err != nil {
		// aux contains only plain numeric fields; Marshal cannot fail.
		panic(fmt.Sprintf("bound: marshalling aux state: %v", err))
	}
	s.Aux = raw
	return s
}

// ImportState replaces the planner state with s (see plan.StatePorter).
func (p *Planner) ImportState(s plan.State) error {
	if err := plan.CheckState(p.sys, s); err != nil {
		return fmt.Errorf("bound: %w", err)
	}
	var a aux
	if len(s.Aux) == 0 {
		return fmt.Errorf("bound: imported state is missing the aux CPU ledger")
	}
	if err := json.Unmarshal(s.Aux, &a); err != nil {
		return fmt.Errorf("bound: decoding aux state: %w", err)
	}
	plan.ApplyHostStates(p.sys, s.Hosts)
	p.budget = a.Budget
	p.capacity = a.Capacity
	p.placed = make(map[dsps.OperatorID]bool, len(a.Placed))
	for _, op := range a.Placed {
		p.placed[op] = true
	}
	p.charged = make(map[dsps.StreamID]float64, len(a.Charged))
	for _, c := range a.Charged {
		p.charged[c.Stream] = c.Cost
	}
	p.admitted = s.AdmittedSet()
	p.state = s.Assignment.Clone()
	return nil
}
