package hier

import "sqpr/internal/plan"

// ExportState snapshots the planner's durable state (see plan.StatePorter).
// Site partitioning is static configuration, not state, so the wrapper
// delegates wholesale to the inner SQPR planner.
func (p *Planner) ExportState() plan.State {
	return p.inner.ExportState()
}

// ImportState replaces the planner state with s (see plan.StatePorter).
func (p *Planner) ImportState(s plan.State) error {
	return p.inner.ImportState(s)
}
