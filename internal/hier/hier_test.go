package hier

import (
	"context"
	"testing"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/workload"
)

// submitOK drives the unified Submit and reports admission.
func submitOK(p *Planner, q dsps.StreamID) bool {
	res, err := p.Submit(context.Background(), q)
	return err == nil && res.Admitted
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = 150 * time.Millisecond
	return cfg
}

func buildWorkload(t *testing.T, hosts, queries int) (*dsps.System, []dsps.StreamID) {
	t.Helper()
	sys := workload.BuildSystem(workload.SystemConfig{
		NumHosts: hosts, CPUPerHost: 6, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = hosts * 5
	cfg.NumQueries = queries
	cfg.Arities = []int{2, 3}
	w := workload.Generate(sys, cfg)
	return sys, w.Queries
}

func TestPartitionCoversAllHosts(t *testing.T) {
	sys, _ := buildWorkload(t, 10, 1)
	p := New(sys, testConfig(), 3)
	seen := make(map[dsps.HostID]bool)
	total := 0
	for _, site := range p.Sites() {
		for _, h := range site {
			if seen[h] {
				t.Fatalf("host %d in two sites", h)
			}
			seen[h] = true
			total++
		}
	}
	if total != 10 {
		t.Fatalf("partition covers %d hosts", total)
	}
	// Near-equal sizes: 10 into 3 sites → 4,3,3.
	if len(p.Sites()[0]) != 4 || len(p.Sites()[1]) != 3 || len(p.Sites()[2]) != 3 {
		t.Fatalf("site sizes: %d %d %d", len(p.Sites()[0]), len(p.Sites()[1]), len(p.Sites()[2]))
	}
}

func TestSiteCountClamped(t *testing.T) {
	sys, _ := buildWorkload(t, 4, 1)
	if got := len(New(sys, testConfig(), 0).Sites()); got != 1 {
		t.Fatalf("zero sites -> %d", got)
	}
	if got := len(New(sys, testConfig(), 99).Sites()); got != 4 {
		t.Fatalf("too many sites -> %d", got)
	}
}

func TestHierarchicalAdmitsAndValidates(t *testing.T) {
	sys, queries := buildWorkload(t, 8, 12)
	p := New(sys, testConfig(), 2)
	admitted := 0
	for _, q := range queries {
		if submitOK(p, q) {
			admitted++
		}
		if err := p.Assignment().Validate(sys); err != nil {
			t.Fatalf("infeasible after submit: %v", err)
		}
	}
	if admitted == 0 {
		t.Fatal("hierarchical planner admitted nothing")
	}
	if p.AdmittedCount() == 0 {
		t.Fatal("bookkeeping lost admissions")
	}
}

func TestFallbackRecoversCrossSiteQueries(t *testing.T) {
	// Query with base streams split across two sites: without fallback the
	// primary site may fail; with it, admission must not be worse.
	sys := workload.BuildSystem(workload.SystemConfig{
		NumHosts: 4, CPUPerHost: 6, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a) // site 0
	sys.PlaceBase(3, b) // site 1
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)

	p := New(sys, testConfig(), 2)
	if !submitOK(p, op.Output) {
		t.Fatal("cross-site query rejected despite forced base hosts")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestSiteRoutingPrefersCoverage(t *testing.T) {
	sys := workload.BuildSystem(workload.SystemConfig{
		NumHosts: 6, CPUPerHost: 6, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	// Both bases in the second site (hosts 3–5).
	sys.PlaceBase(4, a)
	sys.PlaceBase(5, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)

	p := New(sys, testConfig(), 2)
	order := p.rankSites(op.Output)
	if order[0] != 1 {
		t.Fatalf("site ranking %v, want site 1 first", order)
	}
	if !submitOK(p, op.Output) {
		t.Fatal("query rejected")
	}
	// The operator should be placed inside site 1.
	for pl, on := range p.Assignment().Ops {
		if on && pl.Op == op.ID && pl.Host < 3 {
			t.Fatalf("operator placed at host %d outside its site", pl.Host)
		}
	}
}

func TestHierarchicalVsFlatAdmissions(t *testing.T) {
	// The hierarchical planner must stay in the same ballpark as flat SQPR
	// (it trades optimality for per-call model size, not correctness).
	sys, queries := buildWorkload(t, 8, 10)
	hp := New(sys, testConfig(), 2)
	for _, q := range queries {
		hp.Submit(context.Background(), q)
	}

	sysF, queriesF := buildWorkload(t, 8, 10)
	fp := core.NewPlanner(sysF, testConfig())
	for _, q := range queriesF {
		fp.Submit(context.Background(), q)
	}
	if hp.AdmittedCount() == 0 {
		t.Fatal("hierarchical admitted nothing")
	}
	if hp.AdmittedCount() < fp.AdmittedCount()/2 {
		t.Fatalf("hierarchical admissions collapsed: %d vs flat %d", hp.AdmittedCount(), fp.AdmittedCount())
	}
}
