// Package hier implements the hierarchical decomposition the SQPR paper
// sketches in §VII ("first assigning queries to sites and then planning
// queries within sites"): the hosts are partitioned into sites, each new
// query is routed to the site holding most of its base streams (breaking
// ties by spare capacity), and the SQPR optimisation then runs with its
// candidate hosts restricted to that site. This bounds the per-call model
// size by the site size instead of the cluster size — trading some global
// optimality for planning time, which is exactly the scalability issue
// Fig. 6(a) exposes.
package hier

import (
	"context"
	"sort"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// Planner wraps one SQPR planner with site-level query routing. It
// implements plan.QueryPlanner.
type Planner struct {
	sys   *dsps.System
	inner *core.Planner
	sites [][]dsps.HostID
	// siteOf maps every host to its site index.
	siteOf []int
	// Fallback controls whether a query rejected by its primary site is
	// retried on the next-best sites.
	Fallback bool
}

// New creates a hierarchical planner with the hosts partitioned into
// numSites contiguous, near-equal sites.
func New(sys *dsps.System, cfg core.Config, numSites int) *Planner {
	if numSites < 1 {
		numSites = 1
	}
	n := sys.NumHosts()
	if numSites > n {
		numSites = n
	}
	p := &Planner{
		sys:      sys,
		inner:    core.NewPlanner(sys, cfg),
		siteOf:   make([]int, n),
		Fallback: true,
	}
	base := n / numSites
	extra := n % numSites
	h := 0
	for s := 0; s < numSites; s++ {
		size := base
		if s < extra {
			size++
		}
		var site []dsps.HostID
		for i := 0; i < size; i++ {
			site = append(site, dsps.HostID(h))
			p.siteOf[h] = s
			h++
		}
		p.sites = append(p.sites, site)
	}
	return p
}

// Sites returns the host partition (do not mutate).
func (p *Planner) Sites() [][]dsps.HostID { return p.sites }

// Inner exposes the wrapped SQPR planner.
func (p *Planner) Inner() *core.Planner { return p.inner }

// Assignment returns the current allocation.
func (p *Planner) Assignment() *dsps.Assignment { return p.inner.Assignment() }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return p.inner.AdmittedCount() }

// Admitted reports whether q is served.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.inner.Admitted(q) }

// Stats returns cumulative planner telemetry (accumulated by the wrapped
// SQPR planner; retried sites count as separate planning calls).
func (p *Planner) Stats() plan.Stats { return p.inner.Stats() }

// Remove withdraws an admitted query from the wrapped SQPR planner.
func (p *Planner) Remove(q dsps.StreamID) error { return p.inner.Remove(q) }

// Repair handles churn events with the shared fallback: the queries the
// events invalidated are removed and resubmitted through this planner's
// site-routed Submit, so repairs respect the hierarchical decomposition.
// (The wrapped planner's delta solver is not used: its migration-minimal
// solve spans sites, which would defeat the per-site model-size bound.)
func (p *Planner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	return plan.RepairByResubmit(ctx, p.sys, p, events, opts...)
}

// Submit routes the query to its best site and plans it there; with
// Fallback enabled, rejected queries are retried on the remaining sites in
// descending preference order. An explicit plan.WithCandidateHosts option
// bypasses site routing and delegates to the wrapped planner unchanged.
// plan.WithTimeout bounds the whole call including fallback attempts (one
// budget drawn down across the per-site solves); the remaining options are
// forwarded to each attempt.
func (p *Planner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	ctx = plan.OrBackground(ctx)
	cfg := plan.Apply(opts)
	if cfg.Hosts != nil {
		return p.inner.Submit(ctx, q, opts...)
	}
	if err := plan.CheckStream(p.sys, q); err != nil {
		return plan.Result{}, err
	}
	// A per-attempt WithTimeout would multiply by the number of sites
	// tried; treat it as one budget drawn down across all attempts.
	var deadline time.Time
	if cfg.Timeout > 0 {
		deadline = time.Now().Add(cfg.Timeout)
	}
	var siteOpts []plan.SubmitOption
	if cfg.Batch != nil {
		siteOpts = append(siteOpts, plan.WithBatch(cfg.Batch...))
	}
	if cfg.Validate != nil {
		siteOpts = append(siteOpts, plan.WithValidation(*cfg.Validate))
	}
	order := p.rankSites(q)
	tries := order
	if !p.Fallback && len(order) > 0 {
		tries = order[:1]
	}
	var last plan.Result
	for _, s := range tries {
		attempt := append(append([]plan.SubmitOption(nil), siteOpts...),
			plan.WithCandidateHosts(p.sites[s]...))
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				break // budget exhausted; the last rejection stands
			}
			attempt = append(attempt, plan.WithTimeout(remaining))
		}
		res, err := p.inner.Submit(ctx, q, attempt...)
		if err != nil {
			return res, err
		}
		last = res
		if res.Admitted || res.AlreadyAdmitted {
			return res, nil
		}
	}
	return last, nil
}

// rankSites orders sites by (base-stream coverage of q, spare CPU).
func (p *Planner) rankSites(q dsps.StreamID) []int {
	coverage := make([]int, len(p.sites))
	for _, s := range p.baseStreamsOf(q) {
		for _, h := range p.sys.BaseHosts(s) {
			coverage[p.siteOf[h]]++
		}
	}
	usage := p.inner.Assignment().ComputeUsage(p.sys)
	spare := make([]float64, len(p.sites))
	for si, site := range p.sites {
		for _, h := range site {
			spare[si] += p.sys.Hosts[h].CPU - usage.CPU[h]
		}
	}
	order := make([]int, len(p.sites))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if coverage[a] != coverage[b] {
			return coverage[a] > coverage[b]
		}
		if spare[a] != spare[b] {
			return spare[a] > spare[b]
		}
		return a < b
	})
	return order
}

// baseStreamsOf expands q to the base streams of its plan space.
func (p *Planner) baseStreamsOf(q dsps.StreamID) []dsps.StreamID {
	seen := make(map[dsps.StreamID]bool)
	var bases []dsps.StreamID
	var stack []dsps.StreamID
	stack = append(stack, q)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		if p.sys.Streams[s].IsBase() {
			bases = append(bases, s)
			continue
		}
		for _, op := range p.sys.ProducersOf(s) {
			stack = append(stack, p.sys.Operators[op].Inputs...)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}
