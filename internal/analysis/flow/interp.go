package flow

import (
	"go/ast"
	"sort"
)

// Effects parameterizes WalkBody over an abstract path state S: walorder
// tracks a "mutated but unjournaled" bit, lockorder a held-lock set. The
// walker owns control flow (branch forking, merging, loop re-entry,
// termination); the analyzer owns what a call does to the state.
type Effects[S any] struct {
	// Clone copies a state before a path forks.
	Clone func(S) S
	// Merge joins the states of two paths that reconverge. Analyzers pick
	// the direction of the approximation here: walorder merges with OR
	// (may-be-dirty), lockorder with intersection (must-hold).
	Merge func(S, S) S
	// Call applies one call/defer/go expression to the state and returns
	// the state after it. Reporting happens inside; deduplicate by
	// position, since loop bodies are walked twice.
	Call func(S, *ast.CallExpr, CallKind) S
}

// WalkBody abstractly interprets a function body: statements in source
// order, both arms of every branch, loop bodies twice (entry state merged
// with first-pass exit, so facts established late in an iteration are seen
// by early statements of the next), paths ending in return dropped from
// reconvergence merges. Function literals are not entered — they execute
// elsewhere; analyzers handle them as separate graph nodes.
//
// The result is the merged state over all paths reaching the end of body.
func WalkBody[S any](body *ast.BlockStmt, entry S, fx Effects[S]) S {
	s, _ := walkStmt(body, entry, fx)
	return s
}

// walkStmt returns the state after st and whether every path through st
// terminates (return), so callers can drop dead paths from merges.
func walkStmt[S any](st ast.Stmt, s S, fx Effects[S]) (S, bool) {
	switch x := st.(type) {
	case nil:
		return s, false

	case *ast.BlockStmt:
		for _, sub := range x.List {
			var term bool
			s, term = walkStmt(sub, s, fx)
			if term {
				return s, true
			}
		}
		return s, false

	case *ast.IfStmt:
		s, _ = walkStmt(x.Init, s, fx)
		s = exprCalls(x.Cond, s, fx)
		thenS, thenT := walkStmt(x.Body, fx.Clone(s), fx)
		elseS, elseT := walkStmt(x.Else, fx.Clone(s), fx)
		switch {
		case thenT && elseT:
			return s, true
		case thenT:
			return elseS, false
		case elseT:
			return thenS, false
		}
		return fx.Merge(thenS, elseS), false

	case *ast.ForStmt:
		s, _ = walkStmt(x.Init, s, fx)
		cur := exprCalls(x.Cond, s, fx)
		for range 2 {
			b, term := walkStmt(x.Body, fx.Clone(cur), fx)
			if term {
				break
			}
			b, _ = walkStmt(x.Post, b, fx)
			b = exprCalls(x.Cond, b, fx)
			cur = fx.Merge(cur, b)
		}
		return cur, false

	case *ast.RangeStmt:
		cur := exprCalls(x.X, s, fx)
		for range 2 {
			b, term := walkStmt(x.Body, fx.Clone(cur), fx)
			if term {
				break
			}
			cur = fx.Merge(cur, b)
		}
		return cur, false

	case *ast.SwitchStmt:
		s, _ = walkStmt(x.Init, s, fx)
		s = exprCalls(x.Tag, s, fx)
		return walkClauses(x.Body, s, true, fx)

	case *ast.TypeSwitchStmt:
		s, _ = walkStmt(x.Init, s, fx)
		s, _ = walkStmt(x.Assign, s, fx)
		return walkClauses(x.Body, s, true, fx)

	case *ast.SelectStmt:
		// Exactly one clause runs; there is no fall-past path.
		return walkClauses(x.Body, s, false, fx)

	case *ast.LabeledStmt:
		return walkStmt(x.Stmt, s, fx)

	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s = exprCalls(e, s, fx)
		}
		return s, true

	case *ast.BranchStmt:
		// break/continue/goto: approximated as fall-through; loop re-entry
		// and reconvergence merges absorb the imprecision.
		return s, false

	case *ast.DeferStmt:
		// Arguments are evaluated now; the call itself is tagged KindDefer
		// and processed at the defer site (a lexical approximation of
		// running at return).
		for _, a := range x.Call.Args {
			s = exprCalls(a, s, fx)
		}
		return fx.Call(s, x.Call, KindDefer), false

	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			s = exprCalls(a, s, fx)
		}
		return fx.Call(s, x.Call, KindGo), false
	}

	// Leaf statements (expressions, assignments, declarations, sends):
	// process contained calls in evaluation order.
	return exprCalls(st, s, fx), false
}

// walkClauses merges the case bodies of a switch/select; withImplicit adds
// the fall-past path of a switch without a default clause.
func walkClauses[S any](body *ast.BlockStmt, s S, withImplicit bool, fx Effects[S]) (S, bool) {
	var (
		merged  S
		have    bool
		allTerm = true
		hasDef  bool
	)
	for _, raw := range body.List {
		var exprs []ast.Expr
		var stmts []ast.Stmt
		switch cc := raw.(type) {
		case *ast.CaseClause:
			exprs, stmts = cc.List, cc.Body
			if cc.List == nil {
				hasDef = true
			}
		case *ast.CommClause:
			stmts = cc.Body
			if cc.Comm != nil {
				var st S
				st, _ = walkStmt(cc.Comm, fx.Clone(s), fx)
				_ = st // comm op itself carries no call effects worth keeping per-clause
			} else {
				hasDef = true
			}
		default:
			continue
		}
		cs := fx.Clone(s)
		for _, e := range exprs {
			cs = exprCalls(e, cs, fx)
		}
		cs, term := walkStmt(&ast.BlockStmt{List: stmts}, cs, fx)
		if term {
			continue
		}
		allTerm = false
		if !have {
			merged, have = cs, true
		} else {
			merged = fx.Merge(merged, cs)
		}
	}
	if withImplicit && !hasDef {
		if !have {
			return s, false
		}
		return fx.Merge(merged, s), false
	}
	if !have {
		// Every clause terminated (or there were none): the statement
		// terminates only if a default guarantees some clause ran.
		if allTerm && hasDef {
			return s, true
		}
		return s, false
	}
	return merged, false
}

// exprCalls applies fx.Call to every call expression under n (excluding
// nested function literals) in approximate evaluation order: a call
// completes after its operands, so ordering by end offset visits g before
// f in f(g()).
func exprCalls[S any](n ast.Node, s S, fx Effects[S]) S {
	if n == nil {
		return s
	}
	var calls []*ast.CallExpr
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			calls = append(calls, x)
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].End() < calls[j].End() })
	for _, c := range calls {
		s = fx.Call(s, c, KindCall)
	}
	return s
}
