// Package flowgraph is the call-graph fixture: every edge kind, nested
// literals, method values, and an annotated interface method, with shapes
// mirroring the real tree (dispatcher loop, deferred unlock, worker pool).
package flowgraph

import "sync"

// Planner mimics plan.QueryPlanner: the contract annotation lives on the
// interface method and must be reachable through dynamic dispatch.
type Planner interface {
	//sqpr:mutates
	Submit(id string) error
}

type service struct {
	mu sync.Mutex
	p  Planner
}

//sqpr:ack-point
func (s *service) reply() {}

//sqpr:journal-point
func (s *service) journal() error { return nil }

func (s *service) applyOne(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.p.Submit(id); err != nil {
		return err
	}
	return s.journal()
}

func (s *service) dispatch(ids []string) {
	for _, id := range ids {
		if s.applyOne(id) != nil {
			continue
		}
		s.reply()
	}
}

// spawn exercises go edges and a nested literal with its own edges.
func (s *service) spawn() {
	go func() {
		s.dispatch(nil)
	}()
}

// handoff takes reply as a method value: a ref edge, not a call.
func (s *service) handoff() func() {
	f := s.reply
	return f
}

// leaf has no outgoing edges at all.
func leaf() int { return 1 }

var _ = leaf
