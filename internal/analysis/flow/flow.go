// Package flow builds a whole-module call graph over the anz loader's
// typed ASTs, the substrate of the interprocedural analyzers (walorder,
// lockorder, atomicmix). Nodes are functions keyed by their
// types.Func.FullName — a string key on purpose: the loader type-checks
// each target package from source but resolves its imports from export
// data, so the same function is represented by distinct types.Object
// instances in different packages, while its full name is stable.
//
// Edges record static calls, deferred calls, `go` launches, and bare
// references (a method value like `s.finish` handed to someone who may
// call it later). Function literals become synthetic nodes keyed
// "parent$n" with a reference edge from their parent, so a closure's
// behaviour is summarized like any named function's.
//
// Per-function facts (//sqpr: annotations from doc comments, including
// interface method declarations) are collected at build time; ReachesAny
// propagates them bottom-up across packages: a function "may ack" when an
// //sqpr:ack-point function is reachable from it through any edge kind.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
)

// CallKind classifies one edge of the call graph.
type CallKind uint8

// Edge kinds.
const (
	// KindCall is a plain static call f() / x.M().
	KindCall CallKind = iota
	// KindDefer is a deferred call.
	KindDefer
	// KindGo is a goroutine launch.
	KindGo
	// KindRef is a function value taken without being called here (method
	// value, function passed as callback): whoever receives it may call it.
	KindRef
)

// String names the edge kind for diagnostics.
func (k CallKind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindDefer:
		return "defer"
	case KindGo:
		return "go"
	case KindRef:
		return "ref"
	}
	return fmt.Sprintf("CallKind(%d)", uint8(k))
}

// Site is one outgoing edge of a function: a call, defer, go or reference
// to Callee at Pos.
type Site struct {
	Callee string
	Pos    token.Pos
	Kind   CallKind
	// Call is the call expression for call/defer/go sites; nil for refs.
	Call *ast.CallExpr
}

// Func is one call-graph node. Exactly one of Decl and Lit is non-nil for
// functions with bodies; interface methods carry annotations but neither.
type Func struct {
	// Key is the stable cross-package identity (types.Func.FullName, with a
	// "$n" suffix appended per nested function literal).
	Key string
	// Decl is the declaration for named functions and methods.
	Decl *ast.FuncDecl
	// Lit is the literal for synthetic closure nodes.
	Lit *ast.FuncLit
	// Pkg is the package the body (or interface declaration) lives in.
	Pkg *anz.Package
	// Sites lists outgoing edges in source order.
	Sites []Site
	// Annots holds the //sqpr: directives of the doc comment (for interface
	// methods: the method field's doc).
	Annots []anno.Directive
}

// Body returns the function's block, nil for bodyless nodes (interface
// methods, external declarations).
func (f *Func) Body() *ast.BlockStmt {
	switch {
	case f.Decl != nil:
		return f.Decl.Body
	case f.Lit != nil:
		return f.Lit.Body
	}
	return nil
}

// Graph is the whole-module call graph.
type Graph struct {
	Fset  *token.FileSet
	funcs map[string]*Func
	order []string // insertion order: packages sorted, files and decls in source order
}

// Func returns the node with the given key, nil when unknown (calls into
// packages outside the loaded set resolve to keys without nodes).
func (g *Graph) Func(key string) *Func { return g.funcs[key] }

// Each visits every node in deterministic order.
func (g *Graph) Each(fn func(*Func)) {
	for _, k := range g.order {
		fn(g.funcs[k])
	}
}

// Annotated returns the keys of functions carrying the given //sqpr: verb,
// mapped to the directive's args.
func (g *Graph) Annotated(verb string) map[string]string {
	out := make(map[string]string)
	for _, k := range g.order {
		for _, d := range g.funcs[k].Annots {
			if d.Verb == verb {
				out[k] = d.Args
			}
		}
	}
	return out
}

// ReachesAny returns every function key from which at least one seed is
// reachable through edges of the given kinds (seeds themselves included).
// This is the bottom-up summary primitive: with seeds = ack-point
// functions, the result is the "may acknowledge" bit of every function in
// the module.
func (g *Graph) ReachesAny(seeds map[string]bool, kinds ...CallKind) map[string]bool {
	use := map[CallKind]bool{}
	if len(kinds) == 0 {
		use = map[CallKind]bool{KindCall: true, KindDefer: true, KindGo: true, KindRef: true}
	}
	for _, k := range kinds {
		use[k] = true
	}
	// Reverse adjacency restricted to the requested edge kinds.
	callers := make(map[string][]string)
	for _, key := range g.order {
		for _, s := range g.funcs[key].Sites {
			if use[s.Kind] {
				callers[s.Callee] = append(callers[s.Callee], key)
			}
		}
	}
	out := make(map[string]bool, len(seeds))
	var queue []string
	for s := range seeds {
		if !seeds[s] {
			continue
		}
		out[s] = true
		queue = append(queue, s)
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, caller := range callers[cur] {
			if !out[caller] {
				out[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return out
}

// Build constructs the call graph over the loaded packages. Packages must
// share one FileSet (anz.Load guarantees this).
func Build(pkgs []*anz.Package) *Graph {
	g := &Graph{funcs: make(map[string]*Func)}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					g.addDecl(pkg, d)
				case *ast.GenDecl:
					g.addInterfaceMethods(pkg, d)
				}
			}
		}
	}
	return g
}

func (g *Graph) add(f *Func) *Func {
	if prev, ok := g.funcs[f.Key]; ok {
		return prev
	}
	g.funcs[f.Key] = f
	g.order = append(g.order, f.Key)
	return f
}

func (g *Graph) addDecl(pkg *anz.Package, d *ast.FuncDecl) {
	obj, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
	if obj == nil {
		return
	}
	f := g.add(&Func{Key: obj.FullName(), Decl: d, Pkg: pkg, Annots: directives(d.Doc)})
	if d.Body != nil {
		b := &siteBuilder{g: g, pkg: pkg, f: f}
		b.stmt(d.Body, KindCall)
		sort.Slice(f.Sites, func(i, j int) bool { return f.Sites[i].Pos < f.Sites[j].Pos })
	}
}

// addInterfaceMethods registers annotated interface method declarations as
// bodyless nodes, so a contract like //sqpr:mutates can live on
// plan.QueryPlanner.Submit and apply to every dynamic call through the
// interface.
func (g *Graph) addInterfaceMethods(pkg *anz.Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, m := range it.Methods.List {
			ann := directives(m.Doc)
			if len(ann) == 0 || len(m.Names) == 0 {
				continue
			}
			for _, name := range m.Names {
				if obj, ok := pkg.TypesInfo.Defs[name].(*types.Func); ok {
					g.add(&Func{Key: obj.FullName(), Pkg: pkg, Annots: ann})
				}
			}
		}
	}
}

func directives(doc *ast.CommentGroup) []anno.Directive {
	if doc == nil {
		return nil
	}
	var out []anno.Directive
	for _, c := range doc.List {
		if d, ok := anno.Parse(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// siteBuilder walks one function body collecting outgoing edges; nested
// function literals become child nodes with their own builders.
type siteBuilder struct {
	g    *Graph
	pkg  *anz.Package
	f    *Func
	lits int
}

// stmt dispatches a node, tagging any directly-contained call with kind
// (defer/go statements re-tag their call).
func (b *siteBuilder) stmt(n ast.Node, kind CallKind) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.DeferStmt:
		b.call(x.Call, KindDefer)
		return
	case *ast.GoStmt:
		b.call(x.Call, KindGo)
		return
	case *ast.CallExpr:
		b.call(x, kind)
		return
	case *ast.FuncLit:
		b.lit(x, KindRef)
		return
	case *ast.SelectorExpr:
		b.ref(x.Sel, x)
		// Still visit the receiver expression: it may contain calls.
		b.stmt(x.X, kind)
		return
	case *ast.Ident:
		b.ref(x, x)
		return
	}
	// Generic traversal one level down; recursion re-dispatches.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			children = append(children, c)
		}
		return false
	})
	for _, c := range children {
		b.stmt(c, kind)
	}
}

// call records an edge for one call expression and walks its operands.
func (b *siteBuilder) call(call *ast.CallExpr, kind CallKind) {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		b.lit(lit, kind)
	} else if key, ok := ResolveCall(b.pkg.TypesInfo, call); ok {
		b.f.Sites = append(b.f.Sites, Site{Callee: key, Pos: call.Lparen, Kind: kind, Call: call})
	}
	// Receiver chains and arguments may contain further calls and refs.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		b.stmt(sel.X, KindCall)
	}
	for _, arg := range call.Args {
		b.stmt(arg, KindCall)
	}
}

// ref records a reference edge when an identifier in non-call position
// resolves to a function.
func (b *siteBuilder) ref(id *ast.Ident, at ast.Expr) {
	if fn, ok := b.pkg.TypesInfo.Uses[id].(*types.Func); ok {
		b.f.Sites = append(b.f.Sites, Site{Callee: fn.FullName(), Pos: at.Pos(), Kind: KindRef})
	}
}

// lit creates the child node for a function literal and records the edge
// from the parent (KindCall when immediately invoked, else defer/go/ref).
func (b *siteBuilder) lit(lit *ast.FuncLit, kind CallKind) {
	b.lits++
	child := b.g.add(&Func{
		Key: fmt.Sprintf("%s$%d", b.f.Key, b.lits),
		Lit: lit,
		Pkg: b.pkg,
	})
	b.f.Sites = append(b.f.Sites, Site{Callee: child.Key, Pos: lit.Pos(), Kind: kind})
	cb := &siteBuilder{g: b.g, pkg: b.pkg, f: child}
	cb.stmt(lit.Body, KindCall)
	sort.Slice(child.Sites, func(i, j int) bool { return child.Sites[i].Pos < child.Sites[j].Pos })
}

// ResolveCall resolves a call expression to its static callee's key.
// Dynamic calls — function-typed variables, fields, and results — do not
// resolve; calls through an interface resolve to the interface method's
// key, which is where contract annotations for dynamic dispatch live.
func ResolveCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn.FullName(), true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.FullName(), true
			}
			return "", false // func-typed field: dynamic
		}
		// Package-qualified call (fmt.Errorf).
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn.FullName(), true
		}
	}
	return "", false
}
