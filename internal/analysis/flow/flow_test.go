package flow_test

import (
	"go/ast"
	"sort"
	"testing"

	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/flow"
)

const fx = "sqpr/internal/analysis/flow/testdata/src/flowgraph"

func buildFixture(t *testing.T) *flow.Graph {
	t.Helper()
	pkgs, err := anz.Load(".", "./testdata/src/flowgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return flow.Build(pkgs)
}

// edges returns "callee kind" strings for one function, sorted.
func edges(t *testing.T, g *flow.Graph, key string) []string {
	t.Helper()
	f := g.Func(key)
	if f == nil {
		t.Fatalf("function %q not in graph", key)
	}
	var out []string
	for _, s := range f.Sites {
		out = append(out, s.Callee+" "+s.Kind.String())
	}
	sort.Strings(out)
	return out
}

func TestBuildEdges(t *testing.T) {
	g := buildFixture(t)

	cases := map[string][]string{
		"(*" + fx + ".service).applyOne": {
			"(" + fx + ".Planner).Submit call",
			"(*" + fx + ".service).journal call",
			"(*sync.Mutex).Lock call",
			"(*sync.Mutex).Unlock defer",
		},
		"(*" + fx + ".service).dispatch": {
			"(*" + fx + ".service).applyOne call",
			"(*" + fx + ".service).reply call",
		},
		"(*" + fx + ".service).spawn": {
			"(*" + fx + ".service).spawn$1 go",
		},
		"(*" + fx + ".service).spawn$1": {
			"(*" + fx + ".service).dispatch call",
		},
		"(*" + fx + ".service).handoff": {
			"(*" + fx + ".service).reply ref",
		},
		fx + ".leaf": nil,
	}
	for key, want := range cases {
		got := edges(t, g, key)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Errorf("%s edges:\n got %q\nwant %q", key, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s edges:\n got %q\nwant %q", key, got, want)
				break
			}
		}
	}
}

func TestInterfaceMethodAnnotation(t *testing.T) {
	g := buildFixture(t)
	mut := g.Annotated("mutates")
	if _, ok := mut["("+fx+".Planner).Submit"]; !ok {
		t.Errorf("interface method annotation missing; annotated(mutates) = %v", mut)
	}
	if f := g.Func("(" + fx + ".Planner).Submit"); f == nil || f.Body() != nil {
		t.Errorf("interface method should be a bodyless node, got %+v", f)
	}
}

func TestReachesAny(t *testing.T) {
	g := buildFixture(t)

	acks := g.ReachesAny(seeds(g.Annotated("ack-point")))
	for _, key := range []string{
		"(*" + fx + ".service).reply",
		"(*" + fx + ".service).dispatch",
		"(*" + fx + ".service).spawn$1",
		"(*" + fx + ".service).spawn",
		"(*" + fx + ".service).handoff",
	} {
		if !acks[key] {
			t.Errorf("mayAck should include %s; got %v", key, sortedKeys(acks))
		}
	}
	for _, key := range []string{
		"(*" + fx + ".service).applyOne",
		fx + ".leaf",
	} {
		if acks[key] {
			t.Errorf("mayAck wrongly includes %s", key)
		}
	}

	// Restricting edge kinds to plain calls drops the go-launch and
	// method-value paths.
	callOnly := g.ReachesAny(seeds(g.Annotated("ack-point")), flow.KindCall)
	if callOnly["(*"+fx+".service).spawn"] || callOnly["(*"+fx+".service).handoff"] {
		t.Errorf("call-only reachability leaked through go/ref edges: %v", sortedKeys(callOnly))
	}
	if !callOnly["(*"+fx+".service).dispatch"] {
		t.Error("call-only reachability lost the direct caller")
	}
}

func TestWalkBodyBranches(t *testing.T) {
	g := buildFixture(t)
	f := g.Func("(*" + fx + ".service).dispatch")
	if f == nil || f.Body() == nil {
		t.Fatal("dispatch body missing")
	}
	// Count call expressions seen, twice per loop pass: the range body is
	// walked twice, so both calls appear twice.
	seen := map[string]int{}
	flow.WalkBody(f.Body(), struct{}{}, flow.Effects[struct{}]{
		Clone: func(s struct{}) struct{} { return s },
		Merge: func(a, b struct{}) struct{} { return a },
		Call: func(s struct{}, call *ast.CallExpr, kind flow.CallKind) struct{} {
			if key, ok := flow.ResolveCall(f.Pkg.TypesInfo, call); ok {
				seen[key]++
			}
			return s
		},
	})
	for _, key := range []string{"(*" + fx + ".service).applyOne", "(*" + fx + ".service).reply"} {
		if seen[key] != 2 {
			t.Errorf("loop body should be walked twice; saw %s %d times (%v)", key, seen[key], seen)
		}
	}
}

func seeds(m map[string]string) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
