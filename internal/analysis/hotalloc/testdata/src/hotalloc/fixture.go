// Package fixture is the hotalloc corpus: annotated hot functions with
// allocation sites, suppressions and clean steady-state code.
package fixture

import (
	"fmt"

	"sqpr/internal/invariant"
)

type pool struct {
	scratch []float64
	journal []int
	seen    map[int]bool
	total   float64
}

// allocEverywhere trips every rule.
//
//sqpr:hotpath
func (p *pool) allocEverywhere(n int, name string) string {
	xs := make([]float64, n)         // want "calls make"
	p.journal = append(p.journal, n) // want "appends"
	m := map[int]bool{1: true}       // want "map literal"
	s := []int{1, 2, 3}              // want "slice literal"
	q := &pool{}                     // want "address of a composite literal"
	f := func() {}                   // want "closure literal"
	go f()                           // want "starts a goroutine"
	b := []byte(name)                // want "converts between string and slice"
	msg := "hot " + name             // want "concatenates strings"
	fmt.Println(xs, m, s, q, b)      // want `calls fmt\.Println`
	y := new(pool)                   // want "calls new"
	_ = y
	return msg
}

// steadyState is the clean case: index arithmetic into pooled storage,
// suppressed cold edges, and an invariant block that may allocate because
// release builds delete it.
//
//sqpr:hotpath
func (p *pool) steadyState(i int, v float64) float64 {
	if cap(p.scratch) == 0 {
		p.scratch = make([]float64, 64) //sqpr:coldpath first call grows the pool
	}
	p.scratch[i%64] = v
	//sqpr:amortized journal keeps its capacity across calls
	p.journal = append(p.journal, i)
	p.total += v
	if invariant.Enabled && p.total < 0 {
		invariant.Failf("total went negative: %v (journal %v)", p.total, p.journal)
	}
	return p.scratch[i%64]
}

// unannotated may allocate freely.
func unannotated(n int) []int { return make([]int, n) }
