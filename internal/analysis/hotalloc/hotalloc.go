// Package hotalloc turns the "0 allocs/op" benchmark contract into a
// static check: a function annotated
//
//	//sqpr:hotpath
//
// in its doc comment may not contain allocation sites. Flagged forms:
// make/new calls, append, map and slice composite literals, &T{...}
// literals, closures (func literals capture and escape), go statements,
// non-constant string concatenation, string<->[]byte/[]rune conversions,
// and fmt.* calls.
//
// Escape valves, because hot functions legitimately have cold edges:
//
//   - statements inside `if invariant.Enabled { ... }` blocks are skipped
//     (checked-build assertions only exist under -tags sqprdebug);
//   - //sqpr:coldpath on the line (or the line above) marks a branch that
//     runs off the steady state — first-call growth, error reporting;
//   - //sqpr:amortized marks an append into a pooled buffer whose capacity
//     is retained across calls, so growth is amortized away in steady
//     state (the journal/scratch pattern).
//
// The check is intentionally per-body: callees are not followed. The
// benchmark (BenchmarkLPResolve) remains the ground truth for the whole
// call tree; hotalloc catches the regressions a reviewer would otherwise
// only see as a benchmark diff.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
)

// Analyzer is the hotalloc check.
var Analyzer = &anz.Analyzer{
	Name: "hotalloc",
	Doc:  "check that //sqpr:hotpath functions contain no allocation sites",
	Run:  run,
}

func run(pass *anz.Pass) error {
	lines := anno.CollectLines(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := anno.FromGroup(fd.Doc, "hotpath"); !ok {
				continue
			}
			check(pass, lines, fd)
		}
	}
	return nil
}

func check(pass *anz.Pass, lines *anno.Lines, fd *ast.FuncDecl) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			// `if invariant.Enabled && ... { }` is compiled out of release
			// builds; its body is allowed to allocate for its diagnostics.
			if mentionsInvariantEnabled(x.Cond) {
				if x.Init != nil {
					ast.Inspect(x.Init, visit)
				}
				return false
			}
		case *ast.FuncLit:
			if !suppressed(pass, lines, x.Pos(), "coldpath") {
				pass.Reportf(x.Pos(), "hotpath %s contains a closure literal (captures escape to the heap)", fd.Name.Name)
			}
			return false
		case *ast.GoStmt:
			if !suppressed(pass, lines, x.Pos(), "coldpath") {
				pass.Reportf(x.Pos(), "hotpath %s starts a goroutine", fd.Name.Name)
			}
			return false
		case *ast.CallExpr:
			checkCall(pass, lines, fd, x)
		case *ast.CompositeLit:
			checkComposite(pass, lines, fd, x, false)
			return false // inner literals are part of the same allocation
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					checkComposite(pass, lines, fd, cl, true)
					return false
				}
			}
		case *ast.BinaryExpr:
			checkConcat(pass, lines, fd, x)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

func checkCall(pass *anz.Pass, lines *anno.Lines, fd *ast.FuncDecl, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch {
		case isBuiltin(pass, fun, "make"):
			report(pass, lines, call.Pos(), "coldpath", "hotpath %s calls make (allocates; move to setup or annotate //sqpr:coldpath)", fd.Name.Name)
		case isBuiltin(pass, fun, "new"):
			report(pass, lines, call.Pos(), "coldpath", "hotpath %s calls new (allocates)", fd.Name.Name)
		case isBuiltin(pass, fun, "append"):
			if !suppressed(pass, lines, call.Pos(), "amortized") {
				report(pass, lines, call.Pos(), "coldpath", "hotpath %s appends (may grow; annotate //sqpr:amortized for pooled buffers or //sqpr:coldpath)", fd.Name.Name)
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
				report(pass, lines, call.Pos(), "coldpath", "hotpath %s calls fmt.%s (allocates)", fd.Name.Name, fun.Sel.Name)
			}
		}
	}
	// Conversions to []byte/[]rune/string allocate a copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if argTV, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
			from := argTV.Type.Underlying()
			if isStringSliceConv(from, to) && argTV.Value == nil {
				report(pass, lines, call.Pos(), "coldpath", "hotpath %s converts between string and slice (copies)", fd.Name.Name)
			}
		}
	}
}

func checkComposite(pass *anz.Pass, lines *anno.Lines, fd *ast.FuncDecl, cl *ast.CompositeLit, addressed bool) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		report(pass, lines, cl.Pos(), "coldpath", "hotpath %s builds a map literal (allocates)", fd.Name.Name)
	case *types.Slice:
		report(pass, lines, cl.Pos(), "coldpath", "hotpath %s builds a slice literal (allocates)", fd.Name.Name)
	default:
		if addressed {
			report(pass, lines, cl.Pos(), "coldpath", "hotpath %s takes the address of a composite literal (escapes)", fd.Name.Name)
		}
	}
}

func checkConcat(pass *anz.Pass, lines *anno.Lines, fd *ast.FuncDecl, be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		report(pass, lines, be.Pos(), "coldpath", "hotpath %s concatenates strings (allocates)", fd.Name.Name)
	}
}

func report(pass *anz.Pass, lines *anno.Lines, pos token.Pos, suppressVerb, format string, args ...any) {
	if suppressed(pass, lines, pos, suppressVerb) {
		return
	}
	pass.Reportf(pos, format, args...)
}

func suppressed(pass *anz.Pass, lines *anno.Lines, pos token.Pos, verb string) bool {
	return lines.At(pass.Fset, pos, verb)
}

func isBuiltin(pass *anz.Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func mentionsInvariantEnabled(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Enabled" {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "invariant" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isStringSliceConv reports a conversion between string and []byte/[]rune
// in either direction.
func isStringSliceConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
