package hotalloc_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	atest.Run(t, ".", hotalloc.Analyzer, "./testdata/src/hotalloc")
}
