// Package atomicmix reports mixed atomic/plain access to fields. A field
// that any function in the module updates through sync/atomic must never
// be read or written plainly anywhere else: the plain access races with
// the atomic ones, and the mix usually appears when a field's discipline
// changes in one place but not the others (the historical wedge-flag bug
// this module fixed by mirroring state into an atomic.Pointer).
//
// Two disciplines are recognized:
//
//   - fields passed by address to sync/atomic functions anywhere in the
//     module: every other access must also be atomic. Exemptions: the
//     address-of operand inside an atomic call itself, initialization of a
//     struct created as a local composite literal (the value is not yet
//     shared), and statements waived with //sqpr:atomic-ok <why>.
//
//   - fields of sync/atomic box types (atomic.Bool, atomic.Pointer[T], …):
//     using the field as a method-call receiver or taking its address is
//     the point of the type; copying the box by value smuggles a snapshot
//     out of the atomic domain and is reported.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
)

// Analyzer is the module-level atomicmix pass.
var Analyzer = &anz.ModuleAnalyzer{
	Name: "atomicmix",
	Doc:  "report plain accesses to fields that are updated atomically elsewhere in the module",
	Run:  run,
}

func run(pass *anz.ModulePass) error {
	// Pass A: every field key passed by address to a sync/atomic function,
	// across the whole module — the discipline is global even though each
	// access is local.
	atomicFields := make(map[string]bool)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					if key, ok := addrOfField(pkg, arg); ok {
						atomicFields[key] = true
					}
				}
				return true
			})
		}
	}

	// Pass B: flag plain accesses.
	for _, pkg := range pass.Pkgs {
		lines := anno.CollectLines(pkg.Fset, pkg.Syntax)
		for _, file := range pkg.Syntax {
			checkFile(pass, pkg, lines, file, atomicFields)
		}
	}
	return nil
}

func checkFile(pass *anz.ModulePass, pkg *anz.Package, lines *anno.Lines, file *ast.File, atomicFields map[string]bool) {
	fresh := compositeLocals(pkg, file)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		defer func() { stack = append(stack, n) }()
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, fld, ok := fieldOf(pkg, sel)
		if !ok {
			return true
		}
		parent := parentOf(stack)
		if atomicFields[key] {
			switch {
			case isAtomicOperand(pkg, stack):
				// The sanctioned access: &x.f inside a sync/atomic call.
			case isCompositeLocalBase(pkg, sel.X, fresh):
				// Initialization before the value escapes.
			case lines.At(pkg.Fset, sel.Pos(), "atomic-ok"):
			default:
				pass.ReportContext(sel.Sel.Pos(), "field "+key,
					"plain access to %s, which is updated with sync/atomic elsewhere; use the atomic API or move the access before publication", sel.Sel.Name)
			}
			return true
		}
		if isAtomicBoxType(fld.Type()) && !isBoxUse(parent) {
			if !lines.At(pkg.Fset, sel.Pos(), "atomic-ok") {
				pass.ReportContext(sel.Sel.Pos(), "field "+key,
					"%s copies an atomic box (%s) by value; the copy is a racy snapshot detached from the original", sel.Sel.Name, fld.Type())
			}
		}
		return true
	})
}

// isBoxUse reports whether the parent node uses an atomic box the
// intended way: as a method-call receiver (s.flag.Store) or through its
// address (&s.flag).
func isBoxUse(parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// parentOf returns the node enclosing the one currently being visited.
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// isAtomicOperand reports whether the visited selector sits as &x.f
// directly inside a sync/atomic call: stack tail … CallExpr, UnaryExpr(&).
func isAtomicOperand(pkg *anz.Package, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	u, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && isAtomicCall(pkg, call)
}

// isAtomicCall reports whether the call resolves to a sync/atomic package
// function (renamed imports included).
func isAtomicCall(pkg *anz.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addrOfField returns the field key when arg has the shape &x.f with f a
// struct field of a named type.
func addrOfField(pkg *anz.Package, arg ast.Expr) (string, bool) {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return "", false
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	key, _, ok := fieldOf(pkg, sel)
	return key, ok
}

// fieldOf resolves a selector to a struct field of a named type and
// returns its module-wide key "pkg/path.T.field".
func fieldOf(pkg *anz.Package, sel *ast.SelectorExpr) (string, *types.Var, bool) {
	s, ok := pkg.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return "", nil, false
	}
	recv := s.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", nil, false
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + v.Name(), v, true
}

// isAtomicBoxType reports whether t is one of the sync/atomic value types.
func isAtomicBoxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// compositeLocals collects local variables bound to composite literals
// (`s := T{…}` / `s := &T{…}`): accesses through them happen before the
// value is shared, so plain initialization writes are fine.
func compositeLocals(pkg *anz.Package, file *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, isAddr := rhs.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
				rhs = ast.Unparen(u.X)
			}
			if _, isLit := rhs.(*ast.CompositeLit); !isLit {
				continue
			}
			if obj := pkg.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isCompositeLocalBase reports whether the selector's base resolves to a
// composite-literal local from this file.
func isCompositeLocalBase(pkg *anz.Package, base ast.Expr, fresh map[types.Object]bool) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	return fresh[pkg.TypesInfo.Uses[id]]
}
