package atomicmix_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	atest.RunModule(t, ".", atomicmix.Analyzer,
		"./testdata/src/atomica", "./testdata/src/atomicmix")
}
