// Package atomica establishes the atomic discipline for Counter.N: the
// importing fixture package violates it, proving the field facts travel
// across package boundaries.
package atomica

import "sync/atomic"

type Counter struct {
	N    int64
	Name string
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.N, 1)
}

func (c *Counter) Get() int64 {
	return atomic.LoadInt64(&c.N)
}
