// Package atomicmix fixtures: plain access to atomically-updated fields,
// in-package and across packages, plus atomic box-type copies.
package atomicmix

import (
	"sync/atomic"

	"sqpr/internal/analysis/atomicmix/testdata/src/atomica"
)

type gauge struct {
	hits  int64
	flag  atomic.Bool
	label string
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.hits, 1) // sanctioned operand position
}

func (g *gauge) badRead() int64 {
	return g.hits // want "plain access to hits"
}

func (g *gauge) badWrite() {
	g.hits = 0 // want "plain access to hits"
}

// newGauge initializes through a composite-literal local before the value
// escapes: exempt.
func newGauge() *gauge {
	g := &gauge{hits: 0}
	g.hits = 1
	return g
}

// waived documents a deliberate pre-publication reset.
func reset(g *gauge) {
	//sqpr:atomic-ok caller guarantees quiescence during reset
	g.hits = 0
}

// plainField is untouched by sync/atomic: plain access is fine.
func name(g *gauge) string {
	return g.label
}

// crossPackage violates atomica's discipline from outside the package.
func crossPackage(c *atomica.Counter) int64 {
	return c.N // want "plain access to N"
}

// boxUse is the intended use of an atomic box: methods and addresses.
func boxUse(g *gauge) bool {
	g.flag.Store(true)
	p := &g.flag
	return p.Load()
}

// boxCopy smuggles a snapshot out of the atomic domain.
func boxCopy(g *gauge) atomic.Bool {
	return g.flag // want "copies an atomic box"
}
