// Package lockguard enforces the //sqpr:guarded-by mutex annotations: a
// struct field annotated
//
//	//sqpr:guarded-by mu
//
// may only be read or written in functions that demonstrably hold the
// mutex. The check is a deliberate lexical approximation — sound enough to
// catch the real regression (touching shared planner/service/search state
// without locking) without whole-program lock-set analysis:
//
//   - an access is accepted when, earlier in the same innermost function
//     literal or declaration, the same base expression locks the mutex
//     (base.mu.Lock() or base.mu.RLock(); writes require the exclusive
//     Lock); inside the success branch of `if base.mu.TryLock()` (TryRLock
//     for reads); or after a pending `defer base.mu.Unlock()` — direct or
//     bound as a method value — which proves a caller-acquired lock is
//     held;
//   - a function annotated //sqpr:locked mu declares its caller holds mu
//     (used for helpers called under the lock and for single-threaded
//     phases such as the branch-and-bound root);
//   - values constructed locally from a composite literal are exempt until
//     they escape (constructors initialise fields before the value is
//     shared, and a search owned by the creating function needs no lock
//     after its workers have been joined);
//   - a statement-level //sqpr:locked mu comment suppresses one access
//     inside a closure whose lock is managed outside the literal.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
)

// Analyzer is the lockguard check.
var Analyzer = &anz.Analyzer{
	Name: "lockguard",
	Doc:  "check that //sqpr:guarded-by fields are only accessed under their mutex",
	Run:  run,
}

func run(pass *anz.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	lines := anno.CollectLines(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			heldByDecl := lockedMutexes(fd.Doc)
			checkFunc(pass, guarded, lines, fd.Body, fd.Name.Name, heldByDecl)
		}
	}
	return nil
}

// collectGuarded maps each annotated field object to its mutex field name,
// validating that the named mutex exists in the same struct.
func collectGuarded(pass *anz.Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				d, ok := anno.FromGroup(f.Doc, "guarded-by")
				if !ok {
					d, ok = anno.FromGroup(f.Comment, "guarded-by")
				}
				if !ok {
					continue
				}
				if d.Args == "" || !fieldNames[d.Args] {
					pass.Reportf(f.Pos(), "guarded-by names %q, which is not a field of this struct", d.Args)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = d.Args
					}
				}
			}
			return true
		})
	}
	return out
}

// lockedMutexes parses //sqpr:locked annotations from a doc comment.
func lockedMutexes(doc *ast.CommentGroup) map[string]bool {
	out := make(map[string]bool)
	if doc == nil {
		return out
	}
	for _, c := range doc.List {
		if d, ok := anno.Parse(c); ok && d.Verb == "locked" {
			if name := firstField(d.Args); name != "" {
				out[name] = true
			}
		}
	}
	return out
}

// funcScope is the per-function-literal analysis state.
type funcScope struct {
	name string
	body *ast.BlockStmt
	// held lists mutex names declared held for the whole function.
	held map[string]bool
	// locals maps objects assigned from composite literals in this
	// function (the constructor exemption).
	locals map[types.Object]bool
}

func checkFunc(pass *anz.Pass, guarded map[types.Object]string, lines *anno.Lines, body *ast.BlockStmt, name string, held map[string]bool) {
	sc := &funcScope{name: name, body: body, held: held, locals: collectCompositeLocals(pass, body)}
	walk(pass, guarded, lines, sc, body)
}

// walk visits the function body, recursing into nested literals with a
// fresh scope (a closure may run on another goroutine, so locks held by
// the enclosing function do not count inside it).
func walk(pass *anz.Pass, guarded map[types.Object]string, lines *anno.Lines, sc *funcScope, n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x != n {
				inner := &funcScope{
					name:   sc.name + ".func",
					body:   x.Body,
					held:   map[string]bool{},
					locals: collectCompositeLocals(pass, x.Body),
				}
				walk(pass, guarded, lines, inner, x.Body)
				return false
			}
		case *ast.SelectorExpr:
			checkAccess(pass, guarded, lines, sc, x)
		}
		return true
	})
}

func checkAccess(pass *anz.Pass, guarded map[types.Object]string, lines *anno.Lines, sc *funcScope, sel *ast.SelectorExpr) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	mu, ok := guarded[selection.Obj()]
	if !ok {
		return
	}
	if sc.held[mu] {
		return
	}
	for _, arg := range lines.ArgsAt(pass.Fset, sel.Pos(), "locked") {
		if firstField(arg) == mu {
			return
		}
	}
	if sc.locals[rootObject(pass, sel.X)] {
		return
	}
	base := types.ExprString(sel.X)
	write := isWrite(sc.body, sel)
	if holdsBefore(pass, sc.body, base, mu, sel.Pos(), write) {
		return
	}
	if inTryLockBranch(sc.body, base, mu, sel.Pos(), write) {
		return
	}
	if deferredUnlockBefore(pass, sc.body, base, mu, sel.Pos(), write) {
		return
	}
	need := "Lock"
	if !write {
		need = "Lock/RLock"
	}
	pass.Reportf(sel.Pos(), "%s.%s is guarded by %q but %s does not %s %s.%s first (annotate //sqpr:locked %s if the caller holds it)",
		base, selection.Obj().Name(), mu, sc.name, need, base, mu, mu)
}

// holdsBefore reports whether base.mu.Lock() (or RLock for reads) is
// called in this function strictly before pos — the lexical
// lock-then-touch pattern every guarded access in this codebase follows.
func holdsBefore(pass *anz.Pass, body *ast.BlockStmt, base, mu string, pos token.Pos, write bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.End() > pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && (write || sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mu {
			return true
		}
		if types.ExprString(muSel.X) == base {
			found = true
			return false
		}
		return true
	})
	return found
}

// inTryLockBranch reports whether pos sits inside the success branch of
// `if base.mu.TryLock() { … }` (TryRLock for reads): the condition being
// true is exactly the lock being held for that block.
func inTryLockBranch(body *ast.BlockStmt, base, mu string, pos token.Pos, write bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(ifst.Cond).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "TryLock" && (write || sel.Sel.Name != "TryRLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mu || types.ExprString(muSel.X) != base {
			return true
		}
		if ifst.Body.Pos() <= pos && pos < ifst.Body.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// deferredUnlockBefore reports whether a `defer base.mu.Unlock()` (RUnlock
// for reads) precedes pos — direct, or through a method value:
//
//	u := base.mu.Unlock
//	defer u()
//
// A pending unlock is proof the lock is currently held even when the
// acquisition happened in the caller.
func deferredUnlockBefore(pass *anz.Pass, body *ast.BlockStmt, base, mu string, pos token.Pos, write bool) bool {
	// Method-value unlocks bound before pos, by object.
	unlockValues := make(map[types.Object]bool)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.End() > pos {
				return true
			}
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				if !isUnlockSelector(rhs, base, mu, write) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						unlockValues[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						unlockValues[obj] = true
					}
				}
			}
		case *ast.DeferStmt:
			if x.End() > pos {
				return true
			}
			if isUnlockSelector(x.Call.Fun, base, mu, write) {
				found = true
				return false
			}
			if id, ok := ast.Unparen(x.Call.Fun).(*ast.Ident); ok && unlockValues[pass.TypesInfo.Uses[id]] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isUnlockSelector matches base.mu.Unlock (or RUnlock for reads) used as a
// bare method expression — the callee of a defer or the RHS of a
// method-value binding.
func isUnlockSelector(e ast.Expr, base, mu string, write bool) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Unlock" && (write || sel.Sel.Name != "RUnlock") {
		return false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	return ok && muSel.Sel.Name == mu && types.ExprString(muSel.X) == base
}

// isWrite reports whether sel is the target of an assignment or inc/dec
// somewhere in the body (approximated by matching the node identity on
// LHS positions).
func isWrite(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if lhs == ast.Expr(sel) {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if x.X == ast.Expr(sel) {
				write = true
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" && x.X == ast.Expr(sel) {
				write = true
			}
		}
		return !write
	})
	return write
}

// collectCompositeLocals finds variables bound to composite literals in
// this function: `s := &search{...}` / `var c counter = counter{...}`.
func collectCompositeLocals(pass *anz.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCompositeExpr(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isCompositeExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := x.X.(*ast.CompositeLit)
		return ok && x.Op.String() == "&"
	}
	return false
}

// firstField returns the first whitespace-separated token of an annotation
// argument: `//sqpr:locked mu — caller holds it` names mutex "mu", the rest
// is free-form rationale.
func firstField(s string) string {
	fs := strings.Fields(s)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// rootObject resolves the leftmost identifier of a selector chain.
func rootObject(pass *anz.Pass, e ast.Expr) types.Object {
	//sqpr:noctx bounded by the finite selector chain
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
