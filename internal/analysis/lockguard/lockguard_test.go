package lockguard_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	atest.Run(t, ".", lockguard.Analyzer, "./testdata/src/lockguard")
}
