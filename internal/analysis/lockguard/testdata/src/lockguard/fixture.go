// Package fixture is the lockguard corpus: guarded-field accesses with and
// without the mutex held.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int //sqpr:guarded-by mu
	//sqpr:guarded-by mu
	history []int
	free    int // unguarded on purpose
}

type badAnno struct {
	//sqpr:guarded-by nosuch
	x int // want "not a field of this struct"
}

func (c *counter) badRead() int {
	return c.n // want `guarded by "mu"`
}

func (c *counter) badWrite() {
	c.mu.RLock() // read lock does not license a write
	defer c.mu.RUnlock()
	c.n++ // want `guarded by "mu"`
}

func (c *counter) goodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) goodWrite(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = v
	c.history = append(c.history, v)
}

// lockedHelper is called with mu already held.
//
//sqpr:locked mu
func (c *counter) lockedHelper() int { return c.n }

func (c *counter) unguardedOK() int { return c.free }

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // constructor exemption: local composite literal
	return c
}

func (c *counter) closureBad() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `guarded by "mu"`
	}
}

func (c *counter) closureAnnotated(done func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	func() {
		c.n++ //sqpr:locked mu
		done()
	}()
}

// tryGood touches the field only inside the TryLock success branch.
func (c *counter) tryGood() {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
}

// tryRGood reads under a successful TryRLock.
func (c *counter) tryRGood() int {
	if c.mu.TryRLock() {
		defer c.mu.RUnlock()
		return c.n
	}
	return 0
}

// tryBadOutside accesses the field after the conditional block, where the
// lock may never have been taken.
func (c *counter) tryBadOutside() int {
	if c.mu.TryLock() {
		c.mu.Unlock()
	}
	return c.n // want `guarded by "mu"`
}

// tryRBadWrite writes under a read-try: still a race.
func (c *counter) tryRBadWrite() {
	if c.mu.TryRLock() {
		c.n++ // want `guarded by "mu"`
		c.mu.RUnlock()
	}
}

// deferredDirect proves holding through the pending unlock the caller's
// handed-over lock requires.
func (c *counter) deferredDirect() int {
	defer c.mu.RUnlock()
	return c.n
}

// deferredValue does the same through a method value.
func (c *counter) deferredValue() {
	u := c.mu.Unlock
	defer u()
	c.n++
}

type outer struct{ c *counter }

func (o *outer) chainGood() int {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	return o.c.n
}

func (o *outer) chainBad() int {
	return o.c.n // want `guarded by "mu"`
}
