package anz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	IllTyped  bool
	Errors    []error
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load resolves patterns (as `go list` would, e.g. "./..." or an explicit
// testdata directory) relative to dir and returns the matched packages,
// parsed with comments and type-checked. Dependencies are not re-analyzed:
// their types come from the compiler's export data, which `go list
// -export` (re)builds as needed, so Load works offline and needs no
// external analysis libraries.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		// `go list ""` silently resolves to ".", which is never what a
		// caller building patterns programmatically meant.
		if strings.TrimSpace(p) == "" {
			return nil, fmt.Errorf("anz: empty package pattern in %q", patterns)
		}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data of every dependency (and target), keyed by import path,
	// feeds the gc importer below.
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	// A pattern that resolves to nothing is a caller mistake (a typo'd
	// path, a testdata dir that moved): failing here with the patterns in
	// hand beats returning an empty slice that downstream code treats as
	// "module is clean".
	if len(targets) == 0 {
		return nil, fmt.Errorf("anz: patterns %v matched no packages under %s", patterns, dir)
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("anz: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		// `go list -e` parks unresolvable imports in DepsErrors rather than
		// Error; without this check the target would type-check against
		// missing export data and surface as a confusing "no export data"
		// type error instead of the underlying resolution failure.
		if len(lp.DepsErrors) > 0 {
			return nil, fmt.Errorf("anz: go list %s: dependency error: %s", lp.ImportPath, lp.DepsErrors[0].Err)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("anz: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	//sqpr:noctx terminated by io.EOF from the buffered go list output
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("anz: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// exportImporter resolves import paths through the export-data map built
// from `go list -export -deps`, caching loaded packages. "unsafe" is
// special-cased: it has no export file.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("anz: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		PkgPath: lp.ImportPath,
		Dir:     lp.Dir,
		Fset:    fset,
		Syntax:  files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.IllTyped = true
			pkg.Errors = append(pkg.Errors, err)
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, pkg.TypesInfo)
	pkg.Types = tpkg
	if err != nil && !pkg.IllTyped {
		pkg.IllTyped = true
		pkg.Errors = append(pkg.Errors, err)
	}
	return pkg, nil
}
