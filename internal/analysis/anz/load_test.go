package anz_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqpr/internal/analysis/anz"
)

// TestLoadTypechecksRealPackage exercises the whole loader path — go list
// -export, export-data importing, source type-checking — on a real module
// package with both stdlib and intra-module imports.
func TestLoadTypechecksRealPackage(t *testing.T) {
	pkgs, err := anz.Load(".", "sqpr/internal/plan")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.IllTyped {
		t.Fatalf("plan ill-typed: %v", p.Errors)
	}
	if p.Types.Name() != "plan" {
		t.Fatalf("package name = %q", p.Types.Name())
	}
	obj := p.Types.Scope().Lookup("ErrUnknownStream")
	if obj == nil {
		t.Fatal("ErrUnknownStream not found in type-checked scope")
	}
	if got := obj.Type().String(); got != "error" {
		t.Fatalf("ErrUnknownStream type = %s, want error", got)
	}
	if len(p.TypesInfo.Uses) == 0 || len(p.Syntax) == 0 {
		t.Fatal("missing syntax or uses info")
	}
}

// tempModule materializes a throwaway module so failure paths can be
// exercised without polluting the real tree.
func tempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module anzbroken\n\ngo 1.24\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadSyntaxError checks a package that does not parse yields a
// diagnosable error naming the file, not a nil-map panic downstream.
func TestLoadSyntaxError(t *testing.T) {
	dir := tempModule(t, map[string]string{
		"bad.go": "package broken\n\nfunc oops( {\n",
	})
	_, err := anz.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a syntax-error package")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the broken file: %v", err)
	}
}

// TestLoadMissingExportData checks an unresolvable import (no module
// provides it, so no export data can exist) is reported from Load itself
// rather than surfacing later as an ill-typed package.
func TestLoadMissingExportData(t *testing.T) {
	dir := tempModule(t, map[string]string{
		"dep.go": "package broken\n\nimport _ \"nonexistent.invalid/nowhere\"\n",
	})
	_, err := anz.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded with an unresolvable import")
	}
	if !strings.Contains(err.Error(), "nonexistent.invalid/nowhere") && !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not identify the unresolvable dependency: %v", err)
	}
}

// TestLoadNoMatch checks a pattern matching nothing returns an error that
// echoes the pattern instead of an empty package list a caller would
// mistake for a clean module.
func TestLoadNoMatch(t *testing.T) {
	dir := tempModule(t, map[string]string{
		"ok.go": "package broken\n",
	})
	// A directory that exists but holds no Go packages: `go list` warns and
	// exits zero, so only Load's own no-match check catches it.
	if err := os.Mkdir(filepath.Join(dir, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, patterns := range [][]string{{"./empty/..."}, {""}} {
		_, err := anz.Load(dir, patterns...)
		if err == nil {
			t.Errorf("Load(%q) succeeded, want no-match error", patterns)
			continue
		}
		if !strings.Contains(err.Error(), "matched no packages") && !strings.Contains(err.Error(), "empty package pattern") {
			t.Errorf("Load(%q): undiagnosable error: %v", patterns, err)
		}
	}
}
