package anz_test

import (
	"testing"

	"sqpr/internal/analysis/anz"
)

// TestLoadTypechecksRealPackage exercises the whole loader path — go list
// -export, export-data importing, source type-checking — on a real module
// package with both stdlib and intra-module imports.
func TestLoadTypechecksRealPackage(t *testing.T) {
	pkgs, err := anz.Load(".", "sqpr/internal/plan")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.IllTyped {
		t.Fatalf("plan ill-typed: %v", p.Errors)
	}
	if p.Types.Name() != "plan" {
		t.Fatalf("package name = %q", p.Types.Name())
	}
	obj := p.Types.Scope().Lookup("ErrUnknownStream")
	if obj == nil {
		t.Fatal("ErrUnknownStream not found in type-checked scope")
	}
	if got := obj.Type().String(); got != "error" {
		t.Fatalf("ErrUnknownStream type = %s, want error", got)
	}
	if len(p.TypesInfo.Uses) == 0 || len(p.Syntax) == 0 {
		t.Fatal("missing syntax or uses info")
	}
}
