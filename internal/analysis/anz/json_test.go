package anz_test

import (
	"go/token"
	"reflect"
	"strings"
	"testing"

	"sqpr/internal/analysis/anz"
)

// goldenJSON is the frozen -json schema: CI archives vet.json per commit
// and diffs findings across runs, so any change to field names, nesting or
// the version header must be deliberate and must fail this test first.
const goldenJSON = `{
  "version": 1,
  "findings": [
    {
      "analyzer": "walorder",
      "file": "internal/plan/service.go",
      "line": 12,
      "col": 3,
      "message": "acknowledges before journaling",
      "context": "ack-point (*Service).reply"
    },
    {
      "analyzer": "lockorder",
      "file": "internal/plan/service.go",
      "line": 40,
      "col": 7,
      "message": "lock cycle"
    }
  ]
}
`

func sampleFindings() []anz.Finding {
	return []anz.Finding{
		{
			Analyzer: "walorder",
			Pos:      token.Position{Filename: "internal/plan/service.go", Line: 12, Column: 3},
			Message:  "acknowledges before journaling",
			Context:  "ack-point (*Service).reply",
		},
		{
			Analyzer: "lockorder",
			Pos:      token.Position{Filename: "internal/plan/service.go", Line: 40, Column: 7},
			Message:  "lock cycle",
		},
	}
}

// TestJSONGolden pins the exact serialized schema.
func TestJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := anz.WriteJSON(&sb, sampleFindings()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if sb.String() != goldenJSON {
		t.Errorf("schema drifted.\ngot:\n%s\nwant:\n%s", sb.String(), goldenJSON)
	}
}

// TestJSONRoundTrip checks Write→Read is lossless for every schema field.
func TestJSONRoundTrip(t *testing.T) {
	in := sampleFindings()
	var sb strings.Builder
	if err := anz.WriteJSON(&sb, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := anz.ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	// Offset is not serialized; compare everything that is.
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip drifted:\n in: %#v\nout: %#v", in, out)
	}
}

// TestJSONEmpty checks an all-clean run still emits a well-formed document
// (CI archives it unconditionally) and reads back as zero findings.
func TestJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := anz.WriteJSON(&sb, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(sb.String(), `"findings": []`) {
		t.Errorf("empty report should carry an explicit empty findings array, got:\n%s", sb.String())
	}
	out, err := anz.ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("read %d findings from empty report", len(out))
	}
}

// TestJSONVersionGate checks future-versioned reports are rejected, not
// silently misread.
func TestJSONVersionGate(t *testing.T) {
	_, err := anz.ReadJSON(strings.NewReader(`{"version": 99, "findings": []}`))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("want version error, got %v", err)
	}
}
