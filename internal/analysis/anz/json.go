package anz

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
)

// jsonVersion is bumped only on incompatible schema changes; CI archives
// vet.json per commit and diffs findings across runs, so the schema is a
// contract: fields may be added, never renamed or repurposed.
const jsonVersion = 1

// jsonReport is the -json document: a version header plus one entry per
// finding, already in SortFindings order.
type jsonReport struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// jsonFinding is the machine-readable form of one Finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Context is the //sqpr: annotation contract behind the finding, when
	// the analyzer attached one; empty otherwise (omitted from output).
	Context string `json:"context,omitempty"`
}

// WriteJSON emits findings as the stable machine-readable report CI
// archives (`sqpr-vet -json ./... > vet.json`). Findings must already be
// sorted (RunAnalyzers and RunModuleAnalyzers both sort).
func WriteJSON(w io.Writer, findings []Finding) error {
	rep := jsonReport{Version: jsonVersion, Findings: make([]jsonFinding, 0, len(findings))}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
			Context:  f.Context,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON decodes a report written by WriteJSON back into findings, so
// tooling can diff archived runs. Unknown versions are rejected rather
// than misread.
func ReadJSON(r io.Reader) ([]Finding, error) {
	var rep jsonReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("anz: decoding findings report: %w", err)
	}
	if rep.Version != jsonVersion {
		return nil, fmt.Errorf("anz: findings report version %d, this tool reads %d", rep.Version, jsonVersion)
	}
	out := make([]Finding, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		out = append(out, Finding{
			Analyzer: f.Analyzer,
			Pos:      token.Position{Filename: f.File, Line: f.Line, Column: f.Col},
			Message:  f.Message,
			Context:  f.Context,
		})
	}
	return out, nil
}
