// Package anz is a minimal, dependency-free analysis framework in the
// shape of golang.org/x/tools/go/analysis, built on the standard library
// only (the module vendors nothing and adds no external requirements).
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. Packages are loaded by Load (see load.go),
// which shells out to `go list -e -export -json -deps` and type-checks
// the target packages from source against the compiler's export data, so
// analyzers see exactly the types the build does — without a network, a
// vendor tree, or golang.org/x/tools.
package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run receives a fully type-checked package
// and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "lockguard").
	Name string
	// Doc is a one-paragraph description shown by `sqpr-vet -help`.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// ModuleAnalyzer is one whole-program static check: unlike an Analyzer,
// which sees one package at a time, its Run receives every loaded target
// package at once, so it can build call graphs and propagate facts across
// package boundaries (the interprocedural walorder/lockorder/atomicmix
// contracts).
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "walorder").
	Name string
	// Doc is a one-paragraph description shown by `sqpr-vet -help`.
	Doc string
	// Run performs the check over the whole loaded module.
	Run func(*ModulePass) error
}

// ModulePass carries the whole loaded module through one module analyzer.
// All packages share one FileSet (Load guarantees this).
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportContext is Reportf with an annotation-context string attached: the
// //sqpr: contract the finding enforces, carried into -json output so CI
// archives can be filtered by contract, not just by analyzer.
func (p *ModulePass) ReportContext(pos token.Pos, context, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Context: context})
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Context optionally names the //sqpr: annotation contract behind the
	// finding (e.g. "ack-point (*Service).reply"); surfaced in -json output.
	Context string
}

// Finding pairs a diagnostic with its analyzer and resolved position, the
// unit the multichecker prints and the test harness matches.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Context  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by file, line and column. Analyzer errors (not
// diagnostics) abort the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		if pkg.IllTyped {
			return nil, fmt.Errorf("anz: package %s did not type-check: %w", pkg.PkgPath, firstErr(pkg.Errors))
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Context:  d.Context,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("anz: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	SortFindings(out)
	return out, nil
}

// RunModuleAnalyzers applies every whole-program analyzer once over all
// packages together and returns the findings sorted by file, line and
// column. Analyzer errors (not diagnostics) abort the run.
func RunModuleAnalyzers(pkgs []*Package, analyzers []*ModuleAnalyzer) ([]Finding, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	for _, pkg := range pkgs {
		if pkg.IllTyped {
			return nil, fmt.Errorf("anz: package %s did not type-check: %w", pkg.PkgPath, firstErr(pkg.Errors))
		}
	}
	fset := pkgs[0].Fset
	var out []Finding
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: name,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
				Context:  d.Context,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("anz: %s: %w", a.Name, err)
		}
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by file, line, column and message — the
// stable order every consumer (terminal output, -json archives, the test
// harness) relies on.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
}

func firstErr(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}
