// Package walorder checks the module's durability ordering contract: no
// request may be acknowledged while state changes it depends on are not
// yet journaled. The protocol points are annotated —
//
//	//sqpr:ack-point      this function releases an acknowledgement
//	//sqpr:journal-point  this function makes prior mutations durable
//	//sqpr:mutates        this function (or interface method) changes
//	                      journaled state
//
// — and the analyzer propagates all three facts bottom-up over the
// whole-module call graph, then abstractly interprets every function body
// with one bit of state: "mutated but not yet journaled". Calling into an
// ack-point (directly or transitively) while that bit is set is the exact
// shape of the bug where a client observes an admission the WAL can still
// lose.
//
// A deliberate unjournaled acknowledgement (e.g. a rejection that changed
// nothing durable) is waived per statement with
//
//	//sqpr:ack-ok <why>
package walorder

import (
	"go/ast"
	"go/token"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/flow"
)

// Analyzer is the module-level walorder pass.
var Analyzer = &anz.ModuleAnalyzer{
	Name: "walorder",
	Doc:  "report paths that may acknowledge a request before journaling its state changes",
	Run:  run,
}

// summaryKinds: facts propagate over synchronous edges only. A goroutine
// or a stashed method value acks on its own schedule relative to this
// body, so its ordering is not this body's responsibility.
var summaryKinds = []flow.CallKind{flow.KindCall, flow.KindDefer}

func run(pass *anz.ModulePass) error {
	g := flow.Build(pass.Pkgs)
	mayAck := g.ReachesAny(seeds(g.Annotated("ack-point")), summaryKinds...)
	mayJournal := g.ReachesAny(seeds(g.Annotated("journal-point")), summaryKinds...)
	mayMutate := g.ReachesAny(seeds(g.Annotated("mutates")), summaryKinds...)

	lines := make(map[*anz.Package]*anno.Lines)
	for _, pkg := range pass.Pkgs {
		lines[pkg] = anno.CollectLines(pkg.Fset, pkg.Syntax)
	}

	g.Each(func(f *flow.Func) {
		body := f.Body()
		if body == nil {
			return
		}
		li := lines[f.Pkg]
		reported := make(map[token.Pos]bool)
		flow.WalkBody(body, false, flow.Effects[bool]{
			Clone: func(d bool) bool { return d },
			// A state is dirty if any path into it is: merges are unions.
			Merge: func(a, b bool) bool { return a || b },
			Call: func(dirty bool, call *ast.CallExpr, kind flow.CallKind) bool {
				key, ok := flow.ResolveCall(f.Pkg.TypesInfo, call)
				if !ok {
					return dirty
				}
				if kind == flow.KindGo {
					// The launch itself neither journals nor acks in this
					// body's order; the goroutine's body is checked on its
					// own.
					return dirty
				}
				switch {
				case mayJournal[key]:
					// The callee flushes; if it also mutates or acks, its
					// own body carries the internal ordering check.
					return false
				case dirty && mayAck[key]:
					if !reported[call.Lparen] && !li.At(g.Fset, call.Pos(), "ack-ok") {
						reported[call.Lparen] = true
						pass.ReportContext(call.Lparen, "ack-point via "+key,
							"acknowledges before journaling: %s may reach an //sqpr:ack-point while state changes are not yet journaled", short(key))
					}
					return dirty
				case mayMutate[key]:
					return true
				}
				return dirty
			},
		})
	})
	return nil
}

func seeds(m map[string]string) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// short trims the package path off a function key for readable messages:
// "(*sqpr/internal/plan.Service).reply" → "(*plan.Service).reply".
func short(key string) string {
	out := make([]byte, 0, len(key))
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			start = i + 1
			continue
		}
		if key[i] == '.' || key[i] == ')' || key[i] == '(' || key[i] == '*' {
			out = append(out, key[start:i+1]...)
			start = i + 1
		}
	}
	return string(append(out, key[start:]...))
}
