// Package walorder fixtures: the durability-order protocol in miniature.
package walorder

// Planner mirrors plan.QueryPlanner: mutation contract on the interface
// method, exercised through dynamic dispatch.
type Planner interface {
	//sqpr:mutates
	Submit(id string) error
}

type store struct {
	p     Planner
	dirty int
}

//sqpr:ack-point
func (s *store) ack() {}

//sqpr:journal-point
func (s *store) journal() error { return nil }

//sqpr:mutates
func (s *store) mutate() { s.dirty++ }

// ackThenDone transitively acks: callers must treat it as an ack-point.
func (s *store) ackThenDone() {
	s.ack()
}

// mutateBoth transitively mutates through a plain helper.
func (s *store) mutateBoth() {
	s.mutate()
}

// --- violations ---

func bad(s *store) {
	s.mutate()
	s.ack() // want "acknowledges before journaling"
}

func badIndirect(s *store) {
	s.mutateBoth()
	s.ackThenDone() // want "acknowledges before journaling"
}

func badDynamic(s *store) {
	_ = s.p.Submit("q1")
	s.ack() // want "acknowledges before journaling"
}

// badBranch journals on only one arm; the other reaches the ack dirty.
func badBranch(s *store, ok bool) {
	s.mutate()
	if ok {
		_ = s.journal()
	}
	s.ack() // want "acknowledges before journaling"
}

// badLoop mutates late in the loop body; the next iteration's ack sees
// the dirty state (caught by the second walking pass).
func badLoop(s *store, ids []string) {
	for range ids {
		s.ack() // want "acknowledges before journaling"
		s.mutate()
	}
}

// --- conforming ---

func good(s *store) {
	s.mutate()
	_ = s.journal()
	s.ack()
}

func goodBothArms(s *store, ok bool) {
	s.mutate()
	if ok {
		_ = s.journal()
	} else {
		_ = s.journal()
	}
	s.ack()
}

// goodReject acks without having mutated anything: nothing to journal.
func goodReject(s *store) {
	s.ack()
}

// goodEarlyReturn's dirty path returns before the ack.
func goodEarlyReturn(s *store, ok bool) {
	if !ok {
		s.mutate()
		return
	}
	s.ack()
}

// goodWaived documents a deliberate unjournaled acknowledgement.
func goodWaived(s *store) {
	s.mutate()
	//sqpr:ack-ok rejection path reverts the mutation before replying
	s.ack()
}

// goodAsync launches the acking loop; ordering inside the goroutine is the
// goroutine's own concern.
func goodAsync(s *store) {
	s.mutate()
	go s.ackLoop()
}

func (s *store) ackLoop() {
	s.ack()
}
