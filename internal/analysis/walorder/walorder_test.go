package walorder_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/walorder"
)

func TestWalorder(t *testing.T) {
	atest.RunModule(t, ".", walorder.Analyzer, "./testdata/src/walorder")
}
