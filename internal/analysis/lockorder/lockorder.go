// Package lockorder builds the module's global lock-acquisition graph and
// reports ordering hazards. A lock class is a mutex-typed struct field
// (keyed by its named type, so every instance of plan.Service.pmu is one
// class) or a package-level mutex var. Edges are recorded whenever a class
// is acquired — lexically or transitively through a callee's acquire
// summary — while another is held; held-sets are tracked branch-sensitively
// (intersection merges: an edge needs the lock held on every path) with
// //sqpr:locked entry facts and deferred unlocks respected.
//
// The sanctioned hierarchy is declared in source:
//
//	//sqpr:lock-order Service.mu < Service.pmu < Service.smu
//
// (suffix-matched against class keys, transitively closed). An edge that
// contradicts a declaration is reported at the acquisition site; an edge
// participating in an undeclared cycle is reported at every unsanctioned
// acquisition around the cycle; re-acquiring a lock already lexically held
// is reported as a self-deadlock. Acquisitions consistent with — or simply
// absent from — the declarations are silent: the hierarchy only has to be
// written down where the graph is nontrivial.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/flow"
)

// Analyzer is the module-level lockorder pass.
var Analyzer = &anz.ModuleAnalyzer{
	Name: "lockorder",
	Doc:  "report lock acquisitions that contradict the declared //sqpr:lock-order hierarchy or form cycles",
	Run:  run,
}

// edge is one observed "to acquired while from held" pair of lock classes.
type edge struct{ from, to string }

func run(pass *anz.ModulePass) error {
	g := flow.Build(pass.Pkgs)

	// Acquire summaries: which classes may a call into f take? Propagated
	// over synchronous edges only — a spawned worker's locking happens in
	// its own stack, and creating it while holding a lock is not an
	// ordering edge.
	direct := make(map[string]map[string]bool) // func key -> classes locked lexically
	g.Each(func(f *flow.Func) {
		body := f.Body()
		if body == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if cls, op, ok := lockOp(f.Pkg, call); ok && acquiringOp(op) {
					if direct[f.Key] == nil {
						direct[f.Key] = make(map[string]bool)
					}
					direct[f.Key][cls] = true
				}
			}
			return true
		})
	})
	acquires := transitiveAcquires(g, direct)

	// Walk every body tracking the held set, recording edges.
	edges := make(map[edge]token.Pos)
	g.Each(func(f *flow.Func) {
		body := f.Body()
		if body == nil {
			return
		}
		walkHeld(pass, g, f, acquires, edges)
	})

	// Declared hierarchy, transitively closed over the declaration chains,
	// then matched against the observed class keys.
	classes := make(map[string]bool)
	for e := range edges {
		classes[e.from] = true
		classes[e.to] = true
	}
	sanctioned, err := declaredOrder(pass, classes)
	if err != nil {
		return err
	}

	report(pass, edges, sanctioned)
	return nil
}

// --- lock classes ---

// lockOp recognizes a mutex method call and returns the receiver's class
// and the method name. Mutexes with no derivable class (locals, map
// elements) return ok=false.
func lockOp(pkg *anz.Package, call *ast.CallExpr) (cls, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	s, isMethod := pkg.TypesInfo.Selections[sel]
	if !isMethod || !isMutex(s.Recv()) {
		return "", "", false
	}
	cls, ok = classOf(pkg, sel.X)
	return cls, sel.Sel.Name, ok
}

func acquiringOp(op string) bool { return op == "Lock" || op == "RLock" }
func releasingOp(op string) bool { return op == "Unlock" || op == "RUnlock" }

func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// classOf derives the lock class of a mutex expression: "pkg/path.T.field"
// for a field of a named struct type, "pkg/path.var" for a package-level
// var.
func classOf(pkg *anz.Package, x ast.Expr) (string, bool) {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, ok := pkg.TypesInfo.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() { // package-level var
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.SelectorExpr:
		s, ok := pkg.TypesInfo.Selections[e]
		if !ok {
			return "", false
		}
		recv := s.Recv()
		if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
			recv = p.Elem()
		}
		if n, isNamed := recv.(*types.Named); isNamed && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + e.Sel.Name, true
		}
	}
	return "", false
}

// short trims package paths for messages: "sqpr/internal/plan.Service.pmu"
// → "plan.Service.pmu".
func short(cls string) string {
	if i := strings.LastIndex(cls, "/"); i >= 0 {
		return cls[i+1:]
	}
	return cls
}

// --- acquire summaries ---

// transitiveAcquires propagates lexical acquisitions bottom-up: for each
// class, every function from which a directly-acquiring function is
// reachable over call/defer edges may acquire it.
func transitiveAcquires(g *flow.Graph, direct map[string]map[string]bool) map[string]map[string]bool {
	byClass := make(map[string]map[string]bool)
	for key, classes := range direct {
		for cls := range classes {
			if byClass[cls] == nil {
				byClass[cls] = make(map[string]bool)
			}
			byClass[cls][key] = true
		}
	}
	out := make(map[string]map[string]bool)
	for cls, seeds := range byClass {
		for key := range g.ReachesAny(seeds, flow.KindCall, flow.KindDefer) {
			if out[key] == nil {
				out[key] = make(map[string]bool)
			}
			out[key][cls] = true
		}
	}
	return out
}

// --- held-set interpretation ---

type held map[string]bool

func walkHeld(pass *anz.ModulePass, g *flow.Graph, f *flow.Func, acquires map[string]map[string]bool, edges map[edge]token.Pos) {
	entry := make(held)
	for _, cls := range entryHeld(f) {
		entry[cls] = true
	}
	selfReported := make(map[token.Pos]bool)

	flow.WalkBody(f.Body(), entry, flow.Effects[held]{
		Clone: func(h held) held {
			c := make(held, len(h))
			for k := range h {
				c[k] = true
			}
			return c
		},
		// Must-hold semantics: a lock is held after a merge only if every
		// incoming path holds it, so recorded edges are real on all paths.
		Merge: func(a, b held) held {
			m := make(held)
			for k := range a {
				if b[k] {
					m[k] = true
				}
			}
			return m
		},
		Call: func(h held, call *ast.CallExpr, kind flow.CallKind) held {
			if cls, op, ok := lockOp(f.Pkg, call); ok {
				switch {
				case acquiringOp(op):
					if h[cls] && !selfReported[call.Lparen] {
						selfReported[call.Lparen] = true
						pass.ReportContext(call.Lparen, "lock "+short(cls),
							"lock %s acquired while already held (self-deadlock)", short(cls))
					}
					for prior := range h {
						if prior == cls {
							continue
						}
						addEdge(edges, edge{prior, cls}, call.Lparen)
					}
					h[cls] = true
				case releasingOp(op) && kind == flow.KindCall:
					// A deferred unlock runs at return: the lock stays held
					// for the rest of the body.
					delete(h, cls)
				}
				// TryLock/TryRLock: acquisition is conditional; lockguard
				// checks the success branch, ordering stays conservative.
				return h
			}
			if kind == flow.KindGo {
				return h
			}
			if key, ok := flow.ResolveCall(f.Pkg.TypesInfo, call); ok {
				for cls := range acquires[key] {
					for prior := range h {
						// No self-edge from summaries: an //sqpr:locked
						// annotation can mean "single-threaded phase", and
						// the callee re-acquiring the same class lexically
						// is reported in the callee itself.
						if prior == cls {
							continue
						}
						addEdge(edges, edge{prior, cls}, call.Lparen)
					}
				}
			}
			return h
		},
	})
}

// addEdge keeps the first observed site per edge for stable reporting.
func addEdge(edges map[edge]token.Pos, e edge, pos token.Pos) {
	if _, ok := edges[e]; !ok {
		edges[e] = pos
	}
}

// entryHeld resolves //sqpr:locked <name> annotations to lock classes:
// a receiver field of the method's receiver type, or a package-level var.
func entryHeld(f *flow.Func) []string {
	var out []string
	for _, d := range f.Annots {
		if d.Verb != "locked" {
			continue
		}
		name := firstField(d.Args)
		if name == "" {
			continue
		}
		if cls, ok := receiverField(f, name); ok {
			out = append(out, cls)
			continue
		}
		if obj := f.Pkg.Types.Scope().Lookup(name); obj != nil {
			if v, ok := obj.(*types.Var); ok && isMutex(v.Type()) {
				out = append(out, f.Pkg.PkgPath+"."+name)
			}
		}
	}
	return out
}

func receiverField(f *flow.Func, name string) (string, bool) {
	if f.Decl == nil || f.Decl.Recv == nil {
		return "", false
	}
	obj, _ := f.Pkg.TypesInfo.Defs[f.Decl.Name].(*types.Func)
	if obj == nil {
		return "", false
	}
	recv := obj.Type().(*types.Signature).Recv().Type()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		fd := st.Field(i)
		if fd.Name() == name && isMutex(fd.Type()) {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + name, true
		}
	}
	return "", false
}

func firstField(s string) string {
	fs := strings.Fields(s)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// --- declarations and reporting ---

// declaredOrder parses every //sqpr:lock-order chain in the module,
// resolves the names against observed class keys by suffix match, and
// returns the transitive closure of sanctioned (before, after) pairs.
func declaredOrder(pass *anz.ModulePass, classes map[string]bool) (map[edge]bool, error) {
	// Pairs over declared names first.
	namePairs := make(map[edge]bool)
	names := make(map[string]bool)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d, ok := anno.Parse(c)
					if !ok || d.Verb != "lock-order" {
						continue
					}
					var chain []string
					for _, part := range strings.Split(d.Args, "<") {
						if p := strings.TrimSpace(part); p != "" {
							chain = append(chain, p)
							names[p] = true
						}
					}
					for i := 0; i+1 < len(chain); i++ {
						namePairs[edge{chain[i], chain[i+1]}] = true
					}
				}
			}
		}
	}
	// Transitive closure over names (tiny graphs; cubic is fine).
	for changed := true; changed; {
		changed = false
		for a := range namePairs {
			for b := range namePairs {
				if a.to == b.from && !namePairs[edge{a.from, b.to}] {
					namePairs[edge{a.from, b.to}] = true
					changed = true
				}
			}
		}
	}
	// Map names to observed classes by suffix.
	match := func(name string) []string {
		var out []string
		for cls := range classes {
			if cls == name || strings.HasSuffix(cls, "."+name) {
				out = append(out, cls)
			}
		}
		return out
	}
	sanctioned := make(map[edge]bool)
	for p := range namePairs {
		for _, from := range match(p.from) {
			for _, to := range match(p.to) {
				sanctioned[edge{from, to}] = true
			}
		}
	}
	return sanctioned, nil
}

// report classifies each observed edge: contradiction of a declaration
// beats cycle membership; sanctioned or acyclic-undeclared edges are
// silent.
func report(pass *anz.ModulePass, edges map[edge]token.Pos, sanctioned map[edge]bool) {
	// Forward adjacency over observed edges for cycle detection.
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		queue := []string{from}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur == to {
				return true
			}
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return false
	}

	ordered := make([]edge, 0, len(edges))
	for e := range edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return edges[ordered[i]] < edges[ordered[j]] })

	for _, e := range ordered {
		pos := edges[e]
		ctx := "while holding " + short(e.from)
		switch {
		case sanctioned[edge{e.to, e.from}]:
			pass.ReportContext(pos, ctx,
				"lock %s acquired while holding %s contradicts the declared //sqpr:lock-order (%s < %s)",
				short(e.to), short(e.from), short(e.to), short(e.from))
		case sanctioned[e]:
			// Declared and followed.
		case reaches(e.to, e.from):
			pass.ReportContext(pos, ctx,
				"lock-order cycle: %s acquired while holding %s, and %s is elsewhere acquired while %s is held; declare //sqpr:lock-order or break the cycle",
				short(e.to), short(e.from), short(e.from), short(e.to))
		}
	}
}
