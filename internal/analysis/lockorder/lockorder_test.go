package lockorder_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	atest.RunModule(t, ".", lockorder.Analyzer, "./testdata/src/lockorder")
}
