// Package lockorder fixtures: declared hierarchies, contradictions,
// undeclared cycles, annotation-held entry states, and self-deadlocks.
package lockorder

import "sync"

//sqpr:lock-order outer.a < outer.b

type outer struct {
	a sync.Mutex
	b sync.Mutex
}

// good follows the declared order; silent.
func good(o *outer) {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

// goodDeferred holds a through a deferred unlock; still sanctioned.
func goodDeferred(o *outer) {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	o.b.Unlock()
}

// contradict inverts the declared order.
func contradict(o *outer) {
	o.b.Lock()
	o.a.Lock() // want "contradicts the declared //sqpr:lock-order"
	o.a.Unlock()
	o.b.Unlock()
}

// goodRelease unlocks before taking the other lock: no edge at all.
func goodRelease(o *outer) {
	o.b.Lock()
	o.b.Unlock()
	o.a.Lock()
	o.a.Unlock()
}

// pair's locks have no declared order and are taken both ways round.
type pair struct {
	c sync.Mutex
	d sync.Mutex
}

func cThenD(p *pair) {
	p.c.Lock()
	p.d.Lock() // want "lock-order cycle"
	p.d.Unlock()
	p.c.Unlock()
}

func dThenC(p *pair) {
	p.d.Lock()
	p.c.Lock() // want "lock-order cycle"
	p.c.Unlock()
	p.d.Unlock()
}

// srv exercises the interprocedural and annotation-held cases.
type srv struct {
	e sync.Mutex
	f sync.Mutex
}

// withE runs with e held by contract, so its f acquisition is an e→f edge.
//
//sqpr:locked e
func (s *srv) withE() {
	s.f.Lock() // want "lock-order cycle"
	s.f.Unlock()
}

// other closes the cycle f→e through locksE's acquire summary.
func (s *srv) other() {
	s.f.Lock()
	s.locksE() // want "lock-order cycle"
	s.f.Unlock()
}

func (s *srv) locksE() {
	s.e.Lock()
	s.e.Unlock()
}

// gmu is a package-level lock class.
var gmu sync.Mutex

func selfDeadlock() {
	gmu.Lock()
	gmu.Lock() // want "already held"
	gmu.Unlock()
	gmu.Unlock()
}

// branches: a merge only keeps locks held on every path, so the b
// acquisition after the conditional unlock records no edge.
func branchy(o *outer, fast bool) {
	o.a.Lock()
	if fast {
		o.a.Unlock()
	}
	o.b.Lock()
	o.b.Unlock()
	if !fast {
		o.a.Unlock()
	}
}

// tryLock acquisitions are conditional and stay out of the held set.
func tryLock(p *pair) {
	p.d.Lock()
	if p.c.TryLock() {
		p.c.Unlock()
	}
	p.d.Unlock()
}
