// Package anno parses the //sqpr: source annotations shared by the
// sqpr-vet analyzers. An annotation is a line comment of the form
//
//	//sqpr:<verb> [args...]
//
// attached to a declaration (doc comment), a struct field (doc or trailing
// line comment), or an individual statement (a comment on the same line or
// the line immediately above). DESIGN.md §"Static contracts" documents the
// vocabulary:
//
//	guarded-by <mu>   field is protected by the named mutex (lockguard)
//	locked <mu> [why] function runs with <mu> already held (lockguard)
//	hotpath           function must not allocate (hotalloc)
//	coldpath          statement is off the hot path (hotalloc)
//	amortized         pooled append with amortized O(1) growth (hotalloc)
//	noctx <reason>    loop is bounded/terminated without a ctx (ctxflow)
//	ctxloop           loop must demonstrably poll ctx (ctxflow)
//	ctxroot <reason>  deliberate context.Background site (ctxflow)
//	ctxroot-package   whole package is a context root (ctxflow)
//	ack-point         function acknowledges a request (walorder)
//	journal-point     function makes prior mutations durable (walorder)
//	mutates           function/interface method changes journaled state (walorder)
//	ack-ok <why>      statement-level waiver for an unjournaled ack (walorder)
//	lock-order A < B  sanctioned lock acquisition hierarchy (lockorder)
//	atomic-ok <why>   statement-level waiver for a plain access (atomicmix)
package anno

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix introduces an annotation comment.
const Prefix = "//sqpr:"

// Directive is one parsed annotation.
type Directive struct {
	Verb string
	Args string
	Pos  token.Pos
}

// Parse extracts the directive from a single comment, if present.
func Parse(c *ast.Comment) (Directive, bool) {
	rest, ok := strings.CutPrefix(c.Text, Prefix)
	if !ok {
		return Directive{}, false
	}
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" {
		return Directive{}, false
	}
	return Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// FromGroup returns the first directive with the given verb in a comment
// group (doc comment), if any.
func FromGroup(cg *ast.CommentGroup, verb string) (Directive, bool) {
	if cg == nil {
		return Directive{}, false
	}
	for _, c := range cg.List {
		if d, ok := Parse(c); ok && d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// Lines indexes every directive in a file set of syntax trees by file name
// and line, for statement-level lookups.
type Lines struct {
	byLine map[string]map[int][]Directive
}

// CollectLines builds the line index over the given files.
func CollectLines(fset *token.FileSet, files []*ast.File) *Lines {
	idx := &Lines{byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := Parse(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]Directive)
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
			}
		}
	}
	return idx
}

// At reports whether a directive with the given verb annotates the source
// position: on its line or on the line immediately above (the two places a
// statement-level annotation may sit).
func (l *Lines) At(fset *token.FileSet, pos token.Pos, verb string) bool {
	p := fset.Position(pos)
	m := l.byLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range m[line] {
			if d.Verb == verb {
				return true
			}
		}
	}
	return false
}

// ArgsAt returns the args of directives with the given verb at pos (same
// line or line above); nil when none.
func (l *Lines) ArgsAt(fset *token.FileSet, pos token.Pos, verb string) []string {
	p := fset.Position(pos)
	m := l.byLine[p.Filename]
	if m == nil {
		return nil
	}
	var out []string
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range m[line] {
			if d.Verb == verb {
				out = append(out, d.Args)
			}
		}
	}
	return out
}

// PackageHas reports whether any comment in the package carries the verb
// (used for package-scoped markers like ctxroot-package).
func PackageHas(files []*ast.File, verb string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			if _, ok := FromGroup(cg, verb); ok {
				return true
			}
		}
	}
	return false
}
