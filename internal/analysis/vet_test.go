// Package analysis_test runs the full sqpr-vet analyzer suite against the
// real module — the meta-check behind the CI gate: every package must stay
// clean under the per-package analyzers (lockguard, ctxflow, hotalloc,
// errflow) and the interprocedural module analyzers (walorder, lockorder,
// atomicmix) at all times, so a regression in either the code or the
// analyzers themselves fails here before it fails in CI.
package analysis_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/atomicmix"
	"sqpr/internal/analysis/ctxflow"
	"sqpr/internal/analysis/errflow"
	"sqpr/internal/analysis/hotalloc"
	"sqpr/internal/analysis/lockguard"
	"sqpr/internal/analysis/lockorder"
	"sqpr/internal/analysis/walorder"
)

// TestModuleIsVetClean loads every package of the module and asserts all
// seven analyzers report nothing. Fixture corpora under testdata are not
// part of ./... and keep their deliberate violations. On failure the
// findings print grouped by analyzer with file:line positions, so the
// offending contract is readable straight off the test log.
func TestModuleIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := anz.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	findings, err := anz.RunAnalyzers(pkgs, []*anz.Analyzer{
		lockguard.Analyzer,
		ctxflow.Analyzer,
		hotalloc.Analyzer,
		errflow.Analyzer,
	})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	modFindings, err := anz.RunModuleAnalyzers(pkgs, []*anz.ModuleAnalyzer{
		walorder.Analyzer,
		lockorder.Analyzer,
		atomicmix.Analyzer,
	})
	if err != nil {
		t.Fatalf("running module analyzers: %v", err)
	}
	findings = append(findings, modFindings...)
	if len(findings) == 0 {
		return
	}

	byAnalyzer := make(map[string][]anz.Finding)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f)
	}
	names := make([]string, 0, len(byAnalyzer))
	for name := range byAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byAnalyzer[name]
		t.Errorf("%s: %d finding(s)", name, len(group))
		for _, f := range group {
			msg := f.Message
			if f.Context != "" {
				msg += " [" + f.Context + "]"
			}
			t.Errorf("  %s:%d:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, msg)
		}
	}
	t.Fatalf("sqpr-vet reported %d finding(s); the module must stay clean", len(findings))
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
