// Package analysis_test runs the full sqpr-vet analyzer suite against the
// real module — the meta-check behind the CI gate: every package must stay
// clean under lockguard, ctxflow, hotalloc and errflow at all times, so a
// regression in either the code or the analyzers themselves fails here
// before it fails in CI.
package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"sqpr/internal/analysis/anz"
	"sqpr/internal/analysis/ctxflow"
	"sqpr/internal/analysis/errflow"
	"sqpr/internal/analysis/hotalloc"
	"sqpr/internal/analysis/lockguard"
)

// TestModuleIsVetClean loads every package of the module and asserts the
// four analyzers report nothing. Fixture corpora under testdata are not
// part of ./... and keep their deliberate violations.
func TestModuleIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := anz.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	findings, err := anz.RunAnalyzers(pkgs, []*anz.Analyzer{
		lockguard.Analyzer,
		ctxflow.Analyzer,
		hotalloc.Analyzer,
		errflow.Analyzer,
	})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("sqpr-vet reported %d finding(s); the module must stay clean", len(findings))
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
