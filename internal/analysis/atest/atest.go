// Package atest is the test harness for anz analyzers, modeled on
// golang.org/x/tools/go/analysis/analysistest but dependency-free: fixture
// packages live under each analyzer's testdata/ (excluded from `./...`
// wildcards, so deliberately-violating code never reaches the real build)
// and annotate the lines they expect findings on with
//
//	// want "regexp"
//
// comments. One comment may carry several quoted regexps when several
// diagnostics land on the same line. The harness fails the test on any
// diagnostic without a matching want and any want without a matching
// diagnostic.
package atest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"sqpr/internal/analysis/anz"
)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture packages matched by patterns (relative to dir,
// typically "./testdata/src/<case>") and checks the analyzer's diagnostics
// against the want comments.
func Run(t *testing.T, dir string, a *anz.Analyzer, patterns ...string) {
	t.Helper()
	check(t, a.Name, dir, patterns, func(pkgs []*anz.Package) ([]anz.Finding, error) {
		return anz.RunAnalyzers(pkgs, []*anz.Analyzer{a})
	})
}

// RunModule is Run for whole-module analyzers: all matched fixture
// packages are handed to the analyzer in one pass, so cross-package
// diagnostics (call-graph summaries, lock hierarchies) can be asserted
// with the same want comments.
func RunModule(t *testing.T, dir string, a *anz.ModuleAnalyzer, patterns ...string) {
	t.Helper()
	check(t, a.Name, dir, patterns, func(pkgs []*anz.Package) ([]anz.Finding, error) {
		return anz.RunModuleAnalyzers(pkgs, []*anz.ModuleAnalyzer{a})
	})
}

func check(t *testing.T, name, dir string, patterns []string, run func([]*anz.Package) ([]anz.Finding, error)) {
	t.Helper()
	pkgs, err := anz.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	findings, err := run(pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", name, err)
	}

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*want, f anz.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE pulls the quoted regexps out of a want comment; both "..." and
// backquoted `...` forms are accepted (the latter for patterns that
// themselves contain double quotes).
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(pkgs []*anz.Package) ([]*want, error) {
	var out []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					out = append(out, parseWants(pkg, c)...)
				}
			}
		}
	}
	for _, w := range out {
		if w.re == nil {
			return nil, fmt.Errorf("%s:%d: bad want pattern %q", w.file, w.line, w.raw)
		}
	}
	return out, nil
}

func parseWants(pkg *anz.Package, c *ast.Comment) []*want {
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*want
	for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
		pat := m[1]
		if m[2] != "" {
			pat = m[2]
		}
		w := &want{file: pos.Filename, line: pos.Line, raw: pat}
		if re, err := regexp.Compile(pat); err == nil {
			w.re = re
		}
		out = append(out, w)
	}
	return out
}
