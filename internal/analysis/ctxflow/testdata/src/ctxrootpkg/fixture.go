// Package fixture is a ctxflow corpus case: the package-level ctxroot
// marker exempts a context-root package (an experiment harness) from the
// Background/TODO ban — but not from the loop-polling rules.
//
//sqpr:ctxroot-package experiment harness owns its lifecycles
package fixture

import "context"

func harnessRoot() context.Context {
	return context.Background() // allowed: package is a context root
}

func stillChecked(work func()) {
	for { // want "does not poll ctx"
		work()
	}
}
