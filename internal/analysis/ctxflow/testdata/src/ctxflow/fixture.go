// Package fixture is the ctxflow corpus: root-context minting and loops
// with and without cancellation polling.
package fixture

import "context"

func mintsRoot() context.Context {
	return context.Background() // want "context.Background"
}

func mintsTODO() context.Context {
	return context.TODO() // want "context.TODO"
}

func deliberateRoot() context.Context {
	//sqpr:ctxroot detached batch lifetime is documented at the call site
	return context.Background()
}

func loopNoPoll(work func()) {
	for { // want "does not poll ctx"
		work()
	}
}

func loopPollsErr(ctx context.Context, work func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

func loopPollsSelect(ctx context.Context, in chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			_ = v
		}
	}
}

type solver struct{ ctx context.Context }

// expired is the polling root of the transitive chain.
func (s *solver) expired() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

func (s *solver) iterate() bool { return !s.expired() }

// loopTransitive polls through two levels of same-package calls.
func (s *solver) loopTransitive() {
	for {
		if !s.iterate() {
			return
		}
	}
}

func loopAnnotated(in chan int) int {
	sum := 0
	//sqpr:noctx terminated by channel close
	for {
		v, ok := <-in
		if !ok {
			return sum
		}
		sum += v
	}
}

// optInBad ranges over a slice but promised to poll between elements.
func optInBad(xs []int, work func(int)) {
	//sqpr:ctxloop
	for _, x := range xs { // want "ctxloop loop does not poll"
		work(x)
	}
}

func optInGood(ctx context.Context, xs []int, work func(int)) {
	//sqpr:ctxloop
	for _, x := range xs {
		if ctx.Err() != nil {
			return
		}
		work(x)
	}
}
