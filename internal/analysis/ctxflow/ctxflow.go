// Package ctxflow enforces the repository's cancellation contract: every
// planner advertises "a ctx cancellation aborts the call promptly", so the
// loops that do the work must actually poll the context, and library code
// must not mint root contexts that silently detach work from its caller.
//
// Rules (all statically checked, package main and _test files excepted):
//
//  1. No context.Background()/context.TODO() in library packages. A
//     deliberate root (a detached batch context, the single nil-ctx
//     defaulting helper) is annotated //sqpr:ctxroot <reason>; a whole
//     package that is a legitimate context root (the experiment harness)
//     carries //sqpr:ctxroot-package in a package comment.
//
//  2. Every unconditional `for {` loop must poll cancellation: reference
//     ctx.Done()/ctx.Err() (directly, through a select, or by calling a
//     same-package function that transitively polls — the solver's
//     s.expired() chain), or be annotated //sqpr:noctx <reason> when it is
//     bounded or terminated by other means (channel close, listener
//     shutdown).
//
//  3. A conditioned loop annotated //sqpr:ctxloop opts into the same
//     polling requirement (the core planner's chunk loop, which must stay
//     cancellable between chunks even though it ranges over a slice).
//
// The transitive-poll analysis is a package-internal fixpoint: a function
// polls if its body mentions Done/Err on a context value, or if it calls a
// same-package function that polls.
package ctxflow

import (
	"go/ast"
	"go/types"

	"sqpr/internal/analysis/anno"
	"sqpr/internal/analysis/anz"
)

// Analyzer is the ctxflow check.
var Analyzer = &anz.Analyzer{
	Name: "ctxflow",
	Doc:  "check that loops poll ctx cancellation and library code does not mint root contexts",
	Run:  run,
}

func run(pass *anz.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	lines := anno.CollectLines(pass.Fset, pass.Files)
	rootPkg := anno.PackageHas(pass.Files, "ctxroot-package")

	polls := pollingFuncs(pass)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if !rootPkg {
					checkRootContext(pass, lines, x)
				}
			case *ast.ForStmt:
				bare := x.Init == nil && x.Cond == nil && x.Post == nil
				optIn := lines.At(pass.Fset, x.Pos(), "ctxloop")
				if !bare && !optIn {
					return true
				}
				if lines.At(pass.Fset, x.Pos(), "noctx") && !optIn {
					return true
				}
				if !bodyPolls(pass, polls, x.Body) {
					kind := "unconditional loop"
					if optIn {
						kind = "//sqpr:ctxloop loop"
					}
					pass.Reportf(x.Pos(), "%s does not poll ctx cancellation (reference ctx.Done()/ctx.Err(), call a polling helper, or annotate //sqpr:noctx <reason>)", kind)
				}
			case *ast.RangeStmt:
				if lines.At(pass.Fset, x.Pos(), "ctxloop") && !bodyPolls(pass, polls, x.Body) {
					pass.Reportf(x.Pos(), "//sqpr:ctxloop loop does not poll ctx cancellation (reference ctx.Done()/ctx.Err() or call a polling helper)")
				}
			}
			return true
		})
	}
	return nil
}

// checkRootContext flags context.Background()/context.TODO() calls without
// a //sqpr:ctxroot annotation.
func checkRootContext(pass *anz.Pass, lines *anno.Lines, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return
	}
	if lines.At(pass.Fset, call.Pos(), "ctxroot") {
		return
	}
	pass.Reportf(call.Pos(), "library package calls context.%s(); accept a ctx from the caller, or annotate a deliberate root with //sqpr:ctxroot <reason>", sel.Sel.Name)
}

// pollingFuncs computes the set of package functions that (transitively)
// poll a context: body mentions .Done()/.Err() on a context.Context value,
// or calls a same-package function in the set.
func pollingFuncs(pass *anz.Pass) map[types.Object]bool {
	type fn struct {
		obj  types.Object
		body *ast.BlockStmt
	}
	var fns []fn
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				fns = append(fns, fn{obj: obj, body: fd.Body})
			}
		}
	}
	polls := make(map[types.Object]bool)
	for _, f := range fns {
		if mentionsCtxPoll(pass, f.body) {
			polls[f.obj] = true
		}
	}
	// Fixpoint over the package-internal call graph.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if polls[f.obj] {
				continue
			}
			if callsPolling(pass, polls, f.body) {
				polls[f.obj] = true
				changed = true
			}
		}
	}
	return polls
}

// mentionsCtxPoll reports a direct Done/Err selector on a context-typed
// expression anywhere in the node (including nested literals: a polling
// closure passed to a worker still bounds the loop that spawned it).
func mentionsCtxPoll(pass *anz.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		sel, ok := node.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err" && sel.Sel.Name != "Deadline") {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isContext(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func callsPolling(pass *anz.Pass, polls map[types.Object]bool, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && polls[obj] {
			found = true
			return false
		}
		return true
	})
	return found
}

// bodyPolls reports whether the loop body polls cancellation directly or
// through a same-package call.
func bodyPolls(pass *anz.Pass, polls map[types.Object]bool, body *ast.BlockStmt) bool {
	return mentionsCtxPoll(pass, body) || callsPolling(pass, polls, body)
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
