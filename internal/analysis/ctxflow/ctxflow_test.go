package ctxflow_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	atest.Run(t, ".", ctxflow.Analyzer, "./testdata/src/ctxflow", "./testdata/src/ctxrootpkg")
}
