package errflow_test

import (
	"testing"

	"sqpr/internal/analysis/atest"
	"sqpr/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	atest.Run(t, ".", errflow.Analyzer, "./testdata/src/errflow")
}
