// Package fixture is the errflow corpus: sentinel comparisons and error
// wrapping, across a package boundary.
package fixture

import (
	"errors"
	"fmt"

	def "sqpr/internal/analysis/errflow/testdata/src/errflowdef"
)

var ErrLocal = errors.New("local sentinel")

func badEq(err error) bool {
	return err == def.ErrQueueFull // want "errors.Is"
}

func badNeq(err error) bool {
	return err != ErrLocal // want "errors.Is"
}

func badSwitch(err error) string {
	switch err {
	case def.ErrClosed: // want "switch case"
		return "closed"
	case nil:
		return "ok"
	}
	return "other"
}

func badWrap(err error) error {
	return fmt.Errorf("submit %d failed: %v", 7, err) // want `use %w`
}

func badWrapSentinel() error {
	return fmt.Errorf("service: %s", def.ErrClosed) // want `use %w`
}

func goodIs(err error) bool {
	return errors.Is(err, def.ErrQueueFull) || errors.Is(err, ErrLocal)
}

func goodWrap(err error) error {
	return fmt.Errorf("submit %d failed: %w", 7, err)
}

func nilCompareOK(err error) bool {
	return err == nil
}

func nonSentinelOK(err error) bool {
	return err == def.NotASentinel
}
