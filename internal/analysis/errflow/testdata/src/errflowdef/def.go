// Package errflowdef exports sentinel errors for the errflow corpus.
package errflowdef

import "errors"

var (
	ErrQueueFull = errors.New("queue full")
	ErrClosed    = errors.New("closed")
)

// NotASentinel has the type but not the naming convention; errflow only
// tracks Err*-named package vars.
var NotASentinel = errors.New("anonymous")
