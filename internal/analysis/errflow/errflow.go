// Package errflow enforces the sentinel-error contract of the plan API
// (ErrQueueFull, ErrServiceClosed, ErrUnknownStream, ErrAlreadyDeployed,
// ...): callers must compare with errors.Is, and wrapping must use %w so
// the chain stays inspectable across package boundaries.
//
// Rules:
//
//  1. No == / != / switch-case comparison against a sentinel — a
//     package-level variable of type error named Err* — anywhere; a
//     planner that wraps its rejection (fmt.Errorf("plan: %w", ErrX))
//     silently breaks every direct comparison, so errors.Is is mandatory
//     even within the defining package.
//
//  2. An error-typed argument to fmt.Errorf must be formatted with %w, not
//     %v/%s: formatting flattens the chain, so errors.Is stops working one
//     call up the stack.
package errflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"sqpr/internal/analysis/anz"
)

// Analyzer is the errflow check.
var Analyzer = &anz.Analyzer{
	Name: "errflow",
	Doc:  "check sentinel errors are compared with errors.Is and wrapped with %w",
	Run:  run,
}

func run(pass *anz.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op == token.EQL || x.Op == token.NEQ {
					checkComparison(pass, x)
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, x)
			case *ast.CallExpr:
				checkErrorf(pass, x)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *anz.Pass, be *ast.BinaryExpr) {
	for _, side := range []ast.Expr{be.X, be.Y} {
		if s := sentinelOf(pass, side); s != nil {
			pass.Reportf(be.Pos(), "sentinel %s compared with %s; use errors.Is so wrapped errors still match", s.Name(), be.Op)
			return
		}
	}
}

// checkSwitch flags `switch err { case ErrX: }` — the tag-equality form of
// the same direct comparison.
func checkSwitch(pass *anz.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagTV, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !isErrorType(tagTV.Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelOf(pass, e); s != nil {
				pass.Reportf(e.Pos(), "sentinel %s used as a switch case; use errors.Is so wrapped errors still match", s.Name())
			}
		}
	}
}

// checkErrorf verifies fmt.Errorf verbs: error-typed arguments take %w.
func checkErrorf(pass *anz.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "fmt" || len(call.Args) < 2 {
		return
	}
	fmtTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || fmtTV.Value == nil || fmtTV.Value.Kind() != constant.String {
		return
	}
	verbs := parseVerbs(constant.StringVal(fmtTV.Value))
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "error formatted with %%%c; use %%w so the chain stays inspectable with errors.Is", verbs[i])
		}
	}
}

// parseVerbs returns the conversion verb consuming each successive
// argument of a Printf-style format string (flags, width and precision
// skipped; `*` width/precision consume an argument and are recorded as
// '*').
func parseVerbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			if format[i] == '*' {
				out = append(out, '*')
			}
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		out = append(out, format[i])
	}
	return out
}

// sentinelOf resolves e to a package-level error variable named Err*, the
// sentinel convention of this module and the standard library.
func sentinelOf(pass *anz.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() { // package-level vars only
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType) || types.Identical(t, errorType)
}
