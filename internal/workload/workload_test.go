package workload

import (
	"math"
	"testing"
	"testing/quick"

	"sqpr/internal/dsps"
)

func testSystem(hosts int) *dsps.System {
	return BuildSystem(SystemConfig{NumHosts: hosts, CPUPerHost: 10, OutBW: 100, InBW: 100, LinkCap: 50})
}

func TestGenerateBasics(t *testing.T) {
	sys := testSystem(5)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 30
	cfg.NumQueries = 20
	w := Generate(sys, cfg)
	if len(w.BaseStreams) != 30 {
		t.Fatalf("base streams: %d", len(w.BaseStreams))
	}
	if len(w.Queries) != 20 {
		t.Fatalf("queries: %d", len(w.Queries))
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if !sys.Streams[q].Requested {
			t.Fatalf("query stream %d not marked requested", q)
		}
		if sys.Streams[q].IsBase() {
			t.Fatalf("query stream %d is a base stream", q)
		}
	}
	// Every base stream is placed on exactly one host.
	for _, b := range w.BaseStreams {
		if len(sys.BaseHosts(b)) != 1 {
			t.Fatalf("base stream %d has %d hosts", b, len(sys.BaseHosts(b)))
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 25
	cfg.NumQueries = 15
	w1 := Generate(testSystem(4), cfg)
	w2 := Generate(testSystem(4), cfg)
	if len(w1.Queries) != len(w2.Queries) {
		t.Fatal("lengths differ")
	}
	for i := range w1.Queries {
		if w1.Queries[i] != w2.Queries[i] {
			t.Fatalf("query %d differs: %d vs %d", i, w1.Queries[i], w2.Queries[i])
		}
	}
}

func TestCanonicalisationSharesStreams(t *testing.T) {
	// With a tiny base-stream pool and strong skew, queries must collide
	// and the registry must reuse composite streams and operators.
	sys := testSystem(3)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 4
	cfg.NumQueries = 30
	cfg.Arities = []int{2}
	cfg.Zipf = 0
	w := Generate(sys, cfg)
	seen := map[dsps.StreamID]bool{}
	dups := 0
	for _, q := range w.Queries {
		if seen[q] {
			dups++
		}
		seen[q] = true
	}
	if dups == 0 {
		t.Fatal("expected duplicate queries with 4 base streams and 30 2-way joins")
	}
	// At most C(4,2)=6 distinct 2-way join operators exist.
	joins := 0
	for _, op := range sys.Operators {
		if len(op.Inputs) == 2 {
			joins++
		}
	}
	if joins > 6 {
		t.Fatalf("operator space not canonicalised: %d binary joins", joins)
	}
}

func TestPlanSpaceCompleteness3Way(t *testing.T) {
	// A single 3-way query over {a,b,c} must register: three 2-way
	// sub-joins and three ways to build the 3-way result.
	sys := testSystem(2)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 3
	cfg.NumQueries = 1
	cfg.Arities = []int{3}
	w := Generate(sys, cfg)
	q := w.Queries[0]
	producers := sys.ProducersOf(q)
	if len(producers) != 3 {
		t.Fatalf("3-way stream has %d producers, want 3 (one per split)", len(producers))
	}
	// Total operators: 3 pair joins + 3 top joins.
	if len(sys.Operators) != 6 {
		t.Fatalf("operator space has %d ops, want 6", len(sys.Operators))
	}
}

func TestCompositeRateOrderIndependent(t *testing.T) {
	// The rate of a composite stream depends only on its base set, so all
	// producers of the same stream imply one consistent rate.
	sys := testSystem(2)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 4
	cfg.NumQueries = 5
	cfg.Arities = []int{4}
	w := Generate(sys, cfg)
	for _, q := range w.Queries {
		rate := sys.Streams[q].Rate
		if rate <= 0 {
			t.Fatalf("non-positive composite rate %v", rate)
		}
		if rate >= cfg.BaseRate {
			t.Fatalf("composite rate %v not reduced below base rate (selectivity)", rate)
		}
	}
}

func TestCompositeRatesDecreaseWithArity(t *testing.T) {
	f := func(seed int64) bool {
		sys := testSystem(2)
		cfg := DefaultConfig()
		cfg.NumBaseStreams = 6
		cfg.NumQueries = 2
		cfg.Arities = []int{4}
		cfg.Seed = seed
		w := Generate(sys, cfg)
		// Walk the producers: every join's output rate must be below the
		// product of its input rates (selectivity < 1 after scaling).
		for _, op := range sys.Operators {
			out := sys.Streams[op.Output].Rate
			in := 1.0
			for _, s := range op.Inputs {
				in *= sys.Streams[s].Rate
			}
			if out > in {
				return false
			}
		}
		_ = w
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	// With a strong skew, the most popular base stream must appear far
	// more often than the least popular one.
	sys := testSystem(3)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 50
	cfg.NumQueries = 300
	cfg.Arities = []int{2}
	cfg.Zipf = 1.5
	w := Generate(sys, cfg)
	counts := map[dsps.StreamID]int{}
	for _, q := range w.Queries {
		for _, op := range sys.ProducersOf(q) {
			for _, in := range sys.Operators[op].Inputs {
				if sys.Streams[in].IsBase() {
					counts[in]++
				}
			}
		}
	}
	if counts[w.BaseStreams[0]] <= counts[w.BaseStreams[49]] {
		t.Fatalf("no skew: first=%d last=%d", counts[w.BaseStreams[0]], counts[w.BaseStreams[49]])
	}
}

func TestZipfZeroIsRoughlyUniform(t *testing.T) {
	sys := testSystem(3)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 10
	cfg.NumQueries = 500
	cfg.Arities = []int{2}
	cfg.Zipf = 0
	w := Generate(sys, cfg)
	counts := make(map[dsps.StreamID]int)
	total := 0
	for _, q := range w.Queries {
		producers := sys.ProducersOf(q)
		op := sys.Operators[producers[0]]
		for _, in := range op.Inputs {
			if sys.Streams[in].IsBase() {
				counts[in]++
				total++
			}
		}
	}
	mean := float64(total) / 10
	for s, c := range counts {
		if math.Abs(float64(c)-mean) > mean*0.6 {
			t.Fatalf("stream %d count %d deviates wildly from uniform mean %.1f", s, c, mean)
		}
	}
}

func TestOperatorCostsPositive(t *testing.T) {
	sys := testSystem(3)
	cfg := DefaultConfig()
	cfg.NumBaseStreams = 12
	cfg.NumQueries = 10
	w := Generate(sys, cfg)
	_ = w
	for _, op := range sys.Operators {
		if op.Cost <= 0 {
			t.Fatalf("operator %d has non-positive cost %v", op.ID, op.Cost)
		}
	}
}

func TestSubsetOfAndPopcount(t *testing.T) {
	set := []dsps.StreamID{10, 20, 30}
	got := subsetOf(set, 0b101)
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("subsetOf: %v", got)
	}
	if popcount(0b1011) != 3 {
		t.Fatal("popcount wrong")
	}
}

func TestSelectivityDeterministicInRange(t *testing.T) {
	sys := testSystem(2)
	w := &Workload{Sys: sys, cfg: DefaultConfig(), registry: map[string]dsps.StreamID{}, opKeys: map[string]bool{}}
	s1 := w.selectivity("1,2,3")
	s2 := w.selectivity("1,2,3")
	if s1 != s2 {
		t.Fatal("selectivity not deterministic")
	}
	if s1 < w.cfg.SelMin || s1 > w.cfg.SelMax {
		t.Fatalf("selectivity %v outside [%v,%v]", s1, w.cfg.SelMin, w.cfg.SelMax)
	}
}
