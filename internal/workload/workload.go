// Package workload generates the synthetic query workloads of §V of the
// SQPR paper: join queries over base streams chosen with a Zipf
// distribution, with join selectivities in a configurable range.
//
// Composite streams are canonicalised by their base-stream set: two
// sub-queries producing the same set are the *same* stream, which is
// exactly the paper's notion of stream equivalence ("produced by the same
// operators using the same input streams") and is what creates reuse
// opportunities. For every query the full space of binary join trees is
// registered as alternative operators, so planners can pick any join order.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"sqpr/internal/dsps"
)

// SystemConfig describes the simulated data-centre substrate.
type SystemConfig struct {
	NumHosts int
	// CPUPerHost is ζ_h, in abstract cost units.
	CPUPerHost float64
	// OutBW and InBW are β_h in rate units (e.g. Mbps).
	OutBW, InBW float64
	// LinkCap is κ_hm for all pairs.
	LinkCap float64
}

// BuildSystem creates a homogeneous system per the config.
func BuildSystem(cfg SystemConfig) *dsps.System {
	hosts := make([]dsps.Host, cfg.NumHosts)
	for i := range hosts {
		hosts[i] = dsps.Host{
			ID:    dsps.HostID(i),
			CPU:   cfg.CPUPerHost,
			OutBW: cfg.OutBW,
			InBW:  cfg.InBW,
		}
	}
	return dsps.NewSystem(hosts, cfg.LinkCap)
}

// Config describes a query workload.
type Config struct {
	// NumBaseStreams is the number of externally injected streams.
	NumBaseStreams int
	// BaseRate is the average data rate of each base stream.
	BaseRate float64
	// Zipf is the skew of base-stream popularity; 0 means uniform. The
	// paper uses 1 for most experiments.
	Zipf float64
	// Arities lists the join widths to draw from in equal parts
	// (paper: 2-, 3- and 4-way joins).
	Arities []int
	// NumQueries is the number of queries to generate.
	NumQueries int
	// SelMin and SelMax bound the per-join selectivity (paper: 0.001–0.005).
	SelMin, SelMax float64
	// CostPerRate converts aggregate input rate into operator CPU cost γ.
	CostPerRate float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig mirrors the paper's simulation workload at reduced scale.
func DefaultConfig() Config {
	return Config{
		NumBaseStreams: 120,
		BaseRate:       10,
		Zipf:           1,
		Arities:        []int{2, 3, 4},
		NumQueries:     200,
		SelMin:         0.001,
		SelMax:         0.005,
		CostPerRate:    0.05,
		Seed:           1,
	}
}

// Workload is a generated query sequence over a system.
type Workload struct {
	Sys *dsps.System
	// Queries holds the requested result streams in submission order.
	// Duplicate entries are possible (the same query submitted twice).
	Queries []dsps.StreamID
	// BaseStreams lists the generated base streams.
	BaseStreams []dsps.StreamID

	cfg      Config
	registry map[string]dsps.StreamID // canonical base-set -> composite stream
	opKeys   map[string]bool          // dedup of registered operators
}

// Generate builds a workload into sys: base streams are placed uniformly at
// random across hosts, queries are joins over Zipf-chosen base streams, and
// the full join-tree operator space of each query is registered.
func Generate(sys *dsps.System, cfg Config) *Workload {
	// The generator is private and seeded from the config: workload
	// synthesis never touches global math/rand state, so the same Config
	// always yields the same system and query stream regardless of what
	// else runs in the process.
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{
		Sys:      sys,
		cfg:      cfg,
		registry: make(map[string]dsps.StreamID),
		opKeys:   make(map[string]bool),
	}
	for i := 0; i < cfg.NumBaseStreams; i++ {
		s := sys.AddStream(cfg.BaseRate, dsps.NoOperator, fmt.Sprintf("base%d", i))
		sys.PlaceBase(dsps.HostID(rng.Intn(sys.NumHosts())), s)
		w.BaseStreams = append(w.BaseStreams, s)
	}
	z := newZipf(rng, cfg.Zipf, cfg.NumBaseStreams)
	for q := 0; q < cfg.NumQueries; q++ {
		k := cfg.Arities[q%len(cfg.Arities)]
		set := w.sampleDistinct(z, k)
		result := w.registerPlanSpace(set)
		sys.SetRequested(result, true)
		w.Queries = append(w.Queries, result)
	}
	return w
}

// sampleDistinct draws k distinct base streams.
func (w *Workload) sampleDistinct(z *zipf, k int) []dsps.StreamID {
	seen := make(map[int]bool, k)
	out := make([]dsps.StreamID, 0, k)
	for len(out) < k {
		i := z.next()
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, w.BaseStreams[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func setKey(set []dsps.StreamID) string {
	parts := make([]string, len(set))
	for i, s := range set {
		parts[i] = fmt.Sprint(int(s))
	}
	return strings.Join(parts, ",")
}

// selectivity derives a deterministic per-set selectivity inside
// [SelMin, SelMax] from a hash of the canonical key, so that stream
// identity implies identical rates regardless of join order or query.
func (w *Workload) selectivity(key string) float64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	frac := float64(h%10000) / 10000
	return w.cfg.SelMin + frac*(w.cfg.SelMax-w.cfg.SelMin)
}

// compositeRate computes the canonical rate of the composite stream over
// the given base set: Π rates · σ^(|set|−1). Being a pure function of the
// set, every join order yields the same rate.
func (w *Workload) compositeRate(set []dsps.StreamID) float64 {
	key := setKey(set)
	sel := w.selectivity(key)
	rate := 1.0
	for _, s := range set {
		rate *= w.Sys.Streams[s].Rate
	}
	return rate * math.Pow(sel, float64(len(set)-1))
}

// streamFor returns (creating if needed) the canonical composite stream for
// a base set. Singleton sets return the base stream itself.
func (w *Workload) streamFor(set []dsps.StreamID) dsps.StreamID {
	if len(set) == 1 {
		return set[0]
	}
	key := setKey(set)
	if s, ok := w.registry[key]; ok {
		return s
	}
	// Producer is registered separately; create the stream with a dummy
	// producer that is patched by the first registered operator.
	s := w.Sys.AddStream(w.compositeRate(set), dsps.NoOperator, "join{"+key+"}")
	// Mark it as composite by assigning the producer when operators are
	// registered below; until then flag it with a sentinel so IsBase is
	// false. We use the producer of the first operator added for it.
	w.registry[key] = s
	return s
}

// registerPlanSpace registers, for every subset T of the base set with
// |T| >= 2 and every unordered split {A, T\A}, a join operator
// stream(A) ⋈ stream(T\A) → stream(T). Returns the full-set stream.
func (w *Workload) registerPlanSpace(set []dsps.StreamID) dsps.StreamID {
	n := len(set)
	full := (1 << n) - 1
	// Ensure streams exist for all subsets of size >= 2 (and remember the
	// stream of each mask).
	streams := make([]dsps.StreamID, full+1)
	for mask := 1; mask <= full; mask++ {
		sub := subsetOf(set, mask)
		streams[mask] = w.streamFor(sub)
	}
	for mask := 1; mask <= full; mask++ {
		if popcount(mask) < 2 {
			continue
		}
		out := streams[mask]
		// Enumerate unordered splits: iterate submasks a with a < mask^a
		// complement comparison to visit each pair once.
		for a := (mask - 1) & mask; a > 0; a = (a - 1) & mask {
			b := mask &^ a
			if a > b {
				continue // unordered: visit each split once
			}
			inA, inB := streams[a], streams[b]
			key := fmt.Sprintf("%d+%d->%d", inA, inB, out)
			if w.opKeys[key] {
				continue
			}
			w.opKeys[key] = true
			cost := w.cfg.CostPerRate * (w.Sys.Streams[inA].Rate + w.Sys.Streams[inB].Rate)
			op := w.Sys.AddProducerFor(out, []dsps.StreamID{inA, inB}, cost, "join")
			if w.Sys.Streams[out].Producer == dsps.NoOperator {
				w.Sys.Streams[out].Producer = op.ID
			}
		}
	}
	return streams[full]
}

func subsetOf(set []dsps.StreamID, mask int) []dsps.StreamID {
	var out []dsps.StreamID
	for i := 0; i < len(set); i++ {
		if mask&(1<<i) != 0 {
			out = append(out, set[i])
		}
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// zipf samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s; s = 0 yields
// the uniform distribution. Implemented directly (math/rand's Zipf does not
// support s <= 1).
type zipf struct {
	rng *rand.Rand
	cdf []float64
}

func newZipf(rng *rand.Rand, s float64, n int) *zipf {
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{rng: rng, cdf: cdf}
}

func (z *zipf) next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
