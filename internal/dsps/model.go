// Package dsps defines the system, query and resource model of §II of the
// SQPR paper: hosts with CPU and bandwidth budgets, base and composite data
// streams, query operators, and assignments of operators/flows to hosts.
// It also provides full resource accounting and a feasibility validator
// implementing constraints (III.4)–(III.7) of the optimisation model,
// including the acyclicity (causality) requirement.
package dsps

import (
	"fmt"
	"math"
)

// HostID identifies a processing host.
type HostID int

// StreamID identifies a base or composite data stream.
type StreamID int

// OperatorID identifies a query operator.
type OperatorID int

// NoOperator marks a stream with no producing operator (a base stream).
const NoOperator OperatorID = -1

// HostState is the availability state of a host under churn.
type HostState int8

// Host states. The zero value is HostUp, so systems built before host
// churn existed behave unchanged.
const (
	// HostUp: the host runs its allocations and accepts new ones.
	HostUp HostState = iota
	// HostDraining: existing allocations keep running, but planners avoid
	// placing new load and repair migrates allocations off best-effort.
	HostDraining
	// HostDown: the host has failed. Every operator, flow endpoint and
	// provide on it is invalid and must be repaired or dropped.
	HostDown
)

// String returns a readable name for the state.
func (st HostState) String() string {
	switch st {
	case HostUp:
		return "up"
	case HostDraining:
		return "draining"
	case HostDown:
		return "down"
	}
	return fmt.Sprintf("HostState(%d)", int8(st))
}

// Host models one processing host of the DSPS.
type Host struct {
	ID HostID
	// CPU is the computational budget ζ_h (e.g. aggregate core capacity).
	CPU float64
	// OutBW is the outgoing host bandwidth β_h of the network interface.
	OutBW float64
	// InBW is the incoming host bandwidth; the paper's constraint (III.6b)
	// uses the same symbol β for both directions.
	InBW float64
	// Mem is the memory budget for operator state (window contents). The
	// paper lists memory as future work ("support for more resources
	// (including memory)"); it is modelled exactly like CPU: per-host,
	// consumed by placed operators. Zero means unconstrained.
	Mem float64
	// State is the host's availability under churn (up by default).
	State HostState
}

// Stream models one data stream.
type Stream struct {
	ID StreamID
	// Rate is the average data rate ̺_s.
	Rate float64
	// Producer is the operator whose output this stream is, or NoOperator
	// for base streams injected externally.
	Producer OperatorID
	// Requested is the indicator δ_s: true when some client asked for s as
	// a query result.
	Requested bool
	// Name is an optional human-readable label.
	Name string
}

// IsBase reports whether the stream is injected externally.
func (s *Stream) IsBase() bool { return s.Producer == NoOperator }

// Operator models one query operator o = (S_o, s_o, γ_o).
type Operator struct {
	ID OperatorID
	// Inputs is the input stream set S_o.
	Inputs []StreamID
	// Output is the single output stream s_o.
	Output StreamID
	// Cost is the computational cost γ_o consumed on the executing host.
	Cost float64
	// Mem is the operator's state footprint (e.g. window contents),
	// charged against Host.Mem when placed. Zero for stateless operators.
	Mem float64
	// Name is an optional human-readable label.
	Name string
}

// System is the static description of a DSPS: hosts, streams, operators,
// link capacities and base-stream placement.
type System struct {
	Hosts     []Host
	Streams   []Stream
	Operators []Operator

	// LinkCap[h][m] is the network capacity κ_hm between hosts h and m.
	LinkCap [][]float64

	// baseAt[h] is the set S⁰_h of base streams available at host h.
	baseAt []map[StreamID]bool
	// baseHosts[s] lists the hosts providing base stream s.
	baseHosts map[StreamID][]HostID

	// producersOf[s] lists every operator with output s (alternative ways
	// to produce the same composite stream, e.g. different join orders).
	producersOf map[StreamID][]OperatorID
}

// NewSystem creates a system with the given hosts, all pairwise link
// capacities set to linkCap, and no streams or operators yet.
func NewSystem(hosts []Host, linkCap float64) *System {
	s := &System{
		Hosts:       hosts,
		baseAt:      make([]map[StreamID]bool, len(hosts)),
		baseHosts:   make(map[StreamID][]HostID),
		producersOf: make(map[StreamID][]OperatorID),
	}
	for i := range s.baseAt {
		s.baseAt[i] = make(map[StreamID]bool)
	}
	s.LinkCap = make([][]float64, len(hosts))
	for i := range s.LinkCap {
		s.LinkCap[i] = make([]float64, len(hosts))
		for j := range s.LinkCap[i] {
			if i != j {
				s.LinkCap[i][j] = linkCap
			}
		}
	}
	return s
}

// AddStream registers a stream and returns its ID.
func (sys *System) AddStream(rate float64, producer OperatorID, name string) StreamID {
	id := StreamID(len(sys.Streams))
	sys.Streams = append(sys.Streams, Stream{ID: id, Rate: rate, Producer: producer, Name: name})
	return id
}

// AddOperator registers an operator producing a fresh output stream with
// the given rate, and returns the operator. Alternative producers for an
// existing stream can be registered with AddProducerFor.
func (sys *System) AddOperator(inputs []StreamID, outRate, cost float64, name string) *Operator {
	oid := OperatorID(len(sys.Operators))
	out := sys.AddStream(outRate, oid, name)
	in := make([]StreamID, len(inputs))
	copy(in, inputs)
	sys.Operators = append(sys.Operators, Operator{ID: oid, Inputs: in, Output: out, Cost: cost, Name: name})
	sys.producersOf[out] = append(sys.producersOf[out], oid)
	return &sys.Operators[oid]
}

// AddProducerFor registers an additional operator that produces an existing
// stream (an alternative plan for the same composite stream).
func (sys *System) AddProducerFor(out StreamID, inputs []StreamID, cost float64, name string) *Operator {
	oid := OperatorID(len(sys.Operators))
	in := make([]StreamID, len(inputs))
	copy(in, inputs)
	sys.Operators = append(sys.Operators, Operator{ID: oid, Inputs: in, Output: out, Cost: cost, Name: name})
	sys.producersOf[out] = append(sys.producersOf[out], oid)
	return &sys.Operators[oid]
}

// PlaceBase marks base stream s as available at host h (s ∈ S⁰_h).
func (sys *System) PlaceBase(h HostID, s StreamID) {
	if !sys.baseAt[h][s] {
		sys.baseAt[h][s] = true
		sys.baseHosts[s] = append(sys.baseHosts[s], h)
	}
}

// IsBaseAt reports whether base stream s is available at host h.
func (sys *System) IsBaseAt(h HostID, s StreamID) bool { return sys.baseAt[h][s] }

// BaseHosts returns the hosts at which base stream s is available.
func (sys *System) BaseHosts(s StreamID) []HostID { return sys.baseHosts[s] }

// ProducersOf returns the operators whose output is stream s.
func (sys *System) ProducersOf(s StreamID) []OperatorID { return sys.producersOf[s] }

// SetRequested marks stream s as a requested query result (δ_s = 1).
func (sys *System) SetRequested(s StreamID, v bool) { sys.Streams[s].Requested = v }

// NumHosts returns |H|.
func (sys *System) NumHosts() int { return len(sys.Hosts) }

// SetHostState transitions host h to the given availability state.
func (sys *System) SetHostState(h HostID, st HostState) { sys.Hosts[h].State = st }

// HostUsable reports whether host h can keep running its existing
// allocations (up or draining). Down hosts are unusable.
func (sys *System) HostUsable(h HostID) bool { return sys.Hosts[h].State != HostDown }

// HostPlaceable reports whether host h may receive new load (up only;
// draining hosts keep what they have but are avoided for fresh placements).
func (sys *System) HostPlaceable(h HostID) bool { return sys.Hosts[h].State == HostUp }

// UsableCPU returns Σ ζ_h over usable (non-down) hosts — the aggregate CPU
// the system can actually deliver under the current host states.
func (sys *System) UsableCPU() float64 {
	var sum float64
	for i := range sys.Hosts {
		if sys.Hosts[i].State != HostDown {
			sum += sys.Hosts[i].CPU
		}
	}
	return sum
}

// DownHosts returns the hosts currently down, in ascending order.
func (sys *System) DownHosts() []HostID {
	var out []HostID
	for i := range sys.Hosts {
		if sys.Hosts[i].State == HostDown {
			out = append(out, HostID(i))
		}
	}
	return out
}

// TotalCPU returns Σ_h ζ_h.
func (sys *System) TotalCPU() float64 {
	var sum float64
	for _, h := range sys.Hosts {
		sum += h.CPU
	}
	return sum
}

// TotalOutBW returns Σ_h β_h.
func (sys *System) TotalOutBW() float64 {
	var sum float64
	for _, h := range sys.Hosts {
		sum += h.OutBW
	}
	return sum
}

// TotalLinkCap returns Σ_{h,m} κ_hm.
func (sys *System) TotalLinkCap() float64 {
	var sum float64
	for _, row := range sys.LinkCap {
		for _, c := range row {
			sum += c
		}
	}
	return sum
}

// Validate checks referential integrity of the system description.
func (sys *System) Validate() error {
	// IDs are canonical slice indices: ProducersOf results and assignment
	// keys index these tables directly, so a decoded system with shifted
	// IDs would panic later instead of erroring here.
	for i := range sys.Hosts {
		if sys.Hosts[i].ID != HostID(i) {
			return fmt.Errorf("dsps: host at index %d has ID %d", i, sys.Hosts[i].ID)
		}
	}
	for i := range sys.Streams {
		if sys.Streams[i].ID != StreamID(i) {
			return fmt.Errorf("dsps: stream at index %d has ID %d", i, sys.Streams[i].ID)
		}
	}
	for i := range sys.Operators {
		if sys.Operators[i].ID != OperatorID(i) {
			return fmt.Errorf("dsps: operator at index %d has ID %d", i, sys.Operators[i].ID)
		}
	}
	for _, o := range sys.Operators {
		if int(o.Output) < 0 || int(o.Output) >= len(sys.Streams) {
			return fmt.Errorf("dsps: operator %d output stream %d out of range", o.ID, o.Output)
		}
		if len(o.Inputs) == 0 {
			return fmt.Errorf("dsps: operator %d has no inputs", o.ID)
		}
		for _, in := range o.Inputs {
			if int(in) < 0 || int(in) >= len(sys.Streams) {
				return fmt.Errorf("dsps: operator %d input stream %d out of range", o.ID, in)
			}
			if in == o.Output {
				return fmt.Errorf("dsps: operator %d consumes its own output", o.ID)
			}
		}
		if o.Cost < 0 {
			return fmt.Errorf("dsps: operator %d has negative cost", o.ID)
		}
	}
	for _, st := range sys.Streams {
		if st.Rate < 0 || math.IsNaN(st.Rate) {
			return fmt.Errorf("dsps: stream %d has invalid rate %v", st.ID, st.Rate)
		}
		if st.Producer != NoOperator {
			if int(st.Producer) < 0 || int(st.Producer) >= len(sys.Operators) {
				return fmt.Errorf("dsps: stream %d producer %d out of range", st.ID, st.Producer)
			}
			if sys.Operators[st.Producer].Output != st.ID {
				return fmt.Errorf("dsps: stream %d producer %d outputs stream %d", st.ID, st.Producer, sys.Operators[st.Producer].Output)
			}
		}
	}
	for _, h := range sys.Hosts {
		switch h.State {
		case HostUp, HostDraining, HostDown:
		default:
			return fmt.Errorf("dsps: host %d has unknown state %d", h.ID, int8(h.State))
		}
	}
	if len(sys.LinkCap) != len(sys.Hosts) {
		return fmt.Errorf("dsps: link capacity matrix size %d != host count %d", len(sys.LinkCap), len(sys.Hosts))
	}
	for i, row := range sys.LinkCap {
		if len(row) != len(sys.Hosts) {
			return fmt.Errorf("dsps: link capacity row %d size %d != host count %d", i, len(row), len(sys.Hosts))
		}
	}
	return nil
}
