package dsps

import (
	"testing"
)

func smallSystem() *System {
	hosts := []Host{
		{ID: 0, CPU: 10, OutBW: 50, InBW: 50},
		{ID: 1, CPU: 10, OutBW: 50, InBW: 50},
		{ID: 2, CPU: 10, OutBW: 50, InBW: 50},
	}
	return NewSystem(hosts, 30)
}

func TestAddStreamAndOperator(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	op := sys.AddOperator([]StreamID{a, b}, 2, 1.5, "a⋈b")
	if !sys.Streams[a].IsBase() || !sys.Streams[b].IsBase() {
		t.Fatal("base streams misclassified")
	}
	if sys.Streams[op.Output].IsBase() {
		t.Fatal("composite stream classified as base")
	}
	if got := sys.ProducersOf(op.Output); len(got) != 1 || got[0] != op.ID {
		t.Fatalf("producers: %v", got)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddProducerForRegistersAlternative(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	c := sys.AddStream(5, NoOperator, "c")
	op1 := sys.AddOperator([]StreamID{a, b}, 2, 1, "ab")
	op2 := sys.AddProducerFor(op1.Output, []StreamID{b, c}, 1, "bc-alt")
	got := sys.ProducersOf(op1.Output)
	if len(got) != 2 || got[0] != op1.ID || got[1] != op2.ID {
		t.Fatalf("producers: %v", got)
	}
}

func TestPlaceBaseIdempotent(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	sys.PlaceBase(1, a)
	sys.PlaceBase(1, a)
	if got := sys.BaseHosts(a); len(got) != 1 || got[0] != 1 {
		t.Fatalf("base hosts: %v", got)
	}
	if !sys.IsBaseAt(1, a) || sys.IsBaseAt(0, a) {
		t.Fatal("IsBaseAt wrong")
	}
}

func TestTotals(t *testing.T) {
	sys := smallSystem()
	if sys.TotalCPU() != 30 {
		t.Fatalf("total cpu %v", sys.TotalCPU())
	}
	if sys.TotalOutBW() != 150 {
		t.Fatalf("total out bw %v", sys.TotalOutBW())
	}
	// 3 hosts, 6 directed pairs at 30 each.
	if sys.TotalLinkCap() != 180 {
		t.Fatalf("total link cap %v", sys.TotalLinkCap())
	}
}

func TestValidateCatchesBadOperator(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	op := sys.AddOperator([]StreamID{a}, 1, 1, "id")
	// Corrupt: operator consuming its own output.
	sys.Operators[op.ID].Inputs = []StreamID{op.Output}
	if err := sys.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestAssignmentValidateHappyPath(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(1, b)
	op := sys.AddOperator([]StreamID{a, b}, 2, 1, "ab")
	sys.SetRequested(op.Output, true)

	asg := NewAssignment()
	asg.Flows[Flow{From: 1, To: 0, Stream: b}] = true
	asg.Ops[Placement{Host: 0, Op: op.ID}] = true
	asg.Provides[op.Output] = 0
	if err := asg.Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMissingInput(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(1, b)
	op := sys.AddOperator([]StreamID{a, b}, 2, 1, "ab")
	sys.SetRequested(op.Output, true)

	asg := NewAssignment()
	asg.Ops[Placement{Host: 0, Op: op.ID}] = true // b never brought to host 0
	if err := asg.Validate(sys); err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestValidateRejectsUnrequestedProvide(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	sys.PlaceBase(0, a)
	asg := NewAssignment()
	asg.Provides[a] = 0
	if err := asg.Validate(sys); err == nil {
		t.Fatal("expected unrequested-provide error")
	}
}

func TestValidateRejectsCPUOverflow(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]StreamID{a, b}, 1, 100, "heavy") // cost 100 > 10
	sys.SetRequested(op.Output, true)
	asg := NewAssignment()
	asg.Ops[Placement{Host: 0, Op: op.ID}] = true
	asg.Provides[op.Output] = 0
	if err := asg.Validate(sys); err == nil {
		t.Fatal("expected CPU overflow error")
	}
}

func TestValidateRejectsLinkOverflow(t *testing.T) {
	sys := smallSystem()
	// Link capacity 30; push 4 streams of rate 10 over the same link.
	var streams []StreamID
	for i := 0; i < 4; i++ {
		s := sys.AddStream(10, NoOperator, "s")
		sys.PlaceBase(0, s)
		streams = append(streams, s)
	}
	asg := NewAssignment()
	for _, s := range streams {
		asg.Flows[Flow{From: 0, To: 1, Stream: s}] = true
	}
	if err := asg.Validate(sys); err == nil {
		t.Fatal("expected link overflow error")
	}
}

func TestValidateRejectsAcausalCycle(t *testing.T) {
	// The self-sustaining feedback loop of §III: two hosts exchange a
	// stream neither can originate. Availability constraints alone admit
	// it; the causality check must reject it.
	sys := smallSystem()
	s := sys.AddStream(5, NoOperator, "phantom")
	sys.PlaceBase(2, s) // base exists only at host 2, which is not involved
	asg := NewAssignment()
	asg.Flows[Flow{From: 0, To: 1, Stream: s}] = true
	asg.Flows[Flow{From: 1, To: 0, Stream: s}] = true
	if err := asg.Validate(sys); err == nil {
		t.Fatal("expected acausality error")
	}
}

func TestValidateAcceptsRelayChain(t *testing.T) {
	// Relays are legal: base at 0, relayed 0→1→2 where an operator uses it.
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(2, b)
	op := sys.AddOperator([]StreamID{a, b}, 1, 1, "ab")
	sys.SetRequested(op.Output, true)
	asg := NewAssignment()
	asg.Flows[Flow{From: 0, To: 1, Stream: a}] = true
	asg.Flows[Flow{From: 1, To: 2, Stream: a}] = true
	asg.Ops[Placement{Host: 2, Op: op.ID}] = true
	asg.Provides[op.Output] = 2
	if err := asg.Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestComputeUsage(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(7, NoOperator, "a")
	b := sys.AddStream(3, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]StreamID{a, b}, 2, 4, "ab")
	sys.SetRequested(op.Output, true)
	asg := NewAssignment()
	asg.Flows[Flow{From: 0, To: 1, Stream: a}] = true
	asg.Flows[Flow{From: 0, To: 1, Stream: b}] = true
	asg.Ops[Placement{Host: 1, Op: op.ID}] = true
	asg.Provides[op.Output] = 1

	u := asg.ComputeUsage(sys)
	if u.CPU[1] != 4 {
		t.Fatalf("cpu[1] = %v", u.CPU[1])
	}
	if u.Out[0] != 10 { // 7 + 3 flowing out
		t.Fatalf("out[0] = %v", u.Out[0])
	}
	if u.In[1] != 10 {
		t.Fatalf("in[1] = %v", u.In[1])
	}
	if u.Out[1] != 2 { // delivery of result stream rate 2
		t.Fatalf("out[1] = %v", u.Out[1])
	}
	if u.Network != 10 {
		t.Fatalf("network = %v", u.Network)
	}
	if u.MaxCPU() != 4 || u.TotalCPU() != 4 {
		t.Fatalf("max/total cpu %v/%v", u.MaxCPU(), u.TotalCPU())
	}
}

func TestCloneIndependence(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	sys.PlaceBase(0, a)
	asg := NewAssignment()
	asg.Flows[Flow{From: 0, To: 1, Stream: a}] = true
	cl := asg.Clone()
	cl.Flows[Flow{From: 0, To: 2, Stream: a}] = true
	if len(asg.Flows) != 1 {
		t.Fatal("clone mutated original")
	}
}

func TestSortedAccessorsDeterministic(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	sys.PlaceBase(0, a)
	asg := NewAssignment()
	asg.Flows[Flow{From: 2, To: 1, Stream: a}] = true
	asg.Flows[Flow{From: 0, To: 1, Stream: a}] = true
	f := asg.SortedFlows()
	if len(f) != 2 || f[0].From != 0 || f[1].From != 2 {
		t.Fatalf("sorted flows: %v", f)
	}
}

func TestAvailableViaProducer(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]StreamID{a, b}, 2, 1, "ab")
	asg := NewAssignment()
	asg.Ops[Placement{Host: 0, Op: op.ID}] = true
	if !asg.Available(sys, 0, op.Output) {
		t.Fatal("output should be available at producing host")
	}
	if asg.Available(sys, 1, op.Output) {
		t.Fatal("output should not be available elsewhere")
	}
}
