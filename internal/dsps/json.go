package dsps

import (
	"encoding/json"
	"fmt"
	"io"
)

// Serialisation: systems and assignments round-trip through JSON so that
// plans can be stored, inspected, shipped to hosts, or validated offline
// (cmd/sqpr-plan prints them; a management layer would distribute them).

// systemJSON is the wire form of a System.
type systemJSON struct {
	Hosts     []Host         `json:"hosts"`
	Streams   []Stream       `json:"streams"`
	Operators []Operator     `json:"operators"`
	LinkCap   [][]float64    `json:"link_capacity"`
	Bases     []baseJSON     `json:"base_placements"`
	Version   int            `json:"version"`
	Extra     map[string]any `json:"extra,omitempty"`
}

type baseJSON struct {
	Host   HostID   `json:"host"`
	Stream StreamID `json:"stream"`
}

const wireVersion = 1

// MarshalJSON implements json.Marshaler for System.
func (sys *System) MarshalJSON() ([]byte, error) {
	out := systemJSON{
		Hosts:     sys.Hosts,
		Streams:   sys.Streams,
		Operators: sys.Operators,
		LinkCap:   sys.LinkCap,
		Version:   wireVersion,
	}
	for h := range sys.Hosts {
		for s := range sys.Streams {
			if sys.IsBaseAt(HostID(h), StreamID(s)) {
				out.Bases = append(out.Bases, baseJSON{HostID(h), StreamID(s)})
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for System.
func (sys *System) UnmarshalJSON(data []byte) error {
	var in systemJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dsps: decoding system: %w", err)
	}
	if in.Version != wireVersion {
		return fmt.Errorf("dsps: unsupported system version %d", in.Version)
	}
	rebuilt := NewSystem(in.Hosts, 0)
	rebuilt.LinkCap = in.LinkCap
	rebuilt.Streams = in.Streams
	rebuilt.Operators = in.Operators
	for i := range rebuilt.Operators {
		op := &rebuilt.Operators[i]
		rebuilt.producersOf[op.Output] = append(rebuilt.producersOf[op.Output], op.ID)
	}
	for _, b := range in.Bases {
		if int(b.Host) < 0 || int(b.Host) >= len(rebuilt.Hosts) {
			return fmt.Errorf("dsps: base placement host %d out of range", b.Host)
		}
		if int(b.Stream) < 0 || int(b.Stream) >= len(rebuilt.Streams) {
			return fmt.Errorf("dsps: base placement stream %d out of range", b.Stream)
		}
		rebuilt.PlaceBase(b.Host, b.Stream)
	}
	*sys = *rebuilt
	return sys.Validate()
}

// WriteSystem encodes the system as indented JSON to w.
func WriteSystem(w io.Writer, sys *System) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sys)
}

// ReadSystem decodes a system written by WriteSystem.
func ReadSystem(r io.Reader) (*System, error) {
	var sys System
	if err := json.NewDecoder(r).Decode(&sys); err != nil {
		return nil, err
	}
	return &sys, nil
}

// assignmentJSON is the wire form of an Assignment.
type assignmentJSON struct {
	Provides []provideJSON `json:"provides"`
	Flows    []Flow        `json:"flows"`
	Ops      []Placement   `json:"placements"`
	Version  int           `json:"version"`
}

type provideJSON struct {
	Stream StreamID `json:"stream"`
	Host   HostID   `json:"host"`
}

// MarshalJSON implements json.Marshaler for Assignment with deterministic
// ordering (sorted flows/placements).
func (a *Assignment) MarshalJSON() ([]byte, error) {
	out := assignmentJSON{Version: wireVersion}
	for _, f := range a.SortedFlows() {
		out.Flows = append(out.Flows, f)
	}
	out.Ops = a.SortedOps()
	// Provides sorted by stream for determinism.
	streams := make([]StreamID, 0, len(a.Provides))
	for s := range a.Provides {
		streams = append(streams, s)
	}
	for i := 1; i < len(streams); i++ {
		for j := i; j > 0 && streams[j] < streams[j-1]; j-- {
			streams[j], streams[j-1] = streams[j-1], streams[j]
		}
	}
	for _, s := range streams {
		out.Provides = append(out.Provides, provideJSON{s, a.Provides[s]})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Assignment.
func (a *Assignment) UnmarshalJSON(data []byte) error {
	var in assignmentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dsps: decoding assignment: %w", err)
	}
	if in.Version != wireVersion {
		return fmt.Errorf("dsps: unsupported assignment version %d", in.Version)
	}
	fresh := NewAssignment()
	for _, p := range in.Provides {
		if prev, dup := fresh.Provides[p.Stream]; dup {
			return fmt.Errorf("dsps: stream %d provided twice (hosts %d, %d)", p.Stream, prev, p.Host)
		}
		fresh.Provides[p.Stream] = p.Host
	}
	for _, f := range in.Flows {
		fresh.Flows[f] = true
	}
	for _, pl := range in.Ops {
		fresh.Ops[pl] = true
	}
	*a = *fresh
	return nil
}

// WriteAssignment encodes the assignment as indented JSON.
func WriteAssignment(w io.Writer, a *Assignment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadAssignment decodes an assignment written by WriteAssignment.
func ReadAssignment(r io.Reader) (*Assignment, error) {
	var a Assignment
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}
