package dsps

import (
	"fmt"
	"sort"
)

// Flow identifies one stream transfer between two hosts (variable x_hms).
type Flow struct {
	From, To HostID
	Stream   StreamID
}

// Placement identifies one operator execution on a host (variable z_ho).
type Placement struct {
	Host HostID
	Op   OperatorID
}

// Assignment is a complete allocation state of the DSPS: the (d, x, y, z)
// variables of the optimisation model in sparse form. The potentials p are
// not stored; causality is re-derivable (see Validate).
type Assignment struct {
	// Provides maps a requested stream to the host serving it to clients
	// (d_hs = 1). At most one host serves each stream (III.4b).
	Provides map[StreamID]HostID
	// Flows holds every active inter-host transfer (x_hms = 1).
	Flows map[Flow]bool
	// Ops holds every operator placement (z_ho = 1).
	Ops map[Placement]bool
}

// NewAssignment returns an empty allocation (the initial solution of
// Algorithm 1, line 1).
func NewAssignment() *Assignment {
	return &Assignment{
		Provides: make(map[StreamID]HostID),
		Flows:    make(map[Flow]bool),
		Ops:      make(map[Placement]bool),
	}
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	b := NewAssignment()
	for k, v := range a.Provides {
		b.Provides[k] = v
	}
	for k, v := range a.Flows {
		if v {
			b.Flows[k] = true
		}
	}
	for k, v := range a.Ops {
		if v {
			b.Ops[k] = true
		}
	}
	return b
}

// Available reports whether stream s is available at host h (the derived
// availability variable y_hs): s is a base stream at h, an inflow brings s
// to h, or an operator at h outputs s.
func (a *Assignment) Available(sys *System, h HostID, s StreamID) bool {
	if sys.IsBaseAt(h, s) {
		return true
	}
	for m := 0; m < sys.NumHosts(); m++ {
		if a.Flows[Flow{HostID(m), h, s}] {
			return true
		}
	}
	for _, op := range sys.ProducersOf(s) {
		if a.Ops[Placement{h, op}] {
			return true
		}
	}
	return false
}

// Usage is the resource consumption snapshot of an assignment.
type Usage struct {
	CPU     []float64   // per-host CPU use Σ_o γ_o z_ho
	Mem     []float64   // per-host memory use Σ_o mem_o z_ho
	Out     []float64   // per-host outgoing bandwidth incl. client deliveries
	In      []float64   // per-host incoming bandwidth
	Link    [][]float64 // per-link usage Σ_s ̺_s x_hms
	Network float64     // system-wide network usage (objective O2)
}

// ComputeUsage derives full resource consumption from the assignment.
func (a *Assignment) ComputeUsage(sys *System) *Usage {
	n := sys.NumHosts()
	u := &Usage{
		CPU:  make([]float64, n),
		Mem:  make([]float64, n),
		Out:  make([]float64, n),
		In:   make([]float64, n),
		Link: make([][]float64, n),
	}
	for i := range u.Link {
		u.Link[i] = make([]float64, n)
	}
	for pl, on := range a.Ops {
		if on {
			u.CPU[pl.Host] += sys.Operators[pl.Op].Cost
			u.Mem[pl.Host] += sys.Operators[pl.Op].Mem
		}
	}
	for f, on := range a.Flows {
		if !on {
			continue
		}
		rate := sys.Streams[f.Stream].Rate
		u.Link[f.From][f.To] += rate
		u.Out[f.From] += rate
		u.In[f.To] += rate
		u.Network += rate
	}
	for s, h := range a.Provides {
		u.Out[h] += sys.Streams[s].Rate // delivery to the client proxy (III.6c)
	}
	return u
}

// MaxCPU returns the largest per-host CPU consumption (objective O4).
func (u *Usage) MaxCPU() float64 {
	var m float64
	for _, c := range u.CPU {
		if c > m {
			m = c
		}
	}
	return m
}

// TotalCPU returns Σ CPU use (objective O3).
func (u *Usage) TotalCPU() float64 {
	var t float64
	for _, c := range u.CPU {
		t += c
	}
	return t
}

// Validate checks that the assignment is a feasible allocation for the
// system: demand, availability, resource and acyclicity constraints
// (III.4)–(III.7) all hold. It returns nil when feasible.
func (a *Assignment) Validate(sys *System) error {
	n := sys.NumHosts()

	// Host availability: nothing may run on, originate at, or terminate at a
	// down host. Draining hosts remain valid for existing allocations.
	for pl, on := range a.Ops {
		if on && !sys.HostUsable(pl.Host) {
			return fmt.Errorf("dsps: operator %d placed on down host %d", pl.Op, pl.Host)
		}
	}
	for f, on := range a.Flows {
		if !on {
			continue
		}
		if !sys.HostUsable(f.From) {
			return fmt.Errorf("dsps: flow of stream %d from down host %d", f.Stream, f.From)
		}
		if !sys.HostUsable(f.To) {
			return fmt.Errorf("dsps: flow of stream %d to down host %d", f.Stream, f.To)
		}
	}
	for s, h := range a.Provides {
		if !sys.HostUsable(h) {
			return fmt.Errorf("dsps: stream %d provided by down host %d", s, h)
		}
	}

	// (III.4a) a provider must possess the stream, and the stream must be
	// requested; (III.4b) one host per stream is enforced by the map type.
	for s, h := range a.Provides {
		if !sys.Streams[s].Requested {
			return fmt.Errorf("dsps: host %d provides unrequested stream %d", h, s)
		}
		if !a.Available(sys, h, s) {
			return fmt.Errorf("dsps: host %d provides stream %d without possessing it", h, s)
		}
	}

	// (III.5b) every placed operator has all inputs available locally.
	for pl, on := range a.Ops {
		if !on {
			continue
		}
		op := sys.Operators[pl.Op]
		for _, in := range op.Inputs {
			if !a.Available(sys, pl.Host, in) {
				return fmt.Errorf("dsps: operator %d on host %d missing input stream %d", pl.Op, pl.Host, in)
			}
		}
	}

	// (III.5c) a host may only send streams it possesses. Possession via
	// inflow is checked causally below; here we check the static form.
	for f, on := range a.Flows {
		if !on {
			continue
		}
		if f.From == f.To {
			return fmt.Errorf("dsps: self-flow of stream %d at host %d", f.Stream, f.From)
		}
		if !a.Available(sys, f.From, f.Stream) {
			return fmt.Errorf("dsps: host %d sends stream %d it does not possess", f.From, f.Stream)
		}
	}

	// (III.6) resource budgets.
	u := a.ComputeUsage(sys)
	const tol = 1e-6
	for h := 0; h < n; h++ {
		if u.CPU[h] > sys.Hosts[h].CPU+tol {
			return fmt.Errorf("dsps: host %d CPU %.3f exceeds budget %.3f", h, u.CPU[h], sys.Hosts[h].CPU)
		}
		if sys.Hosts[h].Mem > 0 && u.Mem[h] > sys.Hosts[h].Mem+tol {
			return fmt.Errorf("dsps: host %d memory %.3f exceeds budget %.3f", h, u.Mem[h], sys.Hosts[h].Mem)
		}
		if u.Out[h] > sys.Hosts[h].OutBW+tol {
			return fmt.Errorf("dsps: host %d out-bandwidth %.3f exceeds budget %.3f", h, u.Out[h], sys.Hosts[h].OutBW)
		}
		if u.In[h] > sys.Hosts[h].InBW+tol {
			return fmt.Errorf("dsps: host %d in-bandwidth %.3f exceeds budget %.3f", h, u.In[h], sys.Hosts[h].InBW)
		}
		for m := 0; m < n; m++ {
			if u.Link[h][m] > sys.LinkCap[h][m]+tol {
				return fmt.Errorf("dsps: link %d->%d usage %.3f exceeds capacity %.3f", h, m, u.Link[h][m], sys.LinkCap[h][m])
			}
		}
	}

	// (III.7) acyclicity / causality: every availability must be derivable
	// from base streams and placed operators without feedback loops.
	return a.validateCausality(sys)
}

// validateCausality performs a fixed-point derivation of availability: a
// stream becomes available at a host if it is a base stream there, if a
// placed operator with all inputs already derived outputs it there, or if
// an in-flow from a host where it is already derived carries it. Any
// flow or operator input that can never be derived indicates an acausal
// cycle (the self-sustaining feedback the potentials p exclude).
func (a *Assignment) validateCausality(sys *System) error {
	type hs struct {
		h HostID
		s StreamID
	}
	derived := make(map[hs]bool)
	// Seed with base streams actually used somewhere.
	for h := range sys.Hosts {
		for s := range sys.Streams {
			if sys.IsBaseAt(HostID(h), StreamID(s)) {
				derived[hs{HostID(h), StreamID(s)}] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for pl, on := range a.Ops {
			if !on {
				continue
			}
			op := sys.Operators[pl.Op]
			if derived[hs{pl.Host, op.Output}] {
				continue
			}
			ok := true
			for _, in := range op.Inputs {
				if !derived[hs{pl.Host, in}] {
					ok = false
					break
				}
			}
			if ok {
				derived[hs{pl.Host, op.Output}] = true
				changed = true
			}
		}
		for f, on := range a.Flows {
			if !on || derived[hs{f.To, f.Stream}] {
				continue
			}
			if derived[hs{f.From, f.Stream}] {
				derived[hs{f.To, f.Stream}] = true
				changed = true
			}
		}
	}
	for f, on := range a.Flows {
		if on && !derived[hs{f.From, f.Stream}] {
			return fmt.Errorf("dsps: acausal flow of stream %d from host %d (no real source)", f.Stream, f.From)
		}
	}
	for pl, on := range a.Ops {
		if !on {
			continue
		}
		for _, in := range sys.Operators[pl.Op].Inputs {
			if !derived[hs{pl.Host, in}] {
				return fmt.Errorf("dsps: operator %d on host %d has acausal input stream %d", pl.Op, pl.Host, in)
			}
		}
	}
	for s, h := range a.Provides {
		if !derived[hs{h, s}] {
			return fmt.Errorf("dsps: provided stream %d at host %d is acausal", s, h)
		}
	}
	return nil
}

// SatisfiedQueries returns the number of requested streams currently served
// (objective O1), i.e. Σ d_hs.
func (a *Assignment) SatisfiedQueries() int { return len(a.Provides) }

// GarbageCollect deletes operators and flows not backward-reachable from
// any provided stream. All alternative supports of a needed availability
// are kept (conservative), so a feasible assignment stays feasible. It is
// the shared second half of query removal (§IV-B "conceptually removing
// and re-adding queries") used by every planner's Remove.
func (a *Assignment) GarbageCollect(sys *System) {
	type hs struct {
		h HostID
		s StreamID
	}
	neededOps := make(map[Placement]bool)
	neededFlows := make(map[Flow]bool)
	seen := make(map[hs]bool)
	var queue []hs
	for s, h := range a.Provides {
		queue = append(queue, hs{h, s})
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if sys.IsBaseAt(cur.h, cur.s) {
			continue
		}
		for _, op := range sys.ProducersOf(cur.s) {
			pl := Placement{Host: cur.h, Op: op}
			if a.Ops[pl] {
				neededOps[pl] = true
				for _, in := range sys.Operators[op].Inputs {
					queue = append(queue, hs{cur.h, in})
				}
			}
		}
		for m := 0; m < sys.NumHosts(); m++ {
			f := Flow{From: HostID(m), To: cur.h, Stream: cur.s}
			if a.Flows[f] {
				neededFlows[f] = true
				queue = append(queue, hs{HostID(m), cur.s})
			}
		}
	}
	for pl := range a.Ops {
		if !neededOps[pl] {
			delete(a.Ops, pl)
		}
	}
	for f := range a.Flows {
		if !neededFlows[f] {
			delete(a.Flows, f)
		}
	}
}

// AffectedQueries returns the provided streams whose current support — the
// providing host, or any operator placement or flow endpoint backward-
// reachable from it — touches a host for which affected reports true. The
// result is sorted ascending. It is the shared first step of churn repair:
// with affected = "host is down" it lists the queries invalidated by a
// failure; widening the predicate to draining hosts lists the queries a
// graceful decommission should migrate.
func (a *Assignment) AffectedQueries(sys *System, affected func(HostID) bool) []StreamID {
	type hs struct {
		h HostID
		s StreamID
	}
	var out []StreamID
	for q, ph := range a.Provides {
		hit := affected(ph)
		seen := make(map[hs]bool)
		queue := []hs{{ph, q}}
		for !hit && len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if affected(cur.h) {
				hit = true
				break
			}
			if sys.IsBaseAt(cur.h, cur.s) {
				continue
			}
			for _, op := range sys.ProducersOf(cur.s) {
				if a.Ops[Placement{Host: cur.h, Op: op}] {
					for _, in := range sys.Operators[op].Inputs {
						queue = append(queue, hs{cur.h, in})
					}
				}
			}
			for m := 0; m < sys.NumHosts(); m++ {
				if a.Flows[Flow{From: HostID(m), To: cur.h, Stream: cur.s}] {
					queue = append(queue, hs{HostID(m), cur.s})
				}
			}
		}
		if hit {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StripFailed deletes every operator placement, flow and provide touching a
// down host. The remainder may reference availabilities the stripped pieces
// used to supply; callers re-plan the affected queries (see AffectedQueries)
// and garbage-collect before validating.
func (a *Assignment) StripFailed(sys *System) {
	for pl := range a.Ops {
		if !sys.HostUsable(pl.Host) {
			delete(a.Ops, pl)
		}
	}
	for f := range a.Flows {
		if !sys.HostUsable(f.From) || !sys.HostUsable(f.To) {
			delete(a.Flows, f)
		}
	}
	for s, h := range a.Provides {
		if !sys.HostUsable(h) {
			delete(a.Provides, s)
		}
	}
}

// PruneAcausal removes every operator placement and flow that is no longer
// causally supported: after a failure strip, an operator may have lost an
// input it received from the failed host, and a flow may have lost its real
// source. Availability is re-derived from base streams at usable hosts via
// the fixed point of Validate's causality rule; anything underivable is
// deleted (cascading). The result is a feasible sub-assignment that keeps
// every surviving allocation — including support orphaned by a lost
// provide — so a repair planner can pin survivors instead of rebuilding
// them. Provides whose stream became underivable at their host are removed
// too (callers treat those queries as affected).
func (a *Assignment) PruneAcausal(sys *System) {
	type hs struct {
		h HostID
		s StreamID
	}
	derived := make(map[hs]bool)
	for h := range sys.Hosts {
		if !sys.HostUsable(HostID(h)) {
			continue
		}
		for s := range sys.Streams {
			if sys.IsBaseAt(HostID(h), StreamID(s)) {
				derived[hs{HostID(h), StreamID(s)}] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for pl, on := range a.Ops {
			if !on {
				continue
			}
			op := sys.Operators[pl.Op]
			if derived[hs{pl.Host, op.Output}] {
				continue
			}
			ok := true
			for _, in := range op.Inputs {
				if !derived[hs{pl.Host, in}] {
					ok = false
					break
				}
			}
			if ok {
				derived[hs{pl.Host, op.Output}] = true
				changed = true
			}
		}
		for f, on := range a.Flows {
			if !on || derived[hs{f.To, f.Stream}] {
				continue
			}
			if derived[hs{f.From, f.Stream}] {
				derived[hs{f.To, f.Stream}] = true
				changed = true
			}
		}
	}
	for pl := range a.Ops {
		keep := true
		for _, in := range sys.Operators[pl.Op].Inputs {
			if !derived[hs{pl.Host, in}] {
				keep = false
				break
			}
		}
		if !keep {
			delete(a.Ops, pl)
		}
	}
	for f := range a.Flows {
		if !derived[hs{f.From, f.Stream}] {
			delete(a.Flows, f)
		}
	}
	for s, h := range a.Provides {
		if !derived[hs{h, s}] {
			delete(a.Provides, s)
		}
	}
}

// CountMigrations counts the operators that survived a repair but moved: o
// was placed on at least one host that is still usable under the current
// host states, is still placed somewhere in after, and none of its
// surviving former hosts runs it any more. Operators that disappeared
// entirely (their queries were dropped) are not migrations, and neither are
// operators whose only former hosts went down (re-placing those is forced,
// not chosen).
func CountMigrations(sys *System, before, after *Assignment) int {
	beforeHosts := make(map[OperatorID][]HostID)
	for pl, on := range before.Ops {
		if on && sys.HostUsable(pl.Host) {
			beforeHosts[pl.Op] = append(beforeHosts[pl.Op], pl.Host)
		}
	}
	afterAny := make(map[OperatorID]bool)
	for pl, on := range after.Ops {
		if on {
			afterAny[pl.Op] = true
		}
	}
	migrated := 0
	for op, hosts := range beforeHosts {
		if !afterAny[op] {
			continue
		}
		stayed := false
		for _, h := range hosts {
			if after.Ops[Placement{Host: h, Op: op}] {
				stayed = true
				break
			}
		}
		if !stayed {
			migrated++
		}
	}
	return migrated
}

// SortedFlows returns the active flows in deterministic order, for tests
// and debug output.
func (a *Assignment) SortedFlows() []Flow {
	out := make([]Flow, 0, len(a.Flows))
	for f, on := range a.Flows {
		if on {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// SortedOps returns the active placements in deterministic order.
func (a *Assignment) SortedOps() []Placement {
	out := make([]Placement, 0, len(a.Ops))
	for p, on := range a.Ops {
		if on {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Host < out[j].Host
	})
	return out
}
