package dsps

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// fuzzSeedSystems builds representative systems for the fuzz corpus:
// hosts in every availability state, base placements, alternative
// producers, memory budgets and link capacities all appear, so mutations
// start from inputs that exercise every decode path.
func fuzzSeedSystems(t interface{ Fatal(...any) }) [][]byte {
	var corpus [][]byte

	small := NewSystem([]Host{
		{ID: 0, CPU: 8, OutBW: 40, InBW: 40},
		{ID: 1, CPU: 8, OutBW: 40, InBW: 40, Mem: 16, State: HostDraining},
		{ID: 2, CPU: 4, OutBW: 20, InBW: 20, State: HostDown},
	}, 25)
	a := small.AddStream(5, NoOperator, "a")
	b := small.AddStream(3, NoOperator, "b")
	small.PlaceBase(0, a)
	small.PlaceBase(1, a)
	small.PlaceBase(1, b)
	op := small.AddOperator([]StreamID{a, b}, 2, 1.5, "a⋈b")
	small.AddProducerFor(op.Output, []StreamID{b, a}, 2.5, "b⋈a")
	small.SetRequested(op.Output, true)
	small.Operators[0].Mem = 4

	tiny := NewSystem([]Host{{ID: 0, CPU: 1, OutBW: 1, InBW: 1}}, 0)
	s := tiny.AddStream(1, NoOperator, "s")
	tiny.PlaceBase(0, s)

	for _, sys := range []*System{small, tiny} {
		enc, err := json.Marshal(sys)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, enc)
	}
	return corpus
}

// FuzzSystemJSON checks the decode→encode→decode round trip: any input the
// decoder accepts must re-encode deterministically, decode again to an
// equivalent system (including host states and base placements), and never
// panic — malformed hosts, streams, operators, base placements and link
// matrices must all be rejected with an error instead.
func FuzzSystemJSON(f *testing.F) {
	for _, seed := range fuzzSeedSystems(f) {
		f.Add(seed)
	}
	// Hand-written corner cases: empty object, bad version, out-of-range
	// base placement, ragged link matrix, unknown host state.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"hosts":[],"streams":[],"operators":[],"link_capacity":[]}`))
	f.Add([]byte(`{"version":1,"hosts":[{"ID":0,"CPU":1,"OutBW":1,"InBW":1,"Mem":0,"State":0}],"streams":[],"operators":[],"link_capacity":[[0]],"base_placements":[{"host":9,"stream":0}]}`))
	f.Add([]byte(`{"version":1,"hosts":[{"ID":0,"CPU":1,"OutBW":1,"InBW":1,"Mem":0,"State":0}],"streams":[],"operators":[],"link_capacity":[[0,1]]}`))
	f.Add([]byte(`{"version":1,"hosts":[{"ID":0,"CPU":1,"OutBW":1,"InBW":1,"Mem":0,"State":7}],"streams":[],"operators":[],"link_capacity":[[0]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var sys System
		if err := json.Unmarshal(data, &sys); err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted systems must validate (UnmarshalJSON guarantees it).
		if err := sys.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid system: %v", err)
		}

		enc1, err := json.Marshal(&sys)
		if err != nil {
			t.Fatalf("cannot re-encode accepted system: %v", err)
		}
		var sys2 System
		if err := json.Unmarshal(enc1, &sys2); err != nil {
			t.Fatalf("re-encoded system does not decode: %v\n%s", err, enc1)
		}
		enc2, err := json.Marshal(&sys2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not deterministic after round trip:\n%s\nvs\n%s", enc1, enc2)
		}

		// Structural equivalence, including the host-state field.
		if !reflect.DeepEqual(sys.Hosts, sys2.Hosts) {
			t.Fatalf("hosts differ after round trip: %+v vs %+v", sys.Hosts, sys2.Hosts)
		}
		if !reflect.DeepEqual(sys.Streams, sys2.Streams) {
			t.Fatal("streams differ after round trip")
		}
		if !reflect.DeepEqual(sys.Operators, sys2.Operators) {
			t.Fatal("operators differ after round trip")
		}
		if !reflect.DeepEqual(sys.LinkCap, sys2.LinkCap) {
			t.Fatal("link capacities differ after round trip")
		}
		for h := range sys.Hosts {
			for s := range sys.Streams {
				if sys.IsBaseAt(HostID(h), StreamID(s)) != sys2.IsBaseAt(HostID(h), StreamID(s)) {
					t.Fatalf("base placement (%d,%d) differs after round trip", h, s)
				}
			}
		}
	})
}
