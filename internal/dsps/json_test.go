package dsps

import (
	"bytes"
	"encoding/json"
	"testing"
)

func roundTripSystem(t *testing.T, sys *System) *System {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSystem(&buf, sys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSystemJSONRoundTrip(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(7, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(2, b)
	op := sys.AddOperator([]StreamID{a, b}, 2, 1.5, "ab")
	sys.SetRequested(op.Output, true)

	got := roundTripSystem(t, sys)
	if got.NumHosts() != 3 || len(got.Streams) != 3 || len(got.Operators) != 1 {
		t.Fatalf("shape lost: %d hosts %d streams %d ops", got.NumHosts(), len(got.Streams), len(got.Operators))
	}
	if !got.IsBaseAt(0, a) || !got.IsBaseAt(2, b) || got.IsBaseAt(1, a) {
		t.Fatal("base placements lost")
	}
	if ps := got.ProducersOf(op.Output); len(ps) != 1 || ps[0] != op.ID {
		t.Fatalf("producer index lost: %v", ps)
	}
	if !got.Streams[op.Output].Requested {
		t.Fatal("requested flag lost")
	}
	if got.TotalCPU() != sys.TotalCPU() || got.TotalLinkCap() != sys.TotalLinkCap() {
		t.Fatal("capacities lost")
	}
}

func TestSystemJSONRejectsBadVersion(t *testing.T) {
	var sys System
	if err := json.Unmarshal([]byte(`{"version":99,"hosts":[],"streams":[],"operators":[],"link_capacity":[]}`), &sys); err == nil {
		t.Fatal("expected version error")
	}
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	sys := smallSystem()
	a := sys.AddStream(5, NoOperator, "a")
	b := sys.AddStream(5, NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(1, b)
	op := sys.AddOperator([]StreamID{a, b}, 2, 1, "ab")
	sys.SetRequested(op.Output, true)

	asg := NewAssignment()
	asg.Flows[Flow{From: 1, To: 0, Stream: b}] = true
	asg.Ops[Placement{Host: 0, Op: op.ID}] = true
	asg.Provides[op.Output] = 0

	var buf bytes.Buffer
	if err := WriteAssignment(&buf, asg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Flows[Flow{From: 1, To: 0, Stream: b}] {
		t.Fatal("flow lost")
	}
	if !got.Ops[Placement{Host: 0, Op: op.ID}] {
		t.Fatal("placement lost")
	}
	if got.Provides[op.Output] != 0 {
		t.Fatal("provider lost")
	}
	// The round-tripped assignment must still validate.
	if err := got.Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentJSONDeterministic(t *testing.T) {
	asg := NewAssignment()
	asg.Flows[Flow{From: 2, To: 0, Stream: 5}] = true
	asg.Flows[Flow{From: 0, To: 1, Stream: 3}] = true
	asg.Ops[Placement{Host: 1, Op: 9}] = true
	asg.Ops[Placement{Host: 0, Op: 2}] = true
	j1, err := json.Marshal(asg)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(asg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("non-deterministic serialisation")
	}
}

func TestAssignmentJSONRejectsDuplicateProvider(t *testing.T) {
	raw := []byte(`{"version":1,"provides":[{"stream":1,"host":0},{"stream":1,"host":2}],"flows":[],"placements":[]}`)
	var a Assignment
	if err := json.Unmarshal(raw, &a); err == nil {
		t.Fatal("expected duplicate-provider error")
	}
}

func TestSystemJSONValidatesOnLoad(t *testing.T) {
	// An operator referencing a missing stream must fail on load.
	raw := []byte(`{"version":1,"hosts":[{"ID":0,"CPU":1,"OutBW":1,"InBW":1}],
		"streams":[{"ID":0,"Rate":1,"Producer":-1}],
		"operators":[{"ID":0,"Inputs":[5],"Output":0,"Cost":1}],
		"link_capacity":[[0]]}`)
	var sys System
	if err := json.Unmarshal(raw, &sys); err == nil {
		t.Fatal("expected validation error on load")
	}
}
