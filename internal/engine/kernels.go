package engine

import (
	"sqpr/internal/dsps"
)

// UnaryKernel customises the behaviour of a single-input operator. The
// model layer (§II-A) "makes no assumptions regarding specific semantics";
// the engine realises common relational kernels — filter, project/map and
// windowed aggregation — through this interface. Binary and wider operators
// always execute as windowed symmetric hash joins.
type UnaryKernel interface {
	// Process consumes one input tuple and returns the output tuple (with
	// the Stream field left zero — the engine rewrites it) and whether an
	// output is emitted at all.
	Process(t Tuple) (Tuple, bool)
}

// FilterKernel drops tuples failing the predicate (a select operator).
type FilterKernel struct {
	Pred func(Tuple) bool
}

// Process implements UnaryKernel.
func (k FilterKernel) Process(t Tuple) (Tuple, bool) {
	if k.Pred != nil && !k.Pred(t) {
		return Tuple{}, false
	}
	return t, true
}

// MapKernel transforms each tuple's value (a project operator).
type MapKernel struct {
	Fn func(float64) float64
}

// Process implements UnaryKernel.
func (k MapKernel) Process(t Tuple) (Tuple, bool) {
	if k.Fn != nil {
		t.Value = k.Fn(t.Value)
	}
	return t, true
}

// TumblingAggregate emits one aggregate tuple per window of N inputs.
type TumblingAggregate struct {
	// N is the tumbling window size in tuples.
	N int
	// Fn folds the window's values; nil means arithmetic mean.
	Fn func(values []float64) float64

	buf []float64
	seq int64
}

// Process implements UnaryKernel. Note: a TumblingAggregate instance holds
// window state and must not be shared between operators.
func (k *TumblingAggregate) Process(t Tuple) (Tuple, bool) {
	n := k.N
	if n <= 0 {
		n = 1
	}
	k.buf = append(k.buf, t.Value)
	if len(k.buf) < n {
		return Tuple{}, false
	}
	var v float64
	if k.Fn != nil {
		v = k.Fn(k.buf)
	} else {
		for _, x := range k.buf {
			v += x
		}
		v /= float64(len(k.buf))
	}
	k.buf = k.buf[:0]
	k.seq++
	return Tuple{Key: t.Key, Value: v, SeqNo: k.seq}, true
}

// RegisterKernel attaches a custom unary kernel to an operator; it must be
// called before Deploy. Operators without a registered kernel default to
// pass-through (project identity).
func (e *Engine) RegisterKernel(op dsps.OperatorID, k UnaryKernel) {
	if e.kernels == nil {
		e.kernels = make(map[dsps.OperatorID]UnaryKernel)
	}
	e.kernels[op] = k
}
