package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"sqpr/internal/dsps"
)

// Wire format: tuples cross host boundaries as fixed-size little-endian
// records, mirroring DISSP's TCP tuple exchange with an agreed relational
// schema. A record is 36 bytes:
//
//	offset 0  int32   stream id
//	offset 4  int64   join key
//	offset 12 float64 value
//	offset 20 int64   sequence number
//	offset 28 int64   source injection time (UnixNano)
const wireTupleSize = 36

// encodeTuple serialises t into buf (which must hold wireTupleSize bytes).
func encodeTuple(t Tuple, buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(int32(t.Stream)))
	binary.LittleEndian.PutUint64(buf[4:], uint64(t.Key))
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(t.Value))
	binary.LittleEndian.PutUint64(buf[20:], uint64(t.SeqNo))
	binary.LittleEndian.PutUint64(buf[28:], uint64(t.BornNanos))
}

// decodeTuple deserialises a record produced by encodeTuple.
func decodeTuple(buf []byte) Tuple {
	return Tuple{
		Stream:    dsps.StreamID(int32(binary.LittleEndian.Uint32(buf[0:]))),
		Key:       int64(binary.LittleEndian.Uint64(buf[4:])),
		Value:     math.Float64frombits(binary.LittleEndian.Uint64(buf[12:])),
		SeqNo:     int64(binary.LittleEndian.Uint64(buf[20:])),
		BornNanos: int64(binary.LittleEndian.Uint64(buf[28:])),
	}
}

// writeTuple writes one framed tuple to w.
func writeTuple(w io.Writer, t Tuple) error {
	var buf [wireTupleSize]byte
	encodeTuple(t, buf[:])
	_, err := w.Write(buf[:])
	return err
}

// readTuple reads one framed tuple from r.
func readTuple(r io.Reader) (Tuple, error) {
	var buf [wireTupleSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Tuple{}, err
	}
	return decodeTuple(buf[:]), nil
}

// validateWireSize is a compile-time-ish guard used by tests.
func validateWireSize() error {
	if wireTupleSize != 4+8+8+8+8 {
		return fmt.Errorf("engine: wire tuple size mismatch")
	}
	return nil
}
