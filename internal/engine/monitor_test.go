package engine

import (
	"testing"

	"sqpr/internal/dsps"
)

func twoHostSystem() *dsps.System {
	return dsps.NewSystem([]dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
	}, 100)
}

// TestMonitorDeliverySeparateFromEgress pins the delivery/egress accounting:
// client deliveries land in Delivered only, so total Sent balances against
// total Received for fully transferred traffic.
func TestMonitorDeliverySeparateFromEgress(t *testing.T) {
	m := NewMonitor(twoHostSystem())
	m.recordTransfer(0, 1, 5)
	m.recordTransfer(0, 1, 5)
	m.recordDelivery(1, 3)

	snap := m.Snapshot()
	if got := snap.Sent[0]; got != 10 {
		t.Fatalf("Sent[0] = %v, want 10 (transfers only)", got)
	}
	if got := snap.Sent[1]; got != 0 {
		t.Fatalf("Sent[1] = %v, want 0: delivery leaked into egress", got)
	}
	if got := snap.Delivered[1]; got != 3 {
		t.Fatalf("Delivered[1] = %v, want 3", got)
	}
	var sent, recv float64
	for h := range snap.Sent {
		sent += snap.Sent[h]
		recv += snap.Received[h]
	}
	if sent != recv {
		t.Fatalf("egress %v does not balance ingress %v", sent, recv)
	}
}

// TestMonitorComputeSamples pins the once-dead samples counter to the
// Snapshot surface: every compute record increments it.
func TestMonitorComputeSamples(t *testing.T) {
	m := NewMonitor(twoHostSystem())
	m.recordCompute(0, 2.5)
	m.recordCompute(1, 1.5)
	m.recordCompute(1, 1.5)

	snap := m.Snapshot()
	if snap.ComputeSamples != 3 {
		t.Fatalf("ComputeSamples = %d, want 3", snap.ComputeSamples)
	}
	if snap.CPUWork[1] != 3 {
		t.Fatalf("CPUWork[1] = %v, want 3", snap.CPUWork[1])
	}
}
