package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sqpr/internal/dsps"
)

// joinSetup builds two hosts, two base streams on host 0, and a join whose
// result is provided from host 1 (so a flow is involved).
func joinSetup(t *testing.T) (*dsps.System, *dsps.Assignment, dsps.StreamID) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(20, dsps.NoOperator, "a")
	b := sys.AddStream(20, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 5, 1, "ab")
	sys.SetRequested(op.Output, true)

	asg := dsps.NewAssignment()
	asg.Ops[dsps.Placement{Host: 0, Op: op.ID}] = true
	asg.Flows[dsps.Flow{From: 0, To: 1, Stream: op.Output}] = true
	asg.Provides[op.Output] = 1
	if err := asg.Validate(sys); err != nil {
		t.Fatal(err)
	}
	return sys, asg, op.Output
}

func TestDeployAndDeliver(t *testing.T) {
	sys, asg, out := joinSetup(t)
	cfg := DefaultConfig()
	cfg.KeyDomain = 4 // join aggressively so results appear quickly
	eng := New(sys, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	got := 0
loop:
	for {
		select {
		case tup := <-eng.Results():
			if tup.Stream != out {
				t.Fatalf("unexpected result stream %d", tup.Stream)
			}
			got++
			if got >= 3 {
				break loop
			}
		case <-deadline:
			break loop
		}
	}
	eng.Stop()
	if got == 0 {
		t.Fatal("no result tuples delivered")
	}
	snap := eng.Monitor().Snapshot()
	if snap.CPUWork[0] == 0 {
		t.Fatal("monitor recorded no CPU work on the operator host")
	}
	if snap.Sent[0] == 0 || snap.Received[1] == 0 {
		t.Fatal("monitor recorded no transfer along the flow")
	}
	mean, max := eng.Monitor().Latency()
	if mean <= 0 || max < mean {
		t.Fatalf("latency accounting broken: mean=%v max=%v", mean, max)
	}
}

func TestDeployRejectsInfeasiblePlan(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	// Corrupt the plan: flow of a stream the sender does not possess.
	phantom := sys.AddStream(5, dsps.NoOperator, "phantom")
	sys.PlaceBase(1, phantom)
	asg.Flows[dsps.Flow{From: 0, To: 1, Stream: phantom}] = true
	eng := New(sys, DefaultConfig())
	if err := eng.Deploy(context.Background(), asg); err == nil {
		eng.Stop()
		t.Fatal("expected deployment of infeasible plan to fail")
	}
}

func TestRelayChainDelivers(t *testing.T) {
	// Base at host 0, relayed 0→1→2, provided from host 2.
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 2, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(50, dsps.NoOperator, "a")
	sys.PlaceBase(0, a)
	sys.SetRequested(a, true)
	asg := dsps.NewAssignment()
	asg.Flows[dsps.Flow{From: 0, To: 1, Stream: a}] = true
	asg.Flows[dsps.Flow{From: 1, To: 2, Stream: a}] = true
	asg.Provides[a] = 2
	if err := asg.Validate(sys); err != nil {
		t.Fatal(err)
	}

	eng := New(sys, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	select {
	case tup := <-eng.Results():
		if tup.Stream != a {
			t.Fatalf("wrong stream %d", tup.Stream)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("relay chain delivered nothing")
	}
	eng.Stop()
	snap := eng.Monitor().Snapshot()
	if snap.Sent[0] == 0 || snap.Sent[1] == 0 {
		t.Fatal("relay hop not recorded by the monitor")
	}
}

func TestWindowEviction(t *testing.T) {
	w := newWindow(2)
	w.add(Tuple{Key: 1, SeqNo: 1})
	w.add(Tuple{Key: 2, SeqNo: 2})
	w.add(Tuple{Key: 3, SeqNo: 3}) // evicts key 1
	if got := w.matching(1); len(got) != 0 {
		t.Fatalf("evicted key still matches: %v", got)
	}
	if got := w.matching(3); len(got) != 1 {
		t.Fatalf("fresh key missing: %v", got)
	}
}

func TestWindowDuplicateKeys(t *testing.T) {
	w := newWindow(8)
	for i := int64(0); i < 4; i++ {
		w.add(Tuple{Key: 7, SeqNo: i})
	}
	if got := w.matching(7); len(got) != 4 {
		t.Fatalf("expected 4 matches, got %d", len(got))
	}
}

func TestMonitorSnapshotIsCopy(t *testing.T) {
	sys, _, _ := joinSetup(t)
	m := NewMonitor(sys)
	m.recordCompute(0, 5)
	snap := m.Snapshot()
	snap.CPUWork[0] = 999
	if m.Snapshot().CPUWork[0] != 5 {
		t.Fatal("snapshot aliases monitor state")
	}
}

func TestBusiestHost(t *testing.T) {
	sys, _, _ := joinSetup(t)
	m := NewMonitor(sys)
	m.recordCompute(1, 10)
	m.recordCompute(0, 3)
	if m.BusiestHost() != 1 {
		t.Fatal("busiest host wrong")
	}
}

func TestStopTerminatesGoroutines(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	eng := New(sys, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		eng.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Stop did not terminate within 3s")
	}
}

func TestStopClosesResults(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	eng := New(sys, DefaultConfig())
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	// A consumer ranging over Results must terminate once Stop runs.
	consumed := make(chan struct{})
	go func() {
		for range eng.Results() {
		}
		close(consumed)
	}()
	time.Sleep(50 * time.Millisecond)
	eng.Stop()
	select {
	case <-consumed:
	case <-time.After(3 * time.Second):
		t.Fatal("consumer ranging over Results() did not terminate after Stop")
	}
}

func TestStopIdempotent(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	eng := New(sys, DefaultConfig())

	// Stop before Deploy must be a no-op, not a panic.
	eng.Stop()

	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	eng.Stop() // double Stop must not panic or double-close

	// Concurrent Stops must also be safe.
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Stop()
		}()
	}
	wg.Wait()
}

func TestDeployOnRunningEngineRejected(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	eng := New(sys, DefaultConfig())
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Deploy(context.Background(), asg); !errors.Is(err, ErrAlreadyDeployed) {
		t.Fatalf("second Deploy on a running engine: err = %v, want ErrAlreadyDeployed", err)
	}
}

func TestRedeployAfterStop(t *testing.T) {
	sys, asg, out := joinSetup(t)
	cfg := DefaultConfig()
	cfg.KeyDomain = 4
	eng := New(sys, cfg)
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	// A stopped engine redeploys cleanly with a fresh Results channel.
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatalf("redeploy after Stop: %v", err)
	}
	select {
	case tup := <-eng.Results():
		if tup.Stream != out {
			t.Fatalf("wrong stream %d after redeploy", tup.Stream)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("redeployed engine delivered nothing")
	}
	eng.Stop()
}
