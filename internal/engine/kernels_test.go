package engine

import (
	"context"
	"testing"
	"time"

	"sqpr/internal/dsps"
)

func TestFilterKernel(t *testing.T) {
	k := FilterKernel{Pred: func(t Tuple) bool { return t.Value > 0 }}
	if _, ok := k.Process(Tuple{Value: -1}); ok {
		t.Fatal("negative value passed the filter")
	}
	if out, ok := k.Process(Tuple{Value: 3}); !ok || out.Value != 3 {
		t.Fatal("positive value blocked or mutated")
	}
	// Nil predicate passes everything.
	if _, ok := (FilterKernel{}).Process(Tuple{Value: -1}); !ok {
		t.Fatal("nil predicate blocked a tuple")
	}
}

func TestMapKernel(t *testing.T) {
	k := MapKernel{Fn: func(v float64) float64 { return v * 2 }}
	out, ok := k.Process(Tuple{Value: 4})
	if !ok || out.Value != 8 {
		t.Fatalf("map: %+v %v", out, ok)
	}
}

func TestTumblingAggregate(t *testing.T) {
	k := &TumblingAggregate{N: 3}
	for i := 0; i < 2; i++ {
		if _, ok := k.Process(Tuple{Value: float64(i + 1)}); ok {
			t.Fatal("emitted before the window filled")
		}
	}
	out, ok := k.Process(Tuple{Value: 3})
	if !ok || out.Value != 2 { // mean(1,2,3)
		t.Fatalf("aggregate: %+v %v", out, ok)
	}
	// The window resets after emission.
	if _, ok := k.Process(Tuple{Value: 100}); ok {
		t.Fatal("emitted immediately after reset")
	}
}

func TestTumblingAggregateCustomFn(t *testing.T) {
	max := func(vs []float64) float64 {
		m := vs[0]
		for _, v := range vs[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	k := &TumblingAggregate{N: 2, Fn: max}
	k.Process(Tuple{Value: 5})
	out, ok := k.Process(Tuple{Value: 9})
	if !ok || out.Value != 9 {
		t.Fatalf("custom aggregate: %+v %v", out, ok)
	}
}

// TestFilterOperatorEndToEnd deploys a unary filter operator and verifies
// that only matching tuples reach the client.
func TestFilterOperatorEndToEnd(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 10, OutBW: 100, InBW: 100}}
	sys := dsps.NewSystem(hosts, 100)
	src := sys.AddStream(50, dsps.NoOperator, "src")
	sys.PlaceBase(0, src)
	filt := sys.AddOperator([]dsps.StreamID{src}, 25, 0.5, "filter-even")
	sys.SetRequested(filt.Output, true)

	asg := dsps.NewAssignment()
	asg.Ops[dsps.Placement{Host: 0, Op: filt.ID}] = true
	asg.Provides[filt.Output] = 0
	if err := asg.Validate(sys); err != nil {
		t.Fatal(err)
	}

	eng := New(sys, DefaultConfig())
	eng.RegisterKernel(filt.ID, FilterKernel{Pred: func(t Tuple) bool { return t.Key%2 == 0 }})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	got := 0
loop:
	for {
		select {
		case tup := <-eng.Results():
			if tup.Key%2 != 0 {
				t.Fatalf("odd key %d passed the filter", tup.Key)
			}
			got++
			if got >= 5 {
				break loop
			}
		case <-deadline:
			break loop
		}
	}
	eng.Stop()
	if got == 0 {
		t.Fatal("filter delivered nothing")
	}
}
