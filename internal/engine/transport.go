package engine

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sqpr/internal/dsps"
)

// Transport moves tuples between hosts. The default in-process transport
// delivers through channels; the TCP transport runs every inter-host flow
// over a real loopback TCP connection, as the DISSP prototype does.
type Transport interface {
	// Start prepares the transport for the engine's host set.
	Start(e *Engine) error
	// Send delivers one tuple from host `from` to host `to`. It must not
	// block indefinitely; overflow is reported through the monitor.
	Send(from, to dsps.HostID, t Tuple)
	// Stop releases transport resources.
	Stop()
}

// inprocTransport delivers tuples directly into the destination inbox.
type inprocTransport struct{ e *Engine }

func (tr *inprocTransport) Start(e *Engine) error { tr.e = e; return nil }

func (tr *inprocTransport) Send(from, to dsps.HostID, t Tuple) {
	e := tr.e
	select {
	case e.hosts[to].inbox <- t:
	case <-e.ctx.Done():
	default:
		e.mon.recordDrop(to)
	}
}

func (tr *inprocTransport) Stop() {}

// Reconnect backoff bounds for the TCP transport: after a dial or write
// failure a peer connection is retried no sooner than an exponentially
// growing, jittered delay, capped at reconnectMax. Tuples sent while a
// peer is in backoff are dropped (and counted), matching the lossy
// best-effort contract of Send.
const (
	reconnectBase = 2 * time.Millisecond
	reconnectMax  = 500 * time.Millisecond
)

// peerState tracks the reconnect backoff of one (from, to) connection.
type peerState struct {
	fails   int       // consecutive dial/write failures
	retryAt time.Time // no redial before this instant
}

// backoffDelay returns the jittered exponential delay after `fails`
// consecutive failures: full jitter over [base*2^(fails-1)/2, base*2^(fails-1)],
// capped at reconnectMax.
func backoffDelay(fails int) time.Duration {
	d := reconnectBase
	for i := 1; i < fails && d < reconnectMax; i++ {
		d *= 2
	}
	if d > reconnectMax {
		d = reconnectMax
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// TCPTransport exchanges tuples over loopback TCP connections: one listener
// per host and one lazily dialled connection per (from, to) host pair. It
// exercises the same code path a distributed deployment would (framing,
// partial reads, connection lifecycle, reconnects) while remaining
// self-contained. A connection that fails is closed and redialled on a
// later Send once its backoff window has passed, so a transient peer
// outage does not permanently sever the pair.
type TCPTransport struct {
	e *Engine

	mu        sync.Mutex
	listeners []net.Listener
	addrs     []string
	conns     map[[2]dsps.HostID]net.Conn
	sendMu    map[[2]dsps.HostID]*sync.Mutex
	peers     map[[2]dsps.HostID]peerState
	wg        sync.WaitGroup
	stopped   bool
}

// NewTCPTransport creates an unstarted TCP transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		conns:  make(map[[2]dsps.HostID]net.Conn),
		sendMu: make(map[[2]dsps.HostID]*sync.Mutex),
		peers:  make(map[[2]dsps.HostID]peerState),
	}
}

// Start opens one loopback listener per host and begins accepting. A
// transport that was stopped can be started again (Engine.Deploy after
// Stop): stale connections were closed by Stop, so the maps reset.
func (tr *TCPTransport) Start(e *Engine) error {
	tr.mu.Lock()
	tr.stopped = false
	tr.conns = make(map[[2]dsps.HostID]net.Conn)
	tr.sendMu = make(map[[2]dsps.HostID]*sync.Mutex)
	tr.peers = make(map[[2]dsps.HostID]peerState)
	tr.mu.Unlock()
	tr.e = e
	n := e.sys.NumHosts()
	tr.listeners = make([]net.Listener, n)
	tr.addrs = make([]string, n)
	for h := 0; h < n; h++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.Stop()
			return fmt.Errorf("engine: listening for host %d: %w", h, err)
		}
		tr.listeners[h] = ln
		tr.addrs[h] = ln.Addr().String()
		tr.wg.Add(1)
		go tr.accept(dsps.HostID(h), ln)
	}
	return nil
}

// accept serves one host's listener: every inbound connection carries a
// stream of framed tuples destined for that host.
func (tr *TCPTransport) accept(h dsps.HostID, ln net.Listener) {
	defer tr.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.wg.Add(1)
		go tr.serveConn(h, conn)
	}
}

func (tr *TCPTransport) serveConn(h dsps.HostID, conn net.Conn) {
	defer tr.wg.Done()
	defer conn.Close()
	for {
		t, err := readTuple(conn)
		if err != nil {
			return
		}
		e := tr.e
		select {
		case e.hosts[h].inbox <- t:
		case <-e.ctx.Done():
			return
		default:
			e.mon.recordDrop(h)
		}
	}
}

// Send writes the tuple on the (from, to) connection, dialling on first
// use and redialling — under bounded exponential backoff with jitter —
// after a dial or write failure. The tuple triggering a failure is dropped
// (and counted); the connection heals on a later Send.
func (tr *TCPTransport) Send(from, to dsps.HostID, t Tuple) {
	key := [2]dsps.HostID{from, to}
	tr.mu.Lock()
	if tr.stopped {
		tr.mu.Unlock()
		return
	}
	conn, ok := tr.conns[key]
	if !ok {
		ps := tr.peers[key]
		if ps.fails > 0 && time.Now().Before(ps.retryAt) {
			// Peer in backoff: drop without hammering the dialler.
			tr.mu.Unlock()
			tr.e.mon.recordDrop(to)
			return
		}
		reconnecting := ps.fails > 0
		if reconnecting {
			tr.e.mon.recordReconnectAttempt()
		}
		c, err := net.Dial("tcp", tr.addrs[to])
		if err != nil {
			ps.fails++
			ps.retryAt = time.Now().Add(backoffDelay(ps.fails))
			tr.peers[key] = ps
			tr.mu.Unlock()
			if reconnecting {
				tr.e.mon.recordReconnectFailure()
			}
			tr.e.mon.recordDrop(to)
			return
		}
		delete(tr.peers, key) // healthy again: reset the backoff clock
		conn = c
		tr.conns[key] = conn
		tr.sendMu[key] = &sync.Mutex{}
	}
	mu := tr.sendMu[key]
	tr.mu.Unlock()

	mu.Lock()
	err := writeTuple(conn, t)
	mu.Unlock()
	if err != nil {
		tr.e.mon.recordDrop(to)
		// Retire the broken connection and start its backoff so the next
		// Send redials instead of writing into a dead socket forever.
		tr.mu.Lock()
		if tr.conns[key] == conn {
			conn.Close()
			delete(tr.conns, key)
			ps := tr.peers[key]
			ps.fails++
			ps.retryAt = time.Now().Add(backoffDelay(ps.fails))
			tr.peers[key] = ps
		}
		tr.mu.Unlock()
	}
}

// Stop closes all listeners and connections and waits for readers.
func (tr *TCPTransport) Stop() {
	tr.mu.Lock()
	tr.stopped = true
	for _, ln := range tr.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, c := range tr.conns {
		c.Close()
	}
	tr.mu.Unlock()
	tr.wg.Wait()
}
