package engine

import (
	"fmt"
	"net"
	"sync"

	"sqpr/internal/dsps"
)

// Transport moves tuples between hosts. The default in-process transport
// delivers through channels; the TCP transport runs every inter-host flow
// over a real loopback TCP connection, as the DISSP prototype does.
type Transport interface {
	// Start prepares the transport for the engine's host set.
	Start(e *Engine) error
	// Send delivers one tuple from host `from` to host `to`. It must not
	// block indefinitely; overflow is reported through the monitor.
	Send(from, to dsps.HostID, t Tuple)
	// Stop releases transport resources.
	Stop()
}

// inprocTransport delivers tuples directly into the destination inbox.
type inprocTransport struct{ e *Engine }

func (tr *inprocTransport) Start(e *Engine) error { tr.e = e; return nil }

func (tr *inprocTransport) Send(from, to dsps.HostID, t Tuple) {
	e := tr.e
	select {
	case e.hosts[to].inbox <- t:
	case <-e.ctx.Done():
	default:
		e.mon.recordDrop(to)
	}
}

func (tr *inprocTransport) Stop() {}

// TCPTransport exchanges tuples over loopback TCP connections: one listener
// per host and one lazily dialled connection per (from, to) host pair. It
// exercises the same code path a distributed deployment would (framing,
// partial reads, connection lifecycle) while remaining self-contained.
type TCPTransport struct {
	e *Engine

	mu        sync.Mutex
	listeners []net.Listener
	addrs     []string
	conns     map[[2]dsps.HostID]net.Conn
	sendMu    map[[2]dsps.HostID]*sync.Mutex
	wg        sync.WaitGroup
	stopped   bool
}

// NewTCPTransport creates an unstarted TCP transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		conns:  make(map[[2]dsps.HostID]net.Conn),
		sendMu: make(map[[2]dsps.HostID]*sync.Mutex),
	}
}

// Start opens one loopback listener per host and begins accepting. A
// transport that was stopped can be started again (Engine.Deploy after
// Stop): stale connections were closed by Stop, so the maps reset.
func (tr *TCPTransport) Start(e *Engine) error {
	tr.mu.Lock()
	tr.stopped = false
	tr.conns = make(map[[2]dsps.HostID]net.Conn)
	tr.sendMu = make(map[[2]dsps.HostID]*sync.Mutex)
	tr.mu.Unlock()
	tr.e = e
	n := e.sys.NumHosts()
	tr.listeners = make([]net.Listener, n)
	tr.addrs = make([]string, n)
	for h := 0; h < n; h++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.Stop()
			return fmt.Errorf("engine: listening for host %d: %w", h, err)
		}
		tr.listeners[h] = ln
		tr.addrs[h] = ln.Addr().String()
		tr.wg.Add(1)
		go tr.accept(dsps.HostID(h), ln)
	}
	return nil
}

// accept serves one host's listener: every inbound connection carries a
// stream of framed tuples destined for that host.
func (tr *TCPTransport) accept(h dsps.HostID, ln net.Listener) {
	defer tr.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.wg.Add(1)
		go tr.serveConn(h, conn)
	}
}

func (tr *TCPTransport) serveConn(h dsps.HostID, conn net.Conn) {
	defer tr.wg.Done()
	defer conn.Close()
	for {
		t, err := readTuple(conn)
		if err != nil {
			return
		}
		e := tr.e
		select {
		case e.hosts[h].inbox <- t:
		case <-e.ctx.Done():
			return
		default:
			e.mon.recordDrop(h)
		}
	}
}

// Send writes the tuple on the (from, to) connection, dialling on first use.
func (tr *TCPTransport) Send(from, to dsps.HostID, t Tuple) {
	key := [2]dsps.HostID{from, to}
	tr.mu.Lock()
	if tr.stopped {
		tr.mu.Unlock()
		return
	}
	conn, ok := tr.conns[key]
	if !ok {
		c, err := net.Dial("tcp", tr.addrs[to])
		if err != nil {
			tr.mu.Unlock()
			tr.e.mon.recordDrop(to)
			return
		}
		conn = c
		tr.conns[key] = conn
		tr.sendMu[key] = &sync.Mutex{}
	}
	mu := tr.sendMu[key]
	tr.mu.Unlock()

	mu.Lock()
	err := writeTuple(conn, t)
	mu.Unlock()
	if err != nil {
		tr.e.mon.recordDrop(to)
	}
}

// Stop closes all listeners and connections and waits for readers.
func (tr *TCPTransport) Stop() {
	tr.mu.Lock()
	tr.stopped = true
	for _, ln := range tr.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, c := range tr.conns {
		c.Close()
	}
	tr.mu.Unlock()
	tr.wg.Wait()
}
