package engine

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
	"time"

	"sqpr/internal/dsps"
)

func TestWireRoundTrip(t *testing.T) {
	if err := validateWireSize(); err != nil {
		t.Fatal(err)
	}
	in := Tuple{Stream: 42, Key: -7, Value: 3.25, SeqNo: 1 << 40}
	var buf [wireTupleSize]byte
	encodeTuple(in, buf[:])
	out := decodeTuple(buf[:])
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(stream int32, key int64, val float64, seq int64) bool {
		in := Tuple{Stream: dsps.StreamID(stream), Key: key, Value: val, SeqNo: seq}
		var buf bytes.Buffer
		if err := writeTuple(&buf, in); err != nil {
			return false
		}
		out, err := readTuple(&buf)
		if err != nil {
			return false
		}
		// NaN never compares equal; compare bit patterns via re-encode.
		var b1, b2 [wireTupleSize]byte
		encodeTuple(in, b1[:])
		encodeTuple(out, b2[:])
		return b1 == b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTupleShortInput(t *testing.T) {
	if _, err := readTuple(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("expected error on short read")
	}
}

// TestTCPTransportEndToEnd runs the join setup over real loopback TCP and
// verifies result delivery, matching DISSP's TCP stream exchange.
func TestTCPTransportEndToEnd(t *testing.T) {
	sys, asg, out := joinSetup(t)
	cfg := DefaultConfig()
	cfg.KeyDomain = 4
	cfg.Transport = NewTCPTransport()
	eng := New(sys, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	select {
	case tup := <-eng.Results():
		if tup.Stream != out {
			t.Fatalf("wrong result stream %d", tup.Stream)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result over TCP transport")
	}
	eng.Stop()
	snap := eng.Monitor().Snapshot()
	if snap.Sent[0] == 0 || snap.Received[1] == 0 {
		t.Fatal("monitor missed TCP transfers")
	}
}

func TestTCPTransportRelayChain(t *testing.T) {
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 2, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(50, dsps.NoOperator, "a")
	sys.PlaceBase(0, a)
	sys.SetRequested(a, true)
	asg := dsps.NewAssignment()
	asg.Flows[dsps.Flow{From: 0, To: 1, Stream: a}] = true
	asg.Flows[dsps.Flow{From: 1, To: 2, Stream: a}] = true
	asg.Provides[a] = 2

	cfg := DefaultConfig()
	cfg.Transport = NewTCPTransport()
	eng := New(sys, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	select {
	case tup := <-eng.Results():
		if tup.Stream != a {
			t.Fatalf("wrong stream %d", tup.Stream)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("relay chain over TCP delivered nothing")
	}
	eng.Stop()
}

func TestTCPTransportStopIdempotentBeforeStart(t *testing.T) {
	tr := NewTCPTransport()
	tr.Stop() // must not panic with no listeners
}

// TestTCPTransportRedeployAfterStop checks that a stopped engine using the
// TCP transport redeploys cleanly: Start resets the transport's stopped
// flag and connection maps, so tuples flow again over fresh connections.
func TestTCPTransportRedeployAfterStop(t *testing.T) {
	sys, asg, out := joinSetup(t)
	cfg := DefaultConfig()
	cfg.KeyDomain = 4
	cfg.Transport = NewTCPTransport()
	eng := New(sys, cfg)
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	if !awaitResult(eng.Results(), 2*time.Second) {
		t.Fatal("no results before the stop")
	}
	eng.Stop()
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatalf("redeploy after Stop with TCP transport: %v", err)
	}
	select {
	case tup := <-eng.Results():
		if tup.Stream != out {
			t.Fatalf("wrong stream %d after redeploy", tup.Stream)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("redeployed TCP engine delivered nothing")
	}
	eng.Stop()
}
