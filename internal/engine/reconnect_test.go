package engine

import (
	"context"
	"net"
	"testing"
	"time"

	"sqpr/internal/dsps"
)

func relayEngine(t *testing.T) (*Engine, *TCPTransport, dsps.StreamID, func()) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 2, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(50, dsps.NoOperator, "a")
	sys.PlaceBase(0, a)
	sys.SetRequested(a, true)
	asg := dsps.NewAssignment()
	asg.Flows[dsps.Flow{From: 0, To: 1, Stream: a}] = true
	asg.Flows[dsps.Flow{From: 1, To: 2, Stream: a}] = true
	asg.Provides[a] = 2

	cfg := DefaultConfig()
	tr := NewTCPTransport()
	cfg.Transport = tr
	eng := New(sys, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	if err := eng.Deploy(ctx, asg); err != nil {
		cancel()
		t.Fatal(err)
	}
	return eng, tr, a, func() { eng.Stop(); cancel() }
}

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTCPTransportReconnectsAfterDialFailure drives the (0,2) peer — unused
// by the deployed flows — through dial failure, backoff, and recovery, and
// checks the retries surface in the monitor.
func TestTCPTransportReconnectsAfterDialFailure(t *testing.T) {
	eng, tr, a, stop := relayEngine(t)
	defer stop()
	key := [2]dsps.HostID{0, 2}
	tup := Tuple{Stream: a}

	tr.mu.Lock()
	good := tr.addrs[2]
	tr.addrs[2] = deadAddr(t)
	tr.mu.Unlock()

	// First dial fails and opens the backoff window.
	tr.Send(0, 2, tup)
	tr.mu.Lock()
	fails := tr.peers[key].fails
	tr.mu.Unlock()
	if fails != 1 {
		t.Fatalf("after failed dial: fails = %d, want 1", fails)
	}

	// Retries while the peer is down keep failing but are bounded by
	// backoff, and every redial is counted.
	for i := 0; i < 3; i++ {
		time.Sleep(reconnectMax)
		tr.Send(0, 2, tup)
	}
	attempts, failures := eng.Monitor().Reconnects()
	if attempts < 3 || failures < 3 {
		t.Fatalf("reconnect stats after dead-peer retries: attempts %d failures %d, want >= 3 each", attempts, failures)
	}

	// Peer comes back: the next post-backoff Send heals the connection.
	tr.mu.Lock()
	tr.addrs[2] = good
	tr.mu.Unlock()
	time.Sleep(reconnectMax)
	tr.Send(0, 2, tup)
	tr.mu.Lock()
	_, connected := tr.conns[key]
	_, backingOff := tr.peers[key]
	tr.mu.Unlock()
	if !connected || backingOff {
		t.Fatalf("after recovery: connected=%v backingOff=%v, want true/false", connected, backingOff)
	}
	attempts2, failures2 := eng.Monitor().Reconnects()
	if attempts2 <= attempts || failures2 != failures {
		t.Fatalf("healing redial not counted as a clean attempt: %d/%d -> %d/%d",
			attempts, failures, attempts2, failures2)
	}
}

// TestTCPTransportReconnectsAfterWriteFailure kills an established
// connection out from under the transport and checks a later Send redials
// instead of writing into the dead socket forever.
func TestTCPTransportReconnectsAfterWriteFailure(t *testing.T) {
	eng, tr, a, stop := relayEngine(t)
	defer stop()
	key := [2]dsps.HostID{0, 2}
	tup := Tuple{Stream: a}

	tr.Send(0, 2, tup) // establish
	tr.mu.Lock()
	conn, ok := tr.conns[key]
	tr.mu.Unlock()
	if !ok {
		t.Fatal("no connection established")
	}
	conn.Close()

	// The write on the closed socket fails; the transport must retire the
	// connection and schedule a redial.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tr.Send(0, 2, tup)
		tr.mu.Lock()
		_, stillThere := tr.conns[key]
		broken := !stillThere || tr.conns[key] != conn
		tr.mu.Unlock()
		if broken || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	tr.mu.Lock()
	sameConn := tr.conns[key] == conn
	tr.mu.Unlock()
	if sameConn {
		t.Fatal("transport kept writing into the closed connection")
	}

	// After backoff the pair heals over a fresh connection.
	time.Sleep(reconnectMax)
	tr.Send(0, 2, tup)
	tr.mu.Lock()
	fresh, connected := tr.conns[key]
	tr.mu.Unlock()
	if !connected || fresh == conn {
		t.Fatal("pair did not heal over a fresh connection")
	}
	if attempts, _ := eng.Monitor().Reconnects(); attempts == 0 {
		t.Fatal("redial after write failure not counted")
	}
}

func TestEngineHostStates(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 1}, {ID: 1, CPU: 1}, {ID: 2, CPU: 1}}
	sys := dsps.NewSystem(hosts, 10)
	eng := New(sys, DefaultConfig())
	eng.FailHost(1)
	got := eng.HostStates()
	want := []dsps.HostState{dsps.HostUp, dsps.HostDown, dsps.HostUp}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HostStates[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	eng.RecoverHost(1)
	if st := eng.HostStates(); st[1] != dsps.HostUp {
		t.Fatalf("recovered host still %v", st[1])
	}
}
