package engine

import (
	"time"

	"sqpr/internal/dsps"
)

// host executes operators and routes tuples. Each host runs a single
// goroutine draining its inbox (the paper's DISSP hosts use worker pools;
// one worker per host keeps the simulation deterministic enough to test
// while preserving the host-level concurrency of the real system).
type host struct {
	id    dsps.HostID
	e     *Engine
	inbox chan Tuple
	ops   map[dsps.OperatorID]*opInstance
	byIn  map[dsps.StreamID][]*opInstance // local consumers per stream
	fwd   map[dsps.StreamID][]dsps.HostID // flow routing (stream → hosts)
	dlv   map[dsps.StreamID]bool          // client deliveries
	local chan Tuple                      // tuples produced locally
}

func newHost(e *Engine, id dsps.HostID) *host {
	return &host{
		id:    id,
		e:     e,
		inbox: make(chan Tuple, e.cfg.InboxDepth),
		ops:   make(map[dsps.OperatorID]*opInstance),
		byIn:  make(map[dsps.StreamID][]*opInstance),
		fwd:   make(map[dsps.StreamID][]dsps.HostID),
		dlv:   make(map[dsps.StreamID]bool),
		local: make(chan Tuple, e.cfg.InboxDepth),
	}
}

// installOperator instantiates an operator and registers it as a local
// consumer of its input streams.
func (h *host) installOperator(op dsps.OperatorID) {
	inst := newOpInstance(h.e, &h.e.sys.Operators[op])
	h.ops[op] = inst
	for _, in := range h.e.sys.Operators[op].Inputs {
		h.byIn[in] = append(h.byIn[in], inst)
	}
}

func (h *host) run() {
	defer h.e.wg.Done()
	for {
		select {
		case <-h.e.ctx.Done():
			return
		case t := <-h.inbox:
			h.process(t)
		case t := <-h.local:
			h.process(t)
		}
	}
}

// ingestLocal enqueues a locally produced tuple (base source or operator
// output) for processing on this host.
func (h *host) ingestLocal(t Tuple) {
	select {
	case h.local <- t:
	case <-h.e.ctx.Done():
	default:
		h.e.mon.recordDrop(h.id)
	}
}

// process routes one tuple: to local operators, to downstream hosts, and to
// the client delivery channel.
func (h *host) process(t Tuple) {
	if h.e.down[h.id].Load() {
		h.e.mon.recordDrop(h.id) // crashed host: queued tuples are lost
		return
	}
	// Local operator consumption.
	for _, inst := range h.byIn[t.Stream] {
		outs := inst.consume(t)
		h.e.mon.recordCompute(h.id, inst.op.Cost)
		for _, out := range outs {
			h.ingestLocal(out)
		}
	}
	// Inter-host forwarding (the x variables, including relays).
	for _, to := range h.fwd[t.Stream] {
		h.e.send(h.id, to, t)
	}
	// Client delivery (the d variables).
	if h.dlv[t.Stream] {
		h.e.mon.recordDelivery(h.id, h.e.sys.Streams[t.Stream].Rate)
		if t.BornNanos > 0 {
			h.e.mon.recordLatency(time.Duration(time.Now().UnixNano() - t.BornNanos))
		}
		select {
		case h.e.results <- t:
		default:
		}
	}
}
