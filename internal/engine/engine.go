// Package engine is a miniature distributed stream processing engine — the
// stand-in for the paper's DISSP prototype (§IV-C) and its Emulab
// deployment (§V-B). It instantiates query plans produced by any planner:
// hosts run operators over typed tuples in sliding windows, streams flow
// between hosts according to the plan's flow variables, base streams are
// injected by rate-controlled sources, and a per-host resource monitor
// reports CPU and network consumption back to the planner, closing the
// plan → deploy → measure loop of Fig. 3.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// ErrAlreadyDeployed reports a Deploy on an engine that is already running a
// plan. Stop the engine first; a stopped engine can be redeployed.
var ErrAlreadyDeployed = errors.New("engine already deployed")

// Tuple is one data item of a stream.
type Tuple struct {
	Stream dsps.StreamID
	// Key is the join attribute.
	Key int64
	// Value is an opaque payload (e.g. a measurement).
	Value float64
	// SeqNo orders tuples within their source.
	SeqNo int64
	// BornNanos is the source injection time (UnixNano); it rides along
	// through joins and relays so delivery latency can be measured — the
	// quantity the paper's load-balancing discussion (§II-C) is about.
	BornNanos int64
}

// Config tunes the engine.
type Config struct {
	// TuplesPerRateUnit converts a stream's model rate into tuples/sec:
	// a stream with rate 10 and 2.0 tuples-per-unit emits 20 tuples/sec.
	TuplesPerRateUnit float64
	// WindowSize is the number of tuples each join retains per input.
	WindowSize int
	// KeyDomain bounds generated join keys; smaller domains join more.
	KeyDomain int64
	// InboxDepth is the per-host network queue length.
	InboxDepth int
	// Transport selects how tuples cross host boundaries; nil uses the
	// in-process channel transport. NewTCPTransport() runs every flow over
	// loopback TCP, as the DISSP prototype does.
	Transport Transport
}

// DefaultConfig returns sensible demo settings.
func DefaultConfig() Config {
	return Config{
		TuplesPerRateUnit: 2,
		WindowSize:        64,
		KeyDomain:         32,
		InboxDepth:        1024,
	}
}

// Engine executes one deployed assignment.
type Engine struct {
	sys *dsps.System
	cfg Config

	hosts     []*host
	down      []atomic.Bool // host failure flags (index = HostID)
	mon       *Monitor
	transport Transport
	kernels   map[dsps.OperatorID]UnaryKernel
	results   chan Tuple
	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup

	// mu guards the deploy/stop lifecycle: running flips on Deploy and off
	// only after Stop has joined every goroutine and closed results, so a
	// redeploy can never race goroutines of the previous deployment.
	mu      sync.Mutex
	running bool //sqpr:guarded-by mu

	// churnMu serialises ApplyChurn calls so the dataplane and the planner
	// observe churn events in one order: without it, two concurrent calls
	// with conflicting events (fail vs recover of the same host) could land
	// in opposite orders on the engine's atomics and in the planner's
	// repair queue, leaving the two permanently inconsistent.
	churnMu sync.Mutex
}

// New creates an engine for the system (not yet deployed).
func New(sys *dsps.System, cfg Config) *Engine {
	if cfg.TuplesPerRateUnit <= 0 {
		cfg.TuplesPerRateUnit = 2
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 64
	}
	if cfg.KeyDomain <= 0 {
		cfg.KeyDomain = 32
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 1024
	}
	tr := cfg.Transport
	if tr == nil {
		tr = &inprocTransport{}
	}
	return &Engine{
		sys:       sys,
		cfg:       cfg,
		down:      make([]atomic.Bool, sys.NumHosts()),
		mon:       NewMonitor(sys),
		transport: tr,
	}
}

// FailHost simulates a crash of host h: its queued and future tuples are
// discarded (counted as drops), it stops computing and delivering, and
// tuples sent to it are lost in flight — the churn the repair planner
// reacts to. Safe to call at any time, including before Deploy.
func (e *Engine) FailHost(h dsps.HostID) {
	if !e.down[h].Swap(true) {
		e.mon.recordHostEvent(true)
	}
}

// RecoverHost brings a failed host back: it resumes processing and its base
// sources resume injecting. Operators and routes installed at Deploy time
// are still in place, matching a process restart on the same plan.
func (e *Engine) RecoverHost(h dsps.HostID) {
	if e.down[h].Swap(false) {
		e.mon.recordHostEvent(false)
	}
}

// HostDown reports whether host h is currently failed.
func (e *Engine) HostDown(h dsps.HostID) bool { return e.down[h].Load() }

// HostStates returns the engine's observed availability of every host —
// the "world as it is" view a reconciliation loop (plan.Service.Reconcile)
// diffs against the planner's intent. The engine only distinguishes
// up/down; draining is a planner-side notion.
func (e *Engine) HostStates() []dsps.HostState {
	states := make([]dsps.HostState, len(e.down))
	for h := range e.down {
		if e.down[h].Load() {
			states[h] = dsps.HostDown
		}
	}
	return states
}

// ApplyChurn is the engine's service-based churn entry point: it forwards
// the events to the planner's Repair and then mirrors the system's recorded
// host availability onto the running engine — so dataplane and plan change
// together, planner first. The mirror reads the shared system's host states
// rather than guessing from the error: Repair commits host-state
// transitions even when its re-planning step later fails or overruns a
// deadline, and a malformed event set commits nothing at all, so the system
// record — not error identity — is the truth about what the planner
// applied. The planner must operate on the same System the engine runs.
//
// When the request never completed through the planner — backpressure
// (plan.ErrQueueFull), a closed service, or a context that died while the
// request was queued — the engine is left untouched: there is no
// happens-before edge with the planner's state, so reading it would race,
// and in the worst case (a ctx that expired just as the dispatcher picked
// the repair up) the engine merely lags in the benign direction — hosts the
// planner stopped using keep running until the caller retries.
//
// Pass a plan.Service as the planner and the call is safe from any
// goroutine — monitors and operators can report failures concurrently while
// clients keep submitting. Concurrent ApplyChurn calls are serialised
// against each other, so conflicting events for the same host reach the
// planner and the dataplane in one order. Drain and drift events touch only
// the planner; the engine keeps executing the still-valid allocations until
// a new plan is deployed.
func (e *Engine) ApplyChurn(ctx context.Context, p plan.QueryPlanner, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	e.churnMu.Lock()
	defer e.churnMu.Unlock()
	for _, ev := range events {
		switch ev.Kind {
		case plan.HostFailed, plan.HostRecovered:
			if int(ev.Host) < 0 || int(ev.Host) >= e.sys.NumHosts() {
				return plan.RepairResult{}, fmt.Errorf("engine: churn event %v: host %d out of range", ev.Kind, ev.Host)
			}
		}
	}
	rr, err := p.Repair(ctx, events, opts...)
	if err != nil && (errors.Is(err, plan.ErrQueueFull) || errors.Is(err, plan.ErrServiceClosed) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return rr, err
	}
	for _, ev := range events {
		switch ev.Kind {
		case plan.HostFailed, plan.HostRecovered:
			// Mirror what the planner actually recorded, not what the event
			// asked for: a pre-commit validation failure leaves the system
			// (and so the engine) unchanged.
			if e.sys.Hosts[ev.Host].State == dsps.HostDown {
				e.FailHost(ev.Host)
			} else {
				e.RecoverHost(ev.Host)
			}
		}
	}
	return rr, err
}

// Monitor exposes the engine's resource monitor.
func (e *Engine) Monitor() *Monitor { return e.mon }

// Results returns the client delivery channel carrying tuples of all
// provided result streams. Valid after Deploy; Stop closes it after every
// producer has exited, so a consumer ranging over it terminates.
func (e *Engine) Results() <-chan Tuple {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.results
}

// Deploy instantiates the assignment: one goroutine per host, per base
// source. The assignment must be feasible (Validate passes); Deploy checks.
// Deploying over a live engine fails with ErrAlreadyDeployed — goroutines of
// the previous deployment still send on the old results channel, so
// reallocating it under them would strand consumers. Stop first; a stopped
// engine can be deployed again (with a fresh Results channel).
func (e *Engine) Deploy(ctx context.Context, a *dsps.Assignment) error {
	if err := a.Validate(e.sys); err != nil {
		return fmt.Errorf("engine: refusing to deploy infeasible plan: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return fmt.Errorf("engine: %w", ErrAlreadyDeployed)
	}
	e.ctx, e.cancel = context.WithCancel(ctx)
	e.results = make(chan Tuple, 4096)

	n := e.sys.NumHosts()
	e.hosts = make([]*host, n)
	for h := 0; h < n; h++ {
		e.hosts[h] = newHost(e, dsps.HostID(h))
	}
	if err := e.transport.Start(e); err != nil {
		e.cancel()
		return err
	}

	// Routing tables from the assignment.
	for f, on := range a.Flows {
		if on {
			e.hosts[f.From].fwd[f.Stream] = append(e.hosts[f.From].fwd[f.Stream], f.To)
		}
	}
	for pl, on := range a.Ops {
		if !on {
			continue
		}
		e.hosts[pl.Host].installOperator(pl.Op)
	}
	for s, h := range a.Provides {
		e.hosts[h].dlv[s] = true
	}

	// Start hosts.
	for _, h := range e.hosts {
		e.wg.Add(1)
		go h.run()
	}
	// Start base sources for streams actually consumed somewhere.
	needed := e.neededBaseStreams(a)
	for s := range needed {
		for _, bh := range e.sys.BaseHosts(s) {
			e.wg.Add(1)
			go e.runSource(s, bh)
			break // one injection point suffices
		}
	}
	e.running = true
	return nil
}

// neededBaseStreams finds the base streams consumed by placed operators or
// forwarded by flows.
func (e *Engine) neededBaseStreams(a *dsps.Assignment) map[dsps.StreamID]bool {
	need := make(map[dsps.StreamID]bool)
	for pl, on := range a.Ops {
		if !on {
			continue
		}
		for _, in := range e.sys.Operators[pl.Op].Inputs {
			if e.sys.Streams[in].IsBase() {
				need[in] = true
			}
		}
	}
	for f, on := range a.Flows {
		if on && e.sys.Streams[f.Stream].IsBase() {
			need[f.Stream] = true
		}
	}
	for s := range a.Provides {
		if e.sys.Streams[s].IsBase() {
			need[s] = true
		}
	}
	return need
}

// runSource injects base-stream tuples at the stream's model rate.
func (e *Engine) runSource(s dsps.StreamID, at dsps.HostID) {
	defer e.wg.Done()
	rate := e.sys.Streams[s].Rate * e.cfg.TuplesPerRateUnit // tuples/sec
	if rate <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var seq int64
	for {
		select {
		case <-e.ctx.Done():
			return
		case <-tick.C:
			if e.down[at].Load() {
				continue // failed hosts inject nothing
			}
			seq++
			t := Tuple{
				Stream:    s,
				Key:       seq % e.cfg.KeyDomain,
				Value:     float64(seq),
				SeqNo:     seq,
				BornNanos: time.Now().UnixNano(),
			}
			e.hosts[at].ingestLocal(t)
		}
	}
}

// Stop terminates all host and source goroutines, waits for them, and then
// closes the Results channel exactly once — so a consumer ranging over
// Results terminates instead of blocking forever. Stop is idempotent: a
// second Stop (or a Stop before Deploy) returns immediately without
// panicking or double-closing.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.running {
		return
	}
	e.cancel()
	e.transport.Stop()
	e.wg.Wait()
	close(e.results)
	e.running = false
}

// send crosses the network via the configured transport; the monitor
// accounts the transfer either way. Tuples to or from a failed host are
// lost in flight and counted as drops at the sender.
func (e *Engine) send(from, to dsps.HostID, t Tuple) {
	if e.down[from].Load() || e.down[to].Load() {
		e.mon.recordDrop(from)
		return
	}
	e.mon.recordTransfer(from, to, e.sys.Streams[t.Stream].Rate)
	e.transport.Send(from, to, t)
}
