package engine

import (
	"sync"
	"time"

	"sqpr/internal/dsps"
)

// Monitor is the per-host resource monitor of Fig. 3: it aggregates CPU
// work, network transfer and delivery activity, and reports utilisation
// snapshots that a planner can compare against its cost-model estimates
// (the input to adaptive replanning, §IV-B).
type Monitor struct {
	sys *dsps.System

	// The monitor's lock is a leaf: churn application and transport sends
	// record into it while holding their own locks, and it must never nest
	// around them.
	//
	//sqpr:lock-order Engine.churnMu < Monitor.mu
	//sqpr:lock-order TCPTransport.mu < Monitor.mu
	mu        sync.Mutex
	cpuWork   []float64 // accumulated operator cost units per host
	sent      []float64 // accumulated rate-weighted transfers out (network egress only)
	received  []float64
	delivered []float64 // accumulated rate-weighted client deliveries (local, no egress)
	drops     []int64
	opWork    map[dsps.OperatorID]float64
	samples   int64 // compute records folded into cpuWork

	latencySum   time.Duration
	latencyCount int64
	latencyMax   time.Duration

	failures   int64
	recoveries int64

	reconnectAttempts int64
	reconnectFailures int64
}

// NewMonitor creates a monitor for the system.
func NewMonitor(sys *dsps.System) *Monitor {
	n := sys.NumHosts()
	return &Monitor{
		sys:       sys,
		cpuWork:   make([]float64, n),
		sent:      make([]float64, n),
		received:  make([]float64, n),
		delivered: make([]float64, n),
		drops:     make([]int64, n),
		opWork:    make(map[dsps.OperatorID]float64),
	}
}

func (m *Monitor) recordCompute(h dsps.HostID, cost float64) {
	m.mu.Lock()
	m.cpuWork[h] += cost
	m.samples++
	m.mu.Unlock()
}

// RecordOpWork attributes measured work to an operator (used by tests and
// the adaptive-replanning demo to synthesise drift).
func (m *Monitor) RecordOpWork(op dsps.OperatorID, cost float64) {
	m.mu.Lock()
	m.opWork[op] += cost
	m.mu.Unlock()
}

func (m *Monitor) recordTransfer(from, to dsps.HostID, rate float64) {
	m.mu.Lock()
	m.sent[from] += rate
	m.received[to] += rate
	m.mu.Unlock()
}

// recordDelivery accounts a client delivery on h. Deliveries are local hand-
// offs, not network egress, so they are kept out of sent: folding them in
// would overcount egress and break the sent/received balance across hosts.
func (m *Monitor) recordDelivery(h dsps.HostID, rate float64) {
	m.mu.Lock()
	m.delivered[h] += rate
	m.mu.Unlock()
}

func (m *Monitor) recordDrop(h dsps.HostID) {
	m.mu.Lock()
	m.drops[h]++
	m.mu.Unlock()
}

func (m *Monitor) recordHostEvent(failed bool) {
	m.mu.Lock()
	if failed {
		m.failures++
	} else {
		m.recoveries++
	}
	m.mu.Unlock()
}

func (m *Monitor) recordReconnectAttempt() {
	m.mu.Lock()
	m.reconnectAttempts++
	m.mu.Unlock()
}

func (m *Monitor) recordReconnectFailure() {
	m.mu.Lock()
	m.reconnectFailures++
	m.mu.Unlock()
}

// Reconnects returns how many times the transport redialled a previously
// failed peer connection, and how many of those attempts failed again.
func (m *Monitor) Reconnects() (attempts, failures int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reconnectAttempts, m.reconnectFailures
}

// HostEvents returns the number of host failures and recoveries observed.
func (m *Monitor) HostEvents() (failures, recoveries int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failures, m.recoveries
}

func (m *Monitor) recordLatency(d time.Duration) {
	m.mu.Lock()
	m.latencySum += d
	m.latencyCount++
	if d > m.latencyMax {
		m.latencyMax = d
	}
	m.mu.Unlock()
}

// Latency returns the mean and maximum source-to-delivery latency observed
// so far (zero when nothing was delivered).
func (m *Monitor) Latency() (mean, max time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latencyCount == 0 {
		return 0, 0
	}
	return m.latencySum / time.Duration(m.latencyCount), m.latencyMax
}

// Snapshot is a utilisation report.
type Snapshot struct {
	// CPUWork is accumulated operator cost per host since start.
	CPUWork []float64
	// Sent and Received are accumulated rate-weighted transfer volumes.
	// Sent is strictly network egress (inter-host forwarding, including
	// relays), so summed over hosts it balances against Received up to
	// tuples still in flight or dropped.
	Sent, Received []float64
	// Delivered is the accumulated rate-weighted client delivery volume per
	// host — local hand-offs to result consumers, disjoint from Sent.
	Delivered []float64
	// Drops counts tuples lost to full queues per host.
	Drops []int64
	// ComputeSamples counts the operator invocations folded into CPUWork,
	// so CPUWork/ComputeSamples is the mean per-invocation cost.
	ComputeSamples int64
}

// Snapshot returns a copy of the current counters.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		CPUWork:        append([]float64(nil), m.cpuWork...),
		Sent:           append([]float64(nil), m.sent...),
		Received:       append([]float64(nil), m.received...),
		Delivered:      append([]float64(nil), m.delivered...),
		Drops:          append([]int64(nil), m.drops...),
		ComputeSamples: m.samples,
	}
	return s
}

// BusiestHost returns the host with the most accumulated CPU work.
func (m *Monitor) BusiestHost() dsps.HostID {
	m.mu.Lock()
	defer m.mu.Unlock()
	best, bestWork := dsps.HostID(0), -1.0
	for h, w := range m.cpuWork {
		if w > bestWork {
			bestWork = w
			best = dsps.HostID(h)
		}
	}
	return best
}
