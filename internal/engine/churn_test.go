package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// drain empties the results channel without blocking.
func drain(ch <-chan Tuple) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// awaitResult waits up to d for one delivered tuple.
func awaitResult(ch <-chan Tuple, d time.Duration) bool {
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}

func TestFailAndRecoverHost(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	cfg := DefaultConfig()
	cfg.KeyDomain = 4
	eng := New(sys, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	if !awaitResult(eng.Results(), 2*time.Second) {
		t.Fatal("no results before the failure")
	}

	// Fail the providing host: tuples flowing 0 -> 1 are lost in flight.
	eng.FailHost(1)
	if !eng.HostDown(1) {
		t.Fatal("HostDown(1) = false after FailHost")
	}
	// Let in-flight tuples clear, then verify delivery has stopped.
	time.Sleep(100 * time.Millisecond)
	drain(eng.Results())
	if awaitResult(eng.Results(), 200*time.Millisecond) {
		t.Fatal("results delivered while the providing host was down")
	}
	snap := eng.Monitor().Snapshot()
	if snap.Drops[0] == 0 {
		t.Fatal("no drops recorded for tuples sent to the failed host")
	}

	// Recovery resumes delivery on the same deployed plan.
	eng.RecoverHost(1)
	if eng.HostDown(1) {
		t.Fatal("HostDown(1) = true after RecoverHost")
	}
	if !awaitResult(eng.Results(), 2*time.Second) {
		t.Fatal("no results after recovery")
	}
	fails, recs := eng.Monitor().HostEvents()
	if fails != 1 || recs != 1 {
		t.Fatalf("HostEvents = (%d, %d), want (1, 1)", fails, recs)
	}
}

// TestApplyChurnDrivesEngineAndPlanner checks the service-based churn entry
// point: one call fails the host on the dataplane and repairs the plan, and
// works identically through a goroutine-safe plan.Service front-end.
func TestApplyChurnDrivesEngineAndPlanner(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	eng := New(sys, DefaultConfig())
	if err := eng.Deploy(context.Background(), asg); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// A stub planner records the repair events it was handed and commits
	// their host-state transitions to the shared system, as every real
	// planner's Repair does — ApplyChurn mirrors the engine from there.
	rec := &recordingPlanner{sys: sys}
	svc := plan.NewService(rec, plan.ServiceConfig{})
	defer svc.Close()

	if _, err := eng.ApplyChurn(context.Background(), svc, []plan.Event{plan.FailHost(1)}); err != nil {
		t.Fatal(err)
	}
	if !eng.HostDown(1) {
		t.Fatal("ApplyChurn did not fail host 1 on the engine")
	}
	if rec.events() != 1 {
		t.Fatalf("planner saw %d repair events, want 1", rec.events())
	}

	if _, err := eng.ApplyChurn(context.Background(), svc, []plan.Event{plan.RecoverHost(1)}); err != nil {
		t.Fatal(err)
	}
	if eng.HostDown(1) {
		t.Fatal("ApplyChurn did not recover host 1 on the engine")
	}

	// Out-of-range hosts are rejected before any state changes.
	if _, err := eng.ApplyChurn(context.Background(), svc, []plan.Event{plan.FailHost(99)}); err == nil {
		t.Fatal("ApplyChurn accepted an out-of-range host")
	}

	// A malformed event set fails the planner's validation before any
	// host-state transition commits; the mirror must leave the engine
	// unchanged too.
	bad := []plan.Event{plan.FailHost(1), plan.DriftQuery(dsps.StreamID(9999))}
	if _, err := eng.ApplyChurn(context.Background(), svc, bad); err == nil {
		t.Fatal("ApplyChurn accepted a malformed event set")
	}
	if eng.HostDown(1) {
		t.Fatal("ApplyChurn failed the engine host although the planner rejected the events pre-commit")
	}

	// When the repair never reaches the planner (here: closed service), the
	// engine half must not be applied either — neither side committed.
	svc.Close()
	if _, err := eng.ApplyChurn(context.Background(), svc, []plan.Event{plan.FailHost(1)}); !errors.Is(err, plan.ErrServiceClosed) {
		t.Fatalf("ApplyChurn on closed service: err = %v, want ErrServiceClosed", err)
	}
	if eng.HostDown(1) {
		t.Fatal("ApplyChurn failed the engine host although the planner never saw the repair")
	}
}

// recordingPlanner is a minimal QueryPlanner stub counting Repair events.
type recordingPlanner struct {
	mu  sync.Mutex
	sys *dsps.System
	n   int
}

func (r *recordingPlanner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	return plan.Result{Admitted: true}, nil
}
func (r *recordingPlanner) Remove(q dsps.StreamID) error { return nil }
func (r *recordingPlanner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	r.mu.Lock()
	r.n += len(events)
	r.mu.Unlock()
	if err := plan.ApplyEvents(r.sys, events); err != nil {
		return plan.RepairResult{}, err
	}
	return plan.RepairResult{}, nil
}
func (r *recordingPlanner) Assignment() *dsps.Assignment  { return dsps.NewAssignment() }
func (r *recordingPlanner) Admitted(q dsps.StreamID) bool { return false }
func (r *recordingPlanner) AdmittedCount() int            { return 0 }
func (r *recordingPlanner) Stats() plan.Stats             { return plan.Stats{} }

func (r *recordingPlanner) events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
