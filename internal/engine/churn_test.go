package engine

import (
	"context"
	"testing"
	"time"
)

// drain empties the results channel without blocking.
func drain(ch <-chan Tuple) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// awaitResult waits up to d for one delivered tuple.
func awaitResult(ch <-chan Tuple, d time.Duration) bool {
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}

func TestFailAndRecoverHost(t *testing.T) {
	sys, asg, _ := joinSetup(t)
	cfg := DefaultConfig()
	cfg.KeyDomain = 4
	eng := New(sys, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, asg); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	if !awaitResult(eng.Results(), 2*time.Second) {
		t.Fatal("no results before the failure")
	}

	// Fail the providing host: tuples flowing 0 -> 1 are lost in flight.
	eng.FailHost(1)
	if !eng.HostDown(1) {
		t.Fatal("HostDown(1) = false after FailHost")
	}
	// Let in-flight tuples clear, then verify delivery has stopped.
	time.Sleep(100 * time.Millisecond)
	drain(eng.Results())
	if awaitResult(eng.Results(), 200*time.Millisecond) {
		t.Fatal("results delivered while the providing host was down")
	}
	snap := eng.Monitor().Snapshot()
	if snap.Drops[0] == 0 {
		t.Fatal("no drops recorded for tuples sent to the failed host")
	}

	// Recovery resumes delivery on the same deployed plan.
	eng.RecoverHost(1)
	if eng.HostDown(1) {
		t.Fatal("HostDown(1) = true after RecoverHost")
	}
	if !awaitResult(eng.Results(), 2*time.Second) {
		t.Fatal("no results after recovery")
	}
	fails, recs := eng.Monitor().HostEvents()
	if fails != 1 || recs != 1 {
		t.Fatalf("HostEvents = (%d, %d), want (1, 1)", fails, recs)
	}
}
