package engine

import (
	"sync"

	"sqpr/internal/dsps"
)

// opInstance is one running operator. Binary operators are executed as
// sliding-window symmetric hash joins on the tuple key; unary operators act
// as filter/project passes. The instance is only touched by its host's
// goroutine, but a mutex guards against future multi-worker hosts.
type opInstance struct {
	op *dsps.Operator
	e  *Engine

	mu      sync.Mutex
	windows map[dsps.StreamID]*window
	kernel  UnaryKernel
	outSeq  int64
}

func newOpInstance(e *Engine, op *dsps.Operator) *opInstance {
	inst := &opInstance{op: op, e: e, windows: make(map[dsps.StreamID]*window)}
	for _, in := range op.Inputs {
		inst.windows[in] = newWindow(e.cfg.WindowSize)
	}
	if k, ok := e.kernels[op.ID]; ok {
		inst.kernel = k
	}
	return inst
}

// consume processes one input tuple and returns any produced output tuples.
func (o *opInstance) consume(t Tuple) []Tuple {
	o.mu.Lock()
	defer o.mu.Unlock()
	w, ok := o.windows[t.Stream]
	if !ok {
		return nil
	}
	w.add(t)
	if len(o.op.Inputs) == 1 {
		// Unary operator: run the registered kernel (filter, project,
		// aggregate); the default is identity pass-through. The model
		// treats selection as rate reduction, which the monitor accounts
		// via stream rates.
		out := t
		if o.kernel != nil {
			var emit bool
			out, emit = o.kernel.Process(t)
			if !emit {
				return nil
			}
		}
		o.outSeq++
		out.Stream = o.op.Output
		out.SeqNo = o.outSeq
		if out.BornNanos == 0 {
			out.BornNanos = t.BornNanos
		}
		return []Tuple{out}
	}
	// Symmetric hash join: match the new tuple against the windows of the
	// other inputs; a match across all inputs emits one output tuple.
	var outs []Tuple
	matches := 1
	var sum float64 = t.Value
	for _, in := range o.op.Inputs {
		if in == t.Stream {
			continue
		}
		ow := o.windows[in]
		hits := ow.matching(t.Key)
		if len(hits) == 0 {
			return nil
		}
		matches *= len(hits)
		sum += hits[len(hits)-1].Value
	}
	// Emit one representative output per arrival (full cross-products
	// would swamp the demo engine; selectivity is modelled by key-domain
	// sizing instead).
	o.outSeq++
	outs = append(outs, Tuple{
		Stream:    o.op.Output,
		Key:       t.Key,
		Value:     sum,
		SeqNo:     o.outSeq,
		BornNanos: t.BornNanos, // latency measured from the newest input
	})
	_ = matches
	return outs
}

// window is a bounded FIFO of tuples with a hash index on the join key.
type window struct {
	cap   int
	fifo  []Tuple
	byKey map[int64][]int // key → indices into fifo (may contain stale)
}

func newWindow(cap int) *window {
	return &window{cap: cap, byKey: make(map[int64][]int)}
}

func (w *window) add(t Tuple) {
	if len(w.fifo) >= w.cap {
		// Evict the oldest tuple; rebuild its key bucket lazily.
		old := w.fifo[0]
		w.fifo = w.fifo[1:]
		idxs := w.byKey[old.Key]
		if len(idxs) > 0 {
			w.byKey[old.Key] = idxs[1:]
		}
		// Shift stored indices (bounded cap keeps this cheap).
		for k, v := range w.byKey {
			for i := range v {
				v[i]--
			}
			w.byKey[k] = v
		}
	}
	w.fifo = append(w.fifo, t)
	w.byKey[t.Key] = append(w.byKey[t.Key], len(w.fifo)-1)
}

// matching returns the live tuples with the given key.
func (w *window) matching(key int64) []Tuple {
	idxs := w.byKey[key]
	out := make([]Tuple, 0, len(idxs))
	for _, i := range idxs {
		if i >= 0 && i < len(w.fifo) && w.fifo[i].Key == key {
			out = append(out, w.fifo[i])
		}
	}
	return out
}
