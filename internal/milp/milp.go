// Package milp provides a small mixed-integer linear programming solver on
// top of the simplex in internal/lp. It offers the subset of the CPLEX
// feature surface that the SQPR planner depends on: binary and continuous
// variables, linear constraints, maximisation or minimisation, a solve
// deadline after which the best incumbent found so far is returned, node
// and stagnation limits, branch priorities, and externally supplied
// warm-start incumbents.
//
// The search is a best-first branch and bound with depth-first plunging,
// wrapped in a tree-reduction layer (unless Options.DisableTreeReduction):
// a presolve pass tightens and fixes over the row image before compilation
// (presolve.go), the root separates lifted cover, clique and Gomory
// mixed-integer cuts into a lazily-loaded cut pool (cuts.go, lp/gomory.go),
// reduced-cost bound fixing pins binaries after every node LP, and
// branching runs on reliability-initialised pseudo-costs with
// builder-supplied priorities as tie-breaks. A rounding "dive" heuristic at
// the root produces an early incumbent when the caller supplied none.
package milp

import (
	"context"
	"fmt"
	"math"
	"time"

	"sqpr/internal/lp"
)

// VarType distinguishes variable domains.
type VarType int8

// Variable domains.
const (
	Continuous VarType = iota
	Binary
)

// Var is an opaque variable handle returned by Model.AddVar.
type Var int

// Term couples a variable with a coefficient.
type Term struct {
	Var  Var
	Coef float64
}

// Sense re-exports the constraint senses of internal/lp for callers.
type Sense = lp.Sense

// Constraint senses.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

type varInfo struct {
	lo, hi float64
	typ    VarType
	prio   int8
	name   string
	obj    float64
}

type rowInfo struct {
	terms []Term
	sense Sense
	rhs   float64
	name  string
}

// Model is a mutable MILP under construction. It is not safe for concurrent
// use (including concurrent Solve calls on the same Model; independent
// Models may solve concurrently).
type Model struct {
	vars     []varInfo
	rows     []rowInfo
	maximize bool

	// scratch is the reusable compilation image; see compile.
	scratch compiled
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Reset empties the model for rebuilding while keeping all backing storage
// (variable and row slices, per-row term slices, the compiled-image arena),
// so a long-lived planner can re-emit its model every submission without
// churning the heap.
func (m *Model) Reset() {
	m.vars = m.vars[:0]
	m.rows = m.rows[:0]
	m.maximize = false
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumRows returns the number of constraints added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// AddVar adds a variable with the given bounds and domain. For Binary
// variables the bounds are intersected with [0,1].
func (m *Model) AddVar(lo, hi float64, typ VarType, name string) Var {
	if typ == Binary {
		lo = math.Max(lo, 0)
		hi = math.Min(hi, 1)
	}
	if lo < 0 {
		// The LP substrate requires non-negative variables; SQPR's model
		// never needs negative values, so clamp defensively.
		lo = 0
	}
	m.vars = append(m.vars, varInfo{lo: lo, hi: hi, typ: typ, name: name})
	return Var(len(m.vars) - 1)
}

// AddBinary adds a {0,1} variable.
func (m *Model) AddBinary(name string) Var { return m.AddVar(0, 1, Binary, name) }

// AddContinuous adds a continuous variable on [lo, hi].
func (m *Model) AddContinuous(lo, hi float64, name string) Var {
	return m.AddVar(lo, hi, Continuous, name)
}

// Fix pins a variable to a single value by collapsing its bounds. Presolve
// then substitutes it out of the LP entirely, which is how SQPR's problem
// reduction keeps planning cost independent of system size.
func (m *Model) Fix(v Var, val float64) {
	m.vars[v].lo = val
	m.vars[v].hi = val
}

// Bounds returns the current bounds of v.
func (m *Model) Bounds(v Var) (lo, hi float64) { return m.vars[v].lo, m.vars[v].hi }

// SetBranchPriority assigns a branching priority to v. Priorities break
// ties between fractional candidates whose pseudo-cost scores are
// indistinguishable — common early in a search, before the pseudo-costs
// have observations. SQPR's builder ranks admission (d) and availability
// (y) above operator placement (z) and flow routing (x): when the scores
// cannot tell candidates apart, the high-value decisions are resolved
// first. A variable whose observed objective degradations mark it as the
// real bottleneck still wins regardless of class. The default priority
// is 0.
func (m *Model) SetBranchPriority(v Var, prio int8) { m.vars[v].prio = prio }

// SetObjective declares the optimisation direction and resets all objective
// coefficients to the given terms.
func (m *Model) SetObjective(maximize bool, terms ...Term) {
	m.maximize = maximize
	for i := range m.vars {
		m.vars[i].obj = 0
	}
	for _, t := range terms {
		m.vars[t.Var].obj += t.Coef
	}
}

// AddObjectiveTerm accumulates an extra coefficient onto the objective.
func (m *Model) AddObjectiveTerm(v Var, coef float64) { m.vars[v].obj += coef }

// AddCons appends a linear constraint. Terms on the same variable are
// accumulated. After a Reset, rows reuse the term storage of the previous
// build.
func (m *Model) AddCons(name string, sense Sense, rhs float64, terms ...Term) {
	if len(m.rows) < cap(m.rows) {
		m.rows = m.rows[:len(m.rows)+1]
	} else {
		m.rows = append(m.rows, rowInfo{})
	}
	r := &m.rows[len(m.rows)-1]
	r.terms = append(r.terms[:0], terms...)
	r.sense = sense
	r.rhs = rhs
	r.name = name
}

// Status reports the outcome of a MILP solve.
type Status int8

// MILP solve outcomes.
const (
	// OptimalMIP means the incumbent was proven optimal within tolerance.
	OptimalMIP Status = iota
	// FeasibleMIP means a feasible incumbent exists but optimality was not
	// proven before a limit was reached (matches the paper's use of a
	// solver timeout returning the best solution found).
	FeasibleMIP
	// InfeasibleMIP means the model has no feasible assignment.
	InfeasibleMIP
	// NoSolution means the search hit its limits before finding any
	// feasible integer point.
	NoSolution
)

// String returns a readable name for the status.
func (s Status) String() string {
	switch s {
	case OptimalMIP:
		return "optimal"
	case FeasibleMIP:
		return "feasible"
	case InfeasibleMIP:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Result is the outcome of Model.Solve.
type Result struct {
	Status    Status
	X         []float64 // incumbent values, one per model variable
	Objective float64   // objective of the incumbent (model direction)
	Bound     float64   // best proven bound on the optimum
	Nodes     int       // branch-and-bound nodes explored
	LPIters   int       // total simplex iterations
	// Factor aggregates the sparse engine's factorization telemetry across
	// every worker solver of the search: refactorization and drift-rebuild
	// counts and eta-append totals add up, peak eta-file length and LU
	// fill-in ratio are high-water marks.
	Factor lp.FactorStats
	// Cuts counts cutting planes separated at the root and kept in the cut
	// pool; Fixings counts reduced-cost (and probing) bound fixings applied
	// during the search; PresolveFixed counts variables eliminated before
	// the search started.
	Cuts          int
	Fixings       int
	PresolveFixed int
	// Stalled is set when the search ended via Options.StallNodes rather
	// than a deadline or node budget; telemetry keeps it apart from real
	// timeouts.
	Stalled bool
	// Cancelled is set when Options.Ctx was cancelled mid-search; callers
	// should discard any incumbent and keep their previous state.
	Cancelled bool
}

// Options tunes a MILP solve.
type Options struct {
	// Ctx, when non-nil, is polled at every branch-and-bound node: a
	// cancelled context aborts the search immediately and the Result is
	// marked Cancelled. A ctx deadline should additionally be folded into
	// Deadline by the caller so it also bounds individual node LPs.
	Ctx context.Context
	// Deadline stops the search and returns the incumbent; zero = none.
	Deadline time.Time
	// MaxNodes caps explored nodes; 0 selects a generous default.
	MaxNodes int
	// Incumbent optionally warm-starts the search with a known feasible
	// point (length NumVars). Infeasible warm starts are ignored.
	Incumbent []float64
	// GapTol terminates when |incumbent − bound| <= GapTol·(1+|incumbent|).
	GapTol float64
	// AbsGapTol terminates (and prunes nodes) when the remaining provable
	// improvement is at most this absolute amount. SQPR exploits this: with
	// λ1 dominating the objective, an absolute gap below λ1 cannot hide an
	// extra admitted query, so the search stops as soon as the admission
	// count is provably optimal.
	AbsGapTol float64
	// IntTol is the integrality tolerance; 0 selects 1e-6.
	IntTol float64
	// Workers sets how many goroutines explore the branch-and-bound tree
	// from the shared best-first queue. Values <= 1 run the identical
	// search inline on the calling goroutine, fully deterministically.
	Workers int
	// StallNodes, when positive, stops the search (returning the incumbent
	// as FeasibleMIP) once that many consecutive nodes were explored
	// without improving the incumbent — counting only while an incumbent
	// exists, so a search that has not found a feasible point yet keeps
	// going. SQPR uses this: with λ1 dominating the objective, a stalled
	// search is either polishing sub-λ1 placement terms or chasing a
	// fractional-only admission whose refutation tree is enormous; neither
	// changes the admission decision the planner is waiting on. 0 disables
	// stagnation stopping (proofs of optimality need the full tree).
	StallNodes int
	// DisableTreeReduction turns off the tree-reduction layer — presolve,
	// root cutting planes, reduced-cost bound fixing and pseudo-cost
	// branching — falling back to plain most-fractional branch and bound
	// over the unreduced model (ablation and conformance testing).
	DisableTreeReduction bool
}

const defaultIntTol = 1e-6

// compiled is the presolved LP image of the model: fixed variables are
// substituted out and the remaining ones are shifted so lower bounds are 0.
// One instance lives on each Model and is rebuilt in place by compile, so
// repeated Solve calls on a long-lived model reuse all of its storage.
type compiled struct {
	m *Model

	active  []int     // model index of each LP variable
	lpIndex []int     // LP index of each model variable, -1 if fixed
	shift   []float64 // lower bound subtracted from each model variable
	fixed   []float64 // value of each fixed model variable (by model index)

	base   lp.Problem // constraints with substituted/fixed parts folded in
	objDir float64    // +1 minimise, -1 the model maximises (we negate)
	objOff float64    // constant objective contribution of fixed variables

	// shiftOff is the objective contribution of the lower-bound shifts of
	// the active variables; together with objOff it converts LP objective
	// values back to model space: modelObj = objDir·lpObj + objOff + shiftOff.
	shiftOff float64

	// Row-compilation scratch: coefficient accumulator per model variable
	// with a round-stamped dirty mark, replacing a per-row map allocation.
	coefAcc []float64
	mark    []int
	touched []int
	round   int

	// Presolve working image: a bounds overlay plus a flattened, mutable
	// copy of the model rows (terms accumulated, coefficients possibly
	// tightened, redundant rows marked skipped). See presolve.go.
	plo, phi []float64
	pterms   []Term
	pstart   []int
	psense   []Sense
	prhs     []float64
	pskip    []bool
	appear   []int32 // live-row appearance count per model variable

	prio     []int8 // branch priority of each LP-active variable
	isIntBuf []bool // integrality of each LP-active variable

	presolveFixed     int // binaries/columns fixed by presolve
	presolveTightened int // coefficients tightened
	presolveDropped   int // redundant rows removed

	// Cut pool (see cuts.go): rows appended to base.Cons past baseRows,
	// deduplicated by hash across separation rounds of one Solve.
	baseRows int // rows of base.Cons that come from the model
	cutSeen  map[uint64]bool

	// Cut-separation scratch (see cuts.go): the knapsack-implied conflict
	// graph (built once per Solve) and the per-round working buffers.
	conflBuilt bool
	conflEdges []uint64 // packed (lo<<32|hi) conflict pairs, sorted
	adjStart   []int    // CSR adjacency offsets per LP-active variable
	adjList    []int32
	cutItems   []cutItem
	coverIdx   []int
	cliqueIdx  []int
	coverCoefs []int
	liftIdx    []int
	liftW      []float64
	liftCoef   []int
	liftMinW   []float64
	cutMark    []int
	cutRound   int

	// Node recycling: fathomed bbNodes are returned here and reused, so the
	// steady-state search allocates no per-node bookkeeping.
	nodeFree []*bbNode

	// Per-Solve search scratch reused across Solve calls.
	openScratch  []*bbNode
	bestXBuf     []float64
	pcUp, pcDn   []float64 // pseudo-cost sums per active variable
	pcUpN, pcDnN []int32   // observation counts per active variable
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// lpSpace converts a model-direction objective value into the minimisation
// space of the compiled LP.
func (c *compiled) lpSpace(modelObj float64) float64 {
	return c.objDir * (modelObj - c.objOff - c.shiftOff)
}

// modelSpace converts an LP objective value back to model direction.
func (c *compiled) modelSpace(lpObj float64) float64 {
	return c.objDir*lpObj + c.objOff + c.shiftOff
}

var errInfeasible = fmt.Errorf("milp: trivially infeasible after presolve")

func growSenses(s []Sense, n int) []Sense {
	if cap(s) < n {
		return make([]Sense, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt8s(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// compile builds the LP image into the model's reusable scratch arena in
// three steps: flatten the model rows into a mutable, term-accumulated row
// image with a bounds overlay; optionally run the tree-reduction presolve
// over that image (see presolve.go); then emit the LP with fixed variables
// substituted out and the remaining ones shifted to zero lower bounds.
// Returns errInfeasible when a row is unsatisfiable over the (possibly
// tightened) bounds.
func (m *Model) compile(presolveOn bool) (*compiled, error) {
	nv := len(m.vars)
	c := &m.scratch
	c.m = m
	c.objDir = 1
	if m.maximize {
		c.objDir = -1
	}
	c.objOff = 0
	c.shiftOff = 0
	c.presolveFixed, c.presolveTightened, c.presolveDropped = 0, 0, 0

	// Bounds overlay: presolve tightens these, never the model's bounds.
	c.plo = growFloats(c.plo, nv)
	c.phi = growFloats(c.phi, nv)
	for i := range m.vars {
		v := &m.vars[i]
		if v.hi < v.lo-1e-9 {
			return nil, errInfeasible
		}
		c.plo[i], c.phi[i] = v.lo, v.hi
	}

	// Row image: accumulated terms, flattened; the accumulator is keyed by
	// model variable with a round-stamped dirty mark (no per-row map).
	c.coefAcc = growFloats(c.coefAcc, nv)
	c.mark = growInts(c.mark, nv)
	nr := len(m.rows)
	c.pstart = growInts(c.pstart, nr+1)
	c.psense = growSenses(c.psense, nr)
	c.prhs = growFloats(c.prhs, nr)
	c.pskip = growBools(c.pskip, nr)
	c.pterms = c.pterms[:0]
	for ri := range m.rows {
		r := &m.rows[ri]
		c.pstart[ri] = len(c.pterms)
		c.psense[ri] = r.sense
		c.prhs[ri] = r.rhs
		c.pskip[ri] = false
		c.round++
		c.touched = c.touched[:0]
		for _, t := range r.terms {
			mi := int(t.Var)
			if c.mark[mi] != c.round {
				c.mark[mi] = c.round
				c.coefAcc[mi] = 0
				c.touched = append(c.touched, mi)
			}
			c.coefAcc[mi] += t.Coef
		}
		for _, mi := range c.touched {
			if cf := c.coefAcc[mi]; cf != 0 {
				c.pterms = append(c.pterms, Term{Var: Var(mi), Coef: cf})
			}
		}
	}
	c.pstart[nr] = len(c.pterms)

	if presolveOn {
		if err := c.runPresolve(); err != nil {
			return nil, err
		}
	}

	// Active set from the overlay bounds.
	c.lpIndex = growInts(c.lpIndex, nv)
	c.shift = growFloats(c.shift, nv)
	c.fixed = growFloats(c.fixed, nv)
	c.active = c.active[:0]
	for i := range m.vars {
		v := &m.vars[i]
		lo, hi := c.plo[i], c.phi[i]
		c.shift[i] = 0
		c.fixed[i] = 0
		if hi < lo-1e-9 {
			return nil, errInfeasible
		}
		if hi-lo <= 1e-12 {
			c.lpIndex[i] = -1
			c.fixed[i] = lo
			c.objOff += v.obj * lo
			continue
		}
		c.lpIndex[i] = len(c.active)
		c.shift[i] = lo
		c.shiftOff += v.obj * lo
		c.active = append(c.active, i)
	}
	n := len(c.active)
	c.base.NumVars = n
	c.base.Cost = growFloats(c.base.Cost, n)
	c.base.Upper = growFloats(c.base.Upper, n)
	c.prio = growInt8s(c.prio, n)
	c.isIntBuf = growBools(c.isIntBuf, n)
	for k, mi := range c.active {
		v := &m.vars[mi]
		c.base.Cost[k] = c.objDir * v.obj
		if math.IsInf(c.phi[mi], 1) {
			c.base.Upper[k] = math.Inf(1)
		} else {
			c.base.Upper[k] = c.phi[mi] - c.plo[mi]
		}
		c.prio[k] = v.prio
		c.isIntBuf[k] = v.typ == Binary
	}

	// LP rows from the (possibly tightened) row image.
	c.base.Cons = c.base.Cons[:0]
	for ri := 0; ri < nr; ri++ {
		if c.pskip[ri] {
			continue
		}
		rhs := c.prhs[ri]
		// Reuse the previous build's term storage for this constraint slot.
		if len(c.base.Cons) < cap(c.base.Cons) {
			c.base.Cons = c.base.Cons[:len(c.base.Cons)+1]
		} else {
			c.base.Cons = append(c.base.Cons, lp.Constraint{})
		}
		cons := &c.base.Cons[len(c.base.Cons)-1]
		cons.Terms = cons.Terms[:0]
		for _, t := range c.pterms[c.pstart[ri]:c.pstart[ri+1]] {
			mi := int(t.Var)
			if c.lpIndex[mi] < 0 {
				rhs -= t.Coef * c.fixed[mi]
				continue
			}
			rhs -= t.Coef * c.shift[mi]
			cons.Terms = append(cons.Terms, lp.Term{Var: c.lpIndex[mi], Coef: t.Coef})
		}
		if len(cons.Terms) == 0 {
			c.base.Cons = c.base.Cons[:len(c.base.Cons)-1]
			ok := true
			switch c.psense[ri] {
			case LE:
				ok = 0 <= rhs+lp.FeasTol
			case GE:
				ok = 0 >= rhs-lp.FeasTol
			case EQ:
				ok = math.Abs(rhs) <= lp.FeasTol
			}
			if !ok {
				return nil, errInfeasible
			}
			continue
		}
		cons.Sense = c.psense[ri]
		cons.RHS = rhs
	}
	c.baseRows = len(c.base.Cons)
	c.cutMark = growInts(c.cutMark, n)
	c.conflBuilt = false
	if c.cutSeen == nil {
		c.cutSeen = make(map[uint64]bool, 32)
	} else {
		clear(c.cutSeen)
	}
	return c, nil
}

// toModelX expands an LP point back to full model-variable space.
func (c *compiled) toModelX(x []float64) []float64 {
	return c.toModelXInto(x, make([]float64, len(c.m.vars)))
}

// toModelXInto expands an LP point into the caller's buffer (grown as
// needed), so the branch-and-bound's candidate paths stay allocation-free.
func (c *compiled) toModelXInto(x, buf []float64) []float64 {
	buf = growFloats(buf, len(c.m.vars))
	copy(buf, c.fixed)
	for k, mi := range c.active {
		buf[mi] = x[k] + c.shift[mi]
	}
	return buf
}

// modelObjective computes the model-direction objective of a full point.
func (c *compiled) modelObjective(x []float64) float64 {
	var sum float64
	for i, v := range c.m.vars {
		sum += v.obj * x[i]
	}
	return sum
}
