package milp

import (
	"math"
	"testing"
)

// TestAbsGapStopsEarly verifies that a large absolute gap makes the solver
// return a good-enough incumbent quickly (the SQPR admission-dominance
// trick): with AbsGapTol larger than the spread of small objective terms,
// the search must still never misjudge a high-value binary.
func TestAbsGapStopsEarly(t *testing.T) {
	m := NewModel()
	big := m.AddBinary("big")
	var smallTerms []Term
	smalls := make([]Var, 6)
	for i := range smalls {
		smalls[i] = m.AddBinary("small")
		smallTerms = append(smallTerms, Term{smalls[i], 0.1})
	}
	terms := append([]Term{{big, 100}}, smallTerms...)
	m.SetObjective(true, terms...)
	// Capacity admits the big item plus a couple of small ones.
	cons := append([]Term{{big, 1}}, smallTerms...)
	_ = cons
	weights := []Term{{big, 1}}
	for _, s := range smalls {
		weights = append(weights, Term{s, 1})
	}
	m.AddCons("cap", LE, 3, weights...)

	res := m.Solve(Options{AbsGapTol: 5})
	if res.X == nil {
		t.Fatalf("no incumbent: %v", res.Status)
	}
	if math.Round(res.X[big]) != 1 {
		t.Fatal("absolute gap sacrificed the dominant binary")
	}
	if res.Objective < 100 {
		t.Fatalf("objective %v below the dominant term", res.Objective)
	}
}

func TestRelativeGapTermination(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.SetObjective(true, Term{a, 10}, Term{b, 10})
	m.AddCons("cap", LE, 2, Term{a, 1}, Term{b, 1})
	res := m.Solve(Options{GapTol: 0.5})
	if res.X == nil {
		t.Fatalf("no incumbent: %v", res.Status)
	}
	if res.Objective < 10 {
		t.Fatalf("objective %v", res.Objective)
	}
}

func TestBoundNeverBelowIncumbentMax(t *testing.T) {
	// For maximisation, Bound >= Objective must hold whenever both exist.
	m := NewModel()
	vars := make([]Var, 8)
	terms := make([]Term, 8)
	weights := make([]Term, 8)
	for i := range vars {
		vars[i] = m.AddBinary("v")
		terms[i] = Term{vars[i], float64(3 + i%4)}
		weights[i] = Term{vars[i], float64(2 + i%3)}
	}
	m.SetObjective(true, terms...)
	m.AddCons("cap", LE, 9, weights...)
	res := m.Solve(Options{})
	if res.X == nil {
		t.Fatalf("no incumbent: %v", res.Status)
	}
	if res.Bound < res.Objective-1e-6 {
		t.Fatalf("bound %v < objective %v", res.Bound, res.Objective)
	}
}

func TestNoSolutionStatus(t *testing.T) {
	// MaxNodes 1 with a model whose root LP is fractional and whose dive
	// is infeasible can end with no incumbent; the status must reflect it.
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	m.SetObjective(true, Term{a, 1}, Term{b, 1}, Term{c, 1})
	// x+y+z == 1.5 is integer-infeasible but LP-feasible.
	m.AddCons("half", EQ, 1.5, Term{a, 1}, Term{b, 1}, Term{c, 1})
	res := m.Solve(Options{})
	if res.Status != InfeasibleMIP && res.Status != NoSolution {
		t.Fatalf("status %v for integer-infeasible model", res.Status)
	}
	if res.X != nil {
		t.Fatal("produced an incumbent for an infeasible model")
	}
}

func TestMinimiseWithAbsGap(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.SetObjective(false, Term{a, 2}, Term{b, 5})
	m.AddCons("need", GE, 1, Term{a, 1}, Term{b, 1})
	res := m.Solve(Options{AbsGapTol: 0.1})
	if res.X == nil || res.Objective > 2+0.2 {
		t.Fatalf("min with abs gap: obj=%v status=%v", res.Objective, res.Status)
	}
}

func TestSolveNodeSubstitutionConsistency(t *testing.T) {
	// Fixing a binary by branching must produce the same optimum as fixing
	// it in the model (the node-LP substitution path vs presolve path).
	build := func() (*Model, Var, Var) {
		m := NewModel()
		a := m.AddBinary("a")
		b := m.AddBinary("b")
		m.SetObjective(true, Term{a, 3}, Term{b, 2})
		m.AddCons("cap", LE, 1, Term{a, 1}, Term{b, 1})
		return m, a, b
	}
	m1, a1, _ := build()
	m1.Fix(a1, 0)
	r1 := m1.Solve(Options{})

	m2, _, _ := build()
	// Force the same outcome via an explicit constraint: a == 0.
	m2.AddCons("fix", EQ, 0, Term{Var(0), 1})
	r2 := m2.Solve(Options{})

	if math.Abs(r1.Objective-r2.Objective) > 1e-9 {
		t.Fatalf("fix-path mismatch: %v vs %v", r1.Objective, r2.Objective)
	}
}
