package milp

import (
	"math"
	"math/rand"
	"testing"
)

// mixedRandomModel builds a random MILP with the row shapes of the SQPR
// planner: knapsack budget rows, pairwise conflicts, an exactly-one
// assignment row, and big-M indicator rows linking binaries to continuous
// variables. Most instances are feasible; infeasible ones are fine too —
// conformance compares outcomes, not feasibility.
func mixedRandomModel(rng *rand.Rand) *Model {
	m := NewModel()
	n := 8 + rng.Intn(16)
	vars := make([]Var, n)
	objTerms := make([]Term, 0, n+2)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary("b")
		objTerms = append(objTerms, Term{vars[i], 1 + rng.Float64()*14})
	}
	// Budget rows.
	for r := 0; r < 1+rng.Intn(3); r++ {
		terms := make([]Term, 0, n)
		total := 0.0
		for i := 0; i < n; i++ {
			w := 1 + rng.Float64()*9
			terms = append(terms, Term{vars[i], w})
			total += w
		}
		m.AddCons("cap", LE, total*(0.3+rng.Float64()*0.4), terms...)
	}
	// Conflict pairs.
	for i := 0; i+1 < n; i += 2 + rng.Intn(3) {
		m.AddCons("pair", LE, 1, Term{vars[i], 1}, Term{vars[i+1], 1})
	}
	// Exactly-one assignment row over a random subset.
	if n >= 6 {
		k := 3 + rng.Intn(3)
		terms := make([]Term, 0, k)
		for i := 0; i < k; i++ {
			terms = append(terms, Term{vars[rng.Intn(n)], 1})
		}
		m.AddCons("one", EQ, 1, terms...)
	}
	// Big-M indicator: y <= 3 + 4*b for a continuous y, like the acyclicity
	// rows' indicator structure.
	y := m.AddContinuous(0, 10, "y")
	objTerms = append(objTerms, Term{y, 0.5 + rng.Float64()})
	m.AddCons("link", LE, 3, Term{y, 1}, Term{vars[rng.Intn(n)], -4})
	m.SetObjective(true, objTerms...)
	// Priorities like the planner's: a high class on a few binaries.
	for i := 0; i < n; i += 3 {
		m.SetBranchPriority(vars[i], 2)
	}
	return m
}

// TestTreeReductionConformance solves 50 seeded instances with the
// tree-reduction layer on and off, to proven optimality, and requires
// identical statuses and objectives: presolve, cuts, reduced-cost fixing
// and pseudo-cost branching must never change what is optimal — only how
// fast it is proven. CI runs this under -race.
func TestTreeReductionConformance(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := mixedRandomModel(rand.New(rand.NewSource(seed)))
		b := mixedRandomModel(rand.New(rand.NewSource(seed)))
		ra := a.Solve(Options{MaxNodes: 500000})
		rb := b.Solve(Options{MaxNodes: 500000, DisableTreeReduction: true})
		if ra.Status != rb.Status {
			t.Fatalf("seed %d: status %v (reduced) vs %v (plain)", seed, ra.Status, rb.Status)
		}
		if ra.Status != OptimalMIP && ra.Status != InfeasibleMIP {
			t.Fatalf("seed %d: not solved to proof: %v", seed, ra.Status)
		}
		if ra.Status == OptimalMIP &&
			math.Abs(ra.Objective-rb.Objective) > 1e-6*(1+math.Abs(rb.Objective)) {
			t.Fatalf("seed %d: objective %v (reduced) vs %v (plain)", seed, ra.Objective, rb.Objective)
		}
	}
}

// TestTreeReductionShrinksTree is the headline regression guard: on the
// benchmark knapsack-with-conflicts model the tree-reduction layer must
// explore well under half the nodes of plain branch and bound.
func TestTreeReductionShrinksTree(t *testing.T) {
	build := func() *Model {
		rng := rand.New(rand.NewSource(9))
		n := 40
		m := NewModel()
		vars := make([]Var, n)
		terms := make([]Term, n)
		weights := make([]Term, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddBinary("x")
			terms[i] = Term{vars[i], 1 + rng.Float64()*14}
			weights[i] = Term{vars[i], 1 + rng.Float64()*9}
		}
		m.SetObjective(true, terms...)
		m.AddCons("cap", LE, float64(2*n), weights...)
		for i := 0; i+1 < n; i += 3 {
			m.AddCons("pair", LE, 1, Term{vars[i], 1}, Term{vars[i+1], 1})
		}
		return m
	}
	reduced := build().Solve(Options{MaxNodes: 100000})
	plain := build().Solve(Options{MaxNodes: 100000, DisableTreeReduction: true})
	if reduced.Status != OptimalMIP || plain.Status != OptimalMIP {
		t.Fatalf("status: %v / %v", reduced.Status, plain.Status)
	}
	if math.Abs(reduced.Objective-plain.Objective) > 1e-6 {
		t.Fatalf("objective drift: %v vs %v", reduced.Objective, plain.Objective)
	}
	if reduced.Nodes*2 >= plain.Nodes {
		t.Fatalf("tree not reduced: %d nodes (reduced) vs %d (plain)", reduced.Nodes, plain.Nodes)
	}
	if reduced.Cuts == 0 {
		t.Fatal("no cuts pooled on a model with violated covers")
	}
}

// TestStallNodesStopsSearch verifies the stagnation stop: with an incumbent
// supplied and a stall budget, the search returns Feasible after roughly
// that many nodes instead of exhausting the tree.
func TestStallNodesStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	m := NewModel()
	vars := make([]Var, n)
	terms := make([]Term, n)
	weights := make([]Term, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary("x")
		terms[i] = Term{vars[i], 1 + rng.Float64()*9}
		weights[i] = Term{vars[i], 1 + rng.Float64()*9}
	}
	m.SetObjective(true, terms...)
	m.AddCons("cap", LE, float64(n), weights...)

	full := m.Solve(Options{MaxNodes: 100000})
	if full.Status != OptimalMIP {
		t.Fatalf("full solve: %v", full.Status)
	}
	// Hand the optimum in as the incumbent: the stalled search can never
	// improve it, so it must stop after ~StallNodes nodes.
	stalled := m.Solve(Options{MaxNodes: 100000, StallNodes: 5, Incumbent: full.X})
	if stalled.X == nil {
		t.Fatalf("stalled solve lost the incumbent: %v", stalled.Status)
	}
	if math.Abs(stalled.Objective-full.Objective) > 1e-9 {
		t.Fatalf("stalled objective %v != optimal %v", stalled.Objective, full.Objective)
	}
	if full.Nodes > 20 && stalled.Nodes > full.Nodes/2 {
		t.Fatalf("stall did not shorten the search: %d vs %d nodes", stalled.Nodes, full.Nodes)
	}
}

// TestPresolveFixesForcedBinaries checks the activity-based fixing rule: a
// binary whose coefficient exceeds the residual budget must be eliminated
// before the search.
func TestPresolveFixesForcedBinaries(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a") // cost 9 > budget 5: forced off
	b := m.AddBinary("b")
	m.SetObjective(true, Term{a, 10}, Term{b, 1})
	m.AddCons("cpu", LE, 5, Term{a, 9}, Term{b, 2})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP {
		t.Fatalf("status %v", res.Status)
	}
	if res.PresolveFixed == 0 {
		t.Fatal("presolve did not fix the over-budget binary")
	}
	if math.Round(res.X[a]) != 0 || math.Round(res.X[b]) != 1 {
		t.Fatalf("wrong optimum: %v", res.X)
	}
}

// TestPresolveInfeasible checks that activity bounds prove infeasibility
// without a search.
func TestPresolveInfeasible(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.AddCons("need", GE, 3, Term{a, 1}, Term{b, 1})
	res := m.Solve(Options{})
	if res.Status != InfeasibleMIP {
		t.Fatalf("status %v", res.Status)
	}
	if res.Nodes != 0 {
		t.Fatalf("explored %d nodes for a presolve-infeasible model", res.Nodes)
	}
}
