package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestKnapsack(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c<=2 (binaries) → a+b = 16.
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	m.SetObjective(true, Term{a, 10}, Term{b, 6}, Term{c, 4})
	m.AddCons("cap", LE, 2, Term{a, 1}, Term{b, 1}, Term{c, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Objective-16) > 1e-6 {
		t.Fatalf("objective %v want 16 (x=%v)", res.Objective, res.X)
	}
}

func TestWeightedKnapsack(t *testing.T) {
	// Classic: weights 3,4,5 values 4,5,6 capacity 7 → items 1+2 value 9.
	m := NewModel()
	v := []Var{m.AddBinary("i0"), m.AddBinary("i1"), m.AddBinary("i2")}
	m.SetObjective(true, Term{v[0], 4}, Term{v[1], 5}, Term{v[2], 6})
	m.AddCons("w", LE, 7, Term{v[0], 3}, Term{v[1], 4}, Term{v[2], 5})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-9) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Objective, res.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2z + y with z binary, 0<=y<=10, y <= 3 + 4z.
	// z=1 → y=7? y<=3+4=7, y<=10 → obj 2+7=9.
	m := NewModel()
	z := m.AddBinary("z")
	y := m.AddContinuous(0, 10, "y")
	m.SetObjective(true, Term{z, 2}, Term{y, 1})
	m.AddCons("link", LE, 3, Term{y, 1}, Term{z, -4})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-9) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Objective, res.X)
	}
}

func TestInfeasibleModel(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.AddCons("lo", GE, 3, Term{a, 1}, Term{b, 1}) // max attainable is 2
	res := m.Solve(Options{})
	if res.Status != InfeasibleMIP {
		t.Fatalf("status %v want infeasible", res.Status)
	}
}

func TestFixedVariableSubstitution(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.Fix(a, 1)
	m.SetObjective(true, Term{a, 5}, Term{b, 3})
	m.AddCons("cap", LE, 1, Term{a, 1}, Term{b, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Objective-5) > 1e-6 || res.X[a] != 1 || res.X[b] != 0 {
		t.Fatalf("obj=%v x=%v", res.Objective, res.X)
	}
}

func TestFixedInfeasible(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	m.Fix(a, 0)
	m.AddCons("need", GE, 1, Term{a, 1})
	res := m.Solve(Options{})
	if res.Status != InfeasibleMIP {
		t.Fatalf("status %v want infeasible", res.Status)
	}
}

func TestWarmStartIncumbentAccepted(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.SetObjective(true, Term{a, 1}, Term{b, 1})
	m.AddCons("cap", LE, 1, Term{a, 1}, Term{b, 1})
	// Give a feasible warm start and an immediate node limit of 0 so the
	// search cannot run; the incumbent must still be returned.
	res := m.Solve(Options{Incumbent: []float64{1, 0}, MaxNodes: 1, Deadline: time.Now().Add(-time.Second)})
	if res.Status == NoSolution || res.X == nil {
		t.Fatalf("warm start lost: %v", res.Status)
	}
	if math.Abs(res.Objective-1) > 1e-9 {
		t.Fatalf("objective %v", res.Objective)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	m.SetObjective(true, Term{a, 1})
	m.AddCons("cap", LE, 0, Term{a, 1})
	res := m.Solve(Options{Incumbent: []float64{1}}) // violates cap
	if res.Status != OptimalMIP || res.Objective != 0 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
}

func TestDeadlineReturnsBestFound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel()
	n := 30
	vars := make([]Var, n)
	terms := make([]Term, n)
	weights := make([]Term, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary("v")
		terms[i] = Term{vars[i], 1 + rng.Float64()*9}
		weights[i] = Term{vars[i], 1 + rng.Float64()*9}
	}
	m.SetObjective(true, terms...)
	m.AddCons("w", LE, 25, weights...)
	res := m.Solve(Options{Deadline: time.Now().Add(50 * time.Millisecond)})
	if res.X == nil {
		t.Fatalf("expected some incumbent, got %v", res.Status)
	}
	if res.Objective > res.Bound+1e-6 {
		t.Fatalf("incumbent %v exceeds bound %v", res.Objective, res.Bound)
	}
}

func TestBoundDirectionMaximise(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	m.SetObjective(true, Term{a, 7})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-7) > 1e-9 {
		t.Fatalf("obj=%v", res.Objective)
	}
	if res.Bound < res.Objective-1e-6 {
		t.Fatalf("bound %v below objective %v for maximisation", res.Bound, res.Objective)
	}
}

func TestBoundDirectionMinimise(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.SetObjective(false, Term{a, 2}, Term{b, 3})
	m.AddCons("one", GE, 1, Term{a, 1}, Term{b, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if res.Bound > res.Objective+1e-6 {
		t.Fatalf("bound %v above objective %v for minimisation", res.Bound, res.Objective)
	}
}

// TestRandomKnapsacksAgainstDP cross-checks the B&B against an exact dynamic
// program on random 0/1 knapsacks with integer data.
func TestRandomKnapsacksAgainstDP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(8)
		cap := 10 + rng.Intn(20)
		w := make([]int, n)
		v := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(10)
			v[i] = 1 + rng.Intn(15)
		}
		want := knapsackDP(w, v, cap)

		m := NewModel()
		terms := make([]Term, n)
		wts := make([]Term, n)
		for i := 0; i < n; i++ {
			x := m.AddBinary("x")
			terms[i] = Term{x, float64(v[i])}
			wts[i] = Term{x, float64(w[i])}
		}
		m.SetObjective(true, terms...)
		m.AddCons("cap", LE, float64(cap), wts...)
		res := m.Solve(Options{MaxNodes: 100000})
		if res.Status != OptimalMIP {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		if math.Abs(res.Objective-float64(want)) > 1e-6 {
			t.Fatalf("trial %d: got %v want %d", trial, res.Objective, want)
		}
	}
}

func knapsackDP(w, v []int, cap int) int {
	best := make([]int, cap+1)
	for i := range w {
		for c := cap; c >= w[i]; c-- {
			if cand := best[c-w[i]] + v[i]; cand > best[c] {
				best[c] = cand
			}
		}
	}
	return best[cap]
}

// TestSetCover exercises GE rows with binaries (minimisation).
func TestSetCover(t *testing.T) {
	// Universe {1,2,3}; sets A={1,2} cost 3, B={2,3} cost 3, C={1,2,3} cost 5.
	// Optimum: C alone (5) vs A+B (6) → 5.
	m := NewModel()
	a := m.AddBinary("A")
	b := m.AddBinary("B")
	c := m.AddBinary("C")
	m.SetObjective(false, Term{a, 3}, Term{b, 3}, Term{c, 5})
	m.AddCons("e1", GE, 1, Term{a, 1}, Term{c, 1})
	m.AddCons("e2", GE, 1, Term{a, 1}, Term{b, 1}, Term{c, 1})
	m.AddCons("e3", GE, 1, Term{b, 1}, Term{c, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-5) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Objective, res.X)
	}
}

func TestEqualityWithBinaries(t *testing.T) {
	// Exactly-one constraint.
	m := NewModel()
	vars := []Var{m.AddBinary("a"), m.AddBinary("b"), m.AddBinary("c")}
	m.SetObjective(true, Term{vars[0], 1}, Term{vars[1], 5}, Term{vars[2], 3})
	m.AddCons("one", EQ, 1, Term{vars[0], 1}, Term{vars[1], 1}, Term{vars[2], 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-5) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Objective, res.X)
	}
	if math.Round(res.X[vars[1]]) != 1 {
		t.Fatalf("wrong selection: %v", res.X)
	}
}

func TestBigMIndicator(t *testing.T) {
	// The acyclicity constraints in SQPR use big-M rows: p_h >= p_m + 1 - M(1-x).
	// Verify a tiny version: x=1 forces p0 >= p1+1.
	const M = 10
	m := NewModel()
	x := m.AddBinary("x")
	p0 := m.AddContinuous(0, M, "p0")
	p1 := m.AddContinuous(0, M, "p1")
	m.Fix(x, 1)
	m.AddCons("acyc", GE, 1-M, Term{p0, 1}, Term{p1, -1}, Term{x, -M})
	m.SetObjective(false, Term{p0, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP {
		t.Fatalf("status %v", res.Status)
	}
	if res.X[p0] < res.X[p1]+1-1e-6 {
		t.Fatalf("indicator not enforced: p0=%v p1=%v", res.X[p0], res.X[p1])
	}
}

func TestAccumulatedTerms(t *testing.T) {
	// Duplicate terms on the same variable must accumulate.
	m := NewModel()
	a := m.AddBinary("a")
	m.SetObjective(true, Term{a, 1}, Term{a, 1}) // 2a
	m.AddCons("cap", LE, 3, Term{a, 2}, Term{a, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-2) > 1e-9 {
		t.Fatalf("obj=%v", res.Objective)
	}
}
