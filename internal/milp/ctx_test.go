package milp

import (
	"context"
	"math"
	"testing"
	"time"
)

// hardModel builds a knapsack-style MILP large enough that the search
// explores many nodes, so cancellation has something to interrupt.
func hardModel(n int) *Model {
	m := NewModel()
	vars := make([]Var, n)
	terms := make([]Term, n)
	capTerms := make([]Term, n)
	for i := range vars {
		vars[i] = m.AddBinary("x")
		// Coefficients chosen to defeat trivial LP-rounding optima.
		terms[i] = Term{vars[i], float64(7+3*i%11) + 0.5}
		capTerms[i] = Term{vars[i], float64(5 + 2*i%7)}
	}
	m.SetObjective(true, terms...)
	m.AddCons("cap", LE, float64(3*n), capTerms...)
	for i := 0; i+1 < n; i += 2 {
		m.AddCons("pair", LE, 1, Term{vars[i], 1}, Term{vars[i+1], 1})
	}
	return m
}

func TestSolveCancelledContextAbortsImmediately(t *testing.T) {
	m := hardModel(24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := m.Solve(Options{Ctx: ctx, MaxNodes: 100000})
	if !res.Cancelled {
		t.Fatalf("Cancelled=false after pre-cancelled ctx: %+v", res)
	}
	if res.Nodes != 0 {
		t.Fatalf("explored %d nodes after cancellation", res.Nodes)
	}
	if res.Status == OptimalMIP {
		t.Fatal("cancelled search claimed optimality")
	}
}

func TestSolveCancelledMidSearchStops(t *testing.T) {
	m := hardModel(30)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- m.Solve(Options{Ctx: ctx, MaxNodes: 1 << 30}) }()
	// Let the search start, then pull the plug.
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Status == OptimalMIP && !res.Cancelled {
			// The search legitimately finished before the cancel landed;
			// nothing to assert beyond non-blocking return.
			return
		}
		if !res.Cancelled {
			t.Fatalf("mid-search cancel not reported: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Solve did not return promptly after cancellation")
	}
}

func TestSolveWithoutCtxUnaffected(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.SetObjective(true, Term{a, 3}, Term{b, 2})
	m.AddCons("cap", LE, 1, Term{a, 1}, Term{b, 1})
	res := m.Solve(Options{})
	if res.Status != OptimalMIP || math.Abs(res.Objective-3) > 1e-6 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if res.Cancelled {
		t.Fatal("Cancelled set without a ctx")
	}
}
