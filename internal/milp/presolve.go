// Presolve: the once-per-Solve reduction pass of the tree-reduction layer.
// It operates on the compiled row image (a mutable, term-accumulated copy of
// the model rows plus a bounds overlay) before the LP is emitted, so the
// model itself is never altered and every Solve starts from the caller's
// exact formulation.
//
// Three families of single-row reductions run to a fixpoint:
//
//   - Activity-based fixing: a binary whose 0 or 1 setting cannot be
//     completed to a row-feasible point is fixed at the other value. On
//     SQPR models this is what eliminates placement variables forced out by
//     residual host budgets (an operator whose CPU cost exceeds a host's
//     remaining capacity, a flow whose rate exceeds remaining bandwidth).
//
//   - Coefficient tightening: for an inequality row with a binary term, the
//     pair (coefficient, RHS) is shifted so the non-binding side of the
//     branch becomes exactly vacuous. Integer solutions are untouched while
//     the LP relaxation shrinks, which is where fractional root solutions —
//     and therefore branching — come from. Applied repeatedly this derives
//     small cover-like facets directly inside the budget rows.
//
//   - Redundant-row removal: rows that every point within bounds satisfies
//     are dropped, and variables left with no live row are fixed at their
//     objective-preferred bound (dominated placement columns: a variable
//     whose every constraint went redundant cannot improve the objective at
//     any other value).
package milp

import "math"

// presolveMaxPasses bounds the fixpoint iteration; each pass is O(nnz).
const presolveMaxPasses = 8

// rowActivity returns the minimum and maximum of a·x over the overlay
// bounds of the row's variables.
func (c *compiled) rowActivity(ri int) (minAct, maxAct float64) {
	for _, t := range c.pterms[c.pstart[ri]:c.pstart[ri+1]] {
		mi := int(t.Var)
		lo, hi := c.plo[mi], c.phi[mi]
		if t.Coef > 0 {
			minAct += t.Coef * lo
			maxAct += t.Coef * hi
		} else {
			minAct += t.Coef * hi
			maxAct += t.Coef * lo
		}
	}
	return minAct, maxAct
}

// freeBinary reports whether model variable mi is a binary still free under
// the overlay bounds (exactly {0,1}).
func (c *compiled) freeBinary(mi int) bool {
	return c.m.vars[mi].typ == Binary && c.plo[mi] == 0 && c.phi[mi] == 1
}

// runPresolve tightens the row image in place; returns errInfeasible when a
// row is proven unsatisfiable over the bounds.
func (c *compiled) runPresolve() error {
	nv := len(c.m.vars)
	nr := len(c.prhs)
	for pass := 0; pass < presolveMaxPasses; pass++ {
		changed := false
		for ri := 0; ri < nr; ri++ {
			if c.pskip[ri] {
				continue
			}
			ch, err := c.presolveRow(ri)
			if err != nil {
				return err
			}
			changed = changed || ch
		}
		if !changed {
			break
		}
	}

	// Unconstrained columns: fix at the objective-preferred bound. appear
	// counts live-row appearances after all row reductions.
	c.appear = growInt32s(c.appear, nv)
	for i := range c.appear[:nv] {
		c.appear[i] = 0
	}
	for ri := 0; ri < nr; ri++ {
		if c.pskip[ri] {
			continue
		}
		for _, t := range c.pterms[c.pstart[ri]:c.pstart[ri+1]] {
			if t.Coef != 0 {
				c.appear[t.Var]++
			}
		}
	}
	for mi := 0; mi < nv; mi++ {
		if c.appear[mi] > 0 || c.phi[mi]-c.plo[mi] <= 1e-12 {
			continue
		}
		v := &c.m.vars[mi]
		// Model-direction improvement: maximise wants positive-objective
		// variables high, minimise wants them low.
		wantHigh := v.obj > 0
		if !c.m.maximize {
			wantHigh = v.obj < 0
		}
		if wantHigh {
			if math.IsInf(c.phi[mi], 1) {
				continue // unbounded improving ray; leave for the LP
			}
			c.plo[mi] = c.phi[mi]
		} else {
			c.phi[mi] = c.plo[mi]
		}
		c.presolveFixed++
	}
	return nil
}

// presolveRow applies the single-row reductions to row ri. Reports whether
// anything changed.
func (c *compiled) presolveRow(ri int) (bool, error) {
	sense := c.psense[ri]
	rhs := c.prhs[ri]
	minAct, maxAct := c.rowActivity(ri)
	tol := 1e-7 * (1 + math.Abs(rhs))

	// Infeasibility and redundancy over current bounds.
	switch sense {
	case LE:
		if minAct > rhs+tol {
			return false, errInfeasible
		}
		if maxAct <= rhs+tol {
			c.pskip[ri] = true
			c.presolveDropped++
			return true, nil
		}
	case GE:
		if maxAct < rhs-tol {
			return false, errInfeasible
		}
		if minAct >= rhs-tol {
			c.pskip[ri] = true
			c.presolveDropped++
			return true, nil
		}
	case EQ:
		if minAct > rhs+tol || maxAct < rhs-tol {
			return false, errInfeasible
		}
	}

	changed := false
	terms := c.pterms[c.pstart[ri]:c.pstart[ri+1]]
	for i := range terms {
		t := &terms[i]
		mi := int(t.Var)
		a := t.Coef
		if a == 0 || !c.freeBinary(mi) {
			continue
		}
		// Activity of the row without this variable's extreme contribution.
		var minOthers, maxOthers float64
		if a > 0 {
			minOthers, maxOthers = minAct, maxAct-a
		} else {
			minOthers, maxOthers = minAct-a, maxAct
		}

		// Forbid values that cannot be completed within the row.
		forbid0 := false
		forbid1 := false
		switch sense {
		case LE:
			forbid0 = minOthers > rhs+tol
			forbid1 = minOthers+a > rhs+tol
		case GE:
			forbid0 = maxOthers < rhs-tol
			forbid1 = maxOthers+a < rhs-tol
		case EQ:
			forbid0 = minOthers > rhs+tol || maxOthers < rhs-tol
			forbid1 = minOthers+a > rhs+tol || maxOthers+a < rhs-tol
		}
		if forbid0 && forbid1 {
			return false, errInfeasible
		}
		if forbid0 || forbid1 {
			if forbid0 {
				c.plo[mi] = 1
			} else {
				c.phi[mi] = 0
			}
			c.presolveFixed++
			// Activities and sibling decisions are stale now; recompute on
			// the next fixpoint pass rather than patching incrementally.
			return true, nil
		}

		// Coefficient tightening (inequalities only): shift (a, rhs) so the
		// branch side that is vacuous over the bounds becomes exactly tight.
		switch sense {
		case LE:
			if a > 0 && !math.IsInf(maxOthers, 1) {
				// x=0 side vacuous iff maxOthers <= rhs; pull both down.
				if delta := rhs - maxOthers; delta > tol && delta < a-tol {
					t.Coef = a - delta
					rhs -= delta
					c.prhs[ri] = rhs
					maxAct -= delta // maxAct used x=1: shrink coef and rhs
					c.presolveTightened++
					changed = true
				}
			} else if a < 0 && !math.IsInf(maxOthers, 1) {
				// x=1 side vacuous iff rhs-a >= maxOthers; raise a toward 0.
				if na := rhs - maxOthers; na > a+tol && na <= 0 {
					t.Coef = na
					minAct += na - a // min contribution was a (at x=1)
					c.presolveTightened++
					changed = true
				}
			}
		case GE:
			if a > 0 && !math.IsInf(minOthers, -1) {
				// x=1 side vacuous iff rhs-a <= minOthers; lower a toward 0.
				if na := rhs - minOthers; na < a-tol && na >= 0 {
					t.Coef = na
					maxAct -= a - na // max contribution was a (at x=1)
					c.presolveTightened++
					changed = true
				}
			} else if a < 0 && !math.IsInf(minOthers, -1) {
				// x=0 side vacuous iff rhs <= minOthers; pull both up.
				if delta := minOthers - rhs; delta > tol && delta < -a-tol {
					t.Coef = a + delta
					rhs += delta
					c.prhs[ri] = rhs
					minAct += delta // minAct used x=1: both rise together
					c.presolveTightened++
					changed = true
				}
			}
		}
	}
	return changed, nil
}
