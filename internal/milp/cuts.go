// Root-node cutting planes: knapsack cover cuts and clique cuts, separated
// against the fractional root optimum and stored in the cut pool (the tail
// of compiled.base.Cons past baseRows). Both families are valid for every
// integer point of the model — they only trim the LP relaxation — so the
// branch-and-bound's admissions and objective are untouched while its tree
// shrinks.
//
// Cover cuts come from the budget rows of the SQPR model (per-host CPU,
// memory and bandwidth, pairwise link capacity): for a row Σ a_j x_j <= b
// over binaries with a cover C (Σ_{C} a_j > b), at most |C|−1 of the cover
// can be selected. The separation is the classic greedy over (1−x*_j)/a_j,
// extended with every variable at least as heavy as the cover's heaviest
// member (any |C|-subset of the extension outweighs the cover, so the
// right-hand side still holds).
//
// Clique cuts come from knapsack-implied conflicts: two binaries whose
// coefficients together overflow a row's RHS can never both be 1. The
// per-row pairs (this includes the assignment rows Σ d <= 1, whose pairs
// are immediate) merge into one conflict graph, and a greedy expansion
// around each fractionally-violated edge yields Σ_{clique} x <= 1 rows that
// no single model row implies.
package milp

import (
	"math"
	"slices"

	"sqpr/internal/lp"
)

// Separation tuning.
const (
	cutViolTol       = 0.02 // minimum violation for a cut to be worth a row
	cutMaxCovers     = 32   // covers per separation round
	cutMaxCliques    = 16   // cliques per separation round
	cutMaxConflicts  = 4096 // conflict-graph edge cap
	cutMinFracWeight = 0.02 // ignore variables this close to 0 in cliques
)

// cutItem is one binary term of a knapsack row during separation.
type cutItem struct {
	k int     // LP-active variable
	a float64 // coefficient
	x float64 // relaxation value
}

// eligibleKnapsackRow extracts row ri as a pure-binary knapsack (LE,
// positive coefficients, finite RHS) into c.cutItems; reports false when
// the row has a different shape.
func (c *compiled) eligibleKnapsackRow(ri int, xAct []float64) bool {
	cons := &c.base.Cons[ri]
	if cons.Sense != lp.LE || cons.RHS <= 0 {
		return false
	}
	c.cutItems = c.cutItems[:0]
	for _, t := range cons.Terms {
		if t.Coef <= 0 {
			return false
		}
		if c.m.vars[c.active[t.Var]].typ != Binary {
			return false
		}
		c.cutItems = append(c.cutItems, cutItem{k: t.Var, a: t.Coef, x: xAct[t.Var]})
	}
	return len(c.cutItems) >= 2
}

// separateCuts scans the model-derived base rows for cover and clique
// inequalities violated by xAct and appends up to spare of them to the cut
// pool. Runs single-threaded in the root phase. Returns how many cuts were
// appended.
func (c *compiled) separateCuts(xAct []float64, spare int) int {
	if spare <= 0 {
		return 0
	}
	added := 0
	added += c.separateCovers(xAct, min(spare, cutMaxCovers))
	added += c.separateCliques(xAct, min(spare-added, cutMaxCliques))
	return added
}

// separateCovers emits violated (extended) cover cuts, at most budget.
func (c *compiled) separateCovers(xAct []float64, budget int) int {
	added := 0
	for ri := 0; ri < c.baseRows && added < budget; ri++ {
		if !c.eligibleKnapsackRow(ri, xAct) {
			continue
		}
		rhs := c.base.Cons[ri].RHS
		items := c.cutItems
		total := 0.0
		for _, it := range items {
			total += it.a
		}
		if total <= rhs+1e-9 {
			continue // no cover exists
		}
		// Greedy minimum-weight cover: order by (1−x)/a ascending (cheapest
		// violation contribution per unit of weight first). Insertion sort
		// into the index scratch keeps separation allocation-free.
		idx := c.coverIdx[:0]
		for i := range items {
			idx = append(idx, i)
		}
		ratio := func(i int) float64 { return (1 - items[i].x) / items[i].a }
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0; j-- {
				a, b := idx[j-1], idx[j]
				ra, rb := ratio(a), ratio(b)
				if ra < rb || (ra == rb && a < b) {
					break
				}
				idx[j-1], idx[j] = b, a
			}
		}
		c.coverIdx = idx

		weight := 0.0
		slackSum := 0.0 // Σ (1−x*) over the cover
		cover := 0
		for _, i := range idx {
			weight += items[i].a
			slackSum += 1 - items[i].x
			cover++
			if weight > rhs+1e-9 {
				break
			}
		}
		if weight <= rhs+1e-9 || slackSum >= 1-cutViolTol {
			continue // no cover reached or not violated enough
		}
		// Minimality pass: drop members the cover does not need (most
		// fractional slack first — the greedy appended them in that order),
		// keeping Σ a > rhs. Minimal covers lift to stronger inequalities.
		for j := cover - 1; j >= 0 && cover > 2; j-- {
			if weight-items[idx[j]].a > rhs+1e-9 {
				weight -= items[idx[j]].a
				idx[j], idx[cover-1] = idx[cover-1], idx[j]
				cover--
			}
		}
		if c.emitLiftedCover(ri, idx[:cover]) {
			added++
		}
	}
	return added
}

// emitLiftedCover sequentially lifts the cover inequality Σ_{C} x <= |C|−1
// over the remaining variables of row ri and appends the result. Lifting
// coefficients are computed exactly: coefficient sums are small integers,
// so a min-weight-per-value knapsack DP over the already-lifted terms gives
// α_k = (|C|−1) − max{Σ coef(T) : weight(T) <= rhs − a_k} for each k taken
// in descending weight order. The plain (α=1) extension is the special case
// the DP dominates.
func (c *compiled) emitLiftedCover(ri int, coverIdx []int) bool {
	items := c.cutItems
	rhs := c.base.Cons[ri].RHS
	nC := len(coverIdx)
	c.cutRound++
	for _, i := range coverIdx {
		c.cutMark[items[i].k] = c.cutRound
	}

	// Lifted terms accumulate in the pooled parallel scratch (weight,
	// coefficient), coefficient 1 for cover members.
	liftW := c.liftW[:0]
	liftCoef := c.liftCoef[:0]
	vars := c.cliqueIdx[:0]
	coefs := c.coverCoefs[:0]
	for _, i := range coverIdx {
		liftW = append(liftW, items[i].a)
		liftCoef = append(liftCoef, 1)
		vars = append(vars, items[i].k)
		coefs = append(coefs, 1)
	}

	// Candidates outside the cover, heaviest first (classic lifting order).
	cand := c.liftIdx[:0]
	for i := range items {
		if c.cutMark[items[i].k] != c.cutRound {
			cand = append(cand, i)
		}
	}
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0; j-- {
			a, b := cand[j-1], cand[j]
			if items[a].a > items[b].a || (items[a].a == items[b].a && a < b) {
				break
			}
			cand[j-1], cand[j] = b, a
		}
	}
	c.liftIdx = cand

	maxV := nC - 1
	minw := c.liftMinW[:0]
	for v := 0; v <= maxV; v++ {
		minw = append(minw, math.Inf(1))
	}
	c.liftMinW = minw
	for _, k := range cand {
		ak := items[k].a
		// minw[v] = least weight achieving coefficient sum v over current
		// terms (rebuilt incrementally is possible, but terms grow rarely;
		// rebuild when a variable was lifted in).
		for v := range minw {
			minw[v] = math.Inf(1)
		}
		minw[0] = 0
		for ti := range liftW {
			tc, tw := liftCoef[ti], liftW[ti]
			for v := maxV; v >= tc; v-- {
				if w := minw[v-tc] + tw; w < minw[v] {
					minw[v] = w
				}
			}
		}
		best := 0
		for v := maxV; v >= 0; v-- {
			if minw[v] <= rhs-ak+1e-9 {
				best = v
				break
			}
		}
		if alpha := maxV - best; alpha > 0 {
			liftW = append(liftW, ak)
			liftCoef = append(liftCoef, alpha)
			vars = append(vars, items[k].k)
			coefs = append(coefs, alpha)
		}
	}
	c.cliqueIdx = vars
	c.coverCoefs = coefs
	c.liftW = liftW
	c.liftCoef = liftCoef
	return c.appendCutCoefs(vars, coefs, float64(maxV))
}

// buildConflicts assembles the knapsack-implied conflict graph once per
// Solve: for every eligible row, pairs of coefficients that overflow the
// RHS become edges.
func (c *compiled) buildConflicts(xAct []float64) {
	c.conflBuilt = true
	c.conflEdges = c.conflEdges[:0]
	for ri := 0; ri < c.baseRows; ri++ {
		if !c.eligibleKnapsackRow(ri, xAct) {
			continue
		}
		rhs := c.base.Cons[ri].RHS
		items := c.cutItems
		// Sort indices by coefficient descending; conflicts live among the
		// heavy prefix.
		idx := c.coverIdx[:0]
		for i := range items {
			idx = append(idx, i)
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0; j-- {
				a, b := idx[j-1], idx[j]
				if items[a].a > items[b].a || (items[a].a == items[b].a && a < b) {
					break
				}
				idx[j-1], idx[j] = b, a
			}
		}
		c.coverIdx = idx
		for i := 0; i < len(idx) && len(c.conflEdges) < cutMaxConflicts; i++ {
			ai := items[idx[i]].a
			for j := i + 1; j < len(idx); j++ {
				if ai+items[idx[j]].a <= rhs+1e-9 {
					break // sorted descending: no later pair overflows either
				}
				u, v := items[idx[i]].k, items[idx[j]].k
				if u > v {
					u, v = v, u
				}
				if len(c.conflEdges) >= cutMaxConflicts {
					break
				}
				c.conflEdges = append(c.conflEdges, uint64(u)<<32|uint64(v))
			}
		}
	}
	slices.Sort(c.conflEdges)
	// Deduplicate in place.
	out := c.conflEdges[:0]
	var prev uint64
	for i, e := range c.conflEdges {
		if i == 0 || e != prev {
			out = append(out, e)
		}
		prev = e
	}
	c.conflEdges = out

	// CSR adjacency over LP-active variables (both directions).
	nAct := len(c.active)
	c.adjStart = growInts(c.adjStart, nAct+1)
	for i := range c.adjStart[:nAct+1] {
		c.adjStart[i] = 0
	}
	for _, e := range c.conflEdges {
		c.adjStart[int(e>>32)+1]++
		c.adjStart[int(uint32(e))+1]++
	}
	for i := 1; i <= nAct; i++ {
		c.adjStart[i] += c.adjStart[i-1]
	}
	c.adjList = growInt32s(c.adjList, 2*len(c.conflEdges))
	fill := c.coverIdx[:0] // next write offset per variable
	for i := 0; i < nAct; i++ {
		fill = append(fill, c.adjStart[i])
	}
	for _, e := range c.conflEdges {
		u, v := int(e>>32), int(uint32(e))
		c.adjList[fill[u]] = int32(v)
		fill[u]++
		c.adjList[fill[v]] = int32(u)
		fill[v]++
	}
	c.coverIdx = fill[:0]
}

// conflicts reports whether u and v are a conflict pair.
func (c *compiled) conflicts(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	key := uint64(u)<<32 | uint64(v)
	lo, hi := 0, len(c.conflEdges)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.conflEdges[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.conflEdges) && c.conflEdges[lo] == key
}

// separateCliques grows violated cliques around fractionally-violated
// conflict edges, at most budget.
func (c *compiled) separateCliques(xAct []float64, budget int) int {
	if budget <= 0 {
		return 0
	}
	if !c.conflBuilt {
		c.buildConflicts(xAct)
	}
	if len(c.conflEdges) == 0 {
		return 0
	}
	added := 0
	for _, e := range c.conflEdges {
		if added >= budget {
			break
		}
		u, v := int(e>>32), int(uint32(e))
		if xAct[u]+xAct[v] <= 1+cutViolTol {
			continue
		}
		clique := c.cliqueIdx[:0]
		clique = append(clique, u, v)
		sum := xAct[u] + xAct[v]
		// Greedy expansion: among neighbours of u, repeatedly add the
		// highest-value variable conflicting with every current member.
		//sqpr:noctx bounded: each pass adds a member from u's finite neighbour list or stops
		for {
			bestW, bestX := -1, cutMinFracWeight
			for _, w32 := range c.adjList[c.adjStart[u]:c.adjStart[u+1]] {
				w := int(w32)
				if xAct[w] <= bestX {
					continue
				}
				ok := true
				for _, m := range clique {
					if w == m || !c.conflicts(w, m) {
						ok = false
						break
					}
				}
				if ok {
					bestW, bestX = w, xAct[w]
				}
			}
			if bestW < 0 {
				break
			}
			clique = append(clique, bestW)
			sum += bestX
		}
		c.cliqueIdx = clique
		if sum <= 1+cutViolTol {
			continue
		}
		sortInts(clique)
		if c.appendCut(clique, 1) {
			added++
		}
	}
	return added
}

// sortInts is an allocation-free insertion sort for the short clique lists.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// pruneCutPool drops pooled cuts that are slack at x, compacting the pool
// in place (term storage of dropped slots is recycled by later appends).
// Returns how many cuts remain. Root phase only, before workers load.
func (c *compiled) pruneCutPool(x []float64) int {
	out := c.baseRows
	for ri := c.baseRows; ri < len(c.base.Cons); ri++ {
		cons := &c.base.Cons[ri]
		lhs := lp.Eval(cons.Terms, x)
		tol := 0.02 * (1 + math.Abs(cons.RHS))
		binding := false
		switch cons.Sense {
		case lp.LE:
			binding = lhs >= cons.RHS-tol
		case lp.GE:
			binding = lhs <= cons.RHS+tol
		}
		if !binding {
			continue
		}
		if out != ri {
			c.base.Cons[out], c.base.Cons[ri] = c.base.Cons[ri], c.base.Cons[out]
		}
		out++
	}
	c.base.Cons = c.base.Cons[:out]
	return out - c.baseRows
}

// appendGECut pools a general-coefficient GE cut (a Gomory mixed-integer
// cut in LP-variable space), deduplicated by a hash of its exact terms.
func (c *compiled) appendGECut(terms []lp.Term, rhs float64) bool {
	h := uint64(14695981039346656037)
	for _, t := range terms {
		h ^= uint64(t.Var)
		h *= 1099511628211
		h ^= math.Float64bits(t.Coef)
		h *= 1099511628211
	}
	h ^= math.Float64bits(rhs)
	h *= 1099511628211
	if c.cutSeen[h] {
		return false
	}
	c.cutSeen[h] = true
	if len(c.base.Cons) < cap(c.base.Cons) {
		c.base.Cons = c.base.Cons[:len(c.base.Cons)+1]
	} else {
		c.base.Cons = append(c.base.Cons, lp.Constraint{})
	}
	cons := &c.base.Cons[len(c.base.Cons)-1]
	cons.Terms = append(cons.Terms[:0], terms...)
	cons.Sense = lp.GE
	cons.RHS = rhs
	return true
}

// appendCut adds Σ_{vars} x <= rhs to the cut pool unless an identical cut
// is already pooled. vars must be deterministic for dedup hashing (sorted,
// or stable across rounds).
func (c *compiled) appendCut(vars []int, rhs float64) bool {
	return c.appendCutCoefs(vars, nil, rhs)
}

// appendCutCoefs adds Σ coefs[i]·x_{vars[i]} <= rhs to the cut pool (nil
// coefs means all ones), deduplicated by hash.
func (c *compiled) appendCutCoefs(vars []int, coefs []int, rhs float64) bool {
	h := uint64(14695981039346656037)
	for i, v := range vars {
		h ^= uint64(v)
		h *= 1099511628211
		if coefs != nil {
			h ^= uint64(coefs[i])
			h *= 1099511628211
		}
	}
	h ^= math.Float64bits(rhs)
	h *= 1099511628211
	if c.cutSeen[h] {
		return false
	}
	c.cutSeen[h] = true
	if len(c.base.Cons) < cap(c.base.Cons) {
		c.base.Cons = c.base.Cons[:len(c.base.Cons)+1]
	} else {
		c.base.Cons = append(c.base.Cons, lp.Constraint{})
	}
	cons := &c.base.Cons[len(c.base.Cons)-1]
	cons.Terms = cons.Terms[:0]
	for i, v := range vars {
		cf := 1.0
		if coefs != nil {
			cf = float64(coefs[i])
		}
		cons.Terms = append(cons.Terms, lp.Term{Var: v, Coef: cf})
	}
	cons.Sense = lp.LE
	cons.RHS = rhs
	return true
}
