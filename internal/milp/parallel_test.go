package milp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomKnapsackModel builds a knapsack-with-conflicts MILP whose search
// tree is non-trivial.
func randomKnapsackModel(rng *rand.Rand, n int) *Model {
	m := NewModel()
	vars := make([]Var, n)
	terms := make([]Term, n)
	weights := make([]Term, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary("x")
		terms[i] = Term{vars[i], 1 + rng.Float64()*14}
		weights[i] = Term{vars[i], 1 + rng.Float64()*9}
	}
	m.SetObjective(true, terms...)
	m.AddCons("cap", LE, float64(2*n), weights...)
	for i := 0; i+1 < n; i += 3 {
		m.AddCons("pair", LE, 1, Term{vars[i], 1}, Term{vars[i+1], 1})
	}
	return m
}

// TestParallelMatchesSerial runs the same models with Workers=1 and
// Workers=4 to full optimality and requires identical objectives — the
// acceptance criterion behind plan.WithParallelism.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(10)
		serial := randomKnapsackModel(rand.New(rand.NewSource(int64(trial))), n)
		parallel := randomKnapsackModel(rand.New(rand.NewSource(int64(trial))), n)

		rs := serial.Solve(Options{MaxNodes: 200000, Workers: 1})
		rp := parallel.Solve(Options{MaxNodes: 200000, Workers: 4})
		if rs.Status != OptimalMIP {
			t.Fatalf("trial %d: serial status %v", trial, rs.Status)
		}
		if rp.Status != OptimalMIP {
			t.Fatalf("trial %d: parallel status %v", trial, rp.Status)
		}
		if math.Abs(rs.Objective-rp.Objective) > 1e-6*(1+math.Abs(rs.Objective)) {
			t.Fatalf("trial %d: serial obj %v != parallel obj %v", trial, rs.Objective, rp.Objective)
		}
	}
}

// TestSerialDeterministic runs the identical model twice at Workers=1 and
// expects bit-identical node counts and objectives.
func TestSerialDeterministic(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		a := randomKnapsackModel(rand.New(rand.NewSource(int64(trial))), 14)
		b := randomKnapsackModel(rand.New(rand.NewSource(int64(trial))), 14)
		ra := a.Solve(Options{MaxNodes: 200000, Workers: 1})
		rb := b.Solve(Options{MaxNodes: 200000, Workers: 1})
		if ra.Status != rb.Status || ra.Nodes != rb.Nodes || ra.LPIters != rb.LPIters || ra.Objective != rb.Objective {
			t.Fatalf("trial %d: nondeterministic serial solve: (%v,%d,%d,%v) vs (%v,%d,%d,%v)",
				trial, ra.Status, ra.Nodes, ra.LPIters, ra.Objective, rb.Status, rb.Nodes, rb.LPIters, rb.Objective)
		}
	}
}

// TestConcurrentIndependentSolves exercises many Solve calls on independent
// models from independent goroutines, each itself running parallel workers;
// run with -race to verify solver isolation (the worker pool is shared).
func TestConcurrentIndependentSolves(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 5; k++ {
				m := randomKnapsackModel(rng, 10)
				res := m.Solve(Options{MaxNodes: 100000, Workers: 1 + int(seed)%3})
				if res.Status != OptimalMIP {
					errs <- res.Status.String()
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent solve failed: %v", e)
	}
}
