package milp

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"sqpr/internal/invariant"
	"sqpr/internal/lp"
)

// Tuning constants of the tree-reduction layer.
const (
	// cutRowReserve is the lp.Solver row headroom reserved for cutting
	// planes; separation never emits more cuts than fit.
	cutRowReserve = 96
	// cutMaxRounds bounds the root separate→append→re-solve loop.
	cutMaxRounds = 12
	// probeMaxDepthSmall bounds how deep reliability probing
	// (strong-branching lite) runs on small LPs (at most probeSmallN
	// active variables), where the two capped solves per candidate are
	// cheap and visibly shrink proof trees. Larger LPs never probe: at
	// their tableau width the probes cost more than the branching mistakes
	// they would prevent.
	probeMaxDepthSmall = 4
	probeSmallN        = 128
	// probeMaxCand caps how many unreliable candidates one node probes.
	probeMaxCand = 4
	// probeIterCap bounds the dual-simplex pivots of one probe solve.
	probeIterCap = 50
	// pcReliable is the observation count per direction below which a
	// candidate's pseudo-cost is considered unreliable.
	pcReliable = 1
	// gmiMaxPerRound caps Gomory mixed-integer cuts per separation round.
	gmiMaxPerRound = 24
)

// bbNode is one branch-and-bound subproblem: a set of pinned binaries
// (indices into compiled.active space) plus bookkeeping for best-first
// ordering and pseudo-cost updates. Nodes are pooled on the compiled arena.
type bbNode struct {
	bounds []boundFix
	depth  int
	est    float64 // parent LP objective (minimisation space), for pruning
	seq    int     // insertion order, deterministic tie-break

	// Branching bookkeeping: the variable whose pin created this node, so
	// the node's own relaxation updates that variable's pseudo-cost.
	branchVar  int // LP-active index, -1 for the root
	branchUp   bool
	parentEst  float64
	branchDist float64 // fractional distance moved by the pin
}

type boundFix struct {
	lpVar int
	lo    bool // true: pin at 1 (upper bound after shift); false: pin at 0
}

// nodeHeap is a best-first priority queue: smallest relaxation estimate
// first (most promising bound in minimisation space), FIFO on ties so a
// single worker explores nodes in a deterministic order.
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].est != h[j].est {
		return h[i].est < h[j].est
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// workerPool recycles workers — their lp.Solver arenas and all per-node
// scratch — across Solve calls, so a long-lived planner's branch-and-bound
// stops allocating fresh tableaus and buffers per submission.
var workerPool = sync.Pool{New: func() any { return &worker{slv: lp.NewSolver()} }}

// Solve optimises the model. The returned Result always carries the best
// incumbent found, mirroring the paper's use of a solver timeout after which
// "the best solution that the method found" is used. With Options.Workers
// greater than one the branch-and-bound explores nodes from a shared
// best-first queue on that many goroutines; Workers <= 1 runs the identical
// search loop inline and is fully deterministic.
//
// Unless Options.DisableTreeReduction is set, a tree-reduction layer runs
// around the search: presolve before compilation, cover/clique cuts at the
// root, reduced-cost bound fixing after every node LP, and pseudo-cost
// branching with reliability probing. None of these change which integer
// points are optimal — they only shrink the tree that proves it.
func (m *Model) Solve(opts Options) Result {
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = defaultIntTol
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 10000
	}

	c, err := m.compile(!opts.DisableTreeReduction)
	if err != nil {
		return Result{Status: InfeasibleMIP, Bound: math.Inf(-1)}
	}

	s := &search{
		c:          c,
		ctx:        opts.Ctx,
		reduce:     !opts.DisableTreeReduction,
		intTol:     intTol,
		maxNodes:   maxNodes,
		stallNodes: opts.StallNodes,
		deadline:   opts.Deadline,
		gapTol:     opts.GapTol,
		absGap:     opts.AbsGapTol,
		bestObj:    math.Inf(1), // minimisation space
	}
	s.cond.L = &s.mu
	s.initScratch()

	// Warm start: accept an externally computed feasible point.
	if opts.Incumbent != nil && len(opts.Incumbent) == len(m.vars) {
		s.acceptModelPoint(opts.Incumbent)
	}

	s.run(opts.Workers)

	res := Result{
		Nodes: s.nodes, LPIters: s.lpIters, Cancelled: s.cancelled, Stalled: s.stalled,
		Cuts: s.cuts, Fixings: s.fixings, PresolveFixed: c.presolveFixed,
		Factor: s.factor,
	}
	switch {
	case s.bestX == nil && s.provedInfeasible:
		res.Status = InfeasibleMIP
	case s.bestX == nil:
		res.Status = NoSolution
	case s.provedOptimal:
		res.Status = OptimalMIP
	default:
		res.Status = FeasibleMIP
	}
	if s.bestX != nil {
		// bestX lives in the compiled scratch arena; the Result owns its X.
		res.X = append([]float64(nil), s.bestX...)
		res.Objective = c.modelObjective(s.bestX)
	}
	if !math.IsInf(s.rootBound, 0) {
		res.Bound = c.modelSpace(s.rootBound)
	} else if s.bestX != nil {
		res.Bound = res.Objective
	}
	return res
}

// search is the shared state of one branch-and-bound run. All mutable
// fields below mu are guarded by it; workers only touch them inside short
// critical sections around each node solve.
type search struct {
	c        *compiled
	ctx      context.Context
	reduce   bool // tree-reduction layer enabled
	intTol   float64
	maxNodes int
	deadline time.Time
	gapTol   float64
	absGap   float64

	stallNodes int // stop after this many nodes without incumbent progress
	//sqpr:guarded-by mu
	lastImprove int // node count at the last incumbent improvement

	mu   sync.Mutex
	cond sync.Cond

	open nodeHeap //sqpr:guarded-by mu
	seq  int      //sqpr:guarded-by mu
	//sqpr:guarded-by mu
	busy int // workers currently solving a node

	nodes   int //sqpr:guarded-by mu
	lpIters int //sqpr:guarded-by mu
	cuts    int //sqpr:guarded-by mu
	fixings int //sqpr:guarded-by mu
	//sqpr:guarded-by mu
	factor lp.FactorStats // merged from each worker's solver at release

	//sqpr:guarded-by mu
	bestX []float64 // model-space incumbent (aliases compiled scratch)
	//sqpr:guarded-by mu
	bestObj float64 // minimisation-space objective of incumbent

	// Pseudo-costs per LP-active variable: sums of per-unit objective
	// degradation and observation counts, plus global averages used for
	// uninitialised candidates. Guarded by mu.
	//sqpr:guarded-by mu
	pcUp, pcDn []float64
	//sqpr:guarded-by mu
	pcUpN, pcDnN []int32
	pcSum        float64 //sqpr:guarded-by mu
	pcCnt        int32   //sqpr:guarded-by mu

	rootBound float64 //sqpr:guarded-by mu
	//sqpr:guarded-by mu
	stalled bool // ended via the stagnation stop
	//sqpr:guarded-by mu
	provedOptimal bool //sqpr:guarded-by mu
	//sqpr:guarded-by mu
	provedInfeasible bool
	//sqpr:guarded-by mu
	truncated bool // node/deadline budget exhausted mid-search
	//sqpr:guarded-by mu
	proofLost bool // an LP hit its budget: keep searching, drop proof
	gapHit    bool //sqpr:guarded-by mu
	cancelled bool //sqpr:guarded-by mu
}

// initScratch wires the per-Solve scratch (heap backing, node pool,
// pseudo-cost arrays) to the compiled arena so repeated Solves reuse it.
//
//sqpr:locked mu — caller runs in the single-threaded setup phase
func (s *search) initScratch() {
	c := s.c
	nAct := len(c.active)
	c.pcUp = growFloats(c.pcUp, nAct)
	c.pcDn = growFloats(c.pcDn, nAct)
	c.pcUpN = growInt32s(c.pcUpN, nAct)
	c.pcDnN = growInt32s(c.pcDnN, nAct)
	for k := 0; k < nAct; k++ {
		c.pcUp[k], c.pcDn[k] = 0, 0
		c.pcUpN[k], c.pcDnN[k] = 0, 0
	}
	s.pcUp, s.pcDn = c.pcUp, c.pcDn
	s.pcUpN, s.pcDnN = c.pcUpN, c.pcDnN
	s.open = c.openScratch[:0]
}

// finishScratch recycles remaining open nodes and returns the heap backing
// to the arena.
//
//sqpr:locked mu — caller runs in the single-threaded teardown phase
func (s *search) finishScratch() {
	for _, n := range s.open {
		if n != nil {
			s.freeNode(n)
		}
	}
	s.open = s.open[:0]
	s.c.openScratch = s.open
}

// newNode takes a node from the pool (caller holds mu, or the search is in
// its single-threaded root phase).
func (s *search) newNode() *bbNode {
	c := s.c
	if n := len(c.nodeFree); n > 0 {
		nd := c.nodeFree[n-1]
		c.nodeFree[n-1] = nil
		c.nodeFree = c.nodeFree[:n-1]
		nd.bounds = nd.bounds[:0]
		nd.depth, nd.est, nd.seq = 0, 0, 0
		nd.branchVar, nd.branchUp, nd.parentEst, nd.branchDist = -1, false, 0, 0
		return nd
	}
	return &bbNode{branchVar: -1}
}

// freeNode recycles a fathomed node (caller holds mu or is single-threaded).
func (s *search) freeNode(n *bbNode) {
	s.c.nodeFree = append(s.c.nodeFree, n)
}

// stopped reports (under mu) whether workers must wind down.
//
//sqpr:locked mu
func (s *search) stopped() bool {
	return s.cancelled || s.truncated || s.gapHit
}

// validateCandidate checks a candidate full-model point against bounds,
// integrality and every row, returning its minimisation-space objective.
// Validation runs against the caller's original rows — not the presolved or
// cut-extended image — so an accepted incumbent is feasible for the exact
// model as built. It reads only state that is immutable during a search, so
// workers call it WITHOUT holding s.mu.
func (s *search) validateCandidate(x []float64) (float64, bool) {
	m := s.c.m
	if len(x) != len(m.vars) {
		return 0, false
	}
	for i := range m.vars {
		v := &m.vars[i]
		if x[i] < v.lo-1e-6 || x[i] > v.hi+1e-6 {
			return 0, false
		}
		if v.typ == Binary && math.Abs(x[i]-math.Round(x[i])) > s.intTol {
			return 0, false
		}
	}
	for ri := range m.rows {
		r := &m.rows[ri]
		var lhs float64
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		tol := 1e-6 * (1 + math.Abs(r.rhs))
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return 0, false
			}
		case GE:
			if lhs < r.rhs-tol {
				return 0, false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return 0, false
			}
		}
	}
	// bestObj lives in the compiled LP's minimisation space so it compares
	// directly against node relaxation values.
	return s.c.lpSpace(s.c.modelObjective(x)), true
}

// installIncumbent installs a pre-validated point if it improves the
// incumbent, copying it into the arena-owned incumbent buffer. Caller holds
// s.mu (or the search is single-threaded).
//
//sqpr:locked mu — caller holds mu or runs pre-search
func (s *search) installIncumbent(x []float64, lpObj float64) bool {
	if lpObj < s.bestObj-1e-12 {
		s.bestObj = lpObj
		s.c.bestXBuf = append(s.c.bestXBuf[:0], x...)
		s.bestX = s.c.bestXBuf
		s.lastImprove = s.nodes
		return true
	}
	return false
}

// acceptModelPoint validates and installs a candidate in one step; used for
// the pre-search warm start, where there is no lock contention.
func (s *search) acceptModelPoint(x []float64) bool {
	lpObj, ok := s.validateCandidate(x)
	if !ok {
		return false
	}
	return s.installIncumbent(x, lpObj)
}

// run drives the search: the single-threaded root phase (root LP, dive
// heuristic, cutting-plane loop, root branching) followed by the best-first
// tree loop on the given number of workers (clamped to GOMAXPROCS — each
// worker owns a dense solver arena, so oversubscribing buys contention and
// memory, not speed). The search state after run reflects whether the tree
// was exhausted (proof) or a budget/gap/cancellation cut it short.
//
//sqpr:locked mu — single-threaded except the worker loops, which lock internally
func (s *search) run(workers int) {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	s.rootBound = math.Inf(-1)

	w0 := newWorker(s)
	s.processRoot(w0)
	if !s.stopped() && len(s.open) > 0 {
		if workers <= 1 {
			w0.loop()
		} else {
			var wg sync.WaitGroup
			for i := 1; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := newWorker(s)
					defer w.release()
					w.loop()
				}()
			}
			w0.loop()
			wg.Wait()
		}
	}
	w0.release()

	if !s.stopped() && !s.proofLost && len(s.open) == 0 && s.busy == 0 {
		s.provedOptimal = s.bestX != nil
		if s.bestX == nil {
			s.provedInfeasible = true
		}
	}
	s.finishScratch()
}

// push enqueues a node (caller holds mu, or the search is single-threaded
// pre-start).
//
//sqpr:locked mu
func (s *search) push(n *bbNode) {
	n.seq = s.seq
	s.seq++
	heap.Push(&s.open, n)
}

//sqpr:locked mu — caller holds mu
func (s *search) pruneSlack() float64 {
	return s.absGap + 1e-9*(1+math.Abs(s.bestObj))
}

//sqpr:locked mu — caller holds mu
func (s *search) gapReached() bool {
	if s.bestX == nil || math.IsInf(s.rootBound, 0) {
		return false
	}
	gap := math.Abs(s.bestObj - s.rootBound)
	if s.gapTol > 0 && gap <= s.gapTol*(1+math.Abs(s.bestObj)) {
		return true
	}
	return s.absGap > 0 && gap <= s.absGap
}

// fracCand is one fractional binary of a node relaxation.
type fracCand struct {
	k    int     // LP-active index
	val  float64 // relaxation value
	frac float64 // distance from the nearest integer
}

// probeObs is one strong-branching observation made by reliability probing.
type probeObs struct {
	k    int
	up   bool
	unit float64 // objective degradation per unit of fractional distance
}

// worker owns one warm LP solver over the compiled base problem plus the
// scratch buffers for bound diffing, candidate points, reduced costs and
// probing, so processing a node allocates nothing in steady state.
type worker struct {
	s       *search
	slv     *lp.Solver
	loaded  bool
	target  []int8 // desired fix per active var for the current node
	applied []int8 // fix currently applied to the solver
	xAct    []float64
	xDive   []float64

	// hasSnap marks that the solver holds a saved basis whose fix set is
	// snapApplied; jumping to an unrelated subtree restores it so the node
	// re-solve stays pure dual simplex (bound tightenings only).
	hasSnap     bool
	snapApplied []int8

	// Per-node scratch of the tree-reduction layer.
	fracs      []fracCand // fractional binaries of the current relaxation
	rc         []float64  // reduced cost per active var at the node optimum
	rcUp       []bool     // bound the variable is nonbasic at
	rcFix      []boundFix // bound fixes inherited by this node's children
	cutoffHint float64    // bestObj-derived cutoff captured at the last unlock
	probeList  []int      // candidate indices selected for probing
	probeObs   []probeObs
	candBuf    []float64 // model-space integral candidate
	diveBuf    []float64 // model-space dive candidate
	diveBounds []boundFix
}

func newWorker(s *search) *worker {
	w := workerPool.Get().(*worker)
	nAct := len(s.c.active)
	nv := len(s.c.m.vars)
	w.s = s
	w.loaded = false
	w.hasSnap = false
	w.target = growInt8s(w.target, nAct)
	w.applied = growInt8s(w.applied, nAct)
	w.snapApplied = growInt8s(w.snapApplied, nAct)
	for k := 0; k < nAct; k++ {
		w.target[k], w.applied[k], w.snapApplied[k] = nodeFree, nodeFree, nodeFree
	}
	w.xAct = growFloats(w.xAct, nAct)
	w.xDive = growFloats(w.xDive, nAct)
	w.rc = growFloats(w.rc, nAct)
	w.rcUp = growBools(w.rcUp, nAct)
	w.candBuf = growFloats(w.candBuf, nv)
	w.diveBuf = growFloats(w.diveBuf, nv)
	w.fracs = w.fracs[:0]
	w.rcFix = w.rcFix[:0]
	w.probeList = w.probeList[:0]
	w.probeObs = w.probeObs[:0]
	w.diveBounds = w.diveBounds[:0]
	return w
}

// release detaches the worker's solver from the model — so the pool does
// not keep a dead planner's compiled constraint storage reachable — and
// recycles the worker with all its scratch.
func (w *worker) release() {
	if w.loaded {
		w.s.mu.Lock()
		w.s.factor.Merge(w.slv.FactorStats())
		w.s.mu.Unlock()
	}
	w.slv.Detach()
	w.s = nil
	workerPool.Put(w)
}

// ensureLoaded lazily compiles the base LP into this worker's solver; the
// arena is reused from previous Solve calls when large enough. Tree workers
// load after the root phase froze the cut pool, so they carry no cut-row
// reserve: every pivot runs at the exact problem width.
func (w *worker) ensureLoaded() bool {
	if w.loaded {
		return true
	}
	// Lazy rows: SQPR models carry thousands of availability/acyclicity
	// rows of which only a handful bind at any node optimum, so the active
	// tableau stays small. Cut-pool rows load lazily too: a worker
	// activates a cut only when its subtree violates it.
	w.slv.SetLazy(true)
	w.slv.SetRowReserve(0)
	if err := w.slv.Load(&w.s.c.base); err != nil {
		return false
	}
	w.loaded = true
	return true
}

// reloadRoot reloads the base LP (including any pooled cuts) with the given
// row reserve, resetting the worker's applied-pin view. The next solve is
// cold. Root phase only.
func (w *worker) reloadRoot(reserve int) bool {
	if w.loaded {
		// Load resets the solver's factorization counters; bank the ones
		// accumulated so far or the root reload would erase them.
		w.s.mu.Lock()
		w.s.factor.Merge(w.slv.FactorStats())
		w.s.mu.Unlock()
	}
	w.slv.SetLazy(true)
	w.slv.SetRowReserve(reserve)
	if err := w.slv.Load(&w.s.c.base); err != nil {
		return false
	}
	for k := range w.applied {
		w.applied[k] = nodeFree
	}
	w.hasSnap = false
	w.loaded = true
	return true
}

// resolveRoot re-solves the unpinned root and classifies it; ok is false
// when the root phase must end (infeasibility proven or proof lost).
//
//sqpr:locked mu — single-threaded root phase
func (s *search) resolveRoot(w *worker) (sol lp.Solution, xAct []float64, ok bool) {
	sol, xAct = w.solveNode(nil, w.xAct)
	s.lpIters += sol.Iters
	if sol.Status == lp.Infeasible {
		s.provedInfeasible = s.bestX == nil
		return sol, nil, false
	}
	if sol.Status != lp.Optimal || !sol.Feasible {
		s.proofLost = true
		return sol, nil, false
	}
	return sol, xAct, true
}

const (
	nodeFree    int8 = iota
	nodeAtZero       // binary pinned to 0
	nodeAtUpper      // binary pinned to 1 (its shifted upper bound)
)

// applyBounds diffs the node's pin set against what the solver currently
// has and applies only the changes, preserving the warm basis. A plunged
// child only adds pins, so the diff is one Fix and the re-solve is pure
// dual simplex. Jumping to another subtree would need Unfixes — those drop
// dual optimality and force primal clean-up pivots — so in that case the
// worker first restores its saved near-root basis (whose pin set is a
// subset of any node's) and tightens from there instead.
func (w *worker) applyBounds(bounds []boundFix) {
	for i := range w.target {
		w.target[i] = nodeFree
	}
	for _, b := range bounds {
		if b.lo {
			w.target[b.lpVar] = nodeAtUpper
		} else {
			w.target[b.lpVar] = nodeAtZero
		}
	}
	tightening := true
	for j, want := range w.target {
		if a := w.applied[j]; a != nodeFree && a != want {
			tightening = false
			break
		}
	}
	if !tightening && w.hasSnap && w.snapIsSubset() && w.slv.RestoreBasis() {
		copy(w.applied, w.snapApplied)
	}
	for j, want := range w.target {
		if w.applied[j] == want {
			continue
		}
		switch want {
		case nodeFree:
			w.slv.Unfix(j)
		case nodeAtZero:
			w.slv.Fix(j, false)
		case nodeAtUpper:
			w.slv.Fix(j, true)
		}
		w.applied[j] = want
	}
}

// snapIsSubset reports whether the saved basis's pin set only contains pins
// the current target also has, so restoring it needs no Unfix.
func (w *worker) snapIsSubset() bool {
	for j, sa := range w.snapApplied {
		if sa != nodeFree && sa != w.target[j] {
			return false
		}
	}
	return true
}

// solveNode re-solves the base LP under the node's pins and expands the
// point into compiled-active coordinates (pinned variables included). The
// warm path allocates nothing.
func (w *worker) solveNode(bounds []boundFix, into []float64) (lp.Solution, []float64) {
	if !w.ensureLoaded() {
		return lp.Solution{Status: lp.Infeasible}, nil
	}
	w.applyBounds(bounds)
	sol := w.slv.ReSolve(lp.Options{Deadline: w.s.deadline, Ctx: w.s.ctx})
	if sol.X == nil {
		return sol, nil
	}
	copy(into, sol.X)
	return sol, into
}

// processRoot runs the single-threaded root phase: the root relaxation, the
// rounding-dive heuristic, the cutting-plane loop, root reduced-cost fixing
// and the first branch. No lock is held — workers start only afterwards.
//
//sqpr:locked mu — single-threaded root phase
func (s *search) processRoot(w *worker) {
	if s.ctx != nil && s.ctx.Err() != nil {
		s.cancelled, s.truncated = true, true
		return
	}
	if s.nodes >= s.maxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
		s.truncated = true
		return
	}
	s.nodes++

	sol, xAct := w.solveNode(nil, w.xAct)
	s.lpIters += sol.Iters
	switch {
	case sol.Status == lp.Infeasible:
		s.provedInfeasible = true
		return
	case sol.Status == lp.IterLimit && !sol.Feasible:
		s.proofLost = true
		return
	case sol.Status == lp.Unbounded || !sol.Feasible:
		// Unbounded relaxations cannot be bounded; the search ends with
		// whatever incumbent the warm start supplied.
		return
	}
	relax := sol.Objective

	// Rounding dive before cuts: pins every binary to its rounded root
	// value and re-solves; a feasible result seeds the incumbent that both
	// reduced-cost fixing and pruning need. When the caller supplied a warm
	// start (SQPR's greedy plan) the incumbent already exists, so the dive
	// LP — and the root re-solve it forces, since it leaves the solver at
	// its leaf — are skipped.
	var ok bool
	if s.bestX == nil {
		if cand, obj := w.dive(xAct); cand != nil {
			s.installIncumbent(cand, obj)
		}
		if sol, xAct, ok = s.resolveRoot(w); !ok {
			return
		}
		relax = sol.Objective
	}

	// Cutting-plane loop: separate violated cover/clique cuts and Gomory
	// mixed-integer cuts against the root optimum, append them warm,
	// re-solve, repeat. Every cut lands in the pool (base.Cons), so tree
	// workers load them lazily. The first separation runs against the
	// reserve-free tableau: only when cuts actually exist does the solver
	// re-arm with append headroom — and it sheds that headroom again before
	// the tree search, so node re-solves always pivot at the exact problem
	// width.
	if s.reduce {
		// Total pool budget: cuts beyond a multiple of the model's own row
		// count make every pivot pay more than the bound improvement is
		// worth; small models get a floor so the Gomory pass can work.
		cutCap := s.c.baseRows * 3
		if cutCap < 12 {
			cutCap = 12
		}
		if cutCap > cutRowReserve {
			cutCap = cutRowReserve
		}
		if added := s.separateRound(w, xAct, cutCap); added > 0 {
			s.cuts += added
			if !w.reloadRoot(cutRowReserve) {
				s.proofLost = true
				return
			}
			if sol, xAct, ok = s.resolveRoot(w); !ok {
				return
			}
			relax = sol.Objective
			for round := 1; round < cutMaxRounds; round++ {
				spare := min(w.slv.SpareRowCapacity(), cutCap-(len(s.c.base.Cons)-s.c.baseRows))
				more := s.separateRound(w, xAct, spare)
				if more == 0 {
					break
				}
				if _, err := w.slv.AppendRows(); err != nil {
					// Reserve exhausted mid-append: drop the unregistered
					// rows so every view of the problem stays consistent.
					s.c.base.Cons = s.c.base.Cons[:len(s.c.base.Cons)-more]
					break
				}
				s.cuts += more
				if sol, xAct, ok = s.resolveRoot(w); !ok {
					return
				}
				relax = sol.Objective
			}
			// Cut management: keep only the cuts binding at the final root
			// optimum. The slack ones were stepping stones of the
			// separation loop — pooling them would tax every node re-solve
			// with dense rows that no longer carry the bound.
			kept := s.c.pruneCutPool(xAct)
			s.cuts = kept
			// One more cold solve buys exact-width pivots for every node
			// that follows.
			if !w.reloadRoot(0) {
				s.proofLost = true
				return
			}
			if sol, xAct, ok = s.resolveRoot(w); !ok {
				return
			}
			relax = sol.Objective
		}
	}
	s.rootBound = relax

	// The post-cut root basis is the restore point for subtree jumps.
	if sol.Status == lp.Optimal && sol.Feasible {
		w.slv.SaveBasis()
		copy(w.snapApplied, w.applied)
		w.hasSnap = true
	}

	if s.gapReached() {
		s.gapHit = true
		return
	}
	if relax >= s.bestObj-s.pruneSlack() {
		s.provedOptimal = s.bestX != nil
		return
	}

	w.collectFracs(xAct)
	if len(w.fracs) == 0 {
		full := roundBinaries(s.c, s.c.toModelXInto(xAct, w.candBuf), s.intTol)
		if obj, ok := s.validateCandidate(full); ok {
			s.installIncumbent(full, obj)
		}
		return
	}
	w.captureReducedCosts()
	w.rcFix = w.rcFix[:0]
	w.probeObs = w.probeObs[:0]
	w.cutoffHint = s.bestObj - s.pruneSlack()
	w.maybeProbe(relax, 0)
	w.collectRCFixes(relax)
	k, val := w.selectBranch()
	w.stripFix(k)
	s.fixings += len(w.rcFix)

	root := s.newNode()
	up, down := w.makeChildren(root, relax, k, val)
	s.freeNode(root)
	if val >= 0.5 {
		s.push(up)
		s.push(down)
	} else {
		s.push(down)
		s.push(up)
	}
}

// separateRound runs one root separation round: cover and clique cuts from
// the row structure, then Gomory mixed-integer cuts from the solver's
// optimal basis, all bounded by spare pool capacity. Returns how many rows
// were appended to the pool.
func (s *search) separateRound(w *worker, xAct []float64, spare int) int {
	before := len(s.c.base.Cons)
	s.c.separateCuts(xAct, spare)
	// Gomory cuts are dense — slack substitution spreads them over whole
	// row supports — so they pay off on small proof-bound models but drag
	// every subsequent re-solve on large ones, whose trees the admission
	// gap already keeps shallow. Same size gate as deep probing.
	if len(s.c.active) <= probeSmallN {
		if left := spare - (len(s.c.base.Cons) - before); left > 0 {
			w.slv.GomoryCuts(s.c.isIntBuf, min(left, gmiMaxPerRound), func(terms []lp.Term, rhs float64) {
				s.c.appendGECut(terms, rhs)
			})
		}
	}
	return len(s.c.base.Cons) - before
}

// loop is the worker body: take a node — the locally plunged child when one
// is pending, otherwise the most promising open node — solve its relaxation
// warm, then branch, bound or fathom. Plunging keeps each worker diving
// depth-first along the preferred (rounded) branch, which finds incumbents
// early exactly like a serial DFS, while the shared best-first queue hands
// out the remaining subtrees. All queue and incumbent state is touched
// under s.mu; LP solves and probing run outside the lock.
func (w *worker) loop() {
	s := w.s
	var plunge *bbNode
	s.mu.Lock()
	for {
		var n *bbNode
		if plunge != nil {
			n, plunge = plunge, nil
		} else {
			for len(s.open) == 0 && s.busy > 0 && !s.stopped() {
				s.cond.Wait()
			}
			if s.stopped() || len(s.open) == 0 {
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			n = heap.Pop(&s.open).(*bbNode)
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			s.cancelled = true
			s.truncated = true
			s.freeNode(n)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.stallNodes > 0 && s.bestX != nil && s.nodes-s.lastImprove >= s.stallNodes {
			s.truncated = true
			s.stalled = true
			s.freeNode(n)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.nodes >= s.maxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			s.truncated = true
			s.freeNode(n)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.stopped() {
			s.freeNode(n)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if n.est >= s.bestObj-s.pruneSlack() {
			s.freeNode(n)
			continue // bound already dominated by incumbent
		}
		s.nodes++
		s.busy++
		// Snapshot the incumbent cutoff for the lock-free phase below: the
		// incumbent only improves, so a fix or skip decided against this
		// (possibly stale, never too small) cutoff stays valid under the
		// fresh one commit() prunes with.
		w.cutoffHint = s.bestObj - s.pruneSlack()
		s.mu.Unlock()

		sol, xAct := w.solveNode(n.bounds, w.xAct)

		// The first optimal basis this worker produces becomes its restore
		// point for cross-subtree jumps.
		if !w.hasSnap && sol.Status == lp.Optimal && sol.Feasible {
			w.slv.SaveBasis()
			copy(w.snapApplied, w.applied)
			w.hasSnap = true
		}

		// Classify the relaxation, pre-validate any integral incumbent
		// candidate and capture reduced costs outside the lock — the
		// O(rows·terms) validation would otherwise serialize every worker
		// on s.mu.
		out := w.assess(sol, xAct)

		// Reliability probing and reduced-cost fixing also run lock-free —
		// both would otherwise serialize every worker on s.mu — against the
		// snapshot cutoff. Nodes the fresh cutoff will prune anyway are
		// skipped outright.
		w.probeObs = w.probeObs[:0]
		w.rcFix = w.rcFix[:0]
		if out.status == lp.Optimal && out.feasible && len(w.fracs) > 0 && out.relax < w.cutoffHint {
			if len(w.fracs) > 1 {
				w.maybeProbe(out.relax, n.depth)
			}
			w.collectRCFixes(out.relax)
		}

		s.mu.Lock()
		s.lpIters += sol.Iters
		plunge = w.commit(n, out)
		s.freeNode(n)
		s.busy--
		s.cond.Broadcast()
	}
}

// outcome carries everything a solved node contributes back to the shared
// search state, computed lock-free by the worker. Fractional candidates are
// in w.fracs, reduced costs in w.rc/w.rcUp.
type outcome struct {
	status   lp.Status
	feasible bool
	relax    float64   // compiled minimisation space
	cand     []float64 // validated integral incumbent candidate (model space)
	candObj  float64
}

// assess classifies a solved relaxation, collects the fractional branching
// candidates and validates any integral incumbent candidate. It touches
// only worker-owned buffers and model state that is immutable during the
// search; no lock is held.
func (w *worker) assess(sol lp.Solution, xAct []float64) outcome {
	out := outcome{status: sol.Status, feasible: sol.Feasible, relax: sol.Objective}
	w.fracs = w.fracs[:0]
	if sol.Status == lp.Infeasible || sol.Status == lp.Unbounded || !sol.Feasible {
		return out
	}
	s := w.s
	w.collectFracs(xAct)
	if len(w.fracs) == 0 {
		full := roundBinaries(s.c, s.c.toModelXInto(xAct, w.candBuf), s.intTol)
		if obj, ok := s.validateCandidate(full); ok {
			out.cand, out.candObj = full, obj
		}
		return out
	}
	w.captureReducedCosts()
	return out
}

// collectFracs fills w.fracs with every fractional binary of xAct.
func (w *worker) collectFracs(xAct []float64) {
	s := w.s
	w.fracs = w.fracs[:0]
	for k, mi := range s.c.active {
		if s.c.m.vars[mi].typ != Binary {
			continue
		}
		v := xAct[k]
		f := math.Abs(v - math.Round(v))
		if f > s.intTol {
			w.fracs = append(w.fracs, fracCand{k: k, val: v, frac: f})
		}
	}
}

// captureReducedCosts snapshots the solver's reduced costs for every active
// variable; valid immediately after an Optimal ReSolve, before probing.
func (w *worker) captureReducedCosts() {
	for k := range w.rc {
		w.rc[k], w.rcUp[k] = w.slv.ReducedCost(k)
	}
}

// dive pins every binary to its rounded root-LP value and re-solves the
// residual LP; a feasible result becomes an incumbent candidate, validated
// here (lock-free).
//
//sqpr:locked mu — single-threaded root phase
func (w *worker) dive(xRoot []float64) ([]float64, float64) {
	c := w.s.c
	w.diveBounds = w.diveBounds[:0]
	for k, mi := range c.active {
		if c.m.vars[mi].typ != Binary {
			continue
		}
		w.diveBounds = append(w.diveBounds, boundFix{k, xRoot[k] >= 0.5})
	}
	sol, xd := w.solveNode(w.diveBounds, w.xDive)
	w.s.lpIters += sol.Iters // root phase is single-threaded; no lock needed
	if !sol.Feasible || xd == nil {
		return nil, 0
	}
	full := roundBinaries(c, c.toModelXInto(xd, w.diveBuf), w.s.intTol)
	if obj, ok := w.s.validateCandidate(full); ok {
		return full, obj
	}
	return nil, 0
}

// maybeProbe selects up to probeMaxCand unreliable candidates (no
// pseudo-cost observations in some direction) and probes each with two
// iteration-capped LP solves, recording observations and — when a probe
// proves a direction infeasible — a bound fix for the node's children. The
// solver is left warm but off the node optimum; the next solveNode repairs
// it. Shallow nodes only: the payoff is shaping the big subtrees.
func (w *worker) maybeProbe(relax float64, depth int) {
	s := w.s
	// Large LPs skip probing altogether: at their tableau width the two
	// capped solves per candidate cost more than the branching mistake
	// they would prevent.
	limit := -1
	if len(s.c.active) <= probeSmallN {
		limit = probeMaxDepthSmall
	}
	if !s.reduce || depth > limit {
		return
	}
	w.probeList = w.probeList[:0]
	s.mu.Lock()
	for _, fc := range w.fracs {
		if len(w.probeList) >= probeMaxCand {
			break
		}
		if s.pcUpN[fc.k] < pcReliable || s.pcDnN[fc.k] < pcReliable {
			w.probeList = append(w.probeList, fc.k)
		}
	}
	s.mu.Unlock()
	if len(w.probeList) == 0 {
		return
	}
	iters := 0
	for _, k := range w.probeList {
		var val float64
		for _, fc := range w.fracs {
			if fc.k == k {
				val = fc.val
				break
			}
		}
		for _, up := range [2]bool{true, false} {
			w.slv.Fix(k, up)
			sol := w.slv.ReSolve(lp.Options{MaxIters: probeIterCap, WarmOnly: true, Deadline: s.deadline, Ctx: s.ctx})
			iters += sol.Iters
			w.slv.Unfix(k)
			dist := val
			if up {
				dist = 1 - val
			}
			if dist < 1e-6 {
				dist = 1e-6
			}
			switch {
			case sol.Status == lp.Optimal && sol.Feasible:
				delta := sol.Objective - relax
				if delta < 0 {
					delta = 0
				}
				w.probeObs = append(w.probeObs, probeObs{k: k, up: up, unit: delta / dist})
			case sol.Status == lp.Infeasible:
				// This direction is infeasible below the node: fix the
				// variable the other way for the whole subtree.
				w.rcFix = append(w.rcFix, boundFix{k, !up})
				w.target[k] = nodeAtZero
				if !up {
					w.target[k] = nodeAtUpper
				}
			}
		}
	}
	s.mu.Lock()
	s.lpIters += iters
	s.mu.Unlock()
}

// pcScore computes the pseudo-cost product score of a fractional candidate.
// Caller holds s.mu.
//
//sqpr:locked mu — caller holds mu
func (s *search) pcScore(fc fracCand) float64 {
	avg := 1.0
	if s.pcCnt > 0 {
		avg = s.pcSum / float64(s.pcCnt)
	}
	up, dn := avg, avg
	if s.pcUpN[fc.k] > 0 {
		up = s.pcUp[fc.k] / float64(s.pcUpN[fc.k])
	}
	if s.pcDnN[fc.k] > 0 {
		dn = s.pcDn[fc.k] / float64(s.pcDnN[fc.k])
	}
	const eps = 1e-6
	return math.Max(dn*fc.val, eps) * math.Max(up*(1-fc.val), eps)
}

// selectBranch picks the branching variable among w.fracs: only candidates
// of the highest branch-priority class are considered (the builder ranks
// admission d and availability y above flow x), and within the class the
// pseudo-cost product score decides, with fractionality then index as
// deterministic tie-breaks. Caller holds s.mu — or the search is in its
// single-threaded root phase.
//
//sqpr:locked mu — called from commit with mu held
func (w *worker) selectBranch() (int, float64) {
	s := w.s
	if !s.reduce {
		// Ablated: plain most-fractional branching.
		best := w.fracs[0]
		for _, fc := range w.fracs[1:] {
			if fc.frac > best.frac {
				best = fc
			}
		}
		return best.k, best.val
	}
	// Fold fresh probe observations first so they inform this decision.
	for _, ob := range w.probeObs {
		if ob.up {
			s.pcUp[ob.k] += ob.unit
			s.pcUpN[ob.k]++
		} else {
			s.pcDn[ob.k] += ob.unit
			s.pcDnN[ob.k]++
		}
		s.pcSum += ob.unit
		s.pcCnt++
	}
	w.probeObs = w.probeObs[:0]

	bestIdx := -1
	bestScore := math.Inf(-1)
	var best fracCand
	for _, fc := range w.fracs {
		// Skip candidates fixed by probing for this subtree.
		if w.target[fc.k] != nodeFree {
			continue
		}
		// Branch priorities break ties, they do not dictate: the builder
		// ranks admission d and availability y above flow x, and that
		// ranking decides between candidates whose pseudo-cost scores are
		// indistinguishable (common while pseudo-costs are uninitialised).
		// A variable whose observed degradations mark it as the
		// combinatorial bottleneck — the relay edge of a saturated link,
		// say — still wins regardless of class; a hard priority filter
		// measurably wanders on such models.
		sc := s.pcScore(fc)
		tie := sc <= bestScore+1e-9*(1+math.Abs(bestScore)) &&
			sc >= bestScore-1e-9*(1+math.Abs(bestScore))
		better := bestIdx < 0 || (!tie && sc > bestScore)
		if tie && bestIdx >= 0 {
			pa, pb := s.c.prio[fc.k], s.c.prio[best.k]
			better = pa > pb ||
				(pa == pb && (fc.frac > best.frac+1e-12 ||
					(fc.frac > best.frac-1e-12 && fc.k < best.k)))
		}
		if better {
			bestIdx, bestScore, best = fc.k, sc, fc
		}
	}
	if bestIdx < 0 {
		// Every candidate was probe-fixed; fall back to the first one.
		best = w.fracs[0]
	}
	return best.k, best.val
}

// collectRCFixes appends reduced-cost bound fixes to w.rcFix: a binary
// nonbasic at a bound whose reduced cost proves the opposite bound cannot
// beat the incumbent is pinned for the whole subtree. It runs lock-free
// against w.cutoffHint — a snapshot of the incumbent cutoff that can only
// be larger than the current one, so every fix it takes would also be
// taken against fresh state. Fixed variables are marked in w.target, which
// keeps them out of selectBranch's candidates.
func (w *worker) collectRCFixes(relax float64) {
	s := w.s
	if !s.reduce {
		return
	}
	cutoff := w.cutoffHint
	for k, mi := range s.c.active {
		if w.target[k] != nodeFree || s.c.m.vars[mi].typ != Binary {
			continue
		}
		if d := w.rc[k]; d > 0 && relax+d >= cutoff {
			w.rcFix = append(w.rcFix, boundFix{k, w.rcUp[k]})
			if w.rcUp[k] {
				w.target[k] = nodeAtUpper
			} else {
				w.target[k] = nodeAtZero
			}
		}
	}
}

// stripFix removes a fix on variable k from w.rcFix (and unpins it in
// w.target) so the children can pin k in both directions. selectBranch
// skips pinned candidates, so this only fires on its every-candidate-fixed
// fallback.
func (w *worker) stripFix(k int) {
	if w.target[k] == nodeFree {
		return
	}
	for i := range w.rcFix {
		if w.rcFix[i].lpVar == k {
			w.rcFix[i] = w.rcFix[len(w.rcFix)-1]
			w.rcFix = w.rcFix[:len(w.rcFix)-1]
			w.target[k] = nodeFree
			return
		}
	}
}

// makeChildren builds the two children of node n branching on variable k at
// fractional value val, inheriting n's pins plus w.rcFix. Caller holds s.mu
// or the search is single-threaded.
func (w *worker) makeChildren(n *bbNode, relax float64, k int, val float64) (up, down *bbNode) {
	s := w.s
	build := func(atUpper bool) *bbNode {
		ch := s.newNode()
		// One exact-size growth at most: pooled nodes keep their backing,
		// so the steady-state search allocates no per-node bookkeeping.
		if need := len(n.bounds) + len(w.rcFix) + 1; cap(ch.bounds) < need {
			// Round the capacity up so pooled nodes converge on a size that
			// fits any node of the tree.
			ch.bounds = make([]boundFix, 0, (need/32+1)*32)
		}
		ch.bounds = append(ch.bounds, n.bounds...)
		ch.bounds = append(ch.bounds, w.rcFix...)
		ch.bounds = append(ch.bounds, boundFix{k, atUpper})
		ch.depth = n.depth + 1
		ch.est = relax
		ch.branchVar = k
		ch.branchUp = atUpper
		ch.parentEst = relax
		ch.branchDist = val
		if atUpper {
			ch.branchDist = 1 - val
		}
		if ch.branchDist < 1e-6 {
			ch.branchDist = 1e-6
		}
		return ch
	}
	return build(true), build(false)
}

// commit folds one assessed relaxation back into the shared search state:
// update pseudo-costs, prune, install a pre-validated incumbent, or select
// a branching variable, apply reduced-cost fixes and expand. Caller holds
// mu.
//
//sqpr:locked mu — the worker loop holds mu across each commit
func (w *worker) commit(n *bbNode, out outcome) *bbNode {
	s := w.s
	// Checked builds verify bound monotonicity: a child subproblem only adds
	// constraints, so its relaxation can never beat the parent's bound.
	if invariant.Enabled && out.status == lp.Optimal && out.feasible && n.branchVar >= 0 && out.relax < n.est-1e-6 {
		invariant.Failf("milp: child relaxation %g beats parent bound %g down the tree", out.relax, n.est)
	}
	// Pseudo-cost learning: the node's own relaxation measures the true
	// degradation of the branch that created it.
	if s.reduce && n.branchVar >= 0 && out.status == lp.Optimal && out.feasible {
		delta := out.relax - n.parentEst
		if delta < 0 {
			delta = 0
		}
		unit := delta / n.branchDist
		if n.branchUp {
			s.pcUp[n.branchVar] += unit
			s.pcUpN[n.branchVar]++
		} else {
			s.pcDn[n.branchVar] += unit
			s.pcDnN[n.branchVar]++
		}
		s.pcSum += unit
		s.pcCnt++
	}

	switch {
	case out.status == lp.Infeasible:
		return nil
	case out.status == lp.IterLimit && !out.feasible:
		// The LP budget ran out before feasibility: the node was not
		// resolved, so the search keeps going but can no longer claim a
		// proof of optimality or infeasibility.
		s.proofLost = true
		return nil
	case out.status == lp.Unbounded || !out.feasible:
		// Unbounded relaxations cannot be pruned; treat as failure to
		// bound.
		return nil
	}
	relax := out.relax // compiled minimisation space
	if relax >= s.bestObj-s.pruneSlack() {
		return nil
	}
	if len(w.fracs) == 0 {
		// Integral: pre-validated incumbent candidate.
		if out.cand != nil {
			s.installIncumbent(out.cand, out.candObj)
		}
		if s.gapReached() {
			s.gapHit = true
		}
		return nil
	}
	k, val := w.selectBranch()
	w.stripFix(k)
	s.fixings += len(w.rcFix)

	// Branch: plunge into the rounded side ourselves (depth-first dive,
	// mirrors a serial exploration order) and share the sibling through the
	// best-first queue.
	up, down := w.makeChildren(n, relax, k, val)
	preferred, sibling := up, down
	if val < 0.5 {
		preferred, sibling = down, up
	}
	preferred.seq = s.seq // plunged directly, never enters the heap
	s.seq++
	s.push(sibling)
	return preferred
}

// roundBinaries snaps near-integral binary values to exact integers so that
// incumbents are clean.
func roundBinaries(c *compiled, x []float64, tol float64) []float64 {
	for i, v := range c.m.vars {
		if v.typ == Binary {
			r := math.Round(x[i])
			if math.Abs(x[i]-r) <= 10*tol {
				x[i] = r
			}
		}
	}
	return x
}

// SortTermsInPlace orders terms by variable index; useful for deterministic
// tests and debugging output.
func SortTermsInPlace(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
}
