package milp

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"sqpr/internal/lp"
)

// bbNode is one branch-and-bound subproblem: a set of pinned binaries
// (indices into compiled.active space) plus bookkeeping for best-first
// ordering.
type bbNode struct {
	bounds []boundFix
	depth  int
	est    float64 // parent LP objective (minimisation space), for pruning
	seq    int     // insertion order, deterministic tie-break
}

type boundFix struct {
	lpVar int
	lo    bool // true: pin at 1 (upper bound after shift); false: pin at 0
}

// nodeHeap is a best-first priority queue: smallest relaxation estimate
// first (most promising bound in minimisation space), FIFO on ties so a
// single worker explores nodes in a deterministic order.
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].est != h[j].est {
		return h[i].est < h[j].est
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// solverPool recycles lp.Solver arenas across Solve calls, so a long-lived
// planner's branch-and-bound stops allocating fresh tableaus per
// submission.
var solverPool = sync.Pool{New: func() any { return lp.NewSolver() }}

// Solve optimises the model. The returned Result always carries the best
// incumbent found, mirroring the paper's use of a solver timeout after which
// "the best solution that the method found" is used. With Options.Workers
// greater than one the branch-and-bound explores nodes from a shared
// best-first queue on that many goroutines; Workers <= 1 runs the identical
// search loop inline and is fully deterministic.
func (m *Model) Solve(opts Options) Result {
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = defaultIntTol
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 10000
	}

	c, err := m.compile()
	if err != nil {
		return Result{Status: InfeasibleMIP, Bound: math.Inf(-1)}
	}

	s := &search{
		c:        c,
		ctx:      opts.Ctx,
		intTol:   intTol,
		maxNodes: maxNodes,
		deadline: opts.Deadline,
		gapTol:   opts.GapTol,
		absGap:   opts.AbsGapTol,
		bestObj:  math.Inf(1), // minimisation space
	}
	s.cond.L = &s.mu

	// Warm start: accept an externally computed feasible point.
	if opts.Incumbent != nil && len(opts.Incumbent) == len(m.vars) {
		s.acceptModelPoint(opts.Incumbent)
	}

	s.run(opts.Workers)

	res := Result{Nodes: s.nodes, LPIters: s.lpIters, Cancelled: s.cancelled}
	switch {
	case s.bestX == nil && s.provedInfeasible:
		res.Status = InfeasibleMIP
	case s.bestX == nil:
		res.Status = NoSolution
	case s.provedOptimal:
		res.Status = OptimalMIP
	default:
		res.Status = FeasibleMIP
	}
	if s.bestX != nil {
		res.X = s.bestX
		res.Objective = c.modelObjective(s.bestX)
	}
	if !math.IsInf(s.rootBound, 0) {
		res.Bound = c.modelSpace(s.rootBound)
	} else if s.bestX != nil {
		res.Bound = res.Objective
	}
	return res
}

// search is the shared state of one branch-and-bound run. All mutable
// fields below mu are guarded by it; workers only touch them inside short
// critical sections around each node solve.
type search struct {
	c        *compiled
	ctx      context.Context
	intTol   float64
	maxNodes int
	deadline time.Time
	gapTol   float64
	absGap   float64

	mu   sync.Mutex
	cond sync.Cond

	open nodeHeap
	seq  int
	busy int // workers currently solving a node

	nodes   int
	lpIters int

	bestX   []float64 // model-space incumbent
	bestObj float64   // minimisation-space objective of incumbent

	rootBound        float64
	provedOptimal    bool
	provedInfeasible bool
	truncated        bool // node/deadline budget exhausted mid-search
	proofLost        bool // an LP hit its budget: keep searching, drop proof
	gapHit           bool
	cancelled        bool
}

// stopped reports (under mu) whether workers must wind down.
func (s *search) stopped() bool {
	return s.cancelled || s.truncated || s.gapHit
}

// validateCandidate checks a candidate full-model point against bounds,
// integrality and every row, returning its minimisation-space objective.
// It reads only model state that is immutable during a search, so workers
// call it WITHOUT holding s.mu — this is the expensive O(rows·terms) part
// of incumbent acceptance, kept off the shared lock.
func (s *search) validateCandidate(x []float64) (float64, bool) {
	m := s.c.m
	if len(x) != len(m.vars) {
		return 0, false
	}
	for i := range m.vars {
		v := &m.vars[i]
		if x[i] < v.lo-1e-6 || x[i] > v.hi+1e-6 {
			return 0, false
		}
		if v.typ == Binary && math.Abs(x[i]-math.Round(x[i])) > s.intTol {
			return 0, false
		}
	}
	for ri := range m.rows {
		r := &m.rows[ri]
		var lhs float64
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		tol := 1e-6 * (1 + math.Abs(r.rhs))
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return 0, false
			}
		case GE:
			if lhs < r.rhs-tol {
				return 0, false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return 0, false
			}
		}
	}
	// bestObj lives in the compiled LP's minimisation space so it compares
	// directly against node relaxation values.
	return s.c.lpSpace(s.c.modelObjective(x)), true
}

// installIncumbent installs a pre-validated point if it improves the
// incumbent. Caller holds s.mu.
func (s *search) installIncumbent(x []float64, lpObj float64) bool {
	if lpObj < s.bestObj-1e-12 {
		s.bestObj = lpObj
		cp := make([]float64, len(x))
		copy(cp, x)
		s.bestX = cp
		return true
	}
	return false
}

// acceptModelPoint validates and installs a candidate in one step; used for
// the pre-search warm start, where there is no lock contention.
func (s *search) acceptModelPoint(x []float64) bool {
	lpObj, ok := s.validateCandidate(x)
	if !ok {
		return false
	}
	return s.installIncumbent(x, lpObj)
}

// run drives the best-first branch and bound on the given number of
// workers (clamped to GOMAXPROCS — each worker owns a dense solver arena,
// so oversubscribing buys contention and memory, not speed). The search
// state after run reflects whether the tree was exhausted (proof) or a
// budget/gap/cancellation cut it short.
func (s *search) run(workers int) {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	s.rootBound = math.Inf(-1)
	s.push(&bbNode{est: math.Inf(-1)})
	if workers <= 1 {
		w := newWorker(s)
		defer w.release()
		w.loop()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := newWorker(s)
				defer w.release()
				w.loop()
			}()
		}
		wg.Wait()
	}
	if !s.stopped() && !s.proofLost && len(s.open) == 0 && s.busy == 0 {
		s.provedOptimal = s.bestX != nil
		if s.bestX == nil {
			s.provedInfeasible = true
		}
	}
}

// push enqueues a node (caller holds mu, or the search is single-threaded
// pre-start).
func (s *search) push(n *bbNode) {
	n.seq = s.seq
	s.seq++
	heap.Push(&s.open, n)
}

func (s *search) pruneSlack() float64 {
	return s.absGap + 1e-9*(1+math.Abs(s.bestObj))
}

func (s *search) gapReached() bool {
	if s.bestX == nil || math.IsInf(s.rootBound, 0) {
		return false
	}
	gap := math.Abs(s.bestObj - s.rootBound)
	if s.gapTol > 0 && gap <= s.gapTol*(1+math.Abs(s.bestObj)) {
		return true
	}
	return s.absGap > 0 && gap <= s.absGap
}

// worker owns one warm LP solver over the compiled base problem plus the
// scratch buffers for bound diffing, so processing a node re-solves the
// same tableau in place instead of rebuilding an LP from scratch.
type worker struct {
	s       *search
	slv     *lp.Solver
	loaded  bool
	target  []int8 // desired fix per active var for the current node
	applied []int8 // fix currently applied to the solver
	xAct    []float64
	xDive   []float64

	// hasSnap marks that the solver holds a saved basis whose fix set is
	// snapApplied; jumping to an unrelated subtree restores it so the node
	// re-solve stays pure dual simplex (bound tightenings only).
	hasSnap     bool
	snapApplied []int8
}

func newWorker(s *search) *worker {
	nAct := len(s.c.active)
	w := &worker{
		s:           s,
		slv:         solverPool.Get().(*lp.Solver),
		target:      make([]int8, nAct),
		applied:     make([]int8, nAct),
		xAct:        make([]float64, nAct),
		xDive:       make([]float64, nAct),
		snapApplied: make([]int8, nAct),
	}
	return w
}

// release returns the worker's solver arena to the pool, detached from the
// model so the pool does not keep a dead planner's compiled constraint
// storage (or the snapshot arena's view of it) reachable.
func (w *worker) release() {
	w.slv.Detach()
	solverPool.Put(w.slv)
	w.slv = nil
}

// ensureLoaded lazily compiles the base LP into this worker's solver; the
// arena is reused from previous Solve calls when large enough.
func (w *worker) ensureLoaded() bool {
	if w.loaded {
		return true
	}
	// Lazy rows: SQPR models carry thousands of availability/acyclicity
	// rows of which only a handful bind at any node optimum, so the active
	// tableau stays small.
	w.slv.SetLazy(true)
	if err := w.slv.Load(&w.s.c.base); err != nil {
		return false
	}
	w.loaded = true
	return true
}

const (
	nodeFree    int8 = iota
	nodeAtZero       // binary pinned to 0
	nodeAtUpper      // binary pinned to 1 (its shifted upper bound)
)

// applyBounds diffs the node's pin set against what the solver currently
// has and applies only the changes, preserving the warm basis. A plunged
// child only adds pins, so the diff is one Fix and the re-solve is pure
// dual simplex. Jumping to another subtree would need Unfixes — those drop
// dual optimality and force primal clean-up pivots — so in that case the
// worker first restores its saved near-root basis (whose pin set is a
// subset of any node's) and tightens from there instead.
func (w *worker) applyBounds(bounds []boundFix) {
	for i := range w.target {
		w.target[i] = nodeFree
	}
	for _, b := range bounds {
		if b.lo {
			w.target[b.lpVar] = nodeAtUpper
		} else {
			w.target[b.lpVar] = nodeAtZero
		}
	}
	tightening := true
	for j, want := range w.target {
		if a := w.applied[j]; a != nodeFree && a != want {
			tightening = false
			break
		}
	}
	if !tightening && w.hasSnap && w.snapIsSubset() && w.slv.RestoreBasis() {
		copy(w.applied, w.snapApplied)
	}
	for j, want := range w.target {
		if w.applied[j] == want {
			continue
		}
		switch want {
		case nodeFree:
			w.slv.Unfix(j)
		case nodeAtZero:
			w.slv.Fix(j, false)
		case nodeAtUpper:
			w.slv.Fix(j, true)
		}
		w.applied[j] = want
	}
}

// snapIsSubset reports whether the saved basis's pin set only contains pins
// the current target also has, so restoring it needs no Unfix.
func (w *worker) snapIsSubset() bool {
	for j, sa := range w.snapApplied {
		if sa != nodeFree && sa != w.target[j] {
			return false
		}
	}
	return true
}

// solveNode re-solves the base LP under the node's pins and expands the
// point into compiled-active coordinates (pinned variables included). The
// warm path allocates nothing.
func (w *worker) solveNode(bounds []boundFix, into []float64) (lp.Solution, []float64) {
	if !w.ensureLoaded() {
		return lp.Solution{Status: lp.Infeasible}, nil
	}
	w.applyBounds(bounds)
	sol := w.slv.ReSolve(lp.Options{Deadline: w.s.deadline, Ctx: w.s.ctx})
	if sol.X == nil {
		return sol, nil
	}
	copy(into, sol.X)
	return sol, into
}

// loop is the worker body: take a node — the locally plunged child when one
// is pending, otherwise the most promising open node — solve its relaxation
// warm, then branch, bound or fathom. Plunging keeps each worker diving
// depth-first along the preferred (rounded) branch, which finds incumbents
// early exactly like the former serial DFS, while the shared best-first
// queue hands out the remaining subtrees. All queue and incumbent state is
// touched under s.mu; LP solves run outside the lock.
func (w *worker) loop() {
	s := w.s
	var plunge *bbNode
	s.mu.Lock()
	for {
		var n *bbNode
		if plunge != nil {
			n, plunge = plunge, nil
		} else {
			for len(s.open) == 0 && s.busy > 0 && !s.stopped() {
				s.cond.Wait()
			}
			if s.stopped() || len(s.open) == 0 {
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			n = heap.Pop(&s.open).(*bbNode)
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			s.cancelled = true
			s.truncated = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.nodes >= s.maxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			s.truncated = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.stopped() {
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if n.est >= s.bestObj-s.pruneSlack() {
			continue // bound already dominated by incumbent
		}
		s.nodes++
		isRoot := n.seq == 0
		s.busy++
		s.mu.Unlock()

		sol, xAct := w.solveNode(n.bounds, w.xAct)

		// The first optimal basis this worker produces (the root basis for
		// the worker that solves the root) becomes its restore point for
		// cross-subtree jumps.
		if !w.hasSnap && sol.Status == lp.Optimal && sol.Feasible {
			w.slv.SaveBasis()
			copy(w.snapApplied, w.applied)
			w.hasSnap = true
		}

		// The root relaxation additionally seeds a rounding dive before the
		// tree search branches; both solves happen outside the lock.
		var diveCand []float64
		var diveObj float64
		if isRoot && sol.Feasible && xAct != nil {
			diveCand, diveObj = w.dive(n, xAct)
		}

		// Classify the relaxation and pre-validate any integral incumbent
		// candidate outside the lock — the O(rows·terms) validation would
		// otherwise serialize every worker on s.mu.
		out := w.assess(n, sol, xAct, isRoot)
		out.diveCand, out.diveObj = diveCand, diveObj

		s.mu.Lock()
		s.lpIters += sol.Iters
		plunge = w.commit(n, out, isRoot)
		s.busy--
		s.cond.Broadcast()
	}
}

// outcome carries everything a solved node contributes back to the shared
// search state, computed lock-free by the worker.
type outcome struct {
	status   lp.Status
	feasible bool
	relax    float64   // compiled minimisation space
	fracVar  int       // branching variable, -1 when integral
	fracVal  float64   // its relaxation value
	cand     []float64 // validated integral incumbent candidate (model space)
	candObj  float64
	diveCand []float64 // validated dive incumbent candidate (root only)
	diveObj  float64
}

// assess classifies a solved relaxation and validates any integral
// incumbent candidate. It touches only worker-owned buffers and
// model state that is immutable during the search; no lock is held.
func (w *worker) assess(n *bbNode, sol lp.Solution, xAct []float64, isRoot bool) outcome {
	out := outcome{status: sol.Status, feasible: sol.Feasible, relax: sol.Objective, fracVar: -1}
	if sol.Status == lp.Infeasible || sol.Status == lp.Unbounded || !sol.Feasible {
		return out
	}
	s := w.s
	// Find most fractional binary.
	frac := -1.0
	for k, mi := range s.c.active {
		if s.c.m.vars[mi].typ != Binary {
			continue
		}
		v := xAct[k]
		f := math.Abs(v - math.Round(v))
		if f > s.intTol && f > frac {
			frac = f
			out.fracVar = k
			out.fracVal = v
		}
	}
	if out.fracVar < 0 {
		full := roundBinaries(s.c, s.c.toModelX(xAct), s.intTol)
		if obj, ok := s.validateCandidate(full); ok {
			out.cand, out.candObj = full, obj
		}
	}
	return out
}

// dive pins every binary to its rounded root-LP value and re-solves the
// residual LP; a feasible result becomes an incumbent candidate, validated
// here (lock-free) and installed later under the lock.
func (w *worker) dive(n *bbNode, xRoot []float64) ([]float64, float64) {
	c := w.s.c
	bounds := make([]boundFix, 0, len(n.bounds)+len(c.active))
	bounds = append(bounds, n.bounds...)
	for k, mi := range c.active {
		if c.m.vars[mi].typ != Binary {
			continue
		}
		bounds = append(bounds, boundFix{k, xRoot[k] >= 0.5})
	}
	sol, xd := w.solveNode(bounds, w.xDive)
	w.s.mu.Lock()
	w.s.lpIters += sol.Iters
	w.s.mu.Unlock()
	if !sol.Feasible || xd == nil {
		return nil, 0
	}
	full := roundBinaries(c, c.toModelX(xd), w.s.intTol)
	if obj, ok := w.s.validateCandidate(full); ok {
		return full, obj
	}
	return nil, 0
}

// commit folds one assessed relaxation back into the shared search state:
// prune, install a pre-validated incumbent, or branch. Caller holds mu.
func (w *worker) commit(n *bbNode, out outcome, isRoot bool) *bbNode {
	s := w.s
	switch {
	case out.status == lp.Infeasible:
		if isRoot {
			s.provedInfeasible = true
		}
		return nil
	case out.status == lp.IterLimit && !out.feasible:
		// The LP budget ran out before feasibility: the node was not
		// resolved, so the search keeps going but can no longer claim a
		// proof of optimality or infeasibility.
		s.proofLost = true
		return nil
	case out.status == lp.Unbounded || !out.feasible:
		// Unbounded relaxations cannot be pruned; treat as failure to
		// bound.
		return nil
	}
	relax := out.relax // compiled minimisation space
	if isRoot {
		s.rootBound = relax
		if out.diveCand != nil {
			s.installIncumbent(out.diveCand, out.diveObj)
		}
		if s.gapReached() {
			s.gapHit = true
			return nil
		}
	}
	if relax >= s.bestObj-s.pruneSlack() {
		return nil
	}
	if out.fracVar < 0 {
		// Integral: pre-validated incumbent candidate.
		if out.cand != nil {
			s.installIncumbent(out.cand, out.candObj)
		}
		if s.gapReached() {
			s.gapHit = true
		}
		return nil
	}
	// Branch: plunge into the rounded side ourselves (depth-first dive,
	// mirrors the former serial exploration order) and share the sibling
	// through the best-first queue.
	up := &bbNode{bounds: appendBound(n.bounds, boundFix{out.fracVar, true}), depth: n.depth + 1, est: relax}
	down := &bbNode{bounds: appendBound(n.bounds, boundFix{out.fracVar, false}), depth: n.depth + 1, est: relax}
	preferred, sibling := up, down
	if out.fracVal < 0.5 {
		preferred, sibling = down, up
	}
	preferred.seq = s.seq // plunged directly, never enters the heap
	s.seq++
	s.push(sibling)
	return preferred
}

// roundBinaries snaps near-integral binary values to exact integers so that
// incumbents are clean.
func roundBinaries(c *compiled, x []float64, tol float64) []float64 {
	for i, v := range c.m.vars {
		if v.typ == Binary {
			r := math.Round(x[i])
			if math.Abs(x[i]-r) <= 10*tol {
				x[i] = r
			}
		}
	}
	return x
}

func appendBound(base []boundFix, b boundFix) []boundFix {
	out := make([]boundFix, 0, len(base)+1)
	out = append(out, base...)
	out = append(out, b)
	return out
}

// SortTermsInPlace orders terms by variable index; useful for deterministic
// tests and debugging output.
func SortTermsInPlace(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
}
