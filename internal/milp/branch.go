package milp

import (
	"context"
	"math"
	"sort"
	"time"

	"sqpr/internal/lp"
)

// node is one branch-and-bound subproblem: a set of tightened bounds on LP
// variables (indices into compiled.active space).
type node struct {
	bounds []boundFix
	depth  int
	est    float64 // parent LP objective (minimisation space), for pruning
}

type boundFix struct {
	lpVar int
	lo    bool // true: set lower bound (value 1 after shift); false: set upper bound 0
}

// Solve optimises the model. The returned Result always carries the best
// incumbent found, mirroring the paper's use of a solver timeout after which
// "the best solution that the method found" is used.
func (m *Model) Solve(opts Options) Result {
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = defaultIntTol
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 10000
	}

	c, err := m.compile()
	if err != nil {
		return Result{Status: InfeasibleMIP, Bound: math.Inf(-1)}
	}

	s := &search{
		c:        c,
		ctx:      opts.Ctx,
		intTol:   intTol,
		maxNodes: maxNodes,
		deadline: opts.Deadline,
		gapTol:   opts.GapTol,
		absGap:   opts.AbsGapTol,
		bestObj:  math.Inf(1), // minimisation space
	}

	// Warm start: accept an externally computed feasible point.
	if opts.Incumbent != nil && len(opts.Incumbent) == len(m.vars) {
		if s.acceptModelPoint(opts.Incumbent) {
			// accepted; bestObj/bestX updated
		}
	}

	s.run()

	res := Result{Nodes: s.nodes, LPIters: s.lpIters, Cancelled: s.cancelled}
	switch {
	case s.bestX == nil && s.provedInfeasible:
		res.Status = InfeasibleMIP
	case s.bestX == nil:
		res.Status = NoSolution
	case s.provedOptimal:
		res.Status = OptimalMIP
	default:
		res.Status = FeasibleMIP
	}
	if s.bestX != nil {
		res.X = s.bestX
		res.Objective = c.modelObjective(s.bestX)
	}
	if !math.IsInf(s.rootBound, 0) {
		res.Bound = c.modelSpace(s.rootBound)
	} else if s.bestX != nil {
		res.Bound = res.Objective
	}
	return res
}

type search struct {
	c        *compiled
	ctx      context.Context
	intTol   float64
	maxNodes int
	deadline time.Time
	gapTol   float64

	absGap float64

	nodes   int
	lpIters int

	bestX   []float64 // model space incumbent
	bestObj float64   // minimisation-space objective of incumbent

	rootBound            float64
	provedOptimal        bool
	provedInfeasible     bool
	nodesPruneIncomplete bool
	cancelled            bool
}

// acceptModelPoint validates a candidate full-model point and installs it
// as incumbent if feasible and improving. Integrality is enforced for
// binary variables.
func (s *search) acceptModelPoint(x []float64) bool {
	m := s.c.m
	if len(x) != len(m.vars) {
		return false
	}
	for i, v := range m.vars {
		if x[i] < v.lo-1e-6 || x[i] > v.hi+1e-6 {
			return false
		}
		if v.typ == Binary && math.Abs(x[i]-math.Round(x[i])) > s.intTol {
			return false
		}
	}
	for _, r := range m.rows {
		var lhs float64
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		tol := 1e-6 * (1 + math.Abs(r.rhs))
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	// bestObj lives in the compiled LP's minimisation space so it compares
	// directly against node relaxation values.
	lpObj := s.c.lpSpace(s.c.modelObjective(x))
	if lpObj < s.bestObj-1e-12 {
		s.bestObj = lpObj
		cp := make([]float64, len(x))
		copy(cp, x)
		s.bestX = cp
		return true
	}
	return false
}

// run performs the depth-first branch and bound.
func (s *search) run() {
	s.rootBound = math.Inf(-1)
	stack := []*node{{est: math.Inf(-1)}}
	first := true
	for len(stack) > 0 {
		if s.ctx != nil && s.ctx.Err() != nil {
			s.cancelled = true
			s.nodesPruneIncomplete = true
			return
		}
		if s.nodes >= s.maxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			s.nodesPruneIncomplete = true
			return
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.est >= s.bestObj-s.pruneSlack() {
			continue // parent bound already dominated by incumbent
		}
		s.nodes++

		sol, xAct := s.solveNode(n.bounds)
		s.lpIters += sol.Iters
		if sol.Status == lp.Infeasible {
			if first {
				s.provedInfeasible = true
			}
			first = false
			continue
		}
		if sol.Status == lp.IterLimit && !sol.Feasible {
			// The LP budget ran out before feasibility: the node was not
			// resolved, so the search result is a truncation, not a proof.
			s.nodesPruneIncomplete = true
			first = false
			continue
		}
		if sol.Status == lp.Unbounded || !sol.Feasible {
			// Unbounded relaxations cannot be pruned; treat as failure to
			// bound and dive on heuristics only.
			first = false
			continue
		}
		relax := sol.Objective // compiled minimisation space
		if first {
			s.rootBound = relax
			first = false
			// Rounding dive: often yields an immediate incumbent.
			s.roundingDive(xAct, n)
			if s.gapReached() {
				return
			}
		}
		if relax >= s.bestObj-s.pruneSlack() {
			continue
		}
		// Find most fractional binary.
		frac, fracVar := -1.0, -1
		for k, mi := range s.c.active {
			if s.c.m.vars[mi].typ != Binary {
				continue
			}
			v := xAct[k]
			f := math.Abs(v - math.Round(v))
			if f > s.intTol && f > frac {
				frac = f
				fracVar = k
			}
		}
		if fracVar < 0 {
			// Integral: candidate incumbent.
			full := s.c.toModelX(xAct)
			s.acceptModelPoint(roundBinaries(s.c, full, s.intTol))
			if s.gapReached() {
				return
			}
			continue
		}
		// Branch: explore the rounded side first (push second so it pops
		// first from the stack).
		v := xAct[fracVar]
		up := &node{bounds: appendBound(n.bounds, boundFix{fracVar, true}), depth: n.depth + 1, est: relax}
		down := &node{bounds: appendBound(n.bounds, boundFix{fracVar, false}), depth: n.depth + 1, est: relax}
		if v >= 0.5 {
			stack = append(stack, down, up)
		} else {
			stack = append(stack, up, down)
		}
	}
	if !s.nodesPruneIncomplete {
		s.provedOptimal = s.bestX != nil
		if s.bestX == nil {
			s.provedInfeasible = true
		}
	}
}

func (s *search) pruneSlack() float64 {
	return s.absGap + 1e-9*(1+math.Abs(s.bestObj))
}

func (s *search) gapReached() bool {
	if s.bestX == nil || math.IsInf(s.rootBound, 0) {
		return false
	}
	gap := math.Abs(s.bestObj - s.rootBound)
	if s.gapTol > 0 && gap <= s.gapTol*(1+math.Abs(s.bestObj)) {
		return true
	}
	return s.absGap > 0 && gap <= s.absGap
}

// roundingDive fixes every binary to its rounded LP value and re-solves the
// (dramatically smaller) residual LP for the continuous variables; a
// feasible result becomes an incumbent.
func (s *search) roundingDive(x []float64, n *node) {
	bounds := make([]boundFix, 0, len(s.c.active))
	bounds = append(bounds, n.bounds...)
	for k, mi := range s.c.active {
		if s.c.m.vars[mi].typ != Binary {
			continue
		}
		if x[k] >= 0.5 {
			bounds = append(bounds, boundFix{k, true})
		} else {
			bounds = append(bounds, boundFix{k, false})
		}
	}
	sol, xAct := s.solveNode(bounds)
	s.lpIters += sol.Iters
	if sol.Feasible {
		full := s.c.toModelX(xAct)
		s.acceptModelPoint(roundBinaries(s.c, full, s.intTol))
	}
}

// solveNode solves the node relaxation with every branching fix substituted
// out of the LP, which keeps node LPs small: branching only ever pins
// binaries to 0 or 1. Returns the LP solution (objective already lifted to
// compiled space, i.e. including fixed-variable contributions) and the
// point expanded back to compiled-active coordinates.
func (s *search) solveNode(bounds []boundFix) (lp.Solution, []float64) {
	nAct := len(s.c.active)
	fix := make(map[int]float64, len(bounds))
	for _, b := range bounds {
		if b.lo {
			fix[b.lpVar] = 1
		} else {
			fix[b.lpVar] = 0
		}
	}
	idx := make([]int, nAct)
	cnt := 0
	var objOff float64
	for k := 0; k < nAct; k++ {
		if v, ok := fix[k]; ok {
			idx[k] = -1
			objOff += s.c.base.Cost[k] * v
			continue
		}
		idx[k] = cnt
		cnt++
	}
	prob := lp.Problem{NumVars: cnt}
	prob.Cost = make([]float64, cnt)
	prob.Upper = make([]float64, cnt)
	for k := 0; k < nAct; k++ {
		if idx[k] >= 0 {
			prob.Cost[idx[k]] = s.c.base.Cost[k]
			prob.Upper[idx[k]] = s.c.base.Upper[k]
		}
	}
	for _, row := range s.c.base.Cons {
		rhs := row.RHS
		terms := make([]lp.Term, 0, len(row.Terms))
		for _, t := range row.Terms {
			if v, ok := fix[t.Var]; ok {
				rhs -= t.Coef * v
				continue
			}
			terms = append(terms, lp.Term{Var: idx[t.Var], Coef: t.Coef})
		}
		if len(terms) == 0 {
			ok := true
			switch row.Sense {
			case lp.LE:
				ok = 0 <= rhs+lp.FeasTol
			case lp.GE:
				ok = 0 >= rhs-lp.FeasTol
			case lp.EQ:
				ok = math.Abs(rhs) <= lp.FeasTol
			}
			if !ok {
				return lp.Solution{Status: lp.Infeasible}, nil
			}
			continue
		}
		prob.Cons = append(prob.Cons, lp.Constraint{Terms: terms, Sense: row.Sense, RHS: rhs})
	}
	sol := lp.Solve(&prob, lp.Options{Deadline: s.deadline, Ctx: s.ctx})
	if sol.X == nil {
		return sol, nil
	}
	xAct := make([]float64, nAct)
	for k := 0; k < nAct; k++ {
		if v, ok := fix[k]; ok {
			xAct[k] = v
		} else {
			xAct[k] = sol.X[idx[k]]
		}
	}
	sol.Objective += objOff
	return sol, xAct
}

// roundBinaries snaps near-integral binary values to exact integers so that
// incumbents are clean.
func roundBinaries(c *compiled, x []float64, tol float64) []float64 {
	for i, v := range c.m.vars {
		if v.typ == Binary {
			r := math.Round(x[i])
			if math.Abs(x[i]-r) <= 10*tol {
				x[i] = r
			}
		}
	}
	return x
}

func appendBound(base []boundFix, b boundFix) []boundFix {
	out := make([]boundFix, 0, len(base)+1)
	out = append(out, base...)
	out = append(out, b)
	return out
}

// SortTermsInPlace orders terms by variable index; useful for deterministic
// tests and debugging output.
func SortTermsInPlace(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
}
