package core

import (
	"context"
	"testing"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/workload"
)

// chainSystem builds base streams a,b,c,d and composites ab, abc (with the
// alternative producer a⋈bc missing — single join order) to test closures.
func chainSystem() (*dsps.System, dsps.StreamID, dsps.StreamID) {
	hosts := []dsps.Host{{ID: 0, CPU: 100, OutBW: 1000, InBW: 1000}}
	sys := dsps.NewSystem(hosts, 1000)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	sys.PlaceBase(0, c)
	ab := sys.AddOperator([]dsps.StreamID{a, b}, 2, 1, "ab")
	abc := sys.AddOperator([]dsps.StreamID{ab.Output, c}, 1, 1, "abc")
	sys.SetRequested(ab.Output, true)
	sys.SetRequested(abc.Output, true)
	return sys, ab.Output, abc.Output
}

func TestClosureContainsAllPlanStreams(t *testing.T) {
	sys, _, abc := chainSystem()
	cc := newClosureCache(sys)
	got := cc.streamsOf(abc)
	// abc's closure: {abc, ab, a, b, c} = 5 streams.
	if len(got) != 5 {
		t.Fatalf("closure size %d: %v", len(got), got)
	}
}

func TestClosureMemoised(t *testing.T) {
	sys, ab, _ := chainSystem()
	cc := newClosureCache(sys)
	first := cc.streamsOf(ab)
	second := cc.streamsOf(ab)
	if &first[0] != &second[0] {
		t.Fatal("closure not memoised (different slices)")
	}
}

func TestClosureWithAlternativeProducers(t *testing.T) {
	// All join orders of a 3-way query appear in the closure.
	sys := workload.BuildSystem(workload.SystemConfig{NumHosts: 2, CPUPerHost: 10, OutBW: 100, InBW: 100, LinkCap: 50})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = 3
	cfg.NumQueries = 1
	cfg.Arities = []int{3}
	w := workload.Generate(sys, cfg)
	cc := newClosureCache(sys)
	got := cc.streamsOf(w.Queries[0])
	// 3 bases + 3 pair composites + the result = 7 streams.
	if len(got) != 7 {
		t.Fatalf("closure size %d: %v", len(got), got)
	}
}

func TestFreeSetMergesSharingQueries(t *testing.T) {
	sys, ab, abc := chainSystem()
	cfg := DefaultConfig()
	cfg.SolveTimeout = time.Second
	p := NewPlanner(sys, cfg)
	if _, err := p.Submit(context.Background(), ab); err != nil {
		t.Fatal(err)
	}
	// Planning abc must pull the admitted sharing query ab into the free
	// set (they share streams a, b and ab).
	free := p.freeSet([]dsps.StreamID{abc})
	if !free[ab] {
		t.Fatal("sharing query ab not merged into the free set")
	}
}

func TestFreeSetRespectsCap(t *testing.T) {
	sys, ab, abc := chainSystem()
	cfg := DefaultConfig()
	cfg.SolveTimeout = time.Second
	cfg.MaxFreeStreams = 5 // exactly the closure of abc; no room to merge
	p := NewPlanner(sys, cfg)
	if _, err := p.Submit(context.Background(), ab); err != nil {
		t.Fatal(err)
	}
	free := p.freeSet([]dsps.StreamID{abc})
	if len(free) > 5 {
		t.Fatalf("free set %d exceeds cap 5", len(free))
	}
}

func TestFreeSetDisableReplanSkipsSharing(t *testing.T) {
	sys, ab, abc := chainSystem()
	cfg := DefaultConfig()
	cfg.SolveTimeout = time.Second
	cfg.DisableReplan = true
	p := NewPlanner(sys, cfg)
	if _, err := p.Submit(context.Background(), ab); err != nil {
		t.Fatal(err)
	}
	free := p.freeSet([]dsps.StreamID{abc})
	// abc's own closure includes ab (it is an input stream), but the
	// merge of ab *as an admitted query* is skipped; since ab is inside
	// abc's closure anyway here, just verify the call works and the set
	// is exactly the closure.
	if len(free) != 5 {
		t.Fatalf("free set %d, want closure-only 5", len(free))
	}
}

func TestSortStreamsAndOps(t *testing.T) {
	s := []dsps.StreamID{3, 1, 2}
	sortStreams(s)
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("sortStreams: %v", s)
	}
	o := []dsps.OperatorID{9, 4, 7}
	sortOps(o)
	if o[0] != 4 || o[1] != 7 || o[2] != 9 {
		t.Fatalf("sortOps: %v", o)
	}
}

func TestHostsTouched(t *testing.T) {
	sys, ab, _ := chainSystem()
	cfg := DefaultConfig()
	cfg.SolveTimeout = time.Second
	p := NewPlanner(sys, cfg)
	if _, err := p.Submit(context.Background(), ab); err != nil {
		t.Fatal(err)
	}
	free := map[dsps.StreamID]bool{ab: true}
	if got := p.hostsTouched(free, nil); got < 1 {
		t.Fatalf("hostsTouched %d, want >=1 after placement", got)
	}
	if got := p.hostsTouched(map[dsps.StreamID]bool{}, nil); got != 0 {
		t.Fatalf("hostsTouched %d for empty set", got)
	}
}
