package core

import (
	"sqpr/internal/dsps"
)

// closureCache memoises S(q), the set of all streams that can appear in
// query plans for q (§IV-A). The closure follows every alternative producer
// of every composite stream recursively down to base streams.
type closureCache struct {
	sys   *dsps.System
	memo  map[dsps.StreamID][]dsps.StreamID
	stamp int
}

func newClosureCache(sys *dsps.System) *closureCache {
	return &closureCache{sys: sys, memo: make(map[dsps.StreamID][]dsps.StreamID)}
}

// streamsOf returns S(q) as a sorted slice (deterministic iteration).
func (c *closureCache) streamsOf(q dsps.StreamID) []dsps.StreamID {
	if s, ok := c.memo[q]; ok {
		return s
	}
	seen := make(map[dsps.StreamID]bool)
	var stack []dsps.StreamID
	stack = append(stack, q)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, op := range c.sys.ProducersOf(s) {
			for _, in := range c.sys.Operators[op].Inputs {
				if !seen[in] {
					stack = append(stack, in)
				}
			}
		}
	}
	out := make([]dsps.StreamID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortStreams(out)
	c.memo[q] = out
	return out
}

func sortStreams(s []dsps.StreamID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// freeSet computes the set of free streams for planning the given new
// queries: the closures of the new queries, expanded transitively with the
// closures of every admitted query that shares a stream with the set
// (SQPR "only reconsiders the allocation of those operators that share
// base or composite streams with the new query").
func (p *Planner) freeSet(newQueries []dsps.StreamID) map[dsps.StreamID]bool {
	free := make(map[dsps.StreamID]bool)
	for _, q := range newQueries {
		for _, s := range p.closures.streamsOf(q) {
			free[s] = true
		}
	}
	if p.cfg.DisableReduction {
		for s := range p.sys.Streams {
			free[dsps.StreamID(s)] = true
		}
		return free
	}
	if p.cfg.DisableReplan {
		// Ablation: do not pull in sharing queries; their variables stay
		// fixed and only availability-preservation constraints are added.
		return free
	}
	// Merge the closures of sharing queries in deterministic order until
	// the free-set budget is exhausted; remaining sharers stay fixed and
	// are protected by availability-preservation rows.
	admitted := make([]dsps.StreamID, 0, len(p.admitted))
	for q := range p.admitted {
		admitted = append(admitted, q)
	}
	sortStreams(admitted)
	for changed := true; changed && len(free) < p.cfg.MaxFreeStreams; {
		changed = false
		for _, q := range admitted {
			if free[q] {
				continue // whole closure already merged
			}
			cl := p.closures.streamsOf(q)
			shares := false
			for _, s := range cl {
				if free[s] {
					shares = true
					break
				}
			}
			if shares && len(free)+len(cl) <= p.cfg.MaxFreeStreams &&
				p.hostsTouched(free, cl) <= p.cfg.MaxCandidateHosts {
				for _, s := range cl {
					free[s] = true
				}
				free[q] = true
				changed = true
			}
			if len(free) >= p.cfg.MaxFreeStreams {
				break
			}
		}
	}
	return free
}

// hostsTouched estimates how many hosts the current allocation of the
// candidate free set (free ∪ extra) involves; merging a sharing query is
// declined when it would inflate the candidate host set beyond the cap,
// keeping the reduced model tractable.
func (p *Planner) hostsTouched(free map[dsps.StreamID]bool, extra []dsps.StreamID) int {
	in := func(s dsps.StreamID) bool {
		if free[s] {
			return true
		}
		for _, e := range extra {
			if e == s {
				return true
			}
		}
		return false
	}
	hosts := make(map[dsps.HostID]bool)
	for f, on := range p.state.Flows {
		if on && in(f.Stream) {
			hosts[f.From] = true
			hosts[f.To] = true
		}
	}
	for pl, on := range p.state.Ops {
		if on && in(p.sys.Operators[pl.Op].Output) {
			hosts[pl.Host] = true
		}
	}
	return len(hosts)
}

// freeOperators returns every operator whose output stream is free; by
// construction of the closure their inputs are free too.
func (p *Planner) freeOperators(free map[dsps.StreamID]bool) []dsps.OperatorID {
	var ops []dsps.OperatorID
	for s := range free {
		for _, op := range p.sys.ProducersOf(s) {
			ops = append(ops, op)
		}
	}
	sortOps(ops)
	return ops
}

func sortOps(s []dsps.OperatorID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
