package core

import (
	"context"
	"fmt"

	"sqpr/internal/dsps"
)

// ReplanError reports a Replan interrupted by a mid-loop Submit failure.
// Every query that had been removed but not yet successfully re-planned is
// restored with a best-effort fresh submission; the ones that could not be
// restored are listed in Unrestored, so callers always learn the true
// admission state instead of silently losing queries.
type ReplanError struct {
	// Cause is the Submit error that interrupted the replan loop.
	Cause error
	// Unrestored lists the previously admitted queries that are no longer
	// admitted after the restoration attempt.
	Unrestored []dsps.StreamID
}

// Error implements error.
func (e *ReplanError) Error() string {
	if len(e.Unrestored) == 0 {
		return fmt.Sprintf("core: replan interrupted (all removed queries restored): %v", e.Cause)
	}
	return fmt.Sprintf("core: replan interrupted, %d queries unrestored %v: %v", len(e.Unrestored), e.Unrestored, e.Cause)
}

// Unwrap exposes the interrupting Submit error to errors.Is/As.
func (e *ReplanError) Unwrap() error { return e.Cause }

// Replan removes the given admitted queries and re-submits them one by one
// (§IV-B): queries whose observed resource consumption drifted from the
// planning estimates, or that suffer from a host resource shortage, get
// fresh placements. Returns the per-query results in order.
//
// If a Submit fails mid-loop, the queries that were removed but not yet
// re-planned are not stranded: each is restored with a fresh submission
// (under a background context, since the original ctx may be the reason for
// the failure), and the call returns a *ReplanError listing any query that
// could not be restored alongside the partial results.
func (p *Planner) Replan(ctx context.Context, queries []dsps.StreamID) ([]Result, error) {
	removed := make([]dsps.StreamID, 0, len(queries))
	pending := make(map[dsps.StreamID]bool, len(queries))
	for _, q := range queries {
		if p.admitted[q] {
			if err := p.Remove(q); err != nil {
				return nil, err
			}
			removed = append(removed, q)
			pending[q] = true
		}
	}
	results := make([]Result, 0, len(queries))
	for _, q := range queries {
		r, err := p.Submit(ctx, q)
		if err != nil {
			re := &ReplanError{Cause: err}
			for _, rq := range removed {
				if !pending[rq] || p.admitted[rq] {
					continue
				}
				//sqpr:ctxroot restoration must outlive the caller's ctx, which may be the cancellation that caused the failure
				if res, rerr := p.Submit(context.Background(), rq); rerr != nil || !res.Admitted {
					re.Unrestored = append(re.Unrestored, rq)
				}
			}
			return results, re
		}
		// A completed (even if rejecting) submission is this query's fair
		// re-planning shot; it no longer counts as stranded.
		delete(pending, q)
		results = append(results, r)
	}
	return results, nil
}

// driftEps is the absolute observation floor below which a measurement on a
// zero-cost operator is treated as monitoring noise, not drift.
const driftEps = 1e-9

// DriftedQueries compares observed operator costs with the cost model and
// returns the admitted queries whose supporting operators drifted by more
// than threshold (relative). observed maps operator to measured cost.
// Observations for operators outside the system's operator table are
// ignored, and a zero-cost operator observed at (effectively) zero cost is
// not drift.
func (p *Planner) DriftedQueries(observed map[dsps.OperatorID]float64, threshold float64) []dsps.StreamID {
	drifted := make(map[dsps.OperatorID]bool)
	for op, got := range observed {
		if int(op) < 0 || int(op) >= len(p.sys.Operators) {
			continue
		}
		want := p.sys.Operators[op].Cost
		if want == 0 {
			if got > driftEps {
				drifted[op] = true
			}
			continue
		}
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		if rel > threshold {
			drifted[op] = true
		}
	}
	var out []dsps.StreamID
	for q := range p.admitted {
		if p.queryUsesDrifted(q, drifted) {
			out = append(out, q)
		}
	}
	sortStreams(out)
	return out
}

// queryUsesDrifted reports whether any operator currently supporting q has
// drifted.
func (p *Planner) queryUsesDrifted(q dsps.StreamID, drifted map[dsps.OperatorID]bool) bool {
	h, ok := p.state.Provides[q]
	if !ok {
		return false
	}
	type hs struct {
		h dsps.HostID
		s dsps.StreamID
	}
	seen := make(map[hs]bool)
	queue := []hs{{h, q}}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if p.sys.IsBaseAt(cur.h, cur.s) {
			continue
		}
		for _, op := range p.sys.ProducersOf(cur.s) {
			pl := dsps.Placement{Host: cur.h, Op: op}
			if p.state.Ops[pl] {
				if drifted[op] {
					return true
				}
				for _, in := range p.sys.Operators[op].Inputs {
					queue = append(queue, hs{cur.h, in})
				}
			}
		}
		for m := 0; m < p.sys.NumHosts(); m++ {
			f := dsps.Flow{From: dsps.HostID(m), To: cur.h, Stream: cur.s}
			if p.state.Flows[f] {
				queue = append(queue, hs{dsps.HostID(m), cur.s})
			}
		}
	}
	return false
}
