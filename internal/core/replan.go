package core

import (
	"context"

	"sqpr/internal/dsps"
)

// Replan removes the given admitted queries and re-submits them one by one
// (§IV-B): queries whose observed resource consumption drifted from the
// planning estimates, or that suffer from a host resource shortage, get
// fresh placements. Returns the per-query results in order.
func (p *Planner) Replan(ctx context.Context, queries []dsps.StreamID) ([]Result, error) {
	for _, q := range queries {
		if p.admitted[q] {
			if err := p.Remove(q); err != nil {
				return nil, err
			}
		}
	}
	results := make([]Result, 0, len(queries))
	for _, q := range queries {
		r, err := p.Submit(ctx, q)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// DriftedQueries compares observed operator costs with the cost model and
// returns the admitted queries whose supporting operators drifted by more
// than threshold (relative). observed maps operator to measured cost.
func (p *Planner) DriftedQueries(observed map[dsps.OperatorID]float64, threshold float64) []dsps.StreamID {
	drifted := make(map[dsps.OperatorID]bool)
	for op, got := range observed {
		want := p.sys.Operators[op].Cost
		if want == 0 {
			if got > 0 {
				drifted[op] = true
			}
			continue
		}
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		if rel > threshold {
			drifted[op] = true
		}
	}
	var out []dsps.StreamID
	for q := range p.admitted {
		if p.queryUsesDrifted(q, drifted) {
			out = append(out, q)
		}
	}
	sortStreams(out)
	return out
}

// queryUsesDrifted reports whether any operator currently supporting q has
// drifted.
func (p *Planner) queryUsesDrifted(q dsps.StreamID, drifted map[dsps.OperatorID]bool) bool {
	h, ok := p.state.Provides[q]
	if !ok {
		return false
	}
	type hs struct {
		h dsps.HostID
		s dsps.StreamID
	}
	seen := make(map[hs]bool)
	queue := []hs{{h, q}}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if p.sys.IsBaseAt(cur.h, cur.s) {
			continue
		}
		for _, op := range p.sys.ProducersOf(cur.s) {
			pl := dsps.Placement{Host: cur.h, Op: op}
			if p.state.Ops[pl] {
				if drifted[op] {
					return true
				}
				for _, in := range p.sys.Operators[op].Inputs {
					queue = append(queue, hs{cur.h, in})
				}
			}
		}
		for m := 0; m < p.sys.NumHosts(); m++ {
			f := dsps.Flow{From: dsps.HostID(m), To: cur.h, Stream: cur.s}
			if p.state.Flows[f] {
				queue = append(queue, hs{dsps.HostID(m), cur.s})
			}
		}
	}
	return false
}
