package core

import (
	"fmt"

	"sqpr/internal/dsps"
)

// RemoveQuery withdraws an admitted query and garbage-collects every
// operator and flow that no remaining query depends on. It is the first
// half of the paper's adaptive replanning (§IV-B): "conceptually removing
// and re-adding queries".
func (p *Planner) RemoveQuery(q dsps.StreamID) error {
	if !p.admitted[q] {
		return fmt.Errorf("core: query %d is not admitted", q)
	}
	delete(p.admitted, q)
	delete(p.state.Provides, q)
	p.garbageCollect()
	return nil
}

// garbageCollect deletes operators and flows not backward-reachable from
// any provided stream. All alternative supports of a needed availability
// are kept (conservative), so the state stays feasible.
func (p *Planner) garbageCollect() {
	type hs struct {
		h dsps.HostID
		s dsps.StreamID
	}
	neededOps := make(map[dsps.Placement]bool)
	neededFlows := make(map[dsps.Flow]bool)
	seen := make(map[hs]bool)
	var queue []hs
	for s, h := range p.state.Provides {
		queue = append(queue, hs{h, s})
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if p.sys.IsBaseAt(cur.h, cur.s) {
			continue
		}
		for _, op := range p.sys.ProducersOf(cur.s) {
			pl := dsps.Placement{Host: cur.h, Op: op}
			if p.state.Ops[pl] {
				neededOps[pl] = true
				for _, in := range p.sys.Operators[op].Inputs {
					queue = append(queue, hs{cur.h, in})
				}
			}
		}
		for m := 0; m < p.sys.NumHosts(); m++ {
			f := dsps.Flow{From: dsps.HostID(m), To: cur.h, Stream: cur.s}
			if p.state.Flows[f] {
				neededFlows[f] = true
				queue = append(queue, hs{dsps.HostID(m), cur.s})
			}
		}
	}
	for pl := range p.state.Ops {
		if !neededOps[pl] {
			delete(p.state.Ops, pl)
		}
	}
	for f := range p.state.Flows {
		if !neededFlows[f] {
			delete(p.state.Flows, f)
		}
	}
}

// Replan removes the given admitted queries and re-submits them one by one
// (§IV-B): queries whose observed resource consumption drifted from the
// planning estimates, or that suffer from a host resource shortage, get
// fresh placements. Returns the per-query results in order.
func (p *Planner) Replan(queries []dsps.StreamID) ([]Result, error) {
	for _, q := range queries {
		if p.admitted[q] {
			if err := p.RemoveQuery(q); err != nil {
				return nil, err
			}
		}
	}
	results := make([]Result, 0, len(queries))
	for _, q := range queries {
		r, err := p.Submit(q)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// DriftedQueries compares observed operator costs with the cost model and
// returns the admitted queries whose supporting operators drifted by more
// than threshold (relative). observed maps operator to measured cost.
func (p *Planner) DriftedQueries(observed map[dsps.OperatorID]float64, threshold float64) []dsps.StreamID {
	drifted := make(map[dsps.OperatorID]bool)
	for op, got := range observed {
		want := p.sys.Operators[op].Cost
		if want == 0 {
			if got > 0 {
				drifted[op] = true
			}
			continue
		}
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		if rel > threshold {
			drifted[op] = true
		}
	}
	var out []dsps.StreamID
	for q := range p.admitted {
		if p.queryUsesDrifted(q, drifted) {
			out = append(out, q)
		}
	}
	sortStreams(out)
	return out
}

// queryUsesDrifted reports whether any operator currently supporting q has
// drifted.
func (p *Planner) queryUsesDrifted(q dsps.StreamID, drifted map[dsps.OperatorID]bool) bool {
	h, ok := p.state.Provides[q]
	if !ok {
		return false
	}
	type hs struct {
		h dsps.HostID
		s dsps.StreamID
	}
	seen := make(map[hs]bool)
	queue := []hs{{h, q}}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if p.sys.IsBaseAt(cur.h, cur.s) {
			continue
		}
		for _, op := range p.sys.ProducersOf(cur.s) {
			pl := dsps.Placement{Host: cur.h, Op: op}
			if p.state.Ops[pl] {
				if drifted[op] {
					return true
				}
				for _, in := range p.sys.Operators[op].Inputs {
					queue = append(queue, hs{cur.h, in})
				}
			}
		}
		for m := 0; m < p.sys.NumHosts(); m++ {
			f := dsps.Flow{From: dsps.HostID(m), To: cur.h, Stream: cur.s}
			if p.state.Flows[f] {
				queue = append(queue, hs{dsps.HostID(m), cur.s})
			}
		}
	}
	return false
}
