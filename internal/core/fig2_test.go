package core

import (
	"context"
	"testing"
	"time"

	"sqpr/internal/dsps"
)

// fig2System reproduces the worked example of Fig. 2: two hosts, two
// queries sharing the sub-query chain o1, o2, o3 that produces stream s3.
// Query 1 requests s4 = o4(s3, extra1); query 2 requests s5 = o5(s3,
// extra2). Each host supports at most three "large" operators and four
// large streams of network traffic.
func fig2System(t *testing.T) (sys *dsps.System, s3, q1, q2 dsps.StreamID) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 3, OutBW: 40, InBW: 40}, // h1: 3 ops, 4 streams of rate 10
		{ID: 1, CPU: 3, OutBW: 40, InBW: 40}, // h2
	}
	sys = dsps.NewSystem(hosts, 40)
	s1 := sys.AddStream(10, dsps.NoOperator, "s1")
	s2 := sys.AddStream(10, dsps.NoOperator, "s2")
	sys.PlaceBase(0, s1)
	sys.PlaceBase(0, s2)
	// The shared chain: o1 and o2 feed o3 which outputs s3. We model the
	// chain as a single shared operator o3 with cost 1 consuming s1, s2
	// plus two cheap upstream operators (costs chosen so the chain uses
	// all three operator slots of one host, as in the figure).
	o1 := sys.AddOperator([]dsps.StreamID{s1}, 10, 1, "o1")
	o2 := sys.AddOperator([]dsps.StreamID{s2}, 10, 1, "o2")
	o3 := sys.AddOperator([]dsps.StreamID{o1.Output, o2.Output}, 10, 1, "o3")
	s3 = o3.Output

	// Low-rate extra inputs for the final per-query operators (the figure
	// says their streams "have low data rates and can be ignored").
	e1 := sys.AddStream(0.01, dsps.NoOperator, "e1")
	e2 := sys.AddStream(0.01, dsps.NoOperator, "e2")
	sys.PlaceBase(1, e1)
	sys.PlaceBase(1, e2)
	o4 := sys.AddOperator([]dsps.StreamID{s3, e1}, 10, 1, "o4")
	o5 := sys.AddOperator([]dsps.StreamID{s3, e2}, 10, 1, "o5")
	q1, q2 = o4.Output, o5.Output
	sys.SetRequested(q1, true)
	sys.SetRequested(q2, true)
	return sys, s3, q1, q2
}

// TestFig2BothQueriesAdmittedWithSharedChain verifies that SQPR admits both
// Fig. 2 queries while placing the shared chain exactly once, i.e. the
// reuse plan of Fig. 2(a)/(b) rather than duplicating o1–o3.
func TestFig2BothQueriesAdmittedWithSharedChain(t *testing.T) {
	sys, s3, q1, q2 := fig2System(t)
	cfg := DefaultConfig()
	cfg.SolveTimeout = 2 * time.Second
	p := NewPlanner(sys, cfg)

	r1, err := p.Submit(context.Background(), q1)
	if err != nil || !r1.Admitted {
		t.Fatalf("q1 not admitted: %+v err=%v", r1, err)
	}
	r2, err := p.Submit(context.Background(), q2)
	if err != nil || !r2.Admitted {
		t.Fatalf("q2 not admitted: %+v err=%v", r2, err)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("plan infeasible: %v", err)
	}
	// The producer of s3 (operator o3) runs exactly once system-wide.
	count := 0
	for pl, on := range p.Assignment().Ops {
		if on && sys.Operators[pl.Op].Output == s3 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared chain placed %d times, want 1 (reuse)", count)
	}
	// Total CPU: 5 operators (o1,o2,o3,o4,o5), never 7 (duplicated chain).
	u := p.Assignment().ComputeUsage(sys)
	if u.TotalCPU() > 5+1e-6 {
		t.Fatalf("total CPU %.2f implies chain duplication", u.TotalCPU())
	}
}

// TestFig2RelayRemovesBottleneck reproduces the §II-C observation: when the
// shared stream s3 lives on a network-saturated host, relaying it through
// the other host keeps the system feasible. We verify that with relaying
// enabled both queries are admitted even under a tight bandwidth budget
// that defeats the no-relay ablation.
func TestFig2RelayRemovesBottleneck(t *testing.T) {
	build := func() (*dsps.System, dsps.StreamID, dsps.StreamID) {
		hosts := []dsps.Host{
			{ID: 0, CPU: 10, OutBW: 25, InBW: 25},
			{ID: 1, CPU: 10, OutBW: 25, InBW: 25},
			{ID: 2, CPU: 10, OutBW: 25, InBW: 25},
		}
		sys := dsps.NewSystem(hosts, 25)
		a := sys.AddStream(10, dsps.NoOperator, "a")
		b := sys.AddStream(10, dsps.NoOperator, "b")
		sys.PlaceBase(0, a)
		sys.PlaceBase(1, b)
		// Query 1 = a⋈b (result rate 10), query 2 = (a⋈b)⋈c.
		c := sys.AddStream(10, dsps.NoOperator, "c")
		sys.PlaceBase(2, c)
		ab := sys.AddOperator([]dsps.StreamID{a, b}, 10, 1, "ab")
		abc := sys.AddOperator([]dsps.StreamID{ab.Output, c}, 1, 1, "abc")
		sys.SetRequested(ab.Output, true)
		sys.SetRequested(abc.Output, true)
		return sys, ab.Output, abc.Output
	}

	// With relaying (default): both queries admitted.
	sys, qa, qb := build()
	cfg := DefaultConfig()
	cfg.SolveTimeout = 2 * time.Second
	p := NewPlanner(sys, cfg)
	ra, err := p.Submit(context.Background(), qa)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.Submit(context.Background(), qb)
	if err != nil {
		t.Fatal(err)
	}
	admittedWithRelay := 0
	if ra.Admitted {
		admittedWithRelay++
	}
	if rb.Admitted {
		admittedWithRelay++
	}
	if admittedWithRelay < 2 {
		t.Fatalf("with relaying only %d/2 admitted", admittedWithRelay)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatal(err)
	}
}
