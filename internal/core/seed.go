package core

import (
	"math"
	"sort"

	"sqpr/internal/dsps"
)

// incumbent produces a warm-start vector for the MILP: the current
// allocation (always feasible for the new model thanks to (IV.9)) extended,
// when possible, with a greedy plan that admits the new queries. The greedy
// plan mirrors what a simple planner would do — assemble each query on a
// single host, reusing streams that already exist — and gives the branch
// and bound an admission-positive incumbent to improve on.
func (b *builder) incumbent() []float64 {
	cand := b.p.state.Clone()
	for _, q := range b.queries {
		if _, ok := cand.Provides[q]; ok {
			continue
		}
		b.greedyAdmit(cand, q)
	}
	return b.vectorOf(cand)
}

// greedyAdmit tries to admit query q into cand on a single assembly host;
// it mutates cand only on success.
func (b *builder) greedyAdmit(cand *dsps.Assignment, q dsps.StreamID) bool {
	usage := cand.ComputeUsage(b.sys)
	order := make([]dsps.HostID, len(b.hosts))
	copy(order, b.hosts)
	sort.Slice(order, func(i, j int) bool {
		si := b.sys.Hosts[order[i]].CPU - usage.CPU[order[i]]
		sj := b.sys.Hosts[order[j]].CPU - usage.CPU[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	bestScore := math.Inf(-1)
	var best *dsps.Assignment
	for _, h := range order {
		trial := cand.Clone()
		if !b.planStreamAt(trial, q, h, make(map[planKey]bool)) {
			continue
		}
		// Deliver the result to the client from h.
		trial.Provides[q] = h
		u := trial.ComputeUsage(b.sys)
		if u.Out[h] > b.sys.Hosts[h].OutBW+1e-9 || trial.Validate(b.sys) != nil {
			continue
		}
		if score := b.scoreAssignment(trial); score > bestScore {
			bestScore = score
			best = trial
		}
	}
	if best == nil {
		return false
	}
	*cand = *best
	return true
}

// scoreAssignment evaluates the weighted objective (III.3) for seeding.
func (b *builder) scoreAssignment(a *dsps.Assignment) float64 {
	u := a.ComputeUsage(b.sys)
	w := b.p.cfg.Weights
	totalLink := b.sys.TotalLinkCap()
	if totalLink <= 0 {
		totalLink = 1
	}
	totalCPU := b.sys.TotalCPU()
	if totalCPU <= 0 {
		totalCPU = 1
	}
	maxCPU := 0.0
	for _, h := range b.sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	if maxCPU <= 0 {
		maxCPU = 1
	}
	return w.L1*float64(a.SatisfiedQueries()) -
		w.L2*u.Network/totalLink -
		w.L3*u.TotalCPU()/totalCPU -
		w.L4*u.MaxCPU()/maxCPU
}

type planKey struct {
	h dsps.HostID
	s dsps.StreamID
}

// planStreamAt makes stream s available at host h inside trial, adding
// flows and operator placements greedily. visiting guards against cycles.
func (b *builder) planStreamAt(trial *dsps.Assignment, s dsps.StreamID, h dsps.HostID, visiting map[planKey]bool) bool {
	if trial.Available(b.sys, h, s) {
		return true
	}
	k := planKey{h, s}
	if visiting[k] {
		return false
	}
	visiting[k] = true
	defer delete(visiting, k)

	rate := b.sys.Streams[s].Rate
	// Reuse: fetch from any candidate host that already has s.
	for _, m := range b.hosts {
		if m == h || !trial.Available(b.sys, m, s) {
			continue
		}
		if b.flowFits(trial, m, h, rate) {
			trial.Flows[dsps.Flow{From: m, To: h, Stream: s}] = true
			return true
		}
	}
	// Base stream: route from a base location if it is a candidate host.
	if b.sys.Streams[s].IsBase() {
		for _, m := range b.sys.BaseHosts(s) {
			if m == h {
				return true // available locally; Available would have caught it
			}
			if _, ok := b.hostIdx[m]; !ok {
				continue
			}
			if b.flowFits(trial, m, h, rate) {
				trial.Flows[dsps.Flow{From: m, To: h, Stream: s}] = true
				return true
			}
		}
		return false
	}
	// Composite: place one producer at a candidate host — preferring h
	// itself — and, if produced remotely, flow the output over.
	hostsTry := make([]dsps.HostID, 0, len(b.hosts))
	hostsTry = append(hostsTry, h)
	u := trial.ComputeUsage(b.sys)
	others := make([]dsps.HostID, 0, len(b.hosts))
	for _, m := range b.hosts {
		if m != h {
			others = append(others, m)
		}
	}
	sort.Slice(others, func(i, j int) bool {
		si := b.sys.Hosts[others[i]].CPU - u.CPU[others[i]]
		sj := b.sys.Hosts[others[j]].CPU - u.CPU[others[j]]
		if si != sj {
			return si > sj
		}
		return others[i] < others[j]
	})
	const maxRemoteHosts = 3
	if len(others) > maxRemoteHosts {
		others = others[:maxRemoteHosts]
	}
	hostsTry = append(hostsTry, others...)

	for _, op := range b.sys.ProducersOf(s) {
		if !b.freeOpSet[op] {
			continue
		}
		o := &b.sys.Operators[op]
		for _, m := range hostsTry {
			um := trial.ComputeUsage(b.sys)
			if um.CPU[m]+o.Cost > b.sys.Hosts[m].CPU+1e-9 {
				continue
			}
			if lim := b.sys.Hosts[m].Mem; lim > 0 && um.Mem[m]+o.Mem > lim+1e-9 {
				continue
			}
			snapshot := trial.Clone()
			ok := true
			for _, in := range o.Inputs {
				if !b.planStreamAt(trial, in, m, visiting) {
					ok = false
					break
				}
			}
			if ok && m != h {
				if b.flowFits(trial, m, h, rate) {
					trial.Ops[dsps.Placement{Host: m, Op: op}] = true
					trial.Flows[dsps.Flow{From: m, To: h, Stream: s}] = true
					return true
				}
				ok = false
			} else if ok {
				trial.Ops[dsps.Placement{Host: m, Op: op}] = true
				return true
			}
			*trial = *snapshot
		}
	}
	return false
}

// flowFits checks link and host bandwidth headroom for one extra flow.
func (b *builder) flowFits(trial *dsps.Assignment, from, to dsps.HostID, rate float64) bool {
	u := trial.ComputeUsage(b.sys)
	if u.Link[from][to]+rate > b.sys.LinkCap[from][to]+1e-9 {
		return false
	}
	if u.Out[from]+rate > b.sys.Hosts[from].OutBW+1e-9 {
		return false
	}
	if u.In[to]+rate > b.sys.Hosts[to].InBW+1e-9 {
		return false
	}
	return true
}

// vectorOf encodes an assignment as a point in the model's variable space.
func (b *builder) vectorOf(a *dsps.Assignment) []float64 {
	vec := make([]float64, b.model.NumVars())
	for hk, dv := range b.dVar {
		if h, ok := a.Provides[hk.s]; ok && h == hk.h {
			vec[dv] = 1
		}
	}
	for fk, xv := range b.xVar {
		if a.Flows[dsps.Flow{From: fk.from, To: fk.to, Stream: fk.s}] {
			vec[xv] = 1
		}
	}
	for zk, zv := range b.zVar {
		if a.Ops[dsps.Placement{Host: zk.h, Op: zk.o}] {
			vec[zv] = 1
		}
	}
	for hk, yv := range b.yVar {
		if a.Available(b.sys, hk.h, hk.s) {
			vec[yv] = 1
		}
	}
	b.fillPotentials(a, vec)
	// L: maximum CPU load over candidate hosts (fixed + free parts).
	u := a.ComputeUsage(b.sys)
	var maxLoad float64
	for _, h := range b.hosts {
		if u.CPU[h] > maxLoad {
			maxLoad = u.CPU[h]
		}
	}
	vec[b.lVar] = maxLoad
	return vec
}

// fillPotentials assigns stream potentials consistent with the acyclicity
// rows: senders sit strictly above receivers along every active flow.
// Active flows are acyclic (the assignment is validated), so |C| rounds of
// Bellman-Ford relaxation converge.
func (b *builder) fillPotentials(a *dsps.Assignment, vec []float64) {
	for _, s := range b.freeStreams {
		var flows []dsps.Flow
		for _, h := range b.hosts {
			for _, m := range b.hosts {
				if h == m {
					continue
				}
				f := dsps.Flow{From: h, To: m, Stream: s}
				if a.Flows[f] {
					flows = append(flows, f)
				}
			}
		}
		if len(flows) == 0 {
			continue
		}
		pot := make(map[dsps.HostID]float64)
		for range b.hosts {
			for _, f := range flows {
				if need := pot[f.To] + 1; pot[f.From] < need {
					pot[f.From] = need
				}
			}
		}
		for h, v := range pot {
			if pv, ok := b.pVar[hsKey{h, s}]; ok {
				if v > b.bigM {
					v = b.bigM
				}
				vec[pv] = v
			}
		}
	}
}
