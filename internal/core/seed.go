package core

import (
	"time"

	"sqpr/internal/dsps"
)

// incumbent produces a warm-start vector for the MILP: the current
// allocation (always feasible for the new model thanks to (IV.9)) extended,
// when possible, with a greedy plan that admits the new queries. The greedy
// plan mirrors what a simple planner would do — assemble each query on a
// single host, reusing streams that already exist — and gives the branch
// and bound an admission-positive incumbent to improve on.
//
// The greedy probes many partial plans per query; it tracks resource usage
// incrementally and rolls trial placements back through an undo journal, so
// probing never clones the assignment or recomputes usage from scratch
// (both used to dominate the planning call on contended instances).
//
// planStreamAt is an exponential backtracking search (producers × hosts,
// recursing through operator inputs), so the greedy runs under two brakes,
// armed by seedArm: a probe budget shared across the call, and the solve
// deadline, polled inside the recursion every 256 probes. On contended
// joint (batch) models the unbraked search could take minutes — longer
// than the whole solve budget — before the MILP even compiled. A truncated
// greedy is harmless: the incumbent is simply the current allocation
// extended with however many queries were admitted before the brake, still
// a feasible warm start for the solver to improve on.
func (b *builder) incumbent(deadline time.Time) []float64 {
	cand := b.p.state.Clone()
	b.track.reset(b.sys, cand)
	b.seedArm(deadline)
	for _, q := range b.queries {
		if _, ok := cand.Provides[q]; ok {
			continue
		}
		if b.seedProbes <= 0 {
			break
		}
		b.greedyAdmit(cand, q)
	}
	return b.vectorOf(cand)
}

// seedProbeBudget caps planStreamAt invocations per armed greedy run — a
// safety net for deadline-free calls. A probe costs tens of nanoseconds
// (most short-circuit on Available), so the cap bounds the greedy at a few
// tens of milliseconds; ordinary Submit calls use orders of magnitude fewer
// probes, and the repair greedy's heavier preferHost rebuilds stay well
// inside it too. The pathological joint-batch cases this exists for burned
// billions of probes. The solve deadline is the primary brake: planStreamAt
// polls it every 256 probes, so an expired call stops within microseconds.
const seedProbeBudget = 1 << 20

// seedArm resets the greedy brakes for one run. Every greedy entry point
// must arm explicitly: the builder is pooled across calls, and a stale
// deadline from a previous call would otherwise truncate the next greedy
// on sight (a repair fast path running after a submit, for example). The
// deadline is floored by a small grace so a greedy is never stillborn just
// because earlier work consumed the call budget — it is the cheap path
// (microseconds to low milliseconds normally), and killing it would drop
// admissions and repairs the solver then has no time to recover; the
// brakes exist for the pathological minutes-long searches, which the
// grace still bounds.
func (b *builder) seedArm(deadline time.Time) {
	if !deadline.IsZero() {
		if min := time.Now().Add(groupGraceBudget); deadline.Before(min) {
			deadline = min
		}
	}
	b.seedDeadline = deadline
	b.seedProbes = seedProbeBudget
}

// seedExpired reports whether the greedy's wall-clock deadline has lapsed.
//
//sqpr:hotpath
func (b *builder) seedExpired() bool {
	return !b.seedDeadline.IsZero() && time.Now().After(b.seedDeadline)
}

// seedHostsAt returns the two pooled host-scratch buffers for one
// planStreamAt recursion depth: the assembly-order list and a second buffer
// used first for ranking remote hosts and then for the preferHost reorder.
// The stacks grow to the maximum recursion depth once and are reused by
// every later probe.
//
//sqpr:hotpath
func (b *builder) seedHostsAt(depth int) (try, aux *[]dsps.HostID) {
	for len(b.tryStack) <= depth {
		//sqpr:amortized the stacks grow to max recursion depth once
		b.tryStack = append(b.tryStack, nil)
		b.auxStack = append(b.auxStack, nil) //sqpr:amortized
	}
	return &b.tryStack[depth], &b.auxStack[depth]
}

// seedExit unwinds one planStreamAt recursion level.
//
//sqpr:hotpath
func (b *builder) seedExit() { b.seedDepth-- }

// headroom is the spare CPU of a candidate host under the tracker's trial
// usage — the greedy's ranking key.
//
//sqpr:hotpath
func (b *builder) headroom(h dsps.HostID) float64 {
	return b.sys.Hosts[h].CPU - b.track.cpu[h]
}

// sortHostsByHeadroom orders hosts by spare CPU descending, HostID
// ascending on ties — the same total order the greedy always used, as an
// allocation-free insertion sort (the lists are a handful of candidate
// hosts; sort.Slice's comparator closure was the only heap traffic).
//
//sqpr:hotpath
func (b *builder) sortHostsByHeadroom(s []dsps.HostID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			hj, hp := b.headroom(s[j]), b.headroom(s[j-1])
			if hj < hp || (hj == hp && s[j] >= s[j-1]) {
				break
			}
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sortScoredDesc orders candidate plans by score descending, HostID
// ascending on ties (insertion sort, see sortHostsByHeadroom).
//
//sqpr:hotpath
func sortScoredDesc(s []scored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			if s[j].score < s[j-1].score ||
				(s[j].score == s[j-1].score && s[j].h >= s[j-1].h) {
				break
			}
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// usageTracker maintains the resource picture of one assignment under
// incremental flow/op/provide mutations. Arrays are pooled on the builder.
type usageTracker struct {
	sys     *dsps.System
	cpu     []float64
	mem     []float64
	out     []float64
	in      []float64
	link    [][]float64
	network float64
	cpuSum  float64
}

func (u *usageTracker) reset(sys *dsps.System, a *dsps.Assignment) {
	n := sys.NumHosts()
	u.sys = sys
	u.cpu = resizeZero(u.cpu, n)
	u.mem = resizeZero(u.mem, n)
	u.out = resizeZero(u.out, n)
	u.in = resizeZero(u.in, n)
	if cap(u.link) < n {
		u.link = make([][]float64, n)
	}
	u.link = u.link[:n]
	for i := range u.link {
		u.link[i] = resizeZero(u.link[i], n)
	}
	u.network = 0
	u.cpuSum = 0
	for pl, on := range a.Ops {
		if on {
			u.addOp(pl)
		}
	}
	for f, on := range a.Flows {
		if on {
			u.addFlow(f)
		}
	}
	for s, h := range a.Provides {
		u.out[h] += sys.Streams[s].Rate
	}
}

func resizeZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

//sqpr:hotpath
func (u *usageTracker) addOp(pl dsps.Placement) {
	op := &u.sys.Operators[pl.Op]
	u.cpu[pl.Host] += op.Cost
	u.mem[pl.Host] += op.Mem
	u.cpuSum += op.Cost
}

//sqpr:hotpath
func (u *usageTracker) removeOp(pl dsps.Placement) {
	op := &u.sys.Operators[pl.Op]
	u.cpu[pl.Host] -= op.Cost
	u.mem[pl.Host] -= op.Mem
	u.cpuSum -= op.Cost
}

//sqpr:hotpath
func (u *usageTracker) addFlow(f dsps.Flow) {
	rate := u.sys.Streams[f.Stream].Rate
	u.link[f.From][f.To] += rate
	u.out[f.From] += rate
	u.in[f.To] += rate
	u.network += rate
}

//sqpr:hotpath
func (u *usageTracker) removeFlow(f dsps.Flow) {
	rate := u.sys.Streams[f.Stream].Rate
	u.link[f.From][f.To] -= rate
	u.out[f.From] -= rate
	u.in[f.To] -= rate
	u.network -= rate
}

//sqpr:hotpath
func (u *usageTracker) maxCPU() float64 {
	var m float64
	for _, c := range u.cpu {
		if c > m {
			m = c
		}
	}
	return m
}

// journal records trial mutations so a probe can be rolled back without
// cloning the assignment.
type journalEntry struct {
	isOp bool
	flow dsps.Flow
	op   dsps.Placement
}

// applyFlow adds a flow to the trial, tracker and journal.
//
//sqpr:hotpath
func (b *builder) applyFlow(trial *dsps.Assignment, f dsps.Flow) {
	trial.Flows[f] = true
	b.track.addFlow(f)
	b.journal = append(b.journal, journalEntry{flow: f}) //sqpr:amortized pooled
}

// applyOp adds an operator placement to the trial, tracker and journal.
//
//sqpr:hotpath
func (b *builder) applyOp(trial *dsps.Assignment, pl dsps.Placement) {
	trial.Ops[pl] = true
	b.track.addOp(pl)
	b.journal = append(b.journal, journalEntry{isOp: true, op: pl}) //sqpr:amortized pooled
}

// rollback undoes journal entries beyond mark, newest first.
//
//sqpr:hotpath
func (b *builder) rollback(trial *dsps.Assignment, mark int) {
	for i := len(b.journal) - 1; i >= mark; i-- {
		e := b.journal[i]
		if e.isOp {
			delete(trial.Ops, e.op)
			b.track.removeOp(e.op)
		} else {
			delete(trial.Flows, e.flow)
			b.track.removeFlow(e.flow)
		}
	}
	b.journal = b.journal[:mark]
}

// scored is one resource-feasible candidate plan of greedyAdmit.
type scored struct {
	h     dsps.HostID
	score float64
}

// greedyAdmit tries to admit query q into cand on a single assembly host;
// it mutates cand only on success. Hosts are probed on the shared trial
// through the journal; the best-scoring resource-feasible plan is kept.
//
//sqpr:hotpath
func (b *builder) greedyAdmit(cand *dsps.Assignment, q dsps.StreamID) bool {
	order := b.hostScratch[:0]
	order = append(order, b.hosts...) //sqpr:amortized pooled on the builder
	b.hostScratch = order
	b.sortHostsByHeadroom(order)

	results := b.scoredScratch[:0]
	rate := b.sys.Streams[q].Rate
	for _, h := range order {
		if b.seedProbes <= 0 {
			break
		}
		mark := len(b.journal)
		if !b.planStreamAt(cand, q, h, b.visiting) {
			b.rollback(cand, mark)
			continue
		}
		// Deliver the result to the client from h (out-bandwidth only; the
		// provide itself is added once the winner is chosen).
		if b.track.out[h]+rate > b.sys.Hosts[h].OutBW+1e-9 {
			b.rollback(cand, mark)
			continue
		}
		results = append(results, scored{h, b.scoreResources()}) //sqpr:amortized
		b.rollback(cand, mark)
	}
	b.scoredScratch = results
	if len(results) == 0 {
		return false
	}
	// All candidate plans admit q, so λ1 cancels out of the comparison and
	// the resource score alone ranks them.
	sortScoredDesc(results)
	for _, r := range results {
		mark := len(b.journal)
		if !b.planStreamAt(cand, q, r.h, b.visiting) {
			b.rollback(cand, mark)
			continue
		}
		cand.Provides[q] = r.h
		b.track.out[r.h] += rate
		if cand.Validate(b.sys) == nil {
			b.journal = b.journal[:0]
			return true
		}
		delete(cand.Provides, q)
		b.track.out[r.h] -= rate
		b.rollback(cand, mark)
	}
	return false
}

// scoreResources evaluates the resource part of the weighted objective
// (III.3) from the tracker: −λ2·O2/Σκ − λ3·O3/Σζ − λ4·O4/ζmax.
//
//sqpr:hotpath
func (b *builder) scoreResources() float64 {
	w := b.p.cfg.Weights
	totalLink := b.sys.TotalLinkCap()
	if totalLink <= 0 {
		totalLink = 1
	}
	totalCPU := b.sys.TotalCPU()
	if totalCPU <= 0 {
		totalCPU = 1
	}
	maxCPU := 0.0
	for _, h := range b.sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	if maxCPU <= 0 {
		maxCPU = 1
	}
	return -w.L2*b.track.network/totalLink -
		w.L3*b.track.cpuSum/totalCPU -
		w.L4*b.track.maxCPU()/maxCPU
}

type planKey struct {
	h dsps.HostID
	s dsps.StreamID
}

// planStreamAt makes stream s available at host h inside trial, adding
// flows and operator placements greedily (journaled, tracker-checked).
// visiting guards against cycles. On failure the caller rolls back to its
// own mark; partial work may remain in the journal.
//
//sqpr:hotpath
func (b *builder) planStreamAt(trial *dsps.Assignment, s dsps.StreamID, h dsps.HostID, visiting map[planKey]bool) bool {
	if b.seedProbes <= 0 {
		return false
	}
	b.seedProbes--
	if b.seedProbes&255 == 0 && b.seedExpired() {
		b.seedProbes = 0 // poison the rest of the run: deadline lapsed
		return false
	}
	depth := b.seedDepth
	b.seedDepth++
	defer b.seedExit()
	if trial.Available(b.sys, h, s) {
		return true
	}
	k := planKey{h, s}
	if visiting[k] {
		return false
	}
	visiting[k] = true
	defer delete(visiting, k)

	rate := b.sys.Streams[s].Rate
	// Reuse: fetch from any candidate host that already has s.
	for _, m := range b.hosts {
		if m == h || !trial.Available(b.sys, m, s) {
			continue
		}
		if b.flowFits(m, h, rate) {
			b.applyFlow(trial, dsps.Flow{From: m, To: h, Stream: s})
			return true
		}
	}
	// Base stream: route from a base location if it is a candidate host.
	if b.sys.Streams[s].IsBase() {
		for _, m := range b.sys.BaseHosts(s) {
			if m == h {
				return true // available locally; Available would have caught it
			}
			if _, ok := b.hostIdx[m]; !ok {
				continue
			}
			if b.flowFits(m, h, rate) {
				b.applyFlow(trial, dsps.Flow{From: m, To: h, Stream: s})
				return true
			}
		}
		return false
	}
	// Composite: place one producer at a candidate host — preferring h
	// itself — and, if produced remotely, flow the output over. The host
	// lists live in depth-indexed scratch stacks pooled on the builder:
	// planStreamAt recurses through operator inputs, so each level owns its
	// buffers. During repair, an operator's pre-event host (preferHost) is
	// tried before everything else, so the warm start rebuilds severed
	// queries with minimal migration.
	tryBuf, auxBuf := b.seedHostsAt(depth)
	others := (*auxBuf)[:0]
	for _, m := range b.hosts {
		if m != h {
			others = append(others, m) //sqpr:amortized pooled per depth
		}
	}
	*auxBuf = others
	b.sortHostsByHeadroom(others)
	const maxRemoteHosts = 3
	if len(others) > maxRemoteHosts {
		others = others[:maxRemoteHosts]
	}
	hostsTry := (*tryBuf)[:0]
	hostsTry = append(hostsTry, h)         //sqpr:amortized pooled per depth
	hostsTry = append(hostsTry, others...) //sqpr:amortized
	*tryBuf = hostsTry

	for _, op := range b.sys.ProducersOf(s) {
		if !b.freeOpSet[op] {
			continue
		}
		o := &b.sys.Operators[op]
		try := hostsTry
		if pref, ok := b.preferHost[op]; ok && pref != h {
			// The ranking buffer is dead once hostsTry is built; reuse it
			// for the preferHost reorder.
			withPref := (*auxBuf)[:0]
			withPref = append(withPref, pref) //sqpr:amortized pooled per depth
			for _, m := range hostsTry {
				if m != pref {
					withPref = append(withPref, m) //sqpr:amortized
				}
			}
			*auxBuf = withPref
			try = withPref
		}
		for _, m := range try {
			if b.track.cpu[m]+o.Cost > b.sys.Hosts[m].CPU+1e-9 {
				continue
			}
			if lim := b.sys.Hosts[m].Mem; lim > 0 && b.track.mem[m]+o.Mem > lim+1e-9 {
				continue
			}
			mark := len(b.journal)
			ok := true
			for _, in := range o.Inputs {
				if !b.planStreamAt(trial, in, m, visiting) {
					ok = false
					break
				}
			}
			if ok && m != h {
				if b.flowFits(m, h, rate) {
					b.applyOp(trial, dsps.Placement{Host: m, Op: op})
					b.applyFlow(trial, dsps.Flow{From: m, To: h, Stream: s})
					return true
				}
				ok = false
			} else if ok {
				b.applyOp(trial, dsps.Placement{Host: m, Op: op})
				return true
			}
			b.rollback(trial, mark)
		}
	}
	return false
}

// flowFits checks link and host bandwidth headroom for one extra flow.
//
//sqpr:hotpath
func (b *builder) flowFits(from, to dsps.HostID, rate float64) bool {
	if b.track.link[from][to]+rate > b.sys.LinkCap[from][to]+1e-9 {
		return false
	}
	if b.track.out[from]+rate > b.sys.Hosts[from].OutBW+1e-9 {
		return false
	}
	if b.track.in[to]+rate > b.sys.Hosts[to].InBW+1e-9 {
		return false
	}
	return true
}

// vectorOf encodes an assignment as a point in the model's variable space.
func (b *builder) vectorOf(a *dsps.Assignment) []float64 {
	vec := make([]float64, b.model.NumVars())
	for hk, dv := range b.dVar {
		if h, ok := a.Provides[hk.s]; ok && h == hk.h {
			vec[dv] = 1
		}
	}
	for fk, xv := range b.xVar {
		if a.Flows[dsps.Flow{From: fk.from, To: fk.to, Stream: fk.s}] {
			vec[xv] = 1
		}
	}
	for zk, zv := range b.zVar {
		if a.Ops[dsps.Placement{Host: zk.h, Op: zk.o}] {
			vec[zv] = 1
		}
	}
	for hk, yv := range b.yVar {
		if a.Available(b.sys, hk.h, hk.s) {
			vec[yv] = 1
		}
	}
	b.fillPotentials(a, vec)
	// L: maximum CPU load over candidate hosts (fixed + free parts).
	u := a.ComputeUsage(b.sys)
	var maxLoad float64
	for _, h := range b.hosts {
		if u.CPU[h] > maxLoad {
			maxLoad = u.CPU[h]
		}
	}
	vec[b.lVar] = maxLoad
	return vec
}

// fillPotentials assigns stream potentials consistent with the acyclicity
// rows: senders sit strictly above receivers along every active flow.
// Active flows are acyclic (the assignment is validated), so |C| rounds of
// Bellman-Ford relaxation converge.
func (b *builder) fillPotentials(a *dsps.Assignment, vec []float64) {
	for _, s := range b.freeStreams {
		var flows []dsps.Flow
		for _, h := range b.hosts {
			for _, m := range b.hosts {
				if h == m {
					continue
				}
				f := dsps.Flow{From: h, To: m, Stream: s}
				if a.Flows[f] {
					flows = append(flows, f)
				}
			}
		}
		if len(flows) == 0 {
			continue
		}
		pot := make(map[dsps.HostID]float64)
		for range b.hosts {
			for _, f := range flows {
				if need := pot[f.To] + 1; pot[f.From] < need {
					pot[f.From] = need
				}
			}
		}
		for h, v := range pot {
			if pv, ok := b.pVar[hsKey{h, s}]; ok {
				if v > b.bigM {
					v = b.bigM
				}
				vec[pv] = v
			}
		}
	}
}
