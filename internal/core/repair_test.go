package core

import (
	"context"
	"testing"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// churnSystem builds three hosts with base streams on host 0 and two
// requested joins, leaving room to re-place either query on any host.
func churnSystem(t *testing.T) (*dsps.System, []dsps.StreamID) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 200, InBW: 200},
		{ID: 1, CPU: 10, OutBW: 200, InBW: 200},
		{ID: 2, CPU: 10, OutBW: 200, InBW: 200},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	sys.PlaceBase(0, c)
	q1 := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "a⋈b").Output
	q2 := sys.AddOperator([]dsps.StreamID{b, c}, 1, 2, "b⋈c").Output
	sys.SetRequested(q1, true)
	sys.SetRequested(q2, true)
	if err := sys.Validate(); err != nil {
		t.Fatalf("system invalid: %v", err)
	}
	return sys, []dsps.StreamID{q1, q2}
}

func submitAll(t *testing.T, p *Planner, qs []dsps.StreamID) {
	t.Helper()
	for _, q := range qs {
		res, err := p.Submit(context.Background(), q)
		if err != nil {
			t.Fatalf("Submit(%d): %v", q, err)
		}
		if !res.Admitted {
			t.Fatalf("query %d not admitted: %+v", q, res)
		}
	}
}

// hostsUsed collects the hosts carrying any operator or provide.
func hostsUsed(a *dsps.Assignment) map[dsps.HostID]bool {
	used := map[dsps.HostID]bool{}
	for pl, on := range a.Ops {
		if on {
			used[pl.Host] = true
		}
	}
	for _, h := range a.Provides {
		used[h] = true
	}
	return used
}

func TestRepairSurvivesHostFailure(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	// Fail every host that carries anything; repair must re-place both
	// queries on the survivors.
	used := hostsUsed(p.Assignment())
	var events []plan.Event
	for h := range used {
		if h != 0 { // host 0 holds the base streams; keep it alive
			events = append(events, plan.FailHost(h))
		}
	}
	if len(events) == 0 {
		// Everything sits on host 0 already; fail a host anyway to check
		// the no-affected-queries path, then force a failure of host 0's
		// neighbours is moot — instead drain host 0 to force migration.
		events = append(events, plan.FailHost(1))
	}
	rr, err := p.Repair(context.Background(), events, plan.WithTimeout(testConfig().SolveTimeout))
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("post-repair plan infeasible: %v", err)
	}
	if p.AdmittedCount() != len(qs) {
		t.Fatalf("admitted %d after repair, want %d (result %+v)", p.AdmittedCount(), len(qs), rr)
	}
	for _, ev := range events {
		if hostsUsed(p.Assignment())[ev.Host] {
			t.Fatalf("repaired plan still uses failed host %d", ev.Host)
		}
	}
}

func TestRepairFailureDropsOnlyWhenInfeasible(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	// Fail everything except host 1: the base streams on host 0 are gone,
	// so no query can survive — repair must drop them all and leave a
	// clean, validating state.
	events := []plan.Event{plan.FailHost(0), plan.FailHost(2)}
	rr, err := p.Repair(context.Background(), events)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if p.AdmittedCount() != 0 {
		t.Fatalf("admitted %d after catastrophic failure, want 0", p.AdmittedCount())
	}
	if len(rr.Dropped) == 0 {
		t.Fatalf("no dropped queries reported: %+v", rr)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("post-repair state infeasible: %v", err)
	}
	if len(p.Assignment().Ops) != 0 || len(p.Assignment().Provides) != 0 {
		t.Fatalf("state not cleaned after dropping all queries: %+v", p.Assignment())
	}

	// Recovery brings the hosts back; the dropped queries resubmit fine.
	if _, err := p.Repair(context.Background(), []plan.Event{plan.RecoverHost(0), plan.RecoverHost(2)}); err != nil {
		t.Fatalf("recovery repair: %v", err)
	}
	submitAll(t, p, qs)
}

func TestRepairDrainEvacuatesBestEffort(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	used := hostsUsed(p.Assignment())
	var drained dsps.HostID = -1
	for h := range used {
		if h != 0 {
			drained = h
			break
		}
	}
	if drained < 0 {
		t.Skip("all allocations landed on the base host; nothing to drain")
	}
	rr, err := p.Repair(context.Background(), []plan.Event{plan.DrainHost(drained)})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	// Draining never drops admissions.
	if p.AdmittedCount() != len(qs) {
		t.Fatalf("admitted %d after drain, want %d (%+v)", p.AdmittedCount(), len(qs), rr)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("post-drain plan infeasible: %v", err)
	}
	// With identical spare hosts available, evacuation is feasible, so the
	// drained host must be empty afterwards.
	if hostsUsed(p.Assignment())[drained] {
		t.Fatalf("drained host %d still carries load: %+v", drained, p.Assignment())
	}
}

func TestRepairNoEventsNoAffected(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)
	beforeOps := len(p.Assignment().Ops)

	// Failing an unused host affects nothing and changes nothing.
	var unused dsps.HostID = -1
	used := hostsUsed(p.Assignment())
	for h := 0; h < sys.NumHosts(); h++ {
		if !used[dsps.HostID(h)] && !sys.IsBaseAt(dsps.HostID(h), 0) {
			unused = dsps.HostID(h)
			break
		}
	}
	if unused < 0 {
		t.Skip("no unused host in this layout")
	}
	rr, err := p.Repair(context.Background(), []plan.Event{plan.FailHost(unused)})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(rr.Affected) != 0 || rr.Migrated != 0 {
		t.Fatalf("unexpected repair work for unused host: %+v", rr)
	}
	if len(p.Assignment().Ops) != beforeOps {
		t.Fatalf("ops changed: %d -> %d", beforeOps, len(p.Assignment().Ops))
	}
	if p.AdmittedCount() != len(qs) {
		t.Fatalf("admitted count changed to %d", p.AdmittedCount())
	}
}

func TestRepairDriftReplans(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	// Inflate the cost model of qs[0]'s operator and repair the drift: the
	// query must stay admitted on a valid plan under the new costs.
	for i := range sys.Operators {
		if sys.Operators[i].Output == qs[0] {
			sys.Operators[i].Cost *= 3
		}
	}
	rr, err := p.Repair(context.Background(), []plan.Event{plan.DriftQuery(qs[0])})
	if err != nil {
		t.Fatalf("Repair(drift): %v", err)
	}
	if len(rr.Affected) == 0 {
		t.Fatalf("drift event affected nothing: %+v", rr)
	}
	if !p.Admitted(qs[0]) {
		t.Fatal("drifted query lost its admission despite fitting capacity")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("post-drift-repair state infeasible: %v", err)
	}

	// Drift events for unadmitted queries are ignored.
	if err := p.Remove(qs[1]); err != nil {
		t.Fatal(err)
	}
	rr, err = p.Repair(context.Background(), []plan.Event{plan.DriftQuery(qs[1])})
	if err != nil {
		t.Fatalf("Repair(drift unadmitted): %v", err)
	}
	if len(rr.Affected) != 0 {
		t.Fatalf("drift of unadmitted query affected %v", rr.Affected)
	}
}

func TestRepairRejectsBadEvent(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)
	if _, err := p.Repair(context.Background(), []plan.Event{plan.FailHost(99)}); err == nil {
		t.Fatal("Repair accepted an out-of-range host event")
	}
	if p.AdmittedCount() != len(qs) {
		t.Fatalf("bad event corrupted state: admitted %d", p.AdmittedCount())
	}
}
