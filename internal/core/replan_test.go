package core

import (
	"context"
	"errors"
	"testing"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

func TestReplanRestoresOnMidLoopError(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	// Splice an unknown stream between the two valid queries: its Submit
	// errors after qs[0] was re-planned but before qs[1] was, which used to
	// strand qs[1] removed and unadmitted.
	bogus := dsps.StreamID(len(sys.Streams) + 5)
	results, err := p.Replan(context.Background(), []dsps.StreamID{qs[0], bogus, qs[1]})
	if err == nil {
		t.Fatal("Replan with unknown stream returned no error")
	}
	var re *ReplanError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *ReplanError: %v", err, err)
	}
	if !errors.Is(err, plan.ErrUnknownStream) {
		t.Fatalf("ReplanError does not wrap the Submit cause: %v", err)
	}
	if len(re.Unrestored) != 0 {
		t.Fatalf("restorable queries reported unrestored: %v", re.Unrestored)
	}
	if len(results) != 1 {
		t.Fatalf("got %d partial results, want 1", len(results))
	}
	// Both original queries must still be admitted: qs[0] via its replan,
	// qs[1] via restoration.
	for _, q := range qs {
		if !p.Admitted(q) {
			t.Fatalf("query %d lost its admission across the failed replan", q)
		}
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("post-replan state infeasible: %v", err)
	}
}

func TestReplanCancelledCtxRestoresAll(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Replan(ctx, qs)
	if err == nil {
		t.Fatal("Replan under cancelled ctx returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	// Restoration runs under a background context, so every removed query
	// must be admitted again.
	for _, q := range qs {
		if !p.Admitted(q) {
			t.Fatalf("query %d not restored after cancelled replan", q)
		}
	}
}

func TestDriftedQueriesEdgeCases(t *testing.T) {
	sys, qs := churnSystem(t)
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, qs)

	// Find an operator actually supporting qs[0].
	var supportOp dsps.OperatorID = -1
	for pl, on := range p.Assignment().Ops {
		if on && sys.Operators[pl.Op].Output == qs[0] {
			supportOp = pl.Op
			break
		}
	}
	if supportOp < 0 {
		t.Fatal("no supporting operator found for query 0")
	}

	cases := []struct {
		name      string
		observed  map[dsps.OperatorID]float64
		threshold float64
		want      int // number of drifted queries
	}{
		{"no observations", nil, 0.2, 0},
		{"within threshold", map[dsps.OperatorID]float64{supportOp: sys.Operators[supportOp].Cost * 1.1}, 0.2, 0},
		{"beyond threshold", map[dsps.OperatorID]float64{supportOp: sys.Operators[supportOp].Cost * 2}, 0.2, 1},
		{"shrunk beyond threshold", map[dsps.OperatorID]float64{supportOp: sys.Operators[supportOp].Cost * 0.1}, 0.2, 1},
		{"operator id out of range high", map[dsps.OperatorID]float64{dsps.OperatorID(len(sys.Operators) + 3): 10}, 0.2, 0},
		{"operator id negative", map[dsps.OperatorID]float64{-1: 10}, 0.2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := p.DriftedQueries(tc.observed, tc.threshold)
			if len(got) != tc.want {
				t.Fatalf("DriftedQueries = %v, want %d queries", got, tc.want)
			}
		})
	}
}

func TestDriftedQueriesZeroCostOperator(t *testing.T) {
	// A dedicated system with a zero-cost operator in the support.
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 0, "free-join") // zero cost
	sys.SetRequested(op.Output, true)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(sys, testConfig())
	submitAll(t, p, []dsps.StreamID{op.Output})

	// Zero observed cost on a zero-cost operator is not drift, and neither
	// is sub-epsilon monitoring noise.
	if got := p.DriftedQueries(map[dsps.OperatorID]float64{op.ID: 0}, 0.2); len(got) != 0 {
		t.Fatalf("zero observed on zero-cost operator flagged drift: %v", got)
	}
	if got := p.DriftedQueries(map[dsps.OperatorID]float64{op.ID: 1e-12}, 0.2); len(got) != 0 {
		t.Fatalf("noise-level observation on zero-cost operator flagged drift: %v", got)
	}
	// A real measurement on a zero-cost operator is drift.
	if got := p.DriftedQueries(map[dsps.OperatorID]float64{op.ID: 0.5}, 0.2); len(got) != 1 {
		t.Fatalf("real cost on zero-cost operator not flagged: %v", got)
	}
}
