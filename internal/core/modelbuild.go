package core

import (
	"math"
	"sort"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/milp"
)

// builder assembles the reduced MILP (III.8) for one planning call.
type builder struct {
	p       *Planner
	sys     *dsps.System
	queries []dsps.StreamID // fresh queries being planned

	free        map[dsps.StreamID]bool
	freeStreams []dsps.StreamID
	freeOps     []dsps.OperatorID
	freeOpSet   map[dsps.OperatorID]bool

	hosts   []dsps.HostID // candidate hosts
	hostIdx map[dsps.HostID]int

	// Residual budgets on candidate hosts after subtracting consumption of
	// fixed (non-free) flows, provides and operators.
	resCPU, resMem, resOut, resIn []float64
	resLink                       [][]float64

	model *milp.Model
	// Variable indices; absent key means the variable does not exist (and
	// is semantically zero).
	dVar map[hsKey]milp.Var
	xVar map[flowKey]milp.Var
	yVar map[hsKey]milp.Var
	zVar map[zKey]milp.Var
	pVar map[hsKey]milp.Var
	lVar milp.Var // O4 linearisation: max per-host CPU

	bigM float64

	// stayBonus rewards keeping a surviving operator on its incumbent host
	// (repair's migration cost, mirrored as a reward so the model stays a
	// maximisation), and preferHost biases the greedy warm start towards
	// rebuilding an operator where it ran before the events. Both are
	// empty outside Repair.
	stayBonus  map[zKey]float64
	preferHost map[dsps.OperatorID]dsps.HostID

	// dAllowed, when non-nil, restricts which requested free streams get
	// provide (d) variables, beyond the always-allowed admitted streams.
	// Repair sets it to the chunk's queries: opportunistically admitting
	// unrelated queries is Submit's job, and their λ1-rewarded fractional
	// admissions would otherwise keep the delta solve's bound open for
	// the entire node budget.
	dAllowed map[dsps.StreamID]bool

	// Greedy warm-start scratch (see seed.go): the incremental usage
	// tracker, the trial-mutation journal, the cycle guard of planStreamAt
	// and a host-ordering buffer, all pooled across submissions.
	track       usageTracker
	journal     []journalEntry
	visiting    map[planKey]bool
	hostScratch []dsps.HostID
	// scoredScratch holds greedyAdmit's candidate ranking; tryStack and
	// auxStack are depth-indexed host buffers for planStreamAt's recursion
	// (seedDepth tracks the live level). All grow to their high-water mark
	// once and are reused by every later probe.
	scoredScratch []scored
	tryStack      [][]dsps.HostID
	auxStack      [][]dsps.HostID
	seedDepth     int

	// seedDeadline bounds the greedy warm start's wall clock and
	// seedProbes its backtracking: planStreamAt is an exponential
	// backtracking search, and on large joint (batch) models at saturation
	// an unbounded greedy can eat minutes before the MILP even starts —
	// blowing straight through the solve deadline, which only the LP and
	// branch-and-bound loops poll (see incumbent in seed.go).
	seedDeadline time.Time
	seedProbes   int
}

type hsKey struct {
	h dsps.HostID
	s dsps.StreamID
}

type flowKey struct {
	from, to dsps.HostID
	s        dsps.StreamID
}

type zKey struct {
	h dsps.HostID
	o dsps.OperatorID
}

// newBuilder computes the free sets, candidate hosts and residual budgets.
// The builder itself — its variable maps, host tables and the MILP model —
// is pooled on the Planner and reused across submissions, so a long-lived
// planner re-emits its model each call without reallocating it.
func (p *Planner) newBuilder(queries []dsps.StreamID) *builder {
	return p.newBuilderWith(queries, p.freeSet(queries))
}

// newBuilderWith is newBuilder with an explicit free set; Repair passes the
// pinned free set (closures of the affected queries only, no sharing-merge).
func (p *Planner) newBuilderWith(queries []dsps.StreamID, free map[dsps.StreamID]bool) *builder {
	b := p.bld
	if b == nil {
		b = &builder{
			dVar:       make(map[hsKey]milp.Var),
			xVar:       make(map[flowKey]milp.Var),
			yVar:       make(map[hsKey]milp.Var),
			zVar:       make(map[zKey]milp.Var),
			pVar:       make(map[hsKey]milp.Var),
			stayBonus:  make(map[zKey]float64),
			preferHost: make(map[dsps.OperatorID]dsps.HostID),
			freeOpSet:  make(map[dsps.OperatorID]bool),
			visiting:   make(map[planKey]bool),
			model:      milp.NewModel(),
		}
		p.bld = b
	} else {
		clear(b.dVar)
		clear(b.xVar)
		clear(b.yVar)
		clear(b.zVar)
		clear(b.pVar)
		clear(b.freeOpSet)
		clear(b.stayBonus)
		clear(b.preferHost)
		b.dAllowed = nil
		b.freeStreams = b.freeStreams[:0]
		b.freeOps = b.freeOps[:0]
		b.hosts = b.hosts[:0]
		b.journal = b.journal[:0]
		b.model.Reset()
	}
	b.p = p
	b.sys = p.sys
	b.queries = queries
	b.free = free
	for s := range b.free {
		b.freeStreams = append(b.freeStreams, s)
	}
	sortStreams(b.freeStreams)
	b.freeOps = p.freeOperators(b.free)
	for _, o := range b.freeOps {
		b.freeOpSet[o] = true
	}
	b.selectHosts()
	b.computeResiduals()
	b.bigM = float64(len(b.hosts)) + 2
	return b
}

// allowProvide reports whether requested free stream s gets d variables in
// this model (see dAllowed).
func (b *builder) allowProvide(s dsps.StreamID) bool {
	return b.dAllowed == nil || b.dAllowed[s] || b.p.admitted[s]
}

// selectHosts picks the candidate host set: every host already touching a
// free stream or free operator is forced in (their variables must be free
// for correctness), every host holding a base stream of the free set is
// highly desirable, and remaining slots are filled by spare CPU capacity.
// Down hosts never enter the set — the planner state is expected to hold
// nothing on them (Repair strips failures before re-planning) — and
// draining hosts enter only when forced in by existing allocations, never
// as discretionary candidates for new load.
func (b *builder) selectHosts() {
	n := b.sys.NumHosts()
	forced := make(map[dsps.HostID]bool)
	st := b.p.state
	force := func(h dsps.HostID) {
		if b.sys.HostUsable(h) {
			forced[h] = true
		}
	}
	for f, on := range st.Flows {
		if on && b.free[f.Stream] {
			force(f.From)
			force(f.To)
		}
	}
	for pl, on := range st.Ops {
		if !on {
			continue
		}
		if b.freeOpSet[pl.Op] {
			force(pl.Host)
			continue
		}
		// Fixed operator consuming a free stream (only possible with the
		// replanning ablation): its host must stay in scope so that the
		// availability-preservation constraint can be expressed.
		for _, in := range b.sys.Operators[pl.Op].Inputs {
			if b.free[in] {
				force(pl.Host)
			}
		}
	}
	for s, h := range st.Provides {
		if b.free[s] {
			force(h)
		}
	}

	// The base-stream locations of the *fresh* queries are mandatory: a
	// new query with no prior allocation can only be satisfied via flows
	// that originate at those hosts. (Sharing queries already have their
	// hosts forced through their existing flows and placements above.)
	for _, q := range b.queries {
		for _, s := range b.p.closures.streamsOf(q) {
			if b.sys.Streams[s].IsBase() {
				for _, h := range b.sys.BaseHosts(s) {
					force(h)
				}
			}
		}
	}

	allowed := func(h dsps.HostID) bool {
		return (b.p.allowedHosts == nil || b.p.allowedHosts[h]) && b.sys.HostPlaceable(h)
	}
	preferred := make(map[dsps.HostID]bool)
	for _, s := range b.freeStreams {
		if b.sys.Streams[s].IsBase() {
			for _, h := range b.sys.BaseHosts(s) {
				if allowed(h) {
					preferred[h] = true
				}
			}
		}
	}

	cap := b.p.cfg.MaxCandidateHosts
	if b.p.cfg.DisableReduction {
		cap = n
	}
	chosen := make(map[dsps.HostID]bool)
	for h := range forced {
		chosen[h] = true
	}
	// Add preferred hosts (base-stream holders) ordered by spare CPU.
	usage := st.ComputeUsage(b.sys)
	spare := func(h dsps.HostID) float64 { return b.sys.Hosts[h].CPU - usage.CPU[h] }
	var prefList []dsps.HostID
	for h := range preferred {
		if !chosen[h] {
			prefList = append(prefList, h)
		}
	}
	sort.Slice(prefList, func(i, j int) bool {
		si, sj := spare(prefList[i]), spare(prefList[j])
		if si != sj {
			return si > sj
		}
		return prefList[i] < prefList[j]
	})
	for _, h := range prefList {
		if len(chosen) >= cap {
			break
		}
		chosen[h] = true
	}
	// Fill with the globally most spare hosts.
	if len(chosen) < cap {
		var rest []dsps.HostID
		for h := 0; h < n; h++ {
			if !chosen[dsps.HostID(h)] && allowed(dsps.HostID(h)) {
				rest = append(rest, dsps.HostID(h))
			}
		}
		sort.Slice(rest, func(i, j int) bool {
			si, sj := spare(rest[i]), spare(rest[j])
			if si != sj {
				return si > sj
			}
			return rest[i] < rest[j]
		})
		for _, h := range rest {
			if len(chosen) >= cap {
				break
			}
			chosen[h] = true
		}
	}
	b.hosts = make([]dsps.HostID, 0, len(chosen))
	for h := range chosen {
		b.hosts = append(b.hosts, h)
	}
	sort.Slice(b.hosts, func(i, j int) bool { return b.hosts[i] < b.hosts[j] })
	b.hostIdx = make(map[dsps.HostID]int, len(b.hosts))
	for i, h := range b.hosts {
		b.hostIdx[h] = i
	}
}

// computeResiduals subtracts the consumption of all *fixed* allocation
// pieces (flows/ops/provides outside the free sets) from the budgets of the
// candidate hosts.
func (b *builder) computeResiduals() {
	k := len(b.hosts)
	b.resCPU = make([]float64, k)
	b.resMem = make([]float64, k)
	b.resOut = make([]float64, k)
	b.resIn = make([]float64, k)
	b.resLink = make([][]float64, k)
	for i, h := range b.hosts {
		b.resCPU[i] = b.sys.Hosts[h].CPU
		b.resMem[i] = b.sys.Hosts[h].Mem
		b.resOut[i] = b.sys.Hosts[h].OutBW
		b.resIn[i] = b.sys.Hosts[h].InBW
		b.resLink[i] = make([]float64, k)
		for j, m := range b.hosts {
			b.resLink[i][j] = b.sys.LinkCap[h][m]
		}
	}
	st := b.p.state
	for pl, on := range st.Ops {
		if !on || b.freeOpSet[pl.Op] {
			continue
		}
		if i, ok := b.hostIdx[pl.Host]; ok {
			b.resCPU[i] -= b.sys.Operators[pl.Op].Cost
			b.resMem[i] -= b.sys.Operators[pl.Op].Mem
		}
	}
	for f, on := range st.Flows {
		if !on || b.free[f.Stream] {
			continue
		}
		rate := b.sys.Streams[f.Stream].Rate
		if i, ok := b.hostIdx[f.From]; ok {
			b.resOut[i] -= rate
			if j, ok2 := b.hostIdx[f.To]; ok2 {
				b.resLink[i][j] -= rate
			}
		}
		if j, ok := b.hostIdx[f.To]; ok {
			b.resIn[j] -= rate
		}
	}
	for s, h := range st.Provides {
		if b.free[s] {
			continue
		}
		if i, ok := b.hostIdx[h]; ok {
			b.resOut[i] -= b.sys.Streams[s].Rate
		}
	}
}

// addNoRelayRow emits the strengthened form of (III.5c) used by the relay
// ablation: a host may only send streams it originates (base stream or
// locally executed producer), never streams it merely received.
func (b *builder) addNoRelayRow(fk flowKey, xv milp.Var) {
	terms := []milp.Term{{Var: xv, Coef: 1}}
	rhs := 0.0
	if b.sys.IsBaseAt(fk.from, fk.s) {
		rhs += 1
	}
	for _, op := range b.sys.ProducersOf(fk.s) {
		if zv, ok := b.zVar[zKey{fk.from, op}]; ok {
			terms = append(terms, milp.Term{Var: zv, Coef: -1})
		} else if b.p.state.Ops[dsps.Placement{Host: fk.from, Op: op}] {
			rhs += 1
		}
	}
	b.model.AddCons("no-relay", milp.LE, rhs, terms...)
}

// build assembles the MILP into the builder's pooled model.
func (b *builder) build() *milp.Model {
	m := b.model
	sys := b.sys
	st := b.p.state

	// --- Variables -----------------------------------------------------
	// Variable names are static family tags: per-variable formatted names
	// cost a Sprintf and a string allocation each on the hot submit path,
	// and nothing reads them back.
	// Branch priorities rank the decisions: admission (d) first — it
	// carries λ1 and shapes everything below — then availability (y), then
	// operator placement (z); flow routing (x) branches last (priority 0),
	// as its objective weight is smallest and most x values follow from the
	// other decisions anyway.
	for _, s := range b.freeStreams {
		stream := &sys.Streams[s]
		for _, h := range b.hosts {
			hk := hsKey{h, s}
			yv := m.AddBinary("y")
			m.SetBranchPriority(yv, 2)
			b.yVar[hk] = yv
			if stream.Requested && b.allowProvide(s) {
				dv := m.AddBinary("d")
				m.SetBranchPriority(dv, 3)
				b.dVar[hk] = dv
			}
			b.pVar[hk] = m.AddContinuous(0, b.bigM, "p")
		}
		for _, h := range b.hosts {
			for _, mm := range b.hosts {
				if h == mm {
					continue
				}
				b.xVar[flowKey{h, mm, s}] = m.AddBinary("x")
			}
		}
	}
	for _, o := range b.freeOps {
		for _, h := range b.hosts {
			zv := m.AddBinary("z")
			m.SetBranchPriority(zv, 1)
			b.zVar[zKey{h, o}] = zv
		}
	}
	maxCPU := 0.0
	for _, h := range sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	b.lVar = m.AddContinuous(0, math.Max(maxCPU, 1), "L")

	// --- Demand constraints (III.4) -------------------------------------
	for _, s := range b.freeStreams {
		if !sys.Streams[s].Requested || !b.allowProvide(s) {
			continue
		}
		var sum []milp.Term
		for _, h := range b.hosts {
			hk := hsKey{h, s}
			d := b.dVar[hk]
			// (III.4a) d_hs <= y_hs (δ_s = 1 since s is requested here).
			m.AddCons("demand-avail", milp.LE, 0, milp.Term{Var: d, Coef: 1}, milp.Term{Var: b.yVar[hk], Coef: -1})
			sum = append(sum, milp.Term{Var: d, Coef: 1})
		}
		if b.p.admitted[s] {
			// (IV.9): already admitted queries must stay satisfied,
			// though possibly from a different host.
			m.AddCons("keep-admitted", milp.EQ, 1, sum...)
		} else {
			// (III.4b): at most one provider.
			m.AddCons("one-provider", milp.LE, 1, sum...)
		}
	}

	// --- Availability constraints (III.5) --------------------------------
	for _, s := range b.freeStreams {
		for _, h := range b.hosts {
			hk := hsKey{h, s}
			terms := []milp.Term{{Var: b.yVar[hk], Coef: 1}}
			rhs := 0.0
			if sys.IsBaseAt(h, s) {
				rhs += 1 // 1[s ∈ S⁰_h]
			}
			for _, src := range b.hosts {
				if src == h {
					continue
				}
				if xv, ok := b.xVar[flowKey{src, h, s}]; ok {
					terms = append(terms, milp.Term{Var: xv, Coef: -1})
				}
			}
			for _, op := range sys.ProducersOf(s) {
				if zv, ok := b.zVar[zKey{h, op}]; ok {
					terms = append(terms, milp.Term{Var: zv, Coef: -1})
				} else if st.Ops[dsps.Placement{Host: h, Op: op}] {
					// A fixed operator already produces s at h.
					rhs += 1
				}
			}
			// (III.5a): y_hs <= Σ x + Σ z + base indicator.
			m.AddCons("avail", milp.LE, rhs, terms...)
		}
	}
	// (III.5b): z_ho <= y_hs for every input stream of o.
	for _, o := range b.freeOps {
		op := &sys.Operators[o]
		for _, h := range b.hosts {
			zv := b.zVar[zKey{h, o}]
			for _, in := range op.Inputs {
				yv, ok := b.yVar[hsKey{h, in}]
				if !ok {
					// Input outside free set can only happen with
					// reduction disabled inconsistencies; treat as fixed
					// availability from current state.
					if b.p.state.Available(sys, h, in) {
						continue
					}
					b.model.Fix(zv, 0)
					continue
				}
				m.AddCons("op-input", milp.LE, 0, milp.Term{Var: zv, Coef: 1}, milp.Term{Var: yv, Coef: -1})
			}
		}
	}
	// (III.5c): x_hms <= y_hs, or the production-only variant when stream
	// relaying is disabled for ablation.
	for fk, xv := range b.xVar {
		if b.p.cfg.DisableRelay {
			b.addNoRelayRow(fk, xv)
			continue
		}
		yv := b.yVar[hsKey{fk.from, fk.s}]
		m.AddCons("send-avail", milp.LE, 0, milp.Term{Var: xv, Coef: 1}, milp.Term{Var: yv, Coef: -1})
	}

	// Availability preservation: fixed operators and fixed provides that
	// consume a free stream on a candidate host require the new plan to
	// keep the stream available there (arises under the replan ablation).
	b.addPreservationRows()

	// --- Resource constraints (III.6) ------------------------------------
	b.addResourceRows()

	// --- Acyclicity constraints (III.7) ----------------------------------
	for fk, xv := range b.xVar {
		ph := b.pVar[hsKey{fk.from, fk.s}]
		pm := b.pVar[hsKey{fk.to, fk.s}]
		// p_hs >= p_ms + 1 − M(1 − x) ⇔ p_h − p_m − M·x >= 1 − M.
		m.AddCons("acyclic", milp.GE, 1-b.bigM,
			milp.Term{Var: ph, Coef: 1}, milp.Term{Var: pm, Coef: -1}, milp.Term{Var: xv, Coef: -b.bigM})
	}

	// --- Objective (III.3) ------------------------------------------------
	b.setObjective()
	return m
}

// addPreservationRows forces y_hs = 1 wherever a fixed (non-free) element
// of the current allocation depends on free stream s at host h.
func (b *builder) addPreservationRows() {
	st := b.p.state
	need := make(map[hsKey]bool)
	for pl, on := range st.Ops {
		if !on || b.freeOpSet[pl.Op] {
			continue
		}
		for _, in := range b.sys.Operators[pl.Op].Inputs {
			if b.free[in] {
				need[hsKey{pl.Host, in}] = true
			}
		}
	}
	for fk, on := range st.Flows {
		if !on || b.free[fk.Stream] {
			continue
		}
		_ = fk // fixed flows of fixed streams never reference free streams
	}
	for hk := range need {
		yv, ok := b.yVar[hk]
		if !ok {
			// The consuming host fell outside the candidate set; forced
			// hosts should prevent this, but guard anyway.
			continue
		}
		b.model.AddCons("preserve-avail", milp.GE, 1, milp.Term{Var: yv, Coef: 1})
	}
}

// addResourceRows emits the four budget families of (III.6) over candidate
// hosts, with right-hand sides already reduced by fixed consumption.
func (b *builder) addResourceRows() {
	sys := b.sys
	m := b.model
	for i, h := range b.hosts {
		// (III.6d) CPU.
		var cpu []milp.Term
		for _, o := range b.freeOps {
			cpu = append(cpu, milp.Term{Var: b.zVar[zKey{h, o}], Coef: sys.Operators[o].Cost})
		}
		if len(cpu) > 0 {
			m.AddCons("cpu", milp.LE, b.resCPU[i], cpu...)
		}
		// Memory budget (future-work resource; zero budget = unconstrained).
		if sys.Hosts[h].Mem > 0 {
			var mem []milp.Term
			for _, o := range b.freeOps {
				if mu := sys.Operators[o].Mem; mu > 0 {
					mem = append(mem, milp.Term{Var: b.zVar[zKey{h, o}], Coef: mu})
				}
			}
			if len(mem) > 0 {
				m.AddCons("mem", milp.LE, b.resMem[i], mem...)
			}
		}
		// O4 linearisation: L >= fixedCPU_h + Σ γ z_ho
		fixedCPU := sys.Hosts[h].CPU - b.resCPU[i]
		lrow := []milp.Term{{Var: b.lVar, Coef: 1}}
		for _, t := range cpu {
			lrow = append(lrow, milp.Term{Var: t.Var, Coef: -t.Coef})
		}
		m.AddCons("load", milp.GE, fixedCPU, lrow...)

		// (III.6c) outgoing host bandwidth: flows out plus client deliveries.
		var out []milp.Term
		for _, s := range b.freeStreams {
			rate := sys.Streams[s].Rate
			for _, mm := range b.hosts {
				if xv, ok := b.xVar[flowKey{h, mm, s}]; ok {
					out = append(out, milp.Term{Var: xv, Coef: rate})
				}
			}
			if dv, ok := b.dVar[hsKey{h, s}]; ok {
				out = append(out, milp.Term{Var: dv, Coef: rate})
			}
		}
		if len(out) > 0 {
			m.AddCons("out-bw", milp.LE, b.resOut[i], out...)
		}

		// (III.6b) incoming host bandwidth.
		var in []milp.Term
		for _, s := range b.freeStreams {
			rate := sys.Streams[s].Rate
			for _, src := range b.hosts {
				if xv, ok := b.xVar[flowKey{src, h, s}]; ok {
					in = append(in, milp.Term{Var: xv, Coef: rate})
				}
			}
		}
		if len(in) > 0 {
			m.AddCons("in-bw", milp.LE, b.resIn[i], in...)
		}

		// (III.6a) pairwise link capacity.
		for j, mm := range b.hosts {
			if i == j {
				continue
			}
			var link []milp.Term
			for _, s := range b.freeStreams {
				if xv, ok := b.xVar[flowKey{h, mm, s}]; ok {
					link = append(link, milp.Term{Var: xv, Coef: sys.Streams[s].Rate})
				}
			}
			if len(link) > 0 {
				m.AddCons("link", milp.LE, b.resLink[i][j], link...)
			}
		}
	}
}

// setObjective installs λ1·O1 − λ2·O2 − λ3·O3 − λ4·O4 (maximisation).
func (b *builder) setObjective() {
	w := b.p.cfg.Weights
	sys := b.sys
	totalLink := sys.TotalLinkCap()
	if totalLink <= 0 {
		totalLink = 1
	}
	totalCPU := sys.TotalCPU()
	if totalCPU <= 0 {
		totalCPU = 1
	}
	maxCPU := 0.0
	for _, h := range sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	if maxCPU <= 0 {
		maxCPU = 1
	}
	var terms []milp.Term
	for hk, dv := range b.dVar {
		coef := w.L1
		// Draining hosts should shed their client delivery points too:
		// the reduced reward still dwarfs every other term, so admission
		// is never sacrificed, but a provider that can move off moves.
		if sys.Hosts[hk.h].State == dsps.HostDraining {
			coef -= b.p.cfg.MigrationWeight
		}
		terms = append(terms, milp.Term{Var: dv, Coef: coef})
	}
	for fk, xv := range b.xVar {
		terms = append(terms, milp.Term{Var: xv, Coef: -w.L2 * sys.Streams[fk.s].Rate / totalLink})
	}
	for zk, zv := range b.zVar {
		coef := -w.L3 * sys.Operators[zk.o].Cost / totalCPU
		// Repair's migration cost: moving a surviving operator off its
		// incumbent host forfeits the stay bonus, so migration only happens
		// when it buys admission or substantial placement quality.
		coef += b.stayBonus[zk]
		// Draining hosts repel load at the same magnitude a migration
		// costs (and the stay bonus never applies to them), so evacuation
		// is preferred whenever it is feasible — the penalty must exceed
		// the solver's repair gap tolerance or evacuations would sit
		// inside the allowed slack.
		if sys.Hosts[zk.h].State == dsps.HostDraining {
			coef -= b.p.cfg.MigrationWeight
		}
		terms = append(terms, milp.Term{Var: zv, Coef: coef})
	}
	terms = append(terms, milp.Term{Var: b.lVar, Coef: -w.L4 / maxCPU})
	b.model.SetObjective(true, terms...)
}
