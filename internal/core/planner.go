// Package core implements the SQPR query planner (§III–§IV of the paper):
// query admission, operator placement and cross-query reuse solved as a
// single mixed-integer linear program, with problem reduction so that each
// planning call only optimises over the streams and operators related to
// the newly submitted query.
package core

import (
	"context"
	"fmt"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/milp"
	"sqpr/internal/plan"
)

// Weights are the objective weights λ1–λ4 of (III.3): admitted queries,
// network usage, CPU usage and load balance.
type Weights struct {
	L1 float64 // satisfied queries (O1)
	L2 float64 // system-wide network usage (O2), applied to O2/Σκ
	L3 float64 // system-wide CPU usage (O3), applied to O3/Σζ
	L4 float64 // maximum per-host CPU (O4), applied to O4/ζ_max
}

// PaperWeights mirrors §IV-A: λ1 is a large constant so admission dominates,
// λ2 and λ3 normalise network and CPU usage to [0,1], and λ4 balances load
// with the same weight as average CPU consumption.
func PaperWeights() Weights { return Weights{L1: 100, L2: 1, L3: 1, L4: 1} }

// Config tunes the planner.
type Config struct {
	Weights Weights
	// SolveTimeout bounds each planning call, after which the best
	// incumbent found so far is used (the paper's CPLEX timeout). A
	// plan.WithTimeout submit option overrides it per call, and a ctx
	// deadline always wins when earlier.
	SolveTimeout time.Duration
	// MaxNodes caps branch-and-bound nodes per call (0 = default).
	MaxNodes int
	// SolveWorkers sets how many goroutines explore each MILP
	// branch-and-bound tree. <= 1 runs the search inline and fully
	// deterministically; a plan.WithParallelism submit option overrides it
	// per call. Parallelism pays off on large solves (many free streams or
	// candidate hosts); small solves are faster serial.
	SolveWorkers int
	// MaxCandidateHosts caps the hosts considered by one planning call.
	// Hosts already involved with related streams are always included.
	// 0 selects a default of 10.
	MaxCandidateHosts int
	// MaxFreeStreams caps how many streams the sharing closure may free in
	// one call; beyond the cap further sharing queries stay fixed (their
	// availability is preserved by explicit rows). 0 selects 24.
	MaxFreeStreams int
	// GapTol stops the search when the incumbent is provably within this
	// relative gap of the optimum; 0 selects 0.01. Because λ1 dominates
	// the objective, a small relative gap never sacrifices admissions.
	GapTol float64
	// MigrationWeight is the objective reward Repair grants for keeping a
	// surviving operator on its incumbent host (equivalently, the cost of
	// migrating it). It should exceed the normalised quality terms (λ2–λ4
	// contributions are at most ~1 each) so placement polish never causes
	// a migration, while staying well below Weights.L1 so an admission is
	// never sacrificed to avoid one; 0 selects 2.
	MigrationWeight float64
	// DisableReduction plans over all streams and operators (ablation;
	// the paper shows the full problem is intractable).
	DisableReduction bool
	// DisableRelay forbids forwarding a stream through hosts that neither
	// produce nor originate it (ablation of §II-C relaying).
	DisableRelay bool
	// DisableReplan freezes all previously placed operators and flows, so
	// only the new query's own placement is optimised (ablation of the
	// replanning behind constraint (IV.9)).
	DisableReplan bool
	// DisableWarmStart withholds the greedy incumbent from the solver
	// (ablation; the search then has to find its first feasible point).
	DisableWarmStart bool
	// DisableTreeReduction turns off the MILP tree-reduction layer —
	// presolve, root cutting planes, reduced-cost bound fixing and
	// pseudo-cost branching — so the solver runs plain branch and bound
	// (ablation; conformance tests compare both modes).
	DisableTreeReduction bool
	// Validate re-checks every produced assignment against the dsps
	// feasibility validator; enabled by default in NewPlanner. A
	// plan.WithValidation submit option overrides it per call.
	Validate bool
}

// DefaultConfig returns the configuration used by the evaluation harness.
func DefaultConfig() Config {
	return Config{
		Weights:           PaperWeights(),
		SolveTimeout:      500 * time.Millisecond,
		MaxCandidateHosts: 10,
		Validate:          true,
	}
}

// Stagnation-stop tuning for large reduced models (see submit).
const (
	stallVarThreshold = 400
	stallNodesLarge   = 8
)

// groupGraceBudget is the minimum wall-clock budget an armed greedy run
// receives even when earlier work consumed the whole call timeout (see
// seedArm in seed.go).
const groupGraceBudget = 10 * time.Millisecond

// Planner is the SQPR planner. It implements plan.QueryPlanner and is not
// safe for concurrent use.
type Planner struct {
	sys   *dsps.System
	cfg   Config
	state *dsps.Assignment

	// admitted tracks requested streams currently served (Σ_h d_hs = 1).
	admitted map[dsps.StreamID]bool

	// allowedHosts, when non-nil, restricts discretionary candidate hosts
	// for the current call (plan.WithCandidateHosts).
	allowedHosts map[dsps.HostID]bool
	// validate is the per-call effective validation switch.
	validate bool
	// workers is the per-call effective branch-and-bound parallelism.
	workers int

	// bld is the pooled model builder, reused across submissions so a
	// long-lived planner stops churning the heap on every call.
	bld *builder

	closures *closureCache
	stats    Stats
}

// Result describes the outcome of one planning call; it is the shared
// result type of plan.QueryPlanner, with a machine-readable rejection
// Reason.
type Result = plan.Result

// Stats aggregates planner telemetry across all planning calls; it is the
// shared telemetry type of plan.QueryPlanner.
type Stats = plan.Stats

// Stats returns cumulative planner telemetry.
func (p *Planner) Stats() Stats { return p.stats }

// NewPlanner creates a planner over the system with the given config.
func NewPlanner(sys *dsps.System, cfg Config) *Planner {
	if cfg.Weights == (Weights{}) {
		cfg.Weights = PaperWeights()
	}
	if cfg.MaxCandidateHosts <= 0 {
		cfg.MaxCandidateHosts = 10
	}
	if cfg.MaxFreeStreams <= 0 {
		cfg.MaxFreeStreams = 24
	}
	if cfg.GapTol == 0 {
		cfg.GapTol = 0.01
	}
	if cfg.MigrationWeight == 0 {
		cfg.MigrationWeight = 2
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 32
	}
	if cfg.SolveTimeout <= 0 {
		cfg.SolveTimeout = 500 * time.Millisecond
	}
	return &Planner{
		sys:      sys,
		cfg:      cfg,
		state:    dsps.NewAssignment(),
		admitted: make(map[dsps.StreamID]bool),
		closures: newClosureCache(sys),
	}
}

// Assignment exposes the current allocation state (do not mutate).
func (p *Planner) Assignment() *dsps.Assignment { return p.state }

// Admitted reports whether query stream q is currently served.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Submit runs Algorithm 1 (initial query planning) for query q. Options
// customise the call: plan.WithTimeout overrides the solver budget,
// plan.WithCandidateHosts restricts the candidate host universe (the
// building block of internal/hier), plan.WithBatch plans additional
// queries jointly in one optimisation with the deadline scaled by the
// batch size (§V-A1), plan.WithValidation toggles post-solve feasibility
// validation, and plan.WithParallelism sets the branch-and-bound worker
// count. Cancelling ctx aborts the MILP search promptly and leaves the
// planner state unchanged.
func (p *Planner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (Result, error) {
	ctx = plan.OrBackground(ctx)
	cfg := plan.Apply(opts)
	qs := cfg.Queries(q)

	timeout := cfg.Timeout
	if timeout <= 0 {
		// Batch submissions scale the default deadline with the batch
		// size, as in the paper's "timeout of 30n secs".
		timeout = time.Duration(len(qs)) * p.cfg.SolveTimeout
	}

	if cfg.Hosts != nil {
		p.allowedHosts = make(map[dsps.HostID]bool, len(cfg.Hosts))
		for _, h := range cfg.Hosts {
			p.allowedHosts[h] = true
		}
		defer func() { p.allowedHosts = nil }()
	}
	p.validate = p.cfg.Validate
	if cfg.Validate != nil {
		p.validate = *cfg.Validate
	}
	p.workers = p.cfg.SolveWorkers
	if cfg.Workers > 0 {
		p.workers = cfg.Workers
	}

	return p.submit(ctx, qs, timeout)
}

// Remove withdraws an admitted query and garbage-collects every operator
// and flow that no remaining query depends on. It is the first half of the
// paper's adaptive replanning (§IV-B): "conceptually removing and
// re-adding queries".
func (p *Planner) Remove(q dsps.StreamID) error {
	if err := plan.CheckStream(p.sys, q); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if !p.admitted[q] {
		return fmt.Errorf("core: query %d: %w", q, plan.ErrNotAdmitted)
	}
	delete(p.admitted, q)
	delete(p.state.Provides, q)
	p.state.GarbageCollect(p.sys)
	return nil
}

func (p *Planner) submit(ctx context.Context, qs []dsps.StreamID, timeout time.Duration) (Result, error) {
	start := time.Now()
	var res Result

	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Algorithm 1, line 3: skip queries that are already admitted.
	var fresh []dsps.StreamID
	for _, q := range qs {
		if err := plan.CheckStream(p.sys, q); err != nil {
			return res, fmt.Errorf("core: %w", err)
		}
		if !p.sys.Streams[q].Requested {
			return res, fmt.Errorf("core: stream %d: %w", q, plan.ErrNotRequested)
		}
		if p.admitted[q] {
			res.AlreadyAdmitted = true
			continue
		}
		fresh = append(fresh, q)
	}
	if len(fresh) == 0 {
		res.Admitted = true
		res.PlanTime = time.Since(start)
		p.stats.Record(res)
		return res, nil
	}

	// Effective deadline: the earlier of the solver budget and the ctx
	// deadline, so a ctx deadline also bounds individual node LPs.
	finalDeadline := start.Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(finalDeadline) {
		finalDeadline = d
	}

	// The whole batch is one joint solve. Earlier revisions split batches
	// whose closure unions outgrew Config.MaxFreeStreams into sub-batches
	// solved under deadline shares — a tractability concession to the dense
	// LP substrate, whose tableau cost grew superlinearly with model size
	// (multi-gigabyte tableaus on scrambled batches of eight). The sparse
	// revised-simplex engine prices those unions at their nonzero count, so
	// the split and its contract compromises (per-group deadline shares,
	// mid-sequence rollback, admissions diverging from the joint optimum on
	// related batches) are gone. MaxFreeStreams still bounds closure growth
	// where it always did: sharing-query merges (closure.go) and repair
	// chunking (repair.go).
	r, err := p.submitGroup(ctx, fresh, start, finalDeadline, &res)
	if err == nil {
		p.stats.Record(r)
	}
	return r, err
}

// submitGroup is the single-joint-solve body of submit: build the reduced
// model for the fresh queries, solve it under the deadline, and commit the
// produced allocation. res carries pre-filled telemetry and is completed
// here.
func (p *Planner) submitGroup(ctx context.Context, fresh []dsps.StreamID, start time.Time, deadline time.Time, resIn *Result) (Result, error) {
	res := *resIn

	b := p.newBuilder(fresh)
	res.FreeStreams = len(b.freeStreams)
	res.FreeOps = len(b.freeOps)
	res.CandidateHosts = len(b.hosts)

	model := b.build()
	res.ModelVars = model.NumVars()
	opts := milp.Options{
		Ctx:                  ctx,
		Deadline:             deadline,
		MaxNodes:             p.cfg.MaxNodes,
		GapTol:               p.cfg.GapTol,
		Workers:              p.workers,
		DisableTreeReduction: p.cfg.DisableTreeReduction,
		// λ1 dominates: any absolute gap well below λ1 cannot hide a
		// further admission. A small (but not tiny) gap lets the search
		// keep improving placement quality within its deadline while
		// still fathoming hopeless subtrees early.
		AbsGapTol: 0.02 * p.cfg.Weights.L1,
	}
	if !p.cfg.DisableWarmStart {
		opts.Incumbent = b.incumbent(deadline)
	}
	// Large reduced models get a stagnation stop: their LP bound carries
	// fractional admissions of other unserved queries, a gap no realistic
	// node budget closes (measured: tens of thousands of nodes leave the
	// admission decisions unchanged), so a search that has stopped
	// improving its incumbent is burning deadline on nothing. Small models
	// search their full budget — on them a late admission find is cheap
	// and real (the Fig. 2 shared-chain and relay scenarios need ~30
	// nodes).
	if model.NumVars() >= stallVarThreshold {
		opts.StallNodes = stallNodesLarge
	}
	sol := model.Solve(opts)
	res.SolveStatus = sol.Status
	res.Nodes = sol.Nodes
	res.LPIters = sol.LPIters
	res.Factor = sol.Factor
	res.Cuts = sol.Cuts
	res.Fixings = sol.Fixings
	res.PresolveFixed = sol.PresolveFixed
	res.Stalled = sol.Stalled

	if sol.Cancelled || ctx.Err() != nil {
		// Aborted mid-solve: discard any incumbent, keep the previous
		// state, and report the cancellation to the caller.
		res.PlanTime = time.Since(start)
		return res, ctx.Err()
	}

	if sol.X == nil {
		// No feasible plan found within the budget: the query is not
		// admitted and the state is unchanged (Algorithm 1 keeps the
		// previous solution).
		res.Reason = plan.ReasonNoFeasiblePlan
		res.PlanTime = time.Since(start)
		return res, nil
	}

	next, err := b.decode(sol.X)
	if err != nil {
		return res, fmt.Errorf("core: decoding solver output: %w", err)
	}
	if p.validate {
		if err := next.Validate(p.sys); err != nil {
			res.Reason = plan.ReasonValidationFailed
			return res, fmt.Errorf("core: solver produced infeasible plan: %w", err)
		}
	}

	// Accept the new allocation and update admission bookkeeping.
	p.state = next
	for _, q := range fresh {
		if _, ok := next.Provides[q]; ok {
			p.admitted[q] = true
			res.Admitted = true
		}
	}
	// With multiple fresh queries, Admitted reports "all admitted".
	if len(fresh) > 1 {
		res.Admitted = true
		for _, q := range fresh {
			if !p.admitted[q] {
				res.Admitted = false
				break
			}
		}
	}
	if !res.Admitted {
		res.Reason = plan.ReasonNoFeasiblePlan
	}
	res.PlanTime = time.Since(start)
	return res, nil
}
