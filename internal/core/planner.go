// Package core implements the SQPR query planner (§III–§IV of the paper):
// query admission, operator placement and cross-query reuse solved as a
// single mixed-integer linear program, with problem reduction so that each
// planning call only optimises over the streams and operators related to
// the newly submitted query.
package core

import (
	"fmt"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/milp"
)

// Weights are the objective weights λ1–λ4 of (III.3): admitted queries,
// network usage, CPU usage and load balance.
type Weights struct {
	L1 float64 // satisfied queries (O1)
	L2 float64 // system-wide network usage (O2), applied to O2/Σκ
	L3 float64 // system-wide CPU usage (O3), applied to O3/Σζ
	L4 float64 // maximum per-host CPU (O4), applied to O4/ζ_max
}

// PaperWeights mirrors §IV-A: λ1 is a large constant so admission dominates,
// λ2 and λ3 normalise network and CPU usage to [0,1], and λ4 balances load
// with the same weight as average CPU consumption.
func PaperWeights() Weights { return Weights{L1: 100, L2: 1, L3: 1, L4: 1} }

// Config tunes the planner.
type Config struct {
	Weights Weights
	// SolveTimeout bounds each planning call, after which the best
	// incumbent found so far is used (the paper's CPLEX timeout).
	SolveTimeout time.Duration
	// MaxNodes caps branch-and-bound nodes per call (0 = default).
	MaxNodes int
	// MaxCandidateHosts caps the hosts considered by one planning call.
	// Hosts already involved with related streams are always included.
	// 0 selects a default of 10.
	MaxCandidateHosts int
	// MaxFreeStreams caps how many streams the sharing closure may free in
	// one call; beyond the cap further sharing queries stay fixed (their
	// availability is preserved by explicit rows). 0 selects 24.
	MaxFreeStreams int
	// GapTol stops the search when the incumbent is provably within this
	// relative gap of the optimum; 0 selects 0.01. Because λ1 dominates
	// the objective, a small relative gap never sacrifices admissions.
	GapTol float64
	// DisableReduction plans over all streams and operators (ablation;
	// the paper shows the full problem is intractable).
	DisableReduction bool
	// DisableRelay forbids forwarding a stream through hosts that neither
	// produce nor originate it (ablation of §II-C relaying).
	DisableRelay bool
	// DisableReplan freezes all previously placed operators and flows, so
	// only the new query's own placement is optimised (ablation of the
	// replanning behind constraint (IV.9)).
	DisableReplan bool
	// DisableWarmStart withholds the greedy incumbent from the solver
	// (ablation; the search then has to find its first feasible point).
	DisableWarmStart bool
	// Validate re-checks every produced assignment against the dsps
	// feasibility validator; enabled by default in NewPlanner.
	Validate bool
}

// DefaultConfig returns the configuration used by the evaluation harness.
func DefaultConfig() Config {
	return Config{
		Weights:           PaperWeights(),
		SolveTimeout:      500 * time.Millisecond,
		MaxCandidateHosts: 10,
		Validate:          true,
	}
}

// Planner is the SQPR planner. It is not safe for concurrent use.
type Planner struct {
	sys   *dsps.System
	cfg   Config
	state *dsps.Assignment

	// admitted tracks requested streams currently served (Σ_h d_hs = 1).
	admitted map[dsps.StreamID]bool

	// allowedHosts, when non-nil, restricts discretionary candidate hosts
	// for the current call (see SubmitWithHosts).
	allowedHosts map[dsps.HostID]bool

	closures *closureCache
	stats    Stats
}

// Stats aggregates planner telemetry across all planning calls.
type Stats struct {
	// Submissions counts planning calls (batch = one call).
	Submissions int
	// Rejections counts calls that failed to admit a fresh query.
	Rejections int
	// TotalPlanTime accumulates wall-clock planning time.
	TotalPlanTime time.Duration
	// TotalNodes and TotalLPIters accumulate solver effort.
	TotalNodes   int
	TotalLPIters int
	// Timeouts counts calls whose solver hit its deadline or node budget
	// before proving optimality (FeasibleMIP outcomes).
	Timeouts int
}

// Stats returns cumulative planner telemetry.
func (p *Planner) Stats() Stats { return p.stats }

// NewPlanner creates a planner over the system with the given config.
func NewPlanner(sys *dsps.System, cfg Config) *Planner {
	if cfg.Weights == (Weights{}) {
		cfg.Weights = PaperWeights()
	}
	if cfg.MaxCandidateHosts <= 0 {
		cfg.MaxCandidateHosts = 10
	}
	if cfg.MaxFreeStreams <= 0 {
		cfg.MaxFreeStreams = 24
	}
	if cfg.GapTol == 0 {
		cfg.GapTol = 0.01
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 80
	}
	if cfg.SolveTimeout <= 0 {
		cfg.SolveTimeout = 500 * time.Millisecond
	}
	return &Planner{
		sys:      sys,
		cfg:      cfg,
		state:    dsps.NewAssignment(),
		admitted: make(map[dsps.StreamID]bool),
		closures: newClosureCache(sys),
	}
}

// Assignment exposes the current allocation state (do not mutate).
func (p *Planner) Assignment() *dsps.Assignment { return p.state }

// Admitted reports whether query stream q is currently served.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Result describes the outcome of one planning call.
type Result struct {
	// Admitted reports whether the submitted query is now served.
	Admitted bool
	// AlreadyAdmitted is set when the identical query was served before
	// the call (Algorithm 1, line 3).
	AlreadyAdmitted bool
	// SolveStatus is the MILP outcome.
	SolveStatus milp.Status
	// PlanTime is the wall-clock duration of the planning call.
	PlanTime time.Duration
	// Nodes and LPIters report solver effort.
	Nodes   int
	LPIters int
	// FreeStreams and FreeOps report the reduced problem size.
	FreeStreams, FreeOps, CandidateHosts int
}

// Submit runs Algorithm 1 (initial query planning) for a single new query.
func (p *Planner) Submit(q dsps.StreamID) (Result, error) {
	return p.submit([]dsps.StreamID{q}, p.cfg.SolveTimeout)
}

// SubmitWithTimeout plans one query under a non-default solver budget; used
// by experiments that sweep the planning timeout.
func (p *Planner) SubmitWithTimeout(q dsps.StreamID, timeout time.Duration) (Result, error) {
	return p.submit([]dsps.StreamID{q}, timeout)
}

// SubmitWithHosts plans one query with the candidate host universe
// restricted to the given set (plus any hosts that correctness forces in:
// hosts already carrying related allocations and the query's base-stream
// locations). This is the building block of the hierarchical decomposition
// the paper sketches as future work (internal/hier).
func (p *Planner) SubmitWithHosts(q dsps.StreamID, allowed []dsps.HostID) (Result, error) {
	p.allowedHosts = make(map[dsps.HostID]bool, len(allowed))
	for _, h := range allowed {
		p.allowedHosts[h] = true
	}
	defer func() { p.allowedHosts = nil }()
	return p.submit([]dsps.StreamID{q}, p.cfg.SolveTimeout)
}

// SubmitBatch plans a batch of queries in one optimisation (§V-A1,
// Fig. 4(b)); the solve deadline scales with the batch size as in the
// paper's "timeout of 30n secs".
func (p *Planner) SubmitBatch(qs []dsps.StreamID) (Result, error) {
	return p.submit(qs, time.Duration(len(qs))*p.cfg.SolveTimeout)
}

func (p *Planner) submit(qs []dsps.StreamID, timeout time.Duration) (Result, error) {
	start := time.Now()
	var res Result

	// Algorithm 1, line 3: skip queries that are already admitted.
	var fresh []dsps.StreamID
	for _, q := range qs {
		if !p.sys.Streams[q].Requested {
			return res, fmt.Errorf("core: stream %d was not marked as requested", q)
		}
		if p.admitted[q] {
			res.AlreadyAdmitted = true
			continue
		}
		fresh = append(fresh, q)
	}
	if len(fresh) == 0 {
		res.Admitted = true
		res.PlanTime = time.Since(start)
		p.record(res)
		return res, nil
	}

	b := p.newBuilder(fresh)
	res.FreeStreams = len(b.freeStreams)
	res.FreeOps = len(b.freeOps)
	res.CandidateHosts = len(b.hosts)

	model := b.build()
	opts := milp.Options{
		Deadline: start.Add(timeout),
		MaxNodes: p.cfg.MaxNodes,
		GapTol:   p.cfg.GapTol,
		// λ1 dominates: any absolute gap well below λ1 cannot hide a
		// further admission. A small (but not tiny) gap lets the search
		// keep improving placement quality within its deadline while
		// still fathoming hopeless subtrees early.
		AbsGapTol: 0.02 * p.cfg.Weights.L1,
	}
	if !p.cfg.DisableWarmStart {
		opts.Incumbent = b.incumbent()
	}
	sol := model.Solve(opts)
	res.SolveStatus = sol.Status
	res.Nodes = sol.Nodes
	res.LPIters = sol.LPIters

	if sol.X == nil {
		// No feasible plan found within the budget: the query is not
		// admitted and the state is unchanged (Algorithm 1 keeps the
		// previous solution).
		res.PlanTime = time.Since(start)
		p.record(res)
		return res, nil
	}

	next, err := b.decode(sol.X)
	if err != nil {
		return res, fmt.Errorf("core: decoding solver output: %w", err)
	}
	if p.cfg.Validate {
		if err := next.Validate(p.sys); err != nil {
			return res, fmt.Errorf("core: solver produced infeasible plan: %w", err)
		}
	}

	// Accept the new allocation and update admission bookkeeping.
	p.state = next
	for _, q := range fresh {
		if _, ok := next.Provides[q]; ok {
			p.admitted[q] = true
			res.Admitted = true
		}
	}
	// With multiple fresh queries, Admitted reports "all admitted".
	if len(fresh) > 1 {
		res.Admitted = true
		for _, q := range fresh {
			if !p.admitted[q] {
				res.Admitted = false
				break
			}
		}
	}
	res.PlanTime = time.Since(start)
	p.record(res)
	return res, nil
}

// record folds one call's outcome into the cumulative stats.
func (p *Planner) record(res Result) {
	p.stats.Submissions++
	if !res.Admitted {
		p.stats.Rejections++
	}
	p.stats.TotalPlanTime += res.PlanTime
	p.stats.TotalNodes += res.Nodes
	p.stats.TotalLPIters += res.LPIters
	if res.SolveStatus == milp.FeasibleMIP {
		p.stats.Timeouts++
	}
}
