package core

import (
	"context"
	"testing"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/workload"
)

// relayScenario needs relaying to admit its query: the two base streams
// live on hosts whose direct link is saturated by a pre-existing flow, so
// the only feasible route goes through the third host.
func relayScenario(t *testing.T) (*dsps.System, dsps.StreamID) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 4, OutBW: 40, InBW: 40},
		{ID: 1, CPU: 0, OutBW: 40, InBW: 40}, // no CPU: cannot host operators
		{ID: 2, CPU: 4, OutBW: 40, InBW: 40},
	}
	sys := dsps.NewSystem(hosts, 40)
	// Choke the direct links between hosts 0 and 2 in both directions.
	sys.LinkCap[0][2] = 0
	sys.LinkCap[2][0] = 0
	a := sys.AddStream(10, dsps.NoOperator, "a")
	b := sys.AddStream(10, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(2, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)
	return sys, op.Output
}

func TestRelayEnablesAdmission(t *testing.T) {
	sys, q := relayScenario(t)
	cfg := DefaultConfig()
	cfg.SolveTimeout = 3 * time.Second
	p := NewPlanner(sys, cfg)
	res, err := p.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatal("query not admitted although a relay route exists")
	}
	// The plan must route one base stream through host 1 (the relay).
	usedRelay := false
	for f, on := range p.Assignment().Flows {
		if on && (f.From == 1 || f.To == 1) {
			usedRelay = true
		}
	}
	if !usedRelay {
		t.Fatal("no flow touches the relay host")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestDisableRelayBlocksRelayRoute(t *testing.T) {
	sys, q := relayScenario(t)
	cfg := DefaultConfig()
	cfg.SolveTimeout = 3 * time.Second
	cfg.DisableRelay = true
	p := NewPlanner(sys, cfg)
	res, err := p.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		// If admitted, verify no relay happened: host 1 neither produces
		// nor originates either base stream, so it must be untouched.
		for f, on := range p.Assignment().Flows {
			if on && f.From == 1 {
				t.Fatalf("no-relay ablation produced a relay flow %+v", f)
			}
		}
		t.Fatal("admission without relaying should be impossible in this scenario")
	}
}

func TestDisableReplanKeepsStateFeasible(t *testing.T) {
	sys := workload.BuildSystem(workload.SystemConfig{
		NumHosts: 4, CPUPerHost: 4, OutBW: 100, InBW: 100, LinkCap: 50,
	})
	wcfg := workload.DefaultConfig()
	wcfg.NumBaseStreams = 16
	wcfg.NumQueries = 10
	wcfg.Arities = []int{2, 3}
	w := workload.Generate(sys, wcfg)

	cfg := DefaultConfig()
	cfg.SolveTimeout = 300 * time.Millisecond
	cfg.DisableReplan = true
	p := NewPlanner(sys, cfg)
	admitted := map[dsps.StreamID]bool{}
	for _, q := range w.Queries {
		if _, err := p.Submit(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		if p.Admitted(q) {
			admitted[q] = true
		}
		for prev := range admitted {
			if !p.Admitted(prev) {
				t.Fatalf("query %d dropped under replan ablation", prev)
			}
		}
		if err := p.Assignment().Validate(sys); err != nil {
			t.Fatalf("infeasible under replan ablation: %v", err)
		}
	}
}

func TestDisableWarmStartStillSound(t *testing.T) {
	sys, q := twoHostSystem(t)
	cfg := DefaultConfig()
	cfg.SolveTimeout = 3 * time.Second
	cfg.DisableWarmStart = true
	p := NewPlanner(sys, cfg)
	res, err := p.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatal("cold solver failed on a trivial instance")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestDisableReductionMatchesOnTinyInstance(t *testing.T) {
	// With reduction disabled the model covers everything; on a tiny
	// instance both variants must admit the query.
	build := func(disable bool) bool {
		sys, q := twoHostSystem(t)
		cfg := DefaultConfig()
		cfg.SolveTimeout = 3 * time.Second
		cfg.DisableReduction = disable
		cfg.MaxFreeStreams = 1 << 20
		p := NewPlanner(sys, cfg)
		res, err := p.Submit(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Admitted
	}
	if !build(false) || !build(true) {
		t.Fatal("reduction toggle changed a trivial admission")
	}
}

func TestMemoryConstraintBlocksPlacement(t *testing.T) {
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100, Mem: 1}, // too little memory
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100, Mem: 10},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.Operators[op.ID].Mem = 5 // fits host 1 only
	sys.SetRequested(op.Output, true)

	cfg := DefaultConfig()
	cfg.SolveTimeout = 3 * time.Second
	p := NewPlanner(sys, cfg)
	res, err := p.Submit(context.Background(), op.Output)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatal("query rejected although host 1 has memory")
	}
	for pl, on := range p.Assignment().Ops {
		if on && pl.Op == op.ID && pl.Host != 1 {
			t.Fatalf("operator placed on memory-starved host %d", pl.Host)
		}
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatal(err)
	}
}

func TestWithCandidateHostsRestricts(t *testing.T) {
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 2, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)

	cfg := DefaultConfig()
	cfg.SolveTimeout = 3 * time.Second
	p := NewPlanner(sys, cfg)
	// Restrict to hosts {0, 1}; host 2 must stay untouched.
	res, err := p.Submit(context.Background(), op.Output, plan.WithCandidateHosts(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatal("restricted submit rejected a feasible query")
	}
	for pl, on := range p.Assignment().Ops {
		if on && pl.Host == 2 {
			t.Fatalf("operator leaked onto excluded host 2: %+v", pl)
		}
	}
	for f, on := range p.Assignment().Flows {
		if on && (f.From == 2 || f.To == 2) {
			t.Fatalf("flow leaked onto excluded host 2: %+v", f)
		}
	}
}
