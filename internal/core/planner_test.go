package core

import (
	"context"
	"testing"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/workload"
)

// twoHostSystem builds a minimal system: two hosts, two base streams on
// host 0, and one join operator producing a requested composite stream.
func twoHostSystem(t *testing.T) (*dsps.System, dsps.StreamID) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	bs := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, bs)
	op := sys.AddOperator([]dsps.StreamID{a, bs}, 1, 2, "a⋈b")
	sys.SetRequested(op.Output, true)
	if err := sys.Validate(); err != nil {
		t.Fatalf("system invalid: %v", err)
	}
	return sys, op.Output
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SolveTimeout = 2 * time.Second
	return cfg
}

func TestSubmitSingleQuery(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	res, err := p.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("query not admitted: %+v", res)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("resulting plan infeasible: %v", err)
	}
	if p.AdmittedCount() != 1 {
		t.Fatalf("admitted count %d", p.AdmittedCount())
	}
}

func TestSubmitDuplicateQuery(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	if _, err := p.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	res, err := p.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AlreadyAdmitted || !res.Admitted {
		t.Fatalf("duplicate submission not recognised: %+v", res)
	}
}

func TestSubmitUnrequestedStreamErrors(t *testing.T) {
	sys, _ := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	base := dsps.StreamID(0)
	if _, err := p.Submit(context.Background(), base); err == nil {
		t.Fatal("expected error for unrequested stream")
	}
}

func TestRejectionWhenNoCPU(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 0.5, OutBW: 100, InBW: 100}}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "a⋈b") // cost 2 > 0.5
	sys.SetRequested(op.Output, true)

	p := NewPlanner(sys, testConfig())
	res, err := p.Submit(context.Background(), op.Output)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("query admitted despite insufficient CPU")
	}
	if p.AdmittedCount() != 0 {
		t.Fatalf("admitted count %d", p.AdmittedCount())
	}
}

func TestRejectionWhenNoBandwidthForDelivery(t *testing.T) {
	// Result stream rate 50 exceeds the host out-bandwidth 10.
	hosts := []dsps.Host{{ID: 0, CPU: 10, OutBW: 10, InBW: 10}}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 50, 1, "a⋈b")
	sys.SetRequested(op.Output, true)

	p := NewPlanner(sys, testConfig())
	res, err := p.Submit(context.Background(), op.Output)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("query admitted despite insufficient delivery bandwidth")
	}
}

func TestReuseSharedSubQuery(t *testing.T) {
	// Two queries sharing a sub-join: the shared operator must be placed
	// once, not twice.
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 1000, InBW: 1000},
		{ID: 1, CPU: 10, OutBW: 1000, InBW: 1000},
	}
	sys := dsps.NewSystem(hosts, 1000)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	d := sys.AddStream(5, dsps.NoOperator, "d")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	sys.PlaceBase(1, c)
	sys.PlaceBase(1, d)
	shared := sys.AddOperator([]dsps.StreamID{a, b}, 2, 3, "a⋈b")
	q1 := sys.AddOperator([]dsps.StreamID{shared.Output, c}, 1, 1, "ab⋈c")
	q2 := sys.AddOperator([]dsps.StreamID{shared.Output, d}, 1, 1, "ab⋈d")
	sys.SetRequested(q1.Output, true)
	sys.SetRequested(q2.Output, true)

	p := NewPlanner(sys, testConfig())
	r1, err := p.Submit(context.Background(), q1.Output)
	if err != nil || !r1.Admitted {
		t.Fatalf("q1: %+v err=%v", r1, err)
	}
	r2, err := p.Submit(context.Background(), q2.Output)
	if err != nil || !r2.Admitted {
		t.Fatalf("q2: %+v err=%v", r2, err)
	}
	// The shared operator runs exactly once system-wide.
	count := 0
	for pl, on := range p.Assignment().Ops {
		if on && pl.Op == shared.ID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared operator placed %d times, want 1", count)
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("plan infeasible: %v", err)
	}
}

func TestKeepAdmittedAcrossSubmissions(t *testing.T) {
	sys := workload.BuildSystem(workload.SystemConfig{
		NumHosts: 4, CPUPerHost: 3, OutBW: 200, InBW: 200, LinkCap: 200,
	})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = 20
	cfg.NumQueries = 12
	cfg.Arities = []int{2, 3}
	w := workload.Generate(sys, cfg)

	p := NewPlanner(sys, testConfig())
	admittedSoFar := make(map[dsps.StreamID]bool)
	for _, q := range w.Queries {
		if _, err := p.Submit(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		if p.Admitted(q) {
			admittedSoFar[q] = true
		}
		// Every previously admitted query must remain admitted (IV.9).
		for prev := range admittedSoFar {
			if !p.Admitted(prev) {
				t.Fatalf("query %d dropped after later submission", prev)
			}
			if _, ok := p.Assignment().Provides[prev]; !ok {
				t.Fatalf("query %d lost its provider", prev)
			}
		}
		if err := p.Assignment().Validate(sys); err != nil {
			t.Fatalf("infeasible state after submit: %v", err)
		}
	}
	if len(admittedSoFar) == 0 {
		t.Fatal("no queries admitted at all")
	}
}

func TestRemoveGarbageCollects(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	if _, err := p.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(q); err != nil {
		t.Fatal(err)
	}
	if p.AdmittedCount() != 0 {
		t.Fatalf("admitted count %d after removal", p.AdmittedCount())
	}
	for pl, on := range p.Assignment().Ops {
		if on {
			t.Fatalf("operator %v not garbage-collected", pl)
		}
	}
	for f, on := range p.Assignment().Flows {
		if on {
			t.Fatalf("flow %v not garbage-collected", f)
		}
	}
}

func TestRemoveKeepsSharedSupport(t *testing.T) {
	// With two queries sharing a sub-join, removing one must keep the
	// shared operator alive for the other.
	hosts := []dsps.Host{{ID: 0, CPU: 10, OutBW: 1000, InBW: 1000}}
	sys := dsps.NewSystem(hosts, 1000)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	sys.PlaceBase(0, c)
	shared := sys.AddOperator([]dsps.StreamID{a, b}, 2, 3, "a⋈b")
	q1 := sys.AddOperator([]dsps.StreamID{shared.Output, c}, 1, 1, "ab⋈c")
	sys.SetRequested(shared.Output, true) // query 2 is the shared join itself
	sys.SetRequested(q1.Output, true)

	p := NewPlanner(sys, testConfig())
	if _, err := p.Submit(context.Background(), q1.Output); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), shared.Output); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(shared.Output); err != nil {
		t.Fatal(err)
	}
	if !p.Admitted(q1.Output) {
		t.Fatal("remaining query lost")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("state infeasible after removal: %v", err)
	}
	found := false
	for pl, on := range p.Assignment().Ops {
		if on && pl.Op == shared.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("shared operator was garbage-collected while still needed")
	}
}

func TestReplanRestoresQueries(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	if _, err := p.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	results, err := p.Replan(context.Background(), []dsps.StreamID{q})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Admitted {
		t.Fatalf("replan results: %+v", results)
	}
	if !p.Admitted(q) {
		t.Fatal("query lost after replan")
	}
}

func TestBatchSubmission(t *testing.T) {
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 1000, InBW: 1000},
		{ID: 1, CPU: 10, OutBW: 1000, InBW: 1000},
	}
	sys := dsps.NewSystem(hosts, 1000)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	sys.PlaceBase(1, c)
	op1 := sys.AddOperator([]dsps.StreamID{a, b}, 1, 1, "a⋈b")
	op2 := sys.AddOperator([]dsps.StreamID{b, c}, 1, 1, "b⋈c")
	sys.SetRequested(op1.Output, true)
	sys.SetRequested(op2.Output, true)

	p := NewPlanner(sys, testConfig())
	res, err := p.Submit(context.Background(), op1.Output, plan.WithBatch(op2.Output))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted || p.AdmittedCount() != 2 {
		t.Fatalf("batch admission failed: %+v count=%d", res, p.AdmittedCount())
	}
}

func TestDriftedQueries(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	if _, err := p.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	op := sys.Operators[0]
	// Within threshold: no drift.
	got := p.DriftedQueries(map[dsps.OperatorID]float64{op.ID: op.Cost * 1.05}, 0.2)
	if len(got) != 0 {
		t.Fatalf("unexpected drift: %v", got)
	}
	// Exceeds threshold: the query using the operator drifts.
	got = p.DriftedQueries(map[dsps.OperatorID]float64{op.ID: op.Cost * 2}, 0.2)
	if len(got) != 1 || got[0] != q {
		t.Fatalf("drift detection failed: %v", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, testConfig())
	if _, err := p.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), q); err != nil { // duplicate
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Submissions != 2 {
		t.Fatalf("submissions %d", st.Submissions)
	}
	if st.Rejections != 0 {
		t.Fatalf("rejections %d", st.Rejections)
	}
	if st.TotalPlanTime <= 0 {
		t.Fatal("no plan time recorded")
	}
}

func TestZeroValueConfigGetsDefaults(t *testing.T) {
	sys, q := twoHostSystem(t)
	p := NewPlanner(sys, Config{})
	if p.cfg.MaxCandidateHosts <= 0 || p.cfg.SolveTimeout <= 0 {
		t.Fatal("defaults not applied")
	}
	if _, err := p.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}
