package core

import (
	"fmt"

	"sqpr/internal/dsps"
)

// decode converts a solver point back into a full Assignment: the previous
// allocation with every free variable replaced by its solved value.
func (b *builder) decode(x []float64) (*dsps.Assignment, error) {
	if len(x) != b.model.NumVars() {
		return nil, fmt.Errorf("core: solution length %d != model size %d", len(x), b.model.NumVars())
	}
	next := b.p.state.Clone()

	// Remove all previous allocation pieces covered by free variables.
	for s := range next.Provides {
		if b.free[s] {
			delete(next.Provides, s)
		}
	}
	for f := range next.Flows {
		if b.free[f.Stream] {
			delete(next.Flows, f)
		}
	}
	for pl := range next.Ops {
		if b.freeOpSet[pl.Op] {
			delete(next.Ops, pl)
		}
	}

	on := func(v float64) bool { return v > 0.5 }
	for hk, dv := range b.dVar {
		if on(x[dv]) {
			if prev, ok := next.Provides[hk.s]; ok && prev != hk.h {
				return nil, fmt.Errorf("core: stream %d provided by two hosts (%d, %d)", hk.s, prev, hk.h)
			}
			next.Provides[hk.s] = hk.h
		}
	}
	for fk, xv := range b.xVar {
		if on(x[xv]) {
			next.Flows[dsps.Flow{From: fk.from, To: fk.to, Stream: fk.s}] = true
		}
	}
	for zk, zv := range b.zVar {
		if on(x[zv]) {
			next.Ops[dsps.Placement{Host: zk.h, Op: zk.o}] = true
		}
	}

	b.pruneUnused(next)
	return next, nil
}

// pruneUnused garbage-collects operators and flows that no provided stream
// depends on. The MILP is free to leave y/z/x at 1 where the objective
// penalty is zero-ish or where constraint slack permits; physically
// deploying them would waste resources, so SQPR instantiates only the
// support of the admitted queries.
func (b *builder) pruneUnused(a *dsps.Assignment) {
	type hs struct {
		h dsps.HostID
		s dsps.StreamID
	}
	neededOps := make(map[dsps.Placement]bool)
	neededFlows := make(map[dsps.Flow]bool)
	visited := make(map[hs]bool)

	var visit func(h dsps.HostID, s dsps.StreamID)
	visit = func(h dsps.HostID, s dsps.StreamID) {
		k := hs{h, s}
		if visited[k] {
			return
		}
		visited[k] = true
		if b.sys.IsBaseAt(h, s) {
			return
		}
		// Keep every support that exists: local producers first.
		produced := false
		for _, op := range b.sys.ProducersOf(s) {
			pl := dsps.Placement{Host: h, Op: op}
			if a.Ops[pl] {
				neededOps[pl] = true
				produced = true
				for _, in := range b.sys.Operators[op].Inputs {
					visit(h, in)
				}
			}
		}
		if produced {
			return
		}
		// Otherwise keep one inflow (any causal source suffices).
		for m := 0; m < b.sys.NumHosts(); m++ {
			f := dsps.Flow{From: dsps.HostID(m), To: h, Stream: s}
			if a.Flows[f] {
				neededFlows[f] = true
				visit(dsps.HostID(m), s)
				return
			}
		}
	}
	for s, h := range a.Provides {
		visit(h, s)
	}
	// Preserve allocation pieces belonging to fixed (non-free) queries and
	// any fixed consumers of free streams.
	for pl, onv := range a.Ops {
		if !onv {
			continue
		}
		if !b.freeOpSet[pl.Op] {
			neededOps[pl] = true
			for _, in := range b.sys.Operators[pl.Op].Inputs {
				visit(pl.Host, in)
			}
		}
	}
	for f, onv := range a.Flows {
		if onv && !b.free[f.Stream] {
			neededFlows[f] = true
		}
	}
	for pl := range a.Ops {
		if !neededOps[pl] {
			delete(a.Ops, pl)
		}
	}
	for f := range a.Flows {
		if !neededFlows[f] {
			delete(a.Flows, f)
		}
	}
}
