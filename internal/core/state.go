package core

import (
	"fmt"

	"sqpr/internal/plan"
)

// ExportState snapshots the planner's durable state: assignment, admitted
// set and host availability. The model builder, closure cache and solver
// pools are derived machinery and rebuild lazily after an import.
func (p *Planner) ExportState() plan.State {
	return plan.ExportedState(p.sys, p.state, p.admitted)
}

// ImportState replaces the planner state with s (see plan.StatePorter).
// The recovery path applies journaled placements through here, so a
// restart re-admits every query with zero MILP solves.
func (p *Planner) ImportState(s plan.State) error {
	if err := plan.CheckState(p.sys, s); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	plan.ApplyHostStates(p.sys, s.Hosts)
	next := s.Assignment.Clone()
	if p.cfg.Validate {
		if err := next.Validate(p.sys); err != nil {
			return fmt.Errorf("core: imported state infeasible: %w", err)
		}
	}
	p.state = next
	p.admitted = s.AdmittedSet()
	return nil
}
