package core

import (
	"context"
	"fmt"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/milp"
	"sqpr/internal/plan"
)

// Repair is the SQPR planner's churn-repair operation (plan.QueryPlanner).
// It applies the event set's host-state transitions, strips every
// allocation a failure invalidated, and re-plans exactly the affected
// queries with a *delta MILP*: all placements unaffected by the events stay
// pinned (the free set is the closures of the affected queries only — no
// sharing-merge), and the objective pays a migration cost for moving a
// surviving operator off its incumbent host, so repair plans reuse the
// running system instead of rebuilding it (§IV of the paper, applied to
// churn). The solve reuses the warm-start machinery of Submit: the stripped
// incumbent plus a greedy re-admission seeds the branch and bound, and the
// stateful LP solver resolves from its persistent basis.
//
// The event consequences commit even when re-planning fails or the ctx is
// cancelled: the planner state never references a down host after Repair
// returns. Affected queries that cannot be re-placed are reported in
// Dropped and may be resubmitted later (e.g. after a recovery).
//
// Large event sets are repaired in chunks bounded by Config.MaxFreeStreams,
// so each delta solve stays the size of a normal planning call.
func (p *Planner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	ctx = plan.OrBackground(ctx)
	start := time.Now()
	var rr plan.RepairResult
	if err := plan.ApplyEvents(p.sys, events); err != nil {
		return rr, err
	}

	// Hard-affected queries lost support on a down host or drifted: their
	// admission is at stake. Soft-affected queries merely touch a draining
	// host: they stay admitted (constraint (IV.9)) while their placements
	// are freed so the solver can evacuate them.
	hard := p.state.AffectedQueries(p.sys, func(h dsps.HostID) bool { return !p.sys.HostUsable(h) })
	hard = append(hard, plan.DriftedEventQueries(events, hard, func(q dsps.StreamID) bool { return p.admitted[q] })...)
	sortStreams(hard)
	hardSet := make(map[dsps.StreamID]bool, len(hard))
	for _, q := range hard {
		hardSet[q] = true
	}
	affected := p.state.AffectedQueries(p.sys, func(h dsps.HostID) bool { return !p.sys.HostPlaceable(h) })
	for _, q := range hard {
		found := false
		for _, a := range affected {
			if a == q {
				found = true
				break
			}
		}
		if !found {
			affected = append(affected, q)
		}
	}
	sortStreams(affected)
	rr.Affected = affected

	if len(affected) == 0 {
		rr.Admitted = true
		rr.PlanTime = time.Since(start)
		return rr, nil
	}

	// Snapshot for migration accounting; assignments are swapped, never
	// mutated in place, so keeping the pointer suffices.
	before := p.state

	// Commit the failure: strip invalidated pieces, demote hard-affected
	// queries, and prune everything that lost its causal support. The
	// surviving support of the affected queries deliberately stays in the
	// state — even where a lost provide orphaned it — so the delta solve's
	// warm start and stay bonuses can pin it in place instead of
	// rebuilding it from scratch; the final garbage collection below
	// removes whatever the re-plan leaves unused.
	stripped := p.state.Clone()
	for _, q := range hard {
		delete(stripped.Provides, q)
		delete(p.admitted, q)
	}
	stripped.StripFailed(p.sys)
	stripped.PruneAcausal(p.sys)
	p.state = stripped

	// Per-call options, mirroring Submit.
	cfg := plan.Apply(opts)
	total := cfg.Timeout
	if total <= 0 {
		total = time.Duration(len(affected)) * p.cfg.SolveTimeout
	}
	deadline := start.Add(total)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if cfg.Hosts != nil {
		p.allowedHosts = make(map[dsps.HostID]bool, len(cfg.Hosts))
		for _, h := range cfg.Hosts {
			p.allowedHosts[h] = true
		}
		defer func() { p.allowedHosts = nil }()
	}
	p.validate = p.cfg.Validate
	if cfg.Validate != nil {
		p.validate = *cfg.Validate
	}
	p.workers = p.cfg.SolveWorkers
	if cfg.Workers > 0 {
		p.workers = cfg.Workers
	}

	// Drifted queries' operators get no stay bonus: their costs changed,
	// so re-placing them is the point of the repair. Only drift events
	// that actually demoted an admitted query count — the set is
	// intersected with each chunk's free operators, so a drift repair
	// never slows the fast path of an unrelated failure chunk.
	noBonus := make(map[dsps.OperatorID]bool)
	for _, ev := range events {
		if ev.Kind != plan.QueryDrifted || !hardSet[ev.Query] {
			continue
		}
		for _, s := range p.closures.streamsOf(ev.Query) {
			for _, op := range p.sys.ProducersOf(s) {
				noBonus[op] = true
			}
		}
	}

	// Static producibility screen: a query whose every plan alternative
	// depends on a base stream with no usable source cannot be admitted by
	// any solver — drop it now instead of paying a delta solve to prove
	// it. (Recoveries make it producible again; the harness resubmits.)
	producible := p.producibleCheck()
	replan := affected[:0:0]
	for _, q := range affected {
		if p.admitted[q] || producible(q) {
			replan = append(replan, q)
		}
	}

	var firstErr error
	//sqpr:ctxloop each chunk repair polls ctx inside repairChunk
	for _, chunk := range p.repairChunks(replan) {
		res, err := p.repairChunk(ctx, chunk, before, noBonus, deadline)
		rr.Nodes += res.Nodes
		rr.LPIters += res.LPIters
		rr.Factor.Merge(res.Factor)
		rr.Cuts += res.Cuts
		rr.Fixings += res.Fixings
		rr.PresolveFixed += res.PresolveFixed
		rr.SolveStatus = res.SolveStatus
		if err != nil {
			firstErr = err
			break
		}
	}

	// Drop the support the re-plan left unused (orphans of queries that
	// could not be re-admitted, kept alive above for pinning).
	p.state.GarbageCollect(p.sys)

	rr.Admitted = true
	for _, q := range affected {
		if p.admitted[q] {
			rr.Kept = append(rr.Kept, q)
		} else {
			rr.Dropped = append(rr.Dropped, q)
			rr.Admitted = false
			if rr.Reason == plan.ReasonNone {
				rr.Reason = plan.ReasonNoFeasiblePlan
			}
		}
	}
	rr.Migrated = dsps.CountMigrations(p.sys, before, p.state)
	rr.PlanTime = time.Since(start)
	return rr, firstErr
}

// producibleCheck returns a memoised predicate for "stream s can be
// materialised somewhere under the current host states": a base stream
// needs a usable base host; a composite stream needs some producer whose
// inputs are all producible. Cycles through alternative producers resolve
// to false on the cycle path, like every closure walk in this package.
func (p *Planner) producibleCheck() func(s dsps.StreamID) bool {
	const (
		unknown int8 = iota
		yes
		no
	)
	memo := make(map[dsps.StreamID]int8)
	visiting := make(map[dsps.StreamID]bool)
	var rec func(s dsps.StreamID) bool
	rec = func(s dsps.StreamID) bool {
		switch memo[s] {
		case yes:
			return true
		case no:
			return false
		}
		if p.sys.Streams[s].IsBase() {
			ok := false
			for _, h := range p.sys.BaseHosts(s) {
				if p.sys.HostUsable(h) {
					ok = true
					break
				}
			}
			if ok {
				memo[s] = yes
			} else {
				memo[s] = no
			}
			return ok
		}
		if visiting[s] {
			return false
		}
		visiting[s] = true
		defer delete(visiting, s)
		for _, op := range p.sys.ProducersOf(s) {
			ok := true
			for _, in := range p.sys.Operators[op].Inputs {
				if !rec(in) {
					ok = false
					break
				}
			}
			if ok {
				memo[s] = yes
				return true
			}
		}
		memo[s] = no
		return false
	}
	return rec
}

// repairChunks partitions the affected queries so each chunk's merged
// closure stays within the free-stream budget and the hosts its current
// allocations touch stay within the candidate-host budget — the same two
// limits freeSet's sharing-merge enforces, which keep every delta solve
// the size (and cost) of an ordinary planning call. A single query whose
// closure exceeds the budgets still gets its own chunk.
func (p *Planner) repairChunks(affected []dsps.StreamID) [][]dsps.StreamID {
	var chunks [][]dsps.StreamID
	var cur []dsps.StreamID
	free := make(map[dsps.StreamID]bool)
	for _, q := range affected {
		cl := p.closures.streamsOf(q)
		fresh := 0
		for _, s := range cl {
			if !free[s] {
				fresh++
			}
		}
		if len(cur) > 0 &&
			(len(free)+fresh > p.cfg.MaxFreeStreams ||
				p.hostsTouched(free, cl) > p.cfg.MaxCandidateHosts) {
			chunks = append(chunks, cur)
			cur = nil
			free = make(map[dsps.StreamID]bool)
		}
		cur = append(cur, q)
		for _, s := range cl {
			free[s] = true
		}
		free[q] = true
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// greedyRepair attempts the additive fast path for one chunk (see
// repairChunk): re-admit every chunk query with the greedy planner on top
// of the pinned surviving allocation. It reports ok=false — falling back
// to the delta MILP — when any query stays unadmitted, when a draining
// candidate host should be evacuated, when drift asks for re-placement of
// an operator in this chunk, or when the warm start is disabled (its
// ablation must also ablate this).
func (b *builder) greedyRepair(chunkDrift bool, deadline time.Time) (*dsps.Assignment, bool) {
	if b.p.cfg.DisableWarmStart || chunkDrift {
		return nil, false
	}
	for _, h := range b.hosts {
		if b.sys.Hosts[h].State == dsps.HostDraining {
			return nil, false
		}
	}
	cand := b.p.state.Clone()
	b.track.reset(b.sys, cand)
	b.seedArm(deadline)
	for _, q := range b.queries {
		if _, ok := cand.Provides[q]; ok {
			continue
		}
		if !b.greedyAdmit(cand, q) {
			return nil, false
		}
	}
	return cand, true
}

// repairChunk runs one delta solve over the chunk's pinned free set.
func (p *Planner) repairChunk(ctx context.Context, chunk []dsps.StreamID, before *dsps.Assignment, noBonus map[dsps.OperatorID]bool, deadline time.Time) (Result, error) {
	start := time.Now()
	var res Result
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Pinned free set: the closures of the chunk's queries, nothing else.
	free := make(map[dsps.StreamID]bool)
	for _, q := range chunk {
		for _, s := range p.closures.streamsOf(q) {
			free[s] = true
		}
		free[q] = true
	}
	b := p.newBuilderWith(chunk, free)
	b.dAllowed = make(map[dsps.StreamID]bool, len(chunk))
	for _, q := range chunk {
		b.dAllowed[q] = true
	}
	res.FreeStreams = len(b.freeStreams)
	res.FreeOps = len(b.freeOps)
	res.CandidateHosts = len(b.hosts)

	// Each chunk gets the batch-scaled solver budget of an ordinary
	// planning call (and never more than the repair's global deadline):
	// repair latency must stay proportional to the damage, so one
	// degenerate chunk relaxation cannot eat the whole repair budget —
	// the warm incumbent stands in when the deadline cuts a solve short.
	if d := start.Add(time.Duration(len(chunk)) * p.cfg.SolveTimeout); d.Before(deadline) {
		deadline = d
	}

	// Does this chunk actually touch a drifted operator? Only then must
	// the re-optimisation machinery below treat it as a drift repair.
	chunkDrift := false
	for op := range noBonus {
		if b.freeOpSet[op] {
			chunkDrift = true
			break
		}
	}

	// Migration costs: keeping a surviving free operator on the placeable
	// host it already runs on earns the stay bonus; placements on draining
	// hosts earn nothing, so evacuation is free and staying is not.
	for pl, on := range before.Ops {
		if !on || !b.freeOpSet[pl.Op] || noBonus[pl.Op] {
			continue
		}
		if _, cand := b.hostIdx[pl.Host]; cand && p.sys.HostPlaceable(pl.Host) {
			b.stayBonus[zKey{pl.Host, pl.Op}] = p.cfg.MigrationWeight
			if prev, ok := b.preferHost[pl.Op]; !ok || pl.Host < prev {
				b.preferHost[pl.Op] = pl.Host
			}
		}
	}

	// Fast path for pure failure repair: the pinned greedy only ever adds
	// to the surviving allocation (it never moves a placement), preferring
	// each severed operator's former host. If it re-admits every chunk
	// query, the result is simultaneously admission-complete and
	// migration-minimal — no delta solve can keep more queries or move
	// fewer survivors — so the MILP is skipped. Drain chunks (a draining
	// candidate host needs evacuating) and drift chunks (re-placement is
	// the goal) always take the full solve.
	if fast, ok := b.greedyRepair(chunkDrift, deadline); ok {
		p.state = fast
		res.Admitted = true
		for _, q := range chunk {
			if _, provided := fast.Provides[q]; provided {
				p.admitted[q] = true
			}
		}
		res.PlanTime = time.Since(start)
		p.stats.Record(res)
		return res, nil
	}

	model := b.build()
	res.ModelVars = model.NumVars()
	opts := milp.Options{
		Ctx:                  ctx,
		Deadline:             deadline,
		MaxNodes:             p.cfg.MaxNodes,
		Workers:              p.workers,
		DisableTreeReduction: p.cfg.DisableTreeReduction,
		// Submit's gap tolerances are calibrated to admission counts (λ1
		// multiples); repair additionally optimises migration terms of
		// magnitude MigrationWeight, so the allowed slack must sit below
		// one stay bonus or the solver may legally return a plan with
		// avoidable migrations.
		AbsGapTol: 0.25 * p.cfg.MigrationWeight,
	}
	// For pure failure chunks the pinned incumbent — survivors in place,
	// severed queries greedily rebuilt at their former hosts — is already
	// near-optimal, and the tight gap above would burn the whole node
	// budget proving it: stop once the search stops improving (improving
	// nodes, an extra admission or an avoided migration, reset the
	// counter). Drain and drift chunks exist to move away from the
	// incumbent, so they search their full budget — and a deeper one: the
	// warm start still carries the placements those chunks must undo, so
	// the evacuation optimum only surfaces once the search has re-derived
	// it node by node, which a Submit-sized node cap routinely cuts short.
	thorough := chunkDrift
	for _, h := range b.hosts {
		if b.sys.Hosts[h].State == dsps.HostDraining {
			thorough = true
			break
		}
	}
	if thorough {
		opts.MaxNodes = 8 * p.cfg.MaxNodes
	} else {
		opts.StallNodes = stallNodesLarge
	}
	if !p.cfg.DisableWarmStart {
		opts.Incumbent = b.incumbent(deadline)
	}
	sol := model.Solve(opts)
	res.SolveStatus = sol.Status
	res.Nodes = sol.Nodes
	res.LPIters = sol.LPIters
	res.Factor = sol.Factor
	res.Cuts = sol.Cuts
	res.Fixings = sol.Fixings
	res.PresolveFixed = sol.PresolveFixed
	res.Stalled = sol.Stalled

	if sol.Cancelled || ctx.Err() != nil {
		// The degraded state is already committed; the chunk simply stays
		// un-repaired (its hard queries remain dropped).
		res.PlanTime = time.Since(start)
		return res, ctx.Err()
	}
	if sol.X == nil {
		// No feasible point within the budget (only possible with the
		// warm start disabled): keep the stripped state for this chunk.
		res.Reason = plan.ReasonNoFeasiblePlan
		res.PlanTime = time.Since(start)
		p.stats.Record(res)
		return res, nil
	}

	next, err := b.decode(sol.X)
	if err != nil {
		return res, fmt.Errorf("core: decoding repair solution: %w", err)
	}
	if p.validate {
		if err := next.Validate(p.sys); err != nil {
			res.Reason = plan.ReasonValidationFailed
			return res, fmt.Errorf("core: repair produced infeasible plan: %w", err)
		}
	}

	p.state = next
	res.Admitted = true
	for _, q := range chunk {
		if _, ok := next.Provides[q]; ok {
			p.admitted[q] = true
		} else {
			delete(p.admitted, q)
			res.Admitted = false
		}
	}
	if !res.Admitted {
		res.Reason = plan.ReasonNoFeasiblePlan
	}
	res.PlanTime = time.Since(start)
	p.stats.Record(res)
	return res, nil
}
