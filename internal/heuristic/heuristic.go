// Package heuristic implements the hand-crafted baseline planner of §V-A:
// for every new query it enumerates all abstract query plans (join trees),
// tries to implement each plan on every host — aggressively reusing
// already-materialised sub-query streams — and picks the feasible candidate
// with the best weighted objective. Unlike SQPR it never revisits previous
// placement decisions and never splits a plan across multiple hosts.
package heuristic

import (
	"math"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
)

// Planner is the heuristic baseline.
type Planner struct {
	sys      *dsps.System
	state    *dsps.Assignment
	weights  core.Weights
	admitted map[dsps.StreamID]bool

	// MaxPlans caps abstract plan enumeration per query (exhaustive for
	// the paper's 2- to 4-way joins; 5-way trees are pruned beyond this).
	MaxPlans int
}

// New creates a heuristic planner with the same objective weights as SQPR.
func New(sys *dsps.System, w core.Weights) *Planner {
	return &Planner{
		sys:      sys,
		state:    dsps.NewAssignment(),
		weights:  w,
		admitted: make(map[dsps.StreamID]bool),
		MaxPlans: 256,
	}
}

// Assignment exposes the current allocation (do not mutate).
func (p *Planner) Assignment() *dsps.Assignment { return p.state }

// Admitted reports whether q is currently served.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Submit plans one query; returns whether it was admitted.
func (p *Planner) Submit(q dsps.StreamID) bool {
	if p.admitted[q] {
		return true
	}
	plans := p.abstractPlans(q)
	bestScore := math.Inf(-1)
	var best *dsps.Assignment
	var bestHost dsps.HostID
	for _, plan := range plans {
		for h := 0; h < p.sys.NumHosts(); h++ {
			cand := p.implement(plan, q, dsps.HostID(h))
			if cand == nil {
				continue
			}
			if score := p.score(cand); score > bestScore {
				bestScore = score
				best = cand
				bestHost = dsps.HostID(h)
			}
		}
	}
	if best == nil {
		return false
	}
	best.Provides[q] = bestHost
	if best.Validate(p.sys) != nil {
		return false
	}
	p.state = best
	p.admitted[q] = true
	return true
}

// abstractPlan is one join tree: the operator choice for the result stream
// and, recursively, for each composite input.
type abstractPlan struct {
	op     dsps.OperatorID
	inputs []*abstractPlan // nil entries are leaves (streams taken as-is)
	inIDs  []dsps.StreamID
}

// abstractPlans enumerates the join trees producing q.
func (p *Planner) abstractPlans(q dsps.StreamID) []*abstractPlan {
	return p.plansFor(q, p.MaxPlans)
}

func (p *Planner) plansFor(s dsps.StreamID, budget int) []*abstractPlan {
	producers := p.sys.ProducersOf(s)
	if len(producers) == 0 {
		return nil
	}
	var out []*abstractPlan
	for _, opID := range producers {
		op := &p.sys.Operators[opID]
		// Cartesian product of sub-plans for each input; a leaf (nil)
		// means "obtain the stream as-is" which, for composite inputs,
		// is only valid when it is already materialised — the
		// implementation step checks that. To keep the baseline honest
		// we enumerate both compute-here and take-as-leaf variants for
		// composite inputs.
		choices := make([][]*abstractPlan, len(op.Inputs))
		for i, in := range op.Inputs {
			subs := []*abstractPlan{nil} // leaf variant
			if !p.sys.Streams[in].IsBase() {
				subs = append(subs, p.plansFor(in, budget/2)...)
			}
			choices[i] = subs
		}
		combos := cartesian(choices, budget-len(out))
		for _, combo := range combos {
			out = append(out, &abstractPlan{op: opID, inputs: combo, inIDs: op.Inputs})
			if len(out) >= budget {
				return out
			}
		}
	}
	return out
}

func cartesian(choices [][]*abstractPlan, budget int) [][]*abstractPlan {
	if budget <= 0 {
		budget = 1
	}
	acc := [][]*abstractPlan{nil}
	for _, ch := range choices {
		var next [][]*abstractPlan
		for _, prefix := range acc {
			for _, c := range ch {
				row := make([]*abstractPlan, 0, len(prefix)+1)
				row = append(row, prefix...)
				row = append(row, c)
				next = append(next, row)
				if len(next) >= budget*4 {
					break
				}
			}
		}
		acc = next
	}
	return acc
}

// implement tries to realise the plan with all its new operators on host h,
// fetching input streams from hosts that already have them. Returns the
// resulting assignment or nil when infeasible.
func (p *Planner) implement(plan *abstractPlan, q dsps.StreamID, h dsps.HostID) *dsps.Assignment {
	cand := p.state.Clone()
	if !p.realise(cand, plan, h) {
		return nil
	}
	// Delivery bandwidth for the result stream.
	u := cand.ComputeUsage(p.sys)
	if u.Out[h]+p.sys.Streams[q].Rate > p.sys.Hosts[h].OutBW+1e-9 {
		return nil
	}
	return cand
}

// realise recursively materialises the plan node's output at host h.
func (p *Planner) realise(cand *dsps.Assignment, plan *abstractPlan, h dsps.HostID) bool {
	op := &p.sys.Operators[plan.op]
	// Reuse first: if the output already exists somewhere, fetch it
	// (the paper's heuristic favours transferring complete sub-queries).
	if p.fetch(cand, op.Output, h) {
		return true
	}
	// Otherwise place the operator here.
	u := cand.ComputeUsage(p.sys)
	if u.CPU[h]+op.Cost > p.sys.Hosts[h].CPU+1e-9 {
		return false
	}
	for i, in := range plan.inIDs {
		sub := plan.inputs[i]
		if sub == nil {
			if !p.fetch(cand, in, h) {
				return false
			}
			continue
		}
		if !p.realise(cand, sub, h) {
			return false
		}
	}
	cand.Ops[dsps.Placement{Host: h, Op: plan.op}] = true
	return true
}

// fetch makes stream s available at h by reusing an existing copy or a base
// location; it never computes.
func (p *Planner) fetch(cand *dsps.Assignment, s dsps.StreamID, h dsps.HostID) bool {
	if cand.Available(p.sys, h, s) {
		return true
	}
	rate := p.sys.Streams[s].Rate
	try := func(m dsps.HostID) bool {
		if m == h {
			return false
		}
		u := cand.ComputeUsage(p.sys)
		if u.Link[m][h]+rate > p.sys.LinkCap[m][h]+1e-9 ||
			u.Out[m]+rate > p.sys.Hosts[m].OutBW+1e-9 ||
			u.In[h]+rate > p.sys.Hosts[h].InBW+1e-9 {
			return false
		}
		cand.Flows[dsps.Flow{From: m, To: h, Stream: s}] = true
		return true
	}
	// Prefer hosts that already materialised s (sub-query reuse)...
	for m := 0; m < p.sys.NumHosts(); m++ {
		if cand.Available(p.sys, dsps.HostID(m), s) && try(dsps.HostID(m)) {
			return true
		}
	}
	// ...then base locations.
	if p.sys.Streams[s].IsBase() {
		for _, m := range p.sys.BaseHosts(s) {
			if try(m) {
				return true
			}
		}
	}
	return false
}

// score evaluates the weighted objective (III.3) of a full assignment.
func (p *Planner) score(a *dsps.Assignment) float64 {
	u := a.ComputeUsage(p.sys)
	totalLink := p.sys.TotalLinkCap()
	if totalLink <= 0 {
		totalLink = 1
	}
	totalCPU := p.sys.TotalCPU()
	if totalCPU <= 0 {
		totalCPU = 1
	}
	maxCPU := 0.0
	for _, h := range p.sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	if maxCPU <= 0 {
		maxCPU = 1
	}
	w := p.weights
	return w.L1*float64(a.SatisfiedQueries()+1) - // +1 for the query being placed
		w.L2*u.Network/totalLink -
		w.L3*u.TotalCPU()/totalCPU -
		w.L4*u.MaxCPU()/maxCPU
}
