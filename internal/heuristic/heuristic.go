// Package heuristic implements the hand-crafted baseline planner of §V-A:
// for every new query it enumerates all abstract query plans (join trees),
// tries to implement each plan on every host — aggressively reusing
// already-materialised sub-query streams — and picks the feasible candidate
// with the best weighted objective. Unlike SQPR it never revisits previous
// placement decisions and never splits a plan across multiple hosts.
package heuristic

import (
	"context"
	"fmt"
	"math"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// Planner is the heuristic baseline. It implements plan.QueryPlanner and
// is not safe for concurrent use.
type Planner struct {
	sys      *dsps.System
	state    *dsps.Assignment
	weights  core.Weights
	admitted map[dsps.StreamID]bool
	stats    plan.Stats

	// MaxPlans caps abstract plan enumeration per query (exhaustive for
	// the paper's 2- to 4-way joins; 5-way trees are pruned beyond this).
	MaxPlans int
}

// New creates a heuristic planner with the same objective weights as SQPR.
func New(sys *dsps.System, w core.Weights) *Planner {
	return &Planner{
		sys:      sys,
		state:    dsps.NewAssignment(),
		weights:  w,
		admitted: make(map[dsps.StreamID]bool),
		MaxPlans: 256,
	}
}

// Assignment exposes the current allocation (do not mutate).
func (p *Planner) Assignment() *dsps.Assignment { return p.state }

// Admitted reports whether q is currently served.
func (p *Planner) Admitted(q dsps.StreamID) bool { return p.admitted[q] }

// AdmittedCount returns the number of admitted queries.
func (p *Planner) AdmittedCount() int { return len(p.admitted) }

// Stats returns cumulative planner telemetry.
func (p *Planner) Stats() plan.Stats { return p.stats }

// Submit plans query q (and any plan.WithBatch companions, sequentially —
// the heuristic has no joint optimisation). plan.WithCandidateHosts
// restricts the hosts tried, plan.WithTimeout bounds the candidate search
// and plan.WithValidation toggles the feasibility re-check. Cancelling ctx
// aborts the search and leaves the planner state unchanged.
func (p *Planner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	ctx = plan.OrBackground(ctx)
	start := time.Now()
	cfg := plan.Apply(opts)
	var res plan.Result

	qs := cfg.Queries(q)
	for _, query := range qs {
		if err := plan.CheckStream(p.sys, query); err != nil {
			return plan.Result{}, fmt.Errorf("heuristic: %w", err)
		}
	}

	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	// Snapshot for rollback: an error mid-batch (ctx cancellation) must
	// leave the planner state unchanged. Assignments are swapped, never
	// mutated in place, so keeping the old pointer suffices. A
	// single-query call needs no snapshot — submitOne only errors before
	// it mutates — so the O(admitted) copy is skipped on the hot path.
	var prevState *dsps.Assignment
	var prevAdmitted map[dsps.StreamID]bool
	if len(qs) > 1 {
		prevState = p.state
		prevAdmitted = plan.CopyAdmitted(p.admitted)
	}

	allAdmitted := true
	anyFresh := false
	for _, query := range qs {
		if p.admitted[query] {
			res.AlreadyAdmitted = true
			continue
		}
		anyFresh = true
		ok, reason, err := p.submitOne(ctx, query, deadline, &cfg)
		if err != nil {
			if prevAdmitted != nil {
				p.state = prevState
				p.admitted = prevAdmitted
			}
			return plan.Result{}, err
		}
		if !ok {
			allAdmitted = false
			res.Reason = reason
		}
	}
	res.Admitted = allAdmitted
	if res.Admitted || !anyFresh {
		res.Reason = plan.ReasonNone
	}
	res.PlanTime = time.Since(start)
	p.stats.Record(res)
	return res, nil
}

// Remove withdraws an admitted query and garbage-collects every operator
// and flow that no remaining query depends on.
func (p *Planner) Remove(q dsps.StreamID) error {
	if err := plan.CheckStream(p.sys, q); err != nil {
		return fmt.Errorf("heuristic: %w", err)
	}
	if !p.admitted[q] {
		return fmt.Errorf("heuristic: query %d: %w", q, plan.ErrNotAdmitted)
	}
	delete(p.admitted, q)
	delete(p.state.Provides, q)
	p.state.GarbageCollect(p.sys)
	return nil
}

// Repair handles churn events with the shared fallback: remove the queries
// the events invalidated and resubmit them through this planner's own
// Submit, which re-places them on the surviving hosts.
func (p *Planner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	return plan.RepairByResubmit(ctx, p.sys, p, events, opts...)
}

// submitOne plans a single fresh query; reports admission and, on
// rejection, the machine-readable reason.
func (p *Planner) submitOne(ctx context.Context, q dsps.StreamID, deadline time.Time, cfg *plan.SubmitConfig) (bool, plan.Reason, error) {
	if err := ctx.Err(); err != nil {
		return false, plan.ReasonNone, err
	}
	allowed := cfg.HostSet()
	plans := p.abstractPlans(q)
	bestScore := math.Inf(-1)
	var best *dsps.Assignment
	var bestHost dsps.HostID
	for _, pl := range plans {
		if err := ctx.Err(); err != nil {
			return false, plan.ReasonNone, err
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break // best candidate so far stands, as with a solver timeout
		}
		for h := 0; h < p.sys.NumHosts(); h++ {
			if allowed != nil && !allowed[dsps.HostID(h)] {
				continue
			}
			if !p.sys.HostPlaceable(dsps.HostID(h)) {
				continue // down or draining: no new assembly host
			}
			cand := p.implement(pl, q, dsps.HostID(h))
			if cand == nil {
				continue
			}
			if score := p.score(cand); score > bestScore {
				bestScore = score
				best = cand
				bestHost = dsps.HostID(h)
			}
		}
	}
	if best == nil {
		return false, plan.ReasonNoFeasiblePlan, nil
	}
	best.Provides[q] = bestHost
	if cfg.Validate == nil || *cfg.Validate {
		if best.Validate(p.sys) != nil {
			return false, plan.ReasonValidationFailed, nil
		}
	}
	p.state = best
	p.admitted[q] = true
	return true, plan.ReasonNone, nil
}

// abstractPlan is one join tree: the operator choice for the result stream
// and, recursively, for each composite input.
type abstractPlan struct {
	op     dsps.OperatorID
	inputs []*abstractPlan // nil entries are leaves (streams taken as-is)
	inIDs  []dsps.StreamID
}

// abstractPlans enumerates the join trees producing q.
func (p *Planner) abstractPlans(q dsps.StreamID) []*abstractPlan {
	return p.plansFor(q, p.MaxPlans)
}

func (p *Planner) plansFor(s dsps.StreamID, budget int) []*abstractPlan {
	producers := p.sys.ProducersOf(s)
	if len(producers) == 0 {
		return nil
	}
	var out []*abstractPlan
	for _, opID := range producers {
		op := &p.sys.Operators[opID]
		// Cartesian product of sub-plans for each input; a leaf (nil)
		// means "obtain the stream as-is" which, for composite inputs,
		// is only valid when it is already materialised — the
		// implementation step checks that. To keep the baseline honest
		// we enumerate both compute-here and take-as-leaf variants for
		// composite inputs.
		choices := make([][]*abstractPlan, len(op.Inputs))
		for i, in := range op.Inputs {
			subs := []*abstractPlan{nil} // leaf variant
			if !p.sys.Streams[in].IsBase() {
				subs = append(subs, p.plansFor(in, budget/2)...)
			}
			choices[i] = subs
		}
		combos := cartesian(choices, budget-len(out))
		for _, combo := range combos {
			out = append(out, &abstractPlan{op: opID, inputs: combo, inIDs: op.Inputs})
			if len(out) >= budget {
				return out
			}
		}
	}
	return out
}

func cartesian(choices [][]*abstractPlan, budget int) [][]*abstractPlan {
	if budget <= 0 {
		budget = 1
	}
	acc := [][]*abstractPlan{nil}
	for _, ch := range choices {
		var next [][]*abstractPlan
		for _, prefix := range acc {
			for _, c := range ch {
				row := make([]*abstractPlan, 0, len(prefix)+1)
				row = append(row, prefix...)
				row = append(row, c)
				next = append(next, row)
				if len(next) >= budget*4 {
					break
				}
			}
		}
		acc = next
	}
	return acc
}

// implement tries to realise the plan with all its new operators on host h,
// fetching input streams from hosts that already have them. Returns the
// resulting assignment or nil when infeasible.
func (p *Planner) implement(plan *abstractPlan, q dsps.StreamID, h dsps.HostID) *dsps.Assignment {
	cand := p.state.Clone()
	if !p.realise(cand, plan, h) {
		return nil
	}
	// Delivery bandwidth for the result stream.
	u := cand.ComputeUsage(p.sys)
	if u.Out[h]+p.sys.Streams[q].Rate > p.sys.Hosts[h].OutBW+1e-9 {
		return nil
	}
	return cand
}

// realise recursively materialises the plan node's output at host h.
func (p *Planner) realise(cand *dsps.Assignment, plan *abstractPlan, h dsps.HostID) bool {
	op := &p.sys.Operators[plan.op]
	// Reuse first: if the output already exists somewhere, fetch it
	// (the paper's heuristic favours transferring complete sub-queries).
	if p.fetch(cand, op.Output, h) {
		return true
	}
	// Otherwise place the operator here.
	u := cand.ComputeUsage(p.sys)
	if u.CPU[h]+op.Cost > p.sys.Hosts[h].CPU+1e-9 {
		return false
	}
	for i, in := range plan.inIDs {
		sub := plan.inputs[i]
		if sub == nil {
			if !p.fetch(cand, in, h) {
				return false
			}
			continue
		}
		if !p.realise(cand, sub, h) {
			return false
		}
	}
	cand.Ops[dsps.Placement{Host: h, Op: plan.op}] = true
	return true
}

// fetch makes stream s available at h by reusing an existing copy or a base
// location; it never computes.
func (p *Planner) fetch(cand *dsps.Assignment, s dsps.StreamID, h dsps.HostID) bool {
	if cand.Available(p.sys, h, s) {
		return true
	}
	rate := p.sys.Streams[s].Rate
	try := func(m dsps.HostID) bool {
		if m == h || !p.sys.HostUsable(m) {
			return false
		}
		u := cand.ComputeUsage(p.sys)
		if u.Link[m][h]+rate > p.sys.LinkCap[m][h]+1e-9 ||
			u.Out[m]+rate > p.sys.Hosts[m].OutBW+1e-9 ||
			u.In[h]+rate > p.sys.Hosts[h].InBW+1e-9 {
			return false
		}
		cand.Flows[dsps.Flow{From: m, To: h, Stream: s}] = true
		return true
	}
	// Prefer hosts that already materialised s (sub-query reuse)...
	for m := 0; m < p.sys.NumHosts(); m++ {
		if cand.Available(p.sys, dsps.HostID(m), s) && try(dsps.HostID(m)) {
			return true
		}
	}
	// ...then base locations.
	if p.sys.Streams[s].IsBase() {
		for _, m := range p.sys.BaseHosts(s) {
			if try(m) {
				return true
			}
		}
	}
	return false
}

// score evaluates the weighted objective (III.3) of a full assignment.
func (p *Planner) score(a *dsps.Assignment) float64 {
	u := a.ComputeUsage(p.sys)
	totalLink := p.sys.TotalLinkCap()
	if totalLink <= 0 {
		totalLink = 1
	}
	totalCPU := p.sys.TotalCPU()
	if totalCPU <= 0 {
		totalCPU = 1
	}
	maxCPU := 0.0
	for _, h := range p.sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	if maxCPU <= 0 {
		maxCPU = 1
	}
	w := p.weights
	return w.L1*float64(a.SatisfiedQueries()+1) - // +1 for the query being placed
		w.L2*u.Network/totalLink -
		w.L3*u.TotalCPU()/totalCPU -
		w.L4*u.MaxCPU()/maxCPU
}
