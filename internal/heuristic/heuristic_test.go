package heuristic

import (
	"context"
	"testing"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/workload"
)

// submitOK drives the unified Submit and reports admission.
func submitOK(p *Planner, q dsps.StreamID) bool {
	res, err := p.Submit(context.Background(), q)
	return err == nil && res.Admitted
}

func buildSmall(t *testing.T) (*dsps.System, dsps.StreamID) {
	t.Helper()
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
	}
	sys := dsps.NewSystem(hosts, 50)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(1, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)
	return sys, op.Output
}

func TestAdmitSimpleQuery(t *testing.T) {
	sys, q := buildSmall(t)
	p := New(sys, core.PaperWeights())
	if !submitOK(p, q) {
		t.Fatal("query rejected")
	}
	if !p.Admitted(q) || p.AdmittedCount() != 1 {
		t.Fatal("bookkeeping wrong")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("plan infeasible: %v", err)
	}
}

func TestDuplicateSubmission(t *testing.T) {
	sys, q := buildSmall(t)
	p := New(sys, core.PaperWeights())
	if !submitOK(p, q) || !submitOK(p, q) {
		t.Fatal("duplicate not accepted")
	}
	if p.AdmittedCount() != 1 {
		t.Fatalf("count %d", p.AdmittedCount())
	}
}

func TestRejectWhenNoCPU(t *testing.T) {
	hosts := []dsps.Host{{ID: 0, CPU: 1, OutBW: 100, InBW: 100}}
	sys := dsps.NewSystem(hosts, 50)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(0, b)
	op := sys.AddOperator([]dsps.StreamID{a, b}, 1, 5, "ab")
	sys.SetRequested(op.Output, true)
	p := New(sys, core.PaperWeights())
	if submitOK(p, op.Output) {
		t.Fatal("admitted despite insufficient CPU")
	}
}

func TestReusesExistingSubQuery(t *testing.T) {
	hosts := []dsps.Host{
		{ID: 0, CPU: 10, OutBW: 200, InBW: 200},
		{ID: 1, CPU: 10, OutBW: 200, InBW: 200},
	}
	sys := dsps.NewSystem(hosts, 100)
	a := sys.AddStream(5, dsps.NoOperator, "a")
	b := sys.AddStream(5, dsps.NoOperator, "b")
	c := sys.AddStream(5, dsps.NoOperator, "c")
	d := sys.AddStream(5, dsps.NoOperator, "d")
	for _, s := range []dsps.StreamID{a, b, c, d} {
		sys.PlaceBase(0, s)
	}
	shared := sys.AddOperator([]dsps.StreamID{a, b}, 2, 3, "ab")
	q1 := sys.AddOperator([]dsps.StreamID{shared.Output, c}, 1, 1, "abc")
	q2 := sys.AddOperator([]dsps.StreamID{shared.Output, d}, 1, 1, "abd")
	sys.SetRequested(q1.Output, true)
	sys.SetRequested(q2.Output, true)

	p := New(sys, core.PaperWeights())
	if !submitOK(p, q1.Output) || !submitOK(p, q2.Output) {
		t.Fatal("queries rejected")
	}
	count := 0
	for pl, on := range p.Assignment().Ops {
		if on && pl.Op == shared.ID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared op placed %d times", count)
	}
}

func TestAbstractPlanEnumeration(t *testing.T) {
	// A 3-way query with a full plan space must yield multiple abstract
	// plans (different join orders).
	sys := workload.BuildSystem(workload.SystemConfig{NumHosts: 2, CPUPerHost: 10, OutBW: 100, InBW: 100, LinkCap: 50})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = 3
	cfg.NumQueries = 1
	cfg.Arities = []int{3}
	w := workload.Generate(sys, cfg)
	p := New(sys, core.PaperWeights())
	plans := p.abstractPlans(w.Queries[0])
	if len(plans) < 3 {
		t.Fatalf("expected >=3 abstract plans for a 3-way join, got %d", len(plans))
	}
}

func TestWorkloadRun(t *testing.T) {
	sys := workload.BuildSystem(workload.SystemConfig{NumHosts: 4, CPUPerHost: 5, OutBW: 80, InBW: 80, LinkCap: 40})
	cfg := workload.DefaultConfig()
	cfg.NumBaseStreams = 20
	cfg.NumQueries = 15
	cfg.Arities = []int{2, 3}
	w := workload.Generate(sys, cfg)
	p := New(sys, core.PaperWeights())
	admitted := 0
	for _, q := range w.Queries {
		if submitOK(p, q) {
			admitted++
		}
		if err := p.Assignment().Validate(sys); err != nil {
			t.Fatalf("infeasible after submit: %v", err)
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if admitted != p.AdmittedCount() {
		// Duplicates report Submit=true without increasing the count.
		if admitted < p.AdmittedCount() {
			t.Fatalf("count mismatch: %d vs %d", admitted, p.AdmittedCount())
		}
	}
}
