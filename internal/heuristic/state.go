package heuristic

import (
	"fmt"

	"sqpr/internal/plan"
)

// ExportState snapshots the planner's durable state (see plan.StatePorter).
func (p *Planner) ExportState() plan.State {
	return plan.ExportedState(p.sys, p.state, p.admitted)
}

// ImportState replaces the planner state with s (see plan.StatePorter).
func (p *Planner) ImportState(s plan.State) error {
	if err := plan.CheckState(p.sys, s); err != nil {
		return fmt.Errorf("heuristic: %w", err)
	}
	plan.ApplyHostStates(p.sys, s.Hosts)
	p.state = s.Assignment.Clone()
	p.admitted = s.AdmittedSet()
	return nil
}
