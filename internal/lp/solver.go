package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"sqpr/internal/invariant"
)

// Solver is a reusable sparse revised-simplex engine. Instead of carrying a
// dense tableau, it stores the constraint matrix once in compressed-sparse-
// column form and represents the basis inverse implicitly: an LU
// factorization of the basis matrix refreshed every few dozen pivots, plus a
// product-form eta file for the pivots in between. Every tableau quantity
// the simplex method needs is recovered on demand by two sparse triangular
// solves — FTRAN (B⁻¹·a, entering columns and basic values) and BTRAN
// (B⁻ᵀ·e, pivot rows and duals) — so per-pivot cost scales with the
// nonzeros involved, not with rows × columns.
//
// The public surface is identical to the dense reference engine
// (DenseSolver): Load/ReSolve with warm restarts, Fix/Unfix bound pinning,
// lazy row activation, AppendRows cut appending, SaveBasis/RestoreBasis
// snapshots, GomoryCuts, and ReducedCost/RowDual sensitivities. Internal
// conventions differ in one deliberate way: rows are stored in their natural
// orientation with slack coefficient +1 (LE) or −1 (GE) and the RHS is never
// sign-normalised. Tableau rows B⁻¹A are invariant under row scaling, so
// every externally observable quantity (duals, reduced costs, Gomory cuts)
// matches the dense engine's.
//
// The solver is not safe for concurrent use; use one per goroutine.
type Solver struct {
	prob *Problem

	mAll    int // total constraint rows of the problem
	m       int // active rows (= basis size)
	nStruct int // structural variables
	nSlack  int // inequality rows of the problem (potential slack columns)

	// Row reserve: arena headroom for rows appended after Load (cutting
	// planes). Arenas are sized for mAllCap rows and nSlackCap slack columns
	// up front, so appending and warm-activating rows never reallocates.
	reserve   int
	mAllCap   int // mAll + reserve
	nSlackCap int // nSlack at Load + reserve
	colCap    int // worst-case live columns: nStruct + nSlackCap + mAllCap

	n         int // live total columns (structural + aux)
	nArtStart int // first artificial column at the last cold rebuild

	lazyMode   bool
	activeRows []bool // per original row
	nInactive  int

	// Constraint matrix in compressed-sparse-column form over the structural
	// variables: column j's entries are ccRow/ccCoef[ccStart[j]:ccStart[j+1]]
	// with ccRow holding *original row indices* (not basis slots), so the
	// matrix never needs rebuilding as lazy rows activate.
	ccStart []int32
	ccRow   []int32
	ccCoef  []float64

	// Active-row bookkeeping. Each active row owns a basis "slot" in [0, m);
	// slots are assigned at rebuild/activation time and stay stable until
	// the next cold rebuild or basis restore.
	rowSlot []int32 // original row -> slot, -1 when inactive
	slotRow []int32 // slot -> original row
	slackOf []int32 // original row -> slack column, -1 when none

	// Aux columns (slacks and artificials) are the columns >= nStruct. Each
	// is a singleton: coefficient auxCoef in the row at slot auxSlot.
	auxSlot  []int32
	auxCoef  []float64
	auxIsArt []bool

	basis   []int // slot -> basic column
	rowOf   []int // column -> slot, -1 when nonbasic
	inBasis []bool
	upper   []float64 // effective bound (0 for fixed variables)
	baseU   []float64 // bound as loaded, used for orientation arithmetic
	flipped []bool    // column in complement orientation x̄ = u − x
	banned  []bool    // excluded from entering (artificials, fixed variables)
	fixVal  []int8    // structural fix state
	d       []float64 // reduced costs of the current basis

	// beff is the effective right-hand side per slot under the current
	// orientation: RHS minus the contributions of flipped columns at their
	// bounds. The basic solution is xB = B⁻¹·beff. beff is maintained
	// incrementally by toggleFlip; xB is refreshed by FTRAN when stale.
	beff []float64
	xB   []float64

	// Factorization state. factorValid marks that lu+eta describe the
	// current basis; xbValid that xB matches basis/beff. Structural changes
	// (activation, restore, rebuild) clear factorValid; bound-orientation
	// changes off the basis clear only xbValid.
	lu            luFactor
	eta           etaFile
	factorValid   bool
	xbValid       bool
	refactorEvery int
	phase1        bool // costOf prices the phase-1 objective
	driftTries    int
	stats         FactorStats

	// Solve scratch, all preallocated by Load to keep the warm path free of
	// heap allocation: alpha/rho are FTRAN/BTRAN result vectors, work is the
	// triangular-solve permutation buffer, accV/accMark/accTouch hold the
	// sparse pivot row, cand the pricing candidate list.
	alpha    []float64
	rho      []float64
	work     []float64
	accV     []float64
	accMark  []int
	accTouch []int32
	accRound int
	cand     []int32
	candPos  int

	xbuf []float64 // extraction buffer

	iters    int
	maxIters int
	deadline time.Time
	ctx      context.Context
	warmOnly bool
	bland    bool
	stall    int

	// Incremental lazy-row scanning (same scheme as the dense engine): a
	// var→row CSR index plus per-variable last-scanned values, so a re-solve
	// only re-evaluates rows whose variables moved.
	varRowsStart []int
	varRowsList  []int32
	scanX        []float64
	scanValid    bool
	loadMAll     int
	rowMark      []int
	rowRound     int

	// Gomory cut-generation scratch (see gomory.go).
	gAcc     []float64
	gMark    []int
	gTouched []int
	gTerms   []Term
	gRound   int

	// warm records that the solver holds a dual-feasible basis from a
	// completed solve, so ReSolve may start with dual simplex.
	warm bool

	// snap is the saved-basis arena of SaveBasis/RestoreBasis. Only logical
	// state is snapshotted — basis, bounds, orientation, active rows, duals
	// — never the factorization: restoring marks the factors stale and the
	// next solve refactorizes, which costs about as much as one pivot cycle.
	snap struct {
		valid      bool
		m          int
		n          int
		nArtStart  int
		nInactive  int
		activeRows []bool
		slackOf    []int32
		slotRow    []int32
		auxSlot    []int32
		auxCoef    []float64
		auxIsArt   []bool
		beff       []float64
		basis      []int
		rowOf      []int
		inBasis    []bool
		upper      []float64
		flipped    []bool
		banned     []bool
		fixVal     []int8
		d          []float64
	}
}

// Internal status sentinels used between the pivot loops and ReSolve. They
// never escape the package: stRetry restarts the current iteration after a
// drift-triggered refactorize; stCold aborts the warm attempt entirely and
// falls back to a cold rebuild via ReSolve's IterLimit branch.
const (
	stRetry Status = -1
	stCold  Status = -2
)

const (
	defaultRefactorInterval = 64   // eta count that triggers a scheduled refactorize
	maxDriftTries           = 3    // drift-triggered refactorizes per ReSolve
	driftCheckTol           = 1e-7 // FTRAN-vs-BTRAN pivot agreement tolerance
	luSingularTol           = 1e-10
	residualTol             = 1e-6 // ‖B·xB − beff‖∞ bound checked after refactorize
)

// NewSolver returns an empty solver; call Load before solving.
func NewSolver() *Solver { return &Solver{} }

// SetLazy toggles lazy row activation for subsequent Loads. Must be called
// before Load.
func (s *Solver) SetLazy(on bool) { s.lazyMode = on }

// SetRowReserve reserves arena headroom for n rows appended after Load (see
// AppendRows). Must be called before Load; the reserve applies to every
// subsequent Load until changed.
func (s *Solver) SetRowReserve(n int) {
	if n < 0 {
		n = 0
	}
	s.reserve = n
}

// SetRefactorInterval sets how many eta updates accumulate before the basis
// is refactorized from scratch (n <= 0 restores the default). Lower values
// trade pivot speed for numerical robustness.
func (s *Solver) SetRefactorInterval(n int) {
	if n <= 0 {
		n = defaultRefactorInterval
	}
	s.refactorEvery = n
}

// SpareRowCapacity reports how many more rows AppendRows can register before
// the reserve declared by SetRowReserve is exhausted.
func (s *Solver) SpareRowCapacity() int { return s.mAllCap - s.mAll }

// etaLimit is the effective eta-file length that triggers a scheduled
// refactorize: the configured interval, but never more than the basis size
// (with a small floor). Applying the eta file costs O(count · m), so on a
// small active basis letting it grow to the full configured interval makes
// every BTRAN/FTRAN pay for dozens of stale pivots when a from-scratch
// refactorize costs almost nothing; on large bases the configured interval
// wins because refactorizes there are the expensive side.
//
//sqpr:hotpath
func (s *Solver) etaLimit() int {
	lim := s.refactorEvery
	if h := s.m / 2; h < lim {
		if h < 8 {
			h = 8
		}
		lim = h
	}
	return lim
}

// FactorStats returns the factorization counters accumulated since Load.
func (s *Solver) FactorStats() FactorStats { return s.stats }

// Load compiles p into the solver's arenas, growing them only when p is
// larger than any previously loaded problem. All variables start free and
// the first ReSolve performs a cold solve. The solver keeps a reference to p
// (it does not copy constraint data) and never mutates it.
func (s *Solver) Load(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.prob = p
	s.warm = false
	s.factorValid = false
	s.xbValid = false
	s.phase1 = false
	s.stats = FactorStats{}
	s.mAll = len(p.Cons)
	s.m = 0
	s.nStruct = p.NumVars

	s.mAllCap = s.mAll + s.reserve
	s.slackOf = growI32(s.slackOf, s.mAllCap)
	s.rowSlot = growI32(s.rowSlot, s.mAllCap)
	s.slotRow = growI32(s.slotRow, s.mAllCap)
	s.activeRows = growB(s.activeRows, s.mAllCap)
	s.nSlack = 0
	s.nInactive = 0
	for i := range p.Cons {
		// Slack columns are assigned when a row enters the basis (rebuild,
		// or warm activation), not up front: the live column count then
		// scales with the rows actually active, not with the thousands of
		// lazy rows that never bind.
		s.slackOf[i] = -1
		s.rowSlot[i] = -1
		if p.Cons[i].Sense == EQ {
			s.activeRows[i] = true
			continue
		}
		s.nSlack++
		// Only inequality rows may start inactive.
		s.activeRows[i] = !s.lazyMode
		if s.lazyMode {
			s.nInactive++
		}
	}
	s.nSlackCap = s.nSlack + s.reserve
	// Worst case: every row active with a slack plus one artificial each.
	s.colCap = p.NumVars + s.nSlackCap + s.mAllCap

	auxCap := s.colCap - p.NumVars
	s.auxSlot = growI32(s.auxSlot, auxCap)
	s.auxCoef = growF(s.auxCoef, auxCap)
	s.auxIsArt = growB(s.auxIsArt, auxCap)

	s.basis = growI(s.basis, s.mAllCap)
	s.rowOf = growI(s.rowOf, s.colCap)
	s.inBasis = growB(s.inBasis, s.colCap)
	s.upper = growF(s.upper, s.colCap)
	s.baseU = growF(s.baseU, s.colCap)
	s.flipped = growB(s.flipped, s.colCap)
	s.banned = growB(s.banned, s.colCap)
	s.d = growF(s.d, s.colCap)
	s.fixVal = growI8(s.fixVal, p.NumVars)
	for j := range s.fixVal[:p.NumVars] {
		s.fixVal[j] = fixFree
	}

	s.beff = growF(s.beff, s.mAllCap)
	s.xB = growF(s.xB, s.mAllCap)
	s.alpha = growF(s.alpha, s.mAllCap)
	s.rho = growF(s.rho, s.mAllCap)
	s.work = growF(s.work, s.mAllCap)
	s.accV = growF(s.accV, s.colCap)
	s.accMark = growI(s.accMark, s.colCap)
	for i := range s.accMark[:s.colCap] {
		s.accMark[i] = 0
	}
	s.accRound = 0
	s.accTouch = growI32(s.accTouch, s.colCap)[:0]
	s.cand = growI32(s.cand, s.colCap)[:0]
	s.candPos = 0
	if s.refactorEvery == 0 {
		s.refactorEvery = defaultRefactorInterval
	}
	s.driftTries = 0

	n := p.NumVars
	if n == 0 {
		n = 1
	}
	s.xbuf = growF(s.xbuf, n)
	s.snap.valid = false

	s.buildCSC()
	s.lu.init(s.mAllCap)
	s.eta.init(s.mAllCap)

	// Var→row CSR over the inequality rows loaded now; rows appended later
	// (AppendRows) are few and are always re-scanned instead.
	s.loadMAll = s.mAll
	s.scanX = growF(s.scanX, n)
	s.scanValid = false
	s.rowMark = growI(s.rowMark, s.mAllCap)
	for i := range s.rowMark[:s.mAllCap] {
		s.rowMark[i] = 0
	}
	s.rowRound = 0
	s.varRowsStart = growI(s.varRowsStart, p.NumVars+1)
	for j := range s.varRowsStart[:p.NumVars+1] {
		s.varRowsStart[j] = 0
	}
	nnz := 0
	for i := range p.Cons {
		if p.Cons[i].Sense == EQ {
			continue
		}
		for _, t := range p.Cons[i].Terms {
			s.varRowsStart[t.Var+1]++
			nnz++
		}
	}
	for j := 1; j <= p.NumVars; j++ {
		s.varRowsStart[j] += s.varRowsStart[j-1]
	}
	if cap(s.varRowsList) < nnz {
		s.varRowsList = make([]int32, nnz)
	}
	s.varRowsList = s.varRowsList[:nnz]
	// Fill using varRowsStart as the write cursor, then shift it back.
	for i := range p.Cons {
		if p.Cons[i].Sense == EQ {
			continue
		}
		for _, t := range p.Cons[i].Terms {
			s.varRowsList[s.varRowsStart[t.Var]] = int32(i)
			s.varRowsStart[t.Var]++
		}
	}
	for j := p.NumVars; j > 0; j-- {
		s.varRowsStart[j] = s.varRowsStart[j-1]
	}
	s.varRowsStart[0] = 0
	return nil
}

// buildCSC (re)builds the compressed-sparse-column index of the structural
// constraint matrix over all rows currently registered, including appended
// ones. Row indices are original row numbers; activity is resolved through
// rowSlot at solve time.
func (s *Solver) buildCSC() {
	p := s.prob
	n := s.nStruct
	s.ccStart = growI32(s.ccStart, n+1)
	for j := 0; j <= n; j++ {
		s.ccStart[j] = 0
	}
	nnz := 0
	for i := 0; i < s.mAll; i++ {
		for _, t := range p.Cons[i].Terms {
			s.ccStart[t.Var+1]++
			nnz++
		}
	}
	for j := 1; j <= n; j++ {
		s.ccStart[j] += s.ccStart[j-1]
	}
	if cap(s.ccRow) < nnz {
		s.ccRow = make([]int32, nnz)
		s.ccCoef = make([]float64, nnz)
	}
	s.ccRow = s.ccRow[:nnz]
	s.ccCoef = s.ccCoef[:nnz]
	for i := 0; i < s.mAll; i++ {
		for _, t := range p.Cons[i].Terms {
			c := s.ccStart[t.Var]
			s.ccRow[c] = int32(i)
			s.ccCoef[c] = t.Coef
			s.ccStart[t.Var] = c + 1
		}
	}
	for j := n; j > 0; j-- {
		s.ccStart[j] = s.ccStart[j-1]
	}
	s.ccStart[0] = 0
}

// NumVars returns the structural variable count of the loaded problem.
func (s *Solver) NumVars() int { return s.nStruct }

// Detach drops the solver's reference to the loaded problem and invalidates
// any saved basis, keeping only the raw arenas. Pools of idle solvers call
// this so a recycled solver cannot keep a dead caller's constraint storage
// reachable; the next Load makes the solver usable again.
func (s *Solver) Detach() {
	s.prob = nil
	s.warm = false
	s.snap.valid = false
}

// ActiveRows returns how many constraint rows the basis currently spans; in
// lazy mode this is typically far below len(Problem.Cons).
func (s *Solver) ActiveRows() int { return s.m }

// SaveBasis snapshots the solver's logical state — basis, bounds, fix set,
// orientation, active rows, reduced costs — into a solver-owned arena. One
// snapshot is held at a time; saving again overwrites it. The factorization
// is deliberately not snapshotted: it is a cache, rebuilt on demand after a
// restore, so the copy is O(n + m) instead of O(LU nonzeros).
func (s *Solver) SaveBasis() {
	if !s.warm {
		return
	}
	sp := &s.snap
	sp.valid = true
	sp.m = s.m
	sp.n = s.n
	sp.nArtStart = s.nArtStart
	sp.nInactive = s.nInactive
	sp.activeRows = growB(sp.activeRows, s.mAll)
	copy(sp.activeRows, s.activeRows[:s.mAll])
	sp.slackOf = growI32(sp.slackOf, s.mAll)
	copy(sp.slackOf, s.slackOf[:s.mAll])
	sp.slotRow = growI32(sp.slotRow, s.m)
	copy(sp.slotRow, s.slotRow[:s.m])
	naux := s.n - s.nStruct
	sp.auxSlot = growI32(sp.auxSlot, naux)
	copy(sp.auxSlot, s.auxSlot[:naux])
	sp.auxCoef = growF(sp.auxCoef, naux)
	copy(sp.auxCoef, s.auxCoef[:naux])
	sp.auxIsArt = growB(sp.auxIsArt, naux)
	copy(sp.auxIsArt, s.auxIsArt[:naux])
	sp.beff = growF(sp.beff, s.m)
	copy(sp.beff, s.beff[:s.m])
	sp.basis = growI(sp.basis, s.m)
	copy(sp.basis, s.basis[:s.m])
	sp.rowOf = growI(sp.rowOf, s.n)
	copy(sp.rowOf, s.rowOf[:s.n])
	sp.inBasis = growB(sp.inBasis, s.n)
	copy(sp.inBasis, s.inBasis[:s.n])
	sp.upper = growF(sp.upper, s.n)
	copy(sp.upper, s.upper[:s.n])
	sp.flipped = growB(sp.flipped, s.n)
	copy(sp.flipped, s.flipped[:s.n])
	sp.banned = growB(sp.banned, s.n)
	copy(sp.banned, s.banned[:s.n])
	sp.fixVal = growI8(sp.fixVal, s.nStruct)
	copy(sp.fixVal, s.fixVal[:s.nStruct])
	sp.d = growF(sp.d, s.n)
	copy(sp.d, s.d[:s.n])
}

// RestoreBasis reinstates the snapshot taken by SaveBasis, including its
// fix set and active-row set, and reports whether one was available. The
// caller's view of applied fixes must be reset to the snapshot's. The
// factorization is marked stale; the next ReSolve refactorizes.
//
//sqpr:hotpath
func (s *Solver) RestoreBasis() bool {
	sp := &s.snap
	if !sp.valid {
		return false
	}
	s.m = sp.m
	s.n = sp.n
	s.nArtStart = sp.nArtStart
	s.nInactive = sp.nInactive
	s.scanValid = false // the restored point differs from the scanned one
	copy(s.activeRows[:s.mAll], sp.activeRows)
	copy(s.slackOf[:s.mAll], sp.slackOf)
	copy(s.slotRow[:sp.m], sp.slotRow)
	for i := 0; i < s.mAll; i++ {
		s.rowSlot[i] = -1
	}
	for t := 0; t < sp.m; t++ {
		s.rowSlot[sp.slotRow[t]] = int32(t)
	}
	naux := sp.n - s.nStruct
	copy(s.auxSlot[:naux], sp.auxSlot)
	copy(s.auxCoef[:naux], sp.auxCoef)
	copy(s.auxIsArt[:naux], sp.auxIsArt)
	copy(s.beff[:sp.m], sp.beff)
	copy(s.basis[:sp.m], sp.basis)
	copy(s.rowOf[:sp.n], sp.rowOf)
	copy(s.inBasis[:sp.n], sp.inBasis)
	copy(s.upper[:sp.n], sp.upper)
	copy(s.flipped[:sp.n], sp.flipped)
	copy(s.banned[:sp.n], sp.banned)
	copy(s.fixVal[:s.nStruct], sp.fixVal)
	copy(s.d[:sp.n], sp.d)
	s.factorValid = false
	s.xbValid = false
	s.warm = true
	if invariant.Enabled {
		s.checkBasis("RestoreBasis")
	}
	return true
}

// checkBasis verifies the basis/rowOf/inBasis cross-indexing that every
// pivot must preserve, plus the row↔slot mapping the sparse engine adds.
// Checked builds call it after basis restores and successful ReSolves;
// release builds compile it out. The companion factorization-residual check
// (‖B·xB − beff‖∞) runs inside refactorize, where xB is freshly computed
// from the new factors.
func (s *Solver) checkBasis(where string) {
	if !s.warm {
		// No warm-startable basis: the nStruct==0 shortcut in coldPass
		// answers from the constant rows alone and never builds one.
		return
	}
	for i := 0; i < s.m; i++ {
		j := s.basis[i]
		if j < 0 || j >= s.n {
			invariant.Failf("lp: %s left basis[%d]=%d outside [0,%d)", where, i, j, s.n)
		}
		if s.rowOf[j] != i {
			invariant.Failf("lp: %s left basis[%d]=%d but rowOf[%d]=%d", where, i, j, j, s.rowOf[j])
		}
		if !s.inBasis[j] {
			invariant.Failf("lp: %s left basis[%d]=%d with inBasis[%d] false", where, i, j, j)
		}
	}
	for j := 0; j < s.n; j++ {
		if s.inBasis[j] && s.basis[s.rowOf[j]] != j {
			invariant.Failf("lp: %s left column %d marked basic but row %d holds %d", where, j, s.rowOf[j], s.basis[s.rowOf[j]])
		}
	}
	for t := 0; t < s.m; t++ {
		i := int(s.slotRow[t])
		if i < 0 || i >= s.mAll || int(s.rowSlot[i]) != t {
			invariant.Failf("lp: %s left slot %d mapped to row %d with rowSlot=%d", where, t, i, s.rowSlot[i])
		}
	}
}

// AppendRows registers constraint rows that the caller appended to the
// loaded Problem's Cons slice since Load (or the previous AppendRows call),
// without a cold rebuild: each new row is given a slack column from the
// reserve declared by SetRowReserve and starts *inactive*, so the next
// ReSolve warm-activates it only if the current optimum violates it — the
// cutting-plane loop of internal/milp appends cover and clique cuts this
// way and repairs them with a handful of dual-simplex pivots. Appended rows
// must be inequalities (LE or GE). The call invalidates any saved basis
// (SaveBasis snapshots taken before an append cannot describe the grown
// problem). Returns the number of rows registered and an error when a row is
// malformed or the reserve is exhausted.
func (s *Solver) AppendRows() (int, error) {
	p := s.prob
	if p == nil {
		return 0, fmt.Errorf("lp: AppendRows before Load")
	}
	added := 0
	for i := s.mAll; i < len(p.Cons); i++ {
		c := &p.Cons[i]
		if c.Sense == EQ {
			return added, fmt.Errorf("lp: appended row %d is an equality", i)
		}
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= s.nStruct {
				return added, fmt.Errorf("lp: appended row %d references variable %d outside [0,%d)", i, t.Var, s.nStruct)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return added, fmt.Errorf("lp: appended row %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return added, fmt.Errorf("lp: appended row %d has non-finite right-hand side", i)
		}
		if s.mAll >= s.mAllCap {
			return added, fmt.Errorf("lp: row reserve exhausted (%d rows)", s.reserve)
		}
		// The row starts inactive; its slack column is assigned on
		// activation, like any other lazy row.
		s.slackOf[s.mAll] = -1
		s.rowSlot[s.mAll] = -1
		s.activeRows[s.mAll] = false
		s.nSlack++
		s.mAll++
		s.nInactive++
		added++
	}
	if added > 0 {
		s.snap.valid = false
		s.scanValid = false
		// Fold the new rows into the CSC index so FTRAN scatters and flip
		// bookkeeping see them the moment they activate.
		s.buildCSC()
	}
	return added, nil
}

// ReducedCost returns the reduced cost of structural variable j at the
// current basis, together with the bound the variable is nonbasic at. The
// value is reported in the solver's minimisation space for the variable's
// *current* orientation: after an Optimal ReSolve it is non-negative, and
// moving j off its bound by t >= 0 (up from 0 when atUpper is false, down
// from its upper bound when true) degrades the objective by at least d·t in
// the LP relaxation — the inequality branch-and-bound uses for reduced-cost
// bound fixing. Basic variables report 0.
//
//sqpr:hotpath
func (s *Solver) ReducedCost(j int) (d float64, atUpper bool) {
	if s.inBasis[j] {
		return 0, s.flipped[j]
	}
	return s.d[j], s.flipped[j]
}

// RowDual returns the dual multiplier of original constraint row i at the
// current (optimal) basis: the sensitivity ∂objective/∂RHS_i in the
// problem's minimisation space. Inactive lazy rows and equality rows (whose
// slack column is not kept) report 0.
//
//sqpr:hotpath
func (s *Solver) RowDual(i int) float64 {
	if i < 0 || i >= s.mAll || !s.activeRows[i] {
		return 0
	}
	slack := s.slackOf[i]
	if slack < 0 {
		return 0
	}
	// d_slack = −sc·y for the row a·x + sc·s = b with sc = +1 (LE) or −1
	// (GE); the original-row multiplier is y, so y = −d_slack/sc.
	if s.prob.Cons[i].Sense == GE {
		return s.d[slack]
	}
	return -s.d[slack]
}

// Fix pins structural variable j at 0 (atUpper false) or at its upper bound
// (atUpper true) without recompiling the problem. When the solver holds a
// warm basis the bound change is applied in place: the column is re-oriented
// if needed and its effective bound collapses to zero, leaving any primal
// infeasibility for the next ReSolve's dual simplex to repair. Fixing at
// the upper bound requires a finite upper bound.
//
//sqpr:hotpath
func (s *Solver) Fix(j int, atUpper bool) {
	want := fixZero
	if atUpper {
		want = fixUpper
	}
	if s.fixVal[j] == want {
		return
	}
	if s.warm {
		// Restore the true bound first so orientation flips use the real
		// width of the variable's range.
		s.upper[j] = s.baseU[j]
		if s.flipped[j] != atUpper {
			if r := s.rowOf[j]; r >= 0 {
				s.flipBasic(r)
			} else {
				s.toggleFlip(j)
				s.d[j] = -s.d[j]
				// The basic point moves by the flip width along B⁻¹a_j;
				// recompute xB from beff lazily rather than FTRAN per fix.
				s.xbValid = false
			}
		}
		s.upper[j] = 0
	}
	s.fixVal[j] = want
	s.banned[j] = true
}

// Unfix releases a previously fixed variable back to its full [0, upper]
// range. The variable's current position (whichever bound it was fixed at)
// remains a valid nonbasic point, so no pivoting is needed.
//
//sqpr:hotpath
func (s *Solver) Unfix(j int) {
	if s.fixVal[j] == fixFree {
		return
	}
	s.fixVal[j] = fixFree
	s.banned[j] = false
	if s.warm {
		s.upper[j] = s.baseU[j]
	}
}

// Fixed reports the fix state of variable j: fixed pinned at 0 or its upper
// bound, and free otherwise.
//
//sqpr:hotpath
func (s *Solver) Fixed(j int) (fixed, atUpper bool) {
	return s.fixVal[j] != fixFree, s.fixVal[j] == fixUpper
}

// ReSolve optimises the loaded problem under the current variable fixes.
// From a warm basis it refreshes the factorization if stale and runs
// bounded-variable dual simplex plus a primal clean-up; otherwise (first
// call, or after a fallback) it performs a cold two-phase primal solve over
// the active rows. Violated inactive rows are then activated and repaired
// until the point satisfies the full problem. The returned Solution's X
// aliases a solver-owned buffer valid until the next call. The steady-state
// warm path performs no heap allocation.
//
//sqpr:hotpath
func (s *Solver) ReSolve(opts Options) Solution {
	s.installOpts(opts)
	coldDone := false
	for {
		var st Status
		if !s.warm {
			st = s.coldPass()
			coldDone = true
		} else if !s.prepWarm() {
			// The restored/stale basis would not factorize: rebuild cold.
			s.stats.DriftRebuilds++
			s.warm = false
			continue
		} else {
			st = s.dualIterate()
			if st == Optimal {
				// Dual pivots restored primal feasibility. Bound
				// *relaxations* (Unfix) can leave a released column with a
				// negative reduced cost, so finish with primal pivots; when
				// the basis is already dual feasible this is a no-op.
				st = s.iterate()
			}
		}
		switch st {
		case Optimal:
			x := s.extract()
			if s.nInactive > 0 && s.activateViolated(x) > 0 {
				continue // repair the newly active rows warm
			}
			// The zero-activation scan above certified the inactive rows;
			// only bounds and active rows remain to check.
			feas := s.checkFeasibleActive(x)
			if invariant.Enabled {
				s.checkBasis("ReSolve")
			}
			if !feas && !coldDone {
				// Numerical drift survived the factorization refreshes:
				// re-derive everything from the problem data so drift cannot
				// compound across nodes.
				s.stats.DriftRebuilds++
				s.warm = false
				continue
			}
			return Solution{
				Status:    Optimal,
				X:         x,
				Objective: s.prob.Objective(x),
				Feasible:  feas,
				Iters:     s.iters,
			}
		case Infeasible:
			// Dual unbounded or phase 1 stuck: the current bound set admits
			// no feasible point. (Activating more rows can only shrink the
			// feasible region, so inactive rows cannot rescue it.) The basis
			// stays consistent, so later ReSolves stay warm.
			return Solution{Status: Infeasible, Iters: s.iters}
		case Unbounded:
			if s.nInactive > 0 {
				// The descent ray may be cut off by rows not yet active;
				// bring everything in and restart cold.
				s.activateAll()
				s.warm = false
				coldDone = false
				continue
			}
			return Solution{Status: Unbounded, X: s.extract(), Iters: s.iters}
		default: // IterLimit, or stCold after a failed refactorize
			if s.expired() || coldDone || s.warmOnly {
				return Solution{Status: IterLimit, Iters: s.iters}
			}
			// Pivot budget exhausted on the warm path without an external
			// deadline (e.g. a degenerate dual cycle): fall back to a cold
			// solve with a fresh pivot budget on top of what was spent, so
			// the rebuild is not dead on arrival at the same limit.
			s.maxIters += s.iters
			s.warm = false
		}
	}
}

// prepWarm brings the factorization and basic solution up to date with the
// logical basis before warm pivoting starts; reports false when the basis
// would not factorize (caller falls back to a cold rebuild).
//
//sqpr:hotpath
func (s *Solver) prepWarm() bool {
	if !s.factorValid || s.eta.count >= s.etaLimit() {
		return s.refactorize()
	}
	if !s.xbValid {
		s.ftranXB()
	}
	return true
}

// ftranXB recomputes the basic solution xB = B⁻¹·beff through the current
// factors.
//
//sqpr:hotpath
func (s *Solver) ftranXB() {
	copy(s.xB[:s.m], s.beff[:s.m])
	s.ftran(s.xB)
	s.xbValid = true
}

// expired reports whether the deadline or context of the current call has
// lapsed.
//
//sqpr:hotpath
func (s *Solver) expired() bool {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return s.ctx != nil && s.ctx.Err() != nil
}

//sqpr:hotpath
func (s *Solver) installOpts(opts Options) {
	s.deadline = opts.Deadline
	s.ctx = opts.Ctx
	s.warmOnly = opts.WarmOnly
	s.maxIters = opts.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 200 * (s.mAll + s.nStruct + s.nSlack + 10)
	}
	s.iters = 0
	s.bland = false
	s.stall = 0
	s.driftTries = 0
	// Deterministic pricing start: every solve prices from column 0, so
	// reduced-cost ties break toward low indices — the same bias as a full
	// ascending Dantzig scan — regardless of where the previous solve's
	// pricing cursor stopped. The cursor still rotates within the solve.
	s.candPos = 0
	s.cand = s.cand[:0]
}

// activateViolated evaluates the inactive rows at x and warm-activates the
// violated ones; returns how many were activated. After a full first scan
// it runs incrementally: only rows containing a variable that moved since
// that variable's rows were last evaluated (plus any rows appended after
// Load) are re-evaluated — on SQPR's models a node re-solve moves a handful
// of variables while thousands of availability/acyclicity rows stay put.
//
//sqpr:hotpath
func (s *Solver) activateViolated(x []float64) int {
	count := 0
	if !s.scanValid {
		for i := 0; i < s.mAll; i++ {
			if !s.activeRows[i] && s.rowViolated(i, x) {
				s.activateRow(i)
				count++
			}
		}
		copy(s.scanX[:s.nStruct], x[:s.nStruct])
		s.scanValid = true
		return count
	}
	s.rowRound++
	round := s.rowRound
	for j := 0; j < s.nStruct; j++ {
		dx := x[j] - s.scanX[j]
		if dx < scanEps && dx > -scanEps {
			continue
		}
		s.scanX[j] = x[j]
		for _, ri := range s.varRowsList[s.varRowsStart[j]:s.varRowsStart[j+1]] {
			i := int(ri)
			if s.rowMark[i] == round || s.activeRows[i] {
				s.rowMark[i] = round
				continue
			}
			s.rowMark[i] = round
			if s.rowViolated(i, x) {
				s.activateRow(i)
				count++
			}
		}
	}
	// Rows appended after Load are outside the CSR index: always evaluate.
	for i := s.loadMAll; i < s.mAll; i++ {
		if !s.activeRows[i] && s.rowViolated(i, x) {
			s.activateRow(i)
			count++
		}
	}
	return count
}

// rowViolated evaluates inequality row i at x against its tolerance.
//
//sqpr:hotpath
func (s *Solver) rowViolated(i int, x []float64) bool {
	c := &s.prob.Cons[i]
	lhs := Eval(c.Terms, x)
	tol := FeasTol * (1 + math.Abs(c.RHS))
	switch c.Sense {
	case LE:
		return lhs > c.RHS+tol
	case GE:
		return lhs < c.RHS-tol
	}
	return false
}

// checkFeasibleActive verifies bounds and the *active* rows of the problem
// at x. Together with a zero-activation scan of the inactive rows it
// certifies full feasibility without re-evaluating the (far larger)
// inactive set a second time.
//
//sqpr:hotpath
func (s *Solver) checkFeasibleActive(x []float64) bool {
	p := s.prob
	for j := 0; j < p.NumVars; j++ {
		if x[j] < -FeasTol || x[j] > p.upper(j)+FeasTol {
			return false
		}
	}
	for i := 0; i < s.mAll; i++ {
		if !s.activeRows[i] {
			continue
		}
		c := &p.Cons[i]
		lhs := Eval(c.Terms, x)
		tol := FeasTol * (1 + math.Abs(c.RHS))
		switch c.Sense {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// activateAll brings every inactive row in (used before an Unbounded
// restart; the subsequent pass is cold, so a plain marking suffices).
func (s *Solver) activateAll() {
	for i := range s.activeRows[:s.mAll] {
		s.activeRows[i] = true
	}
	s.nInactive = 0
}

// activateRow appends inactive inequality row i to the warm basis. Unlike
// the dense engine there is no tableau to eliminate into: the row claims a
// fresh slot and slack column, its effective RHS is computed under the
// current orientation, the slack becomes basic, and the factorization is
// marked stale. The next prepWarm refactorizes over the grown basis — which
// is block-triangular in the old one, so the existing reduced costs remain
// exact and dual feasibility survives activation.
//
//sqpr:hotpath
func (s *Solver) activateRow(i int) {
	c := &s.prob.Cons[i]
	col := s.n
	slot := s.m
	aux := col - s.nStruct
	s.slackOf[i] = int32(col)
	s.auxSlot[aux] = int32(slot)
	s.auxIsArt[aux] = false
	if c.Sense == LE {
		s.auxCoef[aux] = 1
	} else {
		s.auxCoef[aux] = -1
	}
	// Scrub any stale column state (the slot may have been used before a
	// basis restore rewound the solver).
	s.upper[col] = math.Inf(1)
	s.baseU[col] = math.Inf(1)
	s.flipped[col] = false
	s.banned[col] = false
	s.d[col] = 0
	s.rowSlot[i] = int32(slot)
	s.slotRow[slot] = int32(i)
	rhs := c.RHS
	for _, tm := range c.Terms {
		if s.flipped[tm.Var] {
			// Column tm.Var is in complement orientation x̄ = u − x.
			rhs -= tm.Coef * s.baseU[tm.Var]
		}
	}
	s.beff[slot] = rhs
	s.basis[slot] = col
	s.inBasis[col] = true
	s.rowOf[col] = slot
	s.n = col + 1
	s.m = slot + 1
	s.activeRows[i] = true
	s.nInactive--
	s.factorValid = false
	s.xbValid = false
}

// extract reconstructs structural variable values in the original
// orientation, writing into the solver's reusable buffer.
//
//sqpr:hotpath
func (s *Solver) extract() []float64 {
	x := s.xbuf[:s.nStruct]
	for j := range x {
		if s.flipped[j] {
			x[j] = s.baseU[j]
		} else {
			x[j] = 0
		}
	}
	for i, b := range s.basis[:s.m] {
		if b >= s.nStruct {
			continue
		}
		v := s.xB[i]
		if s.flipped[b] {
			v = s.baseU[b] - v
		}
		x[b] = v
	}
	for j := range x {
		v := x[j]
		if v < 0 && v > -1e-9 {
			v = 0
		}
		if u := s.baseU[j]; !math.IsInf(u, 1) && v > u && v < u+1e-9 {
			v = u
		}
		x[j] = v
	}
	return x
}
