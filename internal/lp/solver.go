package lp

import (
	"context"
	"math"
	"time"
)

// Fix targets for structural variables (see Solver.Fix).
const (
	fixFree  int8 = iota // variable ranges over [0, upper]
	fixZero              // variable pinned at 0
	fixUpper             // variable pinned at its upper bound
)

// Solver is a reusable, stateful LP solver over one loaded Problem. It owns
// a persistent arena (dense tableau rows, right-hand side, basis, reduced
// costs) that is sized once per Load and reused across re-solves, so the
// steady-state ReSolve path performs no heap allocation.
//
// The intended lifecycle is the branch-and-bound inner loop of
// internal/milp:
//
//	s := lp.NewSolver()
//	s.SetLazy(true)               // optional: lazy row activation
//	s.Load(&prob)                 // compile once
//	sol := s.ReSolve(opts)        // cold solve (two-phase primal)
//	s.Fix(j, true)                // tighten one bound in place
//	sol = s.ReSolve(opts)         // warm re-solve (dual simplex)
//	s.Unfix(j)                    // backtrack
//
// After a successful solve the tableau holds an optimal basis that is both
// primal and dual feasible. Fixing or unfixing variable bounds preserves
// dual feasibility (the objective is unchanged), so a subsequent ReSolve
// only needs dual-simplex pivots to repair primal feasibility — typically a
// handful of pivots instead of a cold two-phase solve. On iteration trouble
// or numerical drift the solver transparently falls back to a cold rebuild,
// so ReSolve is never less correct than Solve.
//
// In lazy mode (SetLazy), inequality rows start inactive: the solver
// optimises over the active subset, evaluates the inactive rows against the
// candidate optimum, and warm-activates only the violated ones — an
// activated row enters with its slack basic and primal-infeasible, which is
// exactly the shape dual simplex repairs. SQPR's planning LPs have
// thousands of availability/acyclicity rows of which only a handful ever
// bind, so the active tableau stays an order of magnitude smaller than the
// full problem.
//
// Solutions returned by ReSolve alias solver-owned buffers: the X slice is
// only valid until the next call on the same Solver. Callers that retain a
// point must copy it. A Solver is not safe for concurrent use; independent
// Solver instances are independent.
type Solver struct {
	prob *Problem

	mAll    int // total constraint rows of the problem
	m       int // active tableau rows
	nStruct int // structural variables
	nSlack  int // slack columns (one per inequality row, active or not)
	stride  int // allocated row width (worst-case column count)

	n         int // live total columns (structural+slack+artificial)
	nArtStart int // first artificial column

	lazyMode   bool
	activeRows []bool // per original row
	nInactive  int

	rowsBuf []float64   // mAll × stride backing store
	rows    [][]float64 // row views into rowsBuf
	rhs     []float64
	basis   []int
	rowOf   []int // row of each basic variable, -1 when nonbasic
	inBasis []bool
	upper   []float64 // effective bound (0 for fixed variables)
	baseU   []float64 // bound as loaded, used for orientation arithmetic
	flipped []bool
	banned  []bool // excluded from entering (artificials, fixed variables)
	fixVal  []int8 // structural fix state
	d       []float64
	cbuf    []float64 // objective scratch for installCosts
	slackOf []int
	xbuf    []float64 // extraction buffer

	iters    int
	maxIters int
	deadline time.Time
	ctx      context.Context
	bland    bool
	stall    int

	// warm records that the tableau holds a dual-feasible basis from a
	// completed solve, so ReSolve may start with dual simplex.
	warm bool

	// snap is the saved-basis arena of SaveBasis/RestoreBasis. Restoring a
	// saved optimal basis and then only *tightening* bounds keeps the
	// re-solve in pure dual simplex, which is the cheap path; branch-and-
	// bound uses this to jump between subtrees without primal re-solves.
	snap struct {
		valid      bool
		m          int
		n          int
		nArtStart  int
		nInactive  int
		activeRows []bool
		rowsBuf    []float64
		rhs        []float64
		basis      []int
		rowOf      []int
		inBasis    []bool
		upper      []float64
		flipped    []bool
		banned     []bool
		fixVal     []int8
		d          []float64
	}
}

// NewSolver returns an empty solver; call Load before solving.
func NewSolver() *Solver { return &Solver{} }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

// SetLazy toggles lazy row activation for subsequent Loads. Must be called
// before Load.
func (s *Solver) SetLazy(on bool) { s.lazyMode = on }

// Load compiles p into the solver's arena, growing it only when p is larger
// than any previously loaded problem. All variables start free and the
// first ReSolve performs a cold solve. The solver keeps a reference to p
// (it does not copy constraint data) and never mutates it.
func (s *Solver) Load(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.prob = p
	s.warm = false
	s.mAll = len(p.Cons)
	s.m = 0
	s.nStruct = p.NumVars

	s.slackOf = growI(s.slackOf, s.mAll)
	s.activeRows = growB(s.activeRows, s.mAll)
	s.nSlack = 0
	s.nInactive = 0
	for i := range p.Cons {
		if p.Cons[i].Sense == EQ {
			s.slackOf[i] = -1
			s.activeRows[i] = true
			continue
		}
		s.slackOf[i] = p.NumVars + s.nSlack
		s.nSlack++
		// Only inequality rows may start inactive: they carry a slack
		// column, so a later activation has a ready-made basic variable.
		s.activeRows[i] = !s.lazyMode
		if s.lazyMode {
			s.nInactive++
		}
	}
	s.stride = p.NumVars + s.nSlack + s.mAll // worst case: one artificial per row

	s.rowsBuf = growF(s.rowsBuf, s.mAll*s.stride)
	if cap(s.rows) < s.mAll {
		s.rows = make([][]float64, s.mAll)
	}
	s.rows = s.rows[:s.mAll]
	for i := 0; i < s.mAll; i++ {
		s.rows[i] = s.rowsBuf[i*s.stride : (i+1)*s.stride]
	}
	s.rhs = growF(s.rhs, s.mAll)
	s.basis = growI(s.basis, s.mAll)
	s.rowOf = growI(s.rowOf, s.stride)
	s.inBasis = growB(s.inBasis, s.stride)
	s.upper = growF(s.upper, s.stride)
	s.baseU = growF(s.baseU, s.stride)
	s.flipped = growB(s.flipped, s.stride)
	s.banned = growB(s.banned, s.stride)
	s.d = growF(s.d, s.stride)
	s.cbuf = growF(s.cbuf, s.stride)
	s.fixVal = growI8(s.fixVal, p.NumVars)
	for j := range s.fixVal {
		s.fixVal[j] = fixFree
	}
	n := p.NumVars
	if n == 0 {
		n = 1
	}
	s.xbuf = growF(s.xbuf, n)
	s.snap.valid = false
	return nil
}

// NumVars returns the structural variable count of the loaded problem.
func (s *Solver) NumVars() int { return s.nStruct }

// Detach drops the solver's reference to the loaded problem and invalidates
// any saved basis, keeping only the raw arenas. Pools of idle solvers call
// this so a recycled solver cannot keep a dead caller's constraint storage
// reachable; the next Load makes the solver usable again.
func (s *Solver) Detach() {
	s.prob = nil
	s.warm = false
	s.snap.valid = false
}

// ActiveRows returns how many constraint rows the tableau currently holds;
// in lazy mode this is typically far below len(Problem.Cons).
func (s *Solver) ActiveRows() int { return s.m }

// SaveBasis snapshots the full tableau state — basis, bounds, fix set,
// orientation, active rows, reduced costs — into a solver-owned arena. One
// snapshot is held at a time; saving again overwrites it. The copy costs
// about as much as a single pivot.
func (s *Solver) SaveBasis() {
	if !s.warm {
		return
	}
	sp := &s.snap
	sp.valid = true
	sp.m = s.m
	sp.n = s.n
	sp.nArtStart = s.nArtStart
	sp.nInactive = s.nInactive
	sp.activeRows = growB(sp.activeRows, s.mAll)
	copy(sp.activeRows, s.activeRows[:s.mAll])
	sp.rowsBuf = growF(sp.rowsBuf, s.m*s.stride)
	copy(sp.rowsBuf, s.rowsBuf[:s.m*s.stride])
	sp.rhs = growF(sp.rhs, s.m)
	copy(sp.rhs, s.rhs[:s.m])
	sp.basis = growI(sp.basis, s.m)
	copy(sp.basis, s.basis[:s.m])
	sp.rowOf = growI(sp.rowOf, s.stride)
	copy(sp.rowOf, s.rowOf[:s.stride])
	sp.inBasis = growB(sp.inBasis, s.stride)
	copy(sp.inBasis, s.inBasis[:s.stride])
	sp.upper = growF(sp.upper, s.stride)
	copy(sp.upper, s.upper[:s.stride])
	sp.flipped = growB(sp.flipped, s.stride)
	copy(sp.flipped, s.flipped[:s.stride])
	sp.banned = growB(sp.banned, s.stride)
	copy(sp.banned, s.banned[:s.stride])
	sp.fixVal = growI8(sp.fixVal, s.nStruct)
	copy(sp.fixVal, s.fixVal[:s.nStruct])
	sp.d = growF(sp.d, s.stride)
	copy(sp.d, s.d[:s.stride])
}

// RestoreBasis reinstates the snapshot taken by SaveBasis, including its
// fix set and active-row set, and reports whether one was available. The
// caller's view of applied fixes must be reset to the snapshot's.
func (s *Solver) RestoreBasis() bool {
	sp := &s.snap
	if !sp.valid {
		return false
	}
	s.m = sp.m
	s.n = sp.n
	s.nArtStart = sp.nArtStart
	s.nInactive = sp.nInactive
	copy(s.activeRows[:s.mAll], sp.activeRows)
	copy(s.rowsBuf[:s.m*s.stride], sp.rowsBuf)
	copy(s.rhs[:s.m], sp.rhs)
	copy(s.basis[:s.m], sp.basis)
	copy(s.rowOf[:s.stride], sp.rowOf)
	copy(s.inBasis[:s.stride], sp.inBasis)
	copy(s.upper[:s.stride], sp.upper)
	copy(s.flipped[:s.stride], sp.flipped)
	copy(s.banned[:s.stride], sp.banned)
	copy(s.fixVal[:s.nStruct], sp.fixVal)
	copy(s.d[:s.stride], sp.d)
	s.warm = true
	return true
}

// Fix pins structural variable j at 0 (atUpper false) or at its upper bound
// (atUpper true) without recompiling the problem. When the tableau holds a
// warm basis the bound change is applied in place: the column is re-oriented
// if needed and its effective bound collapses to zero, leaving any primal
// infeasibility for the next ReSolve's dual simplex to repair. Fixing at
// the upper bound requires a finite upper bound.
func (s *Solver) Fix(j int, atUpper bool) {
	want := fixZero
	if atUpper {
		want = fixUpper
	}
	if s.fixVal[j] == want {
		return
	}
	if s.warm {
		// Restore the true bound first so orientation flips use the real
		// width of the variable's range.
		s.upper[j] = s.baseU[j]
		if s.flipped[j] != atUpper {
			if r := s.rowOf[j]; r >= 0 {
				s.flipBasicRow(r)
			} else {
				s.flipColumn(j)
			}
		}
		s.upper[j] = 0
	}
	s.fixVal[j] = want
	s.banned[j] = true
}

// Unfix releases a previously fixed variable back to its full [0, upper]
// range. The variable's current position (whichever bound it was fixed at)
// remains a valid nonbasic point, so no pivoting is needed.
func (s *Solver) Unfix(j int) {
	if s.fixVal[j] == fixFree {
		return
	}
	s.fixVal[j] = fixFree
	s.banned[j] = false
	if s.warm {
		s.upper[j] = s.baseU[j]
	}
}

// Fixed reports the fix state of variable j: fixed pinned at 0 or its upper
// bound, and free otherwise.
func (s *Solver) Fixed(j int) (fixed, atUpper bool) {
	return s.fixVal[j] != fixFree, s.fixVal[j] == fixUpper
}

// ReSolve optimises the loaded problem under the current variable fixes.
// From a warm basis it runs bounded-variable dual simplex plus a primal
// clean-up; otherwise (first call, or after a fallback) it performs a cold
// two-phase primal solve over the active rows. Violated inactive rows are
// then activated and repaired until the point satisfies the full problem.
// The returned Solution's X aliases a solver-owned buffer valid until the
// next call. The steady-state warm path performs no heap allocation.
func (s *Solver) ReSolve(opts Options) Solution {
	s.installOpts(opts)
	coldDone := false
	for {
		var st Status
		if !s.warm {
			st = s.coldPass()
			coldDone = true
		} else {
			st = s.dualIterate()
			if st == Optimal {
				// Dual pivots restored primal feasibility. Bound
				// *relaxations* (Unfix) can leave a released column with a
				// negative reduced cost, so finish with primal pivots; when
				// the basis is already dual feasible this is a no-op.
				st = s.iterate()
			}
		}
		switch st {
		case Optimal:
			x := s.extract()
			if s.nInactive > 0 && s.activateViolated(x) > 0 {
				continue // repair the newly active rows warm
			}
			feas := s.prob.CheckFeasible(x)
			if !feas && !coldDone {
				// Numerical drift accumulated across pivots: refactorise
				// from scratch. The cold path re-derives everything from
				// the problem data, so drift cannot compound across nodes.
				s.warm = false
				continue
			}
			return Solution{
				Status:    Optimal,
				X:         x,
				Objective: s.prob.Objective(x),
				Feasible:  feas,
				Iters:     s.iters,
			}
		case Infeasible:
			// Dual unbounded or phase 1 stuck: the current bound set admits
			// no feasible point. (Activating more rows can only shrink the
			// feasible region, so inactive rows cannot rescue it.) The
			// tableau stays consistent, so later ReSolves stay warm.
			return Solution{Status: Infeasible, Iters: s.iters}
		case Unbounded:
			if s.nInactive > 0 {
				// The descent ray may be cut off by rows not yet active;
				// bring everything in and restart cold.
				s.activateAll()
				s.warm = false
				coldDone = false
				continue
			}
			return Solution{Status: Unbounded, X: s.extract(), Iters: s.iters}
		default: // IterLimit
			if s.expired() || coldDone {
				return Solution{Status: IterLimit, Iters: s.iters}
			}
			// Pivot budget exhausted on the warm path without an external
			// deadline (e.g. a degenerate dual cycle): fall back to a cold
			// solve with a fresh pivot budget on top of what was spent, so
			// the rebuild is not dead on arrival at the same limit.
			s.maxIters += s.iters
			s.warm = false
		}
	}
}

// expired reports whether the deadline or context of the current call has
// lapsed.
func (s *Solver) expired() bool {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return s.ctx != nil && s.ctx.Err() != nil
}

func (s *Solver) installOpts(opts Options) {
	s.deadline = opts.Deadline
	s.ctx = opts.Ctx
	s.maxIters = opts.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 200 * (s.mAll + s.nStruct + s.nSlack + 10)
	}
	s.iters = 0
	s.bland = false
	s.stall = 0
}

// coldPass rebuilds the tableau from the problem plus current fixes over
// the active row set and runs the two-phase primal simplex. On success the
// tableau is left at an optimal basis and the solver is marked warm.
func (s *Solver) coldPass() Status {
	if s.nStruct == 0 {
		if constRowsFeasible(s.prob) {
			return Optimal
		}
		return Infeasible
	}
	s.rebuild()

	if s.nArtStart < s.n {
		st := s.iterate()
		if st == IterLimit {
			return IterLimit
		}
		if s.phase1Value() > zeroTol*float64(1+s.m) {
			return Infeasible
		}
		s.driveOutArtificials()
		for j := s.nArtStart; j < s.n; j++ {
			s.banned[j] = true
		}
	}

	s.installCosts()
	st := s.iterate()
	if st == Optimal || st == IterLimit {
		// Pin artificials at zero so the dual simplex treats any later
		// drift on redundant rows as a violation to repair.
		for j := s.nArtStart; j < s.n; j++ {
			s.upper[j] = 0
		}
	}
	s.warm = st == Optimal
	return st
}

// activateViolated evaluates every inactive row at x and warm-activates the
// violated ones; returns how many were activated.
func (s *Solver) activateViolated(x []float64) int {
	p := s.prob
	count := 0
	for i := range p.Cons {
		if s.activeRows[i] {
			continue
		}
		c := &p.Cons[i]
		lhs := Eval(c.Terms, x)
		tol := FeasTol * (1 + math.Abs(c.RHS))
		violated := false
		switch c.Sense {
		case LE:
			violated = lhs > c.RHS+tol
		case GE:
			violated = lhs < c.RHS-tol
		}
		if violated {
			s.activateRow(i)
			count++
		}
	}
	return count
}

// activateAll brings every inactive row in (used before an Unbounded
// restart; the subsequent pass is cold, so a plain marking suffices).
func (s *Solver) activateAll() {
	for i := range s.activeRows[:s.mAll] {
		s.activeRows[i] = true
	}
	s.nInactive = 0
}

// activateRow appends inactive inequality row i to the warm tableau: the
// row is expressed in the current orientation, basic variables are
// eliminated, and its slack becomes basic — primal-infeasible exactly when
// the row is violated, which the next dual-simplex pass repairs. Reduced
// costs are untouched: a zero-cost basic slack changes no other column's
// reduced cost, so dual feasibility survives activation.
func (s *Solver) activateRow(i int) {
	c := &s.prob.Cons[i]
	slot := s.m
	row := s.rows[slot]
	for k := 0; k < s.n; k++ {
		row[k] = 0
	}
	sign := 1.0
	if c.Sense == GE {
		// a·x − s = b  ⇔  −a·x + s = −b keeps the slack coefficient +1.
		sign = -1
	}
	rhs := sign * c.RHS
	for _, tm := range c.Terms {
		a := sign * tm.Coef
		j := tm.Var
		if s.flipped[j] {
			// Column j is in complement orientation x̄ = u − x.
			rhs -= a * s.baseU[j]
			row[j] -= a
		} else {
			row[j] += a
		}
	}
	// Eliminate basic variables so the row is expressed over the current
	// nonbasic space.
	for j := 0; j < s.n; j++ {
		f := row[j]
		if f == 0 || !s.inBasis[j] {
			continue
		}
		r2 := s.rows[s.rowOf[j]]
		for k := 0; k < s.n; k++ {
			row[k] -= f * r2[k]
		}
		row[j] = 0
		rhs -= f * s.rhs[s.rowOf[j]]
	}
	slack := s.slackOf[i]
	row[slack] = 1
	s.rhs[slot] = rhs
	s.basis[slot] = slack
	s.banned[slack] = false
	s.inBasis[slack] = true
	s.rowOf[slack] = slot
	s.d[slack] = 0
	s.activeRows[i] = true
	s.m = slot + 1
	s.nInactive--
}

// dualIterate runs bounded-variable dual simplex pivots from a dual-feasible
// basis until primal feasibility (optimality), proven infeasibility, or a
// budget is exhausted. Two violation forms are handled: a basic variable
// below zero enters directly; one above a positive upper bound is first
// re-oriented to its complement (flipBasicRow) so it, too, exits at zero. A
// basic variable above a zero-width bound (fixed variables, artificials)
// pivots out directly — both of its bounds coincide at zero, so no
// re-orientation is needed or wanted.
func (s *Solver) dualIterate() Status {
	const dualTol = 1e-7
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.iters%16 == 0 && s.expired() {
			return IterLimit
		}

		// Leaving row: most violating basic variable.
		r, above := -1, false
		viol := dualTol
		for i := 0; i < s.m; i++ {
			if v := -s.rhs[i]; v > viol {
				viol, r, above = v, i, false
			}
			if ub := s.upper[s.basis[i]]; !math.IsInf(ub, 1) {
				if v := s.rhs[i] - ub; v > viol {
					viol, r, above = v, i, true
				}
			}
		}
		if r < 0 {
			return Optimal
		}
		if above && s.upper[s.basis[r]] > 0 {
			// Re-orient so the violation becomes "below zero" and the
			// leaving variable exits at what is now its zero bound.
			s.flipBasicRow(r)
			above = false
		}

		// Entering column: dual ratio test. For the below-zero form the
		// candidates have a negative row coefficient; for the zero-width
		// above form, a positive one.
		row := s.rows[r]
		enter := -1
		best := math.Inf(1)
		for j := 0; j < s.n; j++ {
			if s.inBasis[j] || s.banned[j] {
				continue
			}
			a := row[j]
			if !above {
				a = -a
			}
			if a <= pivotTol {
				continue
			}
			ratio := s.d[j] / a
			if ratio < best-ratioTol ||
				(ratio < best+ratioTol && enter >= 0 && math.Abs(row[j]) > math.Abs(row[enter])) {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible
		}
		s.pivot(r, enter)
		s.iters++
	}
}

// extract reconstructs structural variable values in the original
// orientation, writing into the solver's reusable buffer.
func (s *Solver) extract() []float64 {
	x := s.xbuf[:s.nStruct]
	for j := range x {
		if s.flipped[j] {
			x[j] = s.baseU[j]
		} else {
			x[j] = 0
		}
	}
	for i, b := range s.basis[:s.m] {
		if b >= s.nStruct {
			continue
		}
		v := s.rhs[i]
		if s.flipped[b] {
			v = s.baseU[b] - v
		}
		x[b] = v
	}
	for j := range x {
		v := x[j]
		if v < 0 && v > -1e-9 {
			v = 0
		}
		if u := s.baseU[j]; !math.IsInf(u, 1) && v > u && v < u+1e-9 {
			v = u
		}
		x[j] = v
	}
	return x
}

// rebuild constructs the initial tableau over the active rows: slack
// columns give LE rows an identity start where possible, artificials cover
// the rest, fixed variables are folded in as zero-width columns (at-upper
// fixes in complement orientation), and the phase-1 reduced costs are
// installed. Slacks of inactive rows are banned from entering.
func (s *Solver) rebuild() {
	p := s.prob
	n := s.nStruct
	for j := 0; j < s.stride; j++ {
		s.upper[j] = math.Inf(1)
		s.baseU[j] = math.Inf(1)
		s.flipped[j] = false
		s.banned[j] = false
		s.inBasis[j] = false
		s.rowOf[j] = -1
		s.d[j] = 0
	}
	for j := 0; j < n; j++ {
		u := p.upper(j)
		s.baseU[j] = u
		switch s.fixVal[j] {
		case fixFree:
			s.upper[j] = u
		case fixZero:
			s.upper[j] = 0
			s.banned[j] = true
		case fixUpper:
			s.upper[j] = 0
			s.banned[j] = true
			s.flipped[j] = true
		}
	}
	for i := range p.Cons {
		if !s.activeRows[i] && s.slackOf[i] >= 0 {
			s.banned[s.slackOf[i]] = true
		}
	}

	slot := 0
	nArt := 0
	artBase := n + s.nSlack
	for i := range p.Cons {
		if !s.activeRows[i] {
			continue
		}
		c := &p.Cons[i]
		row := s.rows[slot]
		for k := 0; k < s.stride; k++ {
			row[k] = 0
		}
		rhs := c.RHS
		for _, tm := range c.Terms {
			if s.fixVal[tm.Var] == fixUpper {
				// x = u − x̄ with x̄ pinned at 0: substitute in complement
				// orientation so the fixed value lands on the RHS.
				rhs -= tm.Coef * s.baseU[tm.Var]
				row[tm.Var] -= tm.Coef
			} else {
				row[tm.Var] += tm.Coef
			}
		}
		slackCoef := 0.0
		switch c.Sense {
		case LE:
			slackCoef = 1.0
		case GE:
			slackCoef = -1.0
		}
		if rhs < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			slackCoef = -slackCoef
			rhs = -rhs
		}
		if s.slackOf[i] >= 0 {
			row[s.slackOf[i]] = slackCoef
		}
		s.rhs[slot] = rhs
		if s.slackOf[i] >= 0 && slackCoef > 0 {
			s.basis[slot] = s.slackOf[i]
		} else {
			art := artBase + nArt
			nArt++
			row[art] = 1.0
			s.basis[slot] = art
		}
		slot++
	}
	s.m = slot
	s.n = artBase + nArt
	s.nArtStart = artBase
	for i, b := range s.basis[:s.m] {
		s.inBasis[b] = true
		s.rowOf[b] = i
	}

	// Phase-1 reduced costs: minimise the sum of artificials. With the
	// artificials basic, d_j = −Σ_{artificial rows i} T_ij.
	for i, b := range s.basis[:s.m] {
		if b < s.nArtStart {
			continue
		}
		row := s.rows[i]
		for j := 0; j < s.n; j++ {
			s.d[j] -= row[j]
		}
	}
	for j := s.nArtStart; j < s.n; j++ {
		s.d[j]++
	}
}
