package lp

import "math"

// candidateMax bounds the pricing candidate list: a refill scan collects at
// most this many eligible columns before pivoting resumes, so Dantzig-style
// most-negative selection runs over a short list instead of every column.
const candidateMax = 64

// rebuild resets the logical basis to the slack/artificial start over the
// active rows, folding the current variable fixes in as zero-width columns
// (at-upper fixes in complement orientation). The factorization of this
// start basis is diagonal (±1 singletons), so the follow-up refactorize
// cannot fail.
//
//sqpr:hotpath
func (s *Solver) rebuild() {
	p := s.prob
	s.scanValid = false // cold rebuilds move the point arbitrarily
	for j := 0; j < s.colCap; j++ {
		s.upper[j] = math.Inf(1)
		s.baseU[j] = math.Inf(1)
		s.flipped[j] = false
		s.banned[j] = false
		s.inBasis[j] = false
		s.rowOf[j] = -1
		s.d[j] = 0
	}
	for j := 0; j < s.nStruct; j++ {
		u := p.upper(j)
		s.baseU[j] = u
		switch s.fixVal[j] {
		case fixFree:
			s.upper[j] = u
		case fixZero:
			s.upper[j] = 0
			s.banned[j] = true
		case fixUpper:
			s.upper[j] = 0
			s.banned[j] = true
			s.flipped[j] = true
		}
	}
	// Assign slots and slack columns densely over the active rows; rows
	// activated warm later take fresh slots at the then-current edge.
	for i := 0; i < s.mAll; i++ {
		s.rowSlot[i] = -1
		s.slackOf[i] = -1
	}
	slot := 0
	naux := 0
	for i := 0; i < s.mAll; i++ {
		if !s.activeRows[i] {
			continue
		}
		s.rowSlot[i] = int32(slot)
		s.slotRow[slot] = int32(i)
		if p.Cons[i].Sense != EQ {
			col := s.nStruct + naux
			s.slackOf[i] = int32(col)
			s.auxSlot[naux] = int32(slot)
			s.auxIsArt[naux] = false
			if p.Cons[i].Sense == LE {
				s.auxCoef[naux] = 1
			} else {
				s.auxCoef[naux] = -1
			}
			naux++
		}
		slot++
	}
	s.m = slot
	s.nArtStart = s.nStruct + naux

	// Effective right-hand sides under the fix orientation.
	for t := 0; t < s.m; t++ {
		c := &p.Cons[s.slotRow[t]]
		rhs := c.RHS
		for _, tm := range c.Terms {
			if s.flipped[tm.Var] {
				rhs -= tm.Coef * s.baseU[tm.Var]
			}
		}
		s.beff[t] = rhs
	}

	// Starting basis: a row's slack is basic when it starts feasible at the
	// origin of the current orientation (LE with beff >= 0, or GE with
	// beff < 0, where the −1 slack coefficient makes the slack value
	// positive); an artificial signed to keep its value non-negative covers
	// every other row.
	for t := 0; t < s.m; t++ {
		i := int(s.slotRow[t])
		c := &p.Cons[i]
		sl := s.slackOf[i]
		if sl >= 0 && ((c.Sense == LE && s.beff[t] >= 0) || (c.Sense == GE && s.beff[t] < 0)) {
			s.basis[t] = int(sl)
			continue
		}
		col := s.nStruct + naux
		s.auxSlot[naux] = int32(t)
		s.auxIsArt[naux] = true
		if s.beff[t] >= 0 {
			s.auxCoef[naux] = 1
		} else {
			s.auxCoef[naux] = -1
		}
		naux++
		s.basis[t] = col
	}
	s.n = s.nStruct + naux
	for t := 0; t < s.m; t++ {
		b := s.basis[t]
		s.inBasis[b] = true
		s.rowOf[b] = t
	}
	s.factorValid = false
	s.xbValid = false
	s.candPos = 0
	s.cand = s.cand[:0]
}

// coldPass rebuilds the basis from the problem plus current fixes over the
// active row set and runs the two-phase primal simplex through the
// factorization. On success the solver is left at an optimal basis and
// marked warm.
func (s *Solver) coldPass() Status {
	if s.nStruct == 0 {
		if constRowsFeasible(s.prob) {
			return Optimal
		}
		return Infeasible
	}
	s.rebuild()
	hasArt := s.n > s.nArtStart
	s.phase1 = hasArt
	if !s.refactorize() {
		// Unreachable for the diagonal start basis; fail closed.
		s.phase1 = false
		return Infeasible
	}

	if hasArt {
		st := s.iterate()
		if st == IterLimit || st == stCold {
			s.phase1 = false
			return IterLimit
		}
		if s.phase1Value() > zeroTol*float64(1+s.m) {
			s.phase1 = false
			return Infeasible
		}
		s.driveOutArtificials()
		for j := s.nArtStart; j < s.n; j++ {
			if s.auxIsArt[j-s.nStruct] {
				s.banned[j] = true
			}
		}
		s.phase1 = false
		s.computeDuals()
	}

	st := s.iterate()
	if st == stCold {
		st = IterLimit
	}
	if st == Optimal || st == IterLimit {
		// Pin artificials at zero so the dual simplex treats any later
		// drift on redundant rows as a violation to repair.
		for j := s.nArtStart; j < s.n; j++ {
			if s.auxIsArt[j-s.nStruct] {
				s.upper[j] = 0
			}
		}
	}
	s.warm = st == Optimal
	return st
}

// phase1Value returns the current sum of artificial variable values.
func (s *Solver) phase1Value() float64 {
	var sum float64
	for t, b := range s.basis[:s.m] {
		if b >= s.nStruct && s.auxIsArt[b-s.nStruct] {
			sum += s.xB[t]
		}
	}
	return sum
}

// driveOutArtificials pivots zero-valued basic artificials onto structural
// columns where possible, leaving redundant rows with a basic artificial
// pinned at zero. Banned (fixed) columns are never pivoted in: a fixed
// variable entering the basis could later drift off its pinned value.
func (s *Solver) driveOutArtificials() {
	for r := 0; r < s.m; r++ {
		b := s.basis[r]
		if b < s.nStruct || !s.auxIsArt[b-s.nStruct] {
			continue
		}
		s.btranRow(r)
		s.buildPivotRow()
		pivotCol := -1
		for _, k32 := range s.accTouch {
			k := int(k32)
			if k >= s.nArtStart {
				continue
			}
			if s.inBasis[k] || s.banned[k] {
				continue
			}
			if math.Abs(s.accV[k]) > 1e-7 && (pivotCol < 0 || k < pivotCol) {
				pivotCol = k
			}
		}
		if pivotCol < 0 {
			continue
		}
		s.ftranCol(pivotCol, s.alpha)
		if math.Abs(s.alpha[r]) <= pivotTol {
			continue
		}
		s.pivotCommit(r, pivotCol)
		if s.eta.count >= s.etaLimit() && !s.refactorize() {
			return
		}
	}
}

// iterate runs primal simplex iterations until optimality, unboundedness or
// a budget is exhausted.
//
//sqpr:hotpath
func (s *Solver) iterate() Status {
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.iters%16 == 0 && s.expired() {
			return IterLimit
		}
		j := s.chooseEntering()
		if j < 0 {
			return Optimal
		}
		st := s.step(j)
		if st == stRetry {
			continue // drift-triggered refactorize; re-price and retry
		}
		if st != 0 {
			return st
		}
		s.iters++
	}
}

// chooseEntering selects a nonbasic column with negative reduced cost:
// most-negative within the rotating candidate list normally (partial
// pricing), and Bland's first-eligible full scan once degeneracy stalls.
// Optimality is only ever declared after a refill scanned every column.
//
//sqpr:hotpath
func (s *Solver) chooseEntering() int {
	if s.bland {
		for j := 0; j < s.n; j++ {
			if !s.inBasis[j] && !s.banned[j] && s.d[j] < -costTol {
				return j
			}
		}
		return -1
	}
	//sqpr:noctx bounded: ends on a candidate hit or one full fruitless pricing wrap
	for {
		best, bestVal := -1, -costTol
		live := s.cand[:0]
		for _, j32 := range s.cand {
			j := int(j32)
			if s.inBasis[j] || s.banned[j] || s.d[j] >= -costTol {
				continue // stale candidate: entered the basis or repriced
			}
			live = append(live, j32) //sqpr:amortized — in-place compaction
			if s.d[j] < bestVal {
				bestVal, best = s.d[j], j
			}
		}
		s.cand = live
		if best >= 0 {
			return best
		}
		if !s.priceRefill() {
			return -1
		}
	}
}

// priceRefill scans from the rotating cursor for up to candidateMax
// eligible columns, wrapping at most once over all n columns; reports
// whether any candidate was found. Only called with an empty list, so a
// full fruitless wrap is a proof of optimality.
//
//sqpr:hotpath
func (s *Solver) priceRefill() bool {
	n := s.n
	if n == 0 {
		return false
	}
	if s.candPos >= n {
		s.candPos = 0
	}
	found := 0
	for scanned := 0; scanned < n && found < candidateMax; scanned++ {
		j := s.candPos
		s.candPos++
		if s.candPos >= n {
			s.candPos = 0
		}
		if s.inBasis[j] || s.banned[j] {
			continue
		}
		if s.d[j] < -costTol {
			s.cand = append(s.cand, int32(j)) //sqpr:amortized — cap colCap from Load
			found++
		}
	}
	return found > 0
}

// ftranCol computes alpha = B⁻¹·a_j for column j under the current
// orientation (the entering column's tableau image).
//
//sqpr:hotpath
func (s *Solver) ftranCol(j int, out []float64) {
	for i := 0; i < s.m; i++ {
		out[i] = 0
	}
	if j < s.nStruct {
		sign := 1.0
		if s.flipped[j] {
			sign = -1
		}
		for e := s.ccStart[j]; e < s.ccStart[j+1]; e++ {
			if slot := s.rowSlot[s.ccRow[e]]; slot >= 0 {
				out[slot] += sign * s.ccCoef[e]
			}
		}
	} else {
		aux := j - s.nStruct
		out[s.auxSlot[aux]] += s.auxCoef[aux]
	}
	s.ftran(out)
}

// btranRow computes rho = B⁻ᵀ·e_r, the r-th row of the basis inverse.
//
//sqpr:hotpath
func (s *Solver) btranRow(r int) {
	for i := 0; i < s.m; i++ {
		s.rho[i] = 0
	}
	s.rho[r] = 1
	s.btran(s.rho)
}

// buildPivotRow expands rho into the sparse tableau pivot row
// accV[j] = rho·a_jᵉᶠᶠ over all live columns, touching only columns of
// rows where rho is nonzero. accTouch lists the touched columns; accMark
// round-stamps validity. Basic columns are skipped outright: every consumer
// of the row (dual ratio test, reduced-cost update, artificial drive-out,
// Gomory expansion) ignores them, and on dense-ish rows they are a sizable
// share of the touched set.
//
//sqpr:hotpath
func (s *Solver) buildPivotRow() {
	s.accRound++
	round := s.accRound
	touch := s.accTouch[:0]
	for t := 0; t < s.m; t++ {
		rv := s.rho[t]
		if rv == 0 {
			continue
		}
		c := &s.prob.Cons[s.slotRow[t]]
		for _, tm := range c.Terms {
			if s.inBasis[tm.Var] {
				continue
			}
			a := tm.Coef
			if s.flipped[tm.Var] {
				a = -a
			}
			if s.accMark[tm.Var] != round {
				s.accMark[tm.Var] = round
				s.accV[tm.Var] = 0
				touch = append(touch, int32(tm.Var)) //sqpr:amortized
			}
			s.accV[tm.Var] += rv * a
		}
	}
	naux := s.n - s.nStruct
	for a := 0; a < naux; a++ {
		rv := s.rho[s.auxSlot[a]]
		if rv == 0 {
			continue
		}
		col := s.nStruct + a
		if s.inBasis[col] {
			continue
		}
		if s.accMark[col] != round {
			s.accMark[col] = round
			s.accV[col] = 0
			touch = append(touch, int32(col)) //sqpr:amortized
		}
		s.accV[col] += rv * s.auxCoef[a]
	}
	s.accTouch = touch
}

// step performs the ratio test for entering column j and either flips the
// variable to its opposite bound or pivots it into the basis. Returns 0 on
// success, Unbounded if the entering direction is unbounded, stRetry after
// a drift-triggered refactorize, stCold if a refactorize failed.
//
//sqpr:hotpath
func (s *Solver) step(j int) Status {
	s.ftranCol(j, s.alpha)
	alpha := s.alpha
	tmax := s.upper[j]
	leave := -1
	leaveAtUpper := false
	apiv := 0.0
	for i := 0; i < s.m; i++ {
		a := alpha[i]
		if a > pivotTol {
			lim := s.xB[i] / a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(apiv)) {
				tmax, leave, leaveAtUpper, apiv = lim, i, false, a
			}
		} else if a < -pivotTol {
			ub := s.upper[s.basis[i]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - s.xB[i]) / -a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(apiv)) {
				tmax, leave, leaveAtUpper, apiv = lim, i, true, a
			}
		}
	}
	if leave < 0 {
		if math.IsInf(tmax, 1) {
			return Unbounded
		}
		// Bound flip: the entering variable moves straight to its upper
		// bound; re-orient it so it is nonbasic at zero again. The basic
		// point moves along the tableau column: xB ← xB − u·α.
		u := s.upper[j]
		for i := 0; i < s.m; i++ {
			if av := alpha[i]; av != 0 {
				s.xB[i] -= av * u
			}
		}
		s.toggleFlip(j)
		s.d[j] = -s.d[j]
		s.noteProgress(tmax)
		return 0
	}
	if tmax < ratioTol {
		s.stall++
		if s.stall > 5*(s.m+10) {
			s.bland = true
		}
	} else {
		s.noteProgress(tmax)
	}
	if leaveAtUpper && s.upper[s.basis[leave]] > 0 {
		// Re-orient the leaving basic variable so it exits at zero. A
		// zero-width column (fixed variable, pinned artificial) needs no
		// re-orientation — both of its bounds coincide at zero — and for a
		// fixed variable the orientation *is* the fix-at-upper semantics,
		// so flipping it would silently move the pinned value.
		s.flipBasic(leave)
		alpha[leave] = -alpha[leave]
	}
	s.btranRow(leave)
	s.buildPivotRow()
	if st := s.driftGate(leave, j); st != 0 {
		return st
	}
	s.pivotCommit(leave, j)
	return s.maybeRefactor()
}

// dualIterate runs bounded-variable dual simplex pivots from a dual-
// feasible basis until primal feasibility (optimality), proven
// infeasibility, or a budget is exhausted. Two violation forms are handled:
// a basic variable below zero leaves directly; one above a positive upper
// bound is first re-oriented to its complement (flipBasic) so it, too,
// exits at zero. A basic variable above a zero-width bound (fixed
// variables, artificials) pivots out directly — both of its bounds coincide
// at zero, so no re-orientation is needed or wanted.
//
//sqpr:hotpath
func (s *Solver) dualIterate() Status {
	const dualTol = 1e-7
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.iters%16 == 0 && s.expired() {
			return IterLimit
		}

		// Leaving row: most violating basic variable.
		r, above := -1, false
		viol := dualTol
		for i := 0; i < s.m; i++ {
			if v := -s.xB[i]; v > viol {
				viol, r, above = v, i, false
			}
			if ub := s.upper[s.basis[i]]; !math.IsInf(ub, 1) {
				if v := s.xB[i] - ub; v > viol {
					viol, r, above = v, i, true
				}
			}
		}
		if r < 0 {
			return Optimal
		}
		if above && s.upper[s.basis[r]] > 0 {
			// Re-orient so the violation becomes "below zero" and the
			// leaving variable exits at what is now its zero bound.
			s.flipBasic(r)
			above = false
		}

		// Entering column: dual ratio test over the sparse pivot row. For
		// the below-zero form the candidates have a negative row
		// coefficient; for the zero-width above form, a positive one.
		s.btranRow(r)
		s.buildPivotRow()
		enter := -1
		best := math.Inf(1)
		for _, k32 := range s.accTouch {
			j := int(k32)
			if s.inBasis[j] || s.banned[j] {
				continue
			}
			a := s.accV[j]
			av := a
			if !above {
				av = -av
			}
			if av <= pivotTol {
				continue
			}
			ratio := s.d[j] / av
			if ratio < best-ratioTol ||
				(ratio < best+ratioTol && enter >= 0 && math.Abs(a) > math.Abs(s.accV[enter])) {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible
		}
		s.ftranCol(enter, s.alpha)
		st := s.driftGate(r, enter)
		if st == stRetry {
			continue
		}
		if st != 0 {
			return st
		}
		s.pivotCommit(r, enter)
		if st := s.maybeRefactor(); st != 0 {
			return st
		}
		s.iters++
	}
}

// driftGate cross-checks the pivot element computed two independent ways —
// alpha[r] through FTRAN and accV[j] through BTRAN plus the row expansion —
// before committing a pivot. Disagreement (or a vanishing pivot) means the
// factorization has drifted: refactorize and retry the iteration, up to a
// per-solve budget, then fall back cold. Requires btranRow(r) and
// buildPivotRow to be current for row r.
//
//sqpr:hotpath
func (s *Solver) driftGate(r, j int) Status {
	rowv := 0.0
	if s.accMark[j] == s.accRound {
		rowv = s.accV[j]
	}
	piv := s.alpha[r]
	if math.Abs(rowv-piv) > driftCheckTol*(1+math.Abs(piv)) || math.Abs(piv) <= pivotTol {
		if s.driftTries < maxDriftTries {
			s.driftTries++
			s.stats.DriftRebuilds++
			if !s.refactorize() {
				return stCold
			}
			return stRetry
		}
		if math.Abs(piv) <= pivotTol {
			return stCold
		}
	}
	return 0
}

// pivotCommit makes column j basic in row r: reduced costs update along the
// sparse pivot row, an eta records the basis change, and the basic solution
// moves by the entering step. Requires alpha = B⁻¹a_j and the pivot row
// (accV/accTouch) for row r.
//
//sqpr:hotpath
func (s *Solver) pivotCommit(r, j int) {
	piv := s.alpha[r]
	f := s.d[j] / piv
	if f != 0 {
		for _, k32 := range s.accTouch {
			k := int(k32)
			if s.inBasis[k] || k == j {
				continue
			}
			s.d[k] -= f * s.accV[k]
		}
	}
	old := s.basis[r]
	s.inBasis[old] = false
	s.rowOf[old] = -1
	s.basis[r] = j
	s.inBasis[j] = true
	s.rowOf[j] = r
	// The old basic column's tableau coefficient in row r is 1, so its new
	// reduced cost is −f; the entering column's becomes 0 by construction.
	s.d[old] = -f
	s.d[j] = 0

	s.eta.appendPivot(r, s.alpha, s.m)
	s.stats.EtaAppends++
	if s.eta.count > s.stats.PeakEtas {
		s.stats.PeakEtas = s.eta.count
	}

	// Apply the new eta to xB in place: the entering variable takes the
	// ratio-test step, every other basic value moves along alpha.
	vr := s.xB[r] / piv
	for i := 0; i < s.m; i++ {
		if av := s.alpha[i]; av != 0 {
			s.xB[i] -= av * vr
			if s.xB[i] < 0 && s.xB[i] > -1e-11 {
				s.xB[i] = 0
			}
		}
	}
	s.xB[r] = vr
	if vr < 0 && vr > -1e-11 {
		s.xB[r] = 0
	}
}

// maybeRefactor refactorizes on schedule once the eta file reaches the
// configured interval; returns stCold when the refactorize fails.
//
//sqpr:hotpath
func (s *Solver) maybeRefactor() Status {
	if s.eta.count < s.etaLimit() {
		return 0
	}
	if !s.refactorize() {
		return stCold
	}
	return 0
}

//sqpr:hotpath
func (s *Solver) noteProgress(step float64) {
	if step > ratioTol {
		s.stall = 0
	}
}

// toggleFlip re-orients nonbasic structural column j (x ↔ u − x̄),
// maintaining the effective right-hand sides of every active row the
// column appears in. The caller owns the companion reduced-cost negation
// and xB refresh.
//
//sqpr:hotpath
func (s *Solver) toggleFlip(j int) {
	u := s.baseU[j]
	delta := -u
	if s.flipped[j] {
		delta = u
	}
	s.flipped[j] = !s.flipped[j]
	for e := s.ccStart[j]; e < s.ccStart[j+1]; e++ {
		if slot := s.rowSlot[s.ccRow[e]]; slot >= 0 {
			s.beff[slot] += delta * s.ccCoef[e]
		}
	}
}

// flipBasic re-orients the basic variable of row r. The basis matrix's
// column for row r is negated, recorded as a negation eta so the factors
// stay exact; the reduced costs are untouched (negating a basis column and
// its cost leaves y = B⁻ᵀc_B, and with it every d_j, unchanged).
//
//sqpr:hotpath
func (s *Solver) flipBasic(r int) {
	b := s.basis[r]
	u := s.baseU[b]
	s.toggleFlip(b)
	s.eta.appendNeg(r)
	s.stats.EtaAppends++
	if s.eta.count > s.stats.PeakEtas {
		s.stats.PeakEtas = s.eta.count
	}
	if s.xbValid {
		s.xB[r] = u - s.xB[r]
	}
}
