package lp

import (
	"math/rand"
	"testing"
)

// TestDenseSparseGECutAppendEquivalence appends GE rows that cut off the
// current optimum — the Gomory cut-pool pattern, where appended rows start
// primal-infeasible and the dual simplex repairs them warm — interleaved
// with fix probes, cross-checking the engines after every append.
func TestDenseSparseGECutAppendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		p := randomBoundedLP(rng, n, 1+rng.Intn(5))
		d := NewDenseSolver()
		sp := NewSolver()
		d.SetRowReserve(6)
		sp.SetRowReserve(6)
		d.SetLazy(true)
		sp.SetLazy(true)
		if err := d.Load(p); err != nil {
			t.Fatalf("dense load: %v", err)
		}
		if err := sp.Load(p); err != nil {
			t.Fatalf("sparse load: %v", err)
		}
		ds := d.ReSolve(Options{})
		ss := sp.ReSolve(Options{})
		checkAgree(t, tname("ge-root", true, trial), p, ds, ss)
		if ds.Status != Optimal {
			continue
		}
		x := append([]float64(nil), ds.X...)
		for k := 0; k < 3; k++ {
			// GE row violated at x: sum of a few coords >= current+delta.
			terms := make([]Term, 0, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					c := rng.Float64() * 2
					terms = append(terms, Term{j, c})
					lhs += c * x[j]
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{0, 1})
				lhs = x[0]
			}
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: GE, RHS: lhs + 0.05})
			if _, err := d.AppendRows(); err != nil {
				t.Fatalf("dense append: %v", err)
			}
			if _, err := sp.AppendRows(); err != nil {
				t.Fatalf("sparse append: %v", err)
			}
			ds = d.ReSolve(Options{})
			ss = sp.ReSolve(Options{})
			checkAgree(t, tname("ge-append", true, trial*10+k), p, ds, ss)
			if ds.Status != Optimal {
				break
			}
			copy(x, ds.X)
			// interleave a fix probe like node processing does
			j := rng.Intn(n)
			up := rng.Float64() < 0.5
			d.Fix(j, up)
			sp.Fix(j, up)
		}
	}
}
