package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Dense-vs-sparse equivalence suite.
//
// The sparse revised-simplex Solver and the dense reference DenseSolver
// implement the same public contract over the same problems; this suite
// drives both through identical randomized workloads and demands identical
// statuses and objectives (vertices may differ — both engines are free to
// return any optimal basis). End-to-end admission equivalence at the
// planner level is certified separately: the internal/core conformance
// goldens were recorded against the dense engine and still pass verbatim
// against the sparse one, so the admitted sets the planner derives from LP
// answers are unchanged.

const equivTol = 1e-6

// equivObjective evaluates the minimization objective at a solution point.
func equivObjective(p *Problem, x []float64) float64 {
	v := 0.0
	for j := 0; j < p.NumVars && j < len(x); j++ {
		v += p.Cost[j] * x[j]
	}
	return v
}

// checkAgree fails the test unless the two solutions agree in status and,
// when optimal, in objective value.
func checkAgree(t *testing.T, where string, p *Problem, ds Solution, ss Solution) {
	t.Helper()
	if ds.Status != ss.Status {
		t.Fatalf("%s: status dense=%v sparse=%v", where, ds.Status, ss.Status)
	}
	if ds.Status != Optimal {
		return
	}
	do := equivObjective(p, ds.X)
	so := equivObjective(p, ss.X)
	scale := 1 + math.Abs(do)
	if math.Abs(do-so) > equivTol*scale {
		t.Fatalf("%s: objective dense=%.12g sparse=%.12g", where, do, so)
	}
}

// TestDenseSparseColdEquivalence cross-checks cold solves over 50 seeded
// random problems, eager and lazy.
func TestDenseSparseColdEquivalence(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 50; trial++ {
			n := 3 + rng.Intn(8)
			p := randomBoundedLP(rng, n, 1+rng.Intn(6))
			d := NewDenseSolver()
			d.SetLazy(lazy)
			sp := NewSolver()
			sp.SetLazy(lazy)
			if err := d.Load(p); err != nil {
				t.Fatalf("dense load: %v", err)
			}
			if err := sp.Load(p); err != nil {
				t.Fatalf("sparse load: %v", err)
			}
			ds := d.ReSolve(Options{})
			ss := sp.ReSolve(Options{})
			checkAgree(t, tname("cold", lazy, trial), p, ds, ss)
		}
	}
}

// TestDenseSparseWarmFixEquivalence runs both engines through identical
// randomized Fix/Unfix warm re-solve sequences — the branch-and-bound
// probing pattern — cross-checking after every step.
func TestDenseSparseWarmFixEquivalence(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			n := 3 + rng.Intn(8)
			p := randomBoundedLP(rng, n, 1+rng.Intn(6))
			d := NewDenseSolver()
			d.SetLazy(lazy)
			sp := NewSolver()
			sp.SetLazy(lazy)
			if err := d.Load(p); err != nil {
				t.Fatalf("dense load: %v", err)
			}
			if err := sp.Load(p); err != nil {
				t.Fatalf("sparse load: %v", err)
			}
			checkAgree(t, tname("warm-root", lazy, trial), p,
				d.ReSolve(Options{}), sp.ReSolve(Options{}))

			fixed := map[int]bool{}
			for step := 0; step < 12; step++ {
				j := rng.Intn(n)
				var where string
				if _, is := fixed[j]; is && rng.Float64() < 0.5 {
					d.Unfix(j)
					sp.Unfix(j)
					delete(fixed, j)
					where = "unfix"
				} else {
					atUpper := rng.Float64() < 0.5
					d.Fix(j, atUpper)
					sp.Fix(j, atUpper)
					fixed[j] = atUpper
					where = "fix"
				}
				ds := d.ReSolve(Options{})
				ss := sp.ReSolve(Options{})
				checkAgree(t, tname(where, lazy, trial*100+step), p, ds, ss)
			}
		}
	}
}

// TestDenseSparseBasisRoundTripEquivalence exercises SaveBasis/RestoreBasis
// across intervening fix churn on both engines: after a restore plus warm
// re-solve under a fresh fix set, the engines must still agree.
func TestDenseSparseBasisRoundTripEquivalence(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		rng := rand.New(rand.NewSource(29))
		for trial := 0; trial < 50; trial++ {
			n := 3 + rng.Intn(8)
			p := randomBoundedLP(rng, n, 1+rng.Intn(6))
			d := NewDenseSolver()
			d.SetLazy(lazy)
			sp := NewSolver()
			sp.SetLazy(lazy)
			if err := d.Load(p); err != nil {
				t.Fatalf("dense load: %v", err)
			}
			if err := sp.Load(p); err != nil {
				t.Fatalf("sparse load: %v", err)
			}
			checkAgree(t, tname("pre-save", lazy, trial), p,
				d.ReSolve(Options{}), sp.ReSolve(Options{}))
			d.SaveBasis()
			sp.SaveBasis()

			// Churn: fixes and re-solves that move both engines off the
			// saved basis.
			for step := 0; step < 4; step++ {
				j := rng.Intn(n)
				atUpper := rng.Float64() < 0.5
				d.Fix(j, atUpper)
				sp.Fix(j, atUpper)
				d.ReSolve(Options{})
				sp.ReSolve(Options{})
				d.Unfix(j)
				sp.Unfix(j)
			}

			if dok, sok := d.RestoreBasis(), sp.RestoreBasis(); dok != sok {
				t.Fatalf("restore: dense=%v sparse=%v", dok, sok)
			}
			j := rng.Intn(n)
			d.Fix(j, false)
			sp.Fix(j, false)
			checkAgree(t, tname("post-restore", lazy, trial), p,
				d.ReSolve(Options{}), sp.ReSolve(Options{}))
		}
	}
}

// TestDenseSparseAppendRowsEquivalence grows both engines' problems with
// appended cut rows mid-sequence and cross-checks the warm re-solves.
func TestDenseSparseAppendRowsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		p := randomBoundedLP(rng, n, 1+rng.Intn(5))
		d := NewDenseSolver()
		sp := NewSolver()
		d.SetRowReserve(4)
		sp.SetRowReserve(4)
		if err := d.Load(p); err != nil {
			t.Fatalf("dense load: %v", err)
		}
		if err := sp.Load(p); err != nil {
			t.Fatalf("sparse load: %v", err)
		}
		checkAgree(t, tname("append-root", false, trial), p,
			d.ReSolve(Options{}), sp.ReSolve(Options{}))

		// Append 1-2 random LE rows that cut off part of the box.
		extra := 1 + rng.Intn(2)
		for k := 0; k < extra; k++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{j, rng.Float64() * 2})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{rng.Intn(n), 1})
			}
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: 0.5 + rng.Float64()})
		}
		if _, err := d.AppendRows(); err != nil {
			t.Fatalf("dense append: %v", err)
		}
		if _, err := sp.AppendRows(); err != nil {
			t.Fatalf("sparse append: %v", err)
		}
		checkAgree(t, tname("append-solve", false, trial), p,
			d.ReSolve(Options{}), sp.ReSolve(Options{}))
	}
}

func tname(where string, lazy bool, trial int) string {
	if lazy {
		return where + "-lazy-" + itoa(trial)
	}
	return where + "-eager-" + itoa(trial)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
