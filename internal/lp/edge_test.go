package lp

import (
	"math/rand"
	"testing"
	"time"
)

func TestDeadlineAborts(t *testing.T) {
	// A deadline in the past must abort immediately with IterLimit.
	rng := rand.New(rand.NewSource(5))
	n, m := 40, 40
	p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = -rng.Float64()
		p.Upper[j] = 1
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{j, rng.Float64()}
		}
		p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: 1 + rng.Float64()})
	}
	sol := Solve(p, Options{Deadline: time.Now().Add(-time.Second)})
	if sol.Status != IterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
}

func TestMaxItersRespected(t *testing.T) {
	p := &Problem{
		NumVars: 3,
		Cost:    []float64{-1, -2, -3},
		Upper:   []float64{5, 5, 5},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Sense: LE, RHS: 6},
		},
	}
	sol := Solve(p, Options{MaxIters: 1})
	if sol.Iters > 1 {
		t.Fatalf("performed %d iterations with MaxIters=1", sol.Iters)
	}
}

func TestAllVariablesAtUpperBound(t *testing.T) {
	// max Σx with generous constraints: everything should hit its bound
	// via bound flips, not pivots.
	n := 6
	p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = -1
		p.Upper[j] = float64(j + 1)
	}
	p.Cons = []Constraint{
		{Terms: []Term{{0, 1}}, Sense: LE, RHS: 100},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	for j := 0; j < n; j++ {
		if sol.X[j] != float64(j+1) {
			t.Fatalf("x[%d] = %v, want %v", j, sol.X[j], j+1)
		}
	}
}

func TestZeroUpperBoundVariable(t *testing.T) {
	// A variable with upper bound zero is effectively fixed to zero.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{-10, -1},
		Upper:   []float64{0, 4},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 3},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || sol.X[0] != 0 {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
	if sol.X[1] != 3 {
		t.Fatalf("x[1]=%v want 3", sol.X[1])
	}
}

func TestMixedSenseSystem(t *testing.T) {
	// min 2x+3y s.t. x+y >= 4, x-y <= 1, y <= 3 → x in [1,?]: best
	// y=3, x=1 → obj 11? check: x+y>=4 → x>=1; obj 2x+3y minimised by
	// trading y down: y=1.5, x=2.5 → 2·2.5+3·1.5=9.5 with x-y=1 ✓.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{2, 3},
		Upper:   []float64{100, 3},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 4},
			{Terms: []Term{{0, 1}, {1, -1}}, Sense: LE, RHS: 1},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || !approx(sol.Objective, 9.5, 1e-6) {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Objective, sol.X)
	}
}

func TestLargeDenseLPTerminates(t *testing.T) {
	if testing.Short() {
		t.Skip("large LP in -short mode")
	}
	rng := rand.New(rand.NewSource(99))
	n, m := 120, 80
	p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = rng.Float64()*2 - 1
		p.Upper[j] = 1
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				terms = append(terms, Term{j, rng.Float64()*2 - 0.5})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: rng.Float64() * 5})
	}
	start := time.Now()
	sol := Solve(p, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Feasible {
		t.Fatal("optimal point not feasible")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("large LP took too long")
	}
}
