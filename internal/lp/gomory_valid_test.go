package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestGomoryCutValidity brute-force checks that every GMI cut the sparse
// engine emits is satisfied by every integer-feasible point of the problem
// (continuous variables sampled on a coarse grid), including cuts generated
// from bases left in complement orientation by fix/unfix churn.
func TestGomoryCutValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(4)
		p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
		isInt := make([]bool, n)
		for j := 0; j < n; j++ {
			p.Cost[j] = rng.Float64()*4 - 2
			p.Upper[j] = 1 + float64(rng.Intn(2)) // 1 or 2
			isInt[j] = rng.Float64() < 0.8
		}
		mrows := 1 + rng.Intn(4)
		for i := 0; i < mrows; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{j, rng.Float64()*3 - 1})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{rng.Intn(n), 1})
			}
			if rng.Intn(4) == 0 {
				p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: GE, RHS: -rng.Float64()})
			} else {
				p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: rng.Float64() * 2})
			}
		}
		for _, lazy := range []bool{false, true} {
			sp := NewSolver()
			sp.SetLazy(lazy)
			if err := sp.Load(p); err != nil {
				t.Fatalf("load: %v", err)
			}
			if sp.ReSolve(Options{}).Status != Optimal {
				continue
			}
			// Induce complement orientation: fix/unfix churn like the
			// rounding dive, ending with every variable free again.
			for k := 0; k < 3; k++ {
				j := rng.Intn(n)
				sp.Fix(j, rng.Float64() < 0.7)
				sp.ReSolve(Options{})
				sp.Unfix(j)
			}
			if sp.ReSolve(Options{}).Status != Optimal {
				continue
			}
			var cuts []Constraint
			sp.GomoryCuts(isInt, 8, func(terms []Term, rhs float64) {
				cuts = append(cuts, Constraint{
					Terms: append([]Term(nil), terms...), Sense: GE, RHS: rhs})
			})
			if len(cuts) == 0 {
				continue
			}
			// Enumerate integer assignments for the int vars on a grid over
			// continuous ones (0, u/2, u).
			var x []float64
			x = make([]float64, n)
			var rec func(j int)
			rec = func(j int) {
				if j == n {
					// feasible for original rows?
					for _, c := range p.Cons {
						v := Eval(c.Terms, x)
						switch c.Sense {
						case LE:
							if v > c.RHS+1e-9 {
								return
							}
						case GE:
							if v < c.RHS-1e-9 {
								return
							}
						case EQ:
							if math.Abs(v-c.RHS) > 1e-9 {
								return
							}
						}
					}
					for ci, c := range cuts {
						if Eval(c.Terms, x) < c.RHS-1e-7 {
							t.Fatalf("lazy=%v trial %d: cut %d (%+v >= %g) cuts off integer-feasible %v",
								lazy, trial, ci, c.Terms, c.RHS, x)
						}
					}
					return
				}
				if isInt[j] {
					for v := 0.0; v <= p.Upper[j]+1e-9; v++ {
						x[j] = v
						rec(j + 1)
					}
				} else {
					for _, v := range []float64{0, p.Upper[j] / 2, p.Upper[j]} {
						x[j] = v
						rec(j + 1)
					}
				}
			}
			rec(0)
		}
	}
}
